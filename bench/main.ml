(* Benchmark harness: regenerates every table of the paper (Tables 1 and 2),
   replays the Appendix A attack experiments, adds a message-complexity
   scaling sweep with a simulator-throughput benchmark (JSON-reported), and
   times the simulator stacks with Bechamel.

   Usage: main.exe [table1|table2|attack|scaling|chaos|wire|cluster|recovery|rsm|
                    fuzz|ablation|bechamel|all]
                   [--runs K] [--seed S] [--json PATH] [--metrics] [--trace PATH]
   Default: all.  Monte-Carlo run counts are chosen so the full harness
   completes in well under a minute; EXPERIMENTS.md records a reference
   output.  The scaling and chaos sections write per-stack throughput
   (deliveries/sec and wall-clock) to PATH, default BENCH_netsim.json; the
   chaos section exits non-zero on any safety violation, so it doubles as
   the CI chaos smoke job.

   --metrics additionally runs every stack under instrumented chaos plans
   and reports per-round / per-phase aggregates (Bca_obs.Metrics), merged
   into the JSON report.  --trace PATH captures the broken_run violation
   as a JSONL event log at PATH, then parses and replays it, failing the
   process unless the replayed trace is bit-identical.

   Any section that raises prints the reproducing seed before the process
   exits non-zero: every number in the harness derives from --seed, so
   re-running with the printed value reproduces the failure exactly. *)

module Summary = Bca_util.Summary
module Tablefmt = Bca_util.Tablefmt
module Value = Bca_util.Value
module Types = Bca_core.Types
module Aba = Bca_core.Aba
module Table1 = Bca_experiments.Table1
module Table2 = Bca_experiments.Table2
module Cz_attack = Bca_adversary.Cz_attack
module Mmr_attack = Bca_adversary.Mmr_attack
module Campaign = Bca_experiments.Chaos_campaign
module Fuzz = Bca_experiments.Fuzz_campaign
module Mc = Bca_experiments.Mc
module Metrics = Bca_obs.Metrics
module Trace = Bca_obs.Trace
module Cluster = Bca_transport.Cluster

let opt_runs : int option ref = ref None

let opt_seed : int64 option ref = ref None

let opt_json : string option ref = ref None

let opt_metrics = ref false

let opt_trace : string option ref = ref None

let opt_floor : float option ref = ref None

let mc_runs () = match !opt_runs with Some r -> r | None -> 4000

let root_seed () = match !opt_seed with Some s -> s | None -> 20260706L

let json_path () = match !opt_json with Some p -> p | None -> "BENCH_netsim.json"

let fmt_mean s = Printf.sprintf "%.2f ± %.2f" s.Summary.mean s.Summary.ci95

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: crash-fault setting.                                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let runs = mc_runs () and seed = root_seed () in
  section "Table 1 - crash faults (n=5, t=2): expected broadcasts to termination";
  let strong = Table1.strong ~runs ~seed in
  let weak eps = Table1.weak ~eps ~runs ~seed:(Int64.add seed 1L) in
  let w2 = weak 0.5 and w4 = weak 0.25 and w8 = weak 0.125 in
  Tablefmt.print
    ~header:[ "cell"; "Aguilera-Toueg"; "paper (ours)"; "measured" ]
    [ [ "strong coin"; "-"; "7"; fmt_mean strong ];
      [ "weak coin e=1/2"; "-"; "3/e+4 = 10"; fmt_mean w2 ];
      [ "weak coin e=1/4"; "-"; "3/e+4 = 16"; fmt_mean w4 ];
      [ "weak coin e=1/8"; "-"; "3/e+4 = 28"; fmt_mean w8 ] ];
  print_newline ();
  print_endline "Distribution of the strong-coin cell (geometric coin-retry mixture):";
  Format.printf "%a" Bca_util.Histogram.pp
    (Bca_util.Histogram.of_floats (Table1.strong_raw ~runs:4000 ~seed));
  print_newline ();
  print_endline "n-independence of the constant-round cells:";
  Tablefmt.print
    ~header:[ "n"; "t"; "strong (paper 7) | weak e=1/4 (paper 16)" ]
    (List.map
       (fun n ->
         [ string_of_int n; string_of_int ((n - 1) / 2);
           fmt_mean
             (Table1.strong_n ~n ~runs:800
                ~seed:(Int64.add seed (Int64.of_int (12 + n))))
           ^ " | weak e=1/4: "
           ^ fmt_mean
               (Table1.weak_n ~n ~eps:0.25 ~runs:800
                  ~seed:(Int64.add seed (Int64.of_int (20 + n)))) ])
       [ 5; 9; 13 ]);
  print_newline ();
  print_endline "Local coin (expected rounds to termination, worst-case adversary):";
  let rows =
    List.map
      (fun n ->
        let ours = Table1.local_rounds ~n ~runs:600 ~seed:(Int64.add seed 2L) in
        let benor = Table1.benor_rounds ~n ~runs:600 ~seed:(Int64.add seed 3L) in
        [ string_of_int n;
          Printf.sprintf "O(2^%d) = %.0f" (2 * n) (2.0 ** float_of_int (2 * n));
          fmt_mean benor;
          Printf.sprintf "O(2^%d) = %.0f" n (2.0 ** float_of_int n);
          fmt_mean ours ])
      [ 3; 5; 7 ]
  in
  Tablefmt.print
    ~header:
      [ "n"; "Ben-Or bound (A-T)"; "Ben-Or measured"; "ours bound (paper)"; "ours measured" ]
    rows;
  print_endline
    "(Aguilera-Toueg's O(2^2n) is an upper bound; the strongest adversary\n\
     implemented here extracts ~2^(n-1) rounds from Ben-Or.  The paper's\n\
     improvement is the proven guarantee: O(2^n) with the same adversary\n\
     class.  See EXPERIMENTS.md.)"

(* ------------------------------------------------------------------ *)
(* Table 2: Byzantine setting.                                          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let runs = mc_runs () and seed = root_seed () in
  section "Table 2 - Byzantine faults (n=4, t=1): expected broadcasts to termination";
  let s1 = Table2.strong_t1 ~runs ~seed:(Int64.add seed 4L) in
  let s2 = Table2.strong_2t1 ~runs ~seed:(Int64.add seed 5L) in
  let ts = Table2.tsig ~runs ~seed:(Int64.add seed 6L) in
  let weak eps = Table2.weak_t1 ~eps ~runs:2000 ~seed:(Int64.add seed 7L) in
  let w2 = weak 0.5 and w4 = weak 0.25 in
  Tablefmt.print
    ~header:[ "cell"; "[28] MMR15"; "[9] CZ"; "[11] Crain"; "paper (ours)"; "measured" ]
    [ [ "strong t+1"; "-"; "-"; "-"; "17 (crit. path 15)"; fmt_mean s1 ];
      [ "strong 2t+1"; "-"; "15"; "13"; "13"; fmt_mean s2 ];
      [ "weak t+1, e=1/2"; "12/e+9 = 33"; "-"; "6/e+6 = 18"; "6/e+6 = 18"; fmt_mean w2 ];
      [ "weak t+1, e=1/4"; "12/e+9 = 57"; "-"; "6/e+6 = 30"; "6/e+6 = 30"; fmt_mean w4 ];
      [ "strong 2t+1 + tsig"; "-"; "-"; "-"; "9"; fmt_mean ts ] ];
  print_newline ();
  print_endline "n-independence of the strong t+1 cell (t Byzantine parties):";
  Tablefmt.print
    ~header:[ "n"; "t"; "measured broadcasts" ]
    (List.map
       (fun n ->
         [ string_of_int n; string_of_int ((n - 1) / 3);
           fmt_mean
             (Table2.strong_t1_n ~n ~runs:800
                ~seed:(Int64.add seed (Int64.of_int (40 + n)))) ])
       [ 4; 7; 10 ]);
  print_endline
    "(The paper charges 4 broadcasts to every plain BCA-Byz round; rounds\n\
     with unanimous inputs carry no amplification traffic, so the measured\n\
     critical path of the 17-cell is 15.  [28]/[9]/[11] columns are the\n\
     published figures the paper compares against.)"

(* ------------------------------------------------------------------ *)
(* Appendix A attacks.                                                  *)
(* ------------------------------------------------------------------ *)

let attack () =
  let seed = root_seed () in
  section "Appendix A - adaptive liveness attacks (n=4, t=1, 25 rounds per run)";
  let show name (r : Cz_attack.result) =
    [ name;
      (match r.Cz_attack.first_commit_round with
      | None -> "NO COMMIT (liveness violated)"
      | Some k -> Printf.sprintf "commit in round %d" k);
      string_of_bool r.Cz_attack.agreement_ok;
      string_of_int r.Cz_attack.peeks_denied ]
  in
  let show_m name (r : Mmr_attack.result) =
    [ name;
      (match r.Mmr_attack.first_commit_round with
      | None -> "NO COMMIT (liveness violated)"
      | Some k -> Printf.sprintf "commit in round %d" k);
      string_of_bool r.Mmr_attack.agreement_ok;
      string_of_int r.Mmr_attack.peeks_denied ]
  in
  Tablefmt.print
    ~header:[ "protocol / coin"; "outcome"; "safety kept"; "coin peeks denied" ]
    [ show "Cachin-Zanolini, t-unpredictable" (Cz_attack.run ~degree:`T ~rounds:25 ~seed);
      show "Cachin-Zanolini, 2t-unpredictable" (Cz_attack.run ~degree:`TwoT ~rounds:25 ~seed);
      show_m "MMR PODC'14, t-unpredictable" (Mmr_attack.run ~degree:`T ~rounds:25 ~seed);
      show_m "MMR PODC'14, 2t-unpredictable" (Mmr_attack.run ~degree:`TwoT ~rounds:25 ~seed) ];
  let ours = Table2.strong_t1 ~runs:500 ~seed:(Int64.add seed 8L) in
  Printf.printf
    "\n\
     Contrast - AA-1/2 over BCA-Byz under its worst-case adaptive adversary\n\
     with a t-unpredictable coin: terminates in %s broadcasts (binding fixes\n\
     the surviving value before any coin access).\n"
    (fmt_mean ours)

(* ------------------------------------------------------------------ *)
(* Scaling: message complexity.                                         *)
(* ------------------------------------------------------------------ *)

(* One throughput measurement: [runs] seeded end-to-end executions of one
   stack, wall-clocked together.  Deliveries/sec is the simulator's hot-path
   figure of merit; BENCH_netsim.json records the trajectory across PRs. *)
type throughput = {
  tp_stack : string;
  tp_n : int;
  tp_t : int;
  tp_runs : int;
  tp_deliveries : int;
  tp_wall_s : float;
}

let measure_throughput ~seed ~runs spec ~name ~cfg =
  let inputs =
    Array.init cfg.Types.n (fun i -> if i mod 2 = 0 then Value.V0 else Value.V1)
  in
  let deliveries = ref 0 in
  let t0 = Unix.gettimeofday () in
  for k = 0 to runs - 1 do
    match Aba.run ~seed:(Int64.add seed (Int64.of_int (100 + k))) spec ~cfg ~inputs with
    | Ok r -> deliveries := !deliveries + r.Aba.deliveries
    | Error _ -> ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  { tp_stack = name;
    tp_n = cfg.Types.n;
    tp_t = cfg.Types.t;
    tp_runs = runs;
    tp_deliveries = !deliveries;
    tp_wall_s = wall }

let dps tp = float_of_int tp.tp_deliveries /. (if tp.tp_wall_s > 0.0 then tp.tp_wall_s else epsilon_float)

(* One chaos-campaign measurement: the stack's throughput under randomized
   fault plans plus the campaign's outcome split. *)
type chaos_row = {
  cz_tp : throughput;
  cz_committed : int;
  cz_stalled : int;
  cz_failures : int;
}

(* One wire-cost measurement: cumulative on-wire traffic of [wr_runs]
   loopback-cluster decisions of one stack, every hop through the real
   codec.  bytes/words per decision is the paper's communication-complexity
   unit, measured instead of counted. *)
type wire_row = {
  wr_stack : string;
  wr_n : int;
  wr_t : int;
  wr_runs : int;
  wr_frames : int;
  wr_bytes : int;
  wr_words : int;
}

(* One cluster-throughput measurement: [cl_instances] byz-strong decisions
   over real sockets in one process, one row per (transport, wire mode).
   "per-message" runs the decisions sequentially, one frame per protocol
   message, one write per frame - the seed's wire path.  "pipelined" runs
   them concurrently over one endpoint set but still frame-per-message;
   "batched" adds frame batching and coalesced writes - the full hot
   path.  decisions/sec across the modes is the tentpole figure of merit. *)
type cluster_row = {
  cl_transport : string;
  cl_mode : string;
  cl_n : int;
  cl_t : int;
  cl_instances : int;
  cl_wall_s : float;
  cl_frames : int;
  cl_bytes : int;
  cl_writes : int;
  cl_batches : int;
  cl_records : int;
  cl_max_occupancy : int;
  cl_alloc_words : float;
}

let cluster_dps row =
  float_of_int row.cl_instances
  /. (if row.cl_wall_s > 0.0 then row.cl_wall_s else epsilon_float)

(* One crash-recovery measurement: [rc_decisions] supervised byz-strong
   clusters of real node processes with durable WALs, every k-th run arming
   one node to SIGKILL itself at its first round-1 coin reveal; the
   supervisor restarts it with --recover and the run must still decide
   unanimously.  Figures of merit: decisions/sec under the kill regime,
   WAL bytes per decision (the durability tax), and per-recovery replay
   cost (records and wall time from the RECOVERED line). *)
type recovery_row = {
  rc_transport : string;
  rc_n : int;
  rc_t : int;
  rc_decisions : int;
  rc_kills : int;
  rc_restarts : int;
  rc_recoveries : int;
  rc_replayed_records : int;
  rc_replayed_bytes : int;
  rc_replay_s : float;
  rc_wal_bytes : int;
  rc_wall_s : float;
}

let recovery_dps row =
  float_of_int row.rc_decisions
  /. (if row.rc_wall_s > 0.0 then row.rc_wall_s else epsilon_float)

(* The scaling, chaos and wire sections all contribute to the JSON report;
   they accumulate here and the file is written once, after all sections
   ran. *)
let scaling_acc : throughput list ref = ref []

let cluster_acc : cluster_row list ref = ref []

let recovery_acc : recovery_row list ref = ref []

(* RSM loadgen rows: committed-tx throughput of the windowed log at each
   (transport, window, batch) point, plus the pipelining-gate verdicts. *)
type rsm_row = {
  rs_transport : string;
  rs_window : int;
  rs_batch_txs : int;
  rs_total : int;
  rs_tx_bytes : int;
  rs_hop_ms : float;
  rs_r : Cluster.rsm_load_result;
}

type rsm_gate = {
  rg_transport : string;
  rg_batch_txs : int;
  rg_w1_tx_s : float;  (* tx/s at window 1 *)
  rg_wn_tx_s : float;  (* tx/s at the deep window *)
  rg_pass : bool;
}

let rsm_acc : rsm_row list ref = ref []

let rsm_gate_acc : rsm_gate list ref = ref []

(* Absolute CI floor on the best TCP point, deliberately far below the
   measured rate (hundreds of tx/s on an idle machine) so only a real
   regression trips it. *)
let rsm_floor_tx_s = 25.0

let chaos_acc : chaos_row list ref = ref []

let metrics_acc : (string * Metrics.t) list ref = ref []

let wire_acc : wire_row list ref = ref []

(* One guided smoke campaign per real stack: trials, outcome counts, corpus
   growth and coverage footprint.  Safety violations on a real stack fail
   the section. *)
type fuzz_row = {
  fz_target : string;
  fz_n : int;
  fz_t : int;
  fz_trials : int;
  fz_committed : int;
  fz_stalled : int;
  fz_violations : int;
  fz_corpus : int;
  fz_cov_keys : int;
  fz_cov_points : int;
  fz_wall_s : float;
}

let fuzz_acc : fuzz_row list ref = ref []

let fuzz_rediscovery : Fuzz.rediscovery option ref = ref None

(* The rediscovery gate: guided search must beat the undirected baseline by
   at least this factor, and must actually find the reintroduced bug within
   this many trials (median).  Calibrated at the pinned root below. *)
let fuzz_min_speedup = 10.0

let fuzz_median_floor = 500.0

let chaos_failed = ref false

let section_failed = ref false

let write_throughput_json path ~seed ~runs ~chaos ~metrics ~wire ~cluster ~recovery ~lint
    ~fuzz ~rediscovery ~rsm ~rsm_gate tps =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  (* schema 7: adds the "rsm" object (windowed replicated-log loadgen:
     committed-tx/s and commit-latency percentiles per transport x window
     x batch point, the TCP pipelining-gate verdicts and the throughput
     floor); schema 6 added the "fuzz" object (coverage-guided adversary
     search: per-stack guided smoke campaigns, and the CZ AUX-bug
     rediscovery benchmark - trials-to-find guided vs blind with the gate
     verdict); schema 5 added the "recovery" array (supervised
     crash-recovery clusters: decisions/sec with a kill every k
     decisions, WAL bytes per decision, replay cost); schema 4 added the
     "cluster" array (decisions/sec of the batched socket hot path vs the
     per-message baseline); schema 3 added the "lint" object
     (static-analysis health of lib/ at report time); schema 2 added the
     "wire" array (per-decision on-wire traffic per stack).  Consumers of
     older schemas should treat all six as optional.

     schema 8: the "lint" object now includes the interprocedural flow
     pass - "flow_findings" (wire-taint + unbounded-alloc, split out
     from the total) and "flow_seconds" (whole-lib analysis wall-clock,
     gated under 10s in CI) *)
  Buffer.add_string buf "  \"schema\": 8,\n";
  (match lint with
  | Some ((r : Bca_lint.Lint.report), flow_seconds) ->
    let flow_findings =
      List.length
        (List.filter
           (fun (f : Bca_lint.Lint.finding) ->
             List.exists (String.equal f.rule) Bca_lint.Flow.rule_names)
           r.findings)
    in
    Buffer.add_string buf
      (Printf.sprintf
         "  \"lint\": {\"rules\": %d, \"files_scanned\": %d, \"findings\": %d, \
          \"flow_findings\": %d, \"flow_seconds\": %.3f, \
          \"suppressed\": %d, \"suppression_comments\": %d},\n"
         (List.length r.rules_run) r.files_scanned (List.length r.findings) flow_findings
         flow_seconds r.suppressed r.suppression_comments)
  | None -> ());
  Buffer.add_string buf "  \"benchmark\": \"netsim-throughput\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"seed\": %Ld,\n  \"runs_per_point\": %d,\n" seed runs);
  Buffer.add_string buf "  \"scheduler\": \"random (indexed, O(1) per delivery)\",\n";
  Buffer.add_string buf "  \"stacks\": [\n";
  List.iteri
    (fun i tp ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"stack\": %S, \"n\": %d, \"t\": %d, \"runs\": %d, \"deliveries\": %d, \
            \"wall_s\": %.6f, \"deliveries_per_sec\": %.1f}%s\n"
           tp.tp_stack tp.tp_n tp.tp_t tp.tp_runs tp.tp_deliveries tp.tp_wall_s (dps tp)
           (if i = List.length tps - 1 then "" else ",")))
    tps;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"chaos\": [\n";
  List.iteri
    (fun i row ->
      let tp = row.cz_tp in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"stack\": %S, \"n\": %d, \"t\": %d, \"runs\": %d, \"committed\": %d, \
            \"stalled\": %d, \"safety_failures\": %d, \"deliveries\": %d, \
            \"wall_s\": %.6f, \"deliveries_per_sec\": %.1f}%s\n"
           tp.tp_stack tp.tp_n tp.tp_t tp.tp_runs row.cz_committed row.cz_stalled
           row.cz_failures tp.tp_deliveries tp.tp_wall_s (dps tp)
           (if i = List.length chaos - 1 then "" else ",")))
    chaos;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"wire\": [\n";
  List.iteri
    (fun i w ->
      let per d = float_of_int d /. float_of_int (max 1 w.wr_runs) in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"stack\": %S, \"n\": %d, \"t\": %d, \"decisions\": %d, \"frames\": %d, \
            \"bytes\": %d, \"words\": %d, \"frames_per_decision\": %.1f, \
            \"bytes_sent_per_decision\": %.1f, \"words_sent_per_decision\": %.1f}%s\n"
           w.wr_stack w.wr_n w.wr_t w.wr_runs w.wr_frames w.wr_bytes w.wr_words
           (per w.wr_frames) (per w.wr_bytes) (per w.wr_words)
           (if i = List.length wire - 1 then "" else ",")))
    wire;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"cluster\": [\n";
  List.iteri
    (fun i c ->
      let per d = float_of_int d /. float_of_int (max 1 c.cl_instances) in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"stack\": \"byz-strong\", \"transport\": %S, \"mode\": %S, \"n\": %d, \
            \"t\": %d, \"decisions\": %d, \"wall_s\": %.6f, \"decisions_per_sec\": %.1f, \
            \"frames\": %d, \"bytes\": %d, \"writes\": %d, \"batches\": %d, \
            \"records\": %d, \"max_occupancy\": %d, \"alloc_words\": %.0f, \
            \"frames_per_decision\": %.1f, \"bytes_per_decision\": %.1f}%s\n"
           c.cl_transport c.cl_mode c.cl_n c.cl_t c.cl_instances c.cl_wall_s (cluster_dps c)
           c.cl_frames c.cl_bytes c.cl_writes c.cl_batches c.cl_records c.cl_max_occupancy
           c.cl_alloc_words (per c.cl_frames) (per c.cl_bytes)
           (if i = List.length cluster - 1 then "" else ",")))
    cluster;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"recovery\": [\n";
  List.iteri
    (fun i r ->
      let per d = float_of_int d /. float_of_int (max 1 r.rc_decisions) in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"stack\": \"byz-strong\", \"transport\": %S, \"n\": %d, \"t\": %d, \
            \"decisions\": %d, \"kills\": %d, \"restarts\": %d, \"recoveries\": %d, \
            \"replayed_records\": %d, \"replayed_bytes\": %d, \"replay_s\": %.6f, \
            \"wal_bytes\": %d, \"wall_s\": %.6f, \"decisions_per_sec\": %.2f, \
            \"wal_bytes_per_decision\": %.1f}%s\n"
           r.rc_transport r.rc_n r.rc_t r.rc_decisions r.rc_kills r.rc_restarts
           r.rc_recoveries r.rc_replayed_records r.rc_replayed_bytes r.rc_replay_s
           r.rc_wal_bytes r.rc_wall_s (recovery_dps r) (per r.rc_wal_bytes)
           (if i = List.length recovery - 1 then "" else ",")))
    recovery;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"rsm\": {\n    \"rows\": [\n";
  List.iteri
    (fun i row ->
      let r = row.rs_r in
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"transport\": %S, \"n\": 4, \"t\": 1, \"window\": %d, \
            \"batch_txs\": %d, \"txs\": %d, \"tx_bytes\": %d, \"hop_ms\": %.1f, \
            \"committed\": %d, \"epochs\": %d, \"wall_s\": %.6f, \"tx_per_s\": %.1f, \
            \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"frames\": %d, \"bytes\": %d, \
            \"writes\": %d}%s\n"
           row.rs_transport row.rs_window row.rs_batch_txs row.rs_total row.rs_tx_bytes
           row.rs_hop_ms
           r.Cluster.lr_committed r.Cluster.lr_epochs r.Cluster.lr_duration_s
           r.Cluster.lr_tx_per_s r.Cluster.lr_p50_ms r.Cluster.lr_p99_ms
           r.Cluster.lr_frames r.Cluster.lr_bytes r.Cluster.lr_writes
           (if i = List.length rsm - 1 then "" else ",")))
    rsm;
  Buffer.add_string buf "    ],\n    \"gate\": [\n";
  List.iteri
    (fun i g ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"transport\": %S, \"batch_txs\": %d, \"w1_tx_s\": %.1f, \
            \"wn_tx_s\": %.1f, \"pass\": %b}%s\n"
           g.rg_transport g.rg_batch_txs g.rg_w1_tx_s g.rg_wn_tx_s g.rg_pass
           (if i = List.length rsm_gate - 1 then "" else ",")))
    rsm_gate;
  Buffer.add_string buf
    (Printf.sprintf "    ],\n    \"floor_tx_s\": %.1f\n  },\n" rsm_floor_tx_s);
  Buffer.add_string buf "  \"fuzz\": {\n    \"smoke\": [\n";
  List.iteri
    (fun i fz ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"target\": %S, \"n\": %d, \"t\": %d, \"trials\": %d, \
            \"committed\": %d, \"stalled\": %d, \"safety_violations\": %d, \
            \"corpus\": %d, \"coverage_keys\": %d, \"coverage_points\": %d, \
            \"wall_s\": %.6f}%s\n"
           fz.fz_target fz.fz_n fz.fz_t fz.fz_trials fz.fz_committed fz.fz_stalled
           fz.fz_violations fz.fz_corpus fz.fz_cov_keys fz.fz_cov_points fz.fz_wall_s
           (if i = List.length fuzz - 1 then "" else ",")))
    fuzz;
  Buffer.add_string buf "    ],\n    \"rediscovery\": ";
  (match rediscovery with
  | None -> Buffer.add_string buf "null\n"
  | Some (r : Fuzz.rediscovery) ->
    let arr a =
      String.concat ", " (Array.to_list (Array.map string_of_int a))
    in
    let pass =
      r.Fuzz.r_speedup >= fuzz_min_speedup && r.Fuzz.r_guided_median <= fuzz_median_floor
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"target\": \"cz-buggy\", \"root_seed\": 66, \"seeds\": %d, \"cap\": %d,\n\
         \      \"guided_trials\": [%s], \"blind_trials\": [%s],\n\
         \      \"guided_median\": %.1f, \"blind_median\": %.1f, \"speedup\": %.2f,\n\
         \      \"gate\": {\"min_speedup\": %.1f, \"guided_median_floor\": %.1f, \
          \"pass\": %b}}\n"
         r.Fuzz.r_seeds r.Fuzz.r_cap (arr r.Fuzz.r_guided) (arr r.Fuzz.r_blind)
         r.Fuzz.r_guided_median r.Fuzz.r_blind_median r.Fuzz.r_speedup fuzz_min_speedup
         fuzz_median_floor pass));
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"metrics\": [\n";
  List.iteri
    (fun i (name, m) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"stack\": %S, \"aggregate\": %s}%s\n" name
           (Metrics.to_json m)
           (if i = List.length metrics - 1 then "" else ",")))
    metrics;
  Buffer.add_string buf "  ]\n}\n";
  (* any I/O failure here must fail the process: a benchmark run whose
     report silently went missing reads as a healthy run *)
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf))
  with
  | () -> ()
  | exception Sys_error msg ->
    Printf.eprintf "cannot write throughput JSON to %S: %s\n" path msg;
    exit 1

let scaling () =
  let seed = root_seed () in
  let runs = match !opt_runs with Some r -> r | None -> 30 in
  section "Message-complexity scaling (random schedule, messages to global termination)";
  let points =
    List.concat
      [ List.map (fun (n, t) -> ("ABA (byz/strong)", Aba.Byz_strong, n, t))
          [ (4, 1); (7, 2); (10, 3); (13, 4) ];
        List.map (fun (n, t) -> ("ACA (crash/strong)", Aba.Crash_strong, n, t))
          [ (5, 2); (9, 4); (13, 6) ] ]
  in
  let tps =
    List.map
      (fun (name, spec, n, t) ->
        measure_throughput ~seed ~runs spec ~name ~cfg:(Types.cfg ~n ~t))
      points
  in
  let rows =
    List.map
      (fun tp ->
        let mean = float_of_int tp.tp_deliveries /. float_of_int tp.tp_runs in
        [ tp.tp_stack; string_of_int tp.tp_n;
          Printf.sprintf "%.0f" mean;
          Printf.sprintf "%.1f" (mean /. float_of_int (tp.tp_n * tp.tp_n)) ])
      tps
  in
  Tablefmt.print ~header:[ "protocol"; "n"; "messages (mean)"; "messages / n^2" ] rows;
  print_endline
    "(messages / n^2 stays flat: the O(n^2) message complexity the paper\n\
     claims as asymptotically optimal [16])";
  print_newline ();
  section "Simulator throughput (end-to-end runs, random indexed scheduler)";
  Tablefmt.print
    ~header:[ "stack"; "n"; "runs"; "deliveries"; "wall (s)"; "deliveries/sec" ]
    (List.map
       (fun tp ->
         [ tp.tp_stack; string_of_int tp.tp_n; string_of_int tp.tp_runs;
           string_of_int tp.tp_deliveries;
           Printf.sprintf "%.4f" tp.tp_wall_s;
           Printf.sprintf "%.0f" (dps tp) ])
       tps);
  scaling_acc := tps

(* ------------------------------------------------------------------ *)
(* Chaos campaign: randomized fault plans against the six stacks.       *)
(* ------------------------------------------------------------------ *)

let chaos () =
  let seed = root_seed () in
  let runs = match !opt_runs with Some r -> r | None -> 40 in
  section
    (Printf.sprintf
       "Chaos campaign - randomized drop/dup/partition/crash plans (%d plans per stack)"
       runs);
  let rows =
    List.mapi
      (fun i (name, spec, cfg) ->
        let t0 = Unix.gettimeofday () in
        let r =
          Campaign.run_stack ~name ~spec ~cfg ~runs
            ~seed:(Int64.add seed (Int64.of_int i))
            ()
        in
        let wall = Unix.gettimeofday () -. t0 in
        ( r,
          { cz_tp =
              { tp_stack = name;
                tp_n = cfg.Types.n;
                tp_t = cfg.Types.t;
                tp_runs = runs;
                tp_deliveries = r.Campaign.total_deliveries;
                tp_wall_s = wall };
            cz_committed = r.Campaign.committed;
            cz_stalled = r.Campaign.stalled;
            cz_failures = List.length r.Campaign.failures } ))
      Campaign.six_stacks
  in
  Tablefmt.print
    ~header:
      [ "stack"; "plans"; "committed"; "stalled"; "safety fails"; "deliveries";
        "wall (s)"; "deliveries/sec" ]
    (List.map
       (fun ((r : Campaign.stack_report), row) ->
         let tp = row.cz_tp in
         [ r.Campaign.stack; string_of_int r.Campaign.runs;
           string_of_int r.Campaign.committed; string_of_int r.Campaign.stalled;
           string_of_int row.cz_failures; string_of_int tp.tp_deliveries;
           Printf.sprintf "%.4f" tp.tp_wall_s; Printf.sprintf "%.0f" (dps tp) ])
       rows);
  print_endline
    "(stalled runs dropped an honest message within the fairness budget -\n\
     a legal liveness loss for protocols without retransmission; any\n\
     safety failure below is a bug and fails this process)";
  List.iter
    (fun ((r : Campaign.stack_report), _) ->
      if r.Campaign.failures <> [] then begin
        chaos_failed := true;
        Format.printf "@.%a@." Campaign.pp_stack_report r
      end)
    rows;
  chaos_acc := List.map snd rows

(* ------------------------------------------------------------------ *)
(* Wire cost: measured on-wire traffic per decision, per stack.         *)
(* ------------------------------------------------------------------ *)

let wire () =
  let seed = root_seed () in
  let runs = match !opt_runs with Some r -> min r 200 | None -> 25 in
  section
    (Printf.sprintf
       "Wire cost - loopback cluster, every hop through the codec (%d decisions per stack)"
       runs);
  let rows =
    List.mapi
      (fun i (name, spec) ->
        let byz =
          match spec with
          | Aba.Crash_strong | Aba.Crash_weak _ | Aba.Crash_local -> false
          | _ -> true
        in
        let n = if byz then 4 else 5 in
        let cfg = Types.cfg ~n ~t:(if byz then (n - 1) / 3 else (n - 1) / 2) in
        let inputs =
          Array.init n (fun p -> if p mod 2 = 0 then Value.V0 else Value.V1)
        in
        let frames = ref 0 and bytes = ref 0 and words = ref 0 in
        for k = 0 to runs - 1 do
          match
            Cluster.run_loopback
              ~seed:(Int64.add seed (Int64.of_int ((1000 * i) + k)))
              spec ~cfg ~inputs
          with
          | Ok (_, st) ->
            frames := !frames + st.Cluster.frames;
            bytes := !bytes + st.Cluster.bytes;
            words := !words + st.Cluster.words
          | Error e -> failwith (Printf.sprintf "%s: loopback run %d failed: %s" name k e)
        done;
        { wr_stack = name;
          wr_n = n;
          wr_t = cfg.Types.t;
          wr_runs = runs;
          wr_frames = !frames;
          wr_bytes = !bytes;
          wr_words = !words })
      (Cluster.all_stacks ())
  in
  Tablefmt.print
    ~header:
      [ "stack"; "n"; "decisions"; "frames/decision"; "bytes/decision"; "words/decision" ]
    (List.map
       (fun w ->
         let per d = float_of_int d /. float_of_int w.wr_runs in
         [ w.wr_stack; string_of_int w.wr_n; string_of_int w.wr_runs;
           Printf.sprintf "%.1f" (per w.wr_frames);
           Printf.sprintf "%.1f" (per w.wr_bytes);
           Printf.sprintf "%.1f" (per w.wr_words) ])
       rows);
  print_endline
    "(on-wire bytes include the 14-byte frame header; words = ceil(bytes/8),\n\
     the unit the paper's communication-complexity claims use)";
  wire_acc := rows

(* ------------------------------------------------------------------ *)
(* Cluster throughput: the batched socket hot path vs its baselines.    *)
(* ------------------------------------------------------------------ *)

let cluster_bench () =
  let seed = root_seed () in
  let instances = 64 in
  let cfg = Types.cfg ~n:4 ~t:1 in
  let spec = Aba.Byz_strong in
  section
    (Printf.sprintf
       "Cluster throughput - %d byz-strong decisions, n=4 endpoints over real sockets"
       instances);
  let measure ~transport ~mode =
    let tname = match transport with `Unix -> "unix" | `Tcp -> "tcp" in
    let mname =
      match mode with
      | `Per_message -> "per-message"
      | `Pipelined -> "pipelined"
      | `Batched -> "batched"
    in
    let frames = ref 0 and bytes = ref 0 and writes = ref 0 in
    let batches = ref 0 and records = ref 0 and occ = ref 0 in
    let add (r : Cluster.inproc_result) =
      frames := !frames + r.Cluster.ir_frames;
      bytes := !bytes + r.Cluster.ir_bytes;
      writes := !writes + r.Cluster.ir_writes;
      batches := !batches + r.Cluster.ir_batches;
      records := !records + r.Cluster.ir_records;
      occ := max !occ r.Cluster.ir_max_occupancy
    in
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    (match mode with
    | `Per_message ->
      (* the seed's path: one decision at a time, fresh endpoints each,
         one frame per message, one write per frame.  Seeded so decision k
         is exactly instance k of the concurrent modes. *)
      for k = 0 to instances - 1 do
        let s = if k = 0 then seed else Cluster.instance_seed ~seed (k - 1) in
        match
          Cluster.run_inproc_cluster ~seed:s ~policy:Bca_transport.Batcher.immediate
            ~coalesce:false ~timeout_s:60. spec ~cfg ~instances:1 ~transport
        with
        | Ok r -> add r
        | Error e ->
          failwith (Printf.sprintf "cluster (%s, %s, decision %d): %s" tname mname k e)
      done
    | `Pipelined | `Batched -> (
      let policy =
        match mode with `Pipelined -> Some Bca_transport.Batcher.immediate | _ -> None
      in
      let coalesce = (match mode with `Pipelined -> false | _ -> true) in
      match
        Cluster.run_inproc_cluster ~seed ?policy ~coalesce ~timeout_s:120. spec ~cfg
          ~instances ~transport
      with
      | Ok r -> add r
      | Error e -> failwith (Printf.sprintf "cluster (%s, %s): %s" tname mname e)));
    let wall = Unix.gettimeofday () -. t0 in
    let alloc = (Gc.allocated_bytes () -. a0) /. 8.0 in
    { cl_transport = tname;
      cl_mode = mname;
      cl_n = cfg.Types.n;
      cl_t = cfg.Types.t;
      cl_instances = instances;
      cl_wall_s = wall;
      cl_frames = !frames;
      cl_bytes = !bytes;
      cl_writes = !writes;
      cl_batches = !batches;
      cl_records = !records;
      cl_max_occupancy = !occ;
      cl_alloc_words = alloc }
  in
  let rows =
    List.concat_map
      (fun transport ->
        List.map (fun mode -> measure ~transport ~mode) [ `Per_message; `Pipelined; `Batched ])
      [ `Unix; `Tcp ]
  in
  Tablefmt.print
    ~header:
      [ "transport"; "mode"; "decisions"; "wall (s)"; "decisions/sec"; "frames"; "bytes";
        "writes"; "max occ"; "Mwords alloc" ]
    (List.map
       (fun c ->
         [ c.cl_transport; c.cl_mode; string_of_int c.cl_instances;
           Printf.sprintf "%.4f" c.cl_wall_s;
           Printf.sprintf "%.0f" (cluster_dps c);
           string_of_int c.cl_frames; string_of_int c.cl_bytes; string_of_int c.cl_writes;
           string_of_int c.cl_max_occupancy;
           Printf.sprintf "%.2f" (c.cl_alloc_words /. 1e6) ])
       rows);
  let find tname mname =
    List.find_opt (fun c -> c.cl_transport = tname && c.cl_mode = mname) rows
  in
  List.iter
    (fun tname ->
      match (find tname "per-message", find tname "batched") with
      | Some base, Some batched ->
        Printf.printf
          "%s: batched hot path decides %.1fx faster than the per-message baseline\n\
          \     (%.1f vs %.1f decisions/sec; %.1fx fewer frames, %.1fx fewer bytes, %.1fx \
           fewer writes)\n"
          tname
          (cluster_dps batched /. cluster_dps base)
          (cluster_dps batched) (cluster_dps base)
          (float_of_int base.cl_frames /. float_of_int (max 1 batched.cl_frames))
          (float_of_int base.cl_bytes /. float_of_int (max 1 batched.cl_bytes))
          (float_of_int base.cl_writes /. float_of_int (max 1 batched.cl_writes))
      | _ -> ())
    [ "unix"; "tcp" ];
  (match !opt_floor with
  | None -> ()
  | Some floor -> (
    match find "tcp" "batched" with
    | Some batched when cluster_dps batched < floor ->
      Printf.eprintf "cluster throughput FLOOR VIOLATED: tcp batched %.1f decisions/sec < %.1f\n"
        (cluster_dps batched) floor;
      section_failed := true
    | Some batched ->
      Printf.printf "(floor ok: tcp batched %.1f >= %.1f decisions/sec)\n" (cluster_dps batched)
        floor
    | None -> ()));
  cluster_acc := rows

(* ------------------------------------------------------------------ *)
(* Crash recovery: supervised clusters under periodic SIGKILLs.         *)
(* ------------------------------------------------------------------ *)

(* The recovery section forks real node processes, so it needs the
   bca_node binary: $BCA_NODE, or the sibling bin/ directory of this
   executable inside _build.  When neither exists (installed binary, odd
   layout) the section is skipped rather than failed - it measures the
   launcher, not the protocol. *)
let bench_node_exe () =
  match Sys.getenv_opt "BCA_NODE" with
  | Some p -> if Sys.file_exists p then Some p else None
  | None ->
    let p =
      Filename.concat
        (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
        "bca_node.exe"
    in
    if Sys.file_exists p then Some p else None

let recovery_bench () =
  let seed = root_seed () in
  let runs = match !opt_runs with Some r -> min r 20 | None -> 4 in
  let kill_every = 2 in
  let cfg = Types.cfg ~n:4 ~t:1 in
  let inputs = Array.init 4 (fun p -> if p mod 2 = 0 then Value.V0 else Value.V1) in
  section
    (Printf.sprintf
       "Crash recovery - supervised byz-strong clusters, SIGKILL at the round-1 coin \
        reveal on every %dth decision (%d decisions per transport)"
       kill_every runs);
  match bench_node_exe () with
  | None ->
    print_endline "(skipped: bca_node.exe not found; set BCA_NODE or run `dune build bin`)"
  | Some node_exe ->
    let measure transport =
      let tname = match transport with `Unix -> "unix" | `Tcp -> "tcp" in
      let kills = ref 0 and restarts = ref 0 and wal_bytes = ref 0 in
      let recoveries = ref 0 and rec_records = ref 0 and rec_bytes = ref 0 in
      let replay_s = ref 0.0 in
      let t0 = Unix.gettimeofday () in
      for k = 0 to runs - 1 do
        let wal_dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "bca-bench-wal-%d-%s-%d" (Unix.getpid ()) tname k)
        in
        Unix.mkdir wal_dir 0o700;
        let cleanup () =
          (match Sys.readdir wal_dir with
          | entries ->
            Array.iter
              (fun f -> try Sys.remove (Filename.concat wal_dir f) with Sys_error _ -> ())
              entries
          | exception Sys_error _ -> ());
          try Unix.rmdir wal_dir with Unix.Unix_error _ -> ()
        in
        let kill_at = if k mod kill_every = 0 then Some (2, "coin:1") else None in
        if kill_at <> None then incr kills;
        let outcome =
          Fun.protect ~finally:cleanup (fun () ->
              Cluster.spawn_cluster_supervised ~timeout_s:30. ?kill_at ~node_exe
                ~stack:"byz-strong" ~eps:0.25 ~cfg
                ~seed:(Int64.add seed (Int64.of_int (3000 + k)))
                ~inputs ~wal_dir ~transport ())
        in
        match outcome with
        | Ok r ->
          restarts := !restarts + r.Cluster.s_restarts;
          wal_bytes := !wal_bytes + r.Cluster.s_wal_bytes;
          List.iter
            (fun ri ->
              incr recoveries;
              rec_records := !rec_records + ri.Cluster.ri_records;
              rec_bytes := !rec_bytes + ri.Cluster.ri_wal_bytes;
              replay_s := !replay_s +. ri.Cluster.ri_replay_s)
            r.Cluster.s_recoveries
        | Error e -> failwith (Printf.sprintf "recovery (%s, decision %d): %s" tname k e)
      done;
      let wall = Unix.gettimeofday () -. t0 in
      { rc_transport = tname;
        rc_n = cfg.Types.n;
        rc_t = cfg.Types.t;
        rc_decisions = runs;
        rc_kills = !kills;
        rc_restarts = !restarts;
        rc_recoveries = !recoveries;
        rc_replayed_records = !rec_records;
        rc_replayed_bytes = !rec_bytes;
        rc_replay_s = !replay_s;
        rc_wal_bytes = !wal_bytes;
        rc_wall_s = wall }
    in
    let rows = List.map measure [ `Unix; `Tcp ] in
    Tablefmt.print
      ~header:
        [ "transport"; "decisions"; "kills"; "restarts"; "recoveries"; "wall (s)";
          "decisions/sec"; "WAL B/decision"; "replay ms (mean)"; "records replayed" ]
      (List.map
         (fun r ->
           [ r.rc_transport; string_of_int r.rc_decisions; string_of_int r.rc_kills;
             string_of_int r.rc_restarts; string_of_int r.rc_recoveries;
             Printf.sprintf "%.3f" r.rc_wall_s;
             Printf.sprintf "%.2f" (recovery_dps r);
             Printf.sprintf "%.1f"
               (float_of_int r.rc_wal_bytes /. float_of_int (max 1 r.rc_decisions));
             (if r.rc_recoveries = 0 then "-"
              else
                Printf.sprintf "%.2f"
                  (1000. *. r.rc_replay_s /. float_of_int r.rc_recoveries));
             string_of_int r.rc_replayed_records ])
         rows);
    print_endline
      "(every killed node must come back through its WAL: a kill without a\n\
       matching recovery below fails this process)";
    List.iter
      (fun r ->
        if r.rc_recoveries < r.rc_kills then begin
          section_failed := true;
          Printf.eprintf "recovery (%s): %d kills but only %d WAL recoveries\n"
            r.rc_transport r.rc_kills r.rc_recoveries
        end)
      rows;
    recovery_acc := rows

(* ------------------------------------------------------------------ *)
(* RSM loadgen: committed-tx throughput of the windowed log.            *)
(* ------------------------------------------------------------------ *)

(* Preload the whole workload and run the RSM to its last commit over
   loopback unix-domain sockets and over TCP, at window depths 1 and 4
   and batch caps 8 and 64.  Epochs are sized as in
   [bca loadgen --epochs 0]: the first [window] epochs cut their batches
   before any submission lands, capacity doubles for ACS-excluded
   re-queues, plus two epochs of slack.

   Local sockets are microseconds away, so a raw run is CPU-bound and a
   deep window only adds window-fill epochs.  Pipelining pays when the
   per-epoch round trips dominate, so every point runs under an emulated
   2 ms one-way hop ([hop_s], netem-style) - that is the regime the
   window exists for, and there window 4 must beat window 1 strictly at
   every (transport, batch) point or the section fails.  The workload is
   sized to span at least three tx-bearing epochs at the largest batch:
   a load that fits one epoch gives both windows the same critical path
   (window-fill epochs commit concurrently) and the comparison would be
   a coin flip. *)
let rsm_windows = (1, 4)

let rsm_batches = [ 8; 64 ]

let rsm_hop_ms = 2.0

let rsm_bench () =
  let seed = root_seed () in
  let cfg = Types.cfg ~n:4 ~t:1 in
  let min_total =
    3 * (cfg.Types.n - cfg.Types.t)
    * List.fold_left (fun a b -> max a b) 1 rsm_batches
  in
  let total =
    match !opt_runs with
    | Some r -> max min_total (min (8 * r) (2 * min_total))
    | None -> min_total
  in
  let tx_bytes = 48 in
  section
    (Printf.sprintf
       "RSM loadgen: windowed log, %d preloaded txs of %d B, %.0f ms emulated hop \
        (n=4, t=1)"
       total tx_bytes rsm_hop_ms);
  let w1, wn = rsm_windows in
  let transports = [ (`Unix, "unix"); (`Tcp, "tcp") ] in
  let run ~transport ~name ~window ~batch_txs =
    let cap = (cfg.Types.n - cfg.Types.t) * batch_txs in
    let epochs = window + (((total + cap - 1) / cap) * 2) + 2 in
    let params =
      Bca_rsm.Rsm.mk_params ~cfg ~coin_seed:seed ~epochs ~window
        ~batch:{ Bca_rsm.Rsm.max_txs = batch_txs; max_bytes = 64 * 1024 }
        ()
    in
    let load = { Cluster.lg_rate = 0.; lg_total = total; lg_tx_bytes = tx_bytes } in
    let res =
      Cluster.run_rsm_loadgen ~timeout_s:120. ~hop_s:(rsm_hop_ms /. 1000.) params ~load
        ~transport
    in
    match res with
    | Error e ->
      failwith (Printf.sprintf "rsm (%s, w=%d, b=%d): %s" name window batch_txs e)
    | Ok r ->
      (* a shortfall is a liveness bug, not a slow run: epochs are sized
         so every preloaded transaction fits with slack *)
      if r.Cluster.lr_committed < total then
        failwith
          (Printf.sprintf "rsm (%s, w=%d, b=%d): only %d/%d txs committed" name window
             batch_txs r.Cluster.lr_committed total);
      { rs_transport = name;
        rs_window = window;
        rs_batch_txs = batch_txs;
        rs_total = total;
        rs_tx_bytes = tx_bytes;
        rs_hop_ms = rsm_hop_ms;
        rs_r = r }
  in
  let rows =
    List.concat_map
      (fun (transport, name) ->
        List.concat_map
          (fun window ->
            List.map (fun batch_txs -> run ~transport ~name ~window ~batch_txs)
              rsm_batches)
          [ w1; wn ])
      transports
  in
  Tablefmt.print
    ~header:
      [ "transport"; "window"; "batch"; "epochs"; "committed"; "wall (s)"; "tx/sec";
        "p50 (ms)"; "p99 (ms)"; "frames" ]
    (List.map
       (fun row ->
         let r = row.rs_r in
         [ row.rs_transport; string_of_int row.rs_window; string_of_int row.rs_batch_txs;
           string_of_int r.Cluster.lr_epochs; string_of_int r.Cluster.lr_committed;
           Printf.sprintf "%.3f" r.Cluster.lr_duration_s;
           Printf.sprintf "%.1f" r.Cluster.lr_tx_per_s;
           Printf.sprintf "%.2f" r.Cluster.lr_p50_ms;
           Printf.sprintf "%.2f" r.Cluster.lr_p99_ms; string_of_int r.Cluster.lr_frames ])
       rows);
  let tx_s transport window batch_txs =
    List.find_map
      (fun row ->
        if row.rs_transport = transport && row.rs_window = window
           && row.rs_batch_txs = batch_txs
        then Some row.rs_r.Cluster.lr_tx_per_s
        else None)
      rows
  in
  (* the pipelining gate: under the emulated hop the deep window must win
     at every point *)
  let gates =
    List.concat_map
      (fun (_, name) ->
        List.filter_map
          (fun batch_txs ->
            match (tx_s name w1 batch_txs, tx_s name wn batch_txs) with
            | Some slow, Some fast ->
              let pass = fast > slow in
              if pass then
                Printf.printf
                  "(gate ok: %s, batch %d: window %d at %.1f tx/s > window %d at %.1f)\n"
                  name batch_txs wn fast w1 slow
              else begin
                section_failed := true;
                Printf.eprintf
                  "RSM GATE VIOLATED: %s, batch %d: window %d at %.1f tx/s <= window %d \
                   at %.1f\n"
                  name batch_txs wn fast w1 slow
              end;
              Some
                { rg_transport = name; rg_batch_txs = batch_txs; rg_w1_tx_s = slow;
                  rg_wn_tx_s = fast; rg_pass = pass }
            | _ -> None)
          rsm_batches)
      transports
  in
  let best =
    List.fold_left (fun acc row -> Float.max acc row.rs_r.Cluster.lr_tx_per_s) 0.
      (List.filter (fun row -> row.rs_transport = "tcp") rows)
  in
  if best < rsm_floor_tx_s then begin
    section_failed := true;
    Printf.eprintf "RSM FLOOR VIOLATED: best tcp point %.1f tx/s < floor %.1f\n" best
      rsm_floor_tx_s
  end
  else Printf.printf "(floor ok: best tcp point %.1f tx/s >= %.1f)\n" best rsm_floor_tx_s;
  rsm_acc := rows;
  rsm_gate_acc := gates

(* ------------------------------------------------------------------ *)
(* Observability: per-round / per-phase metrics and trace capture.      *)
(* ------------------------------------------------------------------ *)

let metrics () =
  let seed = root_seed () in
  let runs = match !opt_runs with Some r -> min r 200 | None -> 25 in
  section
    (Printf.sprintf
       "Observability metrics - instrumented chaos runs (%d per stack)" runs);
  let rows =
    List.mapi
      (fun i (name, spec, cfg) ->
        (* one buffering trace per run, folded into the pure aggregate;
           merge is associative, so the fold is domain-count independent *)
        let m =
          Mc.map_fold ~runs
            ~seed:(Int64.add seed (Int64.of_int (60 + i)))
            ~init:Metrics.empty ~merge:Metrics.merge
            (fun ~seed ->
              let tracer = Trace.create () in
              let (_ : Campaign.run_report) =
                Campaign.run_once ~tracer ~spec ~cfg ~seed ()
              in
              Metrics.add_run Metrics.empty (Trace.events tracer))
        in
        (name, m))
      Campaign.six_stacks
  in
  Tablefmt.print
    ~header:
      [ "stack"; "runs"; "decided"; "sends"; "deliveries"; "drops";
        "decision round p50/p99"; "violations" ]
    (List.map
       (fun (name, m) ->
         let h = Metrics.rounds_histogram m in
         [ name;
           string_of_int (Metrics.runs m);
           string_of_int (Metrics.decided_runs m);
           string_of_int (Metrics.sends m);
           string_of_int (Metrics.deliveries m);
           string_of_int (Metrics.drops m);
           (if Metrics.decided_runs m = 0 then "-"
            else
              Printf.sprintf "%d / %d"
                (Bca_util.Histogram.percentile h 0.50)
                (Bca_util.Histogram.percentile h 0.99));
           string_of_int (Metrics.violations m) ])
       rows);
  List.iter
    (fun (name, m) ->
      Format.printf "@.%s:@.%a@." name Metrics.pp m)
    rows;
  metrics_acc := rows

let trace_capture path =
  let seed = root_seed () in
  section "Trace capture - broken_run violation, JSONL export, replay";
  let tracer = Trace.create () in
  let report = Campaign.broken_run ~tracer ~seed () in
  let events = Trace.events tracer in
  Printf.printf "captured %d events (%d safety violations) from seed %Ld\n"
    (Array.length events)
    (List.length (Campaign.safety_violations report))
    seed;
  (match
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> Trace.output oc tracer)
   with
  | () -> Printf.printf "exported to %s\n" path
  | exception Sys_error msg ->
    Printf.eprintf "cannot write trace to %S: %s\n" path msg;
    exit 1);
  match Trace.load path with
  | Error msg ->
    Printf.eprintf "trace re-import failed: %s\n" msg;
    exit 1
  | Ok reloaded ->
    if reloaded <> events then begin
      Printf.eprintf "trace JSONL round-trip is not identity\n";
      exit 1
    end;
    (match Campaign.replay_broken ~seed reloaded with
    | Error msg ->
      Printf.eprintf "replay diverged: %s\n" msg;
      exit 1
    | Ok (report', replayed) ->
      if replayed <> events then begin
        Printf.eprintf "replayed trace differs from the captured one\n";
        exit 1
      end;
      if
        List.length (Campaign.safety_violations report')
        <> List.length (Campaign.safety_violations report)
      then begin
        Printf.eprintf "replay did not reproduce the violations\n";
        exit 1
      end;
      Printf.printf "replayed %d events bit-identically; violation reproduced\n"
        (Array.length replayed))

(* ------------------------------------------------------------------ *)
(* Fuzz: coverage-guided adversary search, smoke + rediscovery gate.    *)
(* ------------------------------------------------------------------ *)

(* Two halves.  Smoke: a guided campaign on each real stack must find
   nothing (these stacks are believed correct; a find is a regression and
   fails the process, same discipline as the chaos section).  Rediscovery:
   reintroduce the historical Cachin-Zanolini per-value-AUX bug behind its
   flag and measure trials-to-find, guided vs blind, median over 5 root
   seeds.  The gate - guided at least [fuzz_min_speedup] times faster and
   finding within [fuzz_median_floor] trials - runs at a pinned root
   (0x42), like the Bechamel seeds: the ratio is a property of the
   calibrated configuration, not of --seed, and the per-seed arrays are
   recorded in the JSON for inspection. *)
let fuzz_bench () =
  let seed = root_seed () in
  let trials = match !opt_runs with Some r -> min r 200 | None -> 64 in
  section
    (Printf.sprintf "Fuzz - guided smoke on the six stacks (%d trials each)" trials);
  let rows =
    List.mapi
      (fun i tg ->
        let t0 = Unix.gettimeofday () in
        let c =
          Fuzz.run ~mode:Fuzz.Guided ~target:tg ~trials
            ~seed:(Int64.add seed (Int64.of_int (31 + i)))
            ()
        in
        let wall = Unix.gettimeofday () -. t0 in
        (match c.Fuzz.c_found with
        | None -> ()
        | Some f ->
          chaos_failed := true;
          Printf.printf "!! %s: safety violation at trial %d (plan %s)\n" tg.Fuzz.tg_name
            f.Fuzz.f_trial f.Fuzz.f_name);
        { fz_target = tg.Fuzz.tg_name;
          fz_n = tg.Fuzz.tg_n;
          fz_t = tg.Fuzz.tg_t;
          fz_trials = c.Fuzz.c_trials;
          fz_committed = c.Fuzz.c_committed;
          fz_stalled = c.Fuzz.c_stalled;
          fz_violations =
            (match c.Fuzz.c_found with
            | Some f -> List.length f.Fuzz.f_violations
            | None -> 0);
          fz_corpus = List.length c.Fuzz.c_corpus;
          fz_cov_keys = Bca_obs.Coverage.cardinality c.Fuzz.c_coverage;
          fz_cov_points = Bca_obs.Coverage.points c.Fuzz.c_coverage;
          fz_wall_s = wall })
      Fuzz.six
  in
  Tablefmt.print
    ~header:[ "target"; "trials"; "committed"; "stalled"; "corpus"; "coverage"; "wall" ]
    (List.map
       (fun fz ->
         [ fz.fz_target;
           string_of_int fz.fz_trials;
           string_of_int fz.fz_committed;
           string_of_int fz.fz_stalled;
           string_of_int fz.fz_corpus;
           Printf.sprintf "%d keys / %d pts" fz.fz_cov_keys fz.fz_cov_points;
           Printf.sprintf "%.2fs" fz.fz_wall_s ])
       rows);
  fuzz_acc := rows;
  section "Fuzz - CZ AUX-bug rediscovery, guided vs blind (pinned root 0x42)";
  let r = Fuzz.rediscover ~seeds:5 ~cap:3_000 ~seed:0x42L () in
  Format.printf "%a@." Fuzz.pp_rediscovery r;
  fuzz_rediscovery := Some r;
  if r.Fuzz.r_speedup < fuzz_min_speedup then begin
    section_failed := true;
    Printf.printf "!! rediscovery speedup %.2fx below the %.1fx gate\n" r.Fuzz.r_speedup
      fuzz_min_speedup
  end;
  if r.Fuzz.r_guided_median > fuzz_median_floor then begin
    section_failed := true;
    Printf.printf "!! guided median %.1f trials above the %.1f-trial floor\n"
      r.Fuzz.r_guided_median fuzz_median_floor
  end

(* Static-analysis health of the lib/ tree, folded into the report so a
   benchmark JSON also records whether the sources it measured were lint
   clean.  Runs the full interprocedural flow pass and times it, so the
   report doubles as a performance record of the analysis itself.
   Benchmarks normally run from the repo root; when lib/ is not there
   (installed binary, odd cwd) the section is simply omitted. *)
let lint_summary () =
  if Sys.file_exists "lib" && Sys.is_directory "lib" then
    match
      let t0 = Unix.gettimeofday () in
      let report =
        Bca_lint.Lint.run ~rules:Bca_lint.Rules.all ~flow:Bca_lint.Flow.pass
          ~paths:[ "lib" ] ()
      in
      (report, Unix.gettimeofday () -. t0)
    with
    | timed -> Some timed
    | exception _ -> None
  else None

let flush_json () =
  if
    !scaling_acc <> [] || !chaos_acc <> [] || !metrics_acc <> [] || !wire_acc <> []
    || !cluster_acc <> [] || !recovery_acc <> [] || !fuzz_acc <> []
    || !fuzz_rediscovery <> None || !rsm_acc <> []
  then begin
    let path = json_path () in
    let runs = match !opt_runs with Some r -> r | None -> 30 in
    write_throughput_json path ~seed:(root_seed ()) ~runs ~chaos:!chaos_acc
      ~metrics:!metrics_acc ~wire:!wire_acc ~cluster:!cluster_acc ~recovery:!recovery_acc
      ~lint:(lint_summary ()) ~fuzz:!fuzz_acc ~rediscovery:!fuzz_rediscovery ~rsm:!rsm_acc
      ~rsm_gate:!rsm_gate_acc !scaling_acc;
    Printf.printf "\n(throughput written to %s)\n" path
  end

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out.                       *)
(* ------------------------------------------------------------------ *)

let ablation () =
  let seed = root_seed () in
  section "Ablations (n=4, t=1, mixed inputs, fair lockstep, 2000 runs)";
  let module A = Bca_experiments.Ablation in
  let opt_on, opt_off = A.ev_optimizations ~runs:2000 ~seed:(Int64.add seed 9L) in
  let plain, graded = A.graded_vs_plain ~runs:2000 ~seed:(Int64.add seed 10L) in
  let tail = A.termination_layer ~runs:2000 ~seed:(Int64.add seed 11L) in
  Tablefmt.print
    ~header:[ "ablation"; "variant A"; "variant B"; "delta" ]
    [ [ "Appendix G.1 optimizations";
        "on: " ^ fmt_mean opt_on;
        "off: " ^ fmt_mean opt_off;
        Printf.sprintf "%.2f broadcasts saved" (opt_off.Summary.mean -. opt_on.Summary.mean) ];
      [ "grading (GBCA vs BCA, strong coin)";
        "plain: " ^ fmt_mean plain;
        "graded: " ^ fmt_mean graded;
        Printf.sprintf
          "%+.2f on fair runs (grade 2 commits coin-free; reversed under the adversary)"
          (graded.Summary.mean -. plain.Summary.mean) ];
      [ "termination layer tail"; "-"; "-";
        Printf.sprintf "%s broadcasts from first commit to global termination"
          (fmt_mean tail) ] ]

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benches: one Test per table/experiment family.   *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  section "Wall-clock micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let run_acs () =
    let cfg = Types.cfg ~n:4 ~t:1 in
    let params = { Bca_acs.Acs.cfg; coin_seed = 7L } in
    let exec =
      Bca_netsim.Async_exec.create ~n:4 ~make:(fun pid ->
          let t, init = Bca_acs.Acs.create params ~me:pid ~proposal:"tx" in
          (Bca_acs.Acs.node t, List.map (fun m -> Bca_netsim.Node.Broadcast m) init))
    in
    let rng = Bca_util.Rng.create 3L in
    ignore
      (Bca_netsim.Async_exec.run exec (Bca_netsim.Async_exec.random_scheduler rng)
        : Bca_netsim.Async_exec.outcome)
  in
  let tests =
    [ Test.make ~name:"table1.strong (one adversarial run)"
        (Staged.stage (fun () -> ignore (Table1.strong ~runs:1 ~seed:1L : Summary.t)));
      Test.make ~name:"table1.weak e=1/4 (one adversarial run)"
        (Staged.stage (fun () -> ignore (Table1.weak ~eps:0.25 ~runs:1 ~seed:2L : Summary.t)));
      Test.make ~name:"table2.strong_t1 (one adversarial run)"
        (Staged.stage (fun () -> ignore (Table2.strong_t1 ~runs:1 ~seed:3L : Summary.t)));
      Test.make ~name:"table2.strong_2t1 (one adversarial run)"
        (Staged.stage (fun () -> ignore (Table2.strong_2t1 ~runs:1 ~seed:4L : Summary.t)));
      Test.make ~name:"table2.tsig (one adversarial run)"
        (Staged.stage (fun () -> ignore (Table2.tsig ~runs:1 ~seed:5L : Summary.t)));
      Test.make ~name:"attack.cz (5 rounds)"
        (Staged.stage (fun () ->
             ignore (Cz_attack.run ~degree:`T ~rounds:5 ~seed:6L : Cz_attack.result)));
      Test.make ~name:"acs n=4 (one honest run)" (Staged.stage run_acs) ]
  in
  let instance = Instance.monotonic_clock in
  let cfg_b = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg_b [ instance ] test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
      let estimates = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        estimates)
    tests

let usage () =
  Printf.eprintf
    "usage: main.exe [table1|table2|attack|scaling|chaos|wire|cluster|recovery|rsm|fuzz|ablation|bechamel|all]\n\
    \       [--runs K] [--seed S] [--json PATH] [--metrics] [--trace PATH] [--floor DPS]\n";
  exit 1

let parse_args () =
  let which = ref None in
  let rec go = function
    | [] -> ()
    | "--json" :: path :: rest ->
      opt_json := Some path;
      go rest
    | "--metrics" :: rest ->
      opt_metrics := true;
      go rest
    | "--trace" :: path :: rest ->
      opt_trace := Some path;
      go rest
    | "--runs" :: k :: rest ->
      (match int_of_string_opt k with
      | Some k when k > 0 -> opt_runs := Some k
      | _ ->
        Printf.eprintf "--runs expects a positive integer, got %S\n" k;
        exit 1);
      go rest
    | "--seed" :: s :: rest ->
      (match Int64.of_string_opt s with
      | Some s -> opt_seed := Some s
      | None ->
        Printf.eprintf "--seed expects an integer, got %S\n" s;
        exit 1);
      go rest
    | "--floor" :: f :: rest ->
      (match float_of_string_opt f with
      | Some f when f > 0.0 -> opt_floor := Some f
      | _ ->
        Printf.eprintf "--floor expects a positive number (decisions/sec), got %S\n" f;
        exit 1);
      go rest
    | [ ("--json" | "--runs" | "--seed" | "--trace" | "--floor") ] -> usage ()
    | arg :: _ when String.length arg >= 2 && String.sub arg 0 2 = "--" ->
      Printf.eprintf "unknown flag %S\n" arg;
      usage ()
    | arg :: rest ->
      (match !which with
      | None -> which := Some arg
      | Some _ -> usage ());
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match !which with None -> "all" | Some w -> w

(* Run one section; on any exception print the reproducing seed (the whole
   harness is a deterministic function of it) and keep going so the other
   sections still report, then fail the process at the end. *)
let run_section name f =
  try f ()
  with exn ->
    section_failed := true;
    Printf.eprintf
      "\nsection %s FAILED: %s\n(reproduce with: main.exe %s --seed %Ld --runs %d)\n"
      name (Printexc.to_string exn) name (root_seed ())
      (match !opt_runs with Some r -> r | None -> 0)

let () =
  let which = parse_args () in
  (match which with
  | "table1" -> run_section "table1" table1
  | "table2" -> run_section "table2" table2
  | "attack" -> run_section "attack" attack
  | "scaling" -> run_section "scaling" scaling
  | "chaos" -> run_section "chaos" chaos
  | "wire" -> run_section "wire" wire
  | "cluster" -> run_section "cluster" cluster_bench
  | "recovery" -> run_section "recovery" recovery_bench
  | "rsm" -> run_section "rsm" rsm_bench
  | "fuzz" -> run_section "fuzz" fuzz_bench
  | "ablation" -> run_section "ablation" ablation
  | "bechamel" -> run_section "bechamel" bechamel
  | "all" ->
    run_section "table1" table1;
    run_section "table2" table2;
    run_section "attack" attack;
    run_section "scaling" scaling;
    run_section "chaos" chaos;
    run_section "wire" wire;
    run_section "cluster" cluster_bench;
    run_section "recovery" recovery_bench;
    run_section "rsm" rsm_bench;
    run_section "fuzz" fuzz_bench;
    run_section "ablation" ablation;
    run_section "bechamel" bechamel
  | other ->
    Printf.eprintf
      "unknown section %S \
       (table1|table2|attack|scaling|chaos|wire|cluster|recovery|rsm|fuzz|ablation|bechamel|all)\n"
      other;
    usage ());
  if !opt_metrics then run_section "metrics" metrics;
  (match !opt_trace with Some path -> run_section "trace" (fun () -> trace_capture path) | None -> ());
  flush_json ();
  if !chaos_failed || !section_failed then exit 1

(** The observability event taxonomy.

    Every interesting thing that happens during a simulated execution is one
    of these typed events: network-level actions the executor performs
    (send / deliver / drop / duplicate / redirect / swap / crash), protocol
    milestones observed by the driver probes (round entry, phase quorum,
    coin reveal, commit), and invariant violations flagged by the runtime
    monitor.

    Events are plain data.  A {!timed} event carries the logical timestamp
    at which it was recorded - the number of deliveries that had happened -
    so that per-round latency is measured in deliveries, the only clock an
    asynchronous adversary cannot manipulate.

    The {e action} subset ({!is_action}) is exactly the set of operations
    that determine an execution: protocols are deterministic state machines,
    so replaying the logged actions against a freshly built cluster
    reproduces the original run bit for bit (see
    [Bca_netsim.Async_exec.replay] and DESIGN.md section 10 for the
    determinism contract).

    Serialization is line-oriented JSON (JSONL): {!to_json} emits one
    self-contained object per event, {!of_json} parses it back; the codec
    round-trips every event exactly ([of_json (to_json e) = Ok e]). *)

type pid = int

type t =
  | Send of { eid : int; src : pid; dst : pid; depth : int }
      (** envelope [eid] entered the in-flight pool *)
  | Deliver of { eid : int; src : pid; dst : pid; depth : int }
      (** envelope [eid] was delivered (advances the logical clock) *)
  | Drop of { eid : int; src : pid; dst : pid }
      (** envelope [eid] was removed without delivery (omission fault) *)
  | Duplicate of { eid : int; copy : int }
      (** a copy of envelope [eid] entered the pool as envelope [copy] *)
  | Redirect of { eid : int; dst : pid }
      (** envelope [eid]'s destination was rewritten to [dst] *)
  | Swap of { eid1 : int; eid2 : int }
      (** the payloads of two in-flight envelopes were exchanged *)
  | Crash of { pid : pid }  (** party [pid] halted *)
  | Round_enter of { pid : pid; round : int }
      (** party [pid] started round [round] of the agreement loop *)
  | Quorum of { pid : pid; round : int; phase : string }
      (** party [pid]'s round-[round] (G)BCA instance met the quorum that
          completes [phase] (protocol-specific phase names, e.g. ["echo"],
          ["echo2"], ["decide"]) *)
  | Coin_reveal of { pid : pid; round : int; value : Bca_util.Value.t }
      (** party [pid] accessed round [round]'s common coin for the first
          time - the moment the paper's binding property must already hold *)
  | Commit of { pid : pid; round : int; value : Bca_util.Value.t }
      (** party [pid] committed [value] in round [round] *)
  | Violation of { kind : string; detail : string }
      (** the runtime monitor flagged an invariant violation *)
  | Transport of { pid : pid; peer : pid; op : string; bytes : int }
      (** a real-transport endpoint ([Bca_transport]) performed [op] toward
          [peer]: ["connect"], ["accept"], ["retry"], ["give_up"],
          ["close"], ["tx"] / ["rx"] (with the frame's byte count), or
          ["drop"] (frame discarded: corrupt stream or dead peer).  Not an
          action - real-network timing is outside the replay determinism
          contract *)
  | Slot_commit of { pid : pid; slot : int; txs : int }
      (** replica [pid] applied log slot [slot] ([txs] transactions) to its
          committed log - the replicated-log milestone ([Bca_rsm.Rsm]) *)
  | Buffer_drop of { pid : pid; epoch : int }
      (** replica [pid] shed a message for far-future epoch [epoch] instead
          of buffering it - the bounded ahead-of-window buffer at work *)

type timed = { ts : int; ev : t }
(** An event stamped with the logical time (deliveries so far) at which it
    was recorded.  The [ts] of a [Deliver] event is the 1-based index of
    that delivery; all events between two deliveries share the earlier
    delivery's timestamp. *)

val is_action : t -> bool
(** Whether the event is an executor action (deliver / drop / duplicate /
    redirect / swap / crash): the subset [Bca_netsim.Async_exec.replay]
    re-applies.  [Send] is {e not} an action - sends are consequences of
    deliveries and re-emerge deterministically during replay. *)

val equal : t -> t -> bool
val equal_timed : timed -> timed -> bool

val pp : Format.formatter -> t -> unit
val pp_timed : Format.formatter -> timed -> unit

val to_json : timed -> string
(** One-line JSON object (no trailing newline), e.g.
    [{"ts":12,"type":"deliver","eid":40,"src":1,"dst":2,"depth":3}]. *)

val of_json : string -> (timed, string) result
(** Parse one line produced by {!to_json}.  [Error] describes the first
    syntax or schema problem found. *)

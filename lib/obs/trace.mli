(** Structured trace sinks: zero-overhead-when-disabled event recording.

    A trace is where instrumented components ([Bca_netsim.Async_exec], the
    driver probes, the invariant monitor) put their {!Event.t}s.  Three
    sinks exist:

    - {!null}: recording disabled.  {!emit} is a no-op and {!enabled} is
      [false], so instrumentation sites can skip building the event value
      entirely - the disabled cost of the whole subsystem is one
      predictable branch per site (measured <= 2% on the netsim throughput
      benchmark; see DESIGN.md section 10 for the overhead budget).
    - {!create}: an append-only in-memory buffer, exportable as JSONL and
      replayable (see [Bca_netsim.Async_exec.replay]).
    - {!stream}: events are handed to a callback instead of buffered -
      used to fold an execution directly into {!Metrics} without retaining
      the event stream (campaign-scale runs would otherwise hold millions
      of events).

    {b Logical clock.}  The trace stamps every event with the number of
    [Deliver] events recorded so far: delivery count is the only notion of
    time an asynchronous adversary cannot manipulate, so round latencies
    derived from these timestamps are schedule-meaningful.

    {b Concurrency.}  A trace is single-domain state.  Parallel campaigns
    ([Bca_experiments.Mc]) give every run its own trace and merge derived
    {!Metrics} afterwards - never share one trace across domains. *)

type t

val null : t
(** The disabled sink.  [enabled null = false]; emitting to it does
    nothing. *)

val create : ?capacity:int -> unit -> t
(** A fresh buffering sink ([capacity] pre-sizes the buffer, default
    [1024]). *)

val stream : (Event.timed -> unit) -> t
(** A folding sink: each emitted event is timestamped and passed to the
    callback; nothing is retained. *)

val enabled : t -> bool
(** [false] exactly for {!null}.  Instrumentation sites must guard event
    construction with this (or a cached copy of it) so that disabled runs
    never allocate. *)

val emit : t -> Event.t -> unit
(** Record one event, stamping it with the current logical time.  A
    [Deliver] event advances the clock first, so its own timestamp is the
    1-based index of that delivery. *)

val now : t -> int
(** Current logical time: [Deliver] events recorded so far. *)

val length : t -> int
(** Events recorded (0 for {!null} and {!stream} sinks). *)

val events : t -> Event.timed array
(** Snapshot of the recorded events in emission order (empty for non-buffer
    sinks). *)

(** {2 JSONL import/export} *)

val to_jsonl : t -> string
(** The buffered events as JSON Lines: one {!Event.to_json} object per
    line, trailing newline included. *)

val events_to_jsonl : Event.timed array -> string

val of_jsonl : string -> (Event.timed array, string) result
(** Parse a JSONL dump (blank lines ignored).  [Error] pinpoints the first
    offending line.  Round-trip guarantee:
    [of_jsonl (events_to_jsonl evs) = Ok evs]. *)

val output : out_channel -> t -> unit
(** Write {!to_jsonl} to a channel. *)

val load : string -> (Event.timed array, string) result
(** Read and parse a JSONL capture file. *)

module M = Map.Make (String)
module Value = Bca_util.Value

type t = int M.t

let empty = M.empty

let is_empty = M.is_empty

let round_cap = 12

(* 0,1,2,3 stay themselves; past that one bucket per power of two, like
   AFL's hit-count classes.  Monotone, so [novel] can compare buckets. *)
let bucket c =
  if c <= 0 then 0
  else if c <= 3 then c
  else begin
    let b = ref 4 and lim = ref 8 in
    while c >= !lim && !b < 32 do
      incr b;
      lim := !lim * 2
    done;
    !b
  end

let add_count t key k =
  if k <= 0 then t
  else
    M.update key (function None -> Some k | Some c -> Some (c + k)) t

let add t key = add_count t key 1

let count t key = match M.find_opt key t with Some c -> c | None -> 0

let round_label r = if r >= round_cap then string_of_int round_cap ^ "+" else string_of_int r

let value_label = function Value.V0 -> "0" | Value.V1 -> "1"

let add_event t (ev : Event.t) =
  match ev with
  | Event.Round_enter { round; _ } -> add t ("round:r" ^ round_label round)
  | Event.Quorum { round; phase; _ } ->
    add t ("quorum:" ^ phase ^ ":r" ^ round_label round)
  | Event.Coin_reveal { round; value; _ } ->
    add t ("coin:r" ^ round_label round ^ ":" ^ value_label value)
  | Event.Commit { round; value; _ } ->
    add t ("commit:r" ^ round_label round ^ ":" ^ value_label value)
  | Event.Violation { kind; _ } -> add t ("violation:" ^ kind)
  | Event.Drop _ -> add t "net:drop"
  | Event.Duplicate _ -> add t "net:dup"
  | Event.Redirect _ -> add t "net:redirect"
  | Event.Swap _ -> add t "net:swap"
  | Event.Crash _ -> add t "net:crash"
  | Event.Slot_commit { slot; _ } -> add t ("slot-commit:e" ^ string_of_int slot)
  | Event.Buffer_drop _ -> add t "rsm:buffer-drop"
  | Event.Send _ | Event.Deliver _ | Event.Transport _ -> t

let of_events evs =
  Array.fold_left (fun acc (te : Event.timed) -> add_event acc te.ev) empty evs

let merge a b = M.union (fun _ x y -> Some (max x y)) a b

let novel ~base t =
  M.fold (fun key c acc -> if bucket c > bucket (count base key) then acc + 1 else acc) t 0

let cardinality t = M.cardinal t

let points t = M.fold (fun _ c acc -> acc + bucket c) t 0

let to_list t = M.bindings t

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  let first = ref true in
  M.iter
    (fun key c ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape key);
      Buffer.add_string buf "\":";
      Buffer.add_string buf (string_of_int c))
    t;
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>coverage: %d keys, %d points" (cardinality t) (points t);
  M.iter (fun key c -> Format.fprintf ppf "@,  %-28s %d" key c) t;
  Format.fprintf ppf "@]"

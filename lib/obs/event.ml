module Value = Bca_util.Value

type pid = int

type t =
  | Send of { eid : int; src : pid; dst : pid; depth : int }
  | Deliver of { eid : int; src : pid; dst : pid; depth : int }
  | Drop of { eid : int; src : pid; dst : pid }
  | Duplicate of { eid : int; copy : int }
  | Redirect of { eid : int; dst : pid }
  | Swap of { eid1 : int; eid2 : int }
  | Crash of { pid : pid }
  | Round_enter of { pid : pid; round : int }
  | Quorum of { pid : pid; round : int; phase : string }
  | Coin_reveal of { pid : pid; round : int; value : Value.t }
  | Commit of { pid : pid; round : int; value : Value.t }
  | Violation of { kind : string; detail : string }
  | Transport of { pid : pid; peer : pid; op : string; bytes : int }
  | Slot_commit of { pid : pid; slot : int; txs : int }
  | Buffer_drop of { pid : pid; epoch : int }

type timed = { ts : int; ev : t }

let is_action = function
  | Deliver _ | Drop _ | Duplicate _ | Redirect _ | Swap _ | Crash _ -> true
  | Send _ | Round_enter _ | Quorum _ | Coin_reveal _ | Commit _ | Violation _ | Transport _
  | Slot_commit _ | Buffer_drop _ ->
    false

let equal (a : t) (b : t) = a = b

let equal_timed (a : timed) (b : timed) = a = b

let pp ppf = function
  | Send { eid; src; dst; depth } ->
    Format.fprintf ppf "send eid=%d %d->%d depth=%d" eid src dst depth
  | Deliver { eid; src; dst; depth } ->
    Format.fprintf ppf "deliver eid=%d %d->%d depth=%d" eid src dst depth
  | Drop { eid; src; dst } -> Format.fprintf ppf "drop eid=%d %d->%d" eid src dst
  | Duplicate { eid; copy } -> Format.fprintf ppf "duplicate eid=%d copy=%d" eid copy
  | Redirect { eid; dst } -> Format.fprintf ppf "redirect eid=%d dst=%d" eid dst
  | Swap { eid1; eid2 } -> Format.fprintf ppf "swap eid=%d eid=%d" eid1 eid2
  | Crash { pid } -> Format.fprintf ppf "crash p%d" pid
  | Round_enter { pid; round } -> Format.fprintf ppf "round-enter p%d r%d" pid round
  | Quorum { pid; round; phase } ->
    Format.fprintf ppf "quorum p%d r%d phase=%s" pid round phase
  | Coin_reveal { pid; round; value } ->
    Format.fprintf ppf "coin-reveal p%d r%d %a" pid round Value.pp value
  | Commit { pid; round; value } ->
    Format.fprintf ppf "commit p%d r%d %a" pid round Value.pp value
  | Violation { kind; detail } -> Format.fprintf ppf "VIOLATION %s: %s" kind detail
  | Transport { pid; peer; op; bytes } ->
    Format.fprintf ppf "transport p%d peer=%d %s bytes=%d" pid peer op bytes
  | Slot_commit { pid; slot; txs } ->
    Format.fprintf ppf "slot-commit p%d slot=%d txs=%d" pid slot txs
  | Buffer_drop { pid; epoch } -> Format.fprintf ppf "buffer-drop p%d e%d" pid epoch

let pp_timed ppf { ts; ev } = Format.fprintf ppf "[%d] %a" ts pp ev

(* ---- JSONL encoding ------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json { ts; ev } =
  let buf = Buffer.create 96 in
  let fint k v = Buffer.add_string buf (Printf.sprintf ",%S:%d" k v) in
  let fstr k v =
    Buffer.add_string buf (Printf.sprintf ",%S:\"" k);
    escape buf v;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf (Printf.sprintf "{\"ts\":%d,\"type\":" ts);
  (match ev with
  | Send { eid; src; dst; depth } ->
    Buffer.add_string buf "\"send\"";
    fint "eid" eid; fint "src" src; fint "dst" dst; fint "depth" depth
  | Deliver { eid; src; dst; depth } ->
    Buffer.add_string buf "\"deliver\"";
    fint "eid" eid; fint "src" src; fint "dst" dst; fint "depth" depth
  | Drop { eid; src; dst } ->
    Buffer.add_string buf "\"drop\"";
    fint "eid" eid; fint "src" src; fint "dst" dst
  | Duplicate { eid; copy } ->
    Buffer.add_string buf "\"duplicate\"";
    fint "eid" eid; fint "copy" copy
  | Redirect { eid; dst } ->
    Buffer.add_string buf "\"redirect\"";
    fint "eid" eid; fint "dst" dst
  | Swap { eid1; eid2 } ->
    Buffer.add_string buf "\"swap\"";
    fint "eid1" eid1; fint "eid2" eid2
  | Crash { pid } ->
    Buffer.add_string buf "\"crash\"";
    fint "pid" pid
  | Round_enter { pid; round } ->
    Buffer.add_string buf "\"round_enter\"";
    fint "pid" pid; fint "round" round
  | Quorum { pid; round; phase } ->
    Buffer.add_string buf "\"quorum\"";
    fint "pid" pid; fint "round" round; fstr "phase" phase
  | Coin_reveal { pid; round; value } ->
    Buffer.add_string buf "\"coin_reveal\"";
    fint "pid" pid; fint "round" round; fint "value" (Value.to_int value)
  | Commit { pid; round; value } ->
    Buffer.add_string buf "\"commit\"";
    fint "pid" pid; fint "round" round; fint "value" (Value.to_int value)
  | Violation { kind; detail } ->
    Buffer.add_string buf "\"violation\"";
    fstr "kind" kind; fstr "detail" detail
  | Transport { pid; peer; op; bytes } ->
    Buffer.add_string buf "\"transport\"";
    fint "pid" pid; fint "peer" peer; fstr "op" op; fint "bytes" bytes
  | Slot_commit { pid; slot; txs } ->
    Buffer.add_string buf "\"slot_commit\"";
    fint "pid" pid; fint "slot" slot; fint "txs" txs
  | Buffer_drop { pid; epoch } ->
    Buffer.add_string buf "\"buffer_drop\"";
    fint "pid" pid; fint "epoch" epoch);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---- JSONL decoding ------------------------------------------------ *)

(* Minimal parser for the flat objects the encoder produces: string keys
   mapped to integer or string values.  Accepts arbitrary whitespace between
   tokens so hand-edited capture files still load. *)

type field = Fint of int | Fstr of string

exception Parse of string

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape"
           else
             match line.[!pos] with
             | '"' -> Buffer.add_char buf '"'; incr pos
             | '\\' -> Buffer.add_char buf '\\'; incr pos
             | '/' -> Buffer.add_char buf '/'; incr pos
             | 'n' -> Buffer.add_char buf '\n'; incr pos
             | 't' -> Buffer.add_char buf '\t'; incr pos
             | 'r' -> Buffer.add_char buf '\r'; incr pos
             | 'b' -> Buffer.add_char buf '\b'; incr pos
             | 'f' -> Buffer.add_char buf '\012'; incr pos
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub line (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
               | Some _ -> fail "non-latin1 \\u escape"
               | None -> fail "bad \\u escape");
               pos := !pos + 5
             | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if (match peek () with Some '-' -> true | _ -> false) then incr pos;
    while !pos < n && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected integer";
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad integer"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if (match peek () with Some '}' -> true | _ -> false) then incr pos
  else begin
    let rec members () =
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      skip_ws ();
      let v = match peek () with Some '"' -> Fstr (parse_string ()) | _ -> Fint (parse_int ()) in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' -> incr pos; members ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  List.rev !fields

let of_json line =
  match parse_fields line with
  | exception Parse msg -> Error msg
  | fields ->
    let int k =
      match List.assoc_opt k fields with
      | Some (Fint v) -> v
      | Some (Fstr _) -> raise (Parse (Printf.sprintf "field %S: expected integer" k))
      | None -> raise (Parse (Printf.sprintf "missing field %S" k))
    in
    let str k =
      match List.assoc_opt k fields with
      | Some (Fstr v) -> v
      | Some (Fint _) -> raise (Parse (Printf.sprintf "field %S: expected string" k))
      | None -> raise (Parse (Printf.sprintf "missing field %S" k))
    in
    let value k =
      match int k with
      | 0 -> Value.V0
      | 1 -> Value.V1
      | v -> raise (Parse (Printf.sprintf "field %S: expected 0 or 1, got %d" k v))
    in
    (match
       let ts = int "ts" in
       let ev =
         match str "type" with
         | "send" -> Send { eid = int "eid"; src = int "src"; dst = int "dst"; depth = int "depth" }
         | "deliver" ->
           Deliver { eid = int "eid"; src = int "src"; dst = int "dst"; depth = int "depth" }
         | "drop" -> Drop { eid = int "eid"; src = int "src"; dst = int "dst" }
         | "duplicate" -> Duplicate { eid = int "eid"; copy = int "copy" }
         | "redirect" -> Redirect { eid = int "eid"; dst = int "dst" }
         | "swap" -> Swap { eid1 = int "eid1"; eid2 = int "eid2" }
         | "crash" -> Crash { pid = int "pid" }
         | "round_enter" -> Round_enter { pid = int "pid"; round = int "round" }
         | "quorum" -> Quorum { pid = int "pid"; round = int "round"; phase = str "phase" }
         | "coin_reveal" ->
           Coin_reveal { pid = int "pid"; round = int "round"; value = value "value" }
         | "commit" -> Commit { pid = int "pid"; round = int "round"; value = value "value" }
         | "violation" -> Violation { kind = str "kind"; detail = str "detail" }
         | "transport" ->
           Transport { pid = int "pid"; peer = int "peer"; op = str "op"; bytes = int "bytes" }
         | "slot_commit" -> Slot_commit { pid = int "pid"; slot = int "slot"; txs = int "txs" }
         | "buffer_drop" -> Buffer_drop { pid = int "pid"; epoch = int "epoch" }
         | other -> raise (Parse (Printf.sprintf "unknown event type %S" other))
       in
       { ts; ev }
     with
    | timed -> Ok timed
    | exception Parse msg -> Error msg)

module IMap = Map.Make (Int)
module SMap = Map.Make (String)

type round_stats = {
  entries : int;
  deliveries : int;
  sends : int;
  drops : int;
  commits : int;
  coin_reveals : int;
}

let rs_zero =
  { entries = 0; deliveries = 0; sends = 0; drops = 0; commits = 0; coin_reveals = 0 }

let rs_add a b =
  {
    entries = a.entries + b.entries;
    deliveries = a.deliveries + b.deliveries;
    sends = a.sends + b.sends;
    drops = a.drops + b.drops;
    commits = a.commits + b.commits;
    coin_reveals = a.coin_reveals + b.coin_reveals;
  }

type t = {
  runs : int;
  sends : int;
  deliveries : int;
  drops : int;
  violations : int;
  decided_runs : int;
  tx_frames : int;
  tx_bytes : int;
  rx_frames : int;
  rx_bytes : int;
  resends : int;
  resend_bytes : int;
  recoveries : int;
  recovery_wal_bytes : int;
  revives : int;
  per_round : round_stats IMap.t;
  phases : int SMap.t;
  (* bucket maps: key -> how many samples fell in that bucket *)
  decision_rounds : int IMap.t;  (* first-commit round, one sample per deciding run *)
  round_latency : int IMap.t;  (* deliveries between consecutive round entries *)
  coin_commit_gap : int IMap.t;  (* deliveries from commit-round coin reveal to commit *)
  flush_bytes : int IMap.t;  (* batch frame sizes, one sample per batcher flush *)
  batch_occupancy : int IMap.t;  (* records per batch frame, one sample per flush *)
}

let empty =
  {
    runs = 0;
    sends = 0;
    deliveries = 0;
    drops = 0;
    violations = 0;
    decided_runs = 0;
    tx_frames = 0;
    tx_bytes = 0;
    rx_frames = 0;
    rx_bytes = 0;
    resends = 0;
    resend_bytes = 0;
    recoveries = 0;
    recovery_wal_bytes = 0;
    revives = 0;
    per_round = IMap.empty;
    phases = SMap.empty;
    decision_rounds = IMap.empty;
    round_latency = IMap.empty;
    coin_commit_gap = IMap.empty;
    flush_bytes = IMap.empty;
    batch_occupancy = IMap.empty;
  }

let bump map key = IMap.update key (fun c -> Some (1 + Option.value c ~default:0)) map
let bump_s map key = SMap.update key (fun c -> Some (1 + Option.value c ~default:0)) map

let touch_round per_round r f =
  IMap.update r (fun rs -> Some (f (Option.value rs ~default:rs_zero))) per_round

(* Transient per-run fold state; everything here is folded into the pure
   aggregate when the run's stream ends. *)
type run_state = {
  mutable sysround : int;  (* highest round any party has entered *)
  mutable enter_ts : int IMap.t;  (* round -> ts of its first Round_enter *)
  mutable coin_ts : int IMap.t;  (* round -> ts of its first Coin_reveal *)
  mutable first_commit : (int * int) option;  (* (round, ts) of first commit *)
}

let add_run t events =
  let st = { sysround = 1; enter_ts = IMap.empty; coin_ts = IMap.empty; first_commit = None } in
  let acc = ref t in
  Array.iter
    (fun { Event.ts; ev } ->
      let a = !acc in
      match ev with
      | Event.Send _ ->
        acc :=
          { a with sends = a.sends + 1;
                   per_round = touch_round a.per_round st.sysround
                       (fun rs -> { rs with sends = rs.sends + 1 }) }
      | Event.Deliver _ ->
        acc :=
          { a with deliveries = a.deliveries + 1;
                   per_round = touch_round a.per_round st.sysround
                       (fun rs -> { rs with deliveries = rs.deliveries + 1 }) }
      | Event.Drop _ ->
        acc :=
          { a with drops = a.drops + 1;
                   per_round = touch_round a.per_round st.sysround
                       (fun rs -> { rs with drops = rs.drops + 1 }) }
      | Event.Duplicate _ | Event.Redirect _ | Event.Swap _ | Event.Crash _
      | Event.Slot_commit _ | Event.Buffer_drop _ -> ()
      | Event.Round_enter { round; _ } ->
        if round > st.sysround then st.sysround <- round;
        if not (IMap.mem round st.enter_ts) then st.enter_ts <- IMap.add round ts st.enter_ts;
        acc :=
          { a with per_round = touch_round a.per_round round
                       (fun rs -> { rs with entries = rs.entries + 1 }) }
      | Event.Quorum { phase; _ } -> acc := { a with phases = bump_s a.phases phase }
      | Event.Coin_reveal { round; _ } ->
        if not (IMap.mem round st.coin_ts) then st.coin_ts <- IMap.add round ts st.coin_ts;
        acc :=
          { a with per_round = touch_round a.per_round round
                       (fun rs -> { rs with coin_reveals = rs.coin_reveals + 1 }) }
      | Event.Commit { round; _ } ->
        if st.first_commit = None then st.first_commit <- Some (round, ts);
        acc :=
          { a with per_round = touch_round a.per_round round
                       (fun rs -> { rs with commits = rs.commits + 1 }) }
      | Event.Violation _ -> acc := { a with violations = a.violations + 1 }
      | Event.Transport { op; bytes; _ } -> (
        (* ops the socket transport and the batcher emit; anything else
           (connect/retry/close/...) is connection bookkeeping, not traffic *)
        match op with
        | "tx" -> acc := { a with tx_frames = a.tx_frames + 1; tx_bytes = a.tx_bytes + bytes }
        | "rx" -> acc := { a with rx_frames = a.rx_frames + 1; rx_bytes = a.rx_bytes + bytes }
        | "flush" -> acc := { a with flush_bytes = bump a.flush_bytes bytes }
        | "batch" -> acc := { a with batch_occupancy = bump a.batch_occupancy bytes }
        | "resend" ->
          acc := { a with resends = a.resends + 1; resend_bytes = a.resend_bytes + bytes }
        | "recover" ->
          acc :=
            { a with recoveries = a.recoveries + 1;
                     recovery_wal_bytes = a.recovery_wal_bytes + bytes }
        | "revive" -> acc := { a with revives = a.revives + 1 }
        | _ -> ()))
    events;
  let a = !acc in
  (* Per-round latency: deliveries between consecutive first entries. *)
  let round_latency =
    IMap.fold
      (fun r ts latencies ->
        match IMap.find_opt (r + 1) st.enter_ts with
        | Some next_ts -> bump latencies (next_ts - ts)
        | None -> latencies)
      st.enter_ts a.round_latency
  in
  let decided_runs, decision_rounds, coin_commit_gap =
    match st.first_commit with
    | None -> (a.decided_runs, a.decision_rounds, a.coin_commit_gap)
    | Some (round, ts) ->
      let gaps =
        match IMap.find_opt round st.coin_ts with
        | Some coin_ts when coin_ts <= ts -> bump a.coin_commit_gap (ts - coin_ts)
        | _ -> a.coin_commit_gap
      in
      (a.decided_runs + 1, bump a.decision_rounds round, gaps)
  in
  { a with runs = a.runs + 1; round_latency; decided_runs; decision_rounds; coin_commit_gap }

let merge a b =
  {
    runs = a.runs + b.runs;
    sends = a.sends + b.sends;
    deliveries = a.deliveries + b.deliveries;
    drops = a.drops + b.drops;
    violations = a.violations + b.violations;
    decided_runs = a.decided_runs + b.decided_runs;
    tx_frames = a.tx_frames + b.tx_frames;
    tx_bytes = a.tx_bytes + b.tx_bytes;
    rx_frames = a.rx_frames + b.rx_frames;
    rx_bytes = a.rx_bytes + b.rx_bytes;
    resends = a.resends + b.resends;
    resend_bytes = a.resend_bytes + b.resend_bytes;
    recoveries = a.recoveries + b.recoveries;
    recovery_wal_bytes = a.recovery_wal_bytes + b.recovery_wal_bytes;
    revives = a.revives + b.revives;
    per_round = IMap.union (fun _ x y -> Some (rs_add x y)) a.per_round b.per_round;
    phases = SMap.union (fun _ x y -> Some (x + y)) a.phases b.phases;
    decision_rounds = IMap.union (fun _ x y -> Some (x + y)) a.decision_rounds b.decision_rounds;
    round_latency = IMap.union (fun _ x y -> Some (x + y)) a.round_latency b.round_latency;
    coin_commit_gap =
      IMap.union (fun _ x y -> Some (x + y)) a.coin_commit_gap b.coin_commit_gap;
    flush_bytes = IMap.union (fun _ x y -> Some (x + y)) a.flush_bytes b.flush_bytes;
    batch_occupancy =
      IMap.union (fun _ x y -> Some (x + y)) a.batch_occupancy b.batch_occupancy;
  }

let runs t = t.runs
let sends t = t.sends
let deliveries t = t.deliveries
let drops t = t.drops
let violations t = t.violations
let decided_runs t = t.decided_runs
let per_round t = IMap.bindings t.per_round
let phase_counts t = SMap.bindings t.phases

let hist_of_buckets buckets =
  let samples =
    IMap.fold
      (fun v count acc ->
        let rec rep n acc = if n = 0 then acc else rep (n - 1) (float_of_int v :: acc) in
        rep count acc)
      buckets []
  in
  Bca_util.Histogram.of_floats samples

let rounds_histogram t = hist_of_buckets t.decision_rounds
let round_latency_histogram t = hist_of_buckets t.round_latency
let coin_commit_gap_histogram t = hist_of_buckets t.coin_commit_gap
let tx t = (t.tx_frames, t.tx_bytes)
let rx t = (t.rx_frames, t.rx_bytes)
let resends t = (t.resends, t.resend_bytes)
let recoveries t = (t.recoveries, t.recovery_wal_bytes)
let revives t = t.revives
let flush_bytes_histogram t = hist_of_buckets t.flush_bytes
let batch_occupancy_histogram t = hist_of_buckets t.batch_occupancy

let bucket_total buckets = IMap.fold (fun _ c acc -> acc + c) buckets 0

let pp ppf t =
  Format.fprintf ppf "@[<v>runs=%d decided=%d sends=%d deliveries=%d drops=%d violations=%d@,"
    t.runs t.decided_runs t.sends t.deliveries t.drops t.violations;
  Format.fprintf ppf "per-round (round: entries sends deliveries drops coin commits):@,";
  IMap.iter
    (fun r rs ->
      Format.fprintf ppf "  r%-3d %5d %7d %7d %5d %5d %5d@," r rs.entries rs.sends
        rs.deliveries rs.drops rs.coin_reveals rs.commits)
    t.per_round;
  if not (SMap.is_empty t.phases) then begin
    Format.fprintf ppf "phase quorums:";
    SMap.iter (fun p c -> Format.fprintf ppf " %s=%d" p c) t.phases;
    Format.fprintf ppf "@,"
  end;
  if bucket_total t.decision_rounds > 0 then
    Format.fprintf ppf "decision round distribution:@,%a@," Bca_util.Histogram.pp
      (rounds_histogram t);
  if bucket_total t.round_latency > 0 then
    Format.fprintf ppf "round latency (deliveries) distribution:@,%a@," Bca_util.Histogram.pp
      (round_latency_histogram t);
  if bucket_total t.coin_commit_gap > 0 then
    Format.fprintf ppf "coin-reveal -> first-commit gap (deliveries) distribution:@,%a@,"
      Bca_util.Histogram.pp (coin_commit_gap_histogram t);
  if t.tx_frames > 0 || t.rx_frames > 0 then
    Format.fprintf ppf "transport: tx %d frames / %d bytes, rx %d frames / %d bytes@,"
      t.tx_frames t.tx_bytes t.rx_frames t.rx_bytes;
  if t.recoveries + t.resends + t.revives > 0 then
    Format.fprintf ppf
      "recovery: %d WAL replays (%d bytes), %d history resends (%d bytes), %d peer revivals@,"
      t.recoveries t.recovery_wal_bytes t.resends t.resend_bytes t.revives;
  if bucket_total t.flush_bytes > 0 then
    Format.fprintf ppf "batch flush size (bytes) distribution:@,%a@," Bca_util.Histogram.pp
      (flush_bytes_histogram t);
  if bucket_total t.batch_occupancy > 0 then
    Format.fprintf ppf "batch occupancy (records/frame) distribution:@,%a@,"
      Bca_util.Histogram.pp (batch_occupancy_histogram t);
  Format.fprintf ppf "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dist_json name buckets =
  if bucket_total buckets = 0 then Printf.sprintf "%S:null" name
  else begin
    let h = hist_of_buckets buckets in
    Printf.sprintf "%S:{\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d}" name
      (Bca_util.Histogram.percentile h 0.50)
      (Bca_util.Histogram.percentile h 0.90)
      (Bca_util.Histogram.percentile h 0.99)
      (fst (IMap.max_binding buckets))
  end

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"runs\":%d,\"decided_runs\":%d,\"sends\":%d,\"deliveries\":%d,\"drops\":%d,\"violations\":%d"
       t.runs t.decided_runs t.sends t.deliveries t.drops t.violations);
  Buffer.add_string buf ",\"per_round\":[";
  let first = ref true in
  IMap.iter
    (fun r rs ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"round\":%d,\"entries\":%d,\"sends\":%d,\"deliveries\":%d,\"drops\":%d,\"coin_reveals\":%d,\"commits\":%d}"
           r rs.entries rs.sends rs.deliveries rs.drops rs.coin_reveals rs.commits))
    t.per_round;
  Buffer.add_string buf "],\"phase_quorums\":{";
  let first = ref true in
  SMap.iter
    (fun p c ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape p) c))
    t.phases;
  Buffer.add_string buf "},";
  Buffer.add_string buf (dist_json "decision_rounds" t.decision_rounds);
  Buffer.add_char buf ',';
  Buffer.add_string buf (dist_json "round_latency_deliveries" t.round_latency);
  Buffer.add_char buf ',';
  Buffer.add_string buf (dist_json "coin_commit_gap_deliveries" t.coin_commit_gap);
  Buffer.add_string buf
    (Printf.sprintf
       ",\"recovery\":{\"wal_replays\":%d,\"wal_replay_bytes\":%d,\"resends\":%d,\"resend_bytes\":%d,\"revives\":%d}"
       t.recoveries t.recovery_wal_bytes t.resends t.resend_bytes t.revives);
  Buffer.add_string buf
    (Printf.sprintf
       ",\"transport\":{\"tx_frames\":%d,\"tx_bytes\":%d,\"rx_frames\":%d,\"rx_bytes\":%d,"
       t.tx_frames t.tx_bytes t.rx_frames t.rx_bytes);
  Buffer.add_string buf (dist_json "flush_bytes" t.flush_bytes);
  Buffer.add_char buf ',';
  Buffer.add_string buf (dist_json "batch_occupancy_records" t.batch_occupancy);
  Buffer.add_char buf '}';
  Buffer.add_char buf '}';
  Buffer.contents buf

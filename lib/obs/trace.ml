type sink = Null | Buffer | Stream of (Event.timed -> unit)

type t = {
  sink : sink;
  mutable buf : Event.timed array;
  mutable len : int;
  mutable clock : int;
}

let dummy : Event.timed = { ts = 0; ev = Event.Crash { pid = -1 } }

let null = { sink = Null; buf = [||]; len = 0; clock = 0 }

let create ?(capacity = 1024) () =
  { sink = Buffer; buf = Array.make (max 1 capacity) dummy; len = 0; clock = 0 }

let stream f = { sink = Stream f; buf = [||]; len = 0; clock = 0 }

let enabled t = match t.sink with Null -> false | Buffer | Stream _ -> true

let push t timed =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * max 1 t.len) dummy in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- timed;
  t.len <- t.len + 1

let emit t ev =
  match t.sink with
  | Null -> ()
  | Buffer | Stream _ ->
    (match ev with Event.Deliver _ -> t.clock <- t.clock + 1 | _ -> ());
    let timed = { Event.ts = t.clock; ev } in
    (match t.sink with
    | Buffer -> push t timed
    | Stream f -> f timed
    | Null -> ())

let now t = t.clock

let length t = t.len

let events t = Array.sub t.buf 0 t.len

let events_to_jsonl evs =
  let buf = Buffer.create (128 * (1 + Array.length evs)) in
  Array.iter
    (fun e ->
      Buffer.add_string buf (Event.to_json e);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let to_jsonl t = events_to_jsonl (events t)

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" then go acc (lineno + 1) rest
      else
        (match Event.of_json trimmed with
        | Ok e -> go (e :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1 lines

let output oc t = output_string oc (to_jsonl t)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_jsonl contents
  | exception Sys_error msg -> Error msg

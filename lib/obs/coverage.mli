(** Execution-coverage maps: the shared vocabulary of the adversary search.

    A coverage map counts, per string key, how often an execution reached a
    point of interest.  The fuzzer ([Bca_experiments.Fuzz_campaign]) derives
    keys from the {!Event} taxonomy of a run; the exhaustive checker
    ([Bca_modelcheck]) derives the same kind of keys from explored
    configurations - both speak this vocabulary:

    - ["round:rR"] - some party entered agreement-loop round [R]
      (capped at {!round_cap}, beyond which the label is ["rC+"]);
    - ["quorum:PHASE:rR"] - a round-[R] (G)BCA instance completed the
      quorum-gated phase [PHASE] (["echo"], ["echo2"], ...);
    - ["coin:rR:V"] - round [R]'s coin was revealed as [V] (["0"]/["1"]);
    - ["commit:rR:V"] - a party committed [V] in round [R];
    - ["violation:KIND"] - the runtime monitor flagged [KIND];
    - ["net:OP"] - a network fault fired (["drop"], ["dup"], ["redirect"],
      ["swap"], ["crash"]);
    - ["nm:*"] - near-miss counters (e.g. ["nm:commit-spread"],
      ["nm:split-view"]): states adjacent to a violation without being one;
    - ["mc:*"] - model-checker-only measures (["mc:depth"], ["mc:edges"]).

    Raw counts are compared through AFL-style bucketing ({!bucket}): a key
    hit 9 times instead of 8 is not news, hit 9 times instead of 2 it is.
    {!merge} takes the pointwise {e maximum} of counts, so a global map
    records, per key, the deepest any single run has driven it; the
    operation is associative, commutative and idempotent with {!empty} as
    identity - the same algebra [Metrics.merge] satisfies, which makes
    domain-parallel accumulation through [Mc.map_fold] deterministic. *)

type t
(** Immutable coverage map. *)

val empty : t
val is_empty : t -> bool

val round_cap : int
(** Rounds at or beyond this collapse into one ["rC+"] label (12): round
    identity past the cap is noise, not signal. *)

val bucket : int -> int
(** AFL-style count bucketing: [0 -> 0], [1 -> 1], [2 -> 2], [3 -> 3],
    [4..7 -> 4], [8..15 -> 5], and so on (one bucket per further power of
    two).  Monotone in the count. *)

val add : t -> string -> t
(** Increment a key's count by one. *)

val add_count : t -> string -> int -> t
(** Increment a key's count by [k] (no-op when [k <= 0]). *)

val count : t -> string -> int
(** Raw count of a key ([0] when absent). *)

val add_event : t -> Event.t -> t
(** Fold one event into the map using the vocabulary above.  [Send],
    [Deliver] and [Transport] events are deliberately ignored: they carry
    volume, not reach. *)

val of_events : Event.timed array -> t
(** [add_event] over a recorded trace. *)

val merge : t -> t -> t
(** Pointwise maximum of counts.  Associative, commutative, idempotent;
    [empty] is the identity. *)

val novel : base:t -> t -> int
(** Number of keys whose {!bucket} in the candidate exceeds their bucket in
    [base] - the AFL novelty test: [novel ~base c > 0] iff [c] reached
    somewhere (or some depth) [base] never did. *)

val cardinality : t -> int
(** Number of distinct keys. *)

val points : t -> int
(** Sum of bucket levels over all keys - a scalar coverage score. *)

val to_list : t -> (string * int) list
(** Key-sorted [(key, raw count)] pairs. *)

val to_json : t -> string
(** One-line JSON object [{"key":count,...}], key-sorted. *)

val pp : Format.formatter -> t -> unit

(** Per-round / per-phase metrics aggregated over traced executions.

    {!Metrics} turns event streams ({!Event}) into the numbers the paper's
    analysis is phrased in: how many rounds executions take, how many
    deliveries each round costs, which protocol phases fire, and how far
    ahead of the first commit the round's coin was revealed - the ordering
    the binding property protects (Section 3 of the paper; cf. the
    per-round accounting of the related adaptive-adversary literature).

    A value of type {!t} is an immutable aggregate.  {!add_run} folds one
    complete run's event stream into it; {!merge} combines aggregates.

    {b Determinism contract.}  [merge] is associative and commutative, and
    [empty] is its identity - so folding per-run aggregates in {e any}
    grouping yields the same result.  This is what lets
    [Bca_experiments.Mc.map_fold] aggregate per-domain partial metrics in
    parallel without the domain count ever affecting a reported histogram
    (property-tested in [test/test_obs.ml]).

    All latencies are in {e deliveries} (the logical clock of
    {!Trace}), not wall time: wall time is an artifact of the simulator,
    delivery count is a property of the schedule. *)

type round_stats = {
  entries : int;  (** parties that entered this round *)
  deliveries : int;  (** deliveries while this was the highest round entered *)
  sends : int;  (** envelopes enqueued while this was the highest round *)
  drops : int;  (** envelopes dropped while this was the highest round *)
  commits : int;  (** commits recorded in this round *)
  coin_reveals : int;  (** first coin accesses for this round *)
}

type t

val empty : t
(** The identity of {!merge}: no runs, all counters zero. *)

val add_run : t -> Event.timed array -> t
(** Fold one run's complete event stream (as captured by one {!Trace})
    into the aggregate.  Within the stream, deliveries and sends are
    attributed to the highest round any party has entered at that moment
    (the {e system round}); a round's latency is the number of deliveries
    between its first [Round_enter] and the next round's. *)

val merge : t -> t -> t
(** Pointwise sum.  Associative, commutative, with {!empty} as identity. *)

val runs : t -> int
val sends : t -> int
val deliveries : t -> int
val drops : t -> int
val violations : t -> int

val decided_runs : t -> int
(** Runs in which at least one commit was recorded. *)

val per_round : t -> (int * round_stats) list
(** Per-round counters, sorted by round. *)

val phase_counts : t -> (string * int) list
(** How often each protocol phase quorum was met, sorted by phase name. *)

val rounds_histogram : t -> Bca_util.Histogram.t
(** Distribution of the first-commit round over runs. *)

val round_latency_histogram : t -> Bca_util.Histogram.t
(** Distribution of per-round latencies (deliveries from a round's first
    entry to the next round's first entry), over all completed rounds of
    all runs. *)

val coin_commit_gap_histogram : t -> Bca_util.Histogram.t
(** Distribution, over deciding runs, of the number of deliveries between
    the first reveal of the commit round's coin and the first commit -
    the observable window in which the paper's binding property is doing
    its work. *)

val tx : t -> int * int
(** Socket-transport frames and bytes sent ([Event.Transport] op ["tx"]).
    All transport aggregates are zero for purely simulated runs. *)

val rx : t -> int * int
(** Socket-transport frames and bytes received (op ["rx"]). *)

val resends : t -> int * int
(** Crash-recovery history resends (op ["resend"] from
    [Bca_transport.Cluster.run_node]): how many HELLO-triggered (or
    rejoin-initiated) full-history replays happened, and the protocol
    bytes they pushed. *)

val recoveries : t -> int * int
(** WAL replays (op ["recover"]): recoveries observed and the valid WAL
    bytes they replayed. *)

val revives : t -> int
(** Dead peers resurrected by an inbound frame (op ["revive"] from
    [Bca_transport.Transport]) - a restarted process reconnecting after
    its peer had given it up. *)

val flush_bytes_histogram : t -> Bca_util.Histogram.t
(** Distribution of framed batch sizes in bytes, one sample per batcher
    flush (op ["flush"] from [Bca_transport.Batcher]). *)

val batch_occupancy_histogram : t -> Bca_util.Histogram.t
(** Distribution of records per batch frame (op ["batch"]) - how full the
    batches the flush policy produced actually were. *)

val pp : Format.formatter -> t -> unit
(** Human-readable report: totals, per-round table, phase counts, and the
    three distributions. *)

val to_json : t -> string
(** A self-contained JSON object (counters, per-round table, phase counts,
    and p50/p90/p99/max of the latency distributions), suitable for
    embedding in the benchmark report. *)

let summarize ~runs ~seed f = Mc.summarize ~domains:1 ~runs ~seed f

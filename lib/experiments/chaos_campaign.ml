module Value = Bca_util.Value
module Rng = Bca_util.Rng
module Coin = Bca_coin.Coin
module Types = Bca_core.Types
module Aba = Bca_core.Aba
module Async = Bca_netsim.Async_exec
module Node = Bca_netsim.Node
module Monitor = Bca_netsim.Monitor
module Chaos = Bca_adversary.Chaos
module Trace = Bca_obs.Trace
module Probe = Bca_core.Probe

type outcome = [ `Committed | `Stalled ]

type run_report = {
  run_seed : int64;
  plan : Chaos.plan;
  outcome : outcome;
  deliveries : int;
  chaos : Chaos.stats;
  violations : Monitor.violation list;
}

let safety_violations r =
  List.filter (function Monitor.Stalled _ -> false | _ -> true) r.violations

let pp_run_report ppf r =
  Format.fprintf ppf "@[<v>seed=0x%LxL outcome=%s deliveries=%d%a@,plan:@,  @[<v>%a@]"
    r.run_seed
    (match r.outcome with `Committed -> "committed" | `Stalled -> "stalled")
    r.deliveries
    (fun ppf (s : Chaos.stats) ->
      if s.drops + s.dups + s.corruptions + s.forced_heals > 0 then
        Format.fprintf ppf " drops=%d dups=%d corruptions=%d forced-heals=%d" s.drops
          s.dups s.corruptions s.forced_heals;
      if s.kills_fired + s.restarts > 0 then
        Format.fprintf ppf " kills=%d restarts=%d buffered=%d" s.kills_fired s.restarts
          s.kill_buffered;
      if s.adaptive_corruptions + s.adaptive_crashes > 0 then
        Format.fprintf ppf " adaptive-corruptions=%d adaptive-crashes=%d"
          s.adaptive_corruptions s.adaptive_crashes)
    r.chaos Chaos.pp r.plan;
  (* the runtime choices (redirect targets, swap partners) the plan text
     cannot show: without them a corruption run is not reproducible by
     hand *)
  List.iter
    (fun c -> Format.fprintf ppf "@,corruption %a" Chaos.pp_corruption c)
    r.chaos.Chaos.corruption_log;
  List.iter
    (fun v -> Format.fprintf ppf "@,VIOLATION: %a" Monitor.pp_violation v)
    r.violations;
  Format.fprintf ppf "@]"

type stack_report = {
  stack : string;
  runs : int;
  committed : int;
  stalled : int;
  total_deliveries : int;
  failures : run_report list;
}

let pp_stack_report ppf s =
  Format.fprintf ppf "@[<v>%-22s %d runs: %d committed, %d stalled, %d deliveries, %d safety failure(s)"
    s.stack s.runs s.committed s.stalled s.total_deliveries (List.length s.failures);
  List.iter (fun r -> Format.fprintf ppf "@,  @[<v>%a@]" pp_run_report r) s.failures;
  Format.fprintf ppf "@]"

let six_stacks =
  let crash = Types.cfg ~n:5 ~t:2 in
  let byz = Types.cfg ~n:4 ~t:1 in
  [ ("crash/strong", Aba.Crash_strong, crash);
    ("crash/weak-0.25", Aba.Crash_weak 0.25, crash);
    ("crash/local", Aba.Crash_local, crash);
    ("byz/strong", Aba.Byz_strong, byz);
    ("byz/weak-0.25", Aba.Byz_weak 0.25, byz);
    ("byz/tsig", Aba.Byz_tsig, byz) ]

(* Stall windows scale with n: the measure below moves on every round entry
   or commit, so this many deliveries without any of either is decisive. *)
let stall_window n = 4_000 * n
let max_deliveries = 400_000

let run_once ?(tracer = Trace.null) ?(kills = 0) ~spec ~cfg ~seed () =
  let n = cfg.Types.n in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.of_bool (Rng.bool rng)) in
  let allow_corrupt = Aba.spec_mode spec = `Byz in
  let plan = Chaos.gen ~kills rng ~n ~max_faults:cfg.Types.t ~allow_corrupt in
  let corrupt = Array.make n false in
  List.iter (fun p -> corrupt.(p) <- true) plan.Chaos.corrupt;
  let driver =
    { Aba.drive =
        (fun ~coin ~wire:_ exec parties ->
          let progress () =
            Array.fold_left
              (fun acc (p : Aba.party) ->
                acc + p.round () + if p.committed () = None then 0 else 1000)
              0 parties
          in
          let monitor =
            Monitor.create ~n
              ~honest:(fun p -> not corrupt.(p))
              ~inputs
              ~decision:(fun p -> parties.(p).Aba.committed ())
              ~commit_round:(fun p -> parties.(p).Aba.commit_round ())
              ?coin_value:
                (if Aba.spec_commits_on_coin spec then
                   Some (fun ~round ~pid -> Coin.value_for coin ~round ~pid)
                 else None)
              ~progress ~stall_window:(stall_window n) ~tracer ()
          in
          let probe = Probe.create ~tracer parties in
          Async.set_observer exec (fun _ ->
              Monitor.on_delivery monitor;
              Probe.poll probe);
          let ch = Chaos.start plan exec in
          let all_honest_done exec =
            let ok = ref true in
            Array.iteri
              (fun p (party : Aba.party) ->
                if
                  (not corrupt.(p))
                  && (not (Async.crashed exec p))
                  && party.Aba.committed () = None
                then ok := false)
              parties;
            !ok
          in
          let (_ : Async.outcome) =
            Chaos.run ~max_deliveries ~stop_when:all_honest_done ch
          in
          (* milestones caused by the last delivery are only visible now *)
          Probe.poll probe;
          Monitor.final_check monitor;
          { run_seed = seed;
            plan;
            outcome = (if all_honest_done exec then `Committed else `Stalled);
            deliveries = Async.deliveries exec;
            chaos = Chaos.stats ch;
            violations = Monitor.violations monitor })
    }
  in
  match Aba.run_custom ~seed ~tracer spec ~cfg ~inputs ~driver with
  | Ok r -> r
  | Error msg -> invalid_arg ("chaos run_once: " ^ msg)

let run_stack ?domains ?(kills = 0) ~name ~spec ~cfg ~runs ~seed () =
  let reports =
    Mc.map ?domains ~runs ~seed (fun ~seed -> run_once ~kills ~spec ~cfg ~seed ())
  in
  let committed = ref 0 and stalled = ref 0 and total = ref 0 and failures = ref [] in
  Array.iter
    (fun r ->
      (match r.outcome with
      | `Committed -> incr committed
      | `Stalled -> incr stalled);
      total := !total + r.deliveries;
      if safety_violations r <> [] then failures := r :: !failures)
    reports;
  { stack = name;
    runs;
    committed = !committed;
    stalled = !stalled;
    total_deliveries = !total;
    failures = List.rev !failures }

let run_all ?domains ?(kills = 0) ~runs ~seed () =
  List.mapi
    (fun i (name, spec, cfg) ->
      run_stack ?domains ~kills ~name ~spec ~cfg ~runs
        ~seed:(Int64.add seed (Int64.of_int i))
        ())
    six_stacks

(* Monitor self-test: a crash/strong cluster where party 0 equivocates the
   termination layer.  In crash mode one [committed(v)] message makes the
   receiver commit v, so delivering committed(0) to p1 and committed(1) to
   p2 forces an agreement violation the monitor must flag.  Assembled by
   hand (not through [run_custom]) because the lie needs the stack's
   concrete message type. *)
module S = Aba.Crash_strong_stack

(* Everything up to (but excluding) the first delivery, shared between the
   live run and its replay: rebuilding this from the same seed yields a
   cluster in the same state with the same pending envelope ids, which is
   the precondition of the replay determinism contract (DESIGN.md
   section 10). *)
type broken = {
  b_exec : S.msg Async.t;
  b_monitor : Monitor.t;
  b_probe : Probe.t;
  b_plan : Chaos.plan;
  b_state : int -> S.t;
  b_n : int;
}

let broken_setup ~tracer ~seed =
  let cfg = Types.cfg ~n:5 ~t:2 in
  let n = cfg.Types.n in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.of_bool (Rng.bool rng)) in
  let plan = Chaos.gen rng ~n ~max_faults:0 ~allow_corrupt:false in
  let coin =
    Coin.create Coin.Strong ~n ~degree:cfg.Types.t ~seed:(Int64.add seed 0x5EEDL)
  in
  if Trace.enabled tracer then
    Coin.set_observer coin (fun ~round ~pid value ->
        Trace.emit tracer (Bca_obs.Event.Coin_reveal { pid; round; value }));
  let params = { S.cfg; mode = `Crash; coin; bca_params = (fun ~round:_ -> cfg) } in
  let states = Array.make n None in
  let exec =
    Async.create_traced ~tracer ~n ~make:(fun pid ->
        let t, initial = S.create params ~me:pid ~input:inputs.(pid) in
        states.(pid) <- Some t;
        (S.node t, List.map (fun m -> Node.Broadcast m) initial))
  in
  let state pid = Option.get states.(pid) in
  let parties =
    Array.init n (fun pid ->
        { Aba.committed = (fun () -> S.committed (state pid));
          commit_round = (fun () -> S.commit_round (state pid));
          round = (fun () -> S.current_round (state pid));
          phase = (fun () -> S.current_phase (state pid)) })
  in
  let monitor =
    Monitor.create ~n ~inputs
      ~decision:(fun p -> S.committed (state p))
      ~commit_round:(fun p -> S.commit_round (state p))
      ~coin_value:(fun ~round ~pid -> Coin.value_for coin ~round ~pid)
      ~progress:(fun () ->
        let acc = ref 0 in
        for p = 0 to n - 1 do
          acc := !acc + S.current_round (state p);
          if S.committed (state p) <> None then acc := !acc + 1000
        done;
        !acc)
      ~stall_window:(stall_window n) ~tracer ()
  in
  let probe = Probe.create ~tracer parties in
  Async.set_observer exec (fun _ ->
      Monitor.on_delivery monitor;
      Probe.poll probe);
  Async.inject exec ~src:0
    [ Node.Unicast (1, S.Committed Value.V0); Node.Unicast (2, S.Committed Value.V1) ];
  { b_exec = exec; b_monitor = monitor; b_probe = probe; b_plan = plan;
    b_state = state; b_n = n }

let broken_all_done b exec =
  let ok = ref true in
  for p = 0 to b.b_n - 1 do
    if (not (Async.crashed exec p)) && S.committed (b.b_state p) = None then ok := false
  done;
  !ok

let broken_report b ~seed ~chaos =
  Probe.poll b.b_probe;
  Monitor.final_check b.b_monitor;
  { run_seed = seed;
    plan = b.b_plan;
    outcome = (if broken_all_done b b.b_exec then `Committed else `Stalled);
    deliveries = Async.deliveries b.b_exec;
    chaos;
    violations = Monitor.violations b.b_monitor }

let broken_run ?(tracer = Trace.null) ~seed () =
  let b = broken_setup ~tracer ~seed in
  let exec = b.b_exec in
  (* Deliver the two lies first so the violation does not depend on the
     schedule racing honest committed broadcasts. *)
  List.iter
    (fun (e : _ Async.envelope) ->
      match e.payload with
      | S.Committed _ when e.src = 0 -> ignore (Async.deliver_eid exec e.eid : bool)
      | _ -> ())
    (Async.inflight exec);
  let ch = Chaos.start b.b_plan exec in
  let (_ : Async.outcome) =
    Chaos.run ~max_deliveries ~stop_when:(broken_all_done b) ch
  in
  broken_report b ~seed ~chaos:(Chaos.stats ch)

let replay_broken ~seed events =
  let tracer = Trace.create ~capacity:(Array.length events) () in
  let b = broken_setup ~tracer ~seed in
  match Async.replay b.b_exec events with
  | Error _ as e -> e
  | Ok () ->
    (* the chaos decisions are baked into the action log; no chaos engine
       runs during replay, so its counters are vacuously zero *)
    let chaos = Chaos.zero_stats in
    (* the final-poll events belong to the trace: snapshot only after *)
    let report = broken_report b ~seed ~chaos in
    Ok (report, Trace.events tracer)

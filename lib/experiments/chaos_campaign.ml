module Value = Bca_util.Value
module Rng = Bca_util.Rng
module Coin = Bca_coin.Coin
module Types = Bca_core.Types
module Aba = Bca_core.Aba
module Async = Bca_netsim.Async_exec
module Node = Bca_netsim.Node
module Monitor = Bca_netsim.Monitor
module Chaos = Bca_adversary.Chaos

type outcome = [ `Committed | `Stalled ]

type run_report = {
  run_seed : int64;
  plan : Chaos.plan;
  outcome : outcome;
  deliveries : int;
  chaos : Chaos.stats;
  violations : Monitor.violation list;
}

let safety_violations r =
  List.filter (function Monitor.Stalled _ -> false | _ -> true) r.violations

let pp_run_report ppf r =
  Format.fprintf ppf "@[<v>seed=0x%LxL outcome=%s deliveries=%d%a@,plan:@,  @[<v>%a@]"
    r.run_seed
    (match r.outcome with `Committed -> "committed" | `Stalled -> "stalled")
    r.deliveries
    (fun ppf (s : Chaos.stats) ->
      if s.drops + s.dups + s.corruptions + s.forced_heals > 0 then
        Format.fprintf ppf " drops=%d dups=%d corruptions=%d forced-heals=%d" s.drops
          s.dups s.corruptions s.forced_heals)
    r.chaos Chaos.pp r.plan;
  List.iter
    (fun v -> Format.fprintf ppf "@,VIOLATION: %a" Monitor.pp_violation v)
    r.violations;
  Format.fprintf ppf "@]"

type stack_report = {
  stack : string;
  runs : int;
  committed : int;
  stalled : int;
  total_deliveries : int;
  failures : run_report list;
}

let pp_stack_report ppf s =
  Format.fprintf ppf "@[<v>%-22s %d runs: %d committed, %d stalled, %d deliveries, %d safety failure(s)"
    s.stack s.runs s.committed s.stalled s.total_deliveries (List.length s.failures);
  List.iter (fun r -> Format.fprintf ppf "@,  @[<v>%a@]" pp_run_report r) s.failures;
  Format.fprintf ppf "@]"

let six_stacks =
  let crash = Types.cfg ~n:5 ~t:2 in
  let byz = Types.cfg ~n:4 ~t:1 in
  [ ("crash/strong", Aba.Crash_strong, crash);
    ("crash/weak-0.25", Aba.Crash_weak 0.25, crash);
    ("crash/local", Aba.Crash_local, crash);
    ("byz/strong", Aba.Byz_strong, byz);
    ("byz/weak-0.25", Aba.Byz_weak 0.25, byz);
    ("byz/tsig", Aba.Byz_tsig, byz) ]

(* Stall windows scale with n: the measure below moves on every round entry
   or commit, so this many deliveries without any of either is decisive. *)
let stall_window n = 4_000 * n
let max_deliveries = 400_000

let run_once ~spec ~cfg ~seed =
  let n = cfg.Types.n in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.of_bool (Rng.bool rng)) in
  let allow_corrupt = Aba.spec_mode spec = `Byz in
  let plan = Chaos.gen rng ~n ~max_faults:cfg.Types.t ~allow_corrupt in
  let corrupt = Array.make n false in
  List.iter (fun p -> corrupt.(p) <- true) plan.Chaos.corrupt;
  let driver =
    { Aba.drive =
        (fun ~coin exec parties ->
          let progress () =
            Array.fold_left
              (fun acc (p : Aba.party) ->
                acc + p.round () + if p.committed () = None then 0 else 1000)
              0 parties
          in
          let monitor =
            Monitor.create ~n
              ~honest:(fun p -> not corrupt.(p))
              ~inputs
              ~decision:(fun p -> parties.(p).Aba.committed ())
              ~commit_round:(fun p -> parties.(p).Aba.commit_round ())
              ?coin_value:
                (if Aba.spec_commits_on_coin spec then
                   Some (fun ~round ~pid -> Coin.value_for coin ~round ~pid)
                 else None)
              ~progress ~stall_window:(stall_window n) ()
          in
          Monitor.attach monitor exec;
          let ch = Chaos.start plan exec in
          let all_honest_done exec =
            let ok = ref true in
            Array.iteri
              (fun p (party : Aba.party) ->
                if
                  (not corrupt.(p))
                  && (not (Async.crashed exec p))
                  && party.Aba.committed () = None
                then ok := false)
              parties;
            !ok
          in
          let (_ : Async.outcome) =
            Chaos.run ~max_deliveries ~stop_when:all_honest_done ch
          in
          { run_seed = seed;
            plan;
            outcome = (if all_honest_done exec then `Committed else `Stalled);
            deliveries = Async.deliveries exec;
            chaos = Chaos.stats ch;
            violations = Monitor.violations monitor })
    }
  in
  match Aba.run_custom ~seed spec ~cfg ~inputs ~driver with
  | Ok r -> r
  | Error msg -> invalid_arg ("chaos run_once: " ^ msg)

let run_stack ?domains ~name ~spec ~cfg ~runs ~seed () =
  let reports = Mc.map ?domains ~runs ~seed (fun ~seed -> run_once ~spec ~cfg ~seed) in
  let committed = ref 0 and stalled = ref 0 and total = ref 0 and failures = ref [] in
  Array.iter
    (fun r ->
      (match r.outcome with
      | `Committed -> incr committed
      | `Stalled -> incr stalled);
      total := !total + r.deliveries;
      if safety_violations r <> [] then failures := r :: !failures)
    reports;
  { stack = name;
    runs;
    committed = !committed;
    stalled = !stalled;
    total_deliveries = !total;
    failures = List.rev !failures }

let run_all ?domains ~runs ~seed () =
  List.mapi
    (fun i (name, spec, cfg) ->
      run_stack ?domains ~name ~spec ~cfg ~runs
        ~seed:(Int64.add seed (Int64.of_int i))
        ())
    six_stacks

(* Monitor self-test: a crash/strong cluster where party 0 equivocates the
   termination layer.  In crash mode one [committed(v)] message makes the
   receiver commit v, so delivering committed(0) to p1 and committed(1) to
   p2 forces an agreement violation the monitor must flag.  Assembled by
   hand (not through [run_custom]) because the lie needs the stack's
   concrete message type. *)
module S = Aba.Crash_strong_stack

let broken_run ~seed =
  let cfg = Types.cfg ~n:5 ~t:2 in
  let n = cfg.Types.n in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.of_bool (Rng.bool rng)) in
  let plan = Chaos.gen rng ~n ~max_faults:0 ~allow_corrupt:false in
  let coin =
    Coin.create Coin.Strong ~n ~degree:cfg.Types.t ~seed:(Int64.add seed 0x5EEDL)
  in
  let params = { S.cfg; mode = `Crash; coin; bca_params = (fun ~round:_ -> cfg) } in
  let states = Array.make n None in
  let exec =
    Async.create ~n ~make:(fun pid ->
        let t, initial = S.create params ~me:pid ~input:inputs.(pid) in
        states.(pid) <- Some t;
        (S.node t, List.map (fun m -> Node.Broadcast m) initial))
  in
  let state pid = Option.get states.(pid) in
  let monitor =
    Monitor.create ~n ~inputs
      ~decision:(fun p -> S.committed (state p))
      ~commit_round:(fun p -> S.commit_round (state p))
      ~coin_value:(fun ~round ~pid -> Coin.value_for coin ~round ~pid)
      ~progress:(fun () ->
        let acc = ref 0 in
        for p = 0 to n - 1 do
          acc := !acc + S.current_round (state p);
          if S.committed (state p) <> None then acc := !acc + 1000
        done;
        !acc)
      ~stall_window:(stall_window n) ()
  in
  Monitor.attach monitor exec;
  Async.inject exec ~src:0
    [ Node.Unicast (1, S.Committed Value.V0); Node.Unicast (2, S.Committed Value.V1) ];
  (* Deliver the two lies first so the violation does not depend on the
     schedule racing honest committed broadcasts. *)
  List.iter
    (fun (e : _ Async.envelope) ->
      match e.payload with
      | S.Committed _ when e.src = 0 -> ignore (Async.deliver_eid exec e.eid : bool)
      | _ -> ())
    (Async.inflight exec);
  let ch = Chaos.start plan exec in
  let all_done exec =
    let ok = ref true in
    for p = 0 to n - 1 do
      if (not (Async.crashed exec p)) && S.committed (state p) = None then ok := false
    done;
    !ok
  in
  let (_ : Async.outcome) = Chaos.run ~max_deliveries ~stop_when:all_done ch in
  { run_seed = seed;
    plan;
    outcome = (if all_done exec then `Committed else `Stalled);
    deliveries = Async.deliveries exec;
    chaos = Chaos.stats ch;
    violations = Monitor.violations monitor }

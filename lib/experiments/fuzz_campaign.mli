(** Coverage-guided adversary search over protocol schedules.

    An AFL loop where the genome is a [Bca_adversary.Chaos.plan] instead
    of a byte buffer: run a plan against a protocol stack, fold the run's
    trace into a {!Bca_obs.Coverage} map, keep plans that reached
    somewhere no earlier plan did, and mutate / splice the keepers
    ([Bca_adversary.Mutate]).  The coverage signal combines the event
    taxonomy (rounds entered, phase quorums, coin reveals, commits,
    network faults) with monitor near-miss counters
    ([Bca_netsim.Monitor.near_misses]) and target-specific precursors
    (["nm:split-view"] on the Cachin-Zanolini target), so the search
    climbs toward violations it has not yet caused.

    {b Determinism.}  A campaign is a pure function of
    [(target, mode, trials, batch, seed, corpus)]: the scheduler draws
    plans and batch seeds from one SplitMix64 stream, each batch is
    evaluated by {!Mc.mapi} (bit-identical for any domain count), and
    results are folded in index order.  Re-running with the same arguments
    reproduces the same corpus, coverage and finding; any found violation
    is replayable from its [(plan, seed)] pair alone via {!replay}.

    {b Fault-model honesty.}  Plans never leave the Section 2 model: the
    mutator preserves the plan [fault_budget] invariants, adaptive
    strategies are budget-gated at firing time, and adaptively corrupted
    parties are flipped out of the monitor's honest set the moment they
    fire (see DESIGN.md section 14). *)

module Chaos = Bca_adversary.Chaos
module Monitor = Bca_netsim.Monitor
module Coverage = Bca_obs.Coverage
module Trace = Bca_obs.Trace

(** {1 Trials and targets} *)

type trial = {
  t_outcome : [ `Committed | `Stalled ];
  t_deliveries : int;
  t_commit_delivery : int option;
      (** delivery count at which the first honest decision was observed -
          the anchor for tail-reseed children of a split-commit run *)
  t_split_delivery : int option;
      (** delivery count at which opposite singleton views first coexisted
          (Cachin-Zanolini targets only) - the anchor for tail-reseed
          children of a split-view run *)
  t_live_delivery : int option;
      (** delivery count at which a {e live} split first existed: some
          round held at least one honest singleton view matching that
          round's coin (a commit candidate) alongside at least [t + 1]
          honest opposite singletons (enough to relay their estimate
          onward).  The highest-priority tail-reseed anchor: a sizeable
          fraction of schedule completions from this state end in an
          agreement violation (Cachin-Zanolini targets only) *)
  t_coverage : Coverage.t;  (** the run's own coverage map *)
  t_violations : Monitor.violation list;
  t_chaos : Chaos.stats;
}

val safety_violations : trial -> Monitor.violation list
(** The trial's violations without [Stalled] (liveness flags are
    accounted, not hunted: chaos plans may legally drop liveness). *)

type target = {
  tg_name : string;
  tg_n : int;
  tg_t : int;
  tg_allow_corrupt : bool;
      (** whether plans may corrupt traffic (Byzantine-model stacks) *)
  tg_phases : string list;  (** phase labels for [Crash_at_phase] *)
  tg_seed_viable : (int64 -> bool) option;
      (** when present, a cheap static predicate telling whether a trial
          seed can possibly reach the target's violation precursor (the CZ
          targets: the derived input vector is balanced enough for both
          values to survive round 1).  [Guided] campaigns deterministically
          redraw non-viable fresh seeds; [Blind] campaigns never consult
          it - they are the undirected baseline *)
  tg_run : capture:Trace.t option -> plan:Chaos.plan -> seed:int64 -> trial;
      (** one deterministic trial; [capture] receives the full event
          stream of the run (for JSONL export of a violating run) *)
}

val six : target list
(** The six real stacks of [Chaos_campaign.six_stacks], as fuzz targets. *)

val cz : target
(** The (fixed) Cachin-Zanolini reconstruction, [n = 4], [t = 1],
    2t-unpredictable coin, corruption disallowed. *)

val cz_buggy : target
(** {!cz} with [per_value_aux] enabled - the historical AUX bug
    reintroduced; the rediscovery benchmark target. *)

val all_targets : target list
val find_target : string -> (target, string) result

(** {1 Seed corpus and corpus files} *)

val seed_corpus : seed:int64 -> target -> (string * Chaos.plan) list
(** The named starting corpus: ["silent"] (schedule randomness only),
    ["cz_attack"] (isolate the last party behind heavy delays and corrupt
    the first round's coin revealer - the Appendix A adaptive liveness
    attack as a plan), ["mmr_attack"] (partition around an any-round
    reveal), ["crash_leader"] (crash the first party to complete the
    stack's first phase), plus four generated plans drawn from [seed].
    For targets with [tg_allow_corrupt = false] the corruption clauses are
    stripped, leaving the attacks' schedule shapes. *)

val save_corpus : string -> (string * Chaos.plan) list -> unit
(** Write a corpus file: a [bca-corpus 1] header line, then one
    [name TAB plan] line per entry ({!Chaos.plan_to_string}). *)

val load_corpus : string -> ((string * Chaos.plan) list, string) result
(** Parse a corpus file; [Error] pinpoints the offending line. *)

(** {1 Campaigns} *)

type found = {
  f_trial : int;  (** 1-based trial index at which the violation surfaced *)
  f_name : string;  (** corpus lineage label of the violating plan *)
  f_seed : int64;  (** the trial's seed - replay key *)
  f_plan : Chaos.plan;  (** the violating plan - replay key *)
  f_violations : Monitor.violation list;
}

type mode = Guided | Blind

val mode_name : mode -> string

type campaign = {
  c_target : string;
  c_mode : mode;
  c_trials : int;  (** trials executed (may stop early on a find) *)
  c_committed : int;
  c_stalled : int;
  c_deliveries : int;
  c_coverage : Coverage.t;  (** global map: pointwise max over all trials *)
  c_corpus : (string * Chaos.plan) list;
      (** plans admitted for reaching new coverage, in admission order
          (empty in [Blind] mode) - pass to {!save_corpus} *)
  c_found : found option;  (** first safety violation, if any *)
}

val run :
  ?domains:int ->
  ?batch:int ->
  ?stop_on_violation:bool ->
  ?corpus:(string * Chaos.plan) list ->
  mode:mode ->
  target:target ->
  trials:int ->
  seed:int64 ->
  unit ->
  campaign
(** Run a campaign of up to [trials] trials in batches of [batch]
    (default 16), each batch evaluated Domain-parallel via {!Mc.mapi}.
    [Guided]: batch zero is the seed corpus ([corpus] if given, else
    {!seed_corpus}); later batches mutate weighted corpus picks, splicing
    two parents 20% of the time.  An entry admitted for a
    violation-precursor near miss retains its trial seed and an anchor
    delivery; most of its children are {e tail reseeds} - the parent's
    plan with one extra [Chaos.plan.reseeds] point at the anchor, replayed
    under the parent's seed, so the run re-reaches the near-miss state
    byte-for-byte and only its completions are searched.  Children that
    bring back nothing decay their parent's weight, so dud neighbourhoods
    stop eating the budget.  [Blind]: every plan is drawn fresh with
    [Chaos.gen] - the undirected baseline.  With [stop_on_violation]
    (default [true]) the campaign ends after the batch containing the
    first safety violation. *)

val replay :
  ?capture:Trace.t -> target:target -> plan:Chaos.plan -> seed:int64 -> unit -> trial
(** Re-run one [(plan, seed)] pair - deterministically the same trial the
    campaign ran.  Pass [capture] (a buffering [Trace.create] sink) to
    record the full event stream, e.g. for JSONL export of a violation. *)

(** {1 The rediscovery benchmark} *)

type rediscovery = {
  r_seeds : int;
  r_cap : int;  (** per-campaign trial cap; [cap + 1] encodes "not found" *)
  r_guided : int array;  (** trials-to-find per root seed, guided *)
  r_blind : int array;  (** trials-to-find per root seed, blind *)
  r_guided_median : float;
  r_blind_median : float;
  r_speedup : float;  (** [blind_median / guided_median] *)
}

val rediscover :
  ?domains:int -> ?seeds:int -> ?cap:int -> ?batch:int -> seed:int64 -> unit -> rediscovery
(** The headline measurement: how many trials until the flag-reintroduced
    CZ per-value-AUX bug ({!cz_buggy}) is found, guided vs blind, median
    over [seeds] (default 5) root seeds, each campaign capped at [cap]
    (default 3000) trials.  Censored campaigns count as [cap + 1], so the
    reported speedup is a {e lower bound} when blind never finds it. *)

(** {1 Reporting} *)

val pp_found : Format.formatter -> found -> unit
val pp_campaign : Format.formatter -> campaign -> unit
val pp_rediscovery : Format.formatter -> rediscovery -> unit

module Rng = Bca_util.Rng
module Summary = Bca_util.Summary

(* Per-run seeds are drawn from the root SplitMix64 stream in run order,
   exactly as the historical sequential driver did.  Parallelism then only
   changes who evaluates which pre-assigned (index, seed) pair, so results
   are bit-identical for any domain count. *)
let run_seeds ~runs ~seed =
  let rng = Rng.create seed in
  let seeds = Array.make (max runs 0) 0L in
  for i = 0 to runs - 1 do
    seeds.(i) <- Rng.int64 rng
  done;
  seeds

let default_domains () =
  match Sys.getenv_opt "BCA_DOMAINS" with
  | Some s ->
    (match int_of_string_opt s with
    | Some d when d >= 1 -> d
    | _ -> invalid_arg "BCA_DOMAINS must be a positive integer")
  | None -> min 8 (Domain.recommended_domain_count ())

let map ?domains ~runs ~seed f =
  let seeds = run_seeds ~runs ~seed in
  let domains = min runs (match domains with Some d -> max 1 d | None -> default_domains ()) in
  let results = Array.make runs None in
  let fill lo hi =
    for i = lo to hi do
      results.(i) <- Some (f ~seed:seeds.(i))
    done
  in
  if domains <= 1 then fill 0 (runs - 1)
  else begin
    (* contiguous chunks, one domain each; distinct indices, so the writes
       into [results] are race-free *)
    let chunk = (runs + domains - 1) / domains in
    let workers =
      List.init domains (fun k ->
          let lo = k * chunk in
          let hi = min runs ((k + 1) * chunk) - 1 in
          Domain.spawn (fun () -> fill lo hi))
    in
    List.iter Domain.join workers
  end;
  Array.map (function Some x -> x | None -> assert false) results

(* Like [map], but the worker also sees its run index - needed when the
   evaluated items differ per index (a fuzzing batch of distinct plans)
   rather than being i.i.d. replicas of one experiment. *)
let mapi ?domains ~runs ~seed f =
  let seeds = run_seeds ~runs ~seed in
  let domains = min runs (match domains with Some d -> max 1 d | None -> default_domains ()) in
  let results = Array.make runs None in
  let fill lo hi =
    for i = lo to hi do
      results.(i) <- Some (f ~index:i ~seed:seeds.(i))
    done
  in
  if domains <= 1 then fill 0 (runs - 1)
  else begin
    let chunk = (runs + domains - 1) / domains in
    let workers =
      List.init domains (fun k ->
          let lo = k * chunk in
          let hi = min runs ((k + 1) * chunk) - 1 in
          Domain.spawn (fun () -> fill lo hi))
    in
    List.iter Domain.join workers
  end;
  Array.map (function Some x -> x | None -> assert false) results

let summarize ?domains ~runs ~seed f =
  Summary.of_floats (Array.to_list (map ?domains ~runs ~seed f))

(* The per-run results arrive in run order regardless of which domain
   computed them, so any associative [merge] with identity [init] makes the
   fold domain-count independent: [map] fixes the sample vector, and folding
   a fixed vector left-to-right is deterministic. *)
let map_fold ?domains ~runs ~seed ~init ~merge f =
  Array.fold_left merge init (map ?domains ~runs ~seed f)

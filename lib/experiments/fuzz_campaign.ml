module Value = Bca_util.Value
module Rng = Bca_util.Rng
module Quorum = Bca_util.Quorum
module Coin = Bca_coin.Coin
module Types = Bca_core.Types
module Aba = Bca_core.Aba
module Probe = Bca_core.Probe
module Async = Bca_netsim.Async_exec
module Node = Bca_netsim.Node
module Monitor = Bca_netsim.Monitor
module Chaos = Bca_adversary.Chaos
module Mutate = Bca_adversary.Mutate
module Trace = Bca_obs.Trace
module Event = Bca_obs.Event
module Coverage = Bca_obs.Coverage
module Cz = Bca_baselines.Cachin_zanolini

type trial = {
  t_outcome : [ `Committed | `Stalled ];
  t_deliveries : int;
  t_commit_delivery : int option;
  t_split_delivery : int option;
  t_live_delivery : int option;
  t_coverage : Coverage.t;
  t_violations : Monitor.violation list;
  t_chaos : Chaos.stats;
}

let safety_violations t =
  List.filter (function Monitor.Stalled _ -> false | _ -> true) t.t_violations

type target = {
  tg_name : string;
  tg_n : int;
  tg_t : int;
  tg_allow_corrupt : bool;
  tg_phases : string list;
  tg_seed_viable : (int64 -> bool) option;
  tg_run : capture:Trace.t option -> plan:Chaos.plan -> seed:int64 -> trial;
}

(* ------------------------------------------------------------------ *)
(* The shared observation pipeline                                     *)
(* ------------------------------------------------------------------ *)

(* Every target runs under a streaming trace sink that (a) folds each
   event into the trial's coverage map, (b) feeds the plan's adaptive
   strategies, and (c) optionally forwards to a buffering capture trace
   so a violating run can be exported as JSONL.  The chaos engine does
   not exist yet when the executor - and hence the tracer - is built, so
   its [notify] arrives through a ref once [Chaos.start] ran (a closure,
   not the engine itself: the engine's message type is existential inside
   [Aba.run_custom] drivers). *)
let obs_pipeline ~capture =
  let cov = ref Coverage.empty in
  let notify = ref (fun (_ : Event.t) -> ()) in
  let tracer =
    Trace.stream (fun (te : Event.timed) ->
        cov := Coverage.add_event !cov te.Event.ev;
        !notify te.Event.ev;
        match capture with Some c -> Trace.emit c te.Event.ev | None -> ())
  in
  (tracer, cov, notify)

let fold_counters cov counters =
  List.fold_left (fun c (k, v) -> Coverage.add_count c k v) cov counters

(* Caps sized for fuzzing throughput, not campaign realism: a fuzz trial
   that has not decided within a few thousand deliveries of no progress is
   a stall, and stalls stop the run ([Monitor.ok] goes false). *)
let spec_max_deliveries = 60_000
let spec_stall_window n = 2_000 * n
let cz_max_deliveries = 20_000
let cz_stall_window = 4_000

(* ------------------------------------------------------------------ *)
(* Targets over the six real stacks                                    *)
(* ------------------------------------------------------------------ *)

let run_spec ~spec ~cfg ~capture ~plan ~seed =
  let n = cfg.Types.n in
  if plan.Chaos.n <> n then invalid_arg "fuzz: plan.n does not match the target";
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.of_bool (Rng.bool rng)) in
  let corrupt = Array.make n false in
  List.iter (fun p -> corrupt.(p) <- true) plan.Chaos.corrupt;
  let tracer, cov, notify_ref = obs_pipeline ~capture in
  let driver =
    { Aba.drive =
        (fun ~coin ~wire:_ exec parties ->
          let progress () =
            Array.fold_left
              (fun acc (p : Aba.party) ->
                acc + p.round () + if p.committed () = None then 0 else 1000)
              0 parties
          in
          let monitor =
            Monitor.create ~n
              ~honest:(fun p -> not corrupt.(p))
              ~inputs
              ~decision:(fun p -> parties.(p).Aba.committed ())
              ~commit_round:(fun p -> parties.(p).Aba.commit_round ())
              ?coin_value:
                (if Aba.spec_commits_on_coin spec then
                   Some (fun ~round ~pid -> Coin.value_for coin ~round ~pid)
                 else None)
              ~progress ~stall_window:(spec_stall_window n) ~tracer ()
          in
          let probe = Probe.create ~tracer parties in
          Async.set_observer exec (fun _ ->
              Monitor.on_delivery monitor;
              Probe.poll probe);
          let ch = Chaos.start plan exec in
          notify_ref := (fun ev -> Chaos.notify ch ev);
          Chaos.on_adaptive ch (function
            | `Corrupted p -> corrupt.(p) <- true
            | `Crashed _ -> ());
          let all_honest_done exec =
            let ok = ref true in
            Array.iteri
              (fun p (party : Aba.party) ->
                if
                  (not corrupt.(p))
                  && (not (Async.crashed exec p))
                  && party.Aba.committed () = None
                then ok := false)
              parties;
            !ok
          in
          let stop exec = all_honest_done exec || not (Monitor.ok monitor) in
          let (_ : Async.outcome) =
            Chaos.run ~max_deliveries:spec_max_deliveries ~stop_when:stop ch
          in
          Probe.poll probe;
          Monitor.final_check monitor;
          let coverage = fold_counters !cov (Monitor.near_misses monitor) in
          { t_outcome = (if all_honest_done exec then `Committed else `Stalled);
            t_deliveries = Async.deliveries exec;
            t_commit_delivery =
              Option.map (fun (_, _, d) -> d) (Monitor.first_decision monitor);
            t_split_delivery = None;
            t_live_delivery = None;
            t_coverage = coverage;
            t_violations = Monitor.violations monitor;
            t_chaos = Chaos.stats ch })
    }
  in
  match Aba.run_custom ~seed ~tracer spec ~cfg ~inputs ~driver with
  | Ok r -> r
  | Error msg -> invalid_arg ("fuzz run: " ^ msg)

(* ------------------------------------------------------------------ *)
(* The Cachin-Zanolini rediscovery target                              *)
(* ------------------------------------------------------------------ *)

let cz_phases = [ "delivered"; "aux"; "released"; "resolved" ]

(* Hand-assembled (not through [Aba.run_custom]): the CZ baseline is not
   one of the six stacks.  Corruption is disallowed against it - the
   per-value-AUX bug is a pure schedule bug, and restricting the fuzzer to
   the schedule-and-crash powers attributes every violation it finds to
   that bug rather than to Byzantine payloads.  The coin is 2t-unpredictable
   for the same reason: it removes the coin-peek liveness attack from the
   picture. *)
let run_cz ~per_value_aux ~cfg ~capture ~plan ~seed =
  let n = cfg.Types.n in
  if plan.Chaos.n <> n then invalid_arg "fuzz: plan.n does not match the target";
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.of_bool (Rng.bool rng)) in
  let corrupt = Array.make n false in
  List.iter (fun p -> corrupt.(p) <- true) plan.Chaos.corrupt;
  let tracer, cov, notify_ref = obs_pipeline ~capture in
  let coin =
    Coin.create Coin.Strong ~n ~degree:(2 * cfg.Types.t)
      ~seed:(Int64.add seed 0x5EEDL)
  in
  Coin.set_observer coin (fun ~round ~pid value ->
      Trace.emit tracer (Event.Coin_reveal { pid; round; value }));
  let params = { Cz.cfg; coin } in
  let states = Array.make n None in
  let exec =
    Async.create_traced ~tracer ~n ~make:(fun pid ->
        let t, initial = Cz.create ~per_value_aux params ~me:pid ~input:inputs.(pid) in
        states.(pid) <- Some t;
        (Cz.node t, List.map (fun m -> Node.Broadcast m) initial))
  in
  let state pid = Option.get states.(pid) in
  let parties =
    Array.init n (fun pid ->
        { Aba.committed = (fun () -> Cz.committed (state pid));
          commit_round = (fun () -> Cz.commit_round (state pid));
          round = (fun () -> Cz.current_round (state pid));
          phase = (fun () -> Cz.current_phase (state pid)) })
  in
  let progress () =
    Array.fold_left
      (fun acc (p : Aba.party) ->
        acc + p.round () + if p.committed () = None then 0 else 1000)
      0 parties
  in
  let monitor =
    Monitor.create ~n
      ~honest:(fun p -> not corrupt.(p))
      ~inputs
      ~decision:(fun p -> Cz.committed (state p))
      ~commit_round:(fun p -> Cz.commit_round (state p))
      ~coin_value:(fun ~round ~pid -> Coin.value_for coin ~round ~pid)
      ~progress ~stall_window:cz_stall_window ~tracer ()
  in
  let probe = Probe.create ~tracer parties in
  (* Watch for the two anchor moments of tail-reseed children (replay up
     to here, re-roll the completion):
     - split: opposite singleton views first coexist in some round;
     - live split: in some round [r], at least one honest party holds the
       singleton view matching [r]'s coin (a commit candidate) while at
       least [t + 1] honest parties hold the opposite singleton (enough to
       relay their estimate onward) - the state from which a sizeable
       fraction of schedule completions end in an agreement violation.
     One O(n * rounds) scan per delivery; each watch disarms at its first
     hit, the whole scan once both have fired. *)
  let split_delivery = ref None in
  let live_delivery = ref None in
  let scan_views () =
    let max_round = ref 1 in
    for p = 0 to n - 1 do
      if Cz.current_round (state p) > !max_round then
        max_round := Cz.current_round (state p)
    done;
    let r = ref 1 in
    while !live_delivery = None && !r <= min !max_round Coverage.round_cap do
      let n0 = ref 0 and n1 = ref 0 in
      for p = 0 to n - 1 do
        if not corrupt.(p) then
          match Cz.view (state p) ~round:!r with
          | Some [ v ] -> if Value.equal v Value.V0 then incr n0 else incr n1
          | Some _ | None -> ()
      done;
      if !n0 > 0 && !n1 > 0 && !split_delivery = None then
        split_delivery := Some (Async.deliveries exec);
      if !n0 > 0 && !n1 > 0 then begin
        let cv = Coin.value_for coin ~round:!r ~pid:0 in
        let with_coin, opp =
          if Value.equal cv Value.V0 then (!n0, !n1) else (!n1, !n0)
        in
        if with_coin >= 1 && opp >= Quorum.plurality ~t:cfg.Types.t then
          live_delivery := Some (Async.deliveries exec)
      end;
      incr r
    done
  in
  Async.set_observer exec (fun _ ->
      Monitor.on_delivery monitor;
      Probe.poll probe;
      if !live_delivery = None then scan_views ());
  let ch = Chaos.start plan exec in
  notify_ref := (fun ev -> Chaos.notify ch ev);
  Chaos.on_adaptive ch (function
    | `Corrupted p -> corrupt.(p) <- true
    | `Crashed _ -> ());
  let all_done exec =
    let ok = ref true in
    for p = 0 to n - 1 do
      if (not corrupt.(p)) && (not (Async.crashed exec p)) && Cz.committed (state p) = None
      then ok := false
    done;
    !ok
  in
  let stop exec = all_done exec || not (Monitor.ok monitor) in
  let (_ : Async.outcome) =
    Chaos.run ~max_deliveries:cz_max_deliveries ~stop_when:stop ch
  in
  Probe.poll probe;
  Monitor.final_check monitor;
  (* The split-view near miss: two honest parties froze {e different}
     singleton line-30 views in the same round - the direct precursor of
     the per-value-AUX agreement violation (each would commit its own
     value on a matching coin).  This is the counter that makes the search
     directed: schedules inducing a split view are retained and mutated
     even when no invariant broke. *)
  let split = ref 0 in
  let max_round = ref 1 in
  for p = 0 to n - 1 do
    if Cz.current_round (state p) > !max_round then max_round := Cz.current_round (state p)
  done;
  for r = 1 to min !max_round Coverage.round_cap do
    let seen0 = ref false and seen1 = ref false in
    for p = 0 to n - 1 do
      if not corrupt.(p) then
        match Cz.view (state p) ~round:r with
        | Some [ v ] -> if Value.equal v Value.V0 then seen0 := true else seen1 := true
        | Some _ | None -> ()
    done;
    if !seen0 && !seen1 then incr split
  done;
  (* The sharper gauge: some honest party committed [v] in round [r] while
     at least [t + 1] other honest parties froze the {e opposite} singleton
     view in that same round - those parties are one matching coin away
     from committing [1 - v] (fewer than [t + 1] holders cannot even relay
     the estimate into the next round's BV plurality, so a lone holder is a
     dead end). *)
  let split_commit = ref 0 in
  for p = 0 to n - 1 do
    if not corrupt.(p) then
      match (Cz.committed (state p), Cz.commit_round (state p)) with
      | Some v, Some r when r >= 1 && r <= Coverage.round_cap ->
        let opp = ref 0 in
        for q = 0 to n - 1 do
          if q <> p && not corrupt.(q) then
            match Cz.view (state q) ~round:r with
            | Some [ w ] when not (Value.equal v w) -> incr opp
            | Some _ | None -> ()
        done;
        if !opp >= Quorum.plurality ~t:cfg.Types.t then incr split_commit
      | _ -> ()
  done;
  let nm =
    Monitor.near_misses monitor
    @ (if !split > 0 then [ ("nm:split-view", !split) ] else [])
    @ (if !split_commit > 0 then [ ("nm:split-commit", !split_commit) ] else [])
    @ (if !live_delivery <> None then [ ("nm:live-split", 1) ] else [])
  in
  { t_outcome = (if all_done exec then `Committed else `Stalled);
    t_deliveries = Async.deliveries exec;
    t_commit_delivery = Option.map (fun (_, _, d) -> d) (Monitor.first_decision monitor);
    t_split_delivery = !split_delivery;
    t_live_delivery = !live_delivery;
    t_coverage = fold_counters !cov nm;
    t_violations = Monitor.violations monitor;
    t_chaos = Chaos.stats ch }

(* ------------------------------------------------------------------ *)
(* The target table                                                    *)
(* ------------------------------------------------------------------ *)

let mk_spec_target (name, spec, cfg) =
  { tg_name = name;
    tg_n = cfg.Types.n;
    tg_t = cfg.Types.t;
    tg_allow_corrupt = (match Aba.spec_mode spec with `Byz -> true | `Crash -> false);
    tg_phases = Mutate.default_phases;
    tg_seed_viable = None;
    tg_run = (fun ~capture ~plan ~seed -> run_spec ~spec ~cfg ~capture ~plan ~seed) }

let cz_cfg = Types.cfg ~n:4 ~t:1

(* A trial seed is viable against the CZ target only if the inputs it
   derives are balanced enough for {e both} values to survive round 1: a
   value held by fewer than [t + 1] honest parties can never reach the
   BV-broadcast relay plurality, so opposite singleton views - the
   violation's precursor - cannot form.  The derivation mirrors [run_cz]
   exactly ([Rng.create seed], then [n] boolean draws). *)
let cz_seed_viable seed =
  let n = cz_cfg.Types.n in
  let rng = Rng.create seed in
  let ones = ref 0 in
  for _ = 1 to n do
    if Value.equal (Value.of_bool (Rng.bool rng)) Value.V1 then incr ones
  done;
  min !ones (n - !ones) >= Quorum.plurality ~t:cz_cfg.Types.t

let mk_cz_target ~per_value_aux name =
  { tg_name = name;
    tg_n = cz_cfg.Types.n;
    tg_t = cz_cfg.Types.t;
    tg_allow_corrupt = false;
    tg_phases = cz_phases;
    tg_seed_viable = Some cz_seed_viable;
    tg_run =
      (fun ~capture ~plan ~seed -> run_cz ~per_value_aux ~cfg:cz_cfg ~capture ~plan ~seed) }

let six = List.map mk_spec_target Chaos_campaign.six_stacks
let cz = mk_cz_target ~per_value_aux:false "cz"
let cz_buggy = mk_cz_target ~per_value_aux:true "cz-buggy"
let all_targets = six @ [ cz; cz_buggy ]

let find_target name =
  match List.find_opt (fun t -> String.equal t.tg_name name) all_targets with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown fuzz target %S (known: %s)" name
         (String.concat ", " (List.map (fun t -> t.tg_name) all_targets)))

(* ------------------------------------------------------------------ *)
(* The seed corpus                                                     *)
(* ------------------------------------------------------------------ *)

let strip_corruption (p : Chaos.plan) =
  { p with
    Chaos.corrupt = [];
    p_corrupt = 0.;
    adaptive =
      List.filter
        (function Chaos.Corrupt_at_coin_reveal _ -> false | Chaos.Crash_at_phase _ -> true)
        p.Chaos.adaptive }

(* The Appendix A attack shapes as plans.  [cz_attack] isolates the last
   party behind heavy delays and corrupts the first coin revealer - the
   adaptive adversary of [9]'s liveness attack; against the CZ target its
   corruption is stripped and the delay isolation alone remains, which is
   exactly the schedule shape that splits line-30 views.  [mmr_attack]
   partitions the cluster around the reveal and corrupts an arbitrary
   revealer - the MMR-style un-binding attempt. *)
let cz_attack_plan ~n ~budget =
  let slow = n - 1 in
  let laggy = { Chaos.p_drop = 0.; p_dup = 0.; p_delay = 0.9 } in
  let link_overrides =
    List.concat_map
      (fun p -> if p = slow then [] else [ ((p, slow), laggy); ((slow, p), laggy) ])
      (List.init n Fun.id)
  in
  { (Chaos.silent ~n) with
    Chaos.chaos_seed = 0xC2AL;
    link_overrides;
    adaptive = [ Chaos.Corrupt_at_coin_reveal { a_round = 1; a_rate = 0.75 } ];
    fault_budget = budget }

let mmr_attack_plan ~n ~budget =
  let side = Array.init n (fun p -> p < (n + 1) / 2) in
  side.(0) <- true;
  side.(n - 1) <- false;
  { (Chaos.silent ~n) with
    Chaos.chaos_seed = 0x33A4L;
    partitions = [ { Chaos.from_delivery = 40; heal_delivery = 260; side } ];
    adaptive = [ Chaos.Corrupt_at_coin_reveal { a_round = 0; a_rate = 0.5 } ];
    fairness = 2;
    fault_budget = budget }

let crash_leader_plan ~phase ~n ~budget =
  { (Chaos.silent ~n) with
    Chaos.chaos_seed = 0xCAFEL;
    adaptive = [ Chaos.Crash_at_phase { a_round = 0; a_phase = phase } ];
    fault_budget = budget }

let seed_corpus ~seed target =
  let rng = Rng.create seed in
  let n = target.tg_n and budget = target.tg_t in
  let named =
    [ ("silent", { (Chaos.silent ~n) with Chaos.fault_budget = budget });
      ("cz_attack", cz_attack_plan ~n ~budget);
      ("mmr_attack", mmr_attack_plan ~n ~budget);
      ("crash_leader", crash_leader_plan ~phase:(List.hd target.tg_phases) ~n ~budget) ]
  in
  let named =
    if target.tg_allow_corrupt then named
    else List.map (fun (nm, p) -> (nm, strip_corruption p)) named
  in
  let gens =
    List.init 4 (fun i ->
        ( Printf.sprintf "gen-%d" i,
          Chaos.gen rng ~n ~max_faults:target.tg_t
            ~allow_corrupt:target.tg_allow_corrupt ))
  in
  named @ gens

(* ------------------------------------------------------------------ *)
(* Corpus files                                                        *)
(* ------------------------------------------------------------------ *)

let corpus_magic = "bca-corpus 1"

let sanitize_name nm =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then '_' else c) nm

let save_corpus file entries =
  let oc = open_out file in
  output_string oc corpus_magic;
  output_char oc '\n';
  List.iter
    (fun (nm, p) ->
      output_string oc (sanitize_name nm);
      output_char oc '\t';
      output_string oc (Chaos.plan_to_string p);
      output_char oc '\n')
    entries;
  close_out oc

let load_corpus file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | body -> (
    match String.split_on_char '\n' body with
    | magic :: rest when String.equal (String.trim magic) corpus_magic ->
      let rec go acc lineno = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let line = String.trim line in
          if String.equal line "" then go acc (lineno + 1) rest
          else (
            match String.index_opt line '\t' with
            | None -> Error (Printf.sprintf "line %d: missing tab separator" lineno)
            | Some j -> (
              let nm = String.sub line 0 j in
              let pl = String.sub line (j + 1) (String.length line - j - 1) in
              match Chaos.plan_of_string pl with
              | Ok p -> go ((nm, p) :: acc) (lineno + 1) rest
              | Error e -> Error (Printf.sprintf "line %d (%s): %s" lineno nm e)))
      in
      go [] 2 rest
    | _ -> Error (Printf.sprintf "%s: not a %S file" file corpus_magic))

(* ------------------------------------------------------------------ *)
(* The coverage-guided loop                                            *)
(* ------------------------------------------------------------------ *)

type found = {
  f_trial : int;
  f_name : string;
  f_seed : int64;
  f_plan : Chaos.plan;
  f_violations : Monitor.violation list;
}

type mode = Guided | Blind

let mode_name = function Guided -> "guided" | Blind -> "blind"

type campaign = {
  c_target : string;
  c_mode : mode;
  c_trials : int;
  c_committed : int;
  c_stalled : int;
  c_deliveries : int;
  c_coverage : Coverage.t;
  c_corpus : (string * Chaos.plan) list;
  c_found : found option;
}

type entry = {
  e_name : string;
  e_plan : Chaos.plan;
  mutable e_weight : int;
      (* decayed each time a child of this entry brings back nothing *)
  e_seed : int64 option;
      (* the trial seed of the admitting run, kept only when that run
         produced a violation-precursor near miss: tail children replay it *)
  e_anchor : int option;
      (* delivery count up to which tail children replay the admitting
         run's schedule before diverging: the commit delivery of a
         split-commit run, the split-formation delivery of a split-view
         run *)
  e_rank : int;
      (* depth of the entry's precursor state on the violation ladder:
         0 none, 1 split view, 2 live split, 3 split commit.  A tail child
         replays its parent's prefix and therefore re-reaches the parent's
         near miss every time; it is only a {e new} neighbourhood - and
         only admitted - when it climbed strictly higher than the parent *)
}

let trial_rank trial =
  if Coverage.count trial.t_coverage "nm:split-commit" > 0 then 3
  else if Coverage.count trial.t_coverage "nm:live-split" > 0 then 2
  else if Coverage.count trial.t_coverage "nm:split-view" > 0 then 1
  else 0

(* An entry's weight is the novelty it was admitted with, plus a large
   bonus per violation-precursor near miss its run produced: a plan that
   split line-30 views - and above all one that committed {e against} a
   live opposite view - is orders of magnitude closer to a safety
   violation than one that merely touched a new phase label, and the
   scheduler should spend its children accordingly. *)
let near_miss_bonus cov =
  (8192 * Coverage.count cov "nm:live-split")
  + (1024 * Coverage.count cov "nm:split-view")
  + (4096 * Coverage.count cov "nm:split-commit")
  + (256 * Coverage.count cov "nm:commit-spread")

(* Weighted corpus pick: plans that opened more of the map - and above
   all plans that nearly violated - are mutated more often. *)
let pick_entry rng entries =
  let total = List.fold_left (fun a e -> a + e.e_weight) 0 entries in
  let k = Rng.int rng (max total 1) in
  let rec go k = function
    | [] -> assert false
    | [ e ] -> e
    | e :: rest -> if k < e.e_weight then e else go (k - e.e_weight) rest
  in
  go k entries

let base_name nm =
  match String.index_opt nm '<' with Some i -> String.sub nm 0 i | None -> nm

let take k l = List.filteri (fun i _ -> i < k) l

let run ?domains ?(batch = 16) ?(stop_on_violation = true) ?corpus ~mode ~target
    ~trials ~seed () =
  let sched = Rng.create seed in
  (* drawn unconditionally so the stream does not depend on ?corpus *)
  let corpus_seed = Rng.int64 sched in
  let seed_entries =
    match corpus with Some c -> c | None -> seed_corpus ~seed:corpus_seed target
  in
  let guided = match mode with Guided -> true | Blind -> false in
  let global = ref Coverage.empty in
  let parents = ref [] in
  let admitted = ref [] in
  let executed = ref 0 in
  let committed = ref 0 and stalled = ref 0 and deliveries = ref 0 in
  let found = ref None in
  let gen_id = ref 0 in
  let fresh_plan () =
    Chaos.gen sched ~n:target.tg_n ~max_faults:target.tg_t
      ~allow_corrupt:target.tg_allow_corrupt
  in
  (* One batch item: display name, plan, fixed trial seed (tail children
     must replay their parent's run exactly), and the parent entry whose
     weight is decayed if this child brings back nothing. *)
  let next_batch () =
    if not guided then
      List.init batch (fun _ ->
          incr gen_id;
          (Printf.sprintf "blind-%d" !gen_id, fresh_plan (), None, None))
    else if !executed = 0 then
      List.map (fun (name, plan) -> (name, plan, None, None)) seed_entries
    else
      List.init batch (fun _ ->
          incr gen_id;
          match !parents with
          | [] -> (Printf.sprintf "gen-%d" !gen_id, fresh_plan (), None, None)
          | entries ->
            (* a thin stream of fresh plans keeps exploring even when the
               whole corpus turns out to be a dead end *)
            if Rng.float sched < 0.1 then
              (Printf.sprintf "gen-%d" !gen_id, fresh_plan (), None, None)
            else
              let p1 = pick_entry sched entries in
              let tail =
                match (p1.e_seed, p1.e_anchor) with
                | Some s, Some d when Rng.float sched < 0.85 -> Some (s, d)
                | _ -> None
              in
              (match tail with
              | Some (s, d) ->
                (* Tail child: replay the parent's admitting run - same
                   plan prefix, same trial seed (inputs and coins) - up to
                   the anchor delivery, then re-roll the schedule.  The
                   near-miss state (a split view, a commit against a live
                   opposite view) is reached deterministically; only its
                   completions are searched.  Reseed points of the parent
                   at or past the anchor are superseded by the new one. *)
                let keep =
                  List.filter (fun (d', _) -> d' < d) p1.e_plan.Chaos.reseeds
                in
                let plan =
                  { p1.e_plan with
                    Chaos.reseeds = keep @ [ (d, Rng.int64 sched) ] }
                in
                ( Printf.sprintf "%s<t%d" (base_name p1.e_name) !gen_id,
                  plan,
                  Some s,
                  Some p1 )
              | None ->
                let plan =
                  if List.length entries >= 2 && Rng.float sched < 0.2 then
                    let p2 = pick_entry sched entries in
                    Mutate.mutate ~phases:target.tg_phases
                      ~allow_corrupt:target.tg_allow_corrupt sched
                      (Mutate.splice sched p1.e_plan p2.e_plan)
                  else
                    Mutate.mutate ~phases:target.tg_phases
                      ~allow_corrupt:target.tg_allow_corrupt sched p1.e_plan
                in
                ( Printf.sprintf "%s<m%d" (base_name p1.e_name) !gen_id,
                  plan,
                  None,
                  Some p1 )))
  in
  let keep_going () =
    !executed < trials && ((not stop_on_violation) || !found = None)
  in
  while keep_going () do
    let plans = take (trials - !executed) (next_batch ()) in
    let arr = Array.of_list plans in
    let runs = Array.length arr in
    let batch_seed = Rng.int64 sched in
    let trial_seeds = Mc.run_seeds ~runs ~seed:batch_seed in
    (* the seed each trial actually runs under: the entry's retained seed
       if any, else this batch's per-index draw - fixed before the
       parallel evaluation, so the campaign stays a pure function of the
       scheduler stream *)
    let used_seeds =
      Array.init runs (fun i ->
          let _, _, retained, _ = arr.(i) in
          match retained with
          | Some s -> s
          | None -> (
            (* Guided mode steers clear of trial seeds the target knows to
               be dead on arrival (e.g. CZ input vectors too lopsided for a
               split view to ever form).  The redraw is a deterministic
               chain from the per-index draw, so the campaign stays a pure
               function of its arguments; blind mode never filters - it is
               the undirected baseline. *)
            match target.tg_seed_viable with
            | Some viable when guided ->
              let s = ref trial_seeds.(i) in
              let k = ref 0 in
              while (not (viable !s)) && !k < 8 do
                s := Rng.int64 (Rng.create !s);
                incr k
              done;
              !s
            | _ -> trial_seeds.(i)))
    in
    let results =
      Mc.mapi ?domains ~runs ~seed:batch_seed (fun ~index ~seed:_ ->
          let _, plan, _, _ = arr.(index) in
          target.tg_run ~capture:None ~plan ~seed:used_seeds.(index))
    in
    (* folded in index order: the campaign is bit-identical for any domain
       count *)
    Array.iteri
      (fun i trial ->
        let name, plan, retained, parent = arr.(i) in
        (match trial.t_outcome with
        | `Committed -> incr committed
        | `Stalled -> incr stalled);
        deliveries := !deliveries + trial.t_deliveries;
        if !found = None && safety_violations trial <> [] then
          found :=
            Some
              { f_trial = !executed + i + 1;
                f_name = name;
                f_seed = used_seeds.(i);
                f_plan = plan;
                f_violations = trial.t_violations };
        let novelty = Coverage.novel ~base:!global trial.t_coverage in
        global := Coverage.merge !global trial.t_coverage;
        let bonus = near_miss_bonus trial.t_coverage in
        let rank = trial_rank trial in
        (* Near-miss runs are admitted even without coverage novelty: each
           distinct (plan, seed) pair that split views is its own
           neighbourhood worth exploiting.  A tail child, however, replays
           its parent's prefix - it re-reaches the parent's near miss by
           construction, so re-hitting it is not news; only climbing the
           ladder is. *)
        let admit =
          match retained with
          | Some _ -> (match parent with Some p -> rank > p.e_rank | None -> rank > 0)
          | None -> novelty > 0 || bonus > 0
        in
        if guided && admit then begin
          let e_seed = if bonus > 0 then Some used_seeds.(i) else None in
          (* anchor priority: the commit of a split-commit run (the state
             one matching coin away from a violation) over the live-split
             moment over bare split formation *)
          let e_anchor =
            if bonus = 0 then None
            else if Coverage.count trial.t_coverage "nm:split-commit" > 0 then
              (match trial.t_commit_delivery with
              | Some _ as d -> d
              | None -> trial.t_split_delivery)
            else
              match trial.t_live_delivery with
              | Some _ as d -> d
              | None -> trial.t_split_delivery
          in
          (* novelty is capped so early wide-coverage runs cannot drown
             the near-miss entries the exploit phase lives on *)
          parents :=
            { e_name = name;
              e_plan = plan;
              e_weight = min novelty 256 + bonus;
              e_seed;
              e_anchor;
              e_rank = rank }
            :: !parents;
          admitted := (name, plan) :: !admitted
        end
        else
          (* the child brought back nothing new: spend down its parent's
             energy so dud neighbourhoods stop eating the budget *)
          match parent with
          | Some p -> p.e_weight <- max 1 (p.e_weight - max 1 (p.e_weight / 4))
          | None -> ())
      results;
    executed := !executed + runs
  done;
  { c_target = target.tg_name;
    c_mode = mode;
    c_trials = !executed;
    c_committed = !committed;
    c_stalled = !stalled;
    c_deliveries = !deliveries;
    c_coverage = !global;
    c_corpus = List.rev !admitted;
    c_found = !found }

let replay ?capture ~target ~plan ~seed () = target.tg_run ~capture ~plan ~seed

(* ------------------------------------------------------------------ *)
(* The rediscovery benchmark                                           *)
(* ------------------------------------------------------------------ *)

type rediscovery = {
  r_seeds : int;
  r_cap : int;
  r_guided : int array;
  r_blind : int array;
  r_guided_median : float;
  r_blind_median : float;
  r_speedup : float;
}

let median a =
  let s = Array.copy a in
  Array.sort Int.compare s;
  let m = Array.length s in
  if m = 0 then 0.
  else if m mod 2 = 1 then float_of_int s.(m / 2)
  else (float_of_int s.((m / 2) - 1) +. float_of_int s.(m / 2)) /. 2.

let trials_to_find cap c =
  match c.c_found with Some f -> f.f_trial | None -> cap + 1

let rediscover ?domains ?(seeds = 5) ?(cap = 3_000) ?(batch = 16) ~seed () =
  let run_mode mode k =
    let root = Int64.add seed (Int64.of_int k) in
    trials_to_find cap
      (run ?domains ~batch ~mode ~target:cz_buggy ~trials:cap ~seed:root ())
  in
  let guided = Array.init seeds (run_mode Guided) in
  let blind = Array.init seeds (run_mode Blind) in
  let gm = median guided and bm = median blind in
  { r_seeds = seeds;
    r_cap = cap;
    r_guided = guided;
    r_blind = blind;
    r_guided_median = gm;
    r_blind_median = bm;
    r_speedup = (if gm > 0. then bm /. gm else 0.) }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_found ppf f =
  Format.fprintf ppf
    "@[<v>found at trial %d (corpus entry %s)@,seed=0x%LxL@,plan:@,  @[<v>%a@]"
    f.f_trial f.f_name f.f_seed Chaos.pp f.f_plan;
  List.iter
    (fun v -> Format.fprintf ppf "@,VIOLATION: %a" Monitor.pp_violation v)
    f.f_violations;
  Format.fprintf ppf "@]"

let pp_campaign ppf c =
  Format.fprintf ppf
    "@[<v>%s %s: %d trials, %d committed, %d stalled, %d deliveries@,\
     coverage: %d keys, %d points; corpus: %d entries"
    c.c_target (mode_name c.c_mode) c.c_trials c.c_committed c.c_stalled
    c.c_deliveries
    (Coverage.cardinality c.c_coverage)
    (Coverage.points c.c_coverage)
    (List.length c.c_corpus);
  (match c.c_found with
  | Some f -> Format.fprintf ppf "@,%a" pp_found f
  | None -> Format.fprintf ppf "@,no safety violation found");
  Format.fprintf ppf "@]"

let pp_int_array ppf a =
  Array.iteri (fun i v -> Format.fprintf ppf "%s%d" (if i = 0 then "" else " ") v) a

let pp_rediscovery ppf r =
  Format.fprintf ppf
    "@[<v>cz-aux rediscovery over %d seeds (cap %d trials; cap+1 = not found):@,\
     guided: [%a] median %.1f@,blind:  [%a] median %.1f@,speedup: %.1fx@]"
    r.r_seeds r.r_cap pp_int_array r.r_guided r.r_guided_median pp_int_array
    r.r_blind r.r_blind_median r.r_speedup

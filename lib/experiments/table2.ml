module Value = Bca_util.Value
module Types = Bca_core.Types
module Coin = Bca_coin.Coin
module Lockstep = Bca_netsim.Lockstep
module Node = Bca_netsim.Node
module Bca_byz = Bca_core.Bca_byz
module Gbca_byz = Bca_core.Gbca_byz
module Stack_strong = Bca_core.Aa_strong.Make (Bca_core.Bca_byz)
module Stack_weak = Bca_core.Aa_weak.Make (Bca_core.Gbca_byz)

let strong_t1_expected = 17.0

let strong_t1_critical_path = 15.0

let weak_t1_expected ~eps = (6.0 /. eps) +. 6.0

(* Fixed cast: three honest parties and one Byzantine party. *)
let x = 0 (* the designated decider / grade-1 holder of the bound value *)

let y = 1 (* the honest supporter steered to vote for the bound value *)

let s = 2 (* the honest party steered to bottom *)

let b_pid = 3 (* the Byzantine party *)

let n = 4

let tf = 1

let honest pid = pid <> b_pid

(* ------------------------------------------------------------------ *)
(* Strong-coin, t-unpredictable: Theorem 4.11's worst case.            *)
(*                                                                     *)
(* Per mixed round with bound value b (held by X): the adversary makes *)
(* X decide b via an echo3 quorum {X, Y, B} while Y and S decide       *)
(* bottom.  X's and Y's approvedVals are kept at {b} long enough by    *)
(* deferring echo(1-b) messages (condition (1) of lines 10/16 would    *)
(* otherwise pre-empt the value path), and released afterwards so      *)
(* everyone still decides.  The coin matches b with probability 1/2;   *)
(* on a match X commits and the bottom parties adopt b, giving         *)
(* unanimous (3-step) rounds until the coin repeats.                   *)
(* ------------------------------------------------------------------ *)

(* Generalized cast for arbitrary n = 3t + 1: X = 0 is the designated
   decider, parties 1..t are the honest voters steered to the bound value,
   parties t+1..2t decide bottom, and 2t+1..3t are Byzantine. *)
let strong_t1_once_general ~tf ~seed =
  (* lint: allow quorum -- constructing the n = 3t+1 configuration under test, not checking a threshold *)
  let n = (3 * tf) + 1 in
  let x = 0 in
  let ys = List.init tf (fun i -> 1 + i) in
  (* lint: allow quorum -- pid block offsets into the party numbering, not a threshold *)
  let ss = List.init tf (fun i -> 1 + tf + i) in
  (* Byzantine bloc: pids 2t+1 .. 3t, driven by byz_tick below *)
  let honest_pids = (x :: ys) @ ss in
  let honest pid = pid <= 2 * tf in
  let cfg = Types.cfg ~n ~t:tf in
  let coin = Coin.create Coin.Strong ~n ~degree:tf ~seed in
  let params =
    { Stack_strong.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) }
  in
  let states : Stack_strong.t option array = Array.make n None in
  let st pid = Option.get states.(pid) in
  let inputs = Array.init n (fun pid -> if pid = x then Value.V0 else Value.V1) in
  (* Round bookkeeping shared by B's behaviour and the deferral rules. *)
  let bound : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let round_mixed r =
    (* All honest parties advance in lockstep, so when any of them is in
       round r its estimate is its round-r input. *)
    let e p = Stack_strong.est (st p) in
    if List.for_all (fun p -> Value.equal (e p) (e x)) honest_pids then None
    else begin
      let b =
        match Hashtbl.find_opt bound r with
        | Some b -> b
        | None ->
          let b = e x in
          Hashtbl.replace bound r b;
          b
      in
      Some b
    end
  in
  let sent_echo3 p r =
    match Stack_strong.instance (st p) ~round:r with
    | None -> false
    | Some inst -> Bca_byz.echo3_sent inst <> None
  in
  let x_decided r =
    match Stack_strong.instance (st x) ~round:r with
    | None -> false
    | Some inst -> Bca_byz.decision inst <> None
  in
  (* The Byzantine bloc's opening volley per mixed round: echo both values,
     vote for the bound value towards X and the voters, and hand X its
     echo3 quorum completion. *)
  let opened : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let byz_tick b_me ~step:_ =
    if List.exists (fun p -> states.(p) = None) honest_pids then []
    else begin
      let r = Stack_strong.current_round (st x) in
      match round_mixed r with
      | Some b when not (Hashtbl.mem opened ((r * n) + b_me)) ->
        Hashtbl.replace opened ((r * n) + b_me) ();
        let w = Value.negate b in
        let m payload = Stack_strong.Bca (r, payload) in
        [ Node.Broadcast (m (Bca_byz.MEcho b));
          Node.Broadcast (m (Bca_byz.MEcho w));
          Node.Broadcast (m (Bca_byz.MEcho2 b));
          Node.Unicast (x, m (Bca_byz.MEcho3 (Types.Val b))) ]
      | _ -> []
    end
  in
  let make pid =
    if not (honest pid) then
      ( Node.make
          ~receive:(fun ~src:_ _ -> [])
          ~terminated:(fun () -> true)
          ~tick:(byz_tick pid) (),
        [] )
    else begin
      let state, init = Stack_strong.create params ~me:pid ~input:inputs.(pid) in
      states.(pid) <- Some state;
      (Stack_strong.node state, List.map (fun m -> Node.Broadcast m) init)
    end
  in
  (* Deferral rules: echo(1-b) is slow towards X until X decided, and slow
     towards every voter until that voter cast its echo3 - this keeps their
     approvedVals at {b} so the value conditions fire before the bottom
     priority. *)
  let order ~step:_ ~dst envs =
    List.filter
      (fun (env : _ Lockstep.envelope) ->
        match env.Lockstep.payload with
        | Stack_strong.Bca (r, Bca_byz.MEcho w) ->
          (match Hashtbl.find_opt bound r with
          | Some b when Value.equal w (Value.negate b) ->
            if dst = x && env.Lockstep.src <> x then x_decided r
            else if List.mem dst ys && env.Lockstep.src <> dst then sent_echo3 dst r
            else true
          | _ -> true)
        | _ -> true)
      envs
  in
  let res = Lockstep.run ~n ~honest ~make ~order ~max_steps:2000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  float_of_int res.Lockstep.depth

let strong_t1_once ~seed = strong_t1_once_general ~tf:1 ~seed

let strong_t1 ~runs ~seed = Mc.summarize ~runs ~seed strong_t1_once

let strong_t1_n ~n:n' ~runs ~seed =
  let tf = (n' - 1) / 3 in
  Mc.summarize ~runs ~seed (fun ~seed -> strong_t1_once_general ~tf ~seed)

(* ------------------------------------------------------------------ *)
(* Weak-coin: Theorem 5.4's worst case - one grade-1 party per round.  *)
(*                                                                     *)
(* All honest parties legitimately approve both values (no deferrals   *)
(* needed: Algorithm 6 prefers the value condition at every stage).    *)
(* The scheduler only picks which approval lands first (X, Y: b first; *)
(* S: 1-b first), and B ships b-certificates to X and Y so that X ends *)
(* at grade 1 for b while Y and S end at grade 0.  In adversarial coin *)
(* rounds every grade-0 party is steered to 1-b, so progress happens   *)
(* exactly on the epsilon-good event "all parties draw b".             *)
(* ------------------------------------------------------------------ *)

let weak_t1_once ~eps ~seed =
  let cfg = Types.cfg ~n ~t:tf in
  let coin = Coin.create (Coin.Eps eps) ~n ~degree:tf ~seed in
  let params =
    { Stack_weak.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) }
  in
  let states : Stack_weak.t option array = Array.make n None in
  let st pid = Option.get states.(pid) in
  let inputs = [| Value.V0; Value.V1; Value.V1; Value.V0 |] in
  let bound : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let round_mixed r =
    let e p = Stack_weak.est (st p) in
    if Value.equal (e x) (e y) && Value.equal (e y) (e s) then None
    else begin
      let b =
        match Hashtbl.find_opt bound r with
        | Some b -> b
        | None ->
          let b = e x in
          Hashtbl.replace bound r b;
          b
      in
      Some b
    end
  in
  Coin.set_adversary_choice coin (fun ~round ~pid:_ ->
      match Hashtbl.find_opt bound round with
      | Some b -> Value.negate b
      | None -> Value.V0);
  let opened : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let byz_tick ~step:_ =
    if List.exists (fun p -> states.(p) = None) [ x; y; s ] then []
    else begin
      let r = Stack_weak.current_round (st x) in
      match round_mixed r with
      | Some b when not (Hashtbl.mem opened r) ->
        Hashtbl.replace opened r ();
        let m payload = Stack_weak.Gbca (r, payload) in
        [ Node.Broadcast (m (Gbca_byz.MEcho b));
          Node.Unicast (x, m (Gbca_byz.MEcho2 b));
          Node.Unicast (y, m (Gbca_byz.MEcho2 b));
          Node.Unicast (x, m (Gbca_byz.MEcho3 (Types.Val b)));
          Node.Unicast (x, m (Gbca_byz.MEcho4 (Types.Val b)));
          Node.Unicast (x, m (Gbca_byz.MEcho5 (Types.Val b))) ]
      | _ -> []
    end
  in
  let make pid =
    if pid = b_pid then
      (Node.make ~receive:(fun ~src:_ _ -> []) ~terminated:(fun () -> true) ~tick:byz_tick (), [])
    else begin
      let state, init = Stack_weak.create params ~me:pid ~input:inputs.(pid) in
      states.(pid) <- Some state;
      (Stack_weak.node state, List.map (fun m -> Node.Broadcast m) init)
    end
  in
  (* Approval ordering: echoes for the bound value first towards X and Y,
     echoes for its complement first towards S. *)
  let order ~step:_ ~dst envs =
    let score (env : _ Lockstep.envelope) =
      match env.Lockstep.payload with
      | Stack_weak.Gbca (r, Gbca_byz.MEcho v) ->
        (match Hashtbl.find_opt bound r with
        | Some b ->
          let is_b = Value.equal v b in
          if dst = s then if is_b then 1 else 0 else if is_b then 0 else 1
        | None -> 0)
      | _ -> 0
    in
    List.stable_sort (fun a b -> Int.compare (score a) (score b)) envs
  in
  let res = Lockstep.run ~n ~honest ~make ~order ~max_steps:20_000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  float_of_int res.Lockstep.depth

let weak_t1 ~eps ~runs ~seed =
  Mc.summarize ~runs ~seed (fun ~seed -> weak_t1_once ~eps ~seed)

(* ------------------------------------------------------------------ *)
(* Strong-coin, 2t-unpredictable, EVBCA (Appendix G.1): Lemma G.15.    *)
(*                                                                     *)
(* Round 1 plays the plain split (4 broadcasts).  In every later mixed *)
(* round the optimizations force the bound value to be the previous    *)
(* coin c: the two parties that adopted c open with automatic echo2(c) *)
(* votes; the adversary designates one of them (D) to decide c - with  *)
(* B's echo3 vote timed one step late - and steers the other (O) and   *)
(* the leftover holder (W) to bottom, giving 3-broadcast rounds.  On a *)
(* coin match D commits, the next round is the 2-broadcast adoption    *)
(* round of optimizations 3/4, and unanimous 3-broadcast rounds run    *)
(* until the coin repeats: 4 + 3 + 2 + 3 + 1 = 13 in expectation.      *)
(* ------------------------------------------------------------------ *)

module Evbca = Bca_core.Evbca_byz
module Aa_ev = Bca_core.Aa_ev

type ev_roles = { c : Value.t; d : int; o : int; w : int }

let strong_2t1_expected = 13.0

let tsig_expected = 9.0

let strong_2t1_once ~seed =
  let cfg = Types.cfg ~n ~t:tf in
  let coin = Coin.create Coin.Strong ~n ~degree:(2 * tf) ~seed in
  let params = { Aa_ev.cfg; coin; optimize = true } in
  let states : Aa_ev.t option array = Array.make n None in
  let st pid = Option.get states.(pid) in
  let ready () = not (List.exists (fun p -> states.(p) = None) [ x; y; s ]) in
  let inputs = [| Value.V0; Value.V1; Value.V1; Value.V0 |] in
  let b1 = inputs.(x) in
  let w1 = Value.negate b1 in
  let roles : (int, ev_roles option) Hashtbl.t = Hashtbl.create 16 in
  let roles_for r =
    match Hashtbl.find_opt roles r with
    | Some ro -> ro
    | None ->
      if r < 2 || not (ready ()) then None
      else begin
        let ro =
          match Coin.adversary_peek coin ~round:(r - 1) with
          | Some (Coin.All_same c) ->
            let holders = List.filter (fun p -> Value.equal (Aa_ev.est (st p)) c) [ x; y; s ] in
            (match holders with
            | [ p1; p2 ] ->
              let d = min p1 p2 and o = max p1 p2 in
              let w = List.find (fun p -> p <> p1 && p <> p2) [ x; y; s ] in
              Some { c; d; o; w }
            | _ -> None)
          | Some Coin.Adversarial | None -> None
        in
        Hashtbl.replace roles r ro;
        ro
      end
  in
  let echo3_sent_in p r =
    Aa_ev.terminated (st p)
    ||
    match Aa_ev.instance (st p) ~round:r with
    | None -> false
    | Some inst -> Evbca.echo3_sent inst <> None
  in
  let approved_gt1 p r =
    match Aa_ev.instance (st p) ~round:r with
    | None -> false
    | Some inst -> List.length (Evbca.approved inst) > 1
  in
  let opened : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let late1 = ref false in
  let byz_tick ~step:_ =
    if not (ready ()) then []
    else begin
      let r = List.fold_left (fun acc p -> max acc (Aa_ev.current_round (st p))) 1 [ x; y; s ] in
      let out = ref [] in
      (* Round 1 volley: the plain-BCA split of Theorem 4.11. *)
      if r = 1 && not (Hashtbl.mem opened 1) then begin
        Hashtbl.replace opened 1 ();
        let m payload = Aa_ev.Bca (1, payload) in
        out :=
          [ Node.Broadcast (m (Evbca.MEcho b1));
            Node.Unicast (s, m (Evbca.MEcho w1));
            Node.Unicast (x, m (Evbca.MEcho2 b1));
            Node.Unicast (y, m (Evbca.MEcho2 b1));
            Node.Unicast (x, m (Evbca.MEcho3 (Types.Val b1))) ]
      end;
      if (not !late1) && echo3_sent_in y 1 then begin
        late1 := true;
        out := Node.Unicast (y, Aa_ev.Bca (1, Evbca.MEcho w1)) :: !out
      end;
      (* Mixed rounds >= 2: support the non-bound value's echoes and vote
         for the bound value towards everyone (delivery is timed by the
         deferral rules below). *)
      if r >= 2 && not (Hashtbl.mem opened r) then begin
        match roles_for r with
        | Some ro ->
          Hashtbl.replace opened r ();
          let m payload = Aa_ev.Bca (r, payload) in
          out :=
            !out
            @ [ Node.Broadcast (m (Evbca.MEcho (Value.negate ro.c)));
                Node.Broadcast (m (Evbca.MEcho2 ro.c));
                Node.Unicast (ro.d, m (Evbca.MEcho3 (Types.Val ro.c)));
                Node.Unicast (ro.o, m (Evbca.MEcho3 (Types.Val ro.c)));
                Node.Unicast (ro.w, m (Evbca.MEcho3 (Types.Val ro.c))) ]
        | None -> ()
      end;
      !out
    end
  in
  let make pid =
    if pid = b_pid then
      (Node.make ~receive:(fun ~src:_ _ -> []) ~terminated:(fun () -> true) ~tick:byz_tick (), [])
    else begin
      let state, init = Aa_ev.create params ~me:pid ~input:inputs.(pid) in
      states.(pid) <- Some state;
      (Aa_ev.node state, List.map (fun m -> Node.Broadcast m) init)
    end
  in
  (* Deliver older rounds and earlier message kinds first: the EV
     optimizations cross round boundaries, so a party's pending late
     round-(r-1) echoes must land before round-r echo3 votes for the
     approval propagation to stay ahead of the decision clauses. *)
  let kind_rank (env : _ Lockstep.envelope) =
    match env.Lockstep.payload with
    | Aa_ev.Bca (r, Evbca.MEcho _) -> (r, 0)
    | Aa_ev.Bca (r, Evbca.MEcho2 _) -> (r, 1)
    | Aa_ev.Bca (r, Evbca.MEcho3 _) -> (r, 2)
    | Aa_ev.Committed _ -> (max_int, 0)
  in
  (* Fairness valve: no deferral outlives this many steps, so the run
     cannot starve even if it drifts off the scripted path. *)
  let first_seen : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let stale ~step (env : _ Lockstep.envelope) =
    match Hashtbl.find_opt first_seen env.Lockstep.eid with
    | None ->
      Hashtbl.replace first_seen env.Lockstep.eid step;
      false
    | Some s0 -> step - s0 > 15
  in
  let order ~step ~dst envs =
    if not (ready ()) then envs
    else
      List.stable_sort (fun a b ->
        let xa, ya = kind_rank a and xb, yb = kind_rank b in
        match Int.compare xa xb with 0 -> Int.compare ya yb | c -> c)
      @@ List.filter
        (fun (env : _ Lockstep.envelope) ->
          stale ~step env
          ||
          let src = env.Lockstep.src in
          match env.Lockstep.payload with
          | Aa_ev.Bca (1, Evbca.MEcho v) when Value.equal v w1 ->
            (* Round 1: keep X's and Y's approvedVals at {b} long enough. *)
            if dst = x && src <> x then echo3_sent_in x 2
            else if dst = y && src = s then echo3_sent_in y 1
            else true
          | Aa_ev.Bca (r, Evbca.MEcho v) when r >= 2 ->
            (match Hashtbl.find_opt roles r with
            | Some (Some ro) when not (Value.equal v ro.c) ->
              (* D's approvedVals stay {c} until its next-round echo3 is
                 out (which is also when W(r+1) = D(r) needs the release
                 for the approval propagation of optimization 1). *)
              if dst = ro.d && src <> ro.d then echo3_sent_in ro.d (r + 1) else true
            | _ -> true)
          | Aa_ev.Bca (r, Evbca.MEcho2 v) when r >= 2 ->
            (match Hashtbl.find_opt roles r with
            | Some (Some ro) when Value.equal v ro.c ->
              (* O must reach |approvedVals| > 1 before its echo2 quorum
                 completes, so it bottoms instead of voting for c. *)
              if dst = ro.o && src = ro.d then approved_gt1 ro.o r else true
            | _ -> true)
          | Aa_ev.Bca (r, Evbca.MEcho3 (Types.Val v)) when r >= 2 && src = b_pid ->
            (match Hashtbl.find_opt roles r with
            | Some (Some ro) when Value.equal v ro.c ->
              (* B's vote lands one step after O's bottom echo3. *)
              echo3_sent_in ro.o r
            | _ -> true)
          | _ -> true)
        envs
  in
  let res = Lockstep.run ~n ~honest ~make ~order ~max_steps:2000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  float_of_int res.Lockstep.depth

let strong_2t1 ~runs ~seed = Mc.summarize ~runs ~seed strong_2t1_once

(* ------------------------------------------------------------------ *)
(* Threshold signatures, EVBCA-TSig (Appendix G.2): Lemma G.25.        *)
(* ------------------------------------------------------------------ *)

module Evt = Bca_core.Evbca_tsig
module Aa_evt = Bca_core.Aa_ev_tsig
module Threshold = Bca_crypto.Threshold

let tsig_once ~seed =
  let cfg = Types.cfg ~n ~t:tf in
  let coin = Coin.create Coin.Strong ~n ~degree:(2 * tf) ~seed in
  let setup, keys = Threshold.setup ~n ~seed:(Int64.add seed 0x7516L) in
  let inputs = [| Value.V0; Value.V0; Value.V1; Value.V1 |] in
  let w1 = inputs.(s) in
  let sent = ref false in
  (* B only helps S certify the minority value so the round-1 echo2 votes
     split 2-1 and everyone decides bottom. *)
  let byz_tick ~step:_ =
    if !sent then []
    else begin
      sent := true;
      let share = Threshold.sign keys.(b_pid) ~tag:(Evt.echo_tag ~round:1 w1) in
      [ Node.Unicast (s, Aa_evt.Bca (1, Evt.MEcho (w1, share))) ]
    end
  in
  let make pid =
    if pid = b_pid then
      (Node.make ~receive:(fun ~src:_ _ -> []) ~terminated:(fun () -> true) ~tick:byz_tick (), [])
    else begin
      let params = { Aa_evt.cfg; coin; setup; key = keys.(pid) } in
      let state, init = Aa_evt.create params ~me:pid ~input:inputs.(pid) in
      (Aa_evt.node state, List.map (fun m -> Node.Broadcast m) init)
    end
  in
  (* S must assemble its minority certificate before it sees the majority
     echo shares, so its single echo2 vote goes to the minority value. *)
  let order ~step:_ ~dst envs =
    if dst <> s then envs
    else begin
      let score (env : _ Lockstep.envelope) =
        match env.Lockstep.payload with
        | Aa_evt.Bca (1, Evt.MEcho (v, _)) -> if Value.equal v w1 then 0 else 1
        | _ -> 0
      in
      List.stable_sort (fun a b -> Int.compare (score a) (score b)) envs
    end
  in
  let res = Lockstep.run ~n ~honest ~make ~order ~max_steps:2000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  float_of_int res.Lockstep.depth

let tsig ~runs ~seed = Mc.summarize ~runs ~seed tsig_once

module Value = Bca_util.Value
module Types = Bca_core.Types
module Coin = Bca_coin.Coin
module Lockstep = Bca_netsim.Lockstep
module Node = Bca_netsim.Node
module Aa_ev = Bca_core.Aa_ev
module Stack_plain = Bca_core.Aa_strong.Make (Bca_core.Bca_byz)
module Stack_graded = Bca_core.Aa_weak.Make (Bca_core.Gbca_byz)

let n = 4

let tf = 1

let cfg = Types.cfg ~n ~t:tf

let inputs = [| Value.V0; Value.V1; Value.V1; Value.V0 |]

(* Fair lockstep run of an assembled stack; returns the critical-path depth
   and the states for follow-up inspection. *)
let run_lockstep make =
  let res = Lockstep.run ~n ~honest:(fun _ -> true) ~make ~max_steps:5_000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  res

let ev_once ~optimize ~seed =
  let coin = Coin.create Coin.Strong ~n ~degree:(2 * tf) ~seed in
  let params = { Aa_ev.cfg; coin; optimize } in
  let make pid =
    let st, init = Aa_ev.create params ~me:pid ~input:inputs.(pid) in
    (Aa_ev.node st, List.map (fun m -> Node.Broadcast m) init)
  in
  float_of_int (run_lockstep make).Lockstep.depth

let ev_optimizations ~runs ~seed =
  let on = Mc.summarize ~runs ~seed (fun ~seed -> ev_once ~optimize:true ~seed) in
  let off = Mc.summarize ~runs ~seed (fun ~seed -> ev_once ~optimize:false ~seed) in
  (on, off)

let plain_once ~seed =
  let coin = Coin.create Coin.Strong ~n ~degree:tf ~seed in
  let params =
    { Stack_plain.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) }
  in
  let make pid =
    let st, init = Stack_plain.create params ~me:pid ~input:inputs.(pid) in
    (Stack_plain.node st, List.map (fun m -> Node.Broadcast m) init)
  in
  float_of_int (run_lockstep make).Lockstep.depth

let graded_once ~seed =
  let coin = Coin.create Coin.Strong ~n ~degree:tf ~seed in
  let params =
    { Stack_graded.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) }
  in
  let make pid =
    let st, init = Stack_graded.create params ~me:pid ~input:inputs.(pid) in
    (Stack_graded.node st, List.map (fun m -> Node.Broadcast m) init)
  in
  float_of_int (run_lockstep make).Lockstep.depth

let graded_vs_plain ~runs ~seed =
  let plain = Mc.summarize ~runs ~seed (fun ~seed -> plain_once ~seed) in
  let graded = Mc.summarize ~runs ~seed (fun ~seed -> graded_once ~seed) in
  (plain, graded)

let termination_once ~seed =
  let coin = Coin.create Coin.Strong ~n ~degree:tf ~seed in
  let params =
    { Stack_plain.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) }
  in
  let states = Array.make n None in
  let first_commit_depth = ref None in
  let depths = ref 0 in
  let make pid =
    let st, init = Stack_plain.create params ~me:pid ~input:inputs.(pid) in
    states.(pid) <- Some st;
    (Stack_plain.node st, List.map (fun m -> Node.Broadcast m) init)
  in
  let observe ~step =
    depths := step;
    if !first_commit_depth = None
       && Array.exists
            (fun st -> match st with Some st -> Stack_plain.committed st <> None | None -> false)
            states
    then first_commit_depth := Some step
  in
  let res = Lockstep.run ~n ~honest:(fun _ -> true) ~make ~observe ~max_steps:5_000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  match !first_commit_depth with
  | Some d -> float_of_int (res.Lockstep.steps - d)
  | None -> 0.0

let termination_layer ~runs ~seed =
  Mc.summarize ~runs ~seed (fun ~seed -> termination_once ~seed)

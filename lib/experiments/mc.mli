(** Parallel Monte-Carlo driver (OCaml 5 domains).

    Replays a seeded experiment [runs] times and aggregates the samples,
    fanning the work out over [domains] cores.  Determinism is preserved
    under parallelism: every run's seed is pre-drawn from the root SplitMix64
    stream in run order (exactly the derivation the sequential driver used),
    and each domain evaluates a fixed contiguous block of (index, seed)
    pairs, so the resulting sample vector is bit-identical for {e any} domain
    count - including [1], which runs inline without spawning.

    The experiment closure must be self-contained: it is called from multiple
    domains concurrently and must not touch shared mutable state.  Every
    experiment in this repository already satisfies this (each run builds its
    own executor, coin, and protocol stacks from the seed). *)

val run_seeds : runs:int -> seed:int64 -> int64 array
(** The per-run seed vector derived from [seed]; exposed for tests. *)

val default_domains : unit -> int
(** Worker count used when [?domains] is omitted:
    [min 8 (Domain.recommended_domain_count ())], overridable with the
    [BCA_DOMAINS] environment variable. *)

val map : ?domains:int -> runs:int -> seed:int64 -> (seed:int64 -> 'a) -> 'a array
(** [map ~runs ~seed f] is [| f ~seed:s0; ...; f ~seed:s_{runs-1} |] with the
    seeds of {!run_seeds}, evaluated on up to [domains] domains. *)

val mapi :
  ?domains:int -> runs:int -> seed:int64 -> (index:int -> seed:int64 -> 'a) -> 'a array
(** {!map} with the run index passed to the worker, for batches whose
    items differ per index (e.g. a fuzzing batch of distinct plans).  Same
    determinism contract: seeds are pre-drawn in index order and the
    result vector is bit-identical for any domain count. *)

val summarize :
  ?domains:int -> runs:int -> seed:int64 -> (seed:int64 -> float) -> Bca_util.Summary.t
(** Summary statistics over [map]. *)

val map_fold :
  ?domains:int ->
  runs:int ->
  seed:int64 ->
  init:'b ->
  merge:('b -> 'a -> 'b) ->
  (seed:int64 -> 'a) ->
  'b
(** [map_fold ~init ~merge f] folds the {!map} result vector in run order.
    When [merge] is associative (with [init] an identity) the outcome is
    independent of the domain count - the contract [Bca_obs.Metrics]
    satisfies, so per-run metrics can be aggregated from a parallel
    campaign deterministically. *)

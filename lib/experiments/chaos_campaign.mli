(** Chaos Monte-Carlo campaign: randomized fault plans against every stack.

    Each run derives, from one 64-bit seed, the party inputs, a random
    [Bca_adversary.Chaos] fault plan (within the stack's fault model and
    resilience bound), and the chaos event stream; executes the stack under
    that plan with a [Bca_netsim.Monitor] attached; and reports any
    agreement / validity / binding violation together with the seed and the
    serialized plan, so a failure replays exactly.  Runs fan out over
    domains through {!Mc.map}, so campaign results are bit-identical for
    any domain count.

    Safety must hold under {e every} plan.  Liveness legitimately may not:
    plans may drop honest messages within the fairness budget and these
    protocols never retransmit, so runs that fail to commit are counted as
    [`Stalled] rather than as violations (see DESIGN.md, "Chaos fault
    model"). *)

type outcome = [ `Committed | `Stalled ]

type run_report = {
  run_seed : int64;  (** replay key: everything derives from this *)
  plan : Bca_adversary.Chaos.plan;
  outcome : outcome;  (** [`Committed]: every live honest party decided *)
  deliveries : int;
  chaos : Bca_adversary.Chaos.stats;
  violations : Bca_netsim.Monitor.violation list;
}

val safety_violations : run_report -> Bca_netsim.Monitor.violation list
(** The violations excluding [Stalled] watchdog flags. *)

val pp_run_report : Format.formatter -> run_report -> unit
(** Human-readable reproducer: seed, plan, outcome, violations. *)

type stack_report = {
  stack : string;
  runs : int;
  committed : int;
  stalled : int;
  total_deliveries : int;
  failures : run_report list;  (** runs with at least one safety violation *)
}

val pp_stack_report : Format.formatter -> stack_report -> unit

val six_stacks : (string * Bca_core.Aba.spec * Bca_core.Types.cfg) list
(** The paper's six end-to-end constructions at their smallest resilient
    configurations: crash stacks at n=5, t=2; Byzantine stacks at n=4,
    t=1. *)

val run_once :
  ?tracer:Bca_obs.Trace.t ->
  ?kills:int ->
  spec:Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  seed:int64 ->
  unit ->
  run_report
(** One seeded chaos run.  The fault plan keeps crashes plus corrupted
    parties within [cfg.t]; corruption is drawn only for Byzantine-model
    stacks.  [kills] (default 0) additionally draws up to that many
    kill/restart faults ([Bca_adversary.Chaos.kill]) against honest
    parties: each victim is SIGKILL-modelled mid-run and later revived
    with exactly its pre-kill state, and the monitor holds it to agreement
    and validity like any other honest party - the simulated counterpart
    of the cluster supervisor's SIGKILL + [--recover] cycle.  With
    [tracer] (default disabled) the full execution is recorded: network
    events from the executor, coin reveals, protocol milestones from a
    [Bca_core.Probe], and monitor violations. *)

val run_stack :
  ?domains:int ->
  ?kills:int ->
  name:string ->
  spec:Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  runs:int ->
  seed:int64 ->
  unit ->
  stack_report
(** [runs] seeded chaos runs of one stack via {!Mc.map}. *)

val run_all :
  ?domains:int -> ?kills:int -> runs:int -> seed:int64 -> unit -> stack_report list
(** The full campaign over {!six_stacks}, [runs] plans per stack; stack
    [i] uses root seed [seed + i] so adding a stack never reshuffles the
    others' plans. *)

val broken_run : ?tracer:Bca_obs.Trace.t -> seed:int64 -> unit -> run_report
(** Monitor self-test: a crash/strong cluster with an injected safety bug
    (party 0 equivocates the termination layer, telling one peer
    [committed(0)] and another [committed(1)]).  The monitor must flag an
    agreement violation; the report carries the reproducing seed and
    plan.  With [tracer] the violating execution is recorded and can be
    re-executed bit-identically by {!replay_broken}. *)

val replay_broken :
  seed:int64 ->
  Bca_obs.Event.timed array ->
  (run_report * Bca_obs.Event.timed array, string) result
(** Replay a {!broken_run} capture: rebuild the same cluster from [seed]
    (the scenario), re-apply the recorded action events
    ([Bca_netsim.Async_exec.replay]), and return the reproduced report
    together with the freshly recorded trace.  For a faithful capture the
    returned trace equals the original event-for-event, violation
    included; the report's [chaos] counters are zero (the chaos engine's
    decisions are baked into the action log, so it does not run during
    replay).  [Error] means the log does not fit the rebuilt scenario -
    wrong seed or a tampered capture. *)

module Value = Bca_util.Value
module Types = Bca_core.Types
module Coin = Bca_coin.Coin
module Lockstep = Bca_netsim.Lockstep
module Node = Bca_netsim.Node
module Bca_crash = Bca_core.Bca_crash
module Gbca_crash = Bca_core.Gbca_crash
module Stack_strong = Bca_core.Aa_strong.Make (Bca_core.Bca_crash)
module Stack_weak = Bca_core.Aa_weak.Make (Bca_core.Gbca_crash)

let strong_expected = 7.0

let weak_expected ~eps = (3.0 /. eps) +. 4.0

(* Alternate two envelope classes: x0 y0 x1 y1 ... - forces every
   "all messages equal?" quorum test over the prefix to fail. *)
let interleave_classes xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: go xs ys
  in
  go xs ys

let rounds_of extract envs =
  List.sort_uniq Int.compare (List.filter_map extract envs)

(* ------------------------------------------------------------------ *)
(* Strong coin cell: Theorem 4.2's "strategy 1".                       *)
(* ------------------------------------------------------------------ *)

let strong_once ~n ~tf ~seed =
  let cfg = Types.cfg ~n ~t:tf in
  let coin = Coin.create Coin.Strong ~n ~degree:tf ~seed in
  let params =
    { Stack_strong.cfg; mode = `Crash; coin; bca_params = (fun ~round:_ -> cfg) }
  in
  let inputs = Array.init n (fun pid -> if pid < Types.quorum cfg then Value.V0 else Value.V1) in
  let make pid =
    let st, init = Stack_strong.create params ~me:pid ~input:inputs.(pid) in
    (Stack_strong.node st, List.map (fun m -> Node.Broadcast m) init)
  in
  (* Every party sees a value-mixed prefix of each round's val messages, so
     every BCA instance with non-unanimous inputs decides bottom. *)
  let val_round (env : _ Lockstep.envelope) =
    match env.Lockstep.payload with
    | Stack_strong.Bca (r, Bca_crash.MVal _) -> Some r
    | _ -> None
  in
  let val_value (env : _ Lockstep.envelope) =
    match env.Lockstep.payload with
    | Stack_strong.Bca (_, Bca_crash.MVal v) -> Some v
    | _ -> None
  in
  let order ~step:_ ~dst:_ envs =
    let vals, rest = List.partition (fun e -> val_round e <> None) envs in
    let ordered =
      List.concat_map
        (fun r ->
          let mine = List.filter (fun e -> (match val_round e with Some r' -> r' = r | None -> false)) vals in
          let v0s, v1s = List.partition (fun e -> (match val_value e with Some v -> Value.equal v Value.V0 | None -> false)) mine in
          interleave_classes v0s v1s)
        (rounds_of val_round vals)
    in
    ordered @ rest
  in
  let res = Lockstep.run ~n ~honest:(fun _ -> true) ~make ~order ~max_steps:2000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  float_of_int res.Lockstep.depth

let strong ~runs ~seed =
  Mc.summarize ~runs ~seed (fun ~seed -> strong_once ~n:5 ~tf:2 ~seed)

let strong_raw ~runs ~seed =
  let rng = Bca_util.Rng.create seed in
  List.init runs (fun _ -> strong_once ~n:5 ~tf:2 ~seed:(Bca_util.Rng.int64 rng))

let strong_n ~n ~runs ~seed =
  let tf = (n - 1) / 2 in
  Mc.summarize ~runs ~seed (fun ~seed -> strong_once ~n ~tf ~seed)

(* ------------------------------------------------------------------ *)
(* Weak coin cell: Theorem 5.2, keep one grade-1 party per round.      *)
(* ------------------------------------------------------------------ *)

(* Per-round plan: [m] is the value held by at least [q] parties (so an
   echo-quorum for it is formable); parties [0 .. q-1] are steered to echo
   [m] and party 0 alone ends at grade 1.  [None] when no value has q
   holders (possible only under the local coin): the round is all-bottom. *)
type weak_plan = { m : Value.t } [@@unboxed]

let weak_generic ~n ~tf ~coin_kind ~seed =
  let cfg = Types.cfg ~n ~t:tf in
  let q = Types.quorum cfg in
  let coin = Coin.create coin_kind ~n ~degree:tf ~seed in
  let params =
    { Stack_weak.cfg; mode = `Crash; coin; bca_params = (fun ~round:_ -> cfg) }
  in
  let plans : (int, weak_plan option) Hashtbl.t = Hashtbl.create 16 in
  (* In adversarial coin rounds, steer every coin-adopting party to the
     complement of the bound value, so only the epsilon-good event makes
     progress. *)
  Coin.set_adversary_choice coin (fun ~round ~pid ->
      match Hashtbl.find_opt plans round with
      | Some (Some { m }) -> Value.negate m
      | Some None | None -> if pid mod 2 = 0 then Value.V0 else Value.V1);
  let states = Array.make n None in
  let inputs =
    Array.init n (fun pid -> if pid < q then Value.V0 else Value.V1)
  in
  let make pid =
    let st, init = Stack_weak.create params ~me:pid ~input:inputs.(pid) in
    states.(pid) <- Some st;
    (Stack_weak.node st, List.map (fun m -> Node.Broadcast m) init)
  in
  let payload (env : _ Lockstep.envelope) = env.Lockstep.payload in
  let plan_for r envs =
    match Hashtbl.find_opt plans r with
    | Some p -> p
    | None ->
      let vals =
        List.filter_map
          (fun e ->
            match payload e with
            | Stack_weak.Gbca (r', Gbca_crash.MVal v) when r' = r -> Some v
            | _ -> None)
          envs
      in
      let count v = List.length (List.filter (Value.equal v) vals) in
      let p =
        if count Value.V0 >= q then Some { m = Value.V0 }
        else if count Value.V1 >= q then Some { m = Value.V1 }
        else None
      in
      Hashtbl.replace plans r p;
      p
  in
  (* Reorder one recipient's batch so that, per round: parties [0..q-1] see
     a pure prefix of the quorum-formable value m (they echo m), the others a
     mixed prefix (they echo bottom); party 0 alone sees an echo2 prefix
     containing m (grade 1), everyone else an all-bottom echo2 prefix
     (grade 0).  This realizes the worst case of Theorem 5.2: exactly one
     grade-1 holder of the bound value per round. *)
  let order ~step:_ ~dst envs =
    let round_of env =
      match payload env with
      | Stack_weak.Gbca (r, _) -> Some r
      | Stack_weak.Committed _ -> None
    in
    let reorder_round r mine =
      let plan = plan_for r mine in
      let kind sel = List.filter sel mine in
      let vals =
        kind (fun e ->
            match payload e with Stack_weak.Gbca (_, Gbca_crash.MVal _) -> true | _ -> false)
      in
      let echoes =
        kind (fun e ->
            match payload e with Stack_weak.Gbca (_, Gbca_crash.MEcho _) -> true | _ -> false)
      in
      let echo2s =
        kind (fun e ->
            match payload e with Stack_weak.Gbca (_, Gbca_crash.MEcho2 _) -> true | _ -> false)
      in
      let rest =
        kind (fun e ->
            match payload e with
            | Stack_weak.Gbca (_, (Gbca_crash.MVal _ | Gbca_crash.MEcho _ | Gbca_crash.MEcho2 _))
              ->
              false
            | Stack_weak.Committed _ -> true)
      in
      match plan with
      | None -> mine
      | Some { m } ->
        let val_is_m e =
          match payload e with
          | Stack_weak.Gbca (_, Gbca_crash.MVal v) -> Value.equal v m
          | _ -> false
        in
        let echo_is_m e =
          match payload e with
          | Stack_weak.Gbca (_, Gbca_crash.MEcho cv) -> Types.cvalue_equal cv (Types.Val m)
          | _ -> false
        in
        let echo2_is_m e =
          match payload e with
          | Stack_weak.Gbca (_, Gbca_crash.MEcho2 cv) -> Types.cvalue_equal cv (Types.Val m)
          | _ -> false
        in
        let vm, vw = List.partition val_is_m vals in
        let em, ew = List.partition echo_is_m echoes in
        let e2m, e2w = List.partition echo2_is_m echo2s in
        let vals' = if dst < q then vm @ vw else interleave_classes vm vw in
        let echoes' = if dst = 0 then em @ ew else interleave_classes em ew in
        let echo2s' = if dst = 0 then e2m @ e2w else e2w @ e2m in
        vals' @ echoes' @ echo2s' @ rest
    in
    let rounds = rounds_of round_of envs in
    let no_round = List.filter (fun e -> round_of e = None) envs in
    List.concat_map
      (fun r -> reorder_round r (List.filter (fun e -> (match round_of e with Some r' -> r' = r | None -> false)) envs))
      rounds
    @ no_round
  in
  let res = Lockstep.run ~n ~honest:(fun _ -> true) ~make ~order ~max_steps:20_000 () in
  assert (res.Lockstep.outcome = `All_terminated);
  let max_commit_round =
    Array.fold_left
      (fun acc st ->
        match st with
        | Some st ->
          (match Stack_weak.commit_round st with Some r -> max acc r | None -> acc)
        | None -> acc)
      0 states
  in
  (res, max_commit_round)

let weak ~eps ~runs ~seed =
  Mc.summarize ~runs ~seed (fun ~seed ->
      let res, _ = weak_generic ~n:5 ~tf:2 ~coin_kind:(Coin.Eps eps) ~seed in
      float_of_int res.Lockstep.depth)

let weak_n ~n ~eps ~runs ~seed =
  let tf = (n - 1) / 2 in
  Mc.summarize ~runs ~seed (fun ~seed ->
      let res, _ = weak_generic ~n ~tf ~coin_kind:(Coin.Eps eps) ~seed in
      float_of_int res.Lockstep.depth)

let local_rounds ~n ~runs ~seed =
  let tf = (n - 1) / 2 in
  Mc.summarize ~runs ~seed (fun ~seed ->
      let _, rounds = weak_generic ~n ~tf ~coin_kind:Coin.Local ~seed in
      float_of_int rounds)

(* ------------------------------------------------------------------ *)
(* Ben-Or baseline: keep exactly one party proposing the majority      *)
(* value; everyone else flips a local coin.                            *)
(* ------------------------------------------------------------------ *)

module Benor = Bca_baselines.Benor

let benor_once ~n ~tf ~seed =
  let cfg = Types.cfg ~n ~t:tf in
  let coin = Coin.create Coin.Local ~n ~degree:0 ~seed in
  let params = { Benor.cfg; coin } in
  let states = Array.make n None in
  let inputs = Array.init n (fun pid -> if pid = 0 then Value.V1 else Value.V0) in
  let make pid =
    let st, init = Benor.create params ~me:pid ~input:inputs.(pid) in
    states.(pid) <- Some st;
    (Benor.node st, List.map (fun m -> Node.Broadcast m) init)
  in
  (* Per-round majority value: recomputed from the round's report batch. *)
  let majorities : (int, Value.t option) Hashtbl.t = Hashtbl.create 32 in
  let majority_for r envs =
    match Hashtbl.find_opt majorities r with
    | Some m -> m
    | None ->
      let reports =
        List.filter_map
          (fun (e : _ Lockstep.envelope) ->
            match e.Lockstep.payload with
            | Benor.Report (r', v) when r' = r -> Some v
            | _ -> None)
          envs
      in
      let count v = List.length (List.filter (Value.equal v) reports) in
      let m =
        if 2 * count Value.V0 > n then Some Value.V0
        else if 2 * count Value.V1 > n then Some Value.V1
        else None
      in
      Hashtbl.replace majorities r m;
      m
  in
  let order ~step:_ ~dst envs =
    let round_of (e : _ Lockstep.envelope) =
      match e.Lockstep.payload with
      | Benor.Report (r, _) | Benor.Proposal (r, _) -> Some r
      | Benor.Committed _ -> None
    in
    let reorder r mine =
      match majority_for r mine with
      | None -> mine
      | Some m ->
        let score (e : _ Lockstep.envelope) =
          match e.Lockstep.payload with
          | Benor.Report (_, v) ->
            if dst = 0 then if Value.equal v m then 0 else 1
            else if Value.equal v m then if e.Lockstep.src = 0 then 0 else 1
            else 0
          | Benor.Proposal (_, Some v) ->
            if dst = 0 && Value.equal v m then 0 else 2
          | Benor.Proposal (_, None) -> if dst = 0 then 1 else 0
          | Benor.Committed _ -> 0
        in
        List.stable_sort (fun a b -> Int.compare (score a) (score b)) mine
    in
    let rounds = rounds_of round_of envs in
    let no_round = List.filter (fun e -> round_of e = None) envs in
    List.concat_map (fun r -> reorder r (List.filter (fun e -> (match round_of e with Some r' -> r' = r | None -> false)) envs)) rounds
    @ no_round
  in
  let res =
    Lockstep.run ~n ~honest:(fun _ -> true) ~make ~order ~max_steps:200_000 ()
  in
  assert (res.Lockstep.outcome = `All_terminated);
  let rounds =
    Array.fold_left
      (fun acc st ->
        match st with
        | Some st -> (match Benor.commit_round st with Some r -> max acc r | None -> acc)
        | None -> acc)
      0 states
  in
  float_of_int rounds

let benor_rounds ~n ~runs ~seed =
  let tf = (n - 1) / 2 in
  Mc.summarize ~runs ~seed (fun ~seed -> benor_once ~n ~tf ~seed)

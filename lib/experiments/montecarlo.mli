(** Sequential Monte-Carlo driver (compatibility shim over {!Mc}).

    The paper's tables report {e expected} broadcast counts against the worst
    adversary; each experiment module provides a [run_once] that plays the
    worst-case strategy from the corresponding proof under one seed, and this
    driver averages the measured critical-path depth over many seeds.

    Kept as the single-domain entry point; new call sites should use
    {!Mc.summarize}, which parallelizes over domains and returns bit-identical
    results for the same [seed]. *)

val summarize : runs:int -> seed:int64 -> (seed:int64 -> float) -> Bca_util.Summary.t
(** [summarize ~runs ~seed f] evaluates [f] on [runs] seeds derived from
    [seed] by a SplitMix stream and returns the sample summary.  Equivalent
    to [Mc.summarize ~domains:1]. *)

module Value = Bca_util.Value
module Quorum = Bca_util.Quorum
module Coin = Bca_coin.Coin
module Types = Bca_core.Types
module Det = Bca_util.Det

type msg =
  | MValue of int * Value.t
  | MAux of int * Value.t
  | MRelease of int
  | Committed of Value.t

let pp_msg ppf = function
  | MValue (r, v) -> Format.fprintf ppf "value(%d, %a)" r Value.pp v
  | MAux (r, v) -> Format.fprintf ppf "aux(%d, %a)" r Value.pp v
  | MRelease r -> Format.fprintf ppf "release-coin(%d)" r
  | Committed v -> Format.fprintf ppf "committed(%a)" Value.pp v

type params = { cfg : Types.cfg; coin : Coin.t }

type round_state = {
  values : Value.t Quorum.t;  (* per (sender, value) *)
  mutable auxs : (Types.pid * Value.t) list;  (* arrival order, first per sender *)
  mutable relayed : Value.t list;
  mutable delivered : Value.t list;
  mutable aux_sent : bool;
  mutable auxed : Value.t list;  (* values AUXed in per-value mode *)
  mutable released : bool;
  mutable view : Value.t list option;
  releases : unit Quorum.t;
  mutable resolved : bool;
}

type t = {
  p : params;
  me : Types.pid;
  per_value_aux : bool;  (* the historical bug, reintroduced under a flag *)
  rounds : (int, round_state) Hashtbl.t;
  mutable round : int;
  mutable est : Value.t;
  mutable committed : Value.t option;
  mutable commit_round : int option;
  mutable sent_committed : bool;
  mutable terminated : bool;
  committed_msgs : Value.t Quorum.t;
}

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some rs -> rs
  | None ->
    let rs =
      { values = Quorum.create ();
        auxs = [];
        relayed = [];
        delivered = [];
        aux_sent = false;
        auxed = [];
        released = false;
        view = None;
        releases = Quorum.create ();
        resolved = false }
    in
    Hashtbl.replace t.rounds r rs;
    rs

(* Line 30's batch: the first [n - t] distinct AUX senders (arrival order)
   whose values are all among the delivered ones; the distinct values of
   the collected entries form the frozen view B.  One entry per sender -
   each honest party AUXes exactly once per round, which is what makes two
   singleton views necessarily agree (any two [n - t] sender sets share an
   honest party, and that party's unique AUX value is in both views). *)
let line30_view t rs =
  let q = Types.quorum t.p.cfg in
  let rec take seen vals = function
    | [] -> None
    | (pid, v) :: rest ->
      if List.mem pid seen || not (List.mem v rs.delivered) then take seen vals rest
      else begin
        let seen = pid :: seen in
        let vals = if List.mem v vals then vals else v :: vals in
        if List.length seen >= q then Some vals else take seen vals rest
      end
  in
  take [] [] (List.rev rs.auxs)

let rec progress t =
  if t.terminated then []
  else begin
    let tt = t.p.cfg.Types.t in
    let out = ref [] in
    (* BV-broadcast relays, deliveries and per-value AUX, on every round. *)
    Det.iter_sorted ~compare:Int.compare
      (fun r rs ->
        List.iter
          (fun v ->
            if Quorum.count rs.values v >= Quorum.plurality ~t:tt && not (List.mem v rs.relayed) then begin
              rs.relayed <- v :: rs.relayed;
              out := !out @ [ MValue (r, v) ]
            end;
            if Quorum.count rs.values v >= Quorum.supermajority ~t:tt && not (List.mem v rs.delivered)
            then rs.delivered <- v :: rs.delivered)
          Value.both)
      t.rounds;
    let rs = round_state t t.round in
    (* AUX for the first abv-delivered value, once per round.  One AUX per
       party is what the agreement argument needs: auxing every delivered
       value separately lets two honest parties freeze disjoint singleton
       views (their [n - t] batches can close before the other value's AUX
       arrives) and commit different values in different rounds.  The
       [per_value_aux] branch {e is} that historical bug, kept reachable
       behind the flag as the adversary-search benchmark target. *)
    if t.per_value_aux then
      List.iter
        (fun v ->
          if not (List.mem v rs.auxed) then begin
            rs.auxed <- v :: rs.auxed;
            out := !out @ [ MAux (t.round, v) ]
          end)
        (List.rev rs.delivered)
    else if (not rs.aux_sent) && rs.delivered <> [] then begin
      rs.aux_sent <- true;
      let v = List.nth rs.delivered (List.length rs.delivered - 1) in
      out := !out @ [ MAux (t.round, v) ]
    end;
    (* Line 30: freeze the view and release the coin. *)
    if not rs.released then begin
      match line30_view t rs with
      | Some view ->
        rs.released <- true;
        rs.view <- Some view;
        out := !out @ [ MRelease t.round ]
      | None -> ()
    end;
    (* Line 33: enough coin shares arrived - read the coin and resolve. *)
    if rs.released && (not rs.resolved) && Quorum.senders rs.releases >= Coin.degree t.p.coin + 1
    then begin
      rs.resolved <- true;
      let s = Coin.access t.p.coin ~round:t.round ~pid:t.me in
      (match rs.view with
      | Some [ v ] ->
        t.est <- v;
        if Value.equal v s && t.committed = None then begin
          t.committed <- Some v;
          t.commit_round <- Some t.round;
          if not t.sent_committed then begin
            t.sent_committed <- true;
            out := !out @ [ Committed v ]
          end
        end
      | Some _ | None -> t.est <- s);
      t.round <- t.round + 1;
      out := !out @ [ MValue (t.round, t.est) ] @ progress t
    end;
    !out
  end

let create ?(per_value_aux = false) p ~me ~input =
  Types.check_byz_resilience p.cfg;
  let t =
    { p;
      me;
      per_value_aux;
      rounds = Hashtbl.create 8;
      round = 1;
      est = input;
      committed = None;
      commit_round = None;
      sent_committed = false;
      terminated = false;
      committed_msgs = Quorum.create () }
  in
  (t, [ MValue (1, input) ])

let handle t ~from msg =
  if t.terminated then []
  else
    match msg with
    | MValue (r, v) ->
      ignore (Quorum.add_value (round_state t r).values ~pid:from v : bool);
      progress t
    | MAux (r, v) ->
      let rs = round_state t r in
      if not (List.exists (fun (p, _) -> p = from) rs.auxs) then
        rs.auxs <- (from, v) :: rs.auxs;
      progress t
    | MRelease r ->
      ignore (Quorum.add_first (round_state t r).releases ~pid:from () : bool);
      progress t
    | Committed v ->
      ignore (Quorum.add_first t.committed_msgs ~pid:from v : bool);
      let tt = t.p.cfg.Types.t in
      let out = ref [] in
      List.iter
        (fun v' ->
          let c = Quorum.count t.committed_msgs v' in
          if c >= Quorum.plurality ~t:tt && t.committed = None then begin
            t.committed <- Some v';
            t.commit_round <- Some t.round;
            if not t.sent_committed then begin
              t.sent_committed <- true;
              out := !out @ [ Committed v' ]
            end
          end;
          if c >= Quorum.supermajority ~t:tt then t.terminated <- true)
        Value.both;
      ignore v;
      !out

let committed t = t.committed

let commit_round t = t.commit_round

let terminated t = t.terminated

let current_round t = t.round

(* Milestone label for the probe, mirroring the (G)BCA stacks'
   [current_phase]: deepest quorum-gated step the current round passed. *)
let current_phase t =
  if t.committed <> None then "decide"
  else begin
    let rs = round_state t t.round in
    if rs.resolved then "resolved"
    else if rs.released then "released"
    else if rs.aux_sent || rs.auxed <> [] then "aux"
    else if rs.delivered <> [] then "delivered"
    else "init"
  end

let est t = t.est

let released t ~round = (round_state t round).released

let delivered t ~round = (round_state t round).delivered

let view t ~round = (round_state t round).view

let node t =
  Bca_netsim.Node.make
    ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
    ~terminated:(fun () -> t.terminated)
    ()

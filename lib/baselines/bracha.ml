module Quorum = Bca_util.Quorum
module Types = Bca_core.Types

type 'a msg = Initial of 'a | Echo of 'a | Ready of 'a

let pp_msg pp_payload ppf = function
  | Initial x -> Format.fprintf ppf "initial(%a)" pp_payload x
  | Echo x -> Format.fprintf ppf "echo(%a)" pp_payload x
  | Ready x -> Format.fprintf ppf "ready(%a)" pp_payload x

type 'a t = {
  cfg : Types.cfg;
  me : Types.pid;
  sender : Types.pid;
  echoes : 'a Quorum.t;
  readies : 'a Quorum.t;
  mutable echoed : bool;
  mutable readied : bool;
  mutable delivered : 'a option;
}

let create cfg ~me ~sender =
  Types.check_byz_resilience cfg;
  { cfg;
    me;
    sender;
    echoes = Quorum.create ();
    readies = Quorum.create ();
    echoed = false;
    readied = false;
    delivered = None }

let broadcast t x =
  assert (t.me = t.sender);
  [ Initial x ]

(* Every received payload value is a candidate; thresholds follow Bracha:
   echo on the sender's initial, ready on n-t echoes or t+1 readies,
   deliver on 2t+1 readies. *)
let progress t =
  let q = Types.quorum t.cfg in
  let tt = t.cfg.Types.t in
  let out = ref [] in
  let candidates =
    (* lint: allow poly-compare -- the payload is a type parameter here; the structural order is the only total order available for dedup *)
    List.sort_uniq compare (Quorum.values t.echoes @ Quorum.values t.readies)
  in
  List.iter
    (fun x ->
      if
        (not t.readied)
        && (Quorum.count t.echoes x >= q || Quorum.count t.readies x >= Quorum.plurality ~t:tt)
      then begin
        t.readied <- true;
        out := !out @ [ Ready x ]
      end;
      if t.delivered = None && Quorum.count t.readies x >= Quorum.supermajority ~t:tt then
        t.delivered <- Some x)
    candidates;
  !out

let handle t ~from msg =
  let direct = ref [] in
  (match msg with
  | Initial x ->
    if from = t.sender && not t.echoed then begin
      t.echoed <- true;
      direct := [ Echo x ]
    end
  | Echo x -> ignore (Quorum.add_first t.echoes ~pid:from x : bool)
  | Ready x -> ignore (Quorum.add_first t.readies ~pid:from x : bool));
  !direct @ progress t

let delivered t = t.delivered

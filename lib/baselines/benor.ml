module Value = Bca_util.Value
module Quorum = Bca_util.Quorum
module Coin = Bca_coin.Coin
module Types = Bca_core.Types

type msg =
  | Report of int * Value.t
  | Proposal of int * Value.t option
  | Committed of Value.t

let pp_msg ppf = function
  | Report (r, v) -> Format.fprintf ppf "report(%d, %a)" r Value.pp v
  | Proposal (r, Some v) -> Format.fprintf ppf "proposal(%d, %a)" r Value.pp v
  | Proposal (r, None) -> Format.fprintf ppf "proposal(%d, ?)" r
  | Committed v -> Format.fprintf ppf "committed(%a)" Value.pp v

type params = { cfg : Types.cfg; coin : Coin.t }

type round_state = {
  reports : Value.t Quorum.t;
  proposals : Value.t option Quorum.t;
  mutable proposed : bool;
}

type t = {
  p : params;
  me : Types.pid;
  rounds : (int, round_state) Hashtbl.t;
  mutable round : int;
  mutable est : Value.t;
  mutable committed : Value.t option;
  mutable commit_round : int option;
  mutable sent_committed : bool;
  mutable terminated : bool;
}

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some rs -> rs
  | None ->
    let rs = { reports = Quorum.create (); proposals = Quorum.create (); proposed = false } in
    Hashtbl.replace t.rounds r rs;
    rs

(* One scan of the enabled phase transitions; loops because advancing a
   round can immediately enable the next round's quorums. *)
let rec progress t =
  if t.terminated then []
  else begin
    let q = Types.quorum t.p.cfg in
    let tt = t.p.cfg.Types.t in
    let n = t.p.cfg.Types.n in
    let rs = round_state t t.round in
    let out = ref [] in
    if (not rs.proposed) && Quorum.senders rs.reports >= q then begin
      rs.proposed <- true;
      let majority =
        List.find_opt (fun v -> 2 * Quorum.count rs.reports v > n) Value.both
      in
      out := !out @ [ Proposal (t.round, majority) ]
    end;
    if Quorum.senders rs.proposals >= q then begin
      let decided =
        List.find_opt (fun v -> Quorum.count rs.proposals (Some v) >= Quorum.plurality ~t:tt) Value.both
      in
      let present =
        List.find_opt (fun v -> Quorum.count rs.proposals (Some v) >= 1) Value.both
      in
      (match decided with
      | Some v ->
        t.est <- v;
        if t.committed = None then begin
          t.committed <- Some v;
          t.commit_round <- Some t.round
        end;
        if not t.sent_committed then begin
          t.sent_committed <- true;
          out := !out @ [ Committed v ]
        end
      | None ->
        (match present with
        | Some v -> t.est <- v
        | None -> t.est <- Coin.access t.p.coin ~round:t.round ~pid:t.me));
      t.round <- t.round + 1;
      out := !out @ [ Report (t.round, t.est) ] @ progress t
    end;
    !out
  end

let create p ~me ~input =
  Types.check_crash_resilience p.cfg;
  let t =
    { p;
      me;
      rounds = Hashtbl.create 8;
      round = 1;
      est = input;
      committed = None;
      commit_round = None;
      sent_committed = false;
      terminated = false }
  in
  (t, [ Report (1, input) ])

let handle t ~from msg =
  if t.terminated then []
  else
    match msg with
    | Report (r, v) ->
      ignore (Quorum.add_first (round_state t r).reports ~pid:from v : bool);
      progress t
    | Proposal (r, p) ->
      ignore (Quorum.add_first (round_state t r).proposals ~pid:from p : bool);
      progress t
    | Committed v ->
      if t.committed = None then begin
        t.committed <- Some v;
        t.commit_round <- Some t.round
      end;
      let out =
        if not t.sent_committed then begin
          t.sent_committed <- true;
          [ Committed v ]
        end
        else []
      in
      t.terminated <- true;
      out

let committed t = t.committed

let terminated t = t.terminated

let current_round t = t.round

let commit_round t = t.commit_round

let est t = t.est

let node t =
  Bca_netsim.Node.make
    ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
    ~terminated:(fun () -> t.terminated)
    ()

(** Cachin-Zanolini (arXiv 2020, [9] Algorithm 4), reconstructed from the
    paper's Appendix A narrative: the strong-coin ABA whose liveness breaks
    against an adaptive adversary when the coin is only t-unpredictable.

    Round structure ([n >= 3t + 1], FIFO links assumed by [9]):

    + broadcast [(VALUE, r, est)]; relay a value received from [t + 1]
      distinct parties; {e abv-deliver} it at [2t + 1] and broadcast
      [(AUX, r, v)] once per round, carrying the first delivered value
      (one AUX per party per round - the view-intersection lemma behind
      agreement needs each sender to contribute a single value);
    + once AUX messages from [n - t] distinct parties, with values among the
      delivered ones, have arrived (line 30 of [9]), broadcast
      [RELEASE-COIN]; the view [B] - the value set of that first consistent
      batch - is frozen at this point;
    + upon [degree + 1] release-coin messages the round's coin [s] becomes
      readable (line 33): if [B = {v}] adopt [v] and decide when [v = s];
      otherwise adopt [s].

    With a t-unpredictable coin the adversary reads [s] after the first
    [t + 1] parties release, while a slow party's view [B] is still
    schedulable - the Appendix A attack drives the slow party to
    [B = {1 - s}] forever, without violating FIFO.  With a 2t-unpredictable
    coin the same attack fails: the slow party's release is needed before
    the reveal, and by then its view is pinned.  Both runs live in
    [bca_adversary.Cz_attack]. *)

module Types = Bca_core.Types

type msg =
  | MValue of int * Bca_util.Value.t
  | MAux of int * Bca_util.Value.t
  | MRelease of int  (** release-coin share for round r *)
  | Committed of Bca_util.Value.t

val pp_msg : Format.formatter -> msg -> unit

type params = {
  cfg : Types.cfg;
  coin : Bca_coin.Coin.t;  (** the attack works iff [degree < 2t] *)
}

type t

val create :
  ?per_value_aux:bool -> params -> me:Types.pid -> input:Bca_util.Value.t -> t * msg list
(** [per_value_aux] (default [false]) re-introduces the historical AUX bug
    this reconstruction originally shipped with: broadcast a separate
    [(AUX, r, v)] for {e every} abv-delivered value instead of one per
    round.  Two honest parties can then freeze disjoint singleton views
    and commit different values - the safety violation the adversary
    search ([bca fuzz]) uses as its rediscovery benchmark.  Leave unset
    for the correct protocol. *)

val handle : t -> from:Types.pid -> msg -> msg list
val committed : t -> Bca_util.Value.t option

val commit_round : t -> int option
(** Round in which [committed] was first set, for agreement-spread
    monitoring. *)

val terminated : t -> bool
val current_round : t -> int

val current_phase : t -> string
(** Deepest milestone of the current round, for the probe:
    ["init"] / ["delivered"] / ["aux"] / ["released"] / ["resolved"] /
    ["decide"]. *)

val est : t -> Bca_util.Value.t

val delivered : t -> round:int -> Bca_util.Value.t list
(** The round's abv-delivered values - read by the attack driver. *)

val released : t -> round:int -> bool
(** Whether this party has invoked release-coin for the round - the attack
    driver keys its coin peek on the first [t + 1] of these. *)

val view : t -> round:int -> Bca_util.Value.t list option
(** The frozen line-30 view [B], once the party released. *)

val node : t -> msg Bca_netsim.Node.t

module Value = Bca_util.Value
module Quorum = Bca_util.Quorum
module Coin = Bca_coin.Coin
module Types = Bca_core.Types
module Det = Bca_util.Det

type msg =
  | Est of int * Value.t
  | Aux of int * Value.t
  | Committed of Value.t

let pp_msg ppf = function
  | Est (r, v) -> Format.fprintf ppf "est(%d, %a)" r Value.pp v
  | Aux (r, v) -> Format.fprintf ppf "aux(%d, %a)" r Value.pp v
  | Committed v -> Format.fprintf ppf "committed(%a)" Value.pp v

type params = { cfg : Types.cfg; coin : Coin.t }

type round_state = {
  ests : Value.t Quorum.t;  (* per (sender, value): relays add a second echo *)
  mutable auxs : (Types.pid * Value.t) list;  (* arrival order, first per sender *)
  mutable relayed : Value.t list;
  mutable bin : Value.t list;
  mutable aux_sent : bool;
}

type t = {
  p : params;
  me : Types.pid;
  rounds : (int, round_state) Hashtbl.t;
  mutable round : int;
  mutable est : Value.t;
  mutable committed : Value.t option;
  mutable sent_committed : bool;
  mutable terminated : bool;
  committed_msgs : Value.t Quorum.t;
}

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some rs -> rs
  | None ->
    let rs =
      { ests = Quorum.create (); auxs = []; relayed = []; bin = []; aux_sent = false }
    in
    Hashtbl.replace t.rounds r rs;
    rs

let bin_values t ~round = (round_state t round).bin

(* The first n-t AUX senders (in arrival order) whose values are already
   BV-delivered; [None] until that many exist.  Arrival order is the
   adversary's lever - exactly the flaw the attack exploits. *)
let aux_view t rs =
  let q = Types.quorum t.p.cfg in
  let rec take seen vals = function
    | [] -> None
    | (pid, v) :: rest ->
      if List.mem pid seen || not (List.mem v rs.bin) then take seen vals rest
      else
        let seen = pid :: seen in
        let vals = if List.mem v vals then vals else v :: vals in
        if List.length seen >= q then Some vals else take seen vals rest
  in
  take [] [] (List.rev rs.auxs)

let rec progress t =
  if t.terminated then []
  else begin
    let tt = t.p.cfg.Types.t in
    let q = Types.quorum t.p.cfg in
    let out = ref [] in
    let rs = round_state t t.round in
    (* BV-broadcast relays and deliveries, for every round with traffic. *)
    Det.iter_sorted ~compare:Int.compare
      (fun r rs ->
        List.iter
          (fun v ->
            if Quorum.count rs.ests v >= Quorum.plurality ~t:tt && not (List.mem v rs.relayed) then begin
              rs.relayed <- v :: rs.relayed;
              out := !out @ [ Est (r, v) ]
            end;
            if Quorum.count rs.ests v >= Quorum.supermajority ~t:tt && not (List.mem v rs.bin) then
              rs.bin <- v :: rs.bin)
          Value.both)
      t.rounds;
    (* AUX for the first delivered value. *)
    if (not rs.aux_sent) && rs.bin <> [] then begin
      rs.aux_sent <- true;
      let v = List.nth rs.bin (List.length rs.bin - 1) in
      out := !out @ [ Aux (t.round, v) ]
    end;
    ignore q;
    (* Decision step on a consistent n-t AUX view. *)
    (match aux_view t rs with
    | Some [ v ] ->
      let s = Coin.access t.p.coin ~round:t.round ~pid:t.me in
      t.est <- v;
      if Value.equal v s && t.committed = None then begin
        t.committed <- Some v;
        if not t.sent_committed then begin
          t.sent_committed <- true;
          out := !out @ [ Committed v ]
        end
      end;
      t.round <- t.round + 1;
      out := !out @ [ Est (t.round, t.est) ] @ progress t
    | Some _ ->
      let s = Coin.access t.p.coin ~round:t.round ~pid:t.me in
      t.est <- s;
      t.round <- t.round + 1;
      out := !out @ [ Est (t.round, t.est) ] @ progress t
    | None -> ());
    !out
  end

let create p ~me ~input =
  Types.check_byz_resilience p.cfg;
  let t =
    { p;
      me;
      rounds = Hashtbl.create 8;
      round = 1;
      est = input;
      committed = None;
      sent_committed = false;
      terminated = false;
      committed_msgs = Quorum.create () }
  in
  (t, [ Est (1, input) ])

let handle t ~from msg =
  if t.terminated then []
  else
    match msg with
    | Est (r, v) ->
      ignore (Quorum.add_value (round_state t r).ests ~pid:from v : bool);
      progress t
    | Aux (r, v) ->
      let rs = round_state t r in
      if not (List.exists (fun (p, _) -> p = from) rs.auxs) then
        rs.auxs <- (from, v) :: rs.auxs;
      progress t
    | Committed v ->
      ignore (Quorum.add_first t.committed_msgs ~pid:from v : bool);
      let tt = t.p.cfg.Types.t in
      let out = ref [] in
      List.iter
        (fun v' ->
          let c = Quorum.count t.committed_msgs v' in
          if c >= Quorum.plurality ~t:tt && t.committed = None then begin
            t.committed <- Some v';
            if not t.sent_committed then begin
              t.sent_committed <- true;
              out := !out @ [ Committed v' ]
            end
          end;
          if c >= Quorum.supermajority ~t:tt then t.terminated <- true)
        Value.both;
      ignore v;
      !out

let committed t = t.committed

let terminated t = t.terminated

let current_round t = t.round

let est t = t.est

let node t =
  Bca_netsim.Node.make
    ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
    ~terminated:(fun () -> t.terminated)
    ()

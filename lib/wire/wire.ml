module Value = Bca_util.Value

let version = 1

let header_bytes = 14

let default_max_body = 1 lsl 20

let max_sender = 0xFFFF

let magic0 = '\xBC'

let magic1 = '\xA1'

(* ---- CRC-32 (IEEE 802.3, reflected) -------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s ~pos ~len =
  if not (Bca_util.Bounds.slice_ok ~pos ~len (String.length s)) then
    invalid_arg "Wire.crc32: slice out of bounds";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

(* ---- body primitives ----------------------------------------------- *)

module Put = struct
  let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

  let u16 buf v =
    u8 buf (v lsr 8);
    u8 buf v

  let u32 buf v =
    u8 buf (v lsr 24);
    u8 buf (v lsr 16);
    u8 buf (v lsr 8);
    u8 buf v

  let i64 buf v =
    for shift = 7 downto 0 do
      u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
    done

  let varint buf v =
    if v < 0 then invalid_arg "Wire.Put.varint: negative";
    let rec go v =
      if v < 0x80 then u8 buf v
      else begin
        u8 buf (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  let string buf s =
    varint buf (String.length s);
    Buffer.add_string buf s

  let value buf v = u8 buf (Value.to_int v)
end

module Get = struct
  type t = { src : string; mutable pos : int; limit : int }

  exception Malformed of string

  let fail msg = raise (Malformed msg)

  let create src ~pos ~len =
    if not (Bca_util.Bounds.slice_ok ~pos ~len (String.length src)) then
      invalid_arg "Wire.Get.create: slice out of bounds";
    { src; pos; limit = pos + len }

  let remaining t = t.limit - t.pos

  let u8 t =
    if t.pos >= t.limit then fail "truncated (u8)";
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    let lo = u8 t in
    (hi lsl 8) lor lo

  let u32 t =
    let a = u16 t in
    let b = u16 t in
    (a lsl 16) lor b

  let i64 t =
    let v = ref 0L in
    for _ = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 t))
    done;
    !v

  let varint t =
    let rec go shift acc =
      if shift > 56 then fail "varint too long"
      else
        let b = u8 t in
        let acc = acc lor ((b land 0x7F) lsl shift) in
        (* bit 62 of the payload is OCaml's int sign bit: a 9-byte encoding
           with 0x40 set in the last byte would wrap negative and sail
           through downstream [len > remaining]-style guards *)
        if acc < 0 then fail "varint overflows 63-bit int"
        else if b land 0x80 = 0 then acc
        else go (shift + 7) acc
    in
    go 0 0

  let string t =
    let len = varint t in
    if not (Bca_util.Bounds.fits ~max:(remaining t) len) then fail "string length exceeds body";
    let s = String.sub t.src t.pos len in
    t.pos <- t.pos + len;
    s

  let value t =
    match u8 t with
    | 0 -> Value.V0
    | 1 -> Value.V1
    | v -> fail (Printf.sprintf "invalid value byte %d" v)

  let sub t len =
    if not (Bca_util.Bounds.fits ~max:(remaining t) len) then fail "sub-cursor exceeds input";
    let s = { src = t.src; pos = t.pos; limit = t.pos + len } in
    t.pos <- t.pos + len;
    s

  let take t len =
    if not (Bca_util.Bounds.fits ~max:(remaining t) len) then fail "take exceeds input";
    let s = String.sub t.src t.pos len in
    t.pos <- t.pos + len;
    s

  let expect_end t =
    if t.pos <> t.limit then
      fail (Printf.sprintf "%d trailing body bytes" (t.limit - t.pos))
end

(* ---- codecs and frames --------------------------------------------- *)

type 'm codec = {
  id : int;
  name : string;
  enc : Buffer.t -> 'm -> unit;
  dec : Get.t -> 'm;
}

type frame = { codec_id : int; sender : int; body : string }

type view = {
  v_codec_id : int;
  v_sender : int;
  v_src : string;
  v_pos : int;  (** body offset in [v_src] *)
  v_len : int;  (** body length *)
}

type error =
  | Truncated of { need : int; have : int }
  | Bad_magic
  | Unsupported_version of int
  | Oversized of { len : int; limit : int }
  | Bad_crc of { expected : int32; actual : int32 }
  | Wrong_codec of { expected : int; got : int }
  | Malformed_body of string

let pp_error ppf = function
  | Truncated { need; have } -> Format.fprintf ppf "truncated frame: need %d bytes, have %d" need have
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Unsupported_version v -> Format.fprintf ppf "unsupported wire version %d" v
  | Oversized { len; limit } -> Format.fprintf ppf "oversized body: %d bytes (limit %d)" len limit
  | Bad_crc { expected; actual } ->
    Format.fprintf ppf "CRC mismatch: header says %08lx, body hashes to %08lx" expected actual
  | Wrong_codec { expected; got } ->
    Format.fprintf ppf "wrong codec id: expected %d, got %d" expected got
  | Malformed_body msg -> Format.fprintf ppf "malformed body: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

let encode_raw ~codec_id ~sender body =
  if not (Bca_util.Bounds.fits ~max:max_sender sender) then
    invalid_arg "Wire.encode: sender out of range";
  if not (Bca_util.Bounds.fits ~max:0xFF codec_id) then
    invalid_arg "Wire.encode: codec id out of range";
  let len = String.length body in
  let buf = Buffer.create (header_bytes + len) in
  Buffer.add_char buf magic0;
  Buffer.add_char buf magic1;
  Put.u8 buf version;
  Put.u8 buf codec_id;
  Put.u16 buf sender;
  Put.u32 buf len;
  let crc = crc32 body ~pos:0 ~len in
  Put.u32 buf (Int32.to_int (Int32.logand crc 0xFFFFFFFFl) land 0xFFFFFFFF);
  Buffer.add_string buf body;
  Buffer.contents buf

let encode codec ~sender m =
  let body = Buffer.create 32 in
  codec.enc body m;
  encode_raw ~codec_id:codec.id ~sender (Buffer.contents body)

let encode_buf codec ~sender ~scratch m =
  Buffer.clear scratch;
  codec.enc scratch m;
  encode_raw ~codec_id:codec.id ~sender (Buffer.contents scratch)

(* Header parse shared by the one-shot decoder and the stream reader.
   [have] is how many bytes are available from [pos]; the caller guarantees
   [pos + have <= String.length s].  Returns a zero-copy view: the body
   stays in [s], only offsets travel.  [s] is an immutable string, so views
   remain valid whatever the caller does next. *)
let decode_frame_view ?(max_body = default_max_body) s ~pos =
  let have = String.length s - pos in
  if not (Bca_util.Bounds.fits ~max:(String.length s) pos) then
    invalid_arg "Wire.decode_frame_view: pos out of bounds";
  if have < header_bytes then Error (Truncated { need = header_bytes; have })
  else if s.[pos] <> magic0 || s.[pos + 1] <> magic1 then Error Bad_magic
  else
    let byte i = Char.code s.[pos + i] in
    let v = byte 2 in
    if v <> version then Error (Unsupported_version v)
    else
      let codec_id = byte 3 in
      let sender = (byte 4 lsl 8) lor byte 5 in
      let len = (byte 6 lsl 24) lor (byte 7 lsl 16) lor (byte 8 lsl 8) lor byte 9 in
      if len > max_body then Error (Oversized { len; limit = max_body })
      else if have < header_bytes + len then
        Error (Truncated { need = header_bytes + len; have })
      else
        let expected =
          Int32.logor
            (Int32.shift_left (Int32.of_int ((byte 10 lsl 8) lor byte 11)) 16)
            (Int32.of_int ((byte 12 lsl 8) lor byte 13))
        in
        let actual = crc32 s ~pos:(pos + header_bytes) ~len in
        if not (Int32.equal expected actual) then Error (Bad_crc { expected; actual })
        else
          Ok
            ( { v_codec_id = codec_id; v_sender = sender; v_src = s; v_pos = pos + header_bytes; v_len = len },
              header_bytes + len )

(* Views built by [decode_frame_view] are always in range, but the
   type is public - re-validate the window before materialising it. *)
let view_body v =
  let pos = v.v_pos and len = v.v_len in
  if not (Bca_util.Bounds.slice_ok ~pos ~len (String.length v.v_src)) then
    invalid_arg "Wire.view_body: view window out of range";
  String.sub v.v_src pos len

let frame_of_view v = { codec_id = v.v_codec_id; sender = v.v_sender; body = view_body v }

let view_of_frame f =
  { v_codec_id = f.codec_id; v_sender = f.sender; v_src = f.body; v_pos = 0; v_len = String.length f.body }

let view_bytes v = header_bytes + v.v_len

let cursor_of_view v = Get.create v.v_src ~pos:v.v_pos ~len:v.v_len

let decode_frame ?max_body s ~pos =
  match decode_frame_view ?max_body s ~pos with
  | Error _ as e -> e
  | Ok (v, consumed) -> Ok (frame_of_view v, consumed)

let decode_body codec frame =
  if frame.codec_id <> codec.id then
    Error (Wrong_codec { expected = codec.id; got = frame.codec_id })
  else
    let cur = Get.create frame.body ~pos:0 ~len:(String.length frame.body) in
    match
      let m = codec.dec cur in
      Get.expect_end cur;
      m
    with
    | m -> Ok m
    | exception Get.Malformed msg -> Error (Malformed_body msg)

let decode_body_view codec v =
  if v.v_codec_id <> codec.id then Error (Wrong_codec { expected = codec.id; got = v.v_codec_id })
  else
    let cur = cursor_of_view v in
    match
      let m = codec.dec cur in
      Get.expect_end cur;
      m
    with
    | m -> Ok m
    | exception Get.Malformed msg -> Error (Malformed_body msg)

let decode codec s =
  match decode_frame s ~pos:0 with
  | Error e -> Error e
  | Ok (frame, consumed) ->
    if consumed <> String.length s then
      Error (Malformed_body (Printf.sprintf "%d trailing frame bytes" (String.length s - consumed)))
    else (
      match decode_body codec frame with
      | Ok m -> Ok (m, frame)
      | Error e -> Error e)

let frame_bytes f = header_bytes + String.length f.body

let words_of_bytes b = (b + 7) / 8

let frame_words f = words_of_bytes (frame_bytes f)

(* ---- stream reassembly --------------------------------------------- *)

module Reader = struct
  type t = {
    max_body : int;
    buf : Buffer.t;
    (* consumed prefix of [buf]; compacted once it outgrows the tail *)
    mutable off : int;
    (* cached [Buffer.contents buf]: [Buffer.contents] copies the whole
       buffered stream, so taking it per [next] call makes a drain loop
       O(n^2) in buffered bytes; refresh only after [feed] appends *)
    mutable snap : string;
    mutable snap_stale : bool;
    mutable poison : error option;
  }

  let create ?(max_body = default_max_body) () =
    { max_body; buf = Buffer.create 4096; off = 0; snap = ""; snap_stale = false; poison = None }

  let feed t s ~pos ~len =
    if not (Bca_util.Bounds.slice_ok ~pos ~len (String.length s)) then
      invalid_arg "Wire.Reader.feed: slice out of bounds";
    Buffer.add_substring t.buf s pos len;
    if len > 0 then t.snap_stale <- true

  let buffered t = Buffer.length t.buf - t.off

  let snapshot t =
    if t.snap_stale then begin
      t.snap <- Buffer.contents t.buf;
      t.snap_stale <- false
    end;
    t.snap

  let compact t =
    if t.off > 4096 && t.off * 2 > Buffer.length t.buf then begin
      let tail = Buffer.sub t.buf t.off (Buffer.length t.buf - t.off) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf tail;
      t.off <- 0;
      t.snap <- tail;
      t.snap_stale <- false
    end

  let next_view t =
    match t.poison with
    | Some e -> Error e
    | None -> (
      let s = snapshot t in
      match decode_frame_view ~max_body:t.max_body s ~pos:t.off with
      | Ok (view, consumed) ->
        t.off <- t.off + consumed;
        (* the view aliases the pre-compaction snapshot string, which is
           immutable: compacting only swaps [t.snap] for a fresh string *)
        compact t;
        Ok (Some view)
      | Error (Truncated _) -> Ok None
      | Error e ->
        t.poison <- Some e;
        Error e)

  let next t =
    match next_view t with
    | Error _ as e -> e
    | Ok None -> Ok None
    | Ok (Some v) -> Ok (Some (frame_of_view v))
end

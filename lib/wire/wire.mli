(** Versioned, length-prefixed binary wire format for protocol messages.

    Every message that crosses a process boundary travels as one {e frame}:

    {v
    offset  size  field
    0       2     magic 0xBC 0xA1
    2       1     version (currently 1)
    3       1     codec id (which stack's body encoding follows)
    4       2     sender pid, big-endian
    6       4     body length, big-endian
    10      4     CRC-32 (IEEE) of the body, big-endian
    14      len   body (codec-specific, see [Bca_core.Wirefmt])
    v}

    Decoding is strict: truncated input, a bad magic, an unknown version, an
    oversized length, a CRC mismatch, an unknown body tag or trailing body
    bytes all yield a typed {!error} - no decode path raises on arbitrary
    input bytes (fuzzed in [test/test_wire.ml]).  The format is
    self-delimiting, so frames can be concatenated on a byte stream and
    re-split by {!Reader} (the TCP / Unix-socket transports do exactly
    that).

    Word accounting: the paper's message-complexity tables count {e words}
    on the wire.  {!words_of_bytes} converts an on-wire byte count to
    64-bit words (rounding up), which is what the bench report uses for
    Table-1-style word complexity. *)

val version : int
(** Wire-format version emitted by {!encode} (1). *)

val header_bytes : int
(** Fixed frame-header size in bytes (14). *)

val default_max_body : int
(** Default body-size bound enforced by decoders (1 MiB): frames claiming a
    larger body are rejected as {!Oversized} before any allocation. *)

val max_sender : int
(** Largest encodable sender pid (0xFFFF). *)

(** {1 Body primitives}

    Little building blocks the per-stack codecs ([Bca_core.Wirefmt]) are
    written in.  [Put] appends to a [Buffer.t]; [Get] reads from a bounded
    cursor and raises {!Get.Malformed} on any violation - {!decode_body}
    turns that exception into a typed error, so codec code can be written
    straight-line. *)

module Put : sig
  val u8 : Buffer.t -> int -> unit
  val u16 : Buffer.t -> int -> unit
  val u32 : Buffer.t -> int -> unit
  val i64 : Buffer.t -> int64 -> unit

  val varint : Buffer.t -> int -> unit
  (** Unsigned LEB128; the argument must be non-negative. *)

  val string : Buffer.t -> string -> unit
  (** Varint length followed by the raw bytes. *)

  val value : Buffer.t -> Bca_util.Value.t -> unit
  (** One byte, 0 or 1. *)
end

module Get : sig
  type t
  (** A bounded read cursor over a string slice. *)

  exception Malformed of string
  (** Raised by every reader on truncation, range violations, or invalid
      encodings.  Confined to this module: the frame-level decoders catch
      it and return {!error}. *)

  val create : string -> pos:int -> len:int -> t

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64

  val varint : t -> int
  (** Unsigned LEB128, at most 9 bytes; rejects longer encodings and any
      value exceeding [max_int] (which would wrap negative in OCaml's
      63-bit int and defeat length guards downstream).  The result is
      always non-negative. *)

  val string : t -> string
  (** Varint length + bytes; the length must fit the remaining input. *)

  val value : t -> Bca_util.Value.t

  val remaining : t -> int

  val sub : t -> int -> t
  (** [sub t len] is a cursor over the next [len] bytes of [t], advancing
      [t] past them - no copy, both cursors alias the same string.  How the
      batch decoder ({!Batch.iter_view}) bounds each record's body without
      substring allocation. *)

  val take : t -> int -> string
  (** [take t len] copies the next [len] raw bytes and advances - the
      copying counterpart of {!sub}, for callers that keep the bytes. *)

  val expect_end : t -> unit
  (** Raises {!Malformed} unless the cursor consumed its whole slice -
      frames with trailing body bytes are rejected. *)
end

(** {1 Codecs and frames} *)

type 'm codec = {
  id : int;  (** codec id carried in byte 3 of every frame (0..255) *)
  name : string;  (** diagnostic label, e.g. ["byz-strong"] *)
  enc : Buffer.t -> 'm -> unit;  (** append the body encoding *)
  dec : Get.t -> 'm;  (** read one body; may raise {!Get.Malformed} *)
}
(** How one message type maps to frame bodies.  The per-stack instances
    live in [Bca_core.Wirefmt] (core owns the message types); this library
    only defines the contract and the framing around it. *)

type frame = {
  codec_id : int;
  sender : int;
  body : string;
}
(** A decoded frame: header fields plus the verbatim body bytes.  The body
    is decoded separately ({!decode_body}) so transports can route frames
    without knowing the message type. *)

type view = {
  v_codec_id : int;
  v_sender : int;
  v_src : string;  (** the buffer the frame was decoded from *)
  v_pos : int;  (** body offset in [v_src] *)
  v_len : int;  (** body length in bytes *)
}
(** A zero-copy frame: header fields plus the body's {e location} in the
    source buffer, instead of a substring copy.  Valid forever - [v_src] is
    an immutable string - so the hot receive path ({!Reader.next_view},
    [Bca_transport]) hands views around and decodes bodies in place with
    {!cursor_of_view}; {!frame_of_view} materializes a {!frame} when the
    copy is wanted. *)

type error =
  | Truncated of { need : int; have : int }
      (** fewer bytes than a complete header + body *)
  | Bad_magic
  | Unsupported_version of int
  | Oversized of { len : int; limit : int }
  | Bad_crc of { expected : int32; actual : int32 }
  | Wrong_codec of { expected : int; got : int }
      (** the frame's codec id is not the one this endpoint speaks *)
  | Malformed_body of string
      (** unknown tag, bad varint, trailing bytes, out-of-range field ... *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val crc32 : string -> pos:int -> len:int -> int32
(** CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of a slice. *)

val encode : 'm codec -> sender:int -> 'm -> string
(** One complete frame.  Raises [Invalid_argument] if [sender] is outside
    [0..max_sender] (an encoder bug, not an input condition). *)

val encode_buf : 'm codec -> sender:int -> scratch:Buffer.t -> 'm -> string
(** {!encode} staging the body in a caller-owned [scratch] buffer (cleared
    first) instead of allocating a fresh one per message - the pooled
    encode of the transport hot path.  Same bytes as {!encode}. *)

val encode_raw : codec_id:int -> sender:int -> string -> string
(** Frame an already-encoded body - used by tests to build adversarial
    frames with arbitrary contents, and by the batch path to frame an
    assembled batch body. *)

val decode_frame : ?max_body:int -> string -> pos:int -> (frame * int, error) result
(** Parse one frame starting at [pos]; on success also returns the number
    of bytes consumed, so consecutive frames can be peeled off a buffer.
    Never raises, whatever the input bytes. *)

val decode_frame_view : ?max_body:int -> string -> pos:int -> (view * int, error) result
(** {!decode_frame} without the body copy: header checks (magic, version,
    bound, CRC) are identical, but the body stays in place as a {!view}. *)

val view_body : view -> string
(** Copy the body bytes out of a view. *)

val frame_of_view : view -> frame

val view_of_frame : frame -> view
(** A view aliasing the frame's own body string (offset 0). *)

val view_bytes : view -> int
(** Total on-wire size of the viewed frame (header + body). *)

val cursor_of_view : view -> Get.t
(** A bounded read cursor over the body, in place. *)

val decode_body : 'm codec -> frame -> ('m, error) result
(** Decode a frame's body with [codec], checking the codec id first.
    Strict: trailing bytes are an error.  Never raises. *)

val decode_body_view : 'm codec -> view -> ('m, error) result
(** {!decode_body} straight off a view - no substring allocation. *)

val decode : 'm codec -> string -> ('m * frame, error) result
(** [decode_frame] + [decode_body] over a whole string: the string must
    contain exactly one frame. *)

val frame_bytes : frame -> int
(** Total on-wire size of the frame (header + body). *)

val words_of_bytes : int -> int
(** Bytes to 64-bit words, rounding up - the unit of the paper's
    message-complexity accounting. *)

val frame_words : frame -> int
(** [words_of_bytes (frame_bytes f)]. *)

(** {1 Stream reassembly} *)

module Reader : sig
  (** Incremental frame extraction from a byte stream.  Feed arbitrary
      chunks in; {!next} yields complete frames as they become available.
      A non-recoverable error (bad magic, bad CRC, oversized, unknown
      version) poisons the reader: framing on a corrupted stream cannot be
      trusted again, so the transport must drop the connection. *)

  type t

  val create : ?max_body:int -> unit -> t

  val feed : t -> string -> pos:int -> len:int -> unit

  val next : t -> (frame option, error) result
  (** [Ok None] = need more bytes; [Ok (Some f)] = one frame extracted;
      [Error _] = stream corrupt (sticky: every later call returns the same
      error). *)

  val next_view : t -> (view option, error) result
  (** {!next} without the body copy: the view aliases the reader's internal
      snapshot string, which is immutable and therefore stays valid across
      later [feed]/[next] calls (compaction swaps in a new string, it never
      mutates the old one).  The transport receive path uses this. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed as frames. *)
end

(** A free-list of reusable [Buffer.t]s for the wire hot path.

    Encoding a message allocates a staging buffer; at cluster throughput
    (thousands of batches a second) per-message [Buffer.create] churn is
    pure garbage-collector load.  A pool hands the same cleared buffers out
    over and over - [Buffer.clear] keeps the grown backing storage, so a
    steady-state workload stops allocating entirely.

    Not thread-safe (the transport engine is single-threaded by design).
    Buffers must go back to the pool they came from; releasing a buffer
    twice without re-acquiring it corrupts the free list - prefer
    {!with_buf} where scoping allows. *)

type t

type stats = {
  created : int;  (** buffers ever allocated (cache misses) *)
  acquired : int;  (** total acquisitions *)
  released : int;
  live : int;  (** currently checked out *)
  peak_live : int;  (** high-water mark of [live] - the pool's real size *)
}

val create : ?initial_capacity:int -> unit -> t
(** Fresh empty pool; buffers it allocates start at [initial_capacity]
    (default 4096) bytes. *)

val acquire : t -> Buffer.t
(** A cleared buffer: reused from the free list, or freshly allocated when
    the list is empty. *)

val release : t -> Buffer.t -> unit
(** Clear the buffer and return it to the free list. *)

val with_buf : t -> (Buffer.t -> 'a) -> 'a
(** [acquire]/[release] around a scope, exception-safe. *)

val stats : t -> stats

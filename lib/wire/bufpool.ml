type t = {
  p_initial_capacity : int;
  mutable p_free : Buffer.t list;
  mutable p_created : int;
  mutable p_acquired : int;
  mutable p_released : int;
  mutable p_live : int;
  mutable p_peak_live : int;
}

type stats = {
  created : int;
  acquired : int;
  released : int;
  live : int;
  peak_live : int;
}

let create ?(initial_capacity = 4096) () =
  if initial_capacity < 1 then invalid_arg "Bufpool.create: initial_capacity < 1";
  { p_initial_capacity = initial_capacity;
    p_free = [];
    p_created = 0;
    p_acquired = 0;
    p_released = 0;
    p_live = 0;
    p_peak_live = 0 }

let acquire t =
  t.p_acquired <- t.p_acquired + 1;
  t.p_live <- t.p_live + 1;
  if t.p_live > t.p_peak_live then t.p_peak_live <- t.p_live;
  match t.p_free with
  | b :: rest ->
    t.p_free <- rest;
    b
  | [] ->
    t.p_created <- t.p_created + 1;
    Buffer.create t.p_initial_capacity

let release t b =
  (* [Buffer.clear] keeps the grown backing storage, which is the point:
     a buffer that once held a large batch serves later batches without
     reallocating *)
  Buffer.clear b;
  t.p_released <- t.p_released + 1;
  t.p_live <- t.p_live - 1;
  t.p_free <- b :: t.p_free

let with_buf t f =
  let b = acquire t in
  Fun.protect ~finally:(fun () -> release t b) (fun () -> f b)

let stats t =
  { created = t.p_created;
    acquired = t.p_acquired;
    released = t.p_released;
    live = t.p_live;
    peak_live = t.p_peak_live }

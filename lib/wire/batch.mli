(** Batch frames: many protocol messages under one header and CRC.

    The multi-instance cluster executor runs B concurrent ABA instances per
    party over one socket pair.  Shipping each EST/AUX vote or coin share
    as its own frame costs a 14-byte header, a CRC pass and a write per
    message; a batch frame amortizes all three across every record that is
    ready when the flush policy fires ([Bca_transport.Batcher]).

    A batch is an ordinary version-1 {!Wire} frame whose codec id is
    {!codec_id} and whose body is:

    {v
    offset  size    field
    0       1       batch version (currently 1)
    1       1       inner codec id (the stack codec every record decodes with)
    2       varint  record count (>= 1; an empty batch is malformed)
    ...     repeat  record: varint instance id, varint body length, body bytes
    v}

    Decoding is strict, matching the rest of the wire layer: unknown batch
    version, a nested batch inner id, zero records, an inflated count, a
    record overrunning the body, or trailing bytes are all typed errors -
    and the whole frame still travels under the outer CRC, so corruption is
    caught before any record is touched.  {!iter_view} decodes records in
    place from a {!Wire.view} (no per-record substring). *)

val codec_id : int
(** The frame codec id marking a batch (0xB7, disjoint from the per-stack
    ids in [Bca_core.Wirefmt]). *)

val batch_version : int

(** {1 Building} *)

val add_record : Buffer.t -> instance:int -> string -> unit
(** Append one record (varint instance, varint length, bytes) to a record
    region under construction. *)

val add_record_buf : Buffer.t -> instance:int -> Buffer.t -> unit
(** {!add_record} from a staging buffer - the batcher's path: the message
    body never exists as a string. *)

val make_body_into : Buffer.t -> inner_codec_id:int -> count:int -> Buffer.t -> unit
(** Assemble a batch body (version, inner id, count, records) into [out]
    from a record region built with {!add_record}/{!add_record_buf}.
    Raises [Invalid_argument] on [count < 1] or an inner id that is out of
    range or {!codec_id} itself (builder bugs, not input conditions). *)

val make_body : inner_codec_id:int -> count:int -> Buffer.t -> string

val encode : inner_codec_id:int -> sender:int -> (int * string) list -> string
(** A complete batch frame from (instance, body) pairs - the convenience
    the tests and small callers use. *)

(** {1 Decoding} *)

val iter_view :
  Wire.view ->
  record:(instance:int -> Wire.Get.t -> unit) ->
  (int * int, Wire.error) result
(** Walk a batch frame in place.  [record] receives each instance id and a
    cursor bounded to exactly that record's body ({!Wire.Get.sub} - no
    copy); on success returns [(inner_codec_id, count)].  Any structural
    violation - including one raised as [Wire.Get.Malformed] by [record]
    itself - yields [Error (Malformed_body _)]; a non-batch codec id yields
    [Wrong_codec].  Callers that must not act on a partially-valid batch
    should collect during iteration and apply only after [Ok]. *)

type decoded = {
  sender : int;
  inner_codec_id : int;
  records : (int * string) list;
}

val decode : ?max_body:int -> string -> (decoded, Wire.error) result
(** Decode a whole string as exactly one batch frame, copying record bodies
    out - the test/tooling convenience; hot paths use {!iter_view}. *)

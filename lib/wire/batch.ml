let codec_id = 0xB7

let batch_version = 1

let add_record buf ~instance body =
  if instance < 0 then invalid_arg "Batch.add_record: negative instance";
  Wire.Put.varint buf instance;
  Wire.Put.varint buf (String.length body);
  Buffer.add_string buf body

let add_record_buf buf ~instance body =
  if instance < 0 then invalid_arg "Batch.add_record_buf: negative instance";
  Wire.Put.varint buf instance;
  Wire.Put.varint buf (Buffer.length body);
  Buffer.add_buffer buf body

let check_inner inner_codec_id =
  if not (Bca_util.Bounds.fits ~max:0xFF inner_codec_id) then
    invalid_arg "Batch: inner codec id out of range";
  if inner_codec_id = codec_id then invalid_arg "Batch: nested batch codec id"

let make_body_into out ~inner_codec_id ~count records =
  check_inner inner_codec_id;
  if count < 1 then invalid_arg "Batch.make_body_into: empty batch";
  Wire.Put.u8 out batch_version;
  Wire.Put.u8 out inner_codec_id;
  Wire.Put.varint out count;
  Buffer.add_buffer out records

let make_body ~inner_codec_id ~count records =
  let out = Buffer.create (4 + Buffer.length records) in
  make_body_into out ~inner_codec_id ~count records;
  Buffer.contents out

let encode ~inner_codec_id ~sender records =
  let rb = Buffer.create 64 in
  List.iter (fun (instance, body) -> add_record rb ~instance body) records;
  Wire.encode_raw ~codec_id ~sender (make_body ~inner_codec_id ~count:(List.length records) rb)

let iter_view (v : Wire.view) ~record =
  if v.Wire.v_codec_id <> codec_id then
    Error (Wire.Wrong_codec { expected = codec_id; got = v.Wire.v_codec_id })
  else
    let g = Wire.cursor_of_view v in
    match
      let ver = Wire.Get.u8 g in
      if ver <> batch_version then
        raise (Wire.Get.Malformed (Printf.sprintf "unsupported batch version %d" ver));
      let inner = Wire.Get.u8 g in
      if inner = codec_id then raise (Wire.Get.Malformed "nested batch");
      let count = Wire.Get.varint g in
      if count < 1 then raise (Wire.Get.Malformed "empty batch");
      (* every record costs at least two bytes (instance + length varints),
         so an inflated count is rejected up front instead of at the first
         truncated record *)
      if count > Wire.Get.remaining g / 2 + 1 then
        raise (Wire.Get.Malformed "record count exceeds body");
      for _ = 1 to count do
        let instance = Wire.Get.varint g in
        let len = Wire.Get.varint g in
        if len > Wire.Get.remaining g then
          raise (Wire.Get.Malformed "record length exceeds batch body");
        record ~instance (Wire.Get.sub g len)
      done;
      Wire.Get.expect_end g;
      (inner, count)
    with
    | r -> Ok r
    | exception Wire.Get.Malformed msg -> Error (Wire.Malformed_body msg)

type decoded = {
  sender : int;
  inner_codec_id : int;
  records : (int * string) list;
}

let decode ?max_body s =
  match Wire.decode_frame_view ?max_body s ~pos:0 with
  | Error _ as e -> e
  | Ok (v, consumed) ->
    if consumed <> String.length s then
      Error
        (Wire.Malformed_body (Printf.sprintf "%d trailing frame bytes" (String.length s - consumed)))
    else
      let acc = ref [] in
      (match
         iter_view v ~record:(fun ~instance g ->
             acc := (instance, Wire.Get.take g (Wire.Get.remaining g)) :: !acc)
       with
      | Error _ as e -> e
      | Ok (inner, _count) ->
        Ok { sender = v.Wire.v_sender; inner_codec_id = inner; records = List.rev !acc })

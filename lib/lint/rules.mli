(** The shipped rule catalog.

    - [determinism]: wall clocks, environment-seeded RNG, unordered
      [Hashtbl] iteration and [Marshal] are forbidden in replay-critical
      code ([lib/]; the loopback simulator and wire layer must replay
      bit-identically from a seed).
    - [poly-compare]: structural [=], [<>], [compare], [min], [max] on
      syntactically non-primitive operands (constructor applications,
      protocol constructors, tuples, records); [compare] itself is
      always flagged.  Tag-only comparisons ([= None], [= \[\]],
      booleans, unit, nullary polymorphic variants) are allowed.
    - [quorum]: raw threshold arithmetic ([t + 1], [2*t + 1], [n - t])
      outside [lib/util/quorum.ml], which owns the named helpers.
    - [total-decoding]: [failwith], [assert false], [List.hd],
      [List.tl], [Option.get] and [Obj.magic] in wire-decode files;
      decoders must fail through typed [Malformed] errors.
    - [wire-coverage]: structural cross-check that every constructor of
      every stack message type referenced by [wirefmt.ml] (the functor
      applications it binds, and their inner protocol modules) occurs
      both as an encode pattern and as a decode construction. *)

val determinism : Lint.rule

val poly_compare : Lint.rule

val quorum : Lint.rule

val total_decoding : Lint.rule

val wire_coverage : Lint.rule

val all : Lint.rule list
(** Every shipped rule, in reporting order. *)

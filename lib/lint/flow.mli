(** Interprocedural wire-taint analysis over parsed sources.

    Where the per-file rules in {!Rules} pattern-match single
    expressions, this engine builds a whole-program view: every
    function of the scanned tree becomes a node, per-function
    summaries record which parameters and returns carry wire-derived
    (attacker-controlled) data and which parameters reach dangerous
    sinks, and summaries are propagated through the call graph to a
    fixpoint.

    Taint is seeded at the decode surface - [Wire.Get.*] reads,
    [Wire.Reader.next*], [Wire.decode_body*], [Batch.decode],
    [Wal.load]/[Wal.decode], [Rsm.decode_batch], and codec [dec] /
    transport [recv_view] record-field calls - and each tainted value
    carries two evidence bits: a known lower bound and a known upper
    bound.  Comparisons in [if] / [when] / [assert] conditions and
    [Bounds.*] / [Quorum.*] predicates upgrade the bits; sinks demand
    them:

    - {b unbounded-alloc}: allocation sizes ([Bytes.create],
      [Array.make], [List.init], [String.sub] lengths, ...) need both
      bounds; [for]-loop bounds need an upper bound.
    - {b wire-taint}: index/offset positions ([Array.get],
      [String.sub] offsets, ...) need both bounds; [Hashtbl]
      growth keys need an upper bound (decoded-string keys exempt).

    Findings carry the full source -> call chain -> sink trace in
    {!Lint.finding.notes}. *)

val rule_names : string list
(** The rules this pass can emit: [["wire-taint"; "unbounded-alloc"]]. *)

val pass : string list * (Lint.source list -> Lint.finding list)
(** Bundled [(rule_names, analyze)], in the shape {!Lint.run} expects
    for its [?flow] argument. *)

val analyze : Lint.source list -> Lint.finding list
(** [build] + {!findings} in one step. *)

type program
(** A harvested call graph with per-function taint summaries at
    fixpoint. *)

val build : Lint.source list -> program
(** Harvest every function (top-level, nested modules, functor bodies,
    and expression-level [let]-bound functions) and iterate summary
    computation to a fixpoint. *)

val findings : program -> Lint.finding list
(** Report every sink reachable from a source without the required
    bounds evidence, deduplicated by site. *)

(** {2 Introspection} used by tests and tooling; names are matched by
    dotted-path suffix (e.g. ["Get.varint"] finds [Wire.Get.varint]). *)

val functions : program -> string list
(** Sorted dotted paths of every harvested function. *)

val callees : program -> string -> string list
(** Resolved callees of the named function (sorted, deduplicated). *)

val returns_taint : program -> string -> bool
(** Does the named function's return value carry source taint? *)

val summary_string : program -> string -> string
(** Render the named function's summary (return origins with evidence
    bits, parameter-dependent sinks) for tests and debugging. *)

val tainted_returns : program -> string list
(** Sorted names of every function whose return carries source
    taint. *)

type severity = Error | Warning

type profile = Strict | Standard | Relaxed

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  notes : string list;
}

type source = { path : string; profile : profile; ast : Parsetree.structure }

type rule = {
  name : string;
  doc : string;
  severity : severity;
  applies : path:string -> profile -> bool;
  check : source -> finding list;
}

type report = {
  findings : finding list;
  suppressed : int;
  suppression_comments : int;
  files_scanned : int;
  rules_run : string list;
}

(* ------------------------------------------------------------------ *)
(* Paths and profiles                                                   *)
(* ------------------------------------------------------------------ *)

let segments path =
  String.split_on_char '/' path
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun s -> not (String.equal s "") && not (String.equal s "."))

(* [lib] directly followed by one of the replay-critical directory names;
   matching on segment pairs keeps this correct for absolute paths,
   relative paths and the _build copies the tests scan. *)
let rec has_pair a b = function
  | x :: (y :: _ as rest) ->
    (String.equal x a && String.equal y b) || has_pair a b rest
  | _ -> false

let strict_dirs = [ "core"; "wire"; "netsim"; "transport" ]

let profile_of_path path =
  let segs = segments path in
  if List.exists (fun d -> has_pair "lib" d segs) strict_dirs then Strict
  else if List.exists (String.equal "lib") segs then Standard
  else Relaxed

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

let parse_file path =
  if not (Sys.file_exists path) then Stdlib.Error "no such file"
  else
    match Pparse.parse_implementation ~tool_name:"bca-lint" path with
    | ast -> Stdlib.Ok ast
    | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
        | _ -> Printexc.to_string exn
      in
      Stdlib.Error (String.map (function '\n' -> ' ' | c -> c) msg)

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                 *)
(* ------------------------------------------------------------------ *)

type suppression = {
  sup_kind : [ `Line of int | `File ];
  sup_rules : string list;
  sup_line : int;
  sup_col : int;
  mutable sup_used : bool;
}

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else go (i + 1)
  in
  go 0

(* Grammar - the marker is the exact comment opener, which keeps code or
   strings that merely mention the word from being parsed:
     open-comment lint: allow <rule>[,<rule>...] <reason>
     open-comment lint: allow-file <rule>[,<rule>...] <reason>
   The rule list is a single whitespace-delimited field (commas, no
   spaces); the rest of the line up to the comment closer is the
   mandatory reason. *)
(* built by concatenation so the scanner never matches its own definition *)
let marker = "(* " ^ "lint:"

let parse_suppression_line ~known ~path ~line text =
  match find_substring text marker with
  | None -> None
  | Some i ->
    let skip = i + String.length marker in
    let rest = String.sub text skip (String.length text - skip) in
    let rest = String.trim rest in
    let bad message =
      Some
        (Stdlib.Error
           { rule = "suppression";
             severity = Error;
             file = path;
             line;
             col = i;
             message;
             notes = [] })
    in
    let kind, rest =
      if String.length rest >= 10 && String.equal (String.sub rest 0 10) "allow-file" then
        (Some `File, String.sub rest 10 (String.length rest - 10))
      else if String.length rest >= 5 && String.equal (String.sub rest 0 5) "allow" then
        (Some (`Line line), String.sub rest 5 (String.length rest - 5))
      else (None, rest)
    in
    (match kind with
    | None -> bad "suppression comment is not of the form 'allow[-file] <rules> <reason>'"
    | Some sup_kind ->
      let rest = String.trim rest in
      let field, reason =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some j -> (String.sub rest 0 j, String.sub rest j (String.length rest - j))
      in
      let rules = String.split_on_char ',' field |> List.filter (fun s -> s <> "") in
      let reason =
        (* strip the comment closer and decorative dashes around the reason *)
        let r =
          match find_substring reason "*)" with
          | Some j -> String.sub reason 0 j
          | None -> reason
        in
        String.trim r
      in
      let has_letter s =
        String.exists (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) s
      in
      if rules = [] then bad "suppression names no rule"
      else (
        match List.find_opt (fun r -> not (List.mem r known)) rules with
        | Some unknown -> bad (Printf.sprintf "suppression names unknown rule %S" unknown)
        | None ->
          if not (has_letter reason) then
            bad
              (Printf.sprintf
                 "suppression of %s lacks a reason; write 'allow %s -- why'"
                 (String.concat "," rules) field)
          else
            Some
              (Stdlib.Ok
                 { sup_kind; sup_rules = rules; sup_line = line; sup_col = i; sup_used = false })))

let scan_suppressions ~known path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let sups = ref [] and bad = ref [] and line = ref 0 in
      (try
         while true do
           let text = input_line ic in
           incr line;
           match parse_suppression_line ~known ~path ~line:!line text with
           | None -> ()
           | Some (Stdlib.Ok s) -> sups := s :: !sups
           | Some (Stdlib.Error f) -> bad := f :: !bad
         done
       with End_of_file -> ());
      (List.rev !sups, List.rev !bad))

let suppresses sups (f : finding) =
  let hits =
    List.filter
      (fun s ->
        List.mem f.rule s.sup_rules
        &&
        match s.sup_kind with
        | `File -> true
        | `Line l -> l = f.line || l = f.line - 1)
      sups
  in
  List.iter (fun s -> s.sup_used <- true) hits;
  hits <> []

(* ------------------------------------------------------------------ *)
(* File collection                                                      *)
(* ------------------------------------------------------------------ *)

let rec collect_files path acc =
  if not (Sys.file_exists path) then
    Stdlib.Error (Printf.sprintf "%s: no such file or directory" path)
  else if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           match acc with
           | Stdlib.Error _ -> acc
           | Stdlib.Ok files ->
             if String.equal name "_build" || (String.length name > 0 && Char.equal name.[0] '.')
             then Stdlib.Ok files
             else (
               match collect_files (Filename.concat path name) (Stdlib.Ok []) with
               | Stdlib.Ok sub -> Stdlib.Ok (files @ sub)
               | Stdlib.Error e -> Stdlib.Error e))
         acc
  else if Filename.check_suffix path ".ml" then (
    match acc with Stdlib.Ok files -> Stdlib.Ok (files @ [ path ]) | e -> e)
  else acc

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let run ~rules ?flow ?only ~paths () =
  let flow_names = match flow with Some (names, _) -> names | None -> [] in
  (* vocabulary a suppression may name: every AST rule plus the flow
     rules (parseable even on runs without --flow, so annotated files
     stay lintable) and the engine-level rules *)
  let known =
    ("parse-error" :: "suppression" :: "stale-suppression" :: "wire-taint" :: "unbounded-alloc"
    :: List.map (fun r -> r.name) rules)
    |> List.sort_uniq String.compare
  in
  let rules =
    match only with
    | None -> rules
    | Some names ->
      List.iter
        (fun n ->
          if
            not
              (List.exists (fun r -> String.equal r.name n) rules
              || List.mem n flow_names
              || String.equal n "stale-suppression")
          then
            invalid_arg
              (Printf.sprintf "unknown rule %S (available: %s)" n
                 (String.concat ", "
                    (List.map (fun r -> r.name) rules @ flow_names @ [ "stale-suppression" ]))))
        names;
      List.filter (fun r -> List.mem r.name names) rules
  in
  let files =
    List.fold_left
      (fun acc p ->
        match acc with
        | Stdlib.Error _ -> acc
        | Stdlib.Ok fs -> collect_files p (Stdlib.Ok fs))
      (Stdlib.Ok []) paths
  in
  let files =
    match files with
    | Stdlib.Ok fs -> List.sort_uniq String.compare fs
    | Stdlib.Error e -> invalid_arg e
  in
  (* parse every file up front: the flow pass is whole-program *)
  let parsed =
    List.map
      (fun path ->
        let sups, bad_sups = scan_suppressions ~known path in
        (path, parse_file path, sups, bad_sups))
      files
  in
  let sources =
    List.filter_map
      (fun (path, p, _, _) ->
        match p with
        | Stdlib.Ok ast -> Some { path; profile = profile_of_path path; ast }
        | Stdlib.Error _ -> None)
      parsed
  in
  let flow_wanted n = match only with None -> true | Some o -> List.mem n o in
  let flow_findings, flow_run_names =
    match flow with
    | Some (names, pass) when List.exists flow_wanted names ->
      let fs = pass sources |> List.filter (fun f -> flow_wanted f.rule) in
      (fs, List.filter flow_wanted names)
    | _ -> ([], [])
  in
  (* rules whose silence is meaningful: a suppression naming only these
     and silencing nothing is itself dead weight *)
  let active = List.map (fun r -> r.name) rules @ flow_run_names in
  let all = ref [] in
  let suppressed = ref 0 in
  let suppression_comments = ref 0 in
  List.iter
    (fun (path, p, sups, bad_sups) ->
      suppression_comments := !suppression_comments + List.length sups;
      let raw =
        match p with
        | Stdlib.Error msg ->
          [ { rule = "parse-error";
              severity = Error;
              file = path;
              line = 1;
              col = 0;
              message = msg;
              notes = [] } ]
        | Stdlib.Ok ast ->
          let profile = profile_of_path path in
          let src = { path; profile; ast } in
          List.concat_map
            (fun r -> if r.applies ~path profile then r.check src else [])
            rules
      in
      let raw =
        raw @ List.filter (fun (f : finding) -> String.equal f.file path) flow_findings
      in
      let kept, silenced =
        List.partition
          (fun f ->
            String.equal f.rule "parse-error"
            || String.equal f.rule "suppression"
            || not (suppresses sups f))
          raw
      in
      suppressed := !suppressed + List.length silenced;
      let stale =
        match p with
        | Stdlib.Error _ -> []
        | Stdlib.Ok _ ->
          List.filter_map
            (fun s ->
              if (not s.sup_used) && List.for_all (fun r -> List.mem r active) s.sup_rules then
                Some
                  { rule = "stale-suppression";
                    severity = Error;
                    file = path;
                    line = s.sup_line;
                    col = s.sup_col;
                    message =
                      Printf.sprintf
                        "suppression of %s silences nothing on this %s; delete the allow comment"
                        (String.concat "," s.sup_rules)
                        (match s.sup_kind with `File -> "file" | `Line _ -> "line");
                    notes = [] }
              else None)
            sups
      in
      all := (bad_sups @ kept @ stale) @ !all)
    parsed;
  { findings = List.sort compare_findings !all;
    suppressed = !suppressed;
    suppression_comments = !suppression_comments;
    files_scanned = List.length files;
    rules_run = List.map (fun r -> r.name) rules @ flow_run_names @ [ "stale-suppression" ] }

let has_errors report =
  List.exists
    (fun (f : finding) -> match f.severity with Error -> true | Warning -> false)
    report.findings

(* ------------------------------------------------------------------ *)
(* Reporters                                                            *)
(* ------------------------------------------------------------------ *)

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let pp_text ppf report =
  List.iter
    (fun f ->
      Format.fprintf ppf "%a@." pp_finding f;
      List.iter (fun n -> Format.fprintf ppf "    %s@." n) f.notes)
    report.findings;
  Format.fprintf ppf "bca lint: %s%d finding%s (%d suppressed) in %d files; rules: %s@."
    (if report.findings = [] then "clean - " else "")
    (List.length report.findings)
    (if List.length report.findings = 1 then "" else "s")
    report.suppressed report.files_scanned
    (String.concat ", " report.rules_run)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"files_scanned\": %d,\n  \"suppressed\": %d,\n  \"suppression_comments\": %d,\n"
       report.files_scanned report.suppressed report.suppression_comments);
  Buffer.add_string buf
    (Printf.sprintf "  \"rules\": [%s],\n"
       (String.concat ", " (List.map (fun r -> Printf.sprintf "\"%s\"" r) report.rules_run)));
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      let trace =
        match f.notes with
        | [] -> ""
        | notes ->
          Printf.sprintf ", \"trace\": [%s]"
            (String.concat ", "
               (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n)) notes))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\"%s}"
           (json_escape f.file) f.line f.col (json_escape f.rule)
           (match f.severity with Error -> "error" | Warning -> "warning")
           (json_escape f.message) trace))
    report.findings;
  if report.findings <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

(** AST-level static analysis over the repository's [.ml] sources.

    The engine parses each file with the compiler's own front end
    (compiler-libs), hands the parsetree to a set of {!type-rule}s, and
    collects source-located {!type-finding}s.  Rules are scoped by a
    per-directory {!type-profile}: the replay-critical directories
    ([lib/core], [lib/wire], [lib/netsim], [lib/transport]) get the
    strictest checking, the rest of [lib/] the standard set, and
    everything else is relaxed.

    Deliberate exceptions are annotated in the source itself:

    {v (* lint: allow <rule>[,<rule>...] <reason> *) v}

    suppresses matching findings on the same line or the line directly
    below, and

    {v (* lint: allow-file <rule>[,<rule>...] <reason> *) v}

    suppresses a rule for the whole file.  The reason is mandatory; a
    suppression without one (or naming an unknown rule) is itself
    reported as a finding and cannot be suppressed. *)

type severity = Error | Warning

type profile =
  | Strict  (** replay-critical: lib/core, lib/wire, lib/netsim, lib/transport *)
  | Standard  (** the rest of lib/ *)
  | Relaxed  (** tests, binaries, examples *)

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
  notes : string list;
      (** supporting detail, one line each - flow findings carry the
          source -> call chain -> sink taint trace here *)
}

(** One parsed source file, as handed to each rule. *)
type source = {
  path : string;
  profile : profile;
  ast : Parsetree.structure;
}

type rule = {
  name : string;  (** kebab-case identifier used by [--rules] and suppressions *)
  doc : string;  (** one-line description for reports and documentation *)
  severity : severity;
  applies : path:string -> profile -> bool;
  check : source -> finding list;
}

type report = {
  findings : finding list;  (** unsuppressed, sorted by file/line/col/rule *)
  suppressed : int;  (** findings silenced by an allow comment *)
  suppression_comments : int;  (** allow/allow-file comments seen *)
  files_scanned : int;
  rules_run : string list;
}

val segments : string -> string list
(** Non-empty path components, with separators and [.] removed. *)

val has_pair : string -> string -> string list -> bool
(** [has_pair a b segs] is true when [a] is directly followed by [b]
    somewhere in [segs] - e.g. [lib] then [wire]. *)

val profile_of_path : string -> profile
(** Classify a path by its [lib/...] directory segments. *)

val parse_file : string -> (Parsetree.structure, string) result
(** Parse one [.ml] file with the compiler front end; the error case
    carries a printable reason (syntax error, unreadable file, ...). *)

val run :
  rules:rule list ->
  ?flow:string list * (source list -> finding list) ->
  ?only:string list ->
  paths:string list ->
  unit ->
  report
(** Lint every [.ml] file under [paths] (files or directories; [_build]
    and dot-directories are skipped) with the applicable subset of
    [rules].  [only] restricts to the named rules.

    [flow] is a whole-program pass (rule names it may emit, and the
    pass itself - in practice {!Flow.pass}): it receives every file
    that parsed and its findings go through the same suppression
    machinery as per-file rules.  The pass is a parameter rather than
    a direct call so [Lint] does not depend on [Flow].

    Every run also audits the suppressions themselves: an allow
    comment that silenced nothing, while every rule it names actually
    ran, is reported as a [stale-suppression] error (itself not
    suppressible - delete the comment instead).

    @raise Invalid_argument if [only] names an unknown rule. *)

val has_errors : report -> bool
(** True when any unsuppressed finding has severity {!Error}. *)

val pp_finding : Format.formatter -> finding -> unit

val pp_text : Format.formatter -> report -> unit
(** Human-readable report: one [file:line:col: [rule] message] per
    finding, then a one-line summary. *)

val to_json : report -> string
(** The report as a JSON object (findings, counts, rules). *)

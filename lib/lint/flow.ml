(* Interprocedural wire-taint analysis.

   Per-file AST rules (rules.ml) cannot see where a value came from;
   this module can.  It harvests every function of the scanned tree
   from the parsetrees, computes per-function taint summaries to a
   fixpoint (which parameters and returns carry wire-derived data, and
   which parameters reach an allocation / index / key / loop-bound
   sink), then reports every sink reachable from a decode source
   without passing a recognized bounds check.

   The lattice per tracked value is a set of origins; each origin is
   either a source (a [Wire.Get.*]-style decode, attacker-controlled)
   or a parameter of the enclosing function (resolved at call sites),
   and carries two evidence bits: [lb] ("a lower bound is known",
   normally non-negativity) and [ub] ("an upper bound is known").
   Allocation and index sinks demand both bits - PR 4's varint
   overflow slipped through an upper-bound-only guard, which is
   exactly the state (lb = false, ub = true) - while loop bounds and
   table keys demand only [ub].  Comparisons in [if]/[when]/[assert]
   conditions upgrade the bits of the idents they mention (against a
   |c| <= 1 constant: lower bound; against anything else: upper bound;
   [=]: both), and arguments of [Bounds.*] / [Quorum.*] /
   [Hashtbl.mem] predicates are treated as fully checked. *)

open Parsetree

let lid_str lid = String.concat "." (Longident.flatten lid)

let strip_stdlib s =
  if String.length s > 7 && String.equal (String.sub s 0 7) "Stdlib." then
    String.sub s 7 (String.length s - 7)
  else s

(* ------------------------------------------------------------------ *)
(* Taint values                                                         *)
(* ------------------------------------------------------------------ *)

type step = { st_what : string; st_file : string; st_line : int }

type origin = {
  o_param : int option;  (* Some i: taint of the enclosing function's parameter i *)
  o_src : string;  (* dotted source name; "" for bare parameter origins *)
  o_lb : bool;
  o_ub : bool;
  o_trace : step list;  (* source-to-here, in flow order *)
}

type sink_kind = Alloc | Index | Key | Loop

type psink = {
  k_param : int;
  k_kind : sink_kind;
  k_need_lb : bool;
  k_need_ub : bool;
  k_what : string;
  k_file : string;
  k_line : int;
  k_col : int;
  k_trace : step list;  (* entry-to-sink steps inside the callee, sink last *)
}

type summary = { s_ret : origin list; s_sinks : psink list }

type fn = {
  f_file : string;
  f_path : string list;  (* module path segments + function name *)
  f_params : (string * string) list;  (* label (or ""), binder name *)
  f_body : expression;
  mutable f_sum : summary;
  mutable f_callees : string list;
}

type program = {
  p_fns : fn array;
  p_by_path : (string, int list) Hashtbl.t;  (* dotted path -> indices *)
  p_by_name : (string, int list) Hashtbl.t;  (* last segment -> indices *)
}

let step ~what (loc : Location.t) =
  { st_what = what; st_file = loc.loc_start.pos_fname; st_line = loc.loc_start.pos_lnum }

let origin_key o =
  Printf.sprintf "%s/%s/%B/%B"
    (match o.o_param with Some i -> string_of_int i | None -> "-")
    o.o_src o.o_lb o.o_ub

(* Merge origins with the same carrier (param/source), OR-ing their
   evidence bits, and cap the set so pathological unions cannot blow
   up the fixpoint.  The merge is what keeps structure-coarse tracking
   usable: a record that packs validated offsets next to the raw byte
   string it indexes ([Wire.view]) unions both, and without the merge
   every field access would inherit the unchecked raw-bytes origin.
   The cost is deliberate: two values of the *same* source travelling
   in one structure share their strongest evidence. *)
let norm os =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let k =
        Printf.sprintf "%s/%s"
          (match o.o_param with Some i -> string_of_int i | None -> "-")
          o.o_src
      in
      match Hashtbl.find_opt tbl k with
      | None ->
        Hashtbl.replace tbl k o;
        order := k :: !order
      | Some prev ->
        Hashtbl.replace tbl k { prev with o_lb = prev.o_lb || o.o_lb; o_ub = prev.o_ub || o.o_ub })
    os;
  let merged = List.rev !order |> List.filter_map (Hashtbl.find_opt tbl) in
  let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
  take 16 merged

let union a b = norm (a @ b)

(* Side-level evidence: a clean side (no origins) counts as bounded. *)
let flags os =
  ( (match os with [] -> true | _ -> List.for_all (fun o -> o.o_lb) os),
    match os with [] -> true | _ -> List.for_all (fun o -> o.o_ub) os )

let with_flags (lb, ub) os = List.map (fun o -> { o with o_lb = lb; o_ub = ub }) os

(* ------------------------------------------------------------------ *)
(* Source / sink / sanitizer catalogs                                   *)
(* ------------------------------------------------------------------ *)

(* Suffix-matched against the (resolved when possible) dotted path of a
   call.  The bits are what the decoder itself guarantees about the
   value: fixed-width reads are bounded on both sides, [u32] cannot be
   negative, [i64] guarantees nothing.  [Get.varint] is deliberately
   absent: its body is analyzed, so only an implementation that
   re-checks for sign overflow earns its lower bound - the regression
   fixture that reintroduces the PR-4 bug is distinguished exactly
   there. *)
let sources =
  [ ([ "Get"; "u8" ], true, true);
    ([ "Get"; "u16" ], true, true);
    ([ "Get"; "u32" ], true, false);
    ([ "Get"; "i64" ], false, false);
    ([ "Get"; "value" ], true, true);
    ([ "Get"; "string" ], false, false);
    ([ "Get"; "take" ], false, false);
    ([ "Reader"; "next" ], false, false);
    ([ "Reader"; "next_view" ], false, false);
    ([ "Wire"; "decode_body" ], false, false);
    ([ "Wire"; "decode_body_view" ], false, false);
    ([ "Batch"; "decode" ], false, false);
    ([ "Wal"; "load" ], false, false);
    ([ "Wal"; "decode" ], false, false);
    ([ "Rsm"; "decode_batch" ], false, false) ]

(* Record-field calls that hand out wire data: codec [dec] closures and
   transport receive hooks. *)
let field_sources = [ "dec"; "recv_view"; "recv" ]

(* Sources whose value is a decoded *string* (or a structure of them):
   harmless as a table key, so the Key sink skips them - hash tables
   keyed by payload bytes (e.g. committed tx dedup) are legitimate. *)
let string_sources = [ "Get.string"; "Get.take"; "Rsm.decode_batch"; "Batch.decode" ]

let rec is_suffix suf l =
  let ls = List.length suf and ll = List.length l in
  if ls > ll then false
  else if ls = ll then List.for_all2 String.equal suf l
  else match l with [] -> false | _ :: tl -> is_suffix suf tl

let seed_of segs =
  List.find_map
    (fun (key, lb, ub) -> if is_suffix key segs then Some (String.concat "." key, lb, ub) else None)
    sources

(* name -> argument positions that size an allocation (need lb && ub) *)
let alloc_sinks =
  [ ("Bytes.create", [ 0 ]); ("Bytes.make", [ 0 ]); ("String.make", [ 0 ]);
    ("String.init", [ 0 ]); ("Array.make", [ 0 ]); ("Array.init", [ 0 ]);
    ("Array.create_float", [ 0 ]); ("List.init", [ 0 ]); ("Buffer.create", [ 0 ]);
    ("String.sub", [ 2 ]); ("Bytes.sub", [ 2 ]); ("Bytes.sub_string", [ 2 ]);
    ("Buffer.sub", [ 2 ]); ("Buffer.add_substring", [ 3 ]); ("Bytes.blit", [ 4 ]);
    ("String.blit", [ 4 ]); ("Bytes.blit_string", [ 4 ]) ]

(* name -> argument positions used as an index/offset (need lb && ub) *)
let index_sinks =
  [ ("String.sub", [ 1 ]); ("Bytes.sub", [ 1 ]); ("Bytes.sub_string", [ 1 ]);
    ("Buffer.sub", [ 1 ]); ("Buffer.add_substring", [ 2 ]); ("Array.get", [ 1 ]);
    ("Array.set", [ 1 ]); ("Bytes.get", [ 1 ]); ("Bytes.set", [ 1 ]);
    ("String.get", [ 1 ]); ("Array.unsafe_get", [ 1 ]); ("Bytes.blit", [ 1; 3 ]);
    ("String.blit", [ 1; 3 ]); ("Bytes.blit_string", [ 1; 3 ]); ("Buffer.truncate", [ 1 ]) ]

(* name -> key argument of an attacker-growable table (need ub) *)
let key_sinks = [ ("Hashtbl.add", [ 1 ]); ("Hashtbl.replace", [ 1 ]) ]

(* Results that are always in-range no matter the argument taint. *)
let clean_fns =
  [ "String.length"; "Bytes.length"; "Array.length"; "List.length"; "Buffer.length";
    "Queue.length"; "Hashtbl.length"; "String.index_opt"; "String.index_from_opt";
    "String.rindex_opt"; "String.index"; "String.rindex"; "Buffer.contents" ]

(* Taint flows through unchanged. *)
let transparent_fns =
  [ "Int64.to_int"; "Int64.of_int"; "Int32.to_int"; "Int32.of_int"; "Nativeint.to_int";
    "Char.code"; "Char.chr"; "fst"; "snd"; "ref"; "!"; "Lazy.force"; "Option.value";
    "Option.some"; "Option.join" ]

(* Parsing attacker bytes into an int: origins survive, bounds do not. *)
let reset_fns =
  [ "int_of_string"; "int_of_string_opt"; "Int64.of_string"; "Int64.of_string_opt";
    "Int32.of_string"; "Int32.of_string_opt" ]

(* Higher-order stdlib traversals: (callback position, container
   position, does the result carry the callback's result). *)
let hof_fns =
  [ ("List.iter", 0, 1, false); ("List.iteri", 0, 1, false); ("List.map", 0, 1, true);
    ("List.mapi", 0, 1, true); ("List.filter_map", 0, 1, true);
    ("List.concat_map", 0, 1, true); ("List.filter", 0, 1, false);
    ("List.exists", 0, 1, false); ("List.for_all", 0, 1, false);
    ("Array.iter", 0, 1, false); ("Array.iteri", 0, 1, false); ("Array.map", 0, 1, true);
    ("Option.iter", 0, 1, false); ("Option.map", 0, 1, true);
    ("List.fold_left", 0, 2, true) ]

let is_sanitizer_name s =
  let segs = String.split_on_char '.' s in
  List.exists (fun m -> String.equal m "Bounds" || String.equal m "Quorum") segs
  || String.equal s "Hashtbl.mem"

(* ------------------------------------------------------------------ *)
(* Harvesting functions from the parsetrees                             *)
(* ------------------------------------------------------------------ *)

type harvest = { mutable h_fns : fn list }

let binder_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let label_str = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled s | Asttypes.Optional s -> s

let rec strip_fn params e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
    let name = match binder_name pat with Some n -> n | None -> "_" in
    strip_fn (params @ [ (label_str lbl, name) ]) body
  | Pexp_newtype (_, body) -> strip_fn params body
  | Pexp_function _ -> (params @ [ ("", "*match*") ], e)
  | Pexp_constraint (body, _) -> strip_fn params body
  | _ -> (params, e)

let register h ~file path params body =
  h.h_fns <-
    { f_file = file; f_path = path; f_params = params; f_body = body;
      f_sum = { s_ret = []; s_sinks = [] }; f_callees = [] }
    :: h.h_fns

(* Only structure-level bindings become summarized program nodes.
   Expression-level [let]-bound functions are closures over the
   enclosing scope; the evaluator inlines them at their call sites so
   captured variables keep their taint (a standalone summary would see
   every free variable as clean). *)
let rec harvest_structure h ~file modpath items =
  List.iter (harvest_item h ~file modpath) items

and harvest_item h ~file modpath item =
  match item.pstr_desc with
  | Pstr_value (_, vbs) ->
    List.iter
      (fun vb ->
        match binder_name vb.pvb_pat with
        | Some name ->
          let params, body = strip_fn [] vb.pvb_expr in
          register h ~file (modpath @ [ name ]) params body
        | None -> ())
      vbs
  | Pstr_module mb -> harvest_module h ~file modpath mb
  | Pstr_recmodule mbs -> List.iter (harvest_module h ~file modpath) mbs
  | Pstr_include { pincl_mod = m; _ } -> harvest_modexpr h ~file modpath None m
  | _ -> ()

and harvest_module h ~file modpath mb =
  match mb.pmb_name.txt with
  | Some name -> harvest_modexpr h ~file modpath (Some name) mb.pmb_expr
  | None -> ()

and harvest_modexpr h ~file modpath name me =
  match me.pmod_desc with
  | Pmod_structure items ->
    let path = match name with Some n -> modpath @ [ n ] | None -> modpath in
    harvest_structure h ~file path items
  | Pmod_functor (_, body) -> harvest_modexpr h ~file modpath name body
  | Pmod_constraint (m, _) -> harvest_modexpr h ~file modpath name m
  | _ -> ()

let module_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ------------------------------------------------------------------ *)
(* Name resolution                                                      *)
(* ------------------------------------------------------------------ *)

let dotted = String.concat "."

let rec drop_last = function [] | [ _ ] -> [] | x :: tl -> x :: drop_last tl

let last_of l = List.nth l (List.length l - 1)

(* Exact path match, preferring a definition in the caller's own file
   (and the latest such definition, which models shadowing). *)
let lookup_exact prog ~file key =
  match Hashtbl.find_opt prog.p_by_path (dotted key) with
  | None | Some [] -> None
  | Some ids -> (
    let same = List.filter (fun i -> String.equal prog.p_fns.(i).f_file file) ids in
    match same with
    | [] -> ( match ids with [ i ] -> Some i | _ -> None)
    | l -> Some (last_of l))

let resolve prog (caller : fn) segs =
  match segs with
  | [] -> None
  | _ -> (
    let modpath = drop_last caller.f_path in
    let rec scopes pre =
      match lookup_exact prog ~file:caller.f_file (pre @ segs) with
      | Some i -> Some i
      | None -> ( match pre with [] -> None | _ -> scopes (drop_last pre))
    in
    match scopes modpath with
    | Some i -> Some i
    | None -> (
      (* global suffix match on the final segment *)
      match Hashtbl.find_opt prog.p_by_name (last_of segs) with
      | None -> None
      | Some ids -> (
        let cands =
          List.filter
            (fun i ->
              let p = prog.p_fns.(i).f_path in
              is_suffix segs p || is_suffix p segs)
            ids
        in
        let distinct = List.sort_uniq String.compare (List.map (fun i -> dotted prog.p_fns.(i).f_path) cands) in
        match (cands, distinct) with
        | [ i ], _ -> Some i
        | _, [ _ ] -> Some (last_of cands)
        | _ ->
          (* ambiguous: prefer a single same-file candidate, else give up *)
          let same = List.filter (fun i -> String.equal prog.p_fns.(i).f_file caller.f_file) cands in
          (match same with [ i ] -> Some i | _ -> None))))

(* ------------------------------------------------------------------ *)
(* The evaluator                                                        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  c_prog : program;
  c_fn : fn;
  c_env : (string, origin list) Hashtbl.t;
  c_locals : (string, (string * string) list * expression) Hashtbl.t;
      (* expression-level let-bound functions, inlined at call sites *)
  c_report : bool;
  mutable c_depth : int;  (* current inlining depth (recursion cap) *)
  mutable c_sinks : psink list;
  mutable c_finds : Lint.finding list;
  mutable c_callees : string list;
}

let kind_rule = function Alloc | Loop -> "unbounded-alloc" | Index | Key -> "wire-taint"

let missing_str ~lb ~ub =
  if lb && ub then "bounds checks"
  else if lb then "a lower-bound (non-negative) check"
  else "an upper-bound check"

let kind_verb = function
  | Alloc -> "sizes" | Index -> "indexes" | Key -> "keys" | Loop -> "bounds"

let add_finding ctx ~kind ~what ~file ~line ~col ~need_lb ~need_ub ~src trace =
  let message =
    Printf.sprintf "wire-derived value (from %s) %s %s without %s"
      (match src with "" -> "the wire" | s -> s)
      (kind_verb kind) what
      (missing_str ~lb:need_lb ~ub:need_ub)
  in
  let notes =
    List.map (fun st -> Printf.sprintf "%s at %s:%d" st.st_what st.st_file st.st_line) trace
  in
  ctx.c_finds <-
    { Lint.rule = kind_rule kind; severity = Lint.Error; file; line; col; message; notes }
    :: ctx.c_finds

let sink_pos (loc : Location.t) =
  (loc.loc_start.pos_fname, loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let check_sink ctx ~loc ~kind ~what os =
  let file, line, col = sink_pos loc in
  let sstep = step ~what:("sink " ^ what) loc in
  List.iter
    (fun o ->
      let need_lb = (match kind with Alloc | Index -> true | Key | Loop -> false) && not o.o_lb in
      let need_ub = not o.o_ub in
      let skip = match kind with Key -> List.mem o.o_src string_sources | _ -> false in
      if (need_lb || need_ub) && not skip then
        match o.o_param with
        | Some p ->
          ctx.c_sinks <-
            { k_param = p; k_kind = kind; k_need_lb = need_lb; k_need_ub = need_ub;
              k_what = what; k_file = file; k_line = line; k_col = col;
              k_trace = o.o_trace @ [ sstep ] }
            :: ctx.c_sinks
        | None ->
          if ctx.c_report then
            add_finding ctx ~kind ~what ~file ~line ~col ~need_lb ~need_ub ~src:o.o_src
              (o.o_trace @ [ sstep ]))
    os

(* Positional/labelled argument matching against the callee's params. *)
let match_args (params : (string * string) list) (avs : (Asttypes.arg_label * origin list) list) =
  let remaining = ref (List.mapi (fun i (lbl, _) -> (i, lbl)) params) in
  let out = ref [] in
  List.iter
    (fun (albl, os) ->
      match albl with
      | Asttypes.Labelled l | Asttypes.Optional l -> (
        match List.find_opt (fun (_, pl) -> String.equal pl l) !remaining with
        | Some (i, _) ->
          remaining := List.filter (fun (j, _) -> j <> i) !remaining;
          out := (i, os) :: !out
        | None -> ())
      | Asttypes.Nolabel -> (
        (* positional arguments skip labelled/optional parameters *)
        match List.find_opt (fun (_, pl) -> String.equal pl "") !remaining with
        | Some (i, _) ->
          remaining := List.filter (fun (j, _) -> j <> i) !remaining;
          out := (i, os) :: !out
        | None -> ()))
    avs;
  !out

let apply_summary ctx loc (callee : fn) (avs : (Asttypes.arg_label * origin list) list) =
  let name = dotted callee.f_path in
  ctx.c_callees <- name :: ctx.c_callees;
  let bound = match_args callee.f_params avs in
  let of_param p = match List.assoc_opt p bound with Some os -> os | None -> [] in
  let callstep = step ~what:("via " ^ name) loc in
  List.iter
    (fun k ->
      List.iter
        (fun o ->
          let need_lb = k.k_need_lb && not o.o_lb in
          let need_ub = k.k_need_ub && not o.o_ub in
          let skip = match k.k_kind with Key -> List.mem o.o_src string_sources | _ -> false in
          if (need_lb || need_ub) && not skip then
            match o.o_param with
            | Some p ->
              ctx.c_sinks <-
                { k with k_param = p; k_need_lb = need_lb; k_need_ub = need_ub;
                  k_trace = o.o_trace @ (callstep :: k.k_trace) }
                :: ctx.c_sinks
            | None ->
              if ctx.c_report then
                add_finding ctx ~kind:k.k_kind ~what:k.k_what ~file:k.k_file ~line:k.k_line
                  ~col:k.k_col ~need_lb ~need_ub ~src:o.o_src
                  (o.o_trace @ (callstep :: k.k_trace)))
        (of_param k.k_param))
    callee.f_sum.s_sinks;
  List.concat_map
    (fun r ->
      match r.o_param with
      | None -> [ { r with o_trace = r.o_trace @ [ callstep ] } ]
      | Some p ->
        List.map
          (fun o ->
            { o with o_lb = o.o_lb || r.o_lb; o_ub = o.o_ub || r.o_ub;
              o_trace = o.o_trace @ [ callstep ] })
          (of_param p))
    callee.f_sum.s_ret
  |> norm

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (q, { txt; _ }) -> txt :: pat_vars q
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, q)) -> pat_vars q
  | Ppat_variant (_, Some q) -> pat_vars q
  | Ppat_record (fields, _) -> List.concat_map (fun (_, q) -> pat_vars q) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_constraint (q, _) | Ppat_open (_, q) | Ppat_lazy q -> pat_vars q
  | _ -> []

let idents_of e =
  let out = ref [] in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it x ->
          (match x.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } -> out := n :: !out
          | _ -> ());
          Ast_iterator.default_iterator.expr it x) }
  in
  it.expr it e;
  !out

let rec is_zeroish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> (
    match int_of_string_opt s with Some v -> v >= -1 && v <= 1 | None -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "~-"; _ }; _ }, [ (_, x) ]) ->
    is_zeroish x
  | _ -> false

let is_int_literal e =
  match e.pexp_desc with Pexp_constant (Pconst_integer _) -> true | _ -> false

let refine_var ctx n ~lb ~ub =
  match Hashtbl.find_opt ctx.c_env n with
  | None -> ()
  | Some os ->
    Hashtbl.replace ctx.c_env n
      (List.map (fun o -> { o with o_lb = o.o_lb || lb; o_ub = o.o_ub || ub }) os)

(* Upgrade evidence bits from a boolean condition.  Path-insensitive on
   purpose: guards in this codebase either raise/return on the bad
   branch or select the safe value, so letting the evidence persist
   past the conditional matches how the guards are written. *)
let rec refine_cond ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    let op = strip_stdlib (lid_str txt) in
    match (op, args) with
    | ("&&" | "||"), [ (_, a); (_, b) ] ->
      refine_cond ctx a;
      refine_cond ctx b
    | "not", [ (_, a) ] -> refine_cond ctx a
    | ("<" | ">" | "<=" | ">=" | "="), [ (_, a); (_, b) ] ->
      let upgrade side other =
        let zero = is_zeroish other in
        let lb = String.equal op "=" || zero in
        let ub = String.equal op "=" || not zero in
        List.iter (fun n -> refine_var ctx n ~lb ~ub) (idents_of side)
      in
      upgrade a b;
      upgrade b a
    | _ ->
      if is_sanitizer_name op then
        List.iter (fun (_, a) -> List.iter (fun n -> refine_var ctx n ~lb:true ~ub:true) (idents_of a)) args)
  | _ -> ()

let bind_many ctx names os body =
  let saved = List.map (fun n -> (n, Hashtbl.find_opt ctx.c_env n)) names in
  List.iter (fun n -> if not (String.equal n "_") then Hashtbl.replace ctx.c_env n os) names;
  let r = body () in
  List.iter
    (fun (n, old) ->
      match old with
      | Some v -> Hashtbl.replace ctx.c_env n v
      | None -> Hashtbl.remove ctx.c_env n)
    saved;
  r

let is_local_fn vb =
  match binder_name vb.pvb_pat with
  | None -> false
  | Some _ ->
    let params, _ = strip_fn [] vb.pvb_expr in
    params <> []

let rec eval ctx e =
  let loc = e.pexp_loc in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> (
    match Hashtbl.find_opt ctx.c_env n with Some os -> os | None -> [])
  | Pexp_ident _ | Pexp_constant _ -> []
  | Pexp_apply (h, args) -> eval_apply ctx loc h args
  | Pexp_let (_, vbs, body) ->
    (* local functions are captured for call-site inlining; plain
       bindings are evaluated and tracked in the environment *)
    let fns, plain = List.partition is_local_fn vbs in
    let saved_locals =
      List.filter_map
        (fun vb ->
          match binder_name vb.pvb_pat with
          | None -> None
          | Some name ->
            let params, fbody = strip_fn [] vb.pvb_expr in
            let old = Hashtbl.find_opt ctx.c_locals name in
            Hashtbl.replace ctx.c_locals name (params, fbody);
            Some (name, old))
        fns
    in
    let binds = List.map (fun vb -> (pat_vars vb.pvb_pat, eval ctx vb.pvb_expr)) plain in
    let rec go = function
      | [] -> eval ctx body
      | (vars, os) :: rest -> bind_many ctx vars os (fun () -> go rest)
    in
    let r = go binds in
    List.iter
      (fun (name, old) ->
        match old with
        | Some v -> Hashtbl.replace ctx.c_locals name v
        | None -> Hashtbl.remove ctx.c_locals name)
      saved_locals;
    r
  | Pexp_fun (_, dflt, pat, body) ->
    (match dflt with Some d -> ignore (eval ctx d) | None -> ());
    bind_many ctx (pat_vars pat) [] (fun () -> ignore (eval ctx body));
    []
  | Pexp_function cases -> eval_cases ctx [] cases
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let os = eval ctx scrut in
    eval_cases ctx os cases
  | Pexp_ifthenelse (c, t, eo) ->
    ignore (eval ctx c);
    refine_cond ctx c;
    let a = eval ctx t in
    let b = match eo with Some x -> eval ctx x | None -> [] in
    union a b
  | Pexp_sequence (a, b) ->
    ignore (eval ctx a);
    eval ctx b
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> eval ctx a
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> []
  | Pexp_tuple es | Pexp_array es ->
    List.fold_left (fun acc x -> union acc (eval ctx x)) [] es
  | Pexp_record (fields, base) ->
    let acc = match base with Some b -> eval ctx b | None -> [] in
    List.fold_left (fun acc (_, x) -> union acc (eval ctx x)) acc fields
  | Pexp_field (b, _) -> eval ctx b
  | Pexp_setfield (b, _, v) ->
    ignore (eval ctx b);
    ignore (eval ctx v);
    []
  | Pexp_while (c, b) ->
    ignore (eval ctx c);
    refine_cond ctx c;
    ignore (eval ctx b);
    []
  | Pexp_for (pat, lo, hi, dir, body) ->
    let lo_os = eval ctx lo in
    let hi_os = eval ctx hi in
    let bound = match dir with Asttypes.Upto -> hi_os | Asttypes.Downto -> lo_os in
    check_sink ctx ~loc ~kind:Loop ~what:"a for-loop" bound;
    bind_many ctx (pat_vars pat) [] (fun () -> ignore (eval ctx body));
    []
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) -> eval ctx a
  | Pexp_assert a ->
    ignore (eval ctx a);
    refine_cond ctx a;
    []
  | Pexp_lazy a | Pexp_open (_, a) | Pexp_letmodule (_, _, a) | Pexp_letexception (_, a)
  | Pexp_newtype (_, a) ->
    eval ctx a
  | Pexp_letop { let_; ands; body; _ } ->
    ignore (eval ctx let_.pbop_exp);
    List.iter (fun a -> ignore (eval ctx a.pbop_exp)) ands;
    eval ctx body
  | _ -> []

and eval_cases ctx scrut cases =
  List.fold_left
    (fun acc c ->
      bind_many ctx (pat_vars c.pc_lhs) scrut (fun () ->
          (match c.pc_guard with
          | Some g ->
            ignore (eval ctx g);
            refine_cond ctx g
          | None -> ());
          union acc (eval ctx c.pc_rhs)))
    [] cases

and eval_apply ctx loc h args =
  match h.pexp_desc with
  | Pexp_ident { txt; _ } -> eval_call ctx loc (strip_stdlib (lid_str txt)) args
  | Pexp_apply (h2, args2) -> eval_apply ctx loc h2 (args2 @ args)
  | Pexp_field (b, { txt = flid; _ }) ->
    let _base = eval ctx b in
    List.iter (fun (_, a) -> ignore (eval ctx a)) args;
    let fname = Longident.last flid in
    if List.mem fname field_sources then
      [ { o_param = None; o_src = "." ^ fname; o_lb = false; o_ub = false;
          o_trace = [ step ~what:("source ." ^ fname) loc ] } ]
    else []
  | _ ->
    ignore (eval ctx h);
    List.iter (fun (_, a) -> ignore (eval ctx a)) args;
    []

and eval_pipe ctx loc f x =
  match f.pexp_desc with
  | Pexp_apply (h, fargs) -> eval_apply ctx loc h (fargs @ [ (Asttypes.Nolabel, x) ])
  | _ -> eval_apply ctx loc f [ (Asttypes.Nolabel, x) ]

and eval_call ctx loc name args =
  match (name, args) with
  | "|>", [ (_, x); (_, f) ] -> eval_pipe ctx loc f x
  | "@@", [ (_, f); (_, x) ] -> eval_pipe ctx loc f x
  | ":=", [ (_, r); (_, v) ] ->
    let vos = eval ctx v in
    (match r.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> (
      match Hashtbl.find_opt ctx.c_env n with
      | Some old -> Hashtbl.replace ctx.c_env n (union old vos)
      | None -> Hashtbl.replace ctx.c_env n vos)
    | _ -> ignore (eval ctx r));
    []
  | _ -> (
    let avs = List.map (fun (lbl, a) -> (lbl, a, eval ctx a)) args in
    let local =
      if String.contains name '.' then None else Hashtbl.find_opt ctx.c_locals name
    in
    match local with
    | Some lf -> inline_local ctx lf avs
    | None ->
    let arg i = match List.nth_opt avs i with Some (_, _, os) -> os | None -> [] in
    let arg_expr i = match List.nth_opt avs i with Some (_, a, _) -> Some a | None -> None in
    let a0 = arg 0 and a1 = arg 1 in
    let la, ua = flags a0 in
    let lb2, ub2 = flags a1 in
    let u2 = union a0 a1 in
    let run_sinks () =
      let check table kind =
        match List.assoc_opt name table with
        | None -> ()
        | Some idxs ->
          List.iter (fun i -> check_sink ctx ~loc ~kind ~what:name (arg i)) idxs
      in
      check alloc_sinks Alloc;
      check index_sinks Index;
      check key_sinks Key
    in
    match name with
    | "+" -> with_flags (la && lb2, ua && ub2) u2
    | "-" -> with_flags (false, ua && lb2) u2
    | "*" -> with_flags (la && lb2, false) u2
    | "/" -> with_flags (la && lb2, ua) u2
    | "mod" -> with_flags (la, ub2) u2
    | "land" ->
      if (match a0 with [] -> true | _ -> false) || (match a1 with [] -> true | _ -> false)
      then with_flags (true, true) u2
      else if la && lb2 then with_flags (true, ua || ub2) u2
      else with_flags (false, false) u2
    | "lor" | "lxor" -> with_flags (la && lb2, ua && ub2) u2
    | "lsl" ->
      (* a shift by a non-constant amount can push any value past the
         sign bit - the exact shape of the PR-4 varint overflow *)
      if match arg_expr 1 with Some e -> is_int_literal e | None -> false then
        with_flags (la, ua) u2
      else with_flags (false, false) u2
    | "lsr" -> with_flags (true, ua) a0
    | "asr" -> with_flags (la, ua) a0
    | "~-" -> with_flags (false, false) a0
    | "succ" -> with_flags (la, false) a0
    | "pred" -> with_flags (false, ua) a0
    | "abs" -> with_flags (true, ua) a0
    | "min" ->
      if match a0 with [] -> true | _ -> false then with_flags (lb2, true) a1
      else if match a1 with [] -> true | _ -> false then with_flags (la, true) a0
      else with_flags (la && lb2, ua || ub2) u2
    | "max" ->
      if match a0 with [] -> true | _ -> false then with_flags (true, ub2) a1
      else if match a1 with [] -> true | _ -> false then with_flags (true, ua) a0
      else with_flags (la || lb2, ua && ub2) u2
    | "=" | "<>" | "<" | ">" | "<=" | ">=" | "&&" | "||" | "not" | "==" | "!=" -> []
    | "^" | "@" -> u2
    | "ignore" | "raise" | "raise_notrace" -> []
    | _ ->
      if List.mem name clean_fns then []
      else if List.mem name transparent_fns then a0
      else if List.mem name reset_fns then with_flags (false, false) a0
      else if
        (match List.assoc_opt name index_sinks with Some _ -> true | None -> false)
        || (match List.assoc_opt name alloc_sinks with Some _ -> true | None -> false)
        || (match List.assoc_opt name key_sinks with Some _ -> true | None -> false)
      then (
        run_sinks ();
        match name with
        | "String.sub" | "Bytes.sub" | "Bytes.sub_string" -> a0
        | "String.get" | "Bytes.get" -> with_flags (true, true) a0
        | "Array.get" | "Array.unsafe_get" -> a0
        | _ -> [])
      else (
        match List.find_opt (fun (n, _, _, _) -> String.equal n name) hof_fns with
        | Some (_, fpos, cpos, carries) -> eval_hof ctx loc ~fpos ~cpos ~carries avs
        | None -> (
          let segs = String.split_on_char '.' name in
          match seed_of segs with
          | Some (src, lb, ub) ->
            [ { o_param = None; o_src = src; o_lb = lb; o_ub = ub;
                o_trace = [ step ~what:("source " ^ src) loc ] } ]
          | None -> (
            match resolve ctx.c_prog ctx.c_fn segs with
            | Some i -> (
              let callee = ctx.c_prog.p_fns.(i) in
              match seed_of callee.f_path with
              | Some (src, lb, ub) ->
                ctx.c_callees <- dotted callee.f_path :: ctx.c_callees;
                [ { o_param = None; o_src = src; o_lb = lb; o_ub = ub;
                    o_trace = [ step ~what:("source " ^ src) loc ] } ]
              | None ->
                apply_summary ctx loc callee (List.map (fun (l, _, os) -> (l, os)) avs))
            | None -> []))))

(* Inline an expression-level local function at its call site: the
   body is evaluated in the current environment, so variables the
   closure captured keep their taint.  [c_depth] caps recursion
   ([Get.varint]'s [go] loop converges within the cap because the
   evidence bits only ever strengthen). *)
and inline_local ctx (params, fbody) avs =
  if ctx.c_depth >= 5 then []
  else (
    ctx.c_depth <- ctx.c_depth + 1;
    let bound = match_args params (List.map (fun (l, _, os) -> (l, os)) avs) in
    let rec go i = function
      | [] -> (
        match fbody.pexp_desc with
        | Pexp_function cases ->
          let scrut =
            match List.assoc_opt (List.length params - 1) bound with
            | Some os -> os
            | None -> []
          in
          eval_cases ctx scrut cases
        | _ -> eval ctx fbody)
      | (_, n) :: rest ->
        let os = match List.assoc_opt i bound with Some os -> os | None -> [] in
        bind_many ctx [ n ] os (fun () -> go (i + 1) rest)
    in
    let r = go 0 params in
    ctx.c_depth <- ctx.c_depth - 1;
    r)

(* Higher-order stdlib traversal: evaluate the callback with its last
   parameter bound to the container's element taint. *)
and eval_hof ctx loc ~fpos ~cpos ~carries avs =
  let arg i = match List.nth_opt avs i with Some (_, _, os) -> os | None -> [] in
  let cont = arg cpos in
  let init = if carries && cpos = 2 then arg 1 else [] in
  let res =
    match List.nth_opt avs fpos with
    | Some (_, fe, _) -> (
      let params, body = strip_fn [] fe in
      match params with
      | [] -> (
        (* a named function: resolve and apply its summary *)
        match fe.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          let segs = String.split_on_char '.' (strip_stdlib (lid_str txt)) in
          match resolve ctx.c_prog ctx.c_fn segs with
          | Some i when (match seed_of ctx.c_prog.p_fns.(i).f_path with None -> true | Some _ -> false) ->
            apply_summary ctx loc ctx.c_prog.p_fns.(i) [ (Asttypes.Nolabel, cont) ]
          | _ -> [])
        | _ -> [])
      | _ -> (
        let names = List.map (fun (_, n) -> n) params in
        let lastn = last_of names in
        let others = List.filter (fun n -> not (String.equal n lastn)) names in
        bind_many ctx others [] (fun () ->
            bind_many ctx [ lastn ] cont (fun () ->
                match body.pexp_desc with
                | Pexp_function cases -> eval_cases ctx cont cases
                | _ -> eval ctx body))))
    | None -> []
  in
  if carries then union init res else []

(* ------------------------------------------------------------------ *)
(* Driver: fixpoint, then reporting                                     *)
(* ------------------------------------------------------------------ *)

let eval_fn prog fn ~report =
  let ctx =
    { c_prog = prog; c_fn = fn; c_env = Hashtbl.create 16; c_locals = Hashtbl.create 8;
      c_report = report; c_depth = 0; c_sinks = []; c_finds = []; c_callees = [] }
  in
  List.iteri
    (fun i (_, n) ->
      if not (String.equal n "_") then
        Hashtbl.replace ctx.c_env n
          [ { o_param = Some i; o_src = ""; o_lb = false; o_ub = false; o_trace = [] } ])
    fn.f_params;
  let ret =
    match fn.f_body.pexp_desc with
    | Pexp_function cases ->
      let scrut =
        match Hashtbl.find_opt ctx.c_env "*match*" with Some os -> os | None -> []
      in
      eval_cases ctx scrut cases
    | _ -> eval ctx fn.f_body
  in
  let sinks =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun k ->
        let key =
          Printf.sprintf "%d/%d/%B/%B/%s/%d/%d" k.k_param
            (match k.k_kind with Alloc -> 0 | Index -> 1 | Key -> 2 | Loop -> 3)
            k.k_need_lb k.k_need_ub k.k_file k.k_line k.k_col
        in
        if Hashtbl.mem seen key then false
        else (
          Hashtbl.replace seen key ();
          true))
      (List.rev ctx.c_sinks)
  in
  ({ s_ret = norm ret; s_sinks = sinks }, List.rev ctx.c_finds, List.sort_uniq String.compare ctx.c_callees)

let summary_sig s =
  let so o = origin_key o in
  let sk k =
    Printf.sprintf "%d|%d|%B|%B|%s|%d|%d" k.k_param
      (match k.k_kind with Alloc -> 0 | Index -> 1 | Key -> 2 | Loop -> 3)
      k.k_need_lb k.k_need_ub k.k_file k.k_line k.k_col
  in
  String.concat ";" (List.sort String.compare (List.map so s.s_ret))
  ^ "#"
  ^ String.concat ";" (List.sort String.compare (List.map sk s.s_sinks))

let build (srcs : Lint.source list) =
  let h = { h_fns = [] } in
  List.iter
    (fun (s : Lint.source) ->
      harvest_structure h ~file:s.Lint.path [ module_of_file s.Lint.path ] s.Lint.ast)
    srcs;
  let fns = Array.of_list (List.rev h.h_fns) in
  let by_path = Hashtbl.create 256 in
  let by_name = Hashtbl.create 256 in
  Array.iteri
    (fun i f ->
      let key = dotted f.f_path in
      let prev = match Hashtbl.find_opt by_path key with Some l -> l | None -> [] in
      Hashtbl.replace by_path key (prev @ [ i ]);
      let nkey = last_of f.f_path in
      let prev = match Hashtbl.find_opt by_name nkey with Some l -> l | None -> [] in
      Hashtbl.replace by_name nkey (prev @ [ i ]))
    fns;
  let prog = { p_fns = fns; p_by_path = by_path; p_by_name = by_name } in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass < 12 do
    changed := false;
    incr pass;
    Array.iter
      (fun fn ->
        let sum, _, callees = eval_fn prog fn ~report:false in
        if not (String.equal (summary_sig sum) (summary_sig fn.f_sum)) then changed := true;
        fn.f_sum <- sum;
        fn.f_callees <- callees)
      prog.p_fns
  done;
  prog

let findings prog =
  let out = ref [] in
  Array.iter
    (fun fn ->
      let _, finds, _ = eval_fn prog fn ~report:true in
      out := !out @ finds)
    prog.p_fns;
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (f : Lint.finding) ->
      let key = Printf.sprintf "%s|%s|%d|%d" f.Lint.rule f.Lint.file f.Lint.line f.Lint.col in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.replace seen key ();
        true))
    !out

let analyze srcs = findings (build srcs)

let rule_names = [ "wire-taint"; "unbounded-alloc" ]

let pass = (rule_names, analyze)

(* ------------------------------------------------------------------ *)
(* Introspection (tests, tooling)                                       *)
(* ------------------------------------------------------------------ *)

let functions prog =
  Array.to_list prog.p_fns |> List.map (fun f -> dotted f.f_path) |> List.sort_uniq String.compare

let find_fn prog name =
  let segs = String.split_on_char '.' name in
  let matches =
    Array.to_list prog.p_fns |> List.filter (fun f -> is_suffix segs f.f_path)
  in
  match matches with f :: _ -> Some f | [] -> None

let callees prog name =
  match find_fn prog name with Some f -> f.f_callees | None -> []

let returns_taint prog name =
  match find_fn prog name with
  | Some f ->
    List.exists (fun o -> match o.o_param with None -> true | Some _ -> false) f.f_sum.s_ret
  | None -> false

let summary_string prog name =
  match find_fn prog name with
  | None -> "<not found>"
  | Some f ->
    let so o =
      Printf.sprintf "%s(lb=%B,ub=%B)"
        (match o.o_param with Some i -> Printf.sprintf "param%d" i | None -> o.o_src)
        o.o_lb o.o_ub
    in
    let sk k =
      Printf.sprintf "param%d->%s@%s:%d(need_lb=%B,need_ub=%B)" k.k_param k.k_what
        (Filename.basename k.k_file) k.k_line k.k_need_lb k.k_need_ub
    in
    Printf.sprintf "ret=[%s] sinks=[%s]"
      (String.concat "; " (List.map so f.f_sum.s_ret))
      (String.concat "; " (List.map sk f.f_sum.s_sinks))

let tainted_returns prog =
  Array.to_list prog.p_fns
  |> List.filter (fun f ->
         List.exists (fun o -> match o.o_param with None -> true | Some _ -> false) f.f_sum.s_ret)
  |> List.map (fun f -> dotted f.f_path)
  |> List.sort_uniq String.compare

open Parsetree

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                       *)
(* ------------------------------------------------------------------ *)

let lid_str lid = String.concat "." (Longident.flatten lid)

let strip_stdlib s =
  if String.length s > 7 && String.equal (String.sub s 0 7) "Stdlib." then
    String.sub s 7 (String.length s - 7)
  else s

let finding ~rule ~severity ~(loc : Location.t) message =
  let p = loc.loc_start in
  { Lint.rule;
    severity;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    message;
    notes = [] }

(* Run [f] on every expression of the structure. *)
let iter_expressions ast f =
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e) }
  in
  it.structure it ast

let path_has_pair a b path = Lint.has_pair a b (Lint.segments path)

(* ------------------------------------------------------------------ *)
(* determinism                                                          *)
(* ------------------------------------------------------------------ *)

let det_banned =
  [ ("Hashtbl.iter", "Hashtbl iteration order is unspecified; iterate sorted keys (Det.iter_sorted) or keep an explicit list");
    ("Hashtbl.fold", "Hashtbl fold order is unspecified; fold over sorted bindings (Det.bindings) unless the operation is commutative");
    ("Sys.time", "CPU clock breaks bit-identical replay; use the executor's logical clock or a seeded Rng");
    ("Unix.time", "wall clock breaks bit-identical replay; use the executor's logical clock or a seeded Rng");
    ("Unix.gettimeofday", "wall clock breaks bit-identical replay; use the executor's logical clock or a seeded Rng")
  ]

let determinism_check src =
  let out = ref [] in
  iter_expressions src.Lint.ast (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
        let s = strip_stdlib (lid_str txt) in
        let hit =
          match List.assoc_opt s det_banned with
          | Some why -> Some (Printf.sprintf "%s: %s" s why)
          | None ->
            if String.length s >= 8 && String.equal (String.sub s 0 8) "Marshal." then
              Some (s ^ ": Marshal depends on in-memory sharing and the compiler version; use the wire codecs")
            else if
              String.length s >= 7
              && String.equal (String.sub s 0 7) "Random."
              && not (String.length s >= 13 && String.equal (String.sub s 0 13) "Random.State.")
            then
              Some (s ^ ": the global Random state is not replayable; use Bca_util.Rng (or Random.State with an explicit seed)")
            else None
        in
        (match hit with
        | Some msg ->
          out := finding ~rule:"determinism" ~severity:Lint.Error ~loc:e.pexp_loc msg :: !out
        | None -> ())
      | _ -> ());
  List.rev !out

let determinism =
  { Lint.name = "determinism";
    doc = "no wall clocks, global RNG, unordered Hashtbl iteration or Marshal in replay-critical code";
    severity = Lint.Error;
    applies = (fun ~path:_ profile -> match profile with Lint.Relaxed -> false | _ -> true);
    check = determinism_check }

(* ------------------------------------------------------------------ *)
(* poly-compare                                                         *)
(* ------------------------------------------------------------------ *)

(* Purely syntactic type discipline: an operand is "non-primitive" when
   the comparison must traverse structure to answer - a constructor
   application, a protocol constructor, a tuple, record or array
   literal.  Tag-only comparisons (None, [], booleans, unit, nullary
   polymorphic variants) never traverse payloads and stay allowed, which
   keeps the rule high-precision without type information. *)
let non_primitive e =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, arg) -> (
    let name = Longident.last txt in
    match (arg, name) with
    | None, ("true" | "false" | "()" | "None" | "[]") -> false
    | None, _ -> true
    | Some _, _ -> true)
  | Pexp_variant (_, Some _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | _ -> false

let poly_ops = [ "="; "<>"; "min"; "max" ]

let is_bare_compare e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.equal (strip_stdlib (lid_str txt)) "compare"
  | _ -> false

let poly_compare_check src =
  let out = ref [] in
  let add loc msg = out := finding ~rule:"poly-compare" ~severity:Lint.Error ~loc msg :: !out in
  iter_expressions src.Lint.ast (fun e ->
      match e.pexp_desc with
      | Pexp_ident _ when is_bare_compare e ->
        add e.pexp_loc
          "polymorphic compare; use a monomorphic comparator (Int.compare, String.compare, Value.compare, ...)"
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let op = strip_stdlib (lid_str txt) in
        if List.mem op poly_ops then (
          match List.find_opt (fun (_, a) -> non_primitive a) args with
          | Some (_, a) ->
            add a.pexp_loc
              (Printf.sprintf
                 "structural (%s) on a non-primitive operand; use a typed equality (Value.equal, Option.is_some, a match, ...)"
                 op)
          | None -> ())
      | _ -> ());
  List.rev !out

let poly_compare =
  { Lint.name = "poly-compare";
    doc = "no structural =, <>, compare, min, max on non-primitive protocol values";
    severity = Lint.Error;
    applies = (fun ~path:_ profile -> match profile with Lint.Relaxed -> false | _ -> true);
    check = poly_compare_check }

(* ------------------------------------------------------------------ *)
(* quorum                                                               *)
(* ------------------------------------------------------------------ *)

let is_t_leaf e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident ("t" | "tt" | "tf"); _ } -> true
  | Pexp_field (_, { txt; _ }) -> String.equal (Longident.last txt) "t"
  | _ -> false

let is_n_leaf e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident ("n" | "nn"); _ } -> true
  | Pexp_field (_, { txt; _ }) -> String.equal (Longident.last txt) "n"
  | _ -> false

let is_int_const e =
  match e.pexp_desc with Pexp_constant (Pconst_integer _) -> true | _ -> false

(* Does [e] mention a leaf satisfying [pred], descending only through
   arithmetic operators?  Stopping at any other node keeps e.g.
   [f (g t) + 1] out of scope. *)
let rec arith_mentions pred e =
  pred e
  ||
  match e.pexp_desc with
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("+" | "-" | "*" | "/"); _ }; _ }, args)
    ->
    List.exists (fun (_, a) -> arith_mentions pred a) args
  | _ -> false

let is_threshold_expr e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("+" | "-"); _ }; _ }, [ _; _ ])
    ->
    arith_mentions is_t_leaf e && (arith_mentions is_int_const e || arith_mentions is_n_leaf e)
  | _ -> false

let quorum_check src =
  let out = ref [] in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if is_threshold_expr e then
            (* flag the outermost threshold expression only: do not
               descend, so [(2*t) + 1] is one finding, not two *)
            out :=
              finding ~rule:"quorum" ~severity:Lint.Error ~loc:e.pexp_loc
                "raw quorum arithmetic; use Quorum.plurality (t+1), Quorum.supermajority (2t+1) or Quorum.available (n-t)"
              :: !out
          else Ast_iterator.default_iterator.expr it e) }
  in
  it.structure it src.Lint.ast;
  List.rev !out

let quorum =
  { Lint.name = "quorum";
    doc = "threshold arithmetic (t+1, 2t+1, n-t) lives in Bca_util.Quorum, nowhere else";
    severity = Lint.Error;
    applies =
      (fun ~path profile ->
        (match profile with Lint.Relaxed -> false | _ -> true)
        && not (path_has_pair "util" "quorum.ml" path));
    check = quorum_check }

(* ------------------------------------------------------------------ *)
(* total-decoding                                                       *)
(* ------------------------------------------------------------------ *)

let partial_banned =
  [ ("failwith", "raise a typed decode error (Get.Malformed) instead of a stringly failure");
    ("List.hd", "partial; match on the list or use a total accessor");
    ("List.tl", "partial; match on the list or use a total accessor");
    ("Option.get", "partial; match on the option");
    ("Obj.magic", "unchecked cast in a decode path")
  ]

let total_decoding_check src =
  let out = ref [] in
  let add loc msg = out := finding ~rule:"total-decoding" ~severity:Lint.Error ~loc msg :: !out in
  iter_expressions src.Lint.ast (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        let s = strip_stdlib (lid_str txt) in
        match List.assoc_opt s partial_banned with
        | Some why -> add e.pexp_loc (Printf.sprintf "%s: %s" s why)
        | None -> ())
      | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
        ->
        add e.pexp_loc "assert false aborts the process; raise a typed decode error instead"
      | _ -> ());
  List.rev !out

(* The batched hot path moved frame decoding into lib/transport (batch
   demux, in-place record decode), so the totality guarantee has to hold
   there too, not just in the codec layer.  lib/rsm decodes untrusted
   bytes twice over - its wire codecs and the in-proposal batch format
   ([Rsm.decode_batch]) - so the whole subsystem is in scope. *)
let in_wire_scope path =
  path_has_pair "lib" "wire" path
  || path_has_pair "lib" "transport" path
  || path_has_pair "lib" "rsm" path
  || String.equal (Filename.basename path) "wirefmt.ml"

let total_decoding =
  { Lint.name = "total-decoding";
    doc = "wire decode paths are total: no failwith, assert false, List.hd/tl, Option.get";
    severity = Lint.Error;
    applies = (fun ~path _ -> in_wire_scope path);
    check = total_decoding_check }

(* ------------------------------------------------------------------ *)
(* wire-coverage                                                        *)
(* ------------------------------------------------------------------ *)

(* Structural cross-check, driven entirely by the parsetrees:

   1. wirefmt.ml binds [module A = F.Make (Inner)] for every stack it
      encodes; harvest those bindings.
   2. The constructors of [A]'s message type are declared by the [type
      msg] variant inside [F]'s functor body (file [f.ml] next to
      wirefmt.ml); the constructors of the per-round protocol messages
      by the [type msg] variant of [inner.ml].
   3. Every such constructor, qualified exactly as the codecs must
      qualify it ([A.C] or [Inner.C]), has to occur in wirefmt.ml both
      in pattern position (the encoder matches on it) and in expression
      position (the decoder rebuilds it). *)

let first_msg_variant ast =
  let found = ref None in
  let it =
    { Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match (td.ptype_name.txt, td.ptype_kind) with
          | "msg", Ptype_variant cds when !found = None ->
            found := Some (List.map (fun cd -> cd.pcd_name.txt) cds)
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td) }
  in
  it.structure it ast;
  !found

(* (constructor, qualifier): [Bca_byz.MEcho] yields ("MEcho", Some "Bca_byz") *)
let constructor_occurrences ast =
  let pats = ref [] and exps = ref [] in
  let record store (lid : Longident.t) =
    let qual =
      match lid with Longident.Ldot (p, _) -> Some (Longident.last p) | _ -> None
    in
    store := (Longident.last lid, qual) :: !store
  in
  let it =
    { Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> record pats txt
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt; _ }, _) -> record exps txt
          | _ -> ());
          Ast_iterator.default_iterator.expr it e) }
  in
  it.structure it ast;
  (!pats, !exps)

let functor_bindings ast =
  let out = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          { pmb_name = { txt = Some alias; _ };
            pmb_expr =
              { pmod_desc =
                  Pmod_apply
                    ( { pmod_desc = Pmod_ident { txt = f; _ }; _ },
                      { pmod_desc = Pmod_ident { txt = Longident.Lident inner; _ }; _ } );
                _ };
            pmb_loc;
            _ }
        when String.equal (Longident.last f) "Make" -> (
        match f with
        | Longident.Ldot (p, _) -> out := (alias, Longident.last p, inner, pmb_loc) :: !out
        | _ -> ())
      | _ -> ())
    ast;
  List.rev !out

let wire_coverage_check src =
  let dir = Filename.dirname src.Lint.path in
  let out = ref [] in
  let add loc msg = out := finding ~rule:"wire-coverage" ~severity:Lint.Error ~loc msg :: !out in
  let pats, exps = constructor_occurrences src.Lint.ast in
  let occurs store ctor qual =
    List.exists
      (fun (c, q) ->
        String.equal c ctor && match q with Some q -> String.equal q qual | None -> false)
      store
  in
  let msg_ctors_of_module ~loc name =
    let file = Filename.concat dir (String.uncapitalize_ascii name ^ ".ml") in
    match Lint.parse_file file with
    | Stdlib.Error e ->
      add loc (Printf.sprintf "cannot read message declarations of %s (%s): %s" name file e);
      []
    | Stdlib.Ok ast -> (
      match first_msg_variant ast with
      | Some ctors -> ctors
      | None ->
        add loc (Printf.sprintf "%s declares no 'type msg' variant (looked in %s)" name file);
        [])
  in
  let check_ctor ~loc ~qual ctor =
    if not (occurs pats ctor qual) then
      add loc
        (Printf.sprintf "constructor %s.%s has no encode branch (never matched as a pattern)"
           qual ctor);
    if not (occurs exps ctor qual) then
      add loc
        (Printf.sprintf "constructor %s.%s has no decode branch (never constructed)" qual ctor)
  in
  let bindings = functor_bindings src.Lint.ast in
  if bindings = [] then
    add Location.none "wirefmt.ml binds no stack codec modules (module A = F.Make (Inner))";
  List.iter
    (fun (alias, functor_owner, inner, loc) ->
      List.iter (check_ctor ~loc ~qual:alias) (msg_ctors_of_module ~loc functor_owner);
      List.iter (check_ctor ~loc ~qual:inner) (msg_ctors_of_module ~loc inner))
    bindings;
  List.rev !out

let wire_coverage =
  { Lint.name = "wire-coverage";
    doc = "every stack message constructor has both an encode and a decode branch in wirefmt.ml";
    severity = Lint.Error;
    applies = (fun ~path _ -> String.equal (Filename.basename path) "wirefmt.ml");
    check = wire_coverage_check }

let all = [ determinism; poly_compare; quorum; total_decoding; wire_coverage ]

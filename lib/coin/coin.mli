(** Common-coin oracles (Definition 2.1: epsilon-good, d-unpredictable).

    The paper uses coins as a black box ("Building coins of various goodness
    has been studied in other works and is not the topic of this paper") and
    does not charge their messages against the broadcast counts (reveal-coin
    shares are piggybacked on protocol messages, cf. Lemma F.6 / G.15).  We
    model them the same way: an oracle shared by the parties and the
    adversary, with

    - {e goodness}: per round, with probability at least epsilon all parties
      receive 0 and with probability at least epsilon all receive 1;
      otherwise the adversary assigns each party's value;
    - {e d-unpredictability}: the adversary learns nothing about a round's
      coin until [d + 1] parties have accessed it ({!adversary_peek} returns
      [None] before that threshold).

    A 1/2-good coin is {e strong} (all parties always receive the same
    uniform bit).  The {e local} coin is each party flipping independently -
    the 2^-n-good coin of the Ben-Or comparison. *)

type kind =
  | Strong  (** 1/2-good: one uniform bit per round, common to all parties *)
  | Eps of float
      (** epsilon-good: good event with probability epsilon per side, else
          adversary-assigned values *)
  | Local  (** independent per-party flips (epsilon = 2^-n) *)

type outcome =
  | All_same of Bca_util.Value.t  (** every party receives this value *)
  | Adversarial  (** the adversary assigns per-party values *)

type t

val create : kind -> n:int -> degree:int -> seed:int64 -> t
(** [degree] is the unpredictability parameter [d]: the coin's round value
    becomes visible to the adversary only once [d + 1] distinct parties have
    accessed it. *)

val kind : t -> kind
val degree : t -> int

val epsilon : t -> n:int -> float
(** The goodness guarantee of this coin: 0.5 for [Strong], [e] for [Eps e],
    [2. ** -. n] for [Local]. *)

val access : t -> round:int -> pid:int -> Bca_util.Value.t
(** The round-[round] coin value as seen by party [pid] (the paper's
    [CommonCoin()] / [WeakCoin()]).  Records the access for the
    unpredictability bookkeeping. *)

val accesses : t -> round:int -> int
(** Number of distinct parties that have accessed round [round]. *)

val set_observer : t -> (round:int -> pid:int -> Bca_util.Value.t -> unit) -> unit
(** Install a reveal observer: called once per (round, party) pair, at the
    moment of that party's {e first} access to the round's coin, with the
    value it saw.  Observability hook (coin-reveal trace events); it sees
    exactly the accesses {!accesses} counts. *)

val adversary_peek : t -> round:int -> outcome option
(** What a (legitimate) adaptive adversary can currently see of round
    [round]: [None] before [degree + 1] parties accessed the round's coin.
    For an [Adversarial] round the adversary trivially knows the values (it
    chooses them), so the outcome is visible immediately. *)

val set_adversary_choice : t -> (round:int -> pid:int -> Bca_util.Value.t) -> unit
(** Install the per-party assignment the adversary uses in [Adversarial]
    rounds of an [Eps] coin.  Defaults to a pseudorandom assignment. *)

val unsafe_outcome : t -> round:int -> outcome
(** Ground-truth outcome regardless of unpredictability - for test oracles
    and metrics only; a legitimate adversary must use {!adversary_peek}. *)

val value_for : t -> round:int -> pid:int -> Bca_util.Value.t
(** Ground truth value without recording an access - test oracles only. *)

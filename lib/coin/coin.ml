module Value = Bca_util.Value
module Rng = Bca_util.Rng

type kind = Strong | Eps of float | Local

type outcome = All_same of Value.t | Adversarial

type round_state = {
  outcome : outcome;
  per_party : Value.t array;  (* meaningful for Adversarial / Local rounds *)
  accessed : bool array;
  mutable naccessed : int;
}

type t = {
  kind : kind;
  n : int;
  degree : int;
  seed : int64;
  rounds : (int, round_state) Hashtbl.t;
  mutable adversary_choice : (round:int -> pid:int -> Value.t) option;
  mutable observer : (round:int -> pid:int -> Value.t -> unit) option;
}

let create kind ~n ~degree ~seed =
  (match kind with
  | Eps e when not (e > 0.0 && e <= 0.5) -> invalid_arg "Coin.create: Eps out of (0, 1/2]"
  | _ -> ());
  { kind;
    n;
    degree;
    seed;
    rounds = Hashtbl.create 16;
    adversary_choice = None;
    observer = None }

let kind t = t.kind

let degree t = t.degree

let epsilon t ~n =
  match t.kind with
  | Strong -> 0.5
  | Eps e -> e
  | Local -> 2.0 ** float_of_int (-n)

(* A fresh generator for round [r], independent across rounds. *)
let round_rng t r =
  let mixed = Int64.add t.seed (Int64.mul (Int64.of_int (r + 1)) 0x2545F4914F6CDD1DL) in
  Rng.create mixed

let default_assignment t r pid =
  let rng = round_rng t (r * 1_000_003 + pid + 17) in
  Value.of_bool (Rng.bool rng)

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some st -> st
  | None ->
    let rng = round_rng t r in
    let st =
      match t.kind with
      | Strong ->
        let v = Value.of_bool (Rng.bool rng) in
        { outcome = All_same v;
          per_party = Array.make t.n v;
          accessed = Array.make t.n false;
          naccessed = 0 }
      | Eps e ->
        let u = Rng.float rng in
        if u < e then
          { outcome = All_same Value.V0;
            per_party = Array.make t.n Value.V0;
            accessed = Array.make t.n false;
            naccessed = 0 }
        else if u < 2.0 *. e then
          { outcome = All_same Value.V1;
            per_party = Array.make t.n Value.V1;
            accessed = Array.make t.n false;
            naccessed = 0 }
        else
          let assign =
            match t.adversary_choice with
            | Some f -> fun pid -> f ~round:r ~pid
            | None -> fun pid -> default_assignment t r pid
          in
          { outcome = Adversarial;
            per_party = Array.init t.n assign;
            accessed = Array.make t.n false;
            naccessed = 0 }
      | Local ->
        let per_party = Array.init t.n (fun _ -> Value.of_bool (Rng.bool rng)) in
        let outcome =
          let v = per_party.(0) in
          if Array.for_all (Value.equal v) per_party then All_same v else Adversarial
        in
        { outcome; per_party; accessed = Array.make t.n false; naccessed = 0 }
    in
    Hashtbl.replace t.rounds r st;
    st

let access t ~round ~pid =
  let st = round_state t round in
  if not st.accessed.(pid) then begin
    st.accessed.(pid) <- true;
    st.naccessed <- st.naccessed + 1;
    match t.observer with Some f -> f ~round ~pid st.per_party.(pid) | None -> ()
  end;
  st.per_party.(pid)

let set_observer t f = t.observer <- Some f

let accesses t ~round =
  match Hashtbl.find_opt t.rounds round with None -> 0 | Some st -> st.naccessed

let adversary_peek t ~round =
  match Hashtbl.find_opt t.rounds round with
  | None -> None
  | Some st ->
    (match st.outcome with
    | Adversarial ->
      (* The adversary assigned these values itself; no secret to protect.
         For the Local coin, a flip is revealed the moment its owner accesses
         it, but the joint outcome is only knowable once everyone flipped; we
         conservatively reveal the outcome label immediately (it only
         strengthens the adversaries we measure against). *)
      Some st.outcome
    | All_same _ -> if st.naccessed >= t.degree + 1 then Some st.outcome else None)

let set_adversary_choice t f =
  t.adversary_choice <- Some f

let unsafe_outcome t ~round = (round_state t round).outcome

let value_for t ~round ~pid = (round_state t round).per_party.(pid)

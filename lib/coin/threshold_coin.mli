(** A message-based strong common coin in the Cachin-Kursawe-Shoup style
    ([8], "Random oracles in Constantinople"), built on the repository's
    threshold-signature scheme.

    The paper treats coins as black-box oracles ({!Coin}); this module
    grounds that abstraction in the construction the paper cites for the
    authenticated setting: the round-[r] coin is derived from a unique
    [k]-of-[n] threshold signature on the round tag, so

    - {e unpredictability of degree k-1}: no one - the adversary included -
      can evaluate the coin before [k] parties have contributed shares,
      because fewer than [k] shares yield no signature;
    - {e strength} (1/2-goodness): the combined signature is unique and its
      low bit is an unbiasable pseudorandom function of the round;
    - {e commonness}: every party that combines obtains the same signature,
      hence the same bit.

    Parties exchange {!share} values (in a real deployment these ride on
    existing protocol messages, which is why the paper's broadcast counts
    exclude them - see Lemma F.6); {!combine} yields the round's bit once
    [k] distinct shares are in hand.  [test/test_coin_threshold.ml] checks
    that the derived bits agree with an equivalent {!Coin} oracle contract:
    common to all parties, fair, and unrevealable below the threshold. *)

type t
(** Per-party handle: this party's signing key plus the public setup. *)

type share
(** One party's coin share for some round. *)

val setup : n:int -> k:int -> seed:int64 -> t array
(** Trusted-dealer setup: [k] shares reveal a round's coin ([k = d + 1] for
    a [d]-unpredictable coin).  Returns one handle per party. *)

val share : t -> round:int -> share
(** This party's share for round [round]. *)

val share_pid : share -> int

val share_to_threshold : share -> Bca_crypto.Threshold.share
(** A coin share {e is} a threshold-signature share on the round tag;
    this exposes it for the binary wire codec ([Bca_core.Wirefmt]). *)

val share_of_threshold : Bca_crypto.Threshold.share -> share
(** Rebuild a coin share from deserialized (untrusted) bytes.  Not
    validated here: {!validate} / {!Collector.add} reject tampering, same
    as for shares that arrived by memory. *)

val validate : t -> round:int -> share -> bool
(** Whether the share is a genuine round-[round] coin share of its claimed
    sender. *)

val combine : t -> round:int -> share list -> Bca_util.Value.t option
(** [Some bit] once the list holds [k] valid shares from distinct parties;
    the bit is identical for every combiner. *)

(** Stateful per-round share collection, for embedding in protocols. *)
module Collector : sig
  type coin = t

  type t

  val create : coin -> t

  val add : t -> round:int -> share -> unit
  (** Validates and records; invalid or duplicate shares are ignored. *)

  val value : t -> round:int -> Bca_util.Value.t option
  (** The round's coin, once enough shares arrived. *)
end

module Value = Bca_util.Value
module Threshold = Bca_crypto.Threshold

type t = { setup : Threshold.t; key : Threshold.key; me : int; k : int }

type share = Threshold.share

let round_tag round = Printf.sprintf "coin/r%d" round

let setup ~n ~k ~seed =
  let setup, keys = Threshold.setup ~n ~seed in
  Array.init n (fun me -> { setup; key = keys.(me); me; k })

let share t ~round = Threshold.sign t.key ~tag:(round_tag round)

let share_pid = Threshold.share_signer

let share_to_threshold s = s

let share_of_threshold s = s

let validate t ~round s = Threshold.share_validate t.setup ~tag:(round_tag round) s

(* The coin bit is the low bit of the unique combined signature.  Uniqueness
   makes it common (every combiner gets the same certificate) and
   threshold-ness makes it (k-1)-unpredictable: short of k shares the
   certificate - and hence the bit - is uncomputable. *)
let combine t ~round shares =
  match Threshold.combine t.setup ~k:t.k ~tag:(round_tag round) shares with
  | None -> None
  | Some sigma -> Some (Value.of_bool (Int64.logand (Threshold.fingerprint sigma) 1L = 1L))

module Collector = struct
  type coin = t

  type nonrec t = {
    coin : coin;
    rounds : (int, Threshold.share list ref) Hashtbl.t;
  }

  let create coin = { coin; rounds = Hashtbl.create 8 }

  let shares t round =
    match Hashtbl.find_opt t.rounds round with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.rounds round r;
      r

  let add t ~round s =
    if validate t.coin ~round s then begin
      let r = shares t round in
      if not (List.exists (fun s' -> share_pid s' = share_pid s) !r) then r := s :: !r
    end

  let value t ~round = combine t.coin ~round !(shares t round)
end

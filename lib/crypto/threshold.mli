(** Simulated k-of-n dual-threshold signature scheme (Appendix F interface).

    The paper assumes a computational threshold scheme (Shoup-style RSA or
    BLS) with a DKG/dealer setup.  No cryptographic library is available in
    this sealed environment, so we substitute a scheme whose unforgeability
    is enforced {e by construction} rather than by computational hardness:

    - each party receives a private {!key} capability at setup; producing a
      share for party [i] requires [i]'s key, which the simulation hands only
      to the node (or Byzantine behaviour) playing party [i];
    - shares carry a MAC keyed by the party's secret, so a forged or
      corrupted share fails {!share_validate};
    - a combined signature can only be minted by {!combine}, which checks
      [k] distinct valid shares - exactly the condition
      [threshold-combine] requires in Appendix F.

    A Byzantine party keeps every power a computationally bounded adversary
    has: it can sign anything with its own key, withhold, replay, and route
    shares and signatures selectively.  It only loses the power to forge,
    which the computational scheme denies it too, so every protocol
    behaviour of Algorithm 7 / Appendix G.2 is preserved.  The MAC itself is
    a 64-bit SplitMix-based keyed hash - collision-resistant enough for
    simulation, and {e not} a security claim.

    Tags: a message to be threshold-signed is identified by a string tag,
    e.g. ["echo/<instance>/<value>"].  The same setup serves both thresholds
    the paper uses ([k = t+1] and [k = 2t+1]); [k] is a parameter of
    {!combine}/{!verify} and is baked into the resulting signature. *)

type t
(** Public handle: validate shares, combine, verify.  Cannot sign. *)

type key
(** Party [i]'s private signing capability. *)

type share
(** A signature share: [threshold-sign_i(m)] of Appendix F. *)

type signature
(** A combined threshold signature. *)

val setup : n:int -> seed:int64 -> t * key array
(** Trusted-dealer setup for [n] parties.  The caller distributes [keys.(i)]
    to the code playing party [i] and nothing else. *)

val n : t -> int

val sign : key -> tag:string -> share
(** [threshold-sign_i(tag)]. Deterministic per (key, tag). *)

val share_signer : share -> int
(** The party index embedded in the share. *)

val share_validate : t -> tag:string -> share -> bool
(** [share-validate(m, s_j, pk_j)]: true iff the share is a genuine signature
    share by [share_signer share] on [tag]. *)

val combine : t -> k:int -> tag:string -> share list -> signature option
(** [threshold-combine(m, S)]: [Some sigma] iff the list contains valid
    shares on [tag] from at least [k] distinct signers. *)

val verify : t -> tag:string -> signature -> bool
(** [threshold-verify(m, sigma)]: true iff [sigma] was produced by a
    [combine] over [>= k] valid shares on [tag], where [k] is the threshold
    [sigma] was combined under. *)

val threshold_of : signature -> int
(** The [k] a signature was combined under. *)

val fingerprint : signature -> int64
(** A deterministic 64-bit condensation of the signature, equal for every
    combiner and uncomputable without [k] shares - the randomness source of
    the Cachin-Kursawe-Shoup threshold coin ([Bca_coin.Threshold_coin]). *)

val pp_share : Format.formatter -> share -> unit
val pp_signature : Format.formatter -> signature -> unit

(** {2 Wire representation}

    Field-level access for the binary codec ([Bca_core.Wirefmt]).  The
    [unsafe_of_repr] constructors rebuild values from untrusted network
    bytes {e without} validating them - exactly what a real deployment
    does when it deserializes a signature it has not yet checked.  Nothing
    is lost: a tampered share still fails {!share_validate} and a forged
    signature still fails {!verify}, so unforgeability-by-construction is
    preserved (the MAC/certificate cannot be computed without the secrets,
    whether the value arrived by memory or by wire). *)

val share_repr : share -> int * string * int64
(** [(signer, tag, mac)]. *)

val share_unsafe_of_repr : signer:int -> tag:string -> mac:int64 -> share

val signature_repr : signature -> string * int * int64
(** [(tag, k, cert)]. *)

val signature_unsafe_of_repr : tag:string -> k:int -> cert:int64 -> signature

module Rng = Bca_util.Rng

(* 64-bit keyed hash: fold the tag bytes through a SplitMix64 stream seeded
   by the key.  Tamper-evident for simulation purposes; not cryptography. *)
let keyed_hash (secret : int64) (tag : string) : int64 =
  let acc = ref secret in
  String.iter
    (fun c ->
      let rng = Rng.create (Int64.add !acc (Int64.of_int (Char.code c + 131))) in
      acc := Rng.int64 rng)
    tag;
  let rng = Rng.create (Int64.add !acc (Int64.of_int (String.length tag))) in
  Rng.int64 rng

type t = { n : int; secrets : int64 array; dealer_secret : int64 }

type key = { me : int; secret : int64 }

type share = { signer : int; tag : string; mac : int64 }

type signature = { s_tag : string; s_k : int; cert : int64 }

let setup ~n ~seed =
  let rng = Rng.create seed in
  let secrets = Array.init n (fun _ -> Rng.int64 rng) in
  let dealer_secret = Rng.int64 rng in
  let t = { n; secrets; dealer_secret } in
  let keys = Array.init n (fun me -> { me; secret = secrets.(me) }) in
  (t, keys)

let n t = t.n

let sign key ~tag = { signer = key.me; tag; mac = keyed_hash key.secret tag }

let share_signer share = share.signer

let share_validate t ~tag share =
  share.signer >= 0 && share.signer < t.n && String.equal share.tag tag
  && Int64.equal share.mac (keyed_hash t.secrets.(share.signer) tag)

let cert_for t ~k ~tag = keyed_hash t.dealer_secret (Printf.sprintf "%d|%s" k tag)

let combine t ~k ~tag shares =
  let valid = List.filter (share_validate t ~tag) shares in
  let signers = List.sort_uniq Int.compare (List.map share_signer valid) in
  if List.length signers >= k then Some { s_tag = tag; s_k = k; cert = cert_for t ~k ~tag }
  else None

let verify t ~tag signature =
  String.equal signature.s_tag tag
  && Int64.equal signature.cert (cert_for t ~k:signature.s_k ~tag)

let threshold_of signature = signature.s_k

let fingerprint signature = signature.cert

let share_repr s = (s.signer, s.tag, s.mac)

let share_unsafe_of_repr ~signer ~tag ~mac = { signer; tag; mac }

let signature_repr s = (s.s_tag, s.s_k, s.cert)

let signature_unsafe_of_repr ~tag ~k ~cert = { s_tag = tag; s_k = k; cert }

let pp_share ppf s = Format.fprintf ppf "share(%d, %s)" s.signer s.tag

let pp_signature ppf s = Format.fprintf ppf "tsig(%d-of-n, %s)" s.s_k s.s_tag

module Value = Bca_util.Value
module Coin = Bca_coin.Coin
module Types = Bca_core.Types
module Bracha = Bca_baselines.Bracha
module Aba_slot = Bca_core.Aa_strong.Make (Bca_core.Bca_byz)

type payload = string

type msg = Rbc of int * payload Bracha.msg | Aba of int * Aba_slot.msg

let pp_msg ppf = function
  | Rbc (j, m) -> Format.fprintf ppf "rbc%d:%a" j (Bracha.pp_msg Format.pp_print_string) m
  | Aba (j, m) -> Format.fprintf ppf "aba%d:%a" j Aba_slot.pp_msg m

type params = { cfg : Types.cfg; coin_seed : int64 }

type slot = {
  rbc : payload Bracha.t;
  mutable aba : Aba_slot.t option;  (* started once the input is known *)
  mutable buffered : (Types.pid * Aba_slot.msg) list;  (* reverse order *)
}

type t = {
  p : params;
  me : Types.pid;
  slots : slot array;
  mutable zero_filled : bool;  (* inputs 0 sent to the remaining slots *)
  mutable terminated : bool;
}

let wrap j msgs = List.map (fun m -> Aba (j, m)) msgs

let slot_coin t j =
  Coin.create Coin.Strong ~n:t.p.cfg.Types.n ~degree:t.p.cfg.Types.t
    ~seed:(Int64.add t.p.coin_seed (Int64.of_int (31 * j)))

let aba_params t j =
  { Aba_slot.cfg = t.p.cfg;
    mode = `Byz;
    coin = slot_coin t j;
    bca_params = (fun ~round:_ -> t.p.cfg) }

(* Start ABA_j with [input], replaying any buffered traffic. *)
let start_aba t j input =
  let slot = t.slots.(j) in
  match slot.aba with
  | Some _ -> []
  | None ->
    let aba, init = Aba_slot.create (aba_params t j) ~me:t.me ~input in
    slot.aba <- Some aba;
    let replayed =
      List.concat_map
        (fun (from, m) -> Aba_slot.handle aba ~from m)
        (List.rev slot.buffered)
    in
    slot.buffered <- [];
    wrap j (init @ replayed)

let decided_one t =
  Array.fold_left
    (fun acc slot ->
      match slot.aba with
      | Some aba when (match Aba_slot.committed aba with Some v -> Value.to_bool v | None -> false) -> acc + 1
      | Some _ | None -> acc)
    0 t.slots

(* The ACS input rules: 1 on RBC delivery, 0 for the rest once n - t slots
   have decided 1. *)
let progress t =
  let out = ref [] in
  Array.iteri
    (fun j slot ->
      if slot.aba = None && Bracha.delivered slot.rbc <> None then
        out := !out @ start_aba t j Value.V1)
    t.slots;
  if (not t.zero_filled) && decided_one t >= Types.quorum t.p.cfg then begin
    t.zero_filled <- true;
    Array.iteri
      (fun j slot -> if slot.aba = None then out := !out @ start_aba t j Value.V0)
      t.slots
  end;
  !out

let create p ~me ~proposal =
  Types.check_byz_resilience p.cfg;
  let t =
    { p;
      me;
      slots =
        Array.init p.cfg.Types.n (fun j ->
            { rbc = Bracha.create p.cfg ~me ~sender:j; aba = None; buffered = [] });
      zero_filled = false;
      terminated = false }
  in
  let init =
    List.map (fun m -> Rbc (me, m)) (Bracha.broadcast t.slots.(me).rbc proposal)
  in
  (t, init)

let output t =
  let all_committed =
    Array.for_all
      (fun slot -> match slot.aba with Some aba -> Aba_slot.committed aba <> None | None -> false)
      t.slots
  in
  if not all_committed then None
  else begin
    let accepted = ref [] in
    let missing = ref false in
    Array.iteri
      (fun j slot ->
        match slot.aba with
        | Some aba when (match Aba_slot.committed aba with Some v -> Value.to_bool v | None -> false) ->
          (match Bracha.delivered slot.rbc with
          | Some payload -> accepted := (j, payload) :: !accepted
          | None -> missing := true)
        | Some _ | None -> ())
      t.slots;
    if !missing then None else Some (List.sort (fun (a, _) (b, _) -> Int.compare a b) !accepted)
  end

let all_slots_terminated t =
  Array.for_all
    (fun slot -> match slot.aba with Some aba -> Aba_slot.terminated aba | None -> false)
    t.slots

(* The slot index [j] arrives on the wire: a faulty peer can name any
   slot, so it is validated before any array access and the message
   dropped when out of range. *)
let slot_of t j =
  if Bca_util.Bounds.index_ok ~len:(Array.length t.slots) j then Some t.slots.(j) else None

let handle t ~from msg =
  if t.terminated then []
  else begin
    let out =
      match msg with
      | Rbc (j, m) -> (
        match slot_of t j with
        | Some slot -> List.map (fun m -> Rbc (j, m)) (Bracha.handle slot.rbc ~from m)
        | None -> [])
      | Aba (j, m) -> (
        match slot_of t j with
        | None -> []
        | Some slot -> (
          match slot.aba with
          | Some aba -> wrap j (Aba_slot.handle aba ~from m)
          | None ->
            slot.buffered <- (from, m) :: slot.buffered;
            []))
    in
    let out = out @ progress t in
    if output t <> None && all_slots_terminated t then t.terminated <- true;
    out
  end

let terminated t = t.terminated

let node t =
  Bca_netsim.Node.make
    ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
    ~terminated:(fun () -> t.terminated)
    ()

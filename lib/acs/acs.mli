(** Asynchronous Common Subset in the HoneyBadger style, built on the
    paper's ABA.

    This is the workload Section 1.2 motivates: HoneyBadger, BEAT and
    DUMBO-MVBA all consume one binary agreement instance per proposer and
    would inherit this paper's adaptive security and round complexity.

    Construction ([n >= 3t + 1]):

    + each party reliably broadcasts its proposal (one [Bca_baselines.Bracha]
      instance per proposer);
    + party [i] inputs 1 to ABA_j as soon as RBC_j delivers, and 0 to every
      not-yet-started ABA once [n - t] ABAs have decided 1;
    + the output is the set of proposals whose ABA decided 1 - guaranteed to
      contain at least [n - t] slots, to be common to all honest parties,
      and to be deliverable (an accepted slot's RBC eventually delivers
      everywhere).

    Each ABA slot runs AA-1/2 over BCA-Byz with its own strong coin.
    Messages for a slot whose local input is not yet known are buffered and
    replayed - an extra network delay, which asynchrony permits. *)

module Types = Bca_core.Types
module Aba_slot : module type of Bca_core.Aa_strong.Make (Bca_core.Bca_byz)

type payload = string

type msg =
  | Rbc of int * payload Bca_baselines.Bracha.msg  (** proposer slot *)
  | Aba of int * Aba_slot.msg

val pp_msg : Format.formatter -> msg -> unit

type params = {
  cfg : Types.cfg;
  coin_seed : int64;  (** seeds the per-slot strong coins *)
}

type t

val create : params -> me:Types.pid -> proposal:payload -> t * msg list
val handle : t -> from:Types.pid -> msg -> msg list

val output : t -> (int * payload) list option
(** [Some slots] once the common subset is decided and all accepted
    payloads are delivered: the accepted (proposer, payload) pairs, sorted
    by proposer.  Guaranteed identical at every honest party. *)

val terminated : t -> bool

val node : t -> msg Bca_netsim.Node.t

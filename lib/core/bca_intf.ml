(** Module signatures for (Graded) Binding Crusader Agreement protocols.

    Every protocol is a message-driven state machine:

    - [create] builds a party's instance state before its input is known, so
      that messages from faster parties can be processed immediately (all
      "upon" clauses except the initial send depend only on received
      messages, never on the party's own input);
    - [start] feeds the input and returns the initial broadcasts;
    - [handle] delivers one message and returns broadcasts to send;
    - [decision] is the instance's output, monotone: once [Some], it never
      changes.

    All honest communication is broadcast ("send to all", including to
    self), which is why [handle] returns plain messages rather than
    addressed envelopes; the agreement layer and the simulator fan them
    out. *)

module type BCA = sig
  type params
  (** Per-instance construction parameters (configuration; for the threshold
      variant also the signature setup, key and instance tag). *)

  type msg

  val pp_msg : Format.formatter -> msg -> unit

  type t

  val create : params -> me:Types.pid -> t
  (** A party's state for one instance, not yet started. *)

  val start : t -> input:Bca_util.Value.t -> msg list
  (** Provide the party's input; returns the initial broadcasts.  Must be
      called exactly once. *)

  val handle : t -> from:Types.pid -> msg -> msg list
  (** Deliver one message from party [from]; returns broadcasts. Safe to call
      before [start] and after a decision. *)

  val decision : t -> Types.cvalue option
  (** The crusader decision, once reached. *)

  val phase : t -> string
  (** The furthest protocol phase this instance has completed, as a short
      protocol-specific label (["init"], ["echo"], ["echo2"], ..,
      ["decide"]).  Monotone along each protocol's phase ladder; used by the
      observability probes to label quorum events. *)

  val max_broadcast_steps : int
  (** The protocol's worst-case communication rounds per instance, as stated
      by its theorem (e.g. 2 for Algorithm 3, 4 for Algorithm 4). Used by
      documentation and round-accounting sanity checks. *)
end

module type GBCA = sig
  type params

  type msg

  val pp_msg : Format.formatter -> msg -> unit

  type t

  val create : params -> me:Types.pid -> t

  val start : t -> input:Bca_util.Value.t -> msg list

  val handle : t -> from:Types.pid -> msg -> msg list

  val decision : t -> Types.gdecision option
  (** The graded decision (Definition 3.2), once reached. *)

  val phase : t -> string
  (** Furthest completed phase label; see {!BCA.phase}. *)

  val max_broadcast_steps : int
end

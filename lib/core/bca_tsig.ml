module Value = Bca_util.Value
module Threshold = Bca_crypto.Threshold
module Quorum = Bca_util.Quorum

type msg =
  | MEcho of Value.t * Threshold.share
  | MEcho2 of Value.t * Threshold.signature
  | MEcho3 of Types.cvalue * Threshold.signature list * Threshold.share option

let pp_msg ppf = function
  | MEcho (v, _) -> Format.fprintf ppf "echo(%a, share)" Value.pp v
  | MEcho2 (v, _) -> Format.fprintf ppf "echo2(%a, cert)" Value.pp v
  | MEcho3 (cv, _, _) -> Format.fprintf ppf "echo3(%a, proofs)" Types.pp_cvalue cv

type params = {
  cfg : Types.cfg;
  setup : Threshold.t;
  key : Threshold.key;
  id : string;
}

let echo_tag ~id v = Printf.sprintf "echo/%s/%s" id (Value.to_string v)

let echo3_tag ~id v = Printf.sprintf "echo3/%s/%s" id (Value.to_string v)

type t = {
  p : params;
  (* first valid message per sender, as the pseudocode's pending sets *)
  mutable pending_echo : (Types.pid * Value.t * Threshold.share) list;
  mutable pending_echo2 : (Types.pid * Value.t * Threshold.signature) list;
  mutable pending_echo3 : (Types.pid * Types.cvalue * Threshold.share option) list;
  mutable sent_echo2 : bool;
  mutable echo3_sent : Types.cvalue option;
  mutable decision : Types.cvalue option;
  mutable echo3_cert : (Value.t * Threshold.signature) option;
}

let max_broadcast_steps = 3

let create p ~me:_ =
  Types.check_byz_resilience p.cfg;
  { p;
    pending_echo = [];
    pending_echo2 = [];
    pending_echo3 = [];
    sent_echo2 = false;
    echo3_sent = None;
    decision = None;
    echo3_cert = None }

let start t ~input =
  let share = Threshold.sign t.p.key ~tag:(echo_tag ~id:t.p.id input) in
  [ MEcho (input, share) ]

(* Valid sigma_echo certificate for value v: threshold t+1 on the echo tag. *)
let valid_echo_cert t v sigma =
  Threshold.verify t.p.setup ~tag:(echo_tag ~id:t.p.id v) sigma
  && Threshold.threshold_of sigma = Quorum.plurality ~t:t.p.cfg.Types.t

let progress t =
  let q = Types.quorum t.p.cfg in
  let tt = t.p.cfg.Types.t in
  let out = ref [] in
  (* Lines 6-9: combine t+1 echo shares for a single value into sigma_echo
     and vote with echo2. *)
  if not t.sent_echo2 then begin
    let candidate =
      List.find_opt
        (fun v ->
          List.length (List.filter (fun (_, v', _) -> Value.equal v v') t.pending_echo)
          >= Quorum.plurality ~t:tt)
        Value.both
    in
    match candidate with
    | Some v ->
      let shares =
        List.filter_map
          (fun (_, v', s) -> if Value.equal v v' then Some s else None)
          t.pending_echo
      in
      (match Threshold.combine t.p.setup ~k:(Quorum.plurality ~t:tt) ~tag:(echo_tag ~id:t.p.id v) shares with
      | Some sigma ->
        t.sent_echo2 <- true;
        out := !out @ [ MEcho2 (v, sigma) ]
      | None -> ())
    | None -> ()
  end;
  (* Lines 14-19: aggregate n-t echo2 votes into an echo3 message. *)
  if t.echo3_sent = None && List.length t.pending_echo2 >= q then begin
    let values =
      List.sort_uniq Value.compare (List.map (fun (_, v, _) -> v) t.pending_echo2)
    in
    match values with
    | [ v ] ->
      let _, _, sigma =
        List.find (fun (_, v', _) -> Value.equal v v') t.pending_echo2
      in
      let share = Threshold.sign t.p.key ~tag:(echo3_tag ~id:t.p.id v) in
      t.echo3_sent <- Some (Types.Val v);
      out := !out @ [ MEcho3 (Types.Val v, [ sigma ], Some share) ]
    | _ ->
      let proof_for v =
        let _, _, sigma =
          List.find (fun (_, v', _) -> Value.equal v v') t.pending_echo2
        in
        sigma
      in
      t.echo3_sent <- Some Types.Bot;
      out := !out @ [ MEcho3 (Types.Bot, List.map proof_for values, None) ]
  end;
  (* Lines 25-31: decide on n-t valid echo3 messages. *)
  if t.decision = None && List.length t.pending_echo3 >= q then begin
    let values =
      List.sort_uniq Types.cvalue_compare (List.map (fun (_, cv, _) -> cv) t.pending_echo3)
    in
    match values with
    | [ Types.Val v ] ->
      let shares =
        List.filter_map (fun (_, _, share) -> share) t.pending_echo3
      in
      (match
         Threshold.combine t.p.setup ~k:(Quorum.supermajority ~t:tt) ~tag:(echo3_tag ~id:t.p.id v) shares
       with
      | Some sigma ->
        t.echo3_cert <- Some (v, sigma);
        t.decision <- Some (Types.Val v)
      | None ->
        (* Unreachable for honest executions: n-t >= 2t+1 validated shares. *)
        t.decision <- Some (Types.Val v))
    | _ -> t.decision <- Some Types.Bot
  end;
  !out

let handle t ~from msg =
  let relay = ref [] in
  (match msg with
  | MEcho (v, share) ->
    if
      (not (List.exists (fun (p, _, _) -> p = from) t.pending_echo))
      && Threshold.share_validate t.p.setup ~tag:(echo_tag ~id:t.p.id v) share
      && Threshold.share_signer share = from
    then t.pending_echo <- (from, v, share) :: t.pending_echo
  | MEcho2 (v, sigma) ->
    if
      (not (List.exists (fun (p, _, _) -> p = from) t.pending_echo2))
      && valid_echo_cert t v sigma
    then begin
      t.pending_echo2 <- (from, v, sigma) :: t.pending_echo2;
      (* Lines 11-12: a party that has not voted adopts and relays the first
         valid certificate it sees; the broadcast loops back to itself. *)
      if not t.sent_echo2 then begin
        t.sent_echo2 <- true;
        relay := [ MEcho2 (v, sigma) ]
      end
    end
  | MEcho3 (cv, proofs, share) ->
    let vals = match cv with Types.Bot -> Value.both | Types.Val v -> [ v ] in
    let share_ok =
      match (cv, share) with
      | Types.Bot, _ -> true
      | Types.Val v, Some s ->
        Threshold.share_validate t.p.setup ~tag:(echo3_tag ~id:t.p.id v) s
        && Threshold.share_signer s = from
      | Types.Val _, None -> false
    in
    let proofs_ok =
      List.for_all (fun v' -> List.exists (fun sigma -> valid_echo_cert t v' sigma) proofs) vals
    in
    if
      (not (List.exists (fun (p, _, _) -> p = from) t.pending_echo3))
      && share_ok && proofs_ok
    then t.pending_echo3 <- (from, cv, share) :: t.pending_echo3);
  !relay @ progress t

let decision t = t.decision

let phase t =
  if t.decision <> None then "decide"
  else if t.echo3_sent <> None then "echo3"
  else if t.sent_echo2 then "echo2"
  else "init"


let echo3_cert t = t.echo3_cert

let echo3_sent t = t.echo3_sent

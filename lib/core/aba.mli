(** High-level API: pick a protocol stack and run binary agreement.

    This is the quickstart surface of the library.  Each {!spec} names one of
    the paper's end-to-end constructions (framework x BCA implementation x
    coin); {!run} simulates an honest cluster of [n] parties under a seeded
    random asynchronous schedule and returns the agreed value together with
    execution statistics.

    For adversarial schedules, faulty parties, lockstep round accounting, or
    driving the protocols message by message, use the underlying modules
    directly ({!Aa_strong}, {!Aa_weak}, the BCA implementations, and
    [Bca_netsim]); the [bca_adversary] and [bca_experiments] libraries show how. *)

(** The assembled stacks, exposed for callers that need message-level
    access (tracing, custom fault injection, adversaries). *)
module Crash_strong_stack : module type of Aa_strong.Make (Bca_crash)

module Crash_weak_stack : module type of Aa_weak.Make (Gbca_crash)

module Byz_strong_stack : module type of Aa_strong.Make (Bca_byz)

module Byz_weak_stack : module type of Aa_weak.Make (Gbca_byz)

module Byz_tsig_stack : module type of Aa_strong.Make (Bca_tsig)

(** The pre-assembled protocol stacks (see the paper's Table 1 and 2 rows). *)
type spec =
  | Crash_strong
      (** Algorithm 1 + Algorithm 3 + strong coin: ACA, [n >= 2t+1],
          expected 7 broadcasts (Theorem 4.2) *)
  | Crash_weak of float
      (** Algorithm 2 + Algorithm 5 + epsilon-good coin: ACA, [n >= 2t+1],
          expected 3/eps + 4 broadcasts (Theorem 5.2) *)
  | Crash_local
      (** [Crash_weak] with the local coin (epsilon = 2^-n): the O(2^n)
          improvement over Ben-Or/Aguilera-Toueg of Table 1 *)
  | Byz_strong
      (** Algorithm 1 + Algorithm 4 + strong [t]-unpredictable coin: ABA,
          [n >= 3t+1], expected 17 broadcasts (Theorem 4.11) *)
  | Byz_weak of float
      (** Algorithm 2 + Algorithm 6 + epsilon-good coin: ABA, [n >= 3t+1],
          expected 6/eps + 6 broadcasts (Theorem 5.4) *)
  | Byz_tsig
      (** Algorithm 1 + Algorithm 7 + strong [2t]-unpredictable coin +
          threshold signatures: ABA, [n >= 3t+1] (Theorem 6.2) *)

val pp_spec : Format.formatter -> spec -> unit

val default_coin_degree : spec -> t:int -> int
(** The coin unpredictability degree each theorem assumes: [2t] for
    [Byz_tsig], [t] otherwise. *)

val spec_mode : spec -> [ `Crash | `Byz ]
(** The fault model of the stack: which resilience bound applies and which
    fault behaviours (corruption) a harness may inject against it. *)

val spec_commits_on_coin : spec -> bool
(** Whether the stack's framework is Algorithm 1 (commit only when the BCA
    decision matches the round coin) - the stacks for which a monitor may
    check a commit against the coin value at the commit round.  Graded
    (Algorithm 2) stacks commit at grade 2 without consulting the coin. *)

type result = {
  value : Bca_util.Value.t;  (** the agreed value *)
  commits : Bca_util.Value.t array;  (** per-party committed values *)
  deliveries : int;  (** messages delivered until global termination *)
  rounds : int;  (** highest BCA-coin round reached by any party *)
}

val run :
  ?seed:int64 ->
  spec ->
  cfg:Types.cfg ->
  inputs:Bca_util.Value.t array ->
  (result, string) Stdlib.result
(** Simulate an all-honest cluster to termination under a random
    asynchronous schedule.  [inputs] must have length [cfg.n].  Errors
    report resilience violations or (never expected) liveness failures. *)

type party = {
  committed : unit -> Bca_util.Value.t option;
  commit_round : unit -> int option;
  round : unit -> int;
  phase : unit -> string;
      (** current round's (G)BCA phase label (see [Bca_intf.BCA.phase]) *)
}
(** One party's protocol state, erased of its stack-specific type: the
    accessors a generic harness (chaos campaign, invariant monitor,
    observability probe) needs. *)

type 'r driver = {
  drive :
    'm.
    coin:Bca_coin.Coin.t ->
    wire:'m Bca_wire.Wire.codec ->
    'm Bca_netsim.Async_exec.t ->
    party array ->
    'r;
}
(** A polymorphic execution driver: receives the assembled cluster (the
    coin oracle, the wire codec for the stack's message type, the executor
    with every party's initial sends already in flight, and the per-party
    state accessors) and runs it however it wants - custom schedulers,
    fault plans, observers, or real transports ([wire] is how a driver
    moves the otherwise-abstract ['m] messages across process
    boundaries; see [Bca_transport.Cluster]). *)

val run_custom :
  ?seed:int64 ->
  ?tracer:Bca_obs.Trace.t ->
  spec ->
  cfg:Types.cfg ->
  inputs:Bca_util.Value.t array ->
  driver:'r driver ->
  ('r, string) Stdlib.result
(** Assemble the stack for [spec] exactly as {!run} does (same coin seeds
    and per-party construction for a given [seed]) but hand control of the
    execution to [driver].  [Error] reports resilience violations or an
    [Invalid_argument] escaping the driver.

    With [tracer] (default [Bca_obs.Trace.null]), the executor is built with
    [Bca_netsim.Async_exec.create_traced] - so every network-level event of
    the run is recorded - and the coin emits [Coin_reveal] events on each
    party's first access to a round's coin.  Protocol milestones
    (round entries, phase quorums, commits) are polled by a [Probe] the
    driver installs; see {!Probe.create}. *)

(** {1 Multi-instance assembly}

    The pipelined cluster executor ([Bca_transport.Cluster]) runs B
    independent agreement instances of one stack concurrently, multiplexed
    over one transport.  All B instances share the message type and wire
    codec; each has its own seed, coin, inputs, parties and executor.
    {!with_spec} splits stack selection from instance construction so that
    a driver can assemble as many instances as it wants under one
    existential ['m]. *)

type 'm built = {
  b_coin : Bca_coin.Coin.t;
  b_exec : 'm Bca_netsim.Async_exec.t;
  b_parties : party array;
}
(** One assembled instance: the executor carries every party's initial
    sends in flight, exactly as [run_custom] hands its driver. *)

type 'r spec_handler = {
  handle :
    'm.
    wire:'m Bca_wire.Wire.codec ->
    mk_instance:(seed:int64 -> inputs:Bca_util.Value.t array -> 'm built) ->
    'r;
}
(** Receives the stack's wire codec and an instance factory.  [mk_instance]
    reproduces [run_custom]'s assembly byte for byte for a given seed -
    same coin seed derivation, same threshold-key setup, same per-party
    construction - and raises [Invalid_argument] on a bad input vector
    (caught by {!with_spec}). *)

val with_spec :
  ?tracer:Bca_obs.Trace.t ->
  spec ->
  cfg:Types.cfg ->
  handler:'r spec_handler ->
  ('r, string) Stdlib.result
(** Resolve [spec] to its stack (checking resilience) and hand the handler
    the means to build instances.  {!run_custom} is the one-instance
    wrapper; [run_custom_many] the B-instance one. *)

type 'm instance = {
  i_id : int;  (** index in the [seeds] array - the wire instance id *)
  i_seed : int64;
  i_coin : Bca_coin.Coin.t;
  i_exec : 'm Bca_netsim.Async_exec.t;
  i_parties : party array;
}

type 'r many_driver = {
  drive_many : 'm. wire:'m Bca_wire.Wire.codec -> 'm instance array -> 'r;
}

val run_custom_many :
  ?tracer:Bca_obs.Trace.t ->
  spec ->
  cfg:Types.cfg ->
  seeds:int64 array ->
  inputs:Bca_util.Value.t array array ->
  driver:'r many_driver ->
  ('r, string) Stdlib.result
(** Assemble [Array.length seeds] independent instances of the same stack
    (instance [k] built exactly as [run_custom ~seed:seeds.(k)
    ~inputs:inputs.(k)] would) and hand them all to the driver.  [Error] on
    zero instances, mismatched array lengths, a bad input vector, or a
    resilience violation. *)

module Value = Bca_util.Value
module Quorum = Bca_util.Quorum

type msg = MVal of Value.t | MEcho of Types.cvalue

let pp_msg ppf = function
  | MVal v -> Format.fprintf ppf "val(%a)" Value.pp v
  | MEcho cv -> Format.fprintf ppf "echo(%a)" Types.pp_cvalue cv

type params = Types.cfg

type t = {
  cfg : Types.cfg;
  me : Types.pid;
  vals : Value.t Quorum.t;
  echoes : Types.cvalue Quorum.t;
  mutable echoed : Types.cvalue option;
  mutable decision : Types.cvalue option;
}

let max_broadcast_steps = 2

let create cfg ~me =
  Types.check_crash_resilience cfg;
  { cfg; me; vals = Quorum.create (); echoes = Quorum.create (); echoed = None; decision = None }

let start _t ~input = [ MVal input ]

(* Fire any enabled "upon" clause that has not fired yet. *)
let progress t =
  let q = Types.quorum t.cfg in
  let out = ref [] in
  if t.echoed = None && Quorum.senders t.vals >= q then begin
    let echo =
      match Quorum.all_equal t.vals with Some v -> Types.Val v | None -> Types.Bot
    in
    t.echoed <- Some echo;
    out := [ MEcho echo ]
  end;
  if t.decision = None && Quorum.senders t.echoes >= q then begin
    let d = match Quorum.all_equal t.echoes with Some cv -> cv | None -> Types.Bot in
    t.decision <- Some d
  end;
  !out

let handle t ~from msg =
  match msg with
  | MVal v ->
    let _ : bool = Quorum.add_first t.vals ~pid:from v in
    progress t
  | MEcho cv ->
    let _ : bool = Quorum.add_first t.echoes ~pid:from cv in
    progress t

let decision t = t.decision

let phase t =
  if t.decision <> None then "decide" else if t.echoed <> None then "echo" else "init"


let echoed t = t.echoed

let val_count t v = Quorum.count t.vals v

let debug_copy t =
  { t with vals = Quorum.copy t.vals; echoes = Quorum.copy t.echoes }

let debug_encode t =
  let cv = function Types.Val v -> Value.to_string v | Types.Bot -> "b" in
  let quorum pp entries =
    String.concat ","
      (List.sort String.compare (List.map (fun (p, v) -> Printf.sprintf "%d=%s" p (pp v)) entries))
  in
  Printf.sprintf "v[%s]e[%s]s:%s d:%s"
    (quorum Value.to_string (Quorum.entries t.vals))
    (quorum cv (Quorum.entries t.echoes))
    (match t.echoed with Some c -> cv c | None -> "_")
    (match t.decision with Some c -> cv c | None -> "_")

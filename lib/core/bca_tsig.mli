(** Algorithm 7: Binding Crusader Agreement with threshold signatures.

    Tolerates [t < n/3] Byzantine parties and terminates in 3 communication
    rounds (Theorem 6.1).  Two threshold signatures are manufactured:

    - [sigma_echo(id, v)], threshold [t + 1]: proof that some honest party
      started instance [id] with input [v] - it replaces Algorithm 4's
      amplification echoes and [approvedVals] set;
    - [sigma_echo3(id, v)], threshold [2t + 1]: proof that [t + 1] honest
      parties sent echo3 for [v], hence (binding, Lemma F.5) that no honest
      party can ever output [1 - v].  The EVBCA-TSig optimizations of
      Appendix G.2 forward this certificate to terminate early.

    Messages failing signature validation are dropped, which is what confines
    the simulated Byzantine parties to exactly the power of a computationally
    bounded adversary (see [Bca_crypto.Threshold]). *)

type msg =
  | MEcho of Bca_util.Value.t * Bca_crypto.Threshold.share
      (** input value with a threshold-signature share on (echo, id, v) *)
  | MEcho2 of Bca_util.Value.t * Bca_crypto.Threshold.signature
      (** a value with its sigma_echo certificate *)
  | MEcho3 of
      Types.cvalue * Bca_crypto.Threshold.signature list * Bca_crypto.Threshold.share option
      (** vote: [Val v] carries [sigma_echo(v)] and a share on (echo3, id, v);
          [Bot] carries sigma_echo certificates for both values *)

type params = {
  cfg : Types.cfg;
  setup : Bca_crypto.Threshold.t;  (** public threshold-scheme handle *)
  key : Bca_crypto.Threshold.key;  (** this party's signing capability *)
  id : string;  (** instance identifier baked into all signed tags *)
}

include Bca_intf.BCA with type params := params and type msg := msg

val echo_tag : id:string -> Bca_util.Value.t -> string
(** The tag threshold-signed by echo messages: [(echo, id, v)]. *)

val echo3_tag : id:string -> Bca_util.Value.t -> string
(** The tag threshold-signed by echo3 messages: [(echo3, id, v)]. *)

val echo3_cert : t -> (Bca_util.Value.t * Bca_crypto.Threshold.signature) option
(** After deciding a non-bottom [v]: the combined [sigma_echo3(id, v)]
    certificate (threshold [2t + 1]), used by the Appendix G.2
    optimizations. *)

val echo3_sent : t -> Types.cvalue option
(** For binding-witness checks. *)

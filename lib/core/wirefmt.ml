module Wire = Bca_wire.Wire
module Put = Wire.Put
module Get = Wire.Get
module Value = Bca_util.Value
module Threshold = Bca_crypto.Threshold

(* The same functor applications Aba exposes; OCaml's applicative functor
   paths make these message types equal to the stack types by construction. *)
module Crash_strong = Aa_strong.Make (Bca_crash)
module Crash_weak = Aa_weak.Make (Gbca_crash)
module Byz_strong = Aa_strong.Make (Bca_byz)
module Byz_weak = Aa_weak.Make (Gbca_byz)
module Byz_tsig = Aa_strong.Make (Bca_tsig)

let malformed fmt = Printf.ksprintf (fun msg -> raise (Get.Malformed msg)) fmt

(* ---- shared field encodings ---------------------------------------- *)

let put_cvalue buf = function
  | Types.Bot -> Put.u8 buf 0
  | Types.Val Value.V0 -> Put.u8 buf 1
  | Types.Val Value.V1 -> Put.u8 buf 2

let get_cvalue g =
  match Get.u8 g with
  | 0 -> Types.Bot
  | 1 -> Types.Val Value.V0
  | 2 -> Types.Val Value.V1
  | v -> malformed "invalid crusader-value byte %d" v

let put_share buf s =
  let signer, tag, mac = Threshold.share_repr s in
  Put.varint buf signer;
  Put.string buf tag;
  Put.i64 buf mac

let get_share g =
  let signer = Get.varint g in
  let tag = Get.string g in
  let mac = Get.i64 g in
  Threshold.share_unsafe_of_repr ~signer ~tag ~mac

let put_signature buf s =
  let tag, k, cert = Threshold.signature_repr s in
  Put.string buf tag;
  Put.varint buf k;
  Put.i64 buf cert

let get_signature g =
  let tag = Get.string g in
  let k = Get.varint g in
  let cert = Get.i64 g in
  Threshold.signature_unsafe_of_repr ~tag ~k ~cert

(* A serialized signature is at least 10 bytes (1 length + 1 varint + 8
   cert), so a list count is bounded by the remaining body size - reject
   counts that could not possibly fit instead of pre-allocating for them. *)
let get_list g ~min_item_bytes get_item =
  let count = Get.varint g in
  (* the lower bound is defensive: Get.varint rejects encodings that
     overflow to a negative int, but List.init raising on a negative
     count would escape the Malformed-only handlers *)
  if not (Bca_util.Bounds.fits ~max:(Get.remaining g / min_item_bytes) count) then
    malformed "list count %d exceeds body size" count;
  List.init count (fun _ -> get_item g)

(* ---- per-stack codecs ---------------------------------------------- *)

(* Body grammar: [tag:u8] then, for round-scoped BCA messages,
   [round:varint] and the constructor fields.  Tag 0 is always the
   termination-layer [Committed] message. *)

let crash_strong : Crash_strong.msg Wire.codec =
  { Wire.id = 1;
    name = "crash-strong";
    enc =
      (fun buf -> function
        | Crash_strong.Committed v ->
          Put.u8 buf 0;
          Put.value buf v
        | Crash_strong.Bca (r, Bca_crash.MVal v) ->
          Put.u8 buf 1;
          Put.varint buf r;
          Put.value buf v
        | Crash_strong.Bca (r, Bca_crash.MEcho cv) ->
          Put.u8 buf 2;
          Put.varint buf r;
          put_cvalue buf cv);
    dec =
      (fun g ->
        match Get.u8 g with
        | 0 -> Crash_strong.Committed (Get.value g)
        | 1 ->
          let r = Get.varint g in
          Crash_strong.Bca (r, Bca_crash.MVal (Get.value g))
        | 2 ->
          let r = Get.varint g in
          Crash_strong.Bca (r, Bca_crash.MEcho (get_cvalue g))
        | t -> malformed "unknown crash-strong tag %d" t) }

let crash_weak : Crash_weak.msg Wire.codec =
  { Wire.id = 2;
    name = "crash-weak";
    enc =
      (fun buf -> function
        | Crash_weak.Committed v ->
          Put.u8 buf 0;
          Put.value buf v
        | Crash_weak.Gbca (r, Gbca_crash.MVal v) ->
          Put.u8 buf 1;
          Put.varint buf r;
          Put.value buf v
        | Crash_weak.Gbca (r, Gbca_crash.MEcho cv) ->
          Put.u8 buf 2;
          Put.varint buf r;
          put_cvalue buf cv
        | Crash_weak.Gbca (r, Gbca_crash.MEcho2 cv) ->
          Put.u8 buf 3;
          Put.varint buf r;
          put_cvalue buf cv);
    dec =
      (fun g ->
        match Get.u8 g with
        | 0 -> Crash_weak.Committed (Get.value g)
        | 1 ->
          let r = Get.varint g in
          Crash_weak.Gbca (r, Gbca_crash.MVal (Get.value g))
        | 2 ->
          let r = Get.varint g in
          Crash_weak.Gbca (r, Gbca_crash.MEcho (get_cvalue g))
        | 3 ->
          let r = Get.varint g in
          Crash_weak.Gbca (r, Gbca_crash.MEcho2 (get_cvalue g))
        | t -> malformed "unknown crash-weak tag %d" t) }

let byz_strong : Byz_strong.msg Wire.codec =
  { Wire.id = 3;
    name = "byz-strong";
    enc =
      (fun buf -> function
        | Byz_strong.Committed v ->
          Put.u8 buf 0;
          Put.value buf v
        | Byz_strong.Bca (r, Bca_byz.MEcho v) ->
          Put.u8 buf 1;
          Put.varint buf r;
          Put.value buf v
        | Byz_strong.Bca (r, Bca_byz.MEcho2 v) ->
          Put.u8 buf 2;
          Put.varint buf r;
          Put.value buf v
        | Byz_strong.Bca (r, Bca_byz.MEcho3 cv) ->
          Put.u8 buf 3;
          Put.varint buf r;
          put_cvalue buf cv);
    dec =
      (fun g ->
        match Get.u8 g with
        | 0 -> Byz_strong.Committed (Get.value g)
        | 1 ->
          let r = Get.varint g in
          Byz_strong.Bca (r, Bca_byz.MEcho (Get.value g))
        | 2 ->
          let r = Get.varint g in
          Byz_strong.Bca (r, Bca_byz.MEcho2 (Get.value g))
        | 3 ->
          let r = Get.varint g in
          Byz_strong.Bca (r, Bca_byz.MEcho3 (get_cvalue g))
        | t -> malformed "unknown byz-strong tag %d" t) }

let byz_weak : Byz_weak.msg Wire.codec =
  { Wire.id = 4;
    name = "byz-weak";
    enc =
      (fun buf -> function
        | Byz_weak.Committed v ->
          Put.u8 buf 0;
          Put.value buf v
        | Byz_weak.Gbca (r, m) ->
          let tag, put =
            match m with
            | Gbca_byz.MEcho v -> (1, fun () -> Put.value buf v)
            | Gbca_byz.MEcho2 v -> (2, fun () -> Put.value buf v)
            | Gbca_byz.MEcho3 cv -> (3, fun () -> put_cvalue buf cv)
            | Gbca_byz.MEcho4 cv -> (4, fun () -> put_cvalue buf cv)
            | Gbca_byz.MEcho5 cv -> (5, fun () -> put_cvalue buf cv)
          in
          Put.u8 buf tag;
          Put.varint buf r;
          put ());
    dec =
      (fun g ->
        match Get.u8 g with
        | 0 -> Byz_weak.Committed (Get.value g)
        | (1 | 2 | 3 | 4 | 5) as tag ->
          let r = Get.varint g in
          let m =
            match tag with
            | 1 -> Gbca_byz.MEcho (Get.value g)
            | 2 -> Gbca_byz.MEcho2 (Get.value g)
            | 3 -> Gbca_byz.MEcho3 (get_cvalue g)
            | 4 -> Gbca_byz.MEcho4 (get_cvalue g)
            | _ -> Gbca_byz.MEcho5 (get_cvalue g)
          in
          Byz_weak.Gbca (r, m)
        | t -> malformed "unknown byz-weak tag %d" t) }

let byz_tsig : Byz_tsig.msg Wire.codec =
  { Wire.id = 5;
    name = "byz-tsig";
    enc =
      (fun buf -> function
        | Byz_tsig.Committed v ->
          Put.u8 buf 0;
          Put.value buf v
        | Byz_tsig.Bca (r, Bca_tsig.MEcho (v, share)) ->
          Put.u8 buf 1;
          Put.varint buf r;
          Put.value buf v;
          put_share buf share
        | Byz_tsig.Bca (r, Bca_tsig.MEcho2 (v, cert)) ->
          Put.u8 buf 2;
          Put.varint buf r;
          Put.value buf v;
          put_signature buf cert
        | Byz_tsig.Bca (r, Bca_tsig.MEcho3 (cv, certs, share_opt)) ->
          Put.u8 buf 3;
          Put.varint buf r;
          put_cvalue buf cv;
          Put.varint buf (List.length certs);
          List.iter (put_signature buf) certs;
          (match share_opt with
          | None -> Put.u8 buf 0
          | Some s ->
            Put.u8 buf 1;
            put_share buf s));
    dec =
      (fun g ->
        match Get.u8 g with
        | 0 -> Byz_tsig.Committed (Get.value g)
        | 1 ->
          let r = Get.varint g in
          let v = Get.value g in
          Byz_tsig.Bca (r, Bca_tsig.MEcho (v, get_share g))
        | 2 ->
          let r = Get.varint g in
          let v = Get.value g in
          Byz_tsig.Bca (r, Bca_tsig.MEcho2 (v, get_signature g))
        | 3 ->
          let r = Get.varint g in
          let cv = get_cvalue g in
          let certs = get_list g ~min_item_bytes:10 get_signature in
          let share_opt =
            match Get.u8 g with
            | 0 -> None
            | 1 -> Some (get_share g)
            | b -> malformed "invalid option byte %d" b
          in
          Byz_tsig.Bca (r, Bca_tsig.MEcho3 (cv, certs, share_opt))
        | t -> malformed "unknown byz-tsig tag %d" t) }

let coin_share : Bca_coin.Threshold_coin.share Wire.codec =
  { Wire.id = 6;
    name = "coin-share";
    enc = (fun buf s -> put_share buf (Bca_coin.Threshold_coin.share_to_threshold s));
    dec = (fun g -> Bca_coin.Threshold_coin.share_of_threshold (get_share g)) }

let codec_id_of_spec_name = function
  | "crash-strong" -> Some crash_strong.Wire.id
  | "crash-weak" | "crash-local" -> Some crash_weak.Wire.id
  | "byz-strong" -> Some byz_strong.Wire.id
  | "byz-weak" -> Some byz_weak.Wire.id
  | "byz-tsig" -> Some byz_tsig.Wire.id
  | _ -> None

(* One reusable scratch encoding per process: word accounting runs once
   per delivered message in the netsim metrics path, and a fresh buffer
   per call was measurable there.  Not reentrant - fine, codec encoders
   never call back into accounting. *)
let body_words_scratch = Buffer.create 256

let body_words codec m =
  Buffer.clear body_words_scratch;
  codec.Wire.enc body_words_scratch m;
  Wire.words_of_bytes (Buffer.length body_words_scratch)

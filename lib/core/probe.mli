(** Protocol-milestone probe: polls party state into trace events.

    The protocols themselves are instrumentation-free; a probe observes
    their erased state accessors ({!Aba.party}) from the outside and turns
    state {e changes} into events: [Round_enter] when a party's current
    round advances, [Quorum] when its current (G)BCA instance's phase label
    changes (each label change means a quorum-gated "upon" clause of
    Algorithms 3-7 fired - "echo", "echo2", ... in the paper's naming),
    and [Commit] when it first reports a committed value.

    Drivers call {!poll} after every delivery (typically from the
    executor's observer hook, chained with the invariant monitor's) and
    once more after the run ends - the final poll catches milestones caused
    by the last delivery, since the executor notifies observers {e before}
    the receiving node processes the envelope.

    Polling is idempotent: each milestone is emitted exactly once, however
    often {!poll} runs.  Because the emission point is a poll rather than
    the protocol transition itself, milestone events are ordered relative
    to deliveries only up to one polling interval - but identically so in a
    live run and its replay, which is what trace-identity needs. *)

type t

val create : tracer:Bca_obs.Trace.t -> Aba.party array -> t
(** Start probing.  Emits a [Round_enter] for round 1 of every party (all
    parties are constructed in round 1, before any delivery). *)

val poll : t -> unit
(** Emit events for every milestone reached since the previous poll. *)

module Value = Bca_util.Value
module Quorum = Bca_util.Quorum
module Coin = Bca_coin.Coin

module Make (B : Bca_intf.BCA) = struct
  type msg = Bca of int * B.msg | Committed of Value.t

  let pp_msg ppf = function
    | Bca (r, m) -> Format.fprintf ppf "r%d:%a" r B.pp_msg m
    | Committed v -> Format.fprintf ppf "committed(%a)" Value.pp v

  type params = {
    cfg : Types.cfg;
    mode : [ `Crash | `Byz ];
    coin : Coin.t;
    bca_params : round:int -> B.params;
  }

  type t = {
    p : params;
    me : Types.pid;
    instances : (int, B.t) Hashtbl.t;
    mutable round : int;
    mutable est : Value.t;
    mutable committed : Value.t option;
    mutable commit_round : int option;
    mutable sent_committed : bool;
    mutable terminated : bool;
    committed_msgs : Value.t Quorum.t;
  }

  let instance_for t round =
    match Hashtbl.find_opt t.instances round with
    | Some inst -> inst
    | None ->
      let inst = B.create (t.p.bca_params ~round) ~me:t.me in
      Hashtbl.replace t.instances round inst;
      inst

  let wrap round msgs = List.map (fun m -> Bca (round, m)) msgs

  (* Commit [v]: record it and emit the termination-layer broadcast.  In
     crash mode the committer may terminate right away - its committed
     message is already in flight on reliable links. *)
  let commit t v =
    let out = ref [] in
    if t.committed = None then begin
      t.committed <- Some v;
      t.commit_round <- Some t.round
    end;
    if not t.sent_committed then begin
      t.sent_committed <- true;
      out := [ Committed v ]
    end;
    (* Termination happens only upon *receiving* committed messages (the
       party's own broadcast loops back through the network), which is what
       makes the termination broadcast cost one communication step - the
       "+1" in every broadcast count of the paper. *)
    !out

  (* Algorithm 1's loop body: consume the current round's BCA decision, flip
     the round's coin, update the estimate, and start the next round.  The
     next round's instance may already hold a decision (its messages arrived
     early), so iterate. *)
  let rec try_advance t =
    if t.terminated then []
    else
      let inst = instance_for t t.round in
      match B.decision inst with
      | None -> []
      | Some cv ->
        let c = Coin.access t.p.coin ~round:t.round ~pid:t.me in
        let commit_out =
          match cv with
          | Types.Val v when Value.equal v c ->
            t.est <- v;
            commit t v
          | Types.Val v ->
            t.est <- v;
            []
          | Types.Bot ->
            t.est <- c;
            []
        in
        if t.terminated then commit_out
        else begin
          t.round <- t.round + 1;
          let next = instance_for t t.round in
          let starts = B.start next ~input:t.est in
          commit_out @ wrap t.round starts @ try_advance t
        end

  let create p ~me ~input =
    let t =
      { p;
        me;
        instances = Hashtbl.create 8;
        round = 1;
        est = input;
        committed = None;
        commit_round = None;
        sent_committed = false;
        terminated = false;
        committed_msgs = Quorum.create () }
    in
    let inst = instance_for t 1 in
    let out = wrap 1 (B.start inst ~input) in
    (t, out)

  let handle_committed t ~from v =
    ignore (Quorum.add_first t.committed_msgs ~pid:from v : bool);
    match t.p.mode with
    | `Crash ->
      (* One committed message suffices: commit, rebroadcast, terminate. *)
      if t.committed = None then begin
        t.committed <- Some v;
        t.commit_round <- Some t.round
      end;
      let out =
        if not t.sent_committed then begin
          t.sent_committed <- true;
          [ Committed v ]
        end
        else []
      in
      t.terminated <- true;
      out
    | `Byz ->
      let tt = t.p.cfg.Types.t in
      let out = ref [] in
      List.iter
        (fun v' ->
          let c = Quorum.count t.committed_msgs v' in
          if c >= Quorum.plurality ~t:tt && t.committed = None then begin
            t.committed <- Some v';
            t.commit_round <- Some t.round;
            if not t.sent_committed then begin
              t.sent_committed <- true;
              out := !out @ [ Committed v' ]
            end
          end;
          if c >= Quorum.supermajority ~t:tt then t.terminated <- true)
        Value.both;
      !out

  let handle t ~from msg =
    if t.terminated then []
    else
      match msg with
      | Committed v -> handle_committed t ~from v
      | Bca (r, m) ->
        let inst = instance_for t r in
        let outs = wrap r (B.handle inst ~from m) in
        outs @ try_advance t

  let committed t = t.committed

  let terminated t = t.terminated

  let current_round t = t.round

  let est t = t.est

  let commit_round t = t.commit_round

  let node t =
    Bca_netsim.Node.make
      ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
      ~terminated:(fun () -> t.terminated)
      ()

  let instance t ~round = Hashtbl.find_opt t.instances round

  let current_phase t =
    match Hashtbl.find_opt t.instances t.round with
    | Some inst -> B.phase inst
    | None -> "init"
end

(** Shared protocol types: configurations, crusader values, graded decisions.

    These mirror the paper's vocabulary: a crusader protocol may decide a
    binary value or the special [Bot] ("bottom") value; a graded protocol
    decides one of the five ordered buckets of Definition 3.2. *)

type pid = int

type cfg = {
  n : int;  (** number of parties *)
  t : int;  (** upper bound on faulty parties *)
}
(** System configuration.  Crash protocols require [n >= 2t + 1]; Byzantine
    protocols require [n >= 3t + 1]. *)

val cfg : n:int -> t:int -> cfg
(** Checked constructor: positive [n], [0 <= t < n]. *)

val quorum : cfg -> int
(** [n - t], the size of every "received from n - t parties" wait. *)

val check_crash_resilience : cfg -> unit
(** Raises [Invalid_argument] unless [n >= 2t + 1]. *)

val check_byz_resilience : cfg -> unit
(** Raises [Invalid_argument] unless [n >= 3t + 1]. *)

(** A crusader value: a binary value or bottom. *)
type cvalue = Val of Bca_util.Value.t | Bot

val cvalue_equal : cvalue -> cvalue -> bool

val cvalue_compare : cvalue -> cvalue -> int
(** Total order: [Bot] first, then values in {!Bca_util.Value.compare} order. *)

val pp_cvalue : Format.formatter -> cvalue -> unit

(** A graded decision, Definition 3.2's five buckets: [G2 v] = "v grade 2"
    (high confidence, safe to commit), [G1 v] = "v grade 1" (adopt v but do
    not commit), [G0] = "bottom grade 0" (adopt the coin). *)
type gdecision = G2 of Bca_util.Value.t | G1 of Bca_util.Value.t | G0

val gdecision_equal : gdecision -> gdecision -> bool
val pp_gdecision : Format.formatter -> gdecision -> unit

val gdecision_value : gdecision -> cvalue
(** Forget the grade: [G2 v] and [G1 v] map to [Val v], [G0] to [Bot]. *)

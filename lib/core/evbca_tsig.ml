module Value = Bca_util.Value
module Threshold = Bca_crypto.Threshold
module Quorum = Bca_util.Quorum

type proof = Direct of Threshold.signature | Prev of Threshold.signature

type msg =
  | MEcho of Value.t * Threshold.share
  | MEcho2 of Value.t * proof
  | MEcho3 of Types.cvalue * proof list * Threshold.share option

let pp_msg ppf = function
  | MEcho (v, _) -> Format.fprintf ppf "echo(%a, share)" Value.pp v
  | MEcho2 (v, _) -> Format.fprintf ppf "echo2(%a, proof)" Value.pp v
  | MEcho3 (cv, _, _) -> Format.fprintf ppf "echo3(%a, proofs)" Types.pp_cvalue cv

type params = {
  cfg : Types.cfg;
  setup : Threshold.t;
  key : Threshold.key;
  round : int;
}

let echo_tag ~round v = Printf.sprintf "echo/r%d/%s" round (Value.to_string v)

let echo3_tag ~round v = Printf.sprintf "echo3/r%d/%s" round (Value.to_string v)

type start_ctx = Fresh | Carry of Value.t * Threshold.signature

type t = {
  p : params;
  mutable pending_echo : (Types.pid * Value.t * Threshold.share) list;
  mutable pending_echo2 : (Types.pid * Value.t * proof) list;
  mutable pending_echo3 : (Types.pid * Types.cvalue * Threshold.share option) list;
  mutable sent_echo2 : bool;
  mutable echo3_sent : Types.cvalue option;
  mutable decision : Types.cvalue option;
  mutable echo3_cert : (Value.t * Threshold.signature) option;
}

let create p ~me:_ =
  Types.check_byz_resilience p.cfg;
  { p;
    pending_echo = [];
    pending_echo2 = [];
    pending_echo3 = [];
    sent_echo2 = false;
    echo3_sent = None;
    decision = None;
    echo3_cert = None }

(* A proof that [v] is externally valid for this round (Definition G.16):
   either t+1 parties echoed v this round, or a 2t+1 echo3 quorum for v
   formed last round. *)
let valid_proof t v = function
  | Direct sigma ->
    Threshold.verify t.p.setup ~tag:(echo_tag ~round:t.p.round v) sigma
    && Threshold.threshold_of sigma = Quorum.plurality ~t:t.p.cfg.Types.t
  | Prev sigma ->
    t.p.round > 1
    && Threshold.verify t.p.setup ~tag:(echo3_tag ~round:(t.p.round - 1) v) sigma
    && Threshold.threshold_of sigma = Quorum.supermajority ~t:t.p.cfg.Types.t

let progress t =
  let q = Types.quorum t.p.cfg in
  let tt = t.p.cfg.Types.t in
  let out = ref [] in
  if not t.sent_echo2 then begin
    let candidate =
      List.find_opt
        (fun v ->
          List.length (List.filter (fun (_, v', _) -> Value.equal v v') t.pending_echo)
          >= Quorum.plurality ~t:tt)
        Value.both
    in
    match candidate with
    | Some v ->
      let shares =
        List.filter_map
          (fun (_, v', s) -> if Value.equal v v' then Some s else None)
          t.pending_echo
      in
      (match Threshold.combine t.p.setup ~k:(Quorum.plurality ~t:tt) ~tag:(echo_tag ~round:t.p.round v) shares with
      | Some sigma ->
        t.sent_echo2 <- true;
        out := !out @ [ MEcho2 (v, Direct sigma) ]
      | None -> ())
    | None -> ()
  end;
  if t.echo3_sent = None && List.length t.pending_echo2 >= q then begin
    let values =
      List.sort_uniq Value.compare (List.map (fun (_, v, _) -> v) t.pending_echo2)
    in
    match values with
    | [ v ] ->
      let _, _, proof = List.find (fun (_, v', _) -> Value.equal v v') t.pending_echo2 in
      let share = Threshold.sign t.p.key ~tag:(echo3_tag ~round:t.p.round v) in
      t.echo3_sent <- Some (Types.Val v);
      out := !out @ [ MEcho3 (Types.Val v, [ proof ], Some share) ]
    | _ ->
      let proof_for v =
        let _, _, proof = List.find (fun (_, v', _) -> Value.equal v v') t.pending_echo2 in
        proof
      in
      t.echo3_sent <- Some Types.Bot;
      out := !out @ [ MEcho3 (Types.Bot, List.map proof_for values, None) ]
  end;
  if t.decision = None && List.length t.pending_echo3 >= q then begin
    let values =
      List.sort_uniq Types.cvalue_compare (List.map (fun (_, cv, _) -> cv) t.pending_echo3)
    in
    match values with
    | [ Types.Val v ] ->
      let shares = List.filter_map (fun (_, _, share) -> share) t.pending_echo3 in
      (match
         Threshold.combine t.p.setup ~k:(Quorum.supermajority ~t:tt) ~tag:(echo3_tag ~round:t.p.round v)
           shares
       with
      | Some sigma ->
        t.echo3_cert <- Some (v, sigma);
        t.decision <- Some (Types.Val v)
      | None -> t.decision <- Some (Types.Val v))
    | _ -> t.decision <- Some Types.Bot
  end;
  !out

let start t ~input ~ctx =
  match ctx with
  | Fresh ->
    let share = Threshold.sign t.p.key ~tag:(echo_tag ~round:t.p.round input) in
    [ MEcho (input, share) ] @ progress t
  | Carry (v, sigma) ->
    (* Optimization 1: skip the echo round; the previous round's echo3
       certificate already proves v externally valid. *)
    if t.sent_echo2 then progress t
    else begin
      t.sent_echo2 <- true;
      [ MEcho2 (v, Prev sigma) ] @ progress t
    end

let handle t ~from msg =
  let relay = ref [] in
  (match msg with
  | MEcho (v, share) ->
    if
      (not (List.exists (fun (p, _, _) -> p = from) t.pending_echo))
      && Threshold.share_validate t.p.setup ~tag:(echo_tag ~round:t.p.round v) share
      && Threshold.share_signer share = from
    then t.pending_echo <- (from, v, share) :: t.pending_echo
  | MEcho2 (v, proof) ->
    if
      (not (List.exists (fun (p, _, _) -> p = from) t.pending_echo2))
      && valid_proof t v proof
    then begin
      t.pending_echo2 <- (from, v, proof) :: t.pending_echo2;
      if not t.sent_echo2 then begin
        t.sent_echo2 <- true;
        relay := [ MEcho2 (v, proof) ]
      end
    end
  | MEcho3 (cv, proofs, share) ->
    let vals = match cv with Types.Bot -> Value.both | Types.Val v -> [ v ] in
    let share_ok =
      match (cv, share) with
      | Types.Bot, _ -> true
      | Types.Val v, Some s ->
        Threshold.share_validate t.p.setup ~tag:(echo3_tag ~round:t.p.round v) s
        && Threshold.share_signer s = from
      | Types.Val _, None -> false
    in
    let proofs_ok =
      List.for_all (fun v' -> List.exists (fun p -> valid_proof t v' p) proofs) vals
    in
    if
      (not (List.exists (fun (p, _, _) -> p = from) t.pending_echo3))
      && share_ok && proofs_ok
    then t.pending_echo3 <- (from, cv, share) :: t.pending_echo3);
  !relay @ progress t

let decision t = t.decision

let echo3_cert t = t.echo3_cert

let echo3_sent t = t.echo3_sent

module Value = Bca_util.Value
module Quorum = Bca_util.Quorum

type msg = MEcho of Value.t | MEcho2 of Value.t | MEcho3 of Types.cvalue

let pp_msg ppf = function
  | MEcho v -> Format.fprintf ppf "echo(%a)" Value.pp v
  | MEcho2 v -> Format.fprintf ppf "echo2(%a)" Value.pp v
  | MEcho3 cv -> Format.fprintf ppf "echo3(%a)" Types.pp_cvalue cv

type start_ctx = {
  auto_approve : Value.t option;
  skip_echo : bool;
  early_echo3 : Value.t option;
}

let fresh = { auto_approve = None; skip_echo = false; early_echo3 = None }

type t = {
  cfg : Types.cfg;
  me : Types.pid;
  echoes : Value.t Quorum.t;
  echo2s : Value.t Quorum.t;
  echo3s : Types.cvalue Quorum.t;
  mutable my_echoes : Value.t list;
  mutable approved : Value.t list;
  mutable sent_echo2 : bool;
  mutable echo3_sent : Types.cvalue option;
  mutable decision : Types.cvalue option;
}

let create cfg ~me =
  Types.check_byz_resilience cfg;
  { cfg;
    me;
    echoes = Quorum.create ();
    echo2s = Quorum.create ();
    echo3s = Quorum.create ();
    my_echoes = [];
    approved = [];
    sent_echo2 = false;
    echo3_sent = None;
    decision = None }

(* Approve [v] and cast the single echo2 vote if still unused
   (lines 5-7, extended to automatic approvals by optimization 2). *)
let approve t v out =
  if not (List.mem v t.approved) then begin
    t.approved <- v :: t.approved;
    if not t.sent_echo2 then begin
      t.sent_echo2 <- true;
      out := !out @ [ MEcho2 v ]
    end
  end

(* Clause scan identical to Algorithm 4; approvals may now also come from
   the start context. *)
let progress t =
  let q = Types.quorum t.cfg in
  let out = ref [] in
  List.iter
    (fun v ->
      if Quorum.count t.echoes v >= Quorum.plurality ~t:t.cfg.Types.t && not (List.mem v t.my_echoes)
      then begin
        t.my_echoes <- v :: t.my_echoes;
        out := !out @ [ MEcho v ]
      end)
    Value.both;
  List.iter (fun v -> if Quorum.count t.echoes v >= q then approve t v out) Value.both;
  if t.echo3_sent = None then begin
    if List.length t.approved > 1 then begin
      t.echo3_sent <- Some Types.Bot;
      out := !out @ [ MEcho3 Types.Bot ]
    end
    else
      List.iter
        (fun v ->
          if t.echo3_sent = None && Quorum.count t.echo2s v >= q then begin
            t.echo3_sent <- Some (Types.Val v);
            out := !out @ [ MEcho3 (Types.Val v) ]
          end)
        Value.both
  end;
  if t.decision = None then begin
    if List.length t.approved > 1 && Quorum.senders t.echo3s >= q then
      t.decision <- Some Types.Bot
    else
      List.iter
        (fun v ->
          if t.decision = None && Quorum.count t.echo3s (Types.Val v) >= q then
            t.decision <- Some (Types.Val v))
        Value.both
  end;
  !out

let start t ~input ~ctx =
  let out = ref [] in
  (match ctx.early_echo3 with
  | Some v ->
    (* Optimization 4: the committed value is already common knowledge
       enough to vote and aggregate in one step. *)
    if not (List.mem v t.approved) then t.approved <- v :: t.approved;
    if not t.sent_echo2 then begin
      t.sent_echo2 <- true;
      out := !out @ [ MEcho2 v ]
    end;
    if t.echo3_sent = None then begin
      t.echo3_sent <- Some (Types.Val v);
      out := !out @ [ MEcho3 (Types.Val v) ]
    end
  | None ->
    (match ctx.auto_approve with Some a -> approve t a out | None -> ());
    if (not ctx.skip_echo) && not (List.mem input t.my_echoes) then begin
      t.my_echoes <- input :: t.my_echoes;
      out := !out @ [ MEcho input ]
    end);
  !out @ progress t

let handle t ~from msg =
  (match msg with
  | MEcho v -> ignore (Quorum.add_value t.echoes ~pid:from v : bool)
  | MEcho2 v -> ignore (Quorum.add_first t.echo2s ~pid:from v : bool)
  | MEcho3 cv -> ignore (Quorum.add_first t.echo3s ~pid:from cv : bool));
  progress t

let decision t = t.decision

let approved t = t.approved

let echo3_sent t = t.echo3_sent

let external_approve t v =
  let out = ref [] in
  approve t v out;
  !out @ progress t

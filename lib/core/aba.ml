module Value = Bca_util.Value
module Rng = Bca_util.Rng
module Coin = Bca_coin.Coin
module Threshold = Bca_crypto.Threshold
module Async = Bca_netsim.Async_exec

module Crash_strong_stack = Aa_strong.Make (Bca_crash)
module Crash_weak_stack = Aa_weak.Make (Gbca_crash)
module Byz_strong_stack = Aa_strong.Make (Bca_byz)
module Byz_weak_stack = Aa_weak.Make (Gbca_byz)
module Byz_tsig_stack = Aa_strong.Make (Bca_tsig)

type spec =
  | Crash_strong
  | Crash_weak of float
  | Crash_local
  | Byz_strong
  | Byz_weak of float
  | Byz_tsig

let pp_spec ppf = function
  | Crash_strong -> Format.pp_print_string ppf "crash/strong-coin"
  | Crash_weak e -> Format.fprintf ppf "crash/%.3f-good-coin" e
  | Crash_local -> Format.pp_print_string ppf "crash/local-coin"
  | Byz_strong -> Format.pp_print_string ppf "byz/strong-coin"
  | Byz_weak e -> Format.fprintf ppf "byz/%.3f-good-coin" e
  | Byz_tsig -> Format.pp_print_string ppf "byz/strong-coin+tsig"

let default_coin_degree spec ~t =
  match spec with
  | Byz_tsig -> 2 * t
  | Crash_strong | Crash_weak _ | Crash_local | Byz_strong | Byz_weak _ -> t

let spec_mode = function
  | Crash_strong | Crash_weak _ | Crash_local -> `Crash
  | Byz_strong | Byz_weak _ | Byz_tsig -> `Byz

let spec_commits_on_coin = function
  | Crash_strong | Byz_strong | Byz_tsig -> true
  | Crash_weak _ | Crash_local | Byz_weak _ -> false

type result = {
  value : Value.t;
  commits : Value.t array;
  deliveries : int;
  rounds : int;
}

(* One party as a generic runner sees it: protocol state accessors over the
   erased stack type.  The six stacks only differ in how this view is
   constructed. *)
type party = {
  committed : unit -> Value.t option;
  commit_round : unit -> int option;
  round : unit -> int;
  phase : unit -> string;
}

type 'r driver = {
  drive :
    'm. coin:Bca_coin.Coin.t -> wire:'m Bca_wire.Wire.codec -> 'm Async.t -> party array -> 'r;
}

(* Internal construction view: the party plus its node and initial sends. *)
type 'm party_view = {
  v_node : 'm Bca_netsim.Node.t;
  v_initial : 'm list;
  v_party : party;
}

type 'm built = {
  b_coin : Coin.t;
  b_exec : 'm Async.t;
  b_parties : party array;
}

type 'r spec_handler = {
  handle :
    'm.
    wire:'m Bca_wire.Wire.codec ->
    mk_instance:(seed:int64 -> inputs:Value.t array -> 'm built) ->
    'r;
}

(* The six-way match is done once; everything seed-dependent (coin,
   threshold keys, per-party state) lives behind [mk_instance], so a
   handler can assemble any number of independent instances of the same
   stack - all sharing the message type and wire codec.  [run_custom] is
   the one-instance special case. *)
let with_spec (type r) ?(tracer = Bca_obs.Trace.null) spec ~cfg ~(handler : r spec_handler) :
    (r, string) Stdlib.result =
  let n = cfg.Types.n in
  let degree = default_coin_degree spec ~t:cfg.Types.t in
  let assemble (type m) ~(wire : m Bca_wire.Wire.codec)
      ~(mk_coin : seed:int64 -> Coin.t)
      (mk_parties :
        coin:Coin.t -> seed:int64 -> inputs:Value.t array -> Types.pid -> m party_view) : r =
    let mk_instance ~seed ~inputs =
      if Array.length inputs <> n then invalid_arg "inputs must have length n";
      let coin = mk_coin ~seed:(Int64.add seed 0x5EEDL) in
      if Bca_obs.Trace.enabled tracer then
        Coin.set_observer coin (fun ~round ~pid value ->
            Bca_obs.Trace.emit tracer (Bca_obs.Event.Coin_reveal { pid; round; value }));
      let parties = Array.init n (mk_parties ~coin ~seed ~inputs) in
      let exec =
        Async.create_traced ~tracer ~n ~make:(fun pid ->
            let p = parties.(pid) in
            (p.v_node, List.map (fun m -> Bca_netsim.Node.Broadcast m) p.v_initial))
      in
      { b_coin = coin; b_exec = exec; b_parties = Array.map (fun p -> p.v_party) parties }
    in
    handler.handle ~wire ~mk_instance
  in
  try
    match spec with
    | Crash_strong ->
      Types.check_crash_resilience cfg;
      Ok
        (assemble ~wire:Wirefmt.crash_strong
           ~mk_coin:(fun ~seed -> Coin.create Coin.Strong ~n ~degree ~seed)
           (fun ~coin ~seed:_ ~inputs pid ->
             let params =
               { Crash_strong_stack.cfg; mode = `Crash; coin; bca_params = (fun ~round:_ -> cfg) }
             in
             let t, initial = Crash_strong_stack.create params ~me:pid ~input:inputs.(pid) in
             { v_node = Crash_strong_stack.node t;
               v_initial = initial;
               v_party =
                 { committed = (fun () -> Crash_strong_stack.committed t);
                   commit_round = (fun () -> Crash_strong_stack.commit_round t);
                   round = (fun () -> Crash_strong_stack.current_round t);
                   phase = (fun () -> Crash_strong_stack.current_phase t) } }))
    | Crash_weak _ | Crash_local ->
      Types.check_crash_resilience cfg;
      let kind =
        match spec with
        | Crash_weak eps -> Coin.Eps eps
        | _ -> Coin.Local
      in
      Ok
        (assemble ~wire:Wirefmt.crash_weak
           ~mk_coin:(fun ~seed -> Coin.create kind ~n ~degree ~seed)
           (fun ~coin ~seed:_ ~inputs pid ->
             let params =
               { Crash_weak_stack.cfg; mode = `Crash; coin; bca_params = (fun ~round:_ -> cfg) }
             in
             let t, initial = Crash_weak_stack.create params ~me:pid ~input:inputs.(pid) in
             { v_node = Crash_weak_stack.node t;
               v_initial = initial;
               v_party =
                 { committed = (fun () -> Crash_weak_stack.committed t);
                   commit_round = (fun () -> Crash_weak_stack.commit_round t);
                   round = (fun () -> Crash_weak_stack.current_round t);
                   phase = (fun () -> Crash_weak_stack.current_phase t) } }))
    | Byz_strong ->
      Types.check_byz_resilience cfg;
      Ok
        (assemble ~wire:Wirefmt.byz_strong
           ~mk_coin:(fun ~seed -> Coin.create Coin.Strong ~n ~degree ~seed)
           (fun ~coin ~seed:_ ~inputs pid ->
             let params =
               { Byz_strong_stack.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) }
             in
             let t, initial = Byz_strong_stack.create params ~me:pid ~input:inputs.(pid) in
             { v_node = Byz_strong_stack.node t;
               v_initial = initial;
               v_party =
                 { committed = (fun () -> Byz_strong_stack.committed t);
                   commit_round = (fun () -> Byz_strong_stack.commit_round t);
                   round = (fun () -> Byz_strong_stack.current_round t);
                   phase = (fun () -> Byz_strong_stack.current_phase t) } }))
    | Byz_weak eps ->
      Types.check_byz_resilience cfg;
      Ok
        (assemble ~wire:Wirefmt.byz_weak
           ~mk_coin:(fun ~seed -> Coin.create (Coin.Eps eps) ~n ~degree ~seed)
           (fun ~coin ~seed:_ ~inputs pid ->
             let params =
               { Byz_weak_stack.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) }
             in
             let t, initial = Byz_weak_stack.create params ~me:pid ~input:inputs.(pid) in
             { v_node = Byz_weak_stack.node t;
               v_initial = initial;
               v_party =
                 { committed = (fun () -> Byz_weak_stack.committed t);
                   commit_round = (fun () -> Byz_weak_stack.commit_round t);
                   round = (fun () -> Byz_weak_stack.current_round t);
                   phase = (fun () -> Byz_weak_stack.current_phase t) } }))
    | Byz_tsig ->
      Types.check_byz_resilience cfg;
      Ok
        (assemble ~wire:Wirefmt.byz_tsig
           ~mk_coin:(fun ~seed -> Coin.create Coin.Strong ~n ~degree ~seed)
           (fun ~coin ~seed ~inputs ->
             let setup, keys = Threshold.setup ~n ~seed:(Int64.add seed 0xC4F7L) in
             fun pid ->
               let bca_params ~round =
                 { Bca_tsig.cfg; setup; key = keys.(pid); id = Printf.sprintf "aba/%d" round }
               in
               let params = { Byz_tsig_stack.cfg; mode = `Byz; coin; bca_params } in
               let t, initial = Byz_tsig_stack.create params ~me:pid ~input:inputs.(pid) in
               { v_node = Byz_tsig_stack.node t;
                 v_initial = initial;
                 v_party =
                   { committed = (fun () -> Byz_tsig_stack.committed t);
                     commit_round = (fun () -> Byz_tsig_stack.commit_round t);
                     round = (fun () -> Byz_tsig_stack.current_round t);
                     phase = (fun () -> Byz_tsig_stack.current_phase t) } }))
  with Invalid_argument msg -> Error msg

let run_custom (type r) ?(seed = 0xB0CA1L) ?(tracer = Bca_obs.Trace.null) spec ~cfg ~inputs
    ~(driver : r driver) : (r, string) Stdlib.result =
  if Array.length inputs <> cfg.Types.n then Error "inputs must have length n"
  else
    with_spec ~tracer spec ~cfg
      ~handler:
        { handle =
            (fun ~wire ~mk_instance ->
              let b = mk_instance ~seed ~inputs in
              driver.drive ~coin:b.b_coin ~wire b.b_exec b.b_parties) }

type 'm instance = {
  i_id : int;
  i_seed : int64;
  i_coin : Coin.t;
  i_exec : 'm Async.t;
  i_parties : party array;
}

type 'r many_driver = {
  drive_many : 'm. wire:'m Bca_wire.Wire.codec -> 'm instance array -> 'r;
}

let run_custom_many (type r) ?(tracer = Bca_obs.Trace.null) spec ~cfg ~seeds ~inputs
    ~(driver : r many_driver) : (r, string) Stdlib.result =
  if Array.length seeds < 1 then Error "run_custom_many: no instances"
  else if Array.length seeds <> Array.length inputs then
    Error "run_custom_many: seeds and inputs length mismatch"
  else if Array.exists (fun iv -> Array.length iv <> cfg.Types.n) inputs then
    Error "inputs must have length n"
  else
    with_spec ~tracer spec ~cfg
      ~handler:
        { handle =
            (fun ~wire ~mk_instance ->
              let insts =
                Array.mapi
                  (fun k seed ->
                    let b = mk_instance ~seed ~inputs:inputs.(k) in
                    { i_id = k;
                      i_seed = seed;
                      i_coin = b.b_coin;
                      i_exec = b.b_exec;
                      i_parties = b.b_parties })
                  seeds
              in
              driver.drive_many ~wire insts) }

let random_run_driver ~seed : (result, string) Stdlib.result driver =
  { drive =
      (fun ~coin:_ ~wire:_ exec parties ->
        let rng = Rng.create seed in
        match Async.run exec (Async.random_scheduler rng) with
        | `All_terminated ->
          let commits =
            Array.map
              (fun p ->
                match p.committed () with
                | Some v -> v
                | None -> invalid_arg "terminated without commit")
              parties
          in
          let value = commits.(0) in
          if Array.for_all (Value.equal value) commits then
            Ok
              { value;
                commits;
                deliveries = Async.deliveries exec;
                rounds = Array.fold_left (fun acc p -> max acc (p.round ())) 0 parties }
          else Error "agreement violated (bug)"
        | `Quiescent -> Error "network quiesced before termination (liveness bug)"
        | `Limit -> Error "delivery limit reached before termination"
        | `Stopped -> Error "scheduler stopped")
  }

let run ?(seed = 0xB0CA1L) spec ~cfg ~inputs =
  match run_custom ~seed spec ~cfg ~inputs ~driver:(random_run_driver ~seed) with
  | Ok r -> r
  | Error _ as e -> e

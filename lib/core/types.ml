module Value = Bca_util.Value

type pid = int

type cfg = { n : int; t : int }

let cfg ~n ~t =
  if n <= 0 then invalid_arg "Types.cfg: n must be positive";
  if t < 0 || t >= n then invalid_arg "Types.cfg: need 0 <= t < n";
  { n; t }

let quorum cfg = Bca_util.Quorum.available ~n:cfg.n ~t:cfg.t

let check_crash_resilience cfg =
  if cfg.n < Bca_util.Quorum.supermajority ~t:cfg.t then
    invalid_arg
      (Printf.sprintf "crash resilience requires n >= 2t+1 (got n=%d t=%d)" cfg.n cfg.t)

let check_byz_resilience cfg =
  (* lint: allow quorum -- n >= 3t+1 is the resilience precondition on the configuration, not a message-counting threshold *)
  if cfg.n < (3 * cfg.t) + 1 then
    invalid_arg
      (Printf.sprintf "Byzantine resilience requires n >= 3t+1 (got n=%d t=%d)" cfg.n cfg.t)

type cvalue = Val of Value.t | Bot

let cvalue_equal a b =
  match (a, b) with
  | Val x, Val y -> Value.equal x y
  | Bot, Bot -> true
  | Val _, Bot | Bot, Val _ -> false

let cvalue_compare a b =
  match (a, b) with
  | Val x, Val y -> Bca_util.Value.compare x y
  | Bot, Bot -> 0
  | Bot, Val _ -> -1
  | Val _, Bot -> 1

let pp_cvalue ppf = function
  | Val v -> Value.pp ppf v
  | Bot -> Format.pp_print_string ppf "⊥"

type gdecision = G2 of Value.t | G1 of Value.t | G0

let gdecision_equal a b =
  match (a, b) with
  | G2 x, G2 y | G1 x, G1 y -> Value.equal x y
  | G0, G0 -> true
  | (G2 _ | G1 _ | G0), _ -> false

let pp_gdecision ppf = function
  | G2 v -> Format.fprintf ppf "(%a, grade 2)" Value.pp v
  | G1 v -> Format.fprintf ppf "(%a, grade 1)" Value.pp v
  | G0 -> Format.pp_print_string ppf "(⊥, grade 0)"

let gdecision_value = function G2 v | G1 v -> Val v | G0 -> Bot

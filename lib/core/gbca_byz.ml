module Value = Bca_util.Value
module Quorum = Bca_util.Quorum

type msg =
  | MEcho of Value.t
  | MEcho2 of Value.t
  | MEcho3 of Types.cvalue
  | MEcho4 of Types.cvalue
  | MEcho5 of Types.cvalue

let pp_msg ppf = function
  | MEcho v -> Format.fprintf ppf "echo(%a)" Value.pp v
  | MEcho2 v -> Format.fprintf ppf "echo2(%a)" Value.pp v
  | MEcho3 cv -> Format.fprintf ppf "echo3(%a)" Types.pp_cvalue cv
  | MEcho4 cv -> Format.fprintf ppf "echo4(%a)" Types.pp_cvalue cv
  | MEcho5 cv -> Format.fprintf ppf "echo5(%a)" Types.pp_cvalue cv

type params = Types.cfg

type t = {
  cfg : Types.cfg;
  me : Types.pid;
  echoes : Value.t Quorum.t;
  echo2s : Value.t Quorum.t;
  echo3s : Types.cvalue Quorum.t;
  echo4s : Types.cvalue Quorum.t;
  echo5s : Types.cvalue Quorum.t;
  mutable my_echoes : Value.t list;
  mutable approved : Value.t list;
  mutable sent_echo2 : bool;
  mutable echo3_sent : Types.cvalue option;
  mutable echo4_sent : Types.cvalue option;
  mutable echo5_sent : Types.cvalue option;
  mutable decision : Types.gdecision option;
}

let max_broadcast_steps = 6

let create cfg ~me =
  Types.check_byz_resilience cfg;
  { cfg;
    me;
    echoes = Quorum.create ();
    echo2s = Quorum.create ();
    echo3s = Quorum.create ();
    echo4s = Quorum.create ();
    echo5s = Quorum.create ();
    my_echoes = [];
    approved = [];
    sent_echo2 = false;
    echo3_sent = None;
    echo4_sent = None;
    echo5_sent = None;
    decision = None }

let start t ~input =
  if List.mem input t.my_echoes then []
  else begin
    t.my_echoes <- input :: t.my_echoes;
    [ MEcho input ]
  end

(* A "wait until (1) quorum for one non-bottom value / (2) n-t messages of
   any value and both values approved" stage, shared by the echo3, echo4 and
   echo5 rounds of Algorithm 6.  Returns the value to relay, once. *)
let stage_output t ~(prev : Types.cvalue Quorum.t) =
  let q = Types.quorum t.cfg in
  let value_quorum =
    List.find_opt (fun v -> Quorum.count prev (Types.Val v) >= q) Value.both
  in
  match value_quorum with
  | Some v -> Some (Types.Val v)
  | None ->
    if Quorum.senders prev >= q && List.length t.approved > 1 then Some Types.Bot
    else None

let progress t =
  let q = Types.quorum t.cfg in
  let tt = t.cfg.Types.t in
  let out = ref [] in
  (* Amplification (lines 3-4). *)
  List.iter
    (fun v ->
      if Quorum.count t.echoes v >= Quorum.plurality ~t:tt && not (List.mem v t.my_echoes) then begin
        t.my_echoes <- v :: t.my_echoes;
        out := !out @ [ MEcho v ]
      end)
    Value.both;
  (* Approval and the single echo2 vote (lines 5-7). *)
  List.iter
    (fun v ->
      if Quorum.count t.echoes v >= q && not (List.mem v t.approved) then begin
        t.approved <- v :: t.approved;
        if not t.sent_echo2 then begin
          t.sent_echo2 <- true;
          out := !out @ [ MEcho2 v ]
        end
      end)
    Value.both;
  (* echo2 -> echo3 (lines 8-12). *)
  if t.echo3_sent = None then begin
    let value_quorum =
      List.find_opt (fun v -> Quorum.count t.echo2s v >= q) Value.both
    in
    match value_quorum with
    | Some v ->
      t.echo3_sent <- Some (Types.Val v);
      out := !out @ [ MEcho3 (Types.Val v) ]
    | None ->
      if Quorum.senders t.echo2s >= q && List.length t.approved > 1 then begin
        t.echo3_sent <- Some Types.Bot;
        out := !out @ [ MEcho3 Types.Bot ]
      end
  end;
  (* echo3 -> echo4 (lines 13-17). *)
  if t.echo4_sent = None then begin
    match stage_output t ~prev:t.echo3s with
    | Some cv ->
      t.echo4_sent <- Some cv;
      out := !out @ [ MEcho4 cv ]
    | None -> ()
  end;
  (* echo4 -> echo5 (lines 18-22). *)
  if t.echo5_sent = None then begin
    match stage_output t ~prev:t.echo4s with
    | Some cv ->
      t.echo5_sent <- Some cv;
      out := !out @ [ MEcho5 cv ]
    | None -> ()
  end;
  (* Decision (lines 23-29), conditions tested in the pseudocode's order. *)
  if t.decision = None then begin
    let grade2 =
      List.find_opt (fun v -> Quorum.count t.echo5s (Types.Val v) >= q) Value.both
    in
    match grade2 with
    | Some v -> t.decision <- Some (Types.G2 v)
    | None ->
      let total_echo5 = Quorum.senders t.echo5s in
      let grade1 =
        if total_echo5 >= q && List.length t.approved > 1 then
          List.find_opt
            (fun v ->
              Quorum.count t.echo5s (Types.Val v) >= 1
              && Quorum.count t.echo4s (Types.Val v) >= Quorum.plurality ~t:tt)
            Value.both
        else None
      in
      (match grade1 with
      | Some v -> t.decision <- Some (Types.G1 v)
      | None ->
        if Quorum.count t.echo5s Types.Bot >= q && List.length t.approved > 1 then
          t.decision <- Some Types.G0)
  end;
  !out

let handle t ~from msg =
  (match msg with
  | MEcho v -> ignore (Quorum.add_value t.echoes ~pid:from v : bool)
  | MEcho2 v -> ignore (Quorum.add_first t.echo2s ~pid:from v : bool)
  | MEcho3 cv -> ignore (Quorum.add_first t.echo3s ~pid:from cv : bool)
  | MEcho4 cv -> ignore (Quorum.add_first t.echo4s ~pid:from cv : bool)
  | MEcho5 cv -> ignore (Quorum.add_first t.echo5s ~pid:from cv : bool));
  progress t

let decision t = t.decision

let phase t =
  if t.decision <> None then "decide"
  else if t.echo5_sent <> None then "echo5"
  else if t.echo4_sent <> None then "echo4"
  else if t.echo3_sent <> None then "echo3"
  else if t.sent_echo2 then "echo2"
  else if t.my_echoes <> [] then "echo"
  else "init"


let approved t = t.approved

let echo4_sent t = t.echo4_sent

let debug_copy t =
  { t with
    echoes = Quorum.copy t.echoes;
    echo2s = Quorum.copy t.echo2s;
    echo3s = Quorum.copy t.echo3s;
    echo4s = Quorum.copy t.echo4s;
    echo5s = Quorum.copy t.echo5s }

let debug_encode t =
  let v = Value.to_string in
  let cv = function Types.Val x -> v x | Types.Bot -> "b" in
  let g = function
    | Types.G2 x -> "2" ^ v x
    | Types.G1 x -> "1" ^ v x
    | Types.G0 -> "0"
  in
  let quorum pp entries =
    String.concat ","
      (List.sort String.compare (List.map (fun (p, x) -> Printf.sprintf "%d=%s" p (pp x)) entries))
  in
  let set xs = String.concat "" (List.sort String.compare (List.map v xs)) in
  Printf.sprintf "e[%s]f[%s]g[%s]h[%s]i[%s]my:%s ap:%s s2:%b s3:%s s4:%s s5:%s d:%s"
    (quorum v (Quorum.entries t.echoes))
    (quorum v (Quorum.entries t.echo2s))
    (quorum cv (Quorum.entries t.echo3s))
    (quorum cv (Quorum.entries t.echo4s))
    (quorum cv (Quorum.entries t.echo5s))
    (set t.my_echoes) (set t.approved) t.sent_echo2
    (match t.echo3_sent with Some c -> cv c | None -> "_")
    (match t.echo4_sent with Some c -> cv c | None -> "_")
    (match t.echo5_sent with Some c -> cv c | None -> "_")
    (match t.decision with Some d -> g d | None -> "_")

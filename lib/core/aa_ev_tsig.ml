module Value = Bca_util.Value
module Coin = Bca_coin.Coin
module Threshold = Bca_crypto.Threshold
module Quorum = Bca_util.Quorum

type msg =
  | Bca of int * Evbca_tsig.msg
  | Decide of int * Value.t * Threshold.signature

let pp_msg ppf = function
  | Bca (r, m) -> Format.fprintf ppf "r%d:%a" r Evbca_tsig.pp_msg m
  | Decide (r, v, _) -> Format.fprintf ppf "decide(r%d, %a, cert)" r Value.pp v

type params = {
  cfg : Types.cfg;
  coin : Coin.t;
  setup : Threshold.t;
  key : Threshold.key;
}

type t = {
  p : params;
  me : Types.pid;
  instances : (int, Evbca_tsig.t) Hashtbl.t;
  mutable round : int;
  mutable est : Value.t;
  mutable committed : Value.t option;
  mutable commit_round : int option;
  mutable sent_decide : bool;
  mutable terminated : bool;
}

let instance_for t round =
  match Hashtbl.find_opt t.instances round with
  | Some inst -> inst
  | None ->
    let inst =
      Evbca_tsig.create { Evbca_tsig.cfg = t.p.cfg; setup = t.p.setup; key = t.p.key; round }
        ~me:t.me
    in
    Hashtbl.replace t.instances round inst;
    inst

let wrap round msgs = List.map (fun m -> Bca (round, m)) msgs

(* Commit via the designated message (optimization 2): broadcast the
   echo3 certificate once; termination follows when it loops back. *)
let emit_decide t ~round v sigma =
  if t.committed = None then begin
    t.committed <- Some v;
    t.commit_round <- Some round
  end;
  if not t.sent_decide then begin
    t.sent_decide <- true;
    [ Decide (round, v, sigma) ]
  end
  else []

let rec try_advance t =
  if t.terminated then []
  else
    let inst = instance_for t t.round in
    match Evbca_tsig.decision inst with
    | None -> []
    | Some cv ->
      let r = t.round in
      let c = Coin.access t.p.coin ~round:r ~pid:t.me in
      let decide_out, ctx =
        match cv with
        | Types.Val v when Value.equal v c ->
          t.est <- v;
          let out =
            match Evbca_tsig.echo3_cert inst with
            | Some (v', sigma) when Value.equal v v' -> emit_decide t ~round:r v sigma
            | Some _ | None -> []
          in
          (* The committer keeps participating until its decide message
             loops back; it carries its certificate forward meanwhile. *)
          let ctx =
            match Evbca_tsig.echo3_cert inst with
            | Some (v', sigma) when Value.equal v v' -> Evbca_tsig.Carry (v, sigma)
            | Some _ | None -> Evbca_tsig.Fresh
          in
          (out, ctx)
        | Types.Val v ->
          t.est <- v;
          let ctx =
            match Evbca_tsig.echo3_cert inst with
            | Some (v', sigma) when Value.equal v v' -> Evbca_tsig.Carry (v, sigma)
            | Some _ | None -> Evbca_tsig.Fresh
          in
          ([], ctx)
        | Types.Bot ->
          t.est <- c;
          ([], Evbca_tsig.Fresh)
      in
      t.round <- t.round + 1;
      let next = instance_for t t.round in
      let starts = Evbca_tsig.start next ~input:t.est ~ctx in
      decide_out @ wrap t.round starts @ try_advance t

let create p ~me ~input =
  let t =
    { p;
      me;
      instances = Hashtbl.create 8;
      round = 1;
      est = input;
      committed = None;
      commit_round = None;
      sent_decide = false;
      terminated = false }
  in
  let inst = instance_for t 1 in
  let out = wrap 1 (Evbca_tsig.start inst ~input ~ctx:Evbca_tsig.Fresh) in
  (t, out)

let handle_decide t ~round v sigma =
  let valid =
    Threshold.verify t.p.setup ~tag:(Evbca_tsig.echo3_tag ~round v) sigma
    && Threshold.threshold_of sigma = Quorum.supermajority ~t:t.p.cfg.Types.t
    && Value.equal (Coin.access t.p.coin ~round ~pid:t.me) v
  in
  if not valid then []
  else begin
    let out = emit_decide t ~round v sigma in
    t.terminated <- true;
    out
  end

let handle t ~from msg =
  if t.terminated then []
  else
    match msg with
    | Decide (r, v, sigma) -> handle_decide t ~round:r v sigma
    | Bca (r, m) ->
      let inst = instance_for t r in
      let outs = wrap r (Evbca_tsig.handle inst ~from m) in
      outs @ try_advance t

let committed t = t.committed

let terminated t = t.terminated

let current_round t = t.round

let commit_round t = t.commit_round

let est t = t.est

let node t =
  Bca_netsim.Node.make
    ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
    ~terminated:(fun () -> t.terminated)
    ()

let instance t ~round = Hashtbl.find_opt t.instances round

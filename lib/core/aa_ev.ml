module Value = Bca_util.Value
module Quorum = Bca_util.Quorum
module Coin = Bca_coin.Coin

type msg = Bca of int * Evbca_byz.msg | Committed of Value.t

let pp_msg ppf = function
  | Bca (r, m) -> Format.fprintf ppf "r%d:%a" r Evbca_byz.pp_msg m
  | Committed v -> Format.fprintf ppf "committed(%a)" Value.pp v

type params = {
  cfg : Types.cfg;
  coin : Coin.t;
  optimize : bool;  (* false = every round starts fresh (ablation baseline) *)
}

type t = {
  p : params;
  me : Types.pid;
  instances : (int, Evbca_byz.t) Hashtbl.t;
  mutable round : int;
  mutable est : Value.t;
  mutable committed : Value.t option;
  mutable commit_round : int option;
  mutable sent_committed : bool;
  mutable terminated : bool;
  committed_msgs : Value.t Quorum.t;
}

let instance_for t round =
  match Hashtbl.find_opt t.instances round with
  | Some inst -> inst
  | None ->
    let inst = Evbca_byz.create t.p.cfg ~me:t.me in
    Hashtbl.replace t.instances round inst;
    inst

let wrap round msgs = List.map (fun m -> Bca (round, m)) msgs

let commit t v =
  let out = ref [] in
  if t.committed = None then begin
    t.committed <- Some v;
    t.commit_round <- Some t.round
  end;
  if not t.sent_committed then begin
    t.sent_committed <- true;
    out := [ Committed v ]
  end;
  !out

(* The start context for the next round, from this round's outcome
   (optimizations 1, 3, 4 of Appendix G.1). *)
let next_ctx inst ~decision ~coin_value =
  match decision with
  | Types.Val v when Value.equal v coin_value ->
    { Evbca_byz.auto_approve = None; skip_echo = false; early_echo3 = Some v }
  | Types.Val _ ->
    let auto =
      if List.mem coin_value (Evbca_byz.approved inst) then Some coin_value else None
    in
    { Evbca_byz.auto_approve = auto; skip_echo = false; early_echo3 = None }
  | Types.Bot ->
    (* A bottom decision requires both values approved, so the coin value is
       approved and optimization 3 applies. *)
    { Evbca_byz.auto_approve = Some coin_value; skip_echo = true; early_echo3 = None }

let rec try_advance t =
  if t.terminated then []
  else
    let inst = instance_for t t.round in
    match Evbca_byz.decision inst with
    | None -> []
    | Some cv ->
      let c = Coin.access t.p.coin ~round:t.round ~pid:t.me in
      let commit_out =
        match cv with
        | Types.Val v when Value.equal v c ->
          t.est <- v;
          commit t v
        | Types.Val v ->
          t.est <- v;
          []
        | Types.Bot ->
          t.est <- c;
          []
      in
      let ctx =
        if t.p.optimize then next_ctx inst ~decision:cv ~coin_value:c else Evbca_byz.fresh
      in
      t.round <- t.round + 1;
      let next = instance_for t t.round in
      let starts = Evbca_byz.start next ~input:t.est ~ctx in
      commit_out @ wrap t.round starts @ try_advance t

let create p ~me ~input =
  let t =
    { p;
      me;
      instances = Hashtbl.create 8;
      round = 1;
      est = input;
      committed = None;
      commit_round = None;
      sent_committed = false;
      terminated = false;
      committed_msgs = Quorum.create () }
  in
  let inst = instance_for t 1 in
  let out = wrap 1 (Evbca_byz.start inst ~input ~ctx:Evbca_byz.fresh) in
  (t, out)

let handle_committed t ~from v =
  ignore (Quorum.add_first t.committed_msgs ~pid:from v : bool);
  let tt = t.p.cfg.Types.t in
  let out = ref [] in
  List.iter
    (fun v' ->
      let c = Quorum.count t.committed_msgs v' in
      if c >= Quorum.plurality ~t:tt && t.committed = None then begin
        t.committed <- Some v';
        t.commit_round <- Some t.round;
        if not t.sent_committed then begin
          t.sent_committed <- true;
          out := !out @ [ Committed v' ]
        end
      end;
      if c >= Quorum.supermajority ~t:tt then t.terminated <- true)
    Value.both;
  !out

(* Optimization 1 is a standing rule, not a one-shot: whenever a past
   round's approvedVals gains that round's coin value (late echo arrivals),
   the approval propagates into the following round. *)
let propagate_approvals t =
  let out = ref [] in
  for r = 1 to t.round - 1 do
    let inst = instance_for t r in
    let c = Coin.access t.p.coin ~round:r ~pid:t.me in
    if List.mem c (Evbca_byz.approved inst) then begin
      let next = instance_for t (r + 1) in
      if not (List.mem c (Evbca_byz.approved next)) then
        out := !out @ wrap (r + 1) (Evbca_byz.external_approve next c)
    end
  done;
  !out

let handle t ~from msg =
  if t.terminated then []
  else
    match msg with
    | Committed v -> handle_committed t ~from v
    | Bca (r, m) ->
      let inst = instance_for t r in
      let outs = wrap r (Evbca_byz.handle inst ~from m) in
      let propagated = if t.p.optimize then propagate_approvals t else [] in
      outs @ propagated @ try_advance t

let committed t = t.committed

let terminated t = t.terminated

let current_round t = t.round

let commit_round t = t.commit_round

let est t = t.est

let node t =
  Bca_netsim.Node.make
    ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
    ~terminated:(fun () -> t.terminated)
    ()

let instance t ~round = Hashtbl.find_opt t.instances round

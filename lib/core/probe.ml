module Trace = Bca_obs.Trace
module Event = Bca_obs.Event

type t = {
  tracer : Trace.t;
  parties : Aba.party array;
  last_round : int array;
  last_phase : string array;
  commit_done : bool array;
}

let create ~tracer parties =
  let n = Array.length parties in
  let t =
    { tracer;
      parties;
      last_round = Array.make n 1;
      last_phase = Array.make n "init";
      commit_done = Array.make n false }
  in
  if Trace.enabled tracer then
    Array.iteri
      (fun pid _ -> Trace.emit tracer (Event.Round_enter { pid; round = 1 }))
      parties;
  t

let poll t =
  if Trace.enabled t.tracer then
    Array.iteri
      (fun pid p ->
        let r = p.Aba.round () in
        if r > t.last_round.(pid) then begin
          for round = t.last_round.(pid) + 1 to r do
            Trace.emit t.tracer (Event.Round_enter { pid; round })
          done;
          t.last_round.(pid) <- r;
          (* a new round's instance starts back at "init" *)
          t.last_phase.(pid) <- "init"
        end;
        let phase = p.Aba.phase () in
        if phase <> t.last_phase.(pid) then begin
          t.last_phase.(pid) <- phase;
          if phase <> "init" then Trace.emit t.tracer (Event.Quorum { pid; round = r; phase })
        end;
        if not t.commit_done.(pid) then
          match p.Aba.committed () with
          | Some value ->
            t.commit_done.(pid) <- true;
            let round = Option.value (p.Aba.commit_round ()) ~default:r in
            Trace.emit t.tracer (Event.Commit { pid; round; value })
          | None -> ())
      t.parties

module Value = Bca_util.Value
module Quorum = Bca_util.Quorum
module Coin = Bca_coin.Coin

module Make (G : Bca_intf.GBCA) = struct
  type msg = Gbca of int * G.msg | Committed of Value.t

  let pp_msg ppf = function
    | Gbca (r, m) -> Format.fprintf ppf "r%d:%a" r G.pp_msg m
    | Committed v -> Format.fprintf ppf "committed(%a)" Value.pp v

  type params = {
    cfg : Types.cfg;
    mode : [ `Crash | `Byz ];
    coin : Coin.t;
    bca_params : round:int -> G.params;
  }

  type t = {
    p : params;
    me : Types.pid;
    instances : (int, G.t) Hashtbl.t;
    mutable round : int;
    mutable est : Value.t;
    mutable committed : Value.t option;
    mutable commit_round : int option;
    mutable sent_committed : bool;
    mutable terminated : bool;
    committed_msgs : Value.t Quorum.t;
  }

  let instance_for t round =
    match Hashtbl.find_opt t.instances round with
    | Some inst -> inst
    | None ->
      let inst = G.create (t.p.bca_params ~round) ~me:t.me in
      Hashtbl.replace t.instances round inst;
      inst

  let wrap round msgs = List.map (fun m -> Gbca (round, m)) msgs

  let commit t v =
    let out = ref [] in
    if t.committed = None then begin
      t.committed <- Some v;
      t.commit_round <- Some t.round
    end;
    if not t.sent_committed then begin
      t.sent_committed <- true;
      out := [ Committed v ]
    end;
    (* Termination happens only upon *receiving* committed messages (the
       party's own broadcast loops back through the network), which is what
       makes the termination broadcast cost one communication step - the
       "+1" in every broadcast count of the paper. *)
    !out

  (* Algorithm 2's loop body. *)
  let rec try_advance t =
    if t.terminated then []
    else
      let inst = instance_for t t.round in
      match G.decision inst with
      | None -> []
      | Some g ->
        let c = Coin.access t.p.coin ~round:t.round ~pid:t.me in
        let commit_out =
          match g with
          | Types.G2 v ->
            t.est <- v;
            commit t v
          | Types.G1 v ->
            t.est <- v;
            []
          | Types.G0 ->
            t.est <- c;
            []
        in
        if t.terminated then commit_out
        else begin
          t.round <- t.round + 1;
          let next = instance_for t t.round in
          let starts = G.start next ~input:t.est in
          commit_out @ wrap t.round starts @ try_advance t
        end

  let create p ~me ~input =
    let t =
      { p;
        me;
        instances = Hashtbl.create 8;
        round = 1;
        est = input;
        committed = None;
        commit_round = None;
        sent_committed = false;
        terminated = false;
        committed_msgs = Quorum.create () }
    in
    let inst = instance_for t 1 in
    let out = wrap 1 (G.start inst ~input) in
    (t, out)

  let handle_committed t ~from v =
    ignore (Quorum.add_first t.committed_msgs ~pid:from v : bool);
    match t.p.mode with
    | `Crash ->
      if t.committed = None then begin
        t.committed <- Some v;
        t.commit_round <- Some t.round
      end;
      let out =
        if not t.sent_committed then begin
          t.sent_committed <- true;
          [ Committed v ]
        end
        else []
      in
      t.terminated <- true;
      out
    | `Byz ->
      let tt = t.p.cfg.Types.t in
      let out = ref [] in
      List.iter
        (fun v' ->
          let c = Quorum.count t.committed_msgs v' in
          if c >= Quorum.plurality ~t:tt && t.committed = None then begin
            t.committed <- Some v';
            t.commit_round <- Some t.round;
            if not t.sent_committed then begin
              t.sent_committed <- true;
              out := !out @ [ Committed v' ]
            end
          end;
          if c >= Quorum.supermajority ~t:tt then t.terminated <- true)
        Value.both;
      !out

  let handle t ~from msg =
    if t.terminated then []
    else
      match msg with
      | Committed v -> handle_committed t ~from v
      | Gbca (r, m) ->
        let inst = instance_for t r in
        let outs = wrap r (G.handle inst ~from m) in
        outs @ try_advance t

  let committed t = t.committed

  let terminated t = t.terminated

  let current_round t = t.round

  let est t = t.est

  let commit_round t = t.commit_round

  let node t =
    Bca_netsim.Node.make
      ~receive:(fun ~src m -> List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
      ~terminated:(fun () -> t.terminated)
      ()

  let instance t ~round = Hashtbl.find_opt t.instances round

  let current_phase t =
    match Hashtbl.find_opt t.instances t.round with
    | Some inst -> G.phase inst
    | None -> "init"
end

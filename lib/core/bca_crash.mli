(** Algorithm 3: Binding Crusader Agreement for crash faults (BCA-Crash).

    Weak-validity BCA tolerating [t < n/2] crashes, terminating in 2
    communication rounds (Theorem 4.1):

    + broadcast the input in a [val] message;
    + upon [n - t] val messages: echo the common value if they agree,
      else echo bottom;
    + upon [n - t] echo messages: decide the common value if they agree,
      else decide bottom.

    Satisfies agreement, weak validity, termination, and binding
    (Definition B.1); the binding witness is the unique non-bottom value
    that can still reach an [n - t] echo quorum (Lemma D.4). *)

type msg = MVal of Bca_util.Value.t | MEcho of Types.cvalue

include Bca_intf.BCA with type params = Types.cfg and type msg := msg

val echoed : t -> Types.cvalue option
(** The echo this party sent, if any - exposed for binding-witness checks in
    tests. *)

val val_count : t -> Bca_util.Value.t -> int
(** How many [val v] messages this party has received so far - exposed, with
    [echoed], for the binding-witness computation in tests: a party that has
    already received a [val] for the other value can never echo [v]. *)

val debug_copy : t -> t
(** Independent deep copy - the model checker clones configurations. *)

val debug_encode : t -> string
(** Canonical encoding of the full instance state (received quorums, echo,
    decision) - the model checker's configuration key. *)

module Value = Bca_util.Value
module Quorum = Bca_util.Quorum

type msg = MVal of Value.t | MEcho of Types.cvalue | MEcho2 of Types.cvalue

let pp_msg ppf = function
  | MVal v -> Format.fprintf ppf "val(%a)" Value.pp v
  | MEcho cv -> Format.fprintf ppf "echo(%a)" Types.pp_cvalue cv
  | MEcho2 cv -> Format.fprintf ppf "echo2(%a)" Types.pp_cvalue cv

type params = Types.cfg

type t = {
  cfg : Types.cfg;
  me : Types.pid;
  vals : Value.t Quorum.t;
  echoes : Types.cvalue Quorum.t;
  echo2s : Types.cvalue Quorum.t;
  mutable echoed : Types.cvalue option;
  mutable echo2_sent : Types.cvalue option;
  mutable decision : Types.gdecision option;
}

let max_broadcast_steps = 3

let create cfg ~me =
  Types.check_crash_resilience cfg;
  { cfg;
    me;
    vals = Quorum.create ();
    echoes = Quorum.create ();
    echo2s = Quorum.create ();
    echoed = None;
    echo2_sent = None;
    decision = None }

let start _t ~input = [ MVal input ]

(* Grade the echo2 quorum per lines 8-11: unanimity on a value decides it at
   grade 2 (or grade 0 for unanimous bottom); a mix containing some
   non-bottom v decides v at grade 1.  Two distinct non-bottom values cannot
   both appear (quorum intersection, Lemma E.1); if a misbehaving environment
   produces that anyway, we keep the decision total by preferring V0. *)
let grade_echo2s echo2s =
  match Quorum.all_equal echo2s with
  | Some (Types.Val v) -> Types.G2 v
  | Some Types.Bot -> Types.G0
  | None ->
    if Quorum.count echo2s (Types.Val Value.V0) > 0 then Types.G1 Value.V0
    else Types.G1 Value.V1

let progress t =
  let q = Types.quorum t.cfg in
  let out = ref [] in
  if t.echoed = None && Quorum.senders t.vals >= q then begin
    let echo =
      match Quorum.all_equal t.vals with Some v -> Types.Val v | None -> Types.Bot
    in
    t.echoed <- Some echo;
    out := !out @ [ MEcho echo ]
  end;
  if t.echo2_sent = None && Quorum.senders t.echoes >= q then begin
    let echo2 =
      match Quorum.all_equal t.echoes with Some cv -> cv | None -> Types.Bot
    in
    t.echo2_sent <- Some echo2;
    out := !out @ [ MEcho2 echo2 ]
  end;
  if t.decision = None && Quorum.senders t.echo2s >= q then
    t.decision <- Some (grade_echo2s t.echo2s);
  !out

let handle t ~from msg =
  (match msg with
  | MVal v -> ignore (Quorum.add_first t.vals ~pid:from v : bool)
  | MEcho cv -> ignore (Quorum.add_first t.echoes ~pid:from cv : bool)
  | MEcho2 cv -> ignore (Quorum.add_first t.echo2s ~pid:from cv : bool));
  progress t

let decision t = t.decision

let phase t =
  if t.decision <> None then "decide"
  else if t.echo2_sent <> None then "echo2"
  else if t.echoed <> None then "echo"
  else "init"


let echo2_sent t = t.echo2_sent

let debug_copy t =
  { t with
    vals = Quorum.copy t.vals;
    echoes = Quorum.copy t.echoes;
    echo2s = Quorum.copy t.echo2s }

let debug_encode t =
  let cv = function Types.Val v -> Value.to_string v | Types.Bot -> "b" in
  let quorum pp entries =
    String.concat ","
      (List.sort String.compare (List.map (fun (p, v) -> Printf.sprintf "%d=%s" p (pp v)) entries))
  in
  let g = function
    | Types.G2 v -> "2" ^ Value.to_string v
    | Types.G1 v -> "1" ^ Value.to_string v
    | Types.G0 -> "0"
  in
  Printf.sprintf "v[%s]e[%s]f[%s]s:%s s2:%s d:%s"
    (quorum Value.to_string (Quorum.entries t.vals))
    (quorum cv (Quorum.entries t.echoes))
    (quorum cv (Quorum.entries t.echo2s))
    (match t.echoed with Some c -> cv c | None -> "_")
    (match t.echo2_sent with Some c -> cv c | None -> "_")
    (match t.decision with Some d -> g d | None -> "_")

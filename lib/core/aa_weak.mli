(** Algorithm 2: Asynchronous Agreement with a weak coin (AA-epsilon).

    Rounds of Graded BCA followed by an epsilon-good coin flip:

    - grade 2: commit the value (graded agreement guarantees everyone else
      holds it at grade >= 1 and commits next round);
    - grade 1: adopt the value, do not commit;
    - grade 0 (bottom): adopt the coin.

    Graded binding makes the round succeed with probability >= epsilon even
    against an adaptive adversary: the bound value is fixed before the first
    coin access, and with probability epsilon the coin lands on its
    complement at every honest party (Theorem 3.6 / 3.7), after which
    Lemma C.2 commits everyone in one more round.

    Works with any epsilon-good coin, including the strong coin
    (epsilon = 1/2) and the local coin (epsilon = 2^-n).  Termination layer
    as in {!Aa_strong}. *)

module Make (G : Bca_intf.GBCA) : sig
  type msg = Gbca of int * G.msg | Committed of Bca_util.Value.t

  val pp_msg : Format.formatter -> msg -> unit

  type params = {
    cfg : Types.cfg;
    mode : [ `Crash | `Byz ];
    coin : Bca_coin.Coin.t;
    bca_params : round:int -> G.params;
  }

  type t

  val create : params -> me:Types.pid -> input:Bca_util.Value.t -> t * msg list
  val handle : t -> from:Types.pid -> msg -> msg list
  val committed : t -> Bca_util.Value.t option
  val terminated : t -> bool
  val current_round : t -> int

  val est : t -> Bca_util.Value.t
  (** The party's current estimate - protocol state is visible to the
      adaptive adversary (Section 2), so attack drivers may read it. *)

  val commit_round : t -> int option
  val node : t -> msg Bca_netsim.Node.t
  val instance : t -> round:int -> G.t option

  val current_phase : t -> string
  (** The phase label of the current round's GBCA instance (see
      [Bca_intf.GBCA.phase]); ["init"] before the instance exists.
      Observability hook. *)
end

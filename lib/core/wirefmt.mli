(** Binary body codecs for every protocol message type (the message ↔ wire
    mapping).

    [Bca_wire.Wire] owns the framing (magic, version, CRC, sender pid,
    length prefix); this module owns what goes {e inside} a frame for each
    of the six protocol stacks, plus the coin-share and threshold-signature
    payloads they embed.  One codec per agreement-layer message type:

    - {!crash_strong} - [Aa_strong.Make (Bca_crash)] (Algorithm 1 + 3)
    - {!crash_weak} - [Aa_weak.Make (Gbca_crash)] (Algorithm 2 + 5); the
      local-coin stack shares this message type, hence this codec
    - {!byz_strong} - [Aa_strong.Make (Bca_byz)] (Algorithm 1 + 4)
    - {!byz_weak} - [Aa_weak.Make (Gbca_byz)] (Algorithm 2 + 6)
    - {!byz_tsig} - [Aa_strong.Make (Bca_tsig)] (Algorithm 1 + 7), whose
      messages carry threshold-signature shares and certificates
    - {!coin_share} - standalone Cachin-Kursawe-Shoup coin shares
      ([Bca_coin.Threshold_coin]), for deployments that ship them as their
      own frames instead of piggybacking

    Body grammar (all integers as described in [Bca_wire.Wire.Put]): every
    body starts with a one-byte message tag; agreement-layer BCA messages
    follow with the round number as a varint (the frame's instance/round
    tag), then the constructor's fields.  Values are one byte (0/1),
    crusader values one byte (0 = bottom, 1/2 = value), threshold shares
    are [varint signer, string tag, 8-byte MAC], signatures are
    [string tag, varint k, 8-byte certificate].

    Decoding is total: any non-conforming body raises
    [Bca_wire.Wire.Get.Malformed] inside the codec, which
    [Bca_wire.Wire.decode_body] converts to a typed error.  Round-trip and
    adversarial-input properties are fuzzed in [test/test_wire.ml]. *)

val crash_strong : Aa_strong.Make(Bca_crash).msg Bca_wire.Wire.codec
(** Codec id 1. *)

val crash_weak : Aa_weak.Make(Gbca_crash).msg Bca_wire.Wire.codec
(** Codec id 2 (also the [crash-local] stack). *)

val byz_strong : Aa_strong.Make(Bca_byz).msg Bca_wire.Wire.codec
(** Codec id 3. *)

val byz_weak : Aa_weak.Make(Gbca_byz).msg Bca_wire.Wire.codec
(** Codec id 4. *)

val byz_tsig : Aa_strong.Make(Bca_tsig).msg Bca_wire.Wire.codec
(** Codec id 5. *)

val coin_share : Bca_coin.Threshold_coin.share Bca_wire.Wire.codec
(** Codec id 6. *)

val codec_id_of_spec_name : string -> int option
(** The codec id a stack name ([crash-strong], [crash-weak], [crash-local],
    [byz-strong], [byz-weak], [byz-tsig]) frames with - what a transport
    multiplexer needs to route without instantiating message types. *)

val body_words : 'm Bca_wire.Wire.codec -> 'm -> int
(** Paper-style word count of one message: its encoded body rounded up to
    64-bit words.  Encodes into one process-wide scratch buffer (reused,
    never returned), so the accounting path allocates nothing per call.
    Not reentrant; bench/accounting use. *)

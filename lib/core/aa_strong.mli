(** Algorithm 1: Asynchronous Agreement with a strong coin (AA-1/2).

    Proceeds in rounds of one BCA instance followed by a strong common-coin
    flip:

    - BCA decided [v] and the coin equals [v]: commit [v];
    - BCA decided [v] but the coin differs: keep [v] as the next estimate;
    - BCA decided bottom: adopt the coin as the next estimate.

    Binding is what makes this adaptively secure: by the time the first
    honest party finishes its BCA (and hence before a [>= t]-unpredictable
    coin can be revealed), the adversary is already bound to the only
    non-bottom value the round can produce, so each round has probability at
    least 1/2 of making progress (Theorem 3.3 / 3.5).

    Termination layer (Section 3, "a note on termination"): a committing
    party broadcasts [committed(v)].  In [`Crash] mode one such message
    allows a party to commit, rebroadcast, and terminate.  In [`Byz] mode a
    party commits at [t + 1] matching messages and terminates at [2t + 1].

    Plugging in {!Bca_byz} yields ABA for [n >= 3t + 1] (Theorem 3.3);
    {!Bca_crash} yields ACA for [n >= 2t + 1] (Theorem 3.5); {!Bca_tsig}
    yields the authenticated protocol of Theorem 6.2's framework. *)

module Make (B : Bca_intf.BCA) : sig
  type msg =
    | Bca of int * B.msg  (** round-tagged BCA instance message *)
    | Committed of Bca_util.Value.t  (** termination-layer broadcast *)

  val pp_msg : Format.formatter -> msg -> unit

  type params = {
    cfg : Types.cfg;
    mode : [ `Crash | `Byz ];  (** termination-layer thresholds *)
    coin : Bca_coin.Coin.t;  (** must be a strong coin *)
    bca_params : round:int -> B.params;  (** per-round instance parameters *)
  }

  type t

  val create : params -> me:Types.pid -> input:Bca_util.Value.t -> t * msg list
  (** Start the agreement; returns the round-1 broadcasts. *)

  val handle : t -> from:Types.pid -> msg -> msg list

  val committed : t -> Bca_util.Value.t option
  (** The committed (decided) value, once any. *)

  val terminated : t -> bool

  val current_round : t -> int
  (** The round this party is currently executing (1-based). *)

  val est : t -> Bca_util.Value.t
  (** The party's current estimate - protocol state is visible to the
      adaptive adversary (Section 2), so attack drivers may read it. *)

  val commit_round : t -> int option
  (** The round in which this party committed, for round accounting. *)

  val node : t -> msg Bca_netsim.Node.t
  (** Wrap as a simulator node. *)

  val instance : t -> round:int -> B.t option
  (** Read a round's BCA instance - test oracles and adversaries only. *)

  val current_phase : t -> string
  (** The phase label of the current round's BCA instance (see
      [Bca_intf.BCA.phase]); ["init"] before the instance exists.
      Observability hook. *)
end

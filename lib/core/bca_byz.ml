module Value = Bca_util.Value
module Quorum = Bca_util.Quorum

type msg = MEcho of Value.t | MEcho2 of Value.t | MEcho3 of Types.cvalue

let pp_msg ppf = function
  | MEcho v -> Format.fprintf ppf "echo(%a)" Value.pp v
  | MEcho2 v -> Format.fprintf ppf "echo2(%a)" Value.pp v
  | MEcho3 cv -> Format.fprintf ppf "echo3(%a)" Types.pp_cvalue cv

type params = Types.cfg

type t = {
  cfg : Types.cfg;
  me : Types.pid;
  echoes : Value.t Quorum.t;  (* per (sender, value): amplification is a second echo *)
  echo2s : Value.t Quorum.t;  (* first per sender *)
  echo3s : Types.cvalue Quorum.t;  (* first per sender *)
  mutable my_echoes : Value.t list;  (* echo values this party already sent *)
  mutable approved : Value.t list;
  mutable sent_echo2 : bool;
  mutable echo3_sent : Types.cvalue option;
  mutable decision : Types.cvalue option;
}

let max_broadcast_steps = 4

let create cfg ~me =
  Types.check_byz_resilience cfg;
  { cfg;
    me;
    echoes = Quorum.create ();
    echo2s = Quorum.create ();
    echo3s = Quorum.create ();
    my_echoes = [];
    approved = [];
    sent_echo2 = false;
    echo3_sent = None;
    decision = None }

let start t ~input =
  (* The input echo may coincide with an amplification already sent while
     waiting to start (Algorithm 4 sends each echo value at most once). *)
  if List.mem input t.my_echoes then []
  else begin
    t.my_echoes <- input :: t.my_echoes;
    [ MEcho input ]
  end

(* Evaluate every clause of Algorithm 4 that may have become enabled. Clauses
   guard themselves against re-firing, so a full re-scan after each delivery
   is exactly the pseudocode's "upon"/"wait until" semantics. *)
let progress t =
  let q = Types.quorum t.cfg in
  let out = ref [] in
  (* Lines 3-4: amplification. *)
  List.iter
    (fun v ->
      if Quorum.count t.echoes v >= Quorum.plurality ~t:t.cfg.Types.t && not (List.mem v t.my_echoes)
      then begin
        t.my_echoes <- v :: t.my_echoes;
        out := !out @ [ MEcho v ]
      end)
    Value.both;
  (* Lines 5-7: approval and the single echo2 vote. *)
  List.iter
    (fun v ->
      if Quorum.count t.echoes v >= q && not (List.mem v t.approved) then begin
        t.approved <- v :: t.approved;
        if not t.sent_echo2 then begin
          t.sent_echo2 <- true;
          out := !out @ [ MEcho2 v ]
        end
      end)
    Value.both;
  (* Lines 8-12: wait until |approvedVals| > 1, or an echo2 quorum for one
     value; the pseudocode tests condition (1) first. *)
  if t.echo3_sent = None then begin
    if List.length t.approved > 1 then begin
      t.echo3_sent <- Some Types.Bot;
      out := !out @ [ MEcho3 Types.Bot ]
    end
    else
      List.iter
        (fun v ->
          if t.echo3_sent = None && Quorum.count t.echo2s v >= q then begin
            t.echo3_sent <- Some (Types.Val v);
            out := !out @ [ MEcho3 (Types.Val v) ]
          end)
        Value.both
  end;
  (* Lines 13-17: decision; condition (1) tested first. *)
  if t.decision = None then begin
    if List.length t.approved > 1 && Quorum.senders t.echo3s >= q then
      t.decision <- Some Types.Bot
    else
      List.iter
        (fun v ->
          if t.decision = None && Quorum.count t.echo3s (Types.Val v) >= q then
            t.decision <- Some (Types.Val v))
        Value.both
  end;
  !out

let handle t ~from msg =
  (match msg with
  | MEcho v -> ignore (Quorum.add_value t.echoes ~pid:from v : bool)
  | MEcho2 v -> ignore (Quorum.add_first t.echo2s ~pid:from v : bool)
  | MEcho3 cv -> ignore (Quorum.add_first t.echo3s ~pid:from cv : bool));
  progress t

let decision t = t.decision

let phase t =
  if t.decision <> None then "decide"
  else if t.echo3_sent <> None then "echo3"
  else if t.sent_echo2 then "echo2"
  else if t.my_echoes <> [] then "echo"
  else "init"


let approved t = t.approved

let debug_copy t =
  { t with
    echoes = Quorum.copy t.echoes;
    echo2s = Quorum.copy t.echo2s;
    echo3s = Quorum.copy t.echo3s;
    my_echoes = t.my_echoes;
    approved = t.approved }

let debug_encode t =
  let v = Value.to_string in
  let cv = function Types.Val x -> v x | Types.Bot -> "b" in
  let quorum pp entries =
    String.concat ","
      (List.sort String.compare (List.map (fun (p, x) -> Printf.sprintf "%d=%s" p (pp x)) entries))
  in
  let set xs = String.concat "" (List.sort String.compare (List.map v xs)) in
  Printf.sprintf "e[%s]f[%s]g[%s]my:%s ap:%s s2:%b s3:%s d:%s"
    (quorum v (Quorum.entries t.echoes))
    (quorum v (Quorum.entries t.echo2s))
    (quorum cv (Quorum.entries t.echo3s))
    (set t.my_echoes) (set t.approved) t.sent_echo2
    (match t.echo3_sent with Some c -> cv c | None -> "_")
    (match t.decision with Some c -> cv c | None -> "_")

let echo3_sent t = t.echo3_sent

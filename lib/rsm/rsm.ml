module Types = Bca_core.Types
module Acs = Bca_acs.Acs
module Trace = Bca_obs.Trace
module Event = Bca_obs.Event

type tx = string

type msg = Epoch of int * Acs.msg

let pp_msg ppf (Epoch (e, m)) = Format.fprintf ppf "e%d:%a" e Acs.pp_msg m

type batch_policy = { max_txs : int; max_bytes : int }

let default_batch = { max_txs = 64; max_bytes = 64 * 1024 }

type params = {
  cfg : Types.cfg;
  coin_seed : int64;
  epochs : int;
  window : int;
  batch : batch_policy;
  buffer_slack : int;
  buffer_cap : int;
}

let mk_params ~cfg ~coin_seed ~epochs ?(window = 4) ?(batch = default_batch)
    ?buffer_slack ?(buffer_cap = 4096) () =
  let buffer_slack = match buffer_slack with Some s -> s | None -> window in
  { cfg; coin_seed; epochs; window; batch; buffer_slack; buffer_cap }

(* Batches travel inside ACS proposals as netstring concatenations
   ("<len>:<bytes>..."), so transactions are arbitrary bytes - no reserved
   separator.  Decoding is total: a malformed tail (only a Byzantine
   proposer produces one) yields the well-formed prefix, identically at
   every honest replica. *)
let encode_batch txs =
  let buf = Buffer.create 256 in
  List.iter
    (fun tx ->
      Buffer.add_string buf (string_of_int (String.length tx));
      Buffer.add_char buf ':';
      Buffer.add_string buf tx)
    txs;
  Buffer.contents buf

let decode_batch s =
  let len = String.length s in
  let rec go i acc =
    if i >= len then List.rev acc
    else
      match String.index_from_opt s i ':' with
      | None -> List.rev acc
      | Some j -> (
        match int_of_string_opt (String.sub s i (j - i)) with
        | Some n when n >= 0 && j + 1 + n <= len ->
          go (j + 1 + n) (String.sub s (j + 1) n :: acc)
        | _ -> List.rev acc)
  in
  go 0 []

type inst = { acs : Acs.t; proposed : tx list }

type t = {
  p : params;
  me : Types.pid;
  instances : (int, inst) Hashtbl.t;  (* epoch -> in-flight / finished ACS *)
  buffered : (int, (Types.pid * Acs.msg) list * int) Hashtbl.t;
      (* ahead-of-window epochs: reverse-order messages plus their count *)
  mutable next_epoch : int;  (* epochs < next_epoch have an instance *)
  mutable commit_next : int;  (* next epoch to commit, in order *)
  mutable pend_front : tx list;  (* submission queue, FIFO order... *)
  mutable pend_back : tx list;  (* ...plus its reversed tail *)
  mutable pending_n : int;
  seen : (tx, unit) Hashtbl.t;  (* every tx ever submitted here *)
  committed_txs : (tx, unit) Hashtbl.t;
  mutable log : tx list;  (* committed, reverse order *)
  mutable terminated : bool;
  on_commit : (epoch:int -> tx list -> unit) option;
  tracer : Trace.t;
}

let wrap e msgs = List.map (fun m -> Epoch (e, m)) msgs

let acs_params t e =
  { Acs.cfg = t.p.cfg; coin_seed = Int64.add t.p.coin_seed (Int64.of_int (101 * e)) }

(* Cut the next proposal off the submission queue: up to [max_txs]
   transactions and, past the first, at most [max_bytes] payload bytes. *)
let cut_batch t =
  let rec go acc n bytes =
    if n >= t.p.batch.max_txs then List.rev acc
    else begin
      if t.pend_front = [] then begin
        t.pend_front <- List.rev t.pend_back;
        t.pend_back <- []
      end;
      match t.pend_front with
      | [] -> List.rev acc
      | tx :: tl ->
        let bytes' = bytes + String.length tx in
        if n > 0 && bytes' > t.p.batch.max_bytes then List.rev acc
        else begin
          t.pend_front <- tl;
          t.pending_n <- t.pending_n - 1;
          go (tx :: acc) (n + 1) bytes'
        end
    end
  in
  go [] 0 0

let start_epoch t e =
  let batch = cut_batch t in
  let acs, init = Acs.create (acs_params t e) ~me:t.me ~proposal:(encode_batch batch) in
  Hashtbl.replace t.instances e { acs; proposed = batch };
  t.next_epoch <- e + 1;
  let replayed =
    match Hashtbl.find_opt t.buffered e with
    | Some (msgs, _) ->
      Hashtbl.remove t.buffered e;
      List.concat_map (fun (from, m) -> Acs.handle acs ~from m) (List.rev msgs)
    | None -> []
  in
  wrap e (init @ replayed)

(* Open every epoch the sliding window admits: [commit_next + window)
   bounds the in-flight slots, [p.epochs] the log's length. *)
let rec try_open t =
  if
    (not t.terminated)
    && t.next_epoch < t.p.epochs
    && t.next_epoch < t.commit_next + t.p.window
  then begin
    (* bind first: [@] evaluates right to left, and the recursive call
       must see the advanced [next_epoch] *)
    let opened = start_epoch t t.next_epoch in
    opened @ try_open t
  end
  else []

let commit t inst slots =
  let e = t.commit_next in
  let fresh = ref [] in
  List.iter
    (fun (_, payload) ->
      List.iter
        (fun tx ->
          if not (Hashtbl.mem t.committed_txs tx) then begin
            Hashtbl.replace t.committed_txs tx ();
            t.log <- tx :: t.log;
            fresh := tx :: !fresh
          end)
        (decode_batch payload))
    slots;
  let fresh = List.rev !fresh in
  (* A rejected proposal is re-queued at the head, minus anything that
     another replica's accepted batch already carried in. *)
  if not (List.exists (fun (j, _) -> j = t.me) slots) then begin
    let rejected =
      List.filter (fun tx -> not (Hashtbl.mem t.committed_txs tx)) inst.proposed
    in
    t.pend_front <- rejected @ t.pend_front;
    t.pending_n <- t.pending_n + List.length rejected
  end;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer
      (Event.Slot_commit { pid = t.me; slot = e; txs = List.length fresh });
  (match t.on_commit with Some f -> f ~epoch:e fresh | None -> ());
  t.commit_next <- e + 1;
  if t.commit_next >= t.p.epochs then t.terminated <- true

(* Commit finished epochs in log order and slide the window forward. *)
let rec advance t =
  if t.terminated then []
  else begin
    let opened = try_open t in
    match Hashtbl.find_opt t.instances t.commit_next with
    | None -> opened
    | Some inst -> (
      match Acs.output inst.acs with
      | None -> opened
      | Some slots ->
        commit t inst slots;
        opened @ advance t)
  end

let create ?on_commit ?(tracer = Trace.null) p ~me =
  Types.check_byz_resilience p.cfg;
  if p.epochs <= 0 then invalid_arg "Rsm.create: epochs must be positive";
  if p.window <= 0 then invalid_arg "Rsm.create: window must be positive";
  if p.batch.max_txs <= 0 || p.batch.max_bytes <= 0 then
    invalid_arg "Rsm.create: batch bounds must be positive";
  if p.buffer_slack < 0 || p.buffer_cap <= 0 then
    invalid_arg "Rsm.create: buffer bounds out of range";
  let t =
    { p;
      me;
      instances = Hashtbl.create 16;
      buffered = Hashtbl.create 8;
      next_epoch = 0;
      commit_next = 0;
      pend_front = [];
      pend_back = [];
      pending_n = 0;
      seen = Hashtbl.create 64;
      committed_txs = Hashtbl.create 64;
      log = [];
      terminated = false;
      on_commit;
      tracer }
  in
  let init = try_open t in
  (t, init)

let submit t tx =
  if Hashtbl.mem t.seen tx || Hashtbl.mem t.committed_txs tx then false
  else begin
    Hashtbl.replace t.seen tx ();
    t.pend_back <- tx :: t.pend_back;
    t.pending_n <- t.pending_n + 1;
    true
  end

let shed t e =
  if Trace.enabled t.tracer then
    Trace.emit t.tracer (Event.Buffer_drop { pid = t.me; epoch = e })

(* Bounded ahead-of-window buffering: a message for an epoch beyond
   [commit_next + window + buffer_slack], or for an epoch whose buffer
   already holds [buffer_cap] messages, is shed (with a [Buffer_drop]
   event) rather than held - a laggard catches up from the senders'
   retransmission-free protocol state, not from our memory. *)
let buffer_future t ~from e m =
  if e >= t.commit_next + t.p.window + t.p.buffer_slack then shed t e
  else begin
    let prev, count =
      match Hashtbl.find_opt t.buffered e with Some x -> x | None -> ([], 0)
    in
    if count >= t.p.buffer_cap then shed t e
    else Hashtbl.replace t.buffered e ((from, m) :: prev, count + 1)
  end

let handle t ~from msg =
  if t.terminated then []
  else begin
    let (Epoch (e, m)) = msg in
    let out =
      match Hashtbl.find_opt t.instances e with
      | Some inst -> wrap e (Acs.handle inst.acs ~from m)
      | None ->
        if e >= t.next_epoch && e < t.p.epochs then buffer_future t ~from e m;
        []
    in
    out @ advance t
  end

let log t = List.rev t.log

let committed_epochs t = t.commit_next

let in_flight t = t.next_epoch - t.commit_next

let pending_txs t = t.pending_n

let buffered_msgs t =
  Bca_util.Det.fold_commutative (fun _ (_, count) acc -> acc + count) t.buffered 0

let terminated t = t.terminated

let node t =
  Bca_netsim.Node.make
    ~receive:(fun ~src m ->
      List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
    ~terminated:(fun () -> t.terminated)
    ()

(** Binary body codecs for the replicated-log layer, in the
    {!Bca_core.Wirefmt} scheme (total decoding, [Get.Malformed] on any
    malformed body, codec ids disjoint from the core's 1-6):

    - {!rsm} (id 7) - windowed replicated-log messages ({!Rsm.msg})
    - {!mvba} (id 8) - multivalued agreement messages ({!Mvba.Byz})

    Both nest the core [byz_strong] body (codec 3) for their per-slot
    binary-agreement traffic, so a slot message costs exactly the framing
    ([epoch] / [slot] varints + one tag byte) over its binary form. *)

(** The functor application {!Mvba.Byz} abbreviates; [Mv.msg] is equal to
    [Mvba.Byz.msg] by the applicative-functor path. *)
module Mv : module type of Mvba.Make (Mvslot)

val rsm : Rsm.msg Bca_wire.Wire.codec
(** Codec id 7. *)

val mvba : Mv.msg Bca_wire.Wire.codec
(** Codec id 8. *)

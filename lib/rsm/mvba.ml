module Value = Bca_util.Value
module Types = Bca_core.Types
module Bracha = Bca_baselines.Bracha

type payload = string

(* FNV-1a, 64-bit: the value digest the selection layer agrees over.  Pure
   and dependency-free; collision resistance is not load-bearing - the
   common subset fixes the payloads themselves, digests only give the
   selection rule a compact, deterministic sort key. *)
let digest (s : payload) : int64 =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

module type SLOT = sig
  type t
  type msg

  val pp_msg : Format.formatter -> msg -> unit

  val create :
    cfg:Types.cfg ->
    coin_seed:int64 ->
    me:Types.pid ->
    input:Value.t ->
    t * msg list

  val handle : t -> from:Types.pid -> msg -> msg list
  val committed : t -> Value.t option
  val terminated : t -> bool
end

module Make (S : SLOT) = struct
  type msg = Rbc of int * payload Bracha.msg | Slot of int * S.msg

  let pp_msg ppf = function
    | Rbc (j, m) ->
      Format.fprintf ppf "rbc%d:%a" j (Bracha.pp_msg Format.pp_print_string) m
    | Slot (j, m) -> Format.fprintf ppf "slot%d:%a" j S.pp_msg m

  type params = { cfg : Types.cfg; coin_seed : int64 }

  type slot = {
    rbc : payload Bracha.t;
    mutable aba : S.t option;  (* started once the input is known *)
    mutable buffered : (Types.pid * S.msg) list;  (* reverse order *)
  }

  type t = {
    p : params;
    me : Types.pid;
    slots : slot array;
    mutable zero_filled : bool;
    mutable decision : payload option;
  }

  let wrap j msgs = List.map (fun m -> Slot (j, m)) msgs

  let slot_seed t j = Int64.add t.p.coin_seed (Int64.of_int (31 * j))

  let start_slot t j input =
    let slot = t.slots.(j) in
    match slot.aba with
    | Some _ -> []
    | None ->
      let aba, init =
        S.create ~cfg:t.p.cfg ~coin_seed:(slot_seed t j) ~me:t.me ~input
      in
      slot.aba <- Some aba;
      let replayed =
        List.concat_map
          (fun (from, m) -> S.handle aba ~from m)
          (List.rev slot.buffered)
      in
      slot.buffered <- [];
      wrap j (init @ replayed)

  let slot_accepted slot =
    match slot.aba with
    | Some aba -> (
      match S.committed aba with Some v -> Value.to_bool v | None -> false)
    | None -> false

  let decided_one t =
    Array.fold_left (fun acc slot -> if slot_accepted slot then acc + 1 else acc) 0 t.slots

  (* ACS input rules: 1 on RBC delivery, 0 for the rest once n - t slots
     accepted. *)
  let progress t =
    let out = ref [] in
    Array.iteri
      (fun j slot ->
        if slot.aba = None && Bracha.delivered slot.rbc <> None then
          out := !out @ start_slot t j Value.V1)
      t.slots;
    if (not t.zero_filled) && decided_one t >= Types.quorum t.p.cfg then begin
      t.zero_filled <- true;
      Array.iteri
        (fun j slot -> if slot.aba = None then out := !out @ start_slot t j Value.V0)
        t.slots
    end;
    !out

  let create p ~me ~proposal =
    Types.check_byz_resilience p.cfg;
    let t =
      { p;
        me;
        slots =
          Array.init p.cfg.Types.n (fun j ->
              { rbc = Bracha.create p.cfg ~me ~sender:j; aba = None; buffered = [] });
        zero_filled = false;
        decision = None }
    in
    let init =
      List.map (fun m -> Rbc (me, m)) (Bracha.broadcast t.slots.(me).rbc proposal)
    in
    (t, init)

  let accepted t =
    let all_committed =
      Array.for_all
        (fun slot ->
          match slot.aba with Some aba -> S.committed aba <> None | None -> false)
        t.slots
    in
    if not all_committed then None
    else begin
      let acc = ref [] in
      let missing = ref false in
      Array.iteri
        (fun j slot ->
          if slot_accepted slot then
            match Bracha.delivered slot.rbc with
            | Some payload -> acc := (j, payload) :: !acc
            | None -> missing := true)
        t.slots;
      if !missing then None
      else Some (List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc)
    end

  (* Multivalued selection: the payload backing the most accepted slots.
     The accepted set has >= n - t slots, so >= t + 1 carry an honest
     proposal while any other payload holds at most t slots - under
     unanimous honest inputs the unanimous value wins strictly, which is
     the validity the monitor enforces.  Ties (possible only without
     unanimity) break on the smaller digest, then the smaller payload, so
     every honest party - holding the same common subset - selects
     identically. *)
  let select slots =
    let tally = Hashtbl.create 8 in
    List.iter
      (fun (_, payload) ->
        let d = digest payload in
        let count =
          match Hashtbl.find_opt tally (d, payload) with Some c -> c | None -> 0
        in
        Hashtbl.replace tally (d, payload) (count + 1))
      slots;
    let best =
      List.fold_left
        (fun best ((_, payload), count) ->
          match best with
          | Some (_, bc) when bc >= count -> best
          | _ -> Some (payload, count))
        None
        (Bca_util.Det.bindings
           ~compare:(fun (d1, p1) (d2, p2) ->
             match Int64.compare d1 d2 with 0 -> String.compare p1 p2 | c -> c)
           tally)
    in
    match best with Some (payload, _) -> payload | None -> ""

  let update_decision t =
    if t.decision = None then
      match accepted t with
      | Some slots when slots <> [] -> t.decision <- Some (select slots)
      | Some _ | None -> ()

  let all_slots_terminated t =
    Array.for_all
      (fun slot ->
        match slot.aba with Some aba -> S.terminated aba | None -> false)
      t.slots

  (* The slot index [j] arrives on the wire: a faulty peer can name
     any slot, so it is validated before any array access and the
     message dropped when out of range. *)
  let slot_of t j =
    if Bca_util.Bounds.index_ok ~len:(Array.length t.slots) j then Some t.slots.(j) else None

  let handle t ~from msg =
    if t.decision <> None && all_slots_terminated t then []
    else begin
      let out =
        match msg with
        | Rbc (j, m) -> (
          match slot_of t j with
          | Some slot -> List.map (fun m -> Rbc (j, m)) (Bracha.handle slot.rbc ~from m)
          | None -> [])
        | Slot (j, m) -> (
          match slot_of t j with
          | None -> []
          | Some slot -> (
            match slot.aba with
            | Some aba -> wrap j (S.handle aba ~from m)
            | None ->
              slot.buffered <- (from, m) :: slot.buffered;
              []))
      in
      let out = out @ progress t in
      update_decision t;
      out
    end

  let decided t = t.decision

  let terminated t = t.decision <> None && all_slots_terminated t

  let node t =
    Bca_netsim.Node.make
      ~receive:(fun ~src m ->
        List.map (fun m -> Bca_netsim.Node.Broadcast m) (handle t ~from:src m))
      ~terminated:(fun () -> terminated t)
      ()
end

module Byz = Make (Mvslot)

module Wire = Bca_wire.Wire
module Put = Wire.Put
module Get = Wire.Get
module Bracha = Bca_baselines.Bracha
module Acs = Bca_acs.Acs

(* The same functor application {!Mvba.Byz} exposes; the applicative path
   makes [Mv.msg] equal to [Mvba.Byz.msg] by construction. *)
module Mv = Mvba.Make (Mvslot)

let malformed fmt = Printf.ksprintf (fun msg -> raise (Get.Malformed msg)) fmt

(* Both codecs nest the core byz-strong body ({!Bca_core.Wirefmt}) for
   their per-slot binary-agreement messages: an RSM epoch slot and an MVBA
   proposer slot run the same AA-1/2-over-BCA-Byz engine, so their wire
   bodies are shared with codec 3 rather than re-specified. *)
let byz_body = Bca_core.Wirefmt.byz_strong

(* ---- shared field encodings ---------------------------------------- *)

(* [tag:u8] (1 initial / 2 echo / 3 ready) then the payload bytes. *)
let put_bracha buf = function
  | Bracha.Initial p ->
    Put.u8 buf 1;
    Put.string buf p
  | Bracha.Echo p ->
    Put.u8 buf 2;
    Put.string buf p
  | Bracha.Ready p ->
    Put.u8 buf 3;
    Put.string buf p

let get_bracha g =
  match Get.u8 g with
  | 1 -> Bracha.Initial (Get.string g)
  | 2 -> Bracha.Echo (Get.string g)
  | 3 -> Bracha.Ready (Get.string g)
  | t -> malformed "unknown bracha tag %d" t

(* ---- codecs --------------------------------------------------------- *)

(* Body grammar: [epoch:varint] [tag:u8] [slot:varint] then the slot body -
   tag 1 an RBC message, tag 2 a byz-strong (codec 3) body. *)
let rsm : Rsm.msg Wire.codec =
  { Wire.id = 7;
    name = "rsm";
    enc =
      (fun buf -> function
        | Rsm.Epoch (e, Acs.Rbc (j, m)) ->
          Put.varint buf e;
          Put.u8 buf 1;
          Put.varint buf j;
          put_bracha buf m
        | Rsm.Epoch (e, Acs.Aba (j, m)) ->
          Put.varint buf e;
          Put.u8 buf 2;
          Put.varint buf j;
          byz_body.Wire.enc buf m);
    dec =
      (fun g ->
        let e = Get.varint g in
        match Get.u8 g with
        | 1 ->
          let j = Get.varint g in
          Rsm.Epoch (e, Acs.Rbc (j, get_bracha g))
        | 2 ->
          let j = Get.varint g in
          Rsm.Epoch (e, Acs.Aba (j, byz_body.Wire.dec g))
        | t -> malformed "unknown rsm tag %d" t) }

(* Body grammar: [tag:u8] [slot:varint] then the slot body, as above. *)
let mvba : Mv.msg Wire.codec =
  { Wire.id = 8;
    name = "mvba";
    enc =
      (fun buf -> function
        | Mv.Rbc (j, m) ->
          Put.u8 buf 1;
          Put.varint buf j;
          put_bracha buf m
        | Mv.Slot (j, Mvslot.Slot_aba m) ->
          Put.u8 buf 2;
          Put.varint buf j;
          byz_body.Wire.enc buf m);
    dec =
      (fun g ->
        match Get.u8 g with
        | 1 ->
          let j = Get.varint g in
          Mv.Rbc (j, get_bracha g)
        | 2 ->
          let j = Get.varint g in
          Mv.Slot (j, Mvslot.Slot_aba (byz_body.Wire.dec g))
        | t -> malformed "unknown mvba tag %d" t) }

module Types = Bca_core.Types
module Coin = Bca_coin.Coin
module Aba = Bca_core.Aa_strong.Make (Bca_core.Bca_byz)

type msg = Slot_aba of Aba.msg

let pp_msg ppf (Slot_aba m) = Aba.pp_msg ppf m

type t = Aba.t

let wrap = List.map (fun m -> Slot_aba m)

let create ~cfg ~coin_seed ~me ~input =
  let coin =
    Coin.create Coin.Strong ~n:cfg.Types.n ~degree:cfg.Types.t ~seed:coin_seed
  in
  let p = { Aba.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) } in
  let t, init = Aba.create p ~me ~input in
  (t, wrap init)

let handle t ~from (Slot_aba m) = wrap (Aba.handle t ~from m)

let committed = Aba.committed

let terminated = Aba.terminated

(** Multivalued Byzantine agreement from the binary ABA stacks.

    The lift follows the Mizrahi Erbes-Wattenhofer recipe of reducing
    multivalued agreement to crusader-style dissemination plus binary
    agreement: every party reliably broadcasts its proposal (the Bracha
    echo/ready exchange is exactly a crusader agreement per proposer -
    honest parties deliver one payload or nothing, never two), one binary
    ABA slot per proposer decides which broadcasts enter the common
    subset, and a deterministic {e digest selection} over the accepted
    subset picks the single decided value.

    Properties ([n >= 3t + 1], with [S] any correct binary ABA):

    - {b Termination}: every honest party decides (the common subset
      delivers >= n - t slots).
    - {b Agreement}: the accepted subset and its payloads are identical at
      every honest party, and selection is a pure function of them.
    - {b Validity}: if every honest party proposes [v], then at least
      [t + 1] accepted slots carry [v] while any other payload backs at
      most [t] slots - the plurality rule decides [v].  In general the
      decided value is always some party's proposal.

    The selection key is the payload's 64-bit {!digest}: slots are tallied
    per digest, the most-backed digest wins, ties break on the smaller
    digest then payload.  {!Mvslot} supplies the default slot (AA-1/2 over
    BCA-Byz with a strong coin); the functor form keeps the slot engine
    swappable for the other stacks. *)

module Types = Bca_core.Types
module Bracha = Bca_baselines.Bracha

type payload = string

val digest : payload -> int64
(** FNV-1a (64-bit) of the payload - the deterministic selection key. *)

(** What {!Make} needs from a binary agreement slot. *)
module type SLOT = sig
  type t
  type msg

  val pp_msg : Format.formatter -> msg -> unit

  val create :
    cfg:Types.cfg ->
    coin_seed:int64 ->
    me:Types.pid ->
    input:Bca_util.Value.t ->
    t * msg list

  val handle : t -> from:Types.pid -> msg -> msg list
  val committed : t -> Bca_util.Value.t option
  val terminated : t -> bool
end

module Make (S : SLOT) : sig
  type msg = Rbc of int * payload Bracha.msg | Slot of int * S.msg

  val pp_msg : Format.formatter -> msg -> unit

  type params = { cfg : Types.cfg; coin_seed : int64 }

  type t

  val create : params -> me:Types.pid -> proposal:payload -> t * msg list
  val handle : t -> from:Types.pid -> msg -> msg list

  val accepted : t -> (int * payload) list option
  (** The common subset, once complete: accepted (proposer, payload)
      pairs sorted by proposer, identical at every honest party. *)

  val decided : t -> payload option
  (** The selected multivalued decision, once any. *)

  val terminated : t -> bool

  val node : t -> msg Bca_netsim.Node.t
end

module Byz : module type of Make (Mvslot)
(** The default instantiation: {!Mvslot} (AA-1/2 over BCA-Byz). *)

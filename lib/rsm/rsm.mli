(** Pipelined replicated log: a sliding window of concurrent common
    subsets.

    The sequential HoneyBadger loop (one ACS at a time) leaves the network
    idle during each epoch's agreement tail.  This executor keeps a window
    of [window] epochs in flight at once: epoch [e] may start as soon as
    epoch [e - window] has committed, so the RBC traffic of late epochs
    overlaps the ABA tail of early ones.  Commits still happen strictly in
    epoch order - an epoch's transactions are applied only once every
    earlier epoch has been applied - so the log keeps the atomic-broadcast
    prefix property: every honest replica's log is a prefix of every
    other's.

    Batching: each replica queues client transactions ({!submit}, with
    deterministic duplicate suppression) and cuts a proposal off the queue
    when an epoch opens, bounded by [batch.max_txs] transactions and
    [batch.max_bytes] payload bytes.  A transaction submitted to several
    replicas is committed exactly once: commit-time dedup is a pure
    function of the common log, hence identical everywhere.  A replica
    whose proposal is rejected by the common subset re-queues the
    not-yet-committed remainder at the head of its queue.

    Messages for epochs beyond the local window are buffered - boundedly.
    Anything past [window + buffer_slack] epochs ahead, or beyond
    [buffer_cap] messages for one epoch, is shed with a [Buffer_drop]
    observability event: a Byzantine flood of far-future traffic cannot
    grow memory without bound. *)

module Types = Bca_core.Types
module Acs = Bca_acs.Acs

type tx = string

type msg = Epoch of int * Acs.msg

val pp_msg : Format.formatter -> msg -> unit

type batch_policy = {
  max_txs : int;  (** proposal cut: max transactions per batch *)
  max_bytes : int;  (** proposal cut: max payload bytes per batch *)
}

val default_batch : batch_policy
(** 64 transactions / 64 KiB. *)

type params = {
  cfg : Types.cfg;
  coin_seed : int64;
  epochs : int;  (** log length: number of slots to commit *)
  window : int;  (** concurrent in-flight epochs (1 = sequential) *)
  batch : batch_policy;
  buffer_slack : int;  (** epochs past the window still buffered *)
  buffer_cap : int;  (** max buffered messages per future epoch *)
}

val mk_params :
  cfg:Types.cfg ->
  coin_seed:int64 ->
  epochs:int ->
  ?window:int ->
  ?batch:batch_policy ->
  ?buffer_slack:int ->
  ?buffer_cap:int ->
  unit ->
  params
(** Defaults: [window = 4], [batch = default_batch],
    [buffer_slack = window], [buffer_cap = 4096]. *)

val encode_batch : tx list -> string
(** Netstring concatenation ([<len>:<bytes>...]); transactions are
    arbitrary bytes. *)

val decode_batch : string -> tx list
(** Total inverse of {!encode_batch}: a malformed tail (Byzantine
    proposer) yields the well-formed prefix, never an exception. *)

type t

val create :
  ?on_commit:(epoch:int -> tx list -> unit) ->
  ?tracer:Bca_obs.Trace.t ->
  params ->
  me:Types.pid ->
  t * msg list
(** [on_commit] fires once per epoch, in epoch order, with the
    deduplicated transactions that epoch appended.  With [tracer], every
    applied epoch emits [Slot_commit] and every shed message
    [Buffer_drop]. *)

val submit : t -> tx -> bool
(** Queue a transaction for a future proposal.  [false] if it is a
    duplicate of an earlier submission or of an already-committed
    transaction (dropped). *)

val handle : t -> from:Types.pid -> msg -> msg list

val log : t -> tx list
(** The committed transaction sequence so far.  Prefix-consistent across
    honest replicas, duplicate-free. *)

val committed_epochs : t -> int
(** Epochs applied so far (the monitor's progress measure). *)

val in_flight : t -> int
(** Open epochs not yet committed ([<= window]). *)

val pending_txs : t -> int
(** Transactions queued and not yet proposed. *)

val buffered_msgs : t -> int
(** Messages currently held for ahead-of-window epochs ([<=] roughly
    [(window + buffer_slack) * buffer_cap] by construction). *)

val terminated : t -> bool
(** All [epochs] slots committed. *)

val node : t -> msg Bca_netsim.Node.t

(** The default binary-agreement slot under {!Mvba}: AA-1/2 over BCA-Byz
    with a strong per-slot coin - the same engine {!Bca_acs.Acs} runs, made
    a standalone module so {!Mvba.Make} can be instantiated with it (and so
    the wire codec can name its message variant).

    The single-constructor wrapper keeps the slot's message type an
    ordinary variant of this module, which is what the wire-coverage lint
    rule cross-checks against the codec in [lib/rsm/wirefmt.ml]. *)

module Types = Bca_core.Types
module Aba : module type of Bca_core.Aa_strong.Make (Bca_core.Bca_byz)

type msg = Slot_aba of Aba.msg

val pp_msg : Format.formatter -> msg -> unit

type t

val create :
  cfg:Types.cfg ->
  coin_seed:int64 ->
  me:Types.pid ->
  input:Bca_util.Value.t ->
  t * msg list

val handle : t -> from:Types.pid -> msg -> msg list

val committed : t -> Bca_util.Value.t option
(** The slot's binary decision, once any. *)

val terminated : t -> bool

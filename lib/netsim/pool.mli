(** Resizable array with O(1) swap-removal.

    The in-flight message pool of the asynchronous executor: the scheduler
    (the adversary's delay power) removes arbitrary elements, so removal must
    not be linear in the pool size.  Order of elements is not preserved
    across removals; schedulers that care about arrival order use the
    envelope's sequence number instead. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** [get t i] for [0 <= i < length t]. *)

val set : 'a t -> int -> 'a -> unit
(** [set t i x] replaces the element in slot [i] without disturbing slot
    order - in-place envelope rewrites (corruption hooks) that must not
    perturb any scheduler's view of the pool. *)

val swap_remove : 'a t -> int -> 'a
(** Remove and return element [i], moving the last element into its slot. *)

val to_list : 'a t -> 'a list

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keep only elements satisfying the predicate. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit
(** [iteri f t] calls [f i x] for every element [x] at slot [i], in slot
    order - the order {!get} indexes and schedulers see. *)

val find_index : ('a -> bool) -> 'a t -> int option

type pid = Node.pid

type 'm envelope = { eid : int; src : pid; dst : pid; payload : 'm; depth : int }

type 'm t = {
  n : int;
  nodes : 'm Node.t array;
  alive : bool array;
  pool : 'm envelope Pool.t;
  (* eid -> current pool slot, so delivery by id and post-choice removal are
     O(1) instead of a pool scan.  Built lazily on first use (deliver_eid,
     FIFO or legacy scheduling) and kept in sync from then on; the pure
     index-picking schedulers never pay for its maintenance. *)
  mutable slot_of_eid : (int, int) Hashtbl.t option;
  (* min-eid heap, built lazily on the first FIFO pick and maintained on
     every enqueue from then on; entries for already-removed eids are left
     in place and skipped on pop (lazy deletion) *)
  mutable fifo_heap : Bca_util.Min_heap.t option;
  depths : int array;
  mutable next_eid : int;
  mutable delivered : int;
  mutable observer : ('m envelope -> unit) option;
  tracer : Bca_obs.Trace.t;
  (* cached [Trace.enabled tracer]: instrumentation sites test one bool and
     skip event construction entirely when tracing is off *)
  tracing : bool;
}

let add_env t env =
  if t.tracing then
    Bca_obs.Trace.emit t.tracer
      (Bca_obs.Event.Send { eid = env.eid; src = env.src; dst = env.dst; depth = env.depth });
  Pool.add t.pool env;
  (match t.slot_of_eid with
  | Some ix -> Hashtbl.replace ix env.eid (Pool.length t.pool - 1)
  | None -> ());
  match t.fifo_heap with
  | Some h -> Bca_util.Min_heap.push h env.eid
  | None -> ()

let ensure_slot_index t =
  match t.slot_of_eid with
  | Some ix -> ix
  | None ->
    let ix = Hashtbl.create (max 64 (2 * Pool.length t.pool)) in
    Pool.iteri (fun i env -> Hashtbl.replace ix env.eid i) t.pool;
    t.slot_of_eid <- Some ix;
    ix

(* O(1): swap-remove slot [i] and re-index the envelope that filled it. *)
let remove_slot t i =
  let env = Pool.swap_remove t.pool i in
  (match t.slot_of_eid with
  | Some ix ->
    Hashtbl.remove ix env.eid;
    if i < Pool.length t.pool then Hashtbl.replace ix (Pool.get t.pool i).eid i
  | None -> ());
  env

let enqueue t ~src emits =
  (* injected traffic may carry an out-of-band source id *)
  let src_depth = if src >= 0 && src < t.n then t.depths.(src) else 0 in
  let depth = src_depth + 1 in
  List.iter
    (fun emit ->
      match emit with
      | Node.Broadcast m ->
        for dst = 0 to t.n - 1 do
          add_env t { eid = t.next_eid; src; dst; payload = m; depth };
          t.next_eid <- t.next_eid + 1
        done
      | Node.Unicast (dst, m) ->
        add_env t { eid = t.next_eid; src; dst; payload = m; depth };
        t.next_eid <- t.next_eid + 1)
    emits

let create_traced ~tracer ~n ~make =
  let nodes = Array.make n Node.silent in
  let t =
    { n;
      nodes;
      alive = Array.make n true;
      pool = Pool.create ();
      slot_of_eid = None;
      fifo_heap = None;
      depths = Array.make n 0;
      next_eid = 0;
      delivered = 0;
      observer = None;
      tracer;
      tracing = Bca_obs.Trace.enabled tracer }
  in
  let initial = Array.init n (fun pid -> make pid) in
  Array.iteri (fun pid (node, _) -> t.nodes.(pid) <- node) initial;
  Array.iteri (fun pid (_, emits) -> enqueue t ~src:pid emits) initial;
  t

let create ~n ~make = create_traced ~tracer:Bca_obs.Trace.null ~n ~make

let n t = t.n

let inflight t = Pool.to_list t.pool

let inflight_count t = Pool.length t.pool

let pool_size t = Pool.length t.pool

let pool_get t i = Pool.get t.pool i

let deliveries t = t.delivered

let crash t pid =
  if t.tracing then Bca_obs.Trace.emit t.tracer (Bca_obs.Event.Crash { pid });
  t.alive.(pid) <- false

let crashed t pid = not t.alive.(pid)

let revive t pid = t.alive.(pid) <- true

let drop_outgoing t ~src ~keep =
  (* when tracing, record the victims before the destructive filter *)
  if t.tracing then
    Pool.iter
      (fun env ->
        if env.src = src && not (keep env) then
          Bca_obs.Trace.emit t.tracer
            (Bca_obs.Event.Drop { eid = env.eid; src = env.src; dst = env.dst }))
      t.pool;
  Pool.filter_in_place t.pool (fun env -> env.src <> src || keep env);
  (* slots shifted arbitrarily: rebuild the eid index if it exists.  The
     FIFO heap keeps its stale entries; lazy deletion skips them. *)
  match t.slot_of_eid with
  | None -> ()
  | Some ix ->
    Hashtbl.reset ix;
    Pool.iteri (fun i env -> Hashtbl.replace ix env.eid i) t.pool

let inject t ~src emits = enqueue t ~src emits

(* ---- fault primitives (chaos layer) ------------------------------- *)
(* These are raw adversary powers over the in-flight pool.  They do not
   enforce any fault-model policy themselves: the chaos layer
   (Bca_adversary.Chaos) gates them so that honest links only suffer
   bounded unfairness.  All of them locate envelopes by id through the
   slot index, so they are O(1) and safe to interleave with any
   scheduler (the FIFO heap tolerates both removals, via lazy deletion,
   and in-place rewrites, which keep the eid). *)

let drop_eid t eid =
  match Hashtbl.find_opt (ensure_slot_index t) eid with
  | None -> None
  | Some i ->
    let env = remove_slot t i in
    if t.tracing then
      Bca_obs.Trace.emit t.tracer
        (Bca_obs.Event.Drop { eid = env.eid; src = env.src; dst = env.dst });
    Some env

let duplicate_eid t eid =
  match Hashtbl.find_opt (ensure_slot_index t) eid with
  | None -> false
  | Some i ->
    let env = Pool.get t.pool i in
    if t.tracing then
      Bca_obs.Trace.emit t.tracer (Bca_obs.Event.Duplicate { eid; copy = t.next_eid });
    add_env t { env with eid = t.next_eid };
    t.next_eid <- t.next_eid + 1;
    true

let redirect_eid t eid ~dst =
  if dst < 0 || dst >= t.n then invalid_arg "Async_exec.redirect_eid: dst out of range";
  match Hashtbl.find_opt (ensure_slot_index t) eid with
  | None -> false
  | Some i ->
    if t.tracing then Bca_obs.Trace.emit t.tracer (Bca_obs.Event.Redirect { eid; dst });
    Pool.set t.pool i { (Pool.get t.pool i) with dst };
    true

let swap_payloads t eid1 eid2 =
  let ix = ensure_slot_index t in
  match (Hashtbl.find_opt ix eid1, Hashtbl.find_opt ix eid2) with
  | Some i, Some j when eid1 <> eid2 ->
    if t.tracing then Bca_obs.Trace.emit t.tracer (Bca_obs.Event.Swap { eid1; eid2 });
    let a = Pool.get t.pool i and b = Pool.get t.pool j in
    Pool.set t.pool i { a with payload = b.payload };
    Pool.set t.pool j { b with payload = a.payload };
    true
  | _ -> false

let deliver_env t env =
  t.delivered <- t.delivered + 1;
  if t.tracing then
    Bca_obs.Trace.emit t.tracer
      (Bca_obs.Event.Deliver { eid = env.eid; src = env.src; dst = env.dst; depth = env.depth });
  (match t.observer with Some f -> f env | None -> ());
  if t.alive.(env.dst) then begin
    t.depths.(env.dst) <- max t.depths.(env.dst) env.depth;
    let emits = t.nodes.(env.dst).Node.receive ~src:env.src env.payload in
    if t.alive.(env.dst) then enqueue t ~src:env.dst emits
  end

let deliver_eid t eid =
  match Hashtbl.find_opt (ensure_slot_index t) eid with
  | None -> false
  | Some i ->
    let env = remove_slot t i in
    deliver_env t env;
    true

(* ---- replay -------------------------------------------------------- *)
(* Nodes are deterministic state machines and eids are assigned from a
   monotone counter, so a cluster rebuilt exactly as the original (same
   construction, same injections) plus the original run's action log is a
   complete description of the execution: re-applying the actions in order
   reproduces it bit for bit.  Non-action events (sends, protocol
   milestones, violations) are consequences and re-emerge on their own -
   which is what lets a replayed trace be compared to the original for
   identity. *)

let apply t (ev : Bca_obs.Event.t) =
  match ev with
  | Bca_obs.Event.Deliver { eid; _ } -> deliver_eid t eid
  | Bca_obs.Event.Drop { eid; _ } -> drop_eid t eid <> None
  | Bca_obs.Event.Duplicate { eid; copy } ->
    (* the copy's eid comes from [next_eid]; a mismatch means the replayed
       cluster has diverged from the one that produced the log *)
    t.next_eid = copy && duplicate_eid t eid
  | Bca_obs.Event.Redirect { eid; dst } ->
    dst >= 0 && dst < t.n && redirect_eid t eid ~dst
  | Bca_obs.Event.Swap { eid1; eid2 } -> swap_payloads t eid1 eid2
  | Bca_obs.Event.Crash { pid } ->
    pid >= 0 && pid < t.n
    && begin
         crash t pid;
         true
       end
  | Bca_obs.Event.Send _ | Bca_obs.Event.Round_enter _ | Bca_obs.Event.Quorum _
  | Bca_obs.Event.Coin_reveal _ | Bca_obs.Event.Commit _ | Bca_obs.Event.Violation _
  | Bca_obs.Event.Transport _ | Bca_obs.Event.Slot_commit _ | Bca_obs.Event.Buffer_drop _ ->
    (* not an action: nothing to apply *)
    true

let replay t events =
  let n = Array.length events in
  let rec go i =
    if i >= n then Ok ()
    else
      let { Bca_obs.Event.ev; _ } = events.(i) in
      if not (Bca_obs.Event.is_action ev) then go (i + 1)
      else if apply t ev then go (i + 1)
      else
        Error
          (Format.asprintf "replay diverged at event %d: %a is not applicable" i
             Bca_obs.Event.pp ev)
  in
  go 0

type 'm list_scheduler = delivered:int -> 'm envelope list -> 'm envelope option

(* [sk_mask] caches [slow] as a pid-indexed bitmap, sized on first pick from
   the execution's [n] - the per-slot membership test is then one array read
   instead of an O(|slow|) list scan. *)
type skewed = {
  sk_rng : Bca_util.Rng.t;
  sk_slow : pid list;
  sk_bias : int;
  mutable sk_mask : bool array;
}

type 'm scheduler =
  | Random of Bca_util.Rng.t
  | Fifo
  | Skewed of skewed
  | Indexed of (delivered:int -> 'm t -> int option)
  | Legacy of 'm list_scheduler

let random_scheduler rng = Random rng

let skewed_scheduler rng ~slow ~bias =
  Skewed { sk_rng = rng; sk_slow = slow; sk_bias = bias; sk_mask = [||] }

let fifo_scheduler = Fifo

let indexed_scheduler f = Indexed f

let of_list_scheduler f = Legacy f

let ensure_heap t =
  match t.fifo_heap with
  | Some h -> h
  | None ->
    let h = Bca_util.Min_heap.create ~capacity:(max 16 (Pool.length t.pool)) () in
    Pool.iter (fun env -> Bca_util.Min_heap.push h env.eid) t.pool;
    t.fifo_heap <- Some h;
    h

(* Pop heap minima until one is still in flight.  Every in-flight eid is in
   the heap (seeded from the pool at heap creation, pushed on every enqueue
   after), so this terminates with an index whenever the pool is non-empty. *)
let rec fifo_pick t ix h =
  match Bca_util.Min_heap.pop_min h with
  | None -> None
  | Some eid ->
    (match Hashtbl.find_opt ix eid with
    | Some i -> Some i
    | None -> fifo_pick t ix h)

(* The skewed pick makes no steady-state allocations: one counting pass over
   the backing array, then a positional pass to the chosen fast envelope.
   Slowness is a bitmap lookup (O(1) per slot, O(len) per pick); the RNG draw
   sequence matches the historical list-based implementation exactly
   (optionally [int bias], then one [int] over the candidate count). *)
let skewed_mask t sk =
  if Array.length sk.sk_mask < t.n then begin
    let mask = Array.make t.n false in
    List.iter (fun pid -> if pid >= 0 && pid < t.n then mask.(pid) <- true) sk.sk_slow;
    sk.sk_mask <- mask
  end;
  sk.sk_mask

let skewed_pick t sk =
  let rng = sk.sk_rng and bias = sk.sk_bias in
  let mask = skewed_mask t sk in
  let len = Pool.length t.pool in
  let is_fast i = not mask.((Pool.get t.pool i).dst) in
  let nfast = ref 0 in
  for i = 0 to len - 1 do
    if is_fast i then incr nfast
  done;
  let nfast = !nfast in
  if nfast > 0 && (nfast = len || Bca_util.Rng.int rng bias <> 0) then begin
    let k = Bca_util.Rng.int rng nfast in
    let rec nth_fast i remaining =
      if is_fast i then if remaining = 0 then i else nth_fast (i + 1) (remaining - 1)
      else nth_fast (i + 1) remaining
    in
    Some (nth_fast 0 k)
  end
  else Some (Bca_util.Rng.int rng len)

(* Choose a pool slot.  Callers guarantee the pool is non-empty. *)
let choose_slot t = function
  | Random rng -> Some (Bca_util.Rng.int rng (Pool.length t.pool))
  | Fifo ->
    let ix = ensure_slot_index t in
    fifo_pick t ix (ensure_heap t)
  | Skewed sk -> skewed_pick t sk
  | Indexed f ->
    (match f ~delivered:t.delivered t with
    | None -> None
    | Some i ->
      if i < 0 || i >= Pool.length t.pool then
        invalid_arg "Async_exec.step: indexed scheduler chose an out-of-range slot";
      Some i)
  | Legacy f ->
    (match f ~delivered:t.delivered (Pool.to_list t.pool) with
    | None -> None
    | Some env ->
      (match Hashtbl.find_opt (ensure_slot_index t) env.eid with
      | None -> invalid_arg "Async_exec.step: scheduler chose a non-inflight envelope"
      | Some i -> Some i))

let step t scheduler =
  if Pool.is_empty t.pool then `Empty
  else
    match choose_slot t scheduler with
    | None -> `Stopped
    | Some i ->
      let env = remove_slot t i in
      deliver_env t env;
      `Delivered env

let all_terminated t =
  let rec loop pid =
    if pid >= t.n then true
    else if (not t.alive.(pid)) || t.nodes.(pid).Node.terminated () then loop (pid + 1)
    else false
  in
  loop 0

type outcome = [ `All_terminated | `Quiescent | `Limit | `Stopped ]

let run ?(max_deliveries = 1_000_000) ?(stop_when = fun _ -> false) t scheduler =
  let rec loop () =
    if all_terminated t then `All_terminated
    else if stop_when t then `Stopped
    else if t.delivered >= max_deliveries then `Limit
    else
      match step t scheduler with
      | `Empty -> `Quiescent
      | `Stopped -> `Stopped
      | `Delivered _ -> loop ()
  in
  loop ()

let node_of t pid = t.nodes.(pid)

let set_observer t f = t.observer <- Some f

let depth_of t pid = t.depths.(pid)

let max_depth t =
  Array.fold_left max 0 t.depths

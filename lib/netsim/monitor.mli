(** Runtime invariant monitor for binary-agreement executions.

    Checks safety incrementally {e during} an execution instead of once at
    the end, so a violation is reported at the delivery that caused it
    (together with how many deliveries in it happened) - the information a
    chaos campaign needs to shrink and replay a failure.

    The monitor is protocol-agnostic: it reads party state through
    callbacks ([decision], [commit_round], ...) and is driven by calling
    {!on_delivery} from an {!Async_exec.set_observer} hook (or use
    {!attach}).  Checked invariants:

    - {b Agreement}: any two honest decisions are equal.  Crashed-but-honest
      parties count (uniform agreement): a decision made before crashing
      must agree too.
    - {b Validity}: when all honest inputs are one value [u], every honest
      decision is [u].
    - {b Binding / coin consistency} (optional, [coin_value]): the {e first}
      honest decision observed must equal that party's coin at its commit
      round.  The first commit system-wide is necessarily a coin-path
      commit - Algorithm 1 commits only on a coin match, and
      termination-layer commits presuppose an earlier committer - so this
      is the observable footprint of the paper's binding property: an
      execution in which the adversary un-binds the round value after the
      coin reveal surfaces as a first commit disagreeing with the coin, or
      as an agreement violation one round later.  Later deciders are not
      coin-checked: a laggard adopting a relayed [committed(v)] records its
      own (earlier) round, whose coin may legitimately differ.  Pass it
      only for stacks with that commit rule (AA-1/2 over BCA); graded
      stacks commit at grade 2 without consulting the coin.
    - {b Liveness watchdog} (optional, [progress]): if [stall_window]
      deliveries elapse with no increase of the [progress] measure, the
      execution is flagged [Stalled].  Under a fair scheduler with reliable
      links this indicates a liveness bug; under chaos plans that drop
      honest traffic it flags the run for separate accounting (dropping
      un-retransmitted messages legitimately voids the liveness
      guarantee). *)

type pid = int

type violation =
  | Agreement of { p : pid; vp : Bca_util.Value.t; q : pid; vq : Bca_util.Value.t }
      (** honest parties [p] and [q] decided different values *)
  | Validity of { p : pid; decided : Bca_util.Value.t; unanimous : Bca_util.Value.t }
      (** unanimous honest input [unanimous], yet [p] decided otherwise *)
  | Binding of { p : pid; round : int; decided : Bca_util.Value.t; coin : Bca_util.Value.t }
      (** [p] committed [decided] in [round] although its coin said [coin] *)
  | Stalled of { deliveries : int; window : int }
      (** no progress for [window] deliveries (at delivery [deliveries]) *)

val pp_violation : Format.formatter -> violation -> unit

type t

val create :
  n:int ->
  ?honest:(pid -> bool) ->
  inputs:Bca_util.Value.t array ->
  decision:(pid -> Bca_util.Value.t option) ->
  ?commit_round:(pid -> int option) ->
  ?coin_value:(round:int -> pid:pid -> Bca_util.Value.t) ->
  ?progress:(unit -> int) ->
  ?stall_window:int ->
  ?tracer:Bca_obs.Trace.t ->
  unit ->
  t
(** [honest] defaults to everyone (crash faults are honest; exclude only
    Byzantine/corrupted parties).  [inputs] are the honest input values
    (slots of non-honest parties are ignored).  [progress] must be a
    monotone measure of execution progress (e.g. decisions made plus rounds
    entered); [stall_window] defaults to 10_000.  With [tracer] (default
    [Bca_obs.Trace.null]) every violation is additionally emitted as a
    [Violation] trace event at the logical time it was detected. *)

val on_delivery : t -> unit
(** Record one delivery and re-check the invariants incrementally: only
    parties that decided since the last call are (re-)examined, so a call
    is O(n) with a tiny constant. *)

val attach : t -> 'm Async_exec.t -> unit
(** Install {!on_delivery} as the execution's observer (replaces any
    observer set before; callers needing both should chain manually). *)

val final_check : t -> unit
(** Re-check decisions once more without counting a delivery.  Call after
    the run ends: the executor notifies observers {e before} the receiving
    node processes an envelope, so a decision caused by the very last
    delivery is only visible to this call. *)

val violations : t -> violation list
(** All violations found so far, in detection order.  Each invariant class
    is reported at most once per offending party pair/party. *)

val ok : t -> bool
(** No violations (stalls included) so far. *)

val safety_ok : t -> bool
(** No agreement / validity / binding violation so far ([Stalled] is
    ignored: a liveness flag, not a safety one). *)

val first_decision : t -> (pid * Bca_util.Value.t * int) option
(** The first honest decision observed: party, value, and the number of
    deliveries that had happened when it was detected. *)

val deliveries_seen : t -> int
(** Number of {!on_delivery} calls so far. *)

val near_misses : t -> (string * int) list
(** End-of-run gauges of proximity to a violation, as
    [(counter, value)] pairs in the shared coverage vocabulary
    ({!Bca_obs.Coverage}): [("nm:decided", k)] honest deciders so far,
    [("nm:commit-spread", d)] the span between the smallest and largest
    honest commit round (present only when two deciders disagree on the
    round - the direct precursor of a cross-round agreement violation),
    and [("nm:stall-frac", q)] the highest quarter of the stall window the
    watchdog counter reached ([4] = it fired).  Sorted by counter name;
    call after {!final_check}. *)

(** Multivalued analogue of the binary monitor, for executions whose
    decisions are strings - MVBA payloads ({!Bca_rsm.Mvba}) or committed
    log prefixes.  Checks:

    - {b Agreement}: any two honest decisions are byte-equal.
    - {b Validity}: when every honest party proposed the same string, any
      honest decision equals it (violations are traced as kinds
      ["magreement"] / ["mvalidity"] to keep them distinct from the binary
      invariants in coverage maps).
    - {b Liveness watchdog} (optional, [progress]): as in the binary
      monitor. *)
module Multi : sig
  type violation =
    | Agreement of { p : pid; vp : string; q : pid; vq : string }
        (** honest parties [p] and [q] decided different values *)
    | Validity of { p : pid; decided : string }
        (** unanimous honest proposal, yet [p] decided something else *)
    | Stalled of { deliveries : int; window : int }
        (** no progress for [window] deliveries (at delivery [deliveries]) *)

  val pp_violation : Format.formatter -> violation -> unit

  type t

  val create :
    n:int ->
    ?honest:(pid -> bool) ->
    proposals:string array ->
    decision:(pid -> string option) ->
    ?progress:(unit -> int) ->
    ?stall_window:int ->
    ?tracer:Bca_obs.Trace.t ->
    unit ->
    t
  (** As the binary {!val:create}, with string [proposals] in place of
      binary [inputs] and no coin/commit-round hooks (selection in the
      multivalued layer is deterministic, not coin-driven). *)

  val on_delivery : t -> unit
  val attach : t -> 'm Async_exec.t -> unit
  val final_check : t -> unit
  val violations : t -> violation list
  val ok : t -> bool

  val safety_ok : t -> bool
  (** No agreement / validity violation ([Stalled] ignored). *)

  val first_decision : t -> (pid * string * int) option
end

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let add t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Pool.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Pool.set";
  t.data.(i) <- x

let swap_remove t i =
  let x = get t i in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  x

let to_list t = Array.to_list (Array.sub t.data 0 t.len)

let filter_in_place t p =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    if p t.data.(i) then begin
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  t.len <- !j

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let find_index p t =
  let rec loop i = if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1) in
  loop 0

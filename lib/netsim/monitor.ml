module Value = Bca_util.Value

type pid = int

type violation =
  | Agreement of { p : pid; vp : Value.t; q : pid; vq : Value.t }
  | Validity of { p : pid; decided : Value.t; unanimous : Value.t }
  | Binding of { p : pid; round : int; decided : Value.t; coin : Value.t }
  | Stalled of { deliveries : int; window : int }

let pp_violation ppf = function
  | Agreement { p; vp; q; vq } ->
    Format.fprintf ppf "agreement: p%d decided %a but p%d decided %a" p Value.pp vp q
      Value.pp vq
  | Validity { p; decided; unanimous } ->
    Format.fprintf ppf "validity: unanimous input %a but p%d decided %a" Value.pp
      unanimous p Value.pp decided
  | Binding { p; round; decided; coin } ->
    Format.fprintf ppf
      "binding: p%d committed %a in round %d against its round coin %a" p Value.pp
      decided round Value.pp coin
  | Stalled { deliveries; window } ->
    Format.fprintf ppf "stalled: no progress for %d deliveries (at delivery %d)"
      window deliveries

type t = {
  n : int;
  honest : pid -> bool;
  unanimous : Value.t option;  (* the unanimous honest input, if any *)
  decision : pid -> Value.t option;
  commit_round : pid -> int option;
  coin_value : (round:int -> pid:pid -> Value.t) option;
  progress : (unit -> int) option;
  stall_window : int;
  seen : Value.t option array;  (* decisions already checked, per pid *)
  mutable first : (pid * Value.t * int) option;
  mutable deliveries : int;
  mutable last_progress : int;
  mutable since_progress : int;
  mutable max_since_progress : int;
  mutable stalled : bool;  (* report Stalled at most once *)
  mutable violations : violation list;  (* reverse detection order *)
  tracer : Bca_obs.Trace.t;
}

let create ~n ?(honest = fun _ -> true) ~inputs ~decision ?(commit_round = fun _ -> None)
    ?coin_value ?progress ?(stall_window = 10_000) ?(tracer = Bca_obs.Trace.null) () =
  let unanimous =
    let rec scan pid acc =
      if pid >= n then acc
      else if not (honest pid) then scan (pid + 1) acc
      else
        match acc with
        | None -> scan (pid + 1) (Some inputs.(pid))
        | Some u -> if Value.equal u inputs.(pid) then scan (pid + 1) acc else None
    in
    scan 0 None
  in
  { n;
    honest;
    unanimous;
    decision;
    commit_round;
    coin_value;
    progress;
    stall_window;
    seen = Array.make n None;
    first = None;
    deliveries = 0;
    last_progress = (match progress with Some f -> f () | None -> 0);
    since_progress = 0;
    max_since_progress = 0;
    stalled = false;
    violations = [];
    tracer }

let violation_kind = function
  | Agreement _ -> "agreement"
  | Validity _ -> "validity"
  | Binding _ -> "binding"
  | Stalled _ -> "stalled"

let report t v =
  t.violations <- v :: t.violations;
  if Bca_obs.Trace.enabled t.tracer then
    Bca_obs.Trace.emit t.tracer
      (Bca_obs.Event.Violation
         { kind = violation_kind v; detail = Format.asprintf "%a" pp_violation v })

(* A party decided: compare against the first recorded decision (agreement
   is transitive over equality, so one reference decision suffices) and the
   unanimous input if any.  The coin check applies only to the *first*
   decision observed: the system's first commit is necessarily a coin-path
   commit (termination-layer commits require a [committed] message from an
   earlier committer), whereas a laggard adopting a relayed commit records
   its own - possibly earlier - round, whose coin may legitimately
   differ. *)
let check_new_decision t pid v =
  let is_first = t.first = None in
  (match t.first with
  | None -> t.first <- Some (pid, v, t.deliveries)
  | Some (q, vq, _) ->
    if not (Value.equal v vq) then report t (Agreement { p = pid; vp = v; q; vq }));
  (match t.unanimous with
  | Some u when not (Value.equal v u) ->
    report t (Validity { p = pid; decided = v; unanimous = u })
  | _ -> ());
  if is_first then
    match (t.coin_value, t.commit_round pid) with
    | Some coin, Some round ->
      let c = coin ~round ~pid in
      if not (Value.equal v c) then
        report t (Binding { p = pid; round; decided = v; coin = c })
    | _ -> ()

let poll_decisions t =
  for pid = 0 to t.n - 1 do
    if t.honest pid && t.seen.(pid) = None then
      match t.decision pid with
      | None -> ()
      | Some v ->
        t.seen.(pid) <- Some v;
        check_new_decision t pid v
  done

let watchdog t =
  match t.progress with
  | None -> ()
  | Some f ->
    let p = f () in
    if p > t.last_progress then begin
      t.last_progress <- p;
      t.since_progress <- 0
    end
    else begin
      t.since_progress <- t.since_progress + 1;
      if t.since_progress > t.max_since_progress then
        t.max_since_progress <- t.since_progress;
      if t.since_progress >= t.stall_window && not t.stalled then begin
        t.stalled <- true;
        report t (Stalled { deliveries = t.deliveries; window = t.stall_window })
      end
    end

let on_delivery t =
  t.deliveries <- t.deliveries + 1;
  poll_decisions t;
  watchdog t

let attach t exec = Async_exec.set_observer exec (fun _ -> on_delivery t)

(* End-of-run check: catch decisions caused by the very last delivery (the
   observer fires before the receiving node processes the envelope). *)
let final_check t = poll_decisions t

let violations t = List.rev t.violations

let ok t = t.violations = []

let safety_ok t =
  List.for_all (function Stalled _ -> true | _ -> false) t.violations

let first_decision t = t.first

let deliveries_seen t = t.deliveries

(* End-of-run gauges of how close the execution came to a violation -
   states that are legal but adjacent to illegal ones.  Fuzzer fuel: a run
   that widens the commit-round spread or nearly trips the watchdog is
   retained in the corpus even though no invariant broke. *)
let near_misses t =
  let decided = ref 0 in
  Array.iter (fun d -> if d <> None then incr decided) t.seen;
  let rounds = ref [] in
  for pid = 0 to t.n - 1 do
    if t.honest pid && t.seen.(pid) <> None then
      match t.commit_round pid with
      | Some r -> rounds := r :: !rounds
      | None -> ()
  done;
  let spread =
    match List.sort_uniq Int.compare !rounds with
    | [] | [ _ ] -> 0
    | lo :: rest -> List.nth rest (List.length rest - 1) - lo
  in
  let acc = [ ("nm:decided", !decided) ] in
  let acc = if spread > 0 then ("nm:commit-spread", spread) :: acc else acc in
  let acc =
    if t.progress <> None && t.stall_window > 0 && t.max_since_progress > 0 then
      (* quarters of the stall window reached: 4 = the watchdog fired *)
      ("nm:stall-frac", min 4 (t.max_since_progress * 4 / t.stall_window)) :: acc
    else acc
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) acc

(* Multivalued analogue: decisions are strings (MVBA payloads, RSM slot
   batches), so agreement compares for string equality and validity checks
   against the unanimous honest proposal when there is one.  Same
   incremental poll-on-delivery drive as the binary monitor. *)
module Multi = struct
  type violation =
    | Agreement of { p : pid; vp : string; q : pid; vq : string }
    | Validity of { p : pid; decided : string }
    | Stalled of { deliveries : int; window : int }

  let trunc s = if String.length s <= 32 then s else String.sub s 0 29 ^ "..."

  let pp_violation ppf = function
    | Agreement { p; vp; q; vq } ->
      Format.fprintf ppf "agreement: p%d decided %S but p%d decided %S" p (trunc vp)
        q (trunc vq)
    | Validity { p; decided } ->
      Format.fprintf ppf "validity: unanimous honest proposal, yet p%d decided %S" p
        (trunc decided)
    | Stalled { deliveries; window } ->
      Format.fprintf ppf "stalled: no progress for %d deliveries (at delivery %d)"
        window deliveries

  type t = {
    n : int;
    honest : pid -> bool;
    unanimous : string option;
    decision : pid -> string option;
    progress : (unit -> int) option;
    stall_window : int;
    seen : string option array;
    mutable first : (pid * string * int) option;
    mutable deliveries : int;
    mutable last_progress : int;
    mutable since_progress : int;
    mutable stalled : bool;
    mutable violations : violation list;  (* reverse detection order *)
    tracer : Bca_obs.Trace.t;
  }

  let create ~n ?(honest = fun _ -> true) ~proposals ~decision ?progress
      ?(stall_window = 10_000) ?(tracer = Bca_obs.Trace.null) () =
    let unanimous =
      let rec scan pid acc =
        if pid >= n then acc
        else if not (honest pid) then scan (pid + 1) acc
        else
          match acc with
          | None -> scan (pid + 1) (Some proposals.(pid))
          | Some u ->
            if String.equal u proposals.(pid) then scan (pid + 1) acc else None
      in
      scan 0 None
    in
    { n;
      honest;
      unanimous;
      decision;
      progress;
      stall_window;
      seen = Array.make n None;
      first = None;
      deliveries = 0;
      last_progress = (match progress with Some f -> f () | None -> 0);
      since_progress = 0;
      stalled = false;
      violations = [];
      tracer }

  let violation_kind = function
    | Agreement _ -> "magreement"
    | Validity _ -> "mvalidity"
    | Stalled _ -> "stalled"

  let report t v =
    t.violations <- v :: t.violations;
    if Bca_obs.Trace.enabled t.tracer then
      Bca_obs.Trace.emit t.tracer
        (Bca_obs.Event.Violation
           { kind = violation_kind v; detail = Format.asprintf "%a" pp_violation v })

  let check_new_decision t pid v =
    (match t.first with
    | None -> t.first <- Some (pid, v, t.deliveries)
    | Some (q, vq, _) ->
      if not (String.equal v vq) then report t (Agreement { p = pid; vp = v; q; vq }));
    match t.unanimous with
    | Some u when not (String.equal v u) -> report t (Validity { p = pid; decided = v })
    | _ -> ()

  let poll_decisions t =
    for pid = 0 to t.n - 1 do
      if t.honest pid && t.seen.(pid) = None then
        match t.decision pid with
        | None -> ()
        | Some v ->
          t.seen.(pid) <- Some v;
          check_new_decision t pid v
    done

  let watchdog t =
    match t.progress with
    | None -> ()
    | Some f ->
      let p = f () in
      if p > t.last_progress then begin
        t.last_progress <- p;
        t.since_progress <- 0
      end
      else begin
        t.since_progress <- t.since_progress + 1;
        if t.since_progress >= t.stall_window && not t.stalled then begin
          t.stalled <- true;
          report t (Stalled { deliveries = t.deliveries; window = t.stall_window })
        end
      end

  let on_delivery t =
    t.deliveries <- t.deliveries + 1;
    poll_decisions t;
    watchdog t

  let attach t exec = Async_exec.set_observer exec (fun _ -> on_delivery t)

  let final_check t = poll_decisions t

  let violations t = List.rev t.violations

  let ok t = t.violations = []

  let safety_ok t =
    List.for_all (function Stalled _ -> true | _ -> false) t.violations

  let first_decision t = t.first
end

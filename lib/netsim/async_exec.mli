(** Asynchronous event-driven executor.

    Models the paper's network (Section 2): reliable links with unbounded,
    adversary-controlled delay.  All sent messages sit in an in-flight pool;
    a {e scheduler} - the adversary's delay power - picks which envelope to
    deliver next.  Any scheduler that eventually delivers everything is a
    valid asynchronous execution; safety properties must hold under all of
    them.

    {b Hot path}: schedulers choose a {e slot index} into the in-flight pool
    rather than receiving a materialized list, so one delivery costs O(1)
    (random), O(log m) amortized (FIFO, via a min-eid heap) or one
    allocation-free pass (skewed) instead of the former O(m) list snapshot
    per step.  The legacy list-based scheduler type is kept behind
    {!of_list_scheduler} and produces identical delivery traces.

    Crash faults are modelled by {!crash}: the party stops receiving and
    emitting.  [crash] can be combined with {!drop_outgoing} to model a party
    that crashed in the middle of a broadcast, so only a subset of recipients
    ever gets the last message (needed for the ACA weak-validity and
    uniform-agreement corner cases). *)

type pid = Node.pid

type 'm envelope = {
  eid : int;  (** unique, increasing with send order *)
  src : pid;
  dst : pid;
  payload : 'm;
  depth : int;  (** 1 + the sender's causal depth at send time *)
}

type 'm t

val create : n:int -> make:(pid -> 'm Node.t * 'm Node.emit list) -> 'm t
(** Build an execution with [n] parties.  [make pid] returns the party's node
    and its initial sends (the "send <val, x> to all" first line of every
    protocol).  Tracing is disabled; same as [create_traced
    ~tracer:Bca_obs.Trace.null]. *)

val create_traced :
  tracer:Bca_obs.Trace.t ->
  n:int ->
  make:(pid -> 'm Node.t * 'm Node.emit list) ->
  'm t
(** Like {!create}, but every network-level event (send, deliver, drop,
    duplicate, redirect, swap, crash) is emitted to [tracer], including the
    initial sends performed during construction.  Pass
    [Bca_obs.Trace.null] to disable: instrumentation sites test a cached
    boolean and build no event values, so a null-traced execution costs one
    predictable branch per site (see DESIGN.md section 10). *)

val n : 'm t -> int

val inflight : 'm t -> 'm envelope list
(** Snapshot of undelivered envelopes (unspecified order).  O(m); meant for
    attack drivers and tests, not for scheduler hot paths - those should use
    {!pool_size} and {!pool_get}. *)

val inflight_count : 'm t -> int

val pool_size : 'm t -> int
(** Number of in-flight envelopes, O(1).  Same as {!inflight_count}. *)

val pool_get : 'm t -> int -> 'm envelope
(** [pool_get t i] is the in-flight envelope in slot [i], [0 <= i <
    pool_size t], O(1).  Slots are reshuffled by removals (swap-remove);
    only the current multiset of envelopes is meaningful across steps. *)

val deliveries : 'm t -> int
(** Total number of envelopes delivered so far. *)

val crash : 'm t -> pid -> unit
(** Party [pid] halts: stops receiving and emitting.  Its already in-flight
    messages remain deliverable (links are reliable). *)

val crashed : 'm t -> pid -> bool

val revive : 'm t -> pid -> unit
(** Undo {!crash}: party [pid] resumes receiving and emitting with the state
    it had when it halted - the crash-{e recovery} model, where a killed
    process restarts from a durable log that reconstructs exactly its
    pre-crash state (see [Bca_recovery.Wal]).  Messages consumed while the
    party was down stay lost; the chaos layer re-injects them to model the
    rejoin handshake's history resend.  Revival is outside the action-replay
    determinism contract: [replay] of a trace containing a [Crash] leaves
    the party down. *)

val drop_outgoing : 'm t -> src:pid -> keep:('m envelope -> bool) -> unit
(** Remove a subset of [src]'s in-flight messages, modelling sends that never
    happened because the party crashed mid-broadcast.  Only meaningful
    together with {!crash}. *)

val inject : 'm t -> src:pid -> 'm Node.emit list -> unit
(** Place adversary-crafted messages in flight, attributed to [src].  Used by
    Byzantine attack drivers. *)

val deliver_eid : 'm t -> int -> bool
(** Deliver the envelope with this id, O(1).  Returns [false] if it is no
    longer in flight.  Delivery to a crashed party consumes the envelope
    silently. *)

(** {2 Fault primitives}

    Raw adversary powers over the in-flight pool, all O(1) by envelope id.
    They enforce no fault-model policy themselves: unrestricted use against
    honest links breaks the paper's reliable-link assumption, so callers
    must gate them - [Bca_adversary.Chaos] only applies them to faulty
    parties' traffic or within a per-link fairness budget.  All primitives
    keep every scheduler consistent (removals rely on the FIFO heap's lazy
    deletion; rewrites keep the envelope's id and slot). *)

val drop_eid : 'm t -> int -> 'm envelope option
(** Remove the envelope from flight without delivering it; returns it, or
    [None] if it was no longer in flight.  A message-omission fault. *)

val duplicate_eid : 'm t -> int -> bool
(** Put a copy of the envelope (fresh id, same src/dst/payload/depth) in
    flight.  Models at-least-once links / replayed packets; protocols must
    be idempotent against it.  [false] if the id is not in flight. *)

val redirect_eid : 'm t -> int -> dst:pid -> bool
(** Rewrite the envelope's destination in place (id preserved).  Only
    meaningful against a faulty sender's traffic. *)

val swap_payloads : 'm t -> int -> int -> bool
(** Exchange the payloads of two in-flight envelopes (ids preserved) - a
    type-agnostic corruption: applied to two messages of one faulty sender
    it models equivocation-style reordering of that sender's traffic.
    [false] unless both ids are in flight and distinct. *)

(** {2 Replay}

    An execution is determined by its construction plus the sequence of
    {e actions} performed on it: nodes are deterministic state machines and
    envelope ids come from a monotone counter, so rebuilding the cluster the
    same way (same [n], same [make], same injections) and re-applying a
    recorded action log reproduces the original run bit for bit.  The action
    subset of the event taxonomy is exactly [Bca_obs.Event.is_action]; see
    DESIGN.md section 10 for the full determinism contract. *)

val apply : 'm t -> Bca_obs.Event.t -> bool
(** Re-apply one recorded event.  Action events perform the corresponding
    executor operation ([Deliver] -> {!deliver_eid}, [Drop] -> {!drop_eid},
    [Duplicate] -> {!duplicate_eid} after checking that the copy's id matches
    the executor's next id, [Redirect] -> {!redirect_eid}, [Swap] ->
    {!swap_payloads}, [Crash] -> {!crash}); non-action events are no-ops.
    Returns [false] if the event is not applicable - the replayed cluster has
    diverged from the one that produced the log. *)

val replay : 'm t -> Bca_obs.Event.timed array -> (unit, string) result
(** Re-apply a full recorded event stream in order, skipping non-action
    events.  Stops at the first inapplicable action with an error naming the
    offending event.  If the execution was built with {!create_traced}, the
    replay emits a fresh trace that can be compared with the original for
    bit-for-bit identity. *)

type 'm list_scheduler = delivered:int -> 'm envelope list -> 'm envelope option
(** The legacy scheduler signature: given the number of deliveries so far and
    a list snapshot of the in-flight pool (never empty), choose the next
    envelope, or [None] to stop the run early.  Adapt with
    {!of_list_scheduler}; every call materializes the pool, so prefer
    {!indexed_scheduler} for new code. *)

type 'm scheduler
(** A delivery policy.  Built-in policies pick a pool slot directly and are
    interpreted by the executor without materializing the in-flight set. *)

val random_scheduler : Bca_util.Rng.t -> 'm scheduler
(** Uniformly random delivery order - the canonical fair adversary used by
    property tests.  O(1) per pick; draws the same RNG stream (and therefore
    produces the same delivery trace) as the historical list-based
    implementation. *)

val skewed_scheduler :
  Bca_util.Rng.t -> slow:(pid list) -> bias:int -> 'm scheduler
(** A random scheduler that starves the [slow] parties: deliveries to them
    are only considered with probability [1/bias] per pick.  Still fair
    (every message is eventually delivered) - models persistently laggy
    replicas.  Allocation-free in steady state: slowness is a pid-indexed
    bitmap (built on first pick), one counting pass over the pool per
    pick. *)

val fifo_scheduler : 'm scheduler
(** Deliver in send order (lowest [eid] first): the most synchronous-looking
    schedule.  Backed by a min-eid binary heap maintained beside the pool,
    O(log m) amortized per pick. *)

val indexed_scheduler : (delivered:int -> 'm t -> int option) -> 'm scheduler
(** Custom policy over the indexed API: inspect the pool via {!pool_size} /
    {!pool_get} and return a slot in [\[0, pool_size t)], or [None] to stop.
    The chooser must not mutate the execution. *)

val of_list_scheduler : 'm list_scheduler -> 'm scheduler
(** Compatibility adapter for legacy list-based schedulers.  The returned
    envelope is located by id in O(1), but the list snapshot itself costs
    O(m) per step. *)

val step : 'm t -> 'm scheduler -> [ `Delivered of 'm envelope | `Stopped | `Empty ]
(** One scheduling decision. *)

type outcome = [ `All_terminated | `Quiescent | `Limit | `Stopped ]

val run :
  ?max_deliveries:int ->
  ?stop_when:('m t -> bool) ->
  'm t ->
  'm scheduler ->
  outcome
(** Drive the execution until every party reports [terminated] (crashed
    parties count as terminated), the pool drains ([`Quiescent] - a liveness
    failure for a terminating protocol), [stop_when] becomes true, the
    scheduler stops, or [max_deliveries] (default 1_000_000) is hit. *)

val all_terminated : 'm t -> bool

val node_of : 'm t -> pid -> 'm Node.t
(** Access a party's node (for reading protocol state via closures captured
    at construction time). *)

val set_observer : 'm t -> ('m envelope -> unit) -> unit
(** Install a delivery observer, called on every delivery (including those
    consumed by crashed parties) - tracing and statistics hooks. *)

val depth_of : 'm t -> pid -> int
(** The causal depth of party [pid]: the length of the longest
    message chain it has observed.  This is the asynchronous notion of
    "communication rounds elapsed" and is invariant under message trickling,
    unlike delivery counts. *)

val max_depth : 'm t -> int
(** Maximum causal depth over all parties - "broadcasts on the critical
    path", the unit of the paper's tables. *)

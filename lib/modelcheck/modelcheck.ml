module type MODEL = sig
  type state

  type msg

  val n : int

  val init : int -> state * msg list

  val handle : state -> from:int -> msg -> msg list

  val copy_state : state -> state

  val encode_state : state -> string

  val encode_msg : msg -> string

  val decided : state -> bool
end

module Coverage = Bca_obs.Coverage

type stats = {
  configurations : int;
  terminals : int;
  truncated : bool;
  edges : int;
  max_depth : int;
  coverage : Coverage.t;
}

type verdict = Verified of stats | Violated of string

module Make (M : MODEL) = struct
  (* in-flight envelope with its canonical key precomputed *)
  type envelope = { src : int; dst : int; payload : M.msg; key : string }

  type config = {
    states : M.state array;
    alive : bool array;
    inflight : envelope list;
    crash_budget : int;
    injections_left : bool array;  (* one-shot adversary actions *)
  }

  let envelope src dst payload =
    { src; dst; payload; key = Printf.sprintf "%d>%d:%s" src dst (M.encode_msg payload) }

  let broadcast_from cfg ~src msgs =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun dst -> if cfg.alive.(dst) then Some (envelope src dst m) else None)
          (List.init M.n Fun.id))
      msgs

  let clone cfg =
    { cfg with
      states = Array.map M.copy_state cfg.states;
      alive = Array.copy cfg.alive;
      injections_left = Array.copy cfg.injections_left }

  type choice = Deliver of string | Crash of int | Inject of int

  (* Apply one choice to a fresh clone of the configuration.  An injection
     is delivered immediately: a rushing adversary loses nothing by it,
     because delaying an injected message is the same as injecting later. *)
  let apply ~injections cfg choice =
    let cfg = clone cfg in
    match choice with
    | Inject i ->
      cfg.injections_left.(i) <- false;
      let src, dst, payload = List.nth injections i in
      if cfg.alive.(dst) then begin
        let outs = M.handle cfg.states.(dst) ~from:src payload in
        { cfg with inflight = cfg.inflight @ broadcast_from cfg ~src:dst outs }
      end
      else cfg
    | Crash pid ->
      cfg.alive.(pid) <- false;
      { cfg with
        inflight = List.filter (fun env -> env.dst <> pid) cfg.inflight;
        crash_budget = cfg.crash_budget - 1 }
    | Deliver k ->
      let rec split acc = function
        | [] -> invalid_arg "Modelcheck.apply: stale delivery choice"
        | env :: rest ->
          if String.equal env.key k then (env, List.rev_append acc rest)
          else split (env :: acc) rest
      in
      let env, rest = split [] cfg.inflight in
      let outs = M.handle cfg.states.(env.dst) ~from:env.src env.payload in
      { cfg with inflight = rest @ broadcast_from cfg ~src:env.dst outs }

  let initial ~crashes ~injections =
    let cfg =
      { states = [||];
        alive = Array.make M.n true;
        inflight = [];
        crash_budget = crashes;
        injections_left = Array.make (List.length injections) true }
    in
    let states = Array.make M.n None in
    let inflight =
      List.concat
        (List.init M.n (fun pid ->
             let st, sends = M.init pid in
             states.(pid) <- Some st;
             broadcast_from cfg ~src:pid sends))
    in
    { cfg with states = Array.map Option.get states; inflight }

  let enabled cfg =
    let deliveries =
      List.sort_uniq String.compare (List.map (fun env -> env.key) cfg.inflight)
    in
    let crashes =
      if cfg.crash_budget > 0 then
        List.filter_map
          (fun pid -> if cfg.alive.(pid) then Some (Crash pid) else None)
          (List.init M.n Fun.id)
      else []
    in
    let injects =
      List.filter_map
        (fun i -> if cfg.injections_left.(i) then Some (Inject i) else None)
        (List.init (Array.length cfg.injections_left) Fun.id)
    in
    List.map (fun k -> Deliver k) deliveries @ crashes @ injects

  let encode_config cfg =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (string_of_int cfg.crash_budget);
    Array.iter (fun b -> Buffer.add_char buf (if b then 'i' else '.')) cfg.injections_left;
    Array.iteri
      (fun pid st ->
        Buffer.add_char buf (if cfg.alive.(pid) then '+' else '-');
        Buffer.add_string buf (M.encode_state st);
        Buffer.add_char buf '|')
      cfg.states;
    List.iter
      (fun k ->
        Buffer.add_string buf k;
        Buffer.add_char buf ';')
      (List.sort String.compare (List.map (fun env -> env.key) cfg.inflight));
    Buffer.contents buf

  exception Stop of string

  let explore ?(max_configurations = 300_000) ?(crashes = 0) ?(injections = [])
      ?(observe = fun ~alive:_ (_ : M.state array) -> ([] : (string * int) list))
      ~invariant ~terminal () =
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 65_536 in
    let configurations = ref 0 in
    let terminals = ref 0 in
    let truncated = ref false in
    let edges = ref 0 in
    let max_depth = ref 0 in
    (* per-key maximum over all visited configurations: the same "deepest
       any single run drove it" reading [Coverage.merge] gives the fuzzer *)
    let reach : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let record (key, v) =
      match Hashtbl.find_opt reach key with
      | Some old when old >= v -> ()
      | _ -> if v > 0 then Hashtbl.replace reach key v
    in
    let rec dfs depth cfg =
      if !configurations >= max_configurations then truncated := true
      else begin
        let enc = encode_config cfg in
        if not (Hashtbl.mem seen enc) then begin
          Hashtbl.replace seen enc ();
          incr configurations;
          if depth > !max_depth then max_depth := depth;
          List.iter record (observe ~alive:cfg.alive cfg.states);
          (match invariant ~alive:cfg.alive cfg.states with
          | Some reason -> raise (Stop reason)
          | None -> ());
          let choices = enabled cfg in
          if cfg.inflight = [] then begin
            incr terminals;
            match terminal ~alive:cfg.alive cfg.states with
            | Some reason -> raise (Stop reason)
            | None -> ()
          end;
          List.iter
            (fun c ->
              incr edges;
              dfs (depth + 1) (apply ~injections cfg c))
            choices
        end
      end
    in
    let finish () =
      let cov =
        List.fold_left
          (fun acc (k, v) -> Coverage.add_count acc k v)
          Coverage.empty
          (Bca_util.Det.bindings ~compare:String.compare reach)
      in
      let cov = Coverage.add_count cov "mc:configs" !configurations in
      let cov = Coverage.add_count cov "mc:edges" !edges in
      let cov = Coverage.add_count cov "mc:depth" !max_depth in
      let cov = Coverage.add_count cov "mc:terminals" !terminals in
      { configurations = !configurations;
        terminals = !terminals;
        truncated = !truncated;
        edges = !edges;
        max_depth = !max_depth;
        coverage = cov }
    in
    match dfs 0 (initial ~crashes ~injections) with
    | () -> Verified (finish ())
    | exception Stop reason -> Violated reason
end

(** Bounded exhaustive model checking of the protocol state machines.

    Property tests sample random schedules; this module enumerates {e all}
    of them, for small systems.  A configuration is the tuple of party
    states plus the multiset of in-flight messages; the checker explores
    every delivery order (and, optionally, every placement of up to [t]
    crash events at every point), deduplicating configurations by a
    canonical encoding.  An invariant that holds at every reachable
    configuration is thereby {e verified}, not merely tested - in
    particular the binding property, whose "in any extension of this
    execution" quantifier is exactly a reachable-configuration claim.

    States are mutable, so each explored edge works on a cloned
    configuration ([copy_state] per party); memoization on a canonical
    configuration encoding keeps the search linear in the number of
    distinct reachable configurations.

    Modelling choices: a message addressed to a crashed party is dropped at
    crash time (the party will never act on it), and broadcasts from a
    crashed party stop - crashing exactly between the per-recipient sends of
    a broadcast is covered because each recipient's copy is a separate
    in-flight message. *)

module type MODEL = sig
  type state

  type msg

  val n : int

  val init : int -> state * msg list
  (** Fresh party state and its initial broadcasts (inputs are baked into
      the model instance). *)

  val handle : state -> from:int -> msg -> msg list
  (** Deliver one message; returns broadcasts. *)

  val copy_state : state -> state
  (** Independent deep copy: exploration clones configurations instead of
      replaying choice sequences. *)

  val encode_state : state -> string
  (** Canonical encoding: two states with equal encodings must behave
      identically on all futures. *)

  val encode_msg : msg -> string

  val decided : state -> bool
end

type stats = {
  configurations : int;  (** distinct configurations visited *)
  terminals : int;  (** configurations with no deliverable message *)
  truncated : bool;  (** hit the configuration cap before finishing *)
  edges : int;  (** transitions explored (delivery / crash / injection) *)
  max_depth : int;  (** longest choice sequence from the initial state *)
  coverage : Bca_obs.Coverage.t;
      (** The exploration's coverage report, in the same vocabulary the
          fuzzer speaks ([Bca_obs.Coverage]): each [observe]d key at its
          per-configuration maximum (the reading {!Bca_obs.Coverage.merge}
          gives a fuzzing campaign), plus the checker's own measures
          ["mc:configs"], ["mc:edges"], ["mc:depth"], ["mc:terminals"].
          This makes "what did the exhaustive checker reach" and "what did
          the fuzzer reach" directly comparable maps. *)
}

type verdict = Verified of stats | Violated of string

module Make (M : MODEL) : sig
  val explore :
    ?max_configurations:int ->
    ?crashes:int ->
    ?injections:(int * int * M.msg) list ->
    ?observe:(alive:bool array -> M.state array -> (string * int) list) ->
    invariant:(alive:bool array -> M.state array -> string option) ->
    terminal:(alive:bool array -> M.state array -> string option) ->
    unit ->
    verdict
  (** Explore every delivery order and every placement of up to [crashes]
      crash events (default 0).  [invariant] is evaluated at every reachable
      configuration ([alive.(i) = false] marks a crashed party whose frozen
      state is still visible, e.g. for counting the echoes it sent);
      [terminal] additionally where the network has drained.  Returning
      [Some reason] stops exploration with [Violated reason].
      [injections] are one-shot adversary actions [(src, dst, msg)] - a
      Byzantine party's possible sends, each usable at most once and applied
      at any point the adversary likes (delivery is immediate: injecting
      late subsumes injecting early and delaying).  [observe] (default none)
      maps each visited configuration to [(key, count)] coverage
      observations - use the {!Bca_obs.Coverage} vocabulary, e.g.
      [("quorum:echo:r1", parties_echoed)]; per key the maximum over all
      configurations is reported in [stats.coverage].  [max_configurations]
      defaults to 300_000; hitting it yields [Verified {truncated = true}] -
      a bounded rather than complete verification. *)
end

module Value = Bca_util.Value
module Types = Bca_core.Types
module B = Bca_core.Bca_crash
module G = Bca_core.Gbca_crash

(* Coverage observations in the fuzzer's vocabulary (the model-checked
   protocols are single-shot, so everything is "round 1"): how many parties
   completed a quorum-gated phase, and how many decided each outcome. *)
let count_of pred states = Array.to_list states |> List.filter pred |> List.length

let phase_reach label pred states = (label, count_of pred states)

let cvalue_commits decision states =
  let dec v st =
    match decision st with Some d -> Types.cvalue_equal d v | None -> false
  in
  [ ("commit:r1:0", count_of (dec (Types.Val Value.V0)) states);
    ("commit:r1:1", count_of (dec (Types.Val Value.V1)) states);
    ("commit:r1:bot", count_of (dec Types.Bot) states) ]

let graded_commits decision states =
  let dec v st =
    match decision st with
    | Some (Types.G2 w) | Some (Types.G1 w) -> Value.equal v w
    | Some Types.G0 | None -> false
  in
  let g0 st = match decision st with Some Types.G0 -> true | _ -> false in
  [ ("commit:r1:0", count_of (dec Value.V0) states);
    ("commit:r1:1", count_of (dec Value.V1) states);
    ("commit:r1:bot", count_of g0 states) ]

(* ------------------------------------------------------------------ *)
(* Algorithm 3                                                          *)
(* ------------------------------------------------------------------ *)

let check_bca_crash ~n ~t ~inputs ?(crashes = 0) ?max_configurations () =
  let cfg = Types.cfg ~n ~t in
  let q = Types.quorum cfg in
  let module Model = struct
    type state = B.t

    type msg = B.msg

    let n = n

    let init pid =
      let st = B.create cfg ~me:pid in
      let sends = B.start st ~input:inputs.(pid) in
      (st, sends)

    let handle st ~from m = B.handle st ~from m

    let copy_state = B.debug_copy

    let encode_state = B.debug_encode

    let encode_msg m = Format.asprintf "%a" B.pp_msg m

    let decided st = B.decision st <> None
  end in
  let module C = Modelcheck.Make (Model) in
  let decisions states = Array.to_list (Array.map B.decision states) in
  (* binding: count echo slots still open among live parties *)
  let allowed ~alive states =
    let echoed v =
      Array.to_list states
      |> List.filter (fun st ->
             match B.echoed st with
             | Some cv -> Types.cvalue_equal cv (Types.Val v)
             | None -> false)
      |> List.length
    in
    let open_slots =
      List.length
        (List.filter
           (fun pid -> alive.(pid) && B.echoed states.(pid) = None)
           (List.init n Fun.id))
    in
    List.filter (fun v -> echoed v + open_slots >= q) Value.both
  in
  let invariant ~alive states =
    let ds = List.filter_map Fun.id (decisions states) in
    let non_bot = List.filter_map (function Types.Val v -> Some v | Types.Bot -> None) ds in
    match non_bot with
    | v :: rest when not (List.for_all (Value.equal v) rest) -> Some "agreement violated"
    | _ ->
      if
        Array.for_all (Value.equal inputs.(0)) inputs
        && List.exists (fun d -> not (Types.cvalue_equal d (Types.Val inputs.(0)))) ds
      then Some "weak validity violated"
      else if ds <> [] then begin
        let ok = allowed ~alive states in
        if List.length ok > 1 then Some "binding violated: two values still decidable"
        else if
          List.exists
            (function Types.Val v -> not (List.exists (Value.equal v) ok) | Types.Bot -> false)
            ds
        then Some "binding violated: decision outside the allowed set"
        else None
      end
      else None
  in
  let terminal ~alive states =
    let stuck =
      List.exists
        (fun pid -> alive.(pid) && B.decision states.(pid) = None)
        (List.init n Fun.id)
    in
    (* with more than t crashes the quorum may be unreachable; only require
       termination when at least n - t parties are live *)
    let live = Array.to_list alive |> List.filter Fun.id |> List.length in
    if stuck && live >= q then Some "termination violated: network drained, party undecided"
    else None
  in
  let observe ~alive:_ states =
    phase_reach "quorum:echo:r1" (fun st -> B.echoed st <> None) states
    :: cvalue_commits B.decision states
  in
  C.explore ?max_configurations ~crashes ~observe ~invariant ~terminal ()

(* ------------------------------------------------------------------ *)
(* Algorithm 5                                                          *)
(* ------------------------------------------------------------------ *)

let check_gbca_crash ~n ~t ~inputs ?(crashes = 0) ?max_configurations () =
  let cfg = Types.cfg ~n ~t in
  let q = Types.quorum cfg in
  let module Model = struct
    type state = G.t

    type msg = G.msg

    let n = n

    let init pid =
      let st = G.create cfg ~me:pid in
      let sends = G.start st ~input:inputs.(pid) in
      (st, sends)

    let handle st ~from m = G.handle st ~from m

    let copy_state = G.debug_copy

    let encode_state = G.debug_encode

    let encode_msg m = Format.asprintf "%a" G.pp_msg m

    let decided st = G.decision st <> None
  end in
  let module C = Modelcheck.Make (Model) in
  let invariant ~alive:_ states =
    let ds = Array.to_list states |> List.filter_map G.decision in
    let graded_pair a b =
      match (a, b) with
      | (Types.G2 v | Types.G1 v), (Types.G2 w | Types.G1 w) -> Value.equal v w
      | Types.G2 _, Types.G0 | Types.G0, Types.G2 _ -> false
      | Types.G0, _ | _, Types.G0 -> true
    in
    if not (List.for_all (fun a -> List.for_all (graded_pair a) ds) ds) then
      Some "graded agreement violated"
    else if
      Array.for_all (Value.equal inputs.(0)) inputs
      && List.exists
           (function Types.G2 v -> not (Value.equal v inputs.(0)) | _ -> true)
           ds
    then Some "weak validity violated (unanimous inputs must yield grade 2)"
    else if ds <> [] then begin
      (* graded binding: two distinct non-bottom echo2 values must never
         coexist, and a value without a sent or assemblable echo2 cannot be
         decided at grade >= 1 *)
      let echo2 v =
        Array.to_list states
        |> List.filter (fun st ->
               match G.echo2_sent st with
               | Some cv -> Types.cvalue_equal cv (Types.Val v)
               | None -> false)
        |> List.length
      in
      if echo2 Value.V0 > 0 && echo2 Value.V1 > 0 then
        Some "graded binding violated: two echo2 values coexist"
      else begin
        let bound =
          if echo2 Value.V0 > 0 then Some Value.V0
          else if echo2 Value.V1 > 0 then Some Value.V1
          else None
        in
        match bound with
        | Some b
          when List.exists
                 (function
                   | Types.G2 v | Types.G1 v -> not (Value.equal v b)
                   | Types.G0 -> false)
                 ds ->
          Some "graded binding violated: grade >= 1 outside the bound value"
        | _ -> None
      end
    end
    else None
  in
  let terminal ~alive states =
    let stuck =
      List.exists
        (fun pid -> alive.(pid) && G.decision states.(pid) = None)
        (List.init n Fun.id)
    in
    let live = Array.to_list alive |> List.filter Fun.id |> List.length in
    if stuck && live >= q then Some "termination violated" else None
  in
  let observe ~alive:_ states =
    phase_reach "quorum:echo2:r1" (fun st -> G.echo2_sent st <> None) states
    :: graded_commits G.decision states
  in
  C.explore ?max_configurations ~crashes ~observe ~invariant ~terminal ()

(* ------------------------------------------------------------------ *)
(* Algorithm 4 with an injection-modelled Byzantine party.             *)
(* ------------------------------------------------------------------ *)

module Byz = Bca_core.Bca_byz

let check_bca_byz ~inputs ?max_configurations () =
  let cfg = Types.cfg ~n:4 ~t:1 in
  let q = Types.quorum cfg in
  let honest_n = 3 in
  let module Model = struct
    type state = Byz.t

    type msg = Byz.msg

    let n = honest_n

    let init pid =
      let st = Byz.create cfg ~me:pid in
      let sends = Byz.start st ~input:inputs.(pid) in
      (st, sends)

    let handle st ~from m = Byz.handle st ~from m

    let copy_state = Byz.debug_copy

    let encode_state = Byz.debug_encode

    let encode_msg m = Format.asprintf "%a" Byz.pp_msg m

    let decided st = Byz.decision st <> None
  end in
  let module C = Modelcheck.Make (Model) in
  let injections =
    List.concat_map
      (fun dst ->
        List.concat_map
          (fun v ->
            [ (3, dst, Byz.MEcho v); (3, dst, Byz.MEcho2 v); (3, dst, Byz.MEcho3 (Types.Val v)) ])
          Value.both
        @ [ (3, dst, Byz.MEcho3 Types.Bot) ])
      (List.init honest_n Fun.id)
  in
  let invariant ~alive:_ states =
    let ds = Array.to_list states |> List.filter_map Byz.decision in
    let non_bot = List.filter_map (function Types.Val v -> Some v | Types.Bot -> None) ds in
    match non_bot with
    | v :: rest when not (List.for_all (Value.equal v) rest) -> Some "agreement violated"
    | _ ->
      if
        Array.for_all (Value.equal inputs.(0)) (Array.sub inputs 0 honest_n)
        && List.exists (fun d -> not (Types.cvalue_equal d (Types.Val inputs.(0)))) ds
      then Some "validity violated"
      else begin
        (* Lemma 4.8: two distinct honest non-bottom echo3 values never
           coexist; and once someone decided, at most one value can still
           gather an n-t echo3 quorum (binding, Lemma 4.9). *)
        let echo3 v =
          Array.to_list states
          |> List.filter (fun st ->
                 match Byz.echo3_sent st with
                 | Some cv -> Types.cvalue_equal cv (Types.Val v)
                 | None -> false)
          |> List.length
        in
        if echo3 Value.V0 > 0 && echo3 Value.V1 > 0 then
          Some "Lemma 4.8 violated: two honest echo3 values"
        else if ds <> [] then begin
          let pending =
            Array.to_list states
            |> List.filter (fun st -> Byz.echo3_sent st = None)
            |> List.length
          in
          let possible v = echo3 v + pending + cfg.Types.t >= q in
          if possible Value.V0 && possible Value.V1 then Some "binding violated"
          else if
            List.exists
              (function Types.Val v -> not (possible v) | Types.Bot -> false)
              ds
          then Some "binding violated: decision outside allowed set"
          else None
        end
        else None
      end
  in
  let terminal ~alive:_ states =
    if Array.exists (fun st -> Byz.decision st = None) states then
      Some "termination violated: network drained, honest party undecided"
    else None
  in
  let observe ~alive:_ states =
    phase_reach "quorum:echo3:r1" (fun st -> Byz.echo3_sent st <> None) states
    :: cvalue_commits Byz.decision states
  in
  C.explore ?max_configurations ~injections ~observe ~invariant ~terminal ()

(* ------------------------------------------------------------------ *)
(* Algorithm 6 with an injection-modelled Byzantine party.             *)
(* ------------------------------------------------------------------ *)

module Gbyz = Bca_core.Gbca_byz

let check_gbca_byz ~inputs ?max_configurations () =
  let cfg = Types.cfg ~n:4 ~t:1 in
  let honest_n = 3 in
  let module Model = struct
    type state = Gbyz.t

    type msg = Gbyz.msg

    let n = honest_n

    let init pid =
      let st = Gbyz.create cfg ~me:pid in
      let sends = Gbyz.start st ~input:inputs.(pid) in
      (st, sends)

    let handle st ~from m = Gbyz.handle st ~from m

    let copy_state = Gbyz.debug_copy

    let encode_state = Gbyz.debug_encode

    let encode_msg m = Format.asprintf "%a" Gbyz.pp_msg m

    let decided st = Gbyz.decision st <> None
  end in
  let module C = Modelcheck.Make (Model) in
  let injections =
    List.concat_map
      (fun dst ->
        List.concat_map
          (fun v ->
            [ (3, dst, Gbyz.MEcho v);
              (3, dst, Gbyz.MEcho2 v);
              (3, dst, Gbyz.MEcho3 (Types.Val v));
              (3, dst, Gbyz.MEcho4 (Types.Val v));
              (3, dst, Gbyz.MEcho5 (Types.Val v)) ])
          Value.both
        @ [ (3, dst, Gbyz.MEcho5 Types.Bot) ])
      (List.init honest_n Fun.id)
  in
  let invariant ~alive:_ states =
    let ds = Array.to_list states |> List.filter_map Gbyz.decision in
    let graded_pair a b =
      match (a, b) with
      | (Types.G2 v | Types.G1 v), (Types.G2 w | Types.G1 w) -> Value.equal v w
      | Types.G2 _, Types.G0 | Types.G0, Types.G2 _ -> false
      | Types.G0, _ | _, Types.G0 -> true
    in
    if not (List.for_all (fun a -> List.for_all (graded_pair a) ds) ds) then
      Some "graded agreement violated"
    else if
      Array.for_all (Value.equal inputs.(0)) (Array.sub inputs 0 honest_n)
      && List.exists
           (function Types.G2 v -> not (Value.equal v inputs.(0)) | _ -> true)
           ds
    then Some "validity violated"
    else begin
      (* Lemma E.9 / 4.8 on the echo4 layer *)
      let echo4 v =
        Array.exists
          (fun st ->
            match Gbyz.echo4_sent st with
            | Some cv -> Types.cvalue_equal cv (Types.Val v)
            | None -> false)
          states
      in
      if echo4 Value.V0 && echo4 Value.V1 then
        Some "graded binding violated: two honest echo4 values"
      else if ds <> [] then begin
        let bound =
          if echo4 Value.V0 then Some Value.V0
          else if echo4 Value.V1 then Some Value.V1
          else None
        in
        match bound with
        | Some b
          when List.exists
                 (function
                   | Types.G2 v | Types.G1 v -> not (Value.equal v b)
                   | Types.G0 -> false)
                 ds ->
          Some "graded binding violated: grade >= 1 outside the bound value"
        | _ -> None
      end
      else None
    end
  in
  let terminal ~alive:_ states =
    if Array.exists (fun st -> Gbyz.decision st = None) states then
      Some "termination violated: network drained, honest party undecided"
    else None
  in
  let observe ~alive:_ states =
    phase_reach "quorum:echo4:r1" (fun st -> Gbyz.echo4_sent st <> None) states
    :: graded_commits Gbyz.decision states
  in
  C.explore ?max_configurations ~injections ~observe ~invariant ~terminal ()

(* Durable per-node write-ahead log: CRC'd self-delimiting records over an
   append-only fd, strict total decoding of possibly-torn tails.  See
   wal.mli for the format and the recovery safety argument. *)

module Wire = Bca_wire.Wire
module Event = Bca_obs.Event

type meta = {
  w_stack : string;
  w_eps : float;
  w_n : int;
  w_t : int;
  w_me : int;
  w_seed : int64;
  w_input : Bca_util.Value.t;
}

type record =
  | Meta of meta
  | Recv of string
  | Sent of { dst : int; frame : string }
  | Note of Bca_obs.Event.timed

type torn = { torn_off : int; torn_reason : string }

let tag_meta = 1
let tag_recv = 2
let tag_sent = 3
let tag_note = 4

(* a single WAL record body can carry at most one wire frame plus small
   framing overhead; anything larger in a length field is corruption *)
let max_record_body = Wire.default_max_body + 1024

let record_header_bytes = 9 (* tag u8 + len u32 + crc u32 *)

let crc_of s = Int32.to_int (Wire.crc32 s ~pos:0 ~len:(String.length s)) land 0xFFFFFFFF

let encode_record buf r =
  let body = Buffer.create 64 in
  let tag =
    match r with
    | Meta m ->
      Wire.Put.string body m.w_stack;
      Wire.Put.i64 body (Int64.bits_of_float m.w_eps);
      Wire.Put.varint body m.w_n;
      Wire.Put.varint body m.w_t;
      Wire.Put.varint body m.w_me;
      Wire.Put.i64 body m.w_seed;
      Wire.Put.value body m.w_input;
      tag_meta
    | Recv frame ->
      Buffer.add_string body frame;
      tag_recv
    | Sent { dst; frame } ->
      Wire.Put.varint body dst;
      Buffer.add_string body frame;
      tag_sent
    | Note ev ->
      Buffer.add_string body (Event.to_json ev);
      tag_note
  in
  let s = Buffer.contents body in
  Wire.Put.u8 buf tag;
  Wire.Put.u32 buf (String.length s);
  Wire.Put.u32 buf (crc_of s);
  Buffer.add_string buf s

(* Body decoders: operate on the exact body slice, raise Get.Malformed on
   any violation - the record loop below turns that into a torn tail. *)

let decode_meta body =
  let g = Wire.Get.create body ~pos:0 ~len:(String.length body) in
  let w_stack = Wire.Get.string g in
  let w_eps = Int64.float_of_bits (Wire.Get.i64 g) in
  let w_n = Wire.Get.varint g in
  let w_t = Wire.Get.varint g in
  let w_me = Wire.Get.varint g in
  let w_seed = Wire.Get.i64 g in
  let w_input = Wire.Get.value g in
  Wire.Get.expect_end g;
  { w_stack; w_eps; w_n; w_t; w_me; w_seed; w_input }

let decode_sent body =
  let g = Wire.Get.create body ~pos:0 ~len:(String.length body) in
  let dst = Wire.Get.varint g in
  let frame = Wire.Get.take g (Wire.Get.remaining g) in
  Sent { dst; frame }

(* One record starting at [pos]; Ok (record, next_pos) or Error reason.
   Total: every failure mode is a typed stop, nothing escapes. *)
let decode_one s ~pos =
  let len = String.length s in
  if len - pos < record_header_bytes then Error "truncated record header"
  else
    let g = Wire.Get.create s ~pos ~len:record_header_bytes in
    let tag = Wire.Get.u8 g in
    let body_len = Wire.Get.u32 g in
    let crc = Wire.Get.u32 g in
    if tag < tag_meta || tag > tag_note then Error (Printf.sprintf "bad record tag %d" tag)
    else if body_len > max_record_body then
      Error (Printf.sprintf "oversized record body (%d bytes)" body_len)
    else if not (Bca_util.Bounds.slice_ok ~pos:(pos + record_header_bytes) ~len:body_len len)
    then Error "truncated record body"
    else
      let body = String.sub s (pos + record_header_bytes) body_len in
      if crc_of body <> crc then Error "record CRC mismatch"
      else
        let record =
          try
            if tag = tag_meta then Ok (Meta (decode_meta body))
            else if tag = tag_recv then Ok (Recv body)
            else if tag = tag_sent then Ok (decode_sent body)
            else
              match Event.of_json body with
              | Ok ev -> Ok (Note ev)
              | Error e -> Error (Printf.sprintf "malformed note event: %s" e)
          with Wire.Get.Malformed e -> Error (Printf.sprintf "malformed record body: %s" e)
        in
        match record with
        | Ok r -> Ok (r, pos + record_header_bytes + body_len)
        | Error _ as e -> e

let decode s =
  let len = String.length s in
  let rec loop acc pos =
    if pos >= len then (List.rev acc, None)
    else
      match decode_one s ~pos with
      | Ok (r, next) -> loop (r :: acc) next
      | Error torn_reason -> (List.rev acc, Some { torn_off = pos; torn_reason })
  in
  loop [] 0

let valid_bytes s torn = match torn with None -> String.length s | Some t -> t.torn_off

(* {1 Appending} *)

type writer = {
  fd : Unix.file_descr;
  pending : Buffer.t;
  mutable w_bytes : int;
  mutable w_records : int;
  mutable w_closed : bool;
}

let write_all fd s =
  let len = String.length s in
  let rec loop pos = if pos < len then loop (pos + Unix.write_substring fd s pos (len - pos)) in
  loop 0

let create ~path meta =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  let w = { fd; pending = Buffer.create 4096; w_bytes = 0; w_records = 0; w_closed = false } in
  encode_record w.pending (Meta meta);
  w.w_records <- 1;
  w.w_bytes <- Buffer.length w.pending;
  write_all fd (Buffer.contents w.pending);
  Buffer.clear w.pending;
  Unix.fsync fd;
  w

let reopen ~path ~valid_bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  Unix.ftruncate fd valid_bytes;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; pending = Buffer.create 4096; w_bytes = 0; w_records = 0; w_closed = false }

let append w r =
  let before = Buffer.length w.pending in
  encode_record w.pending r;
  w.w_records <- w.w_records + 1;
  w.w_bytes <- w.w_bytes + (Buffer.length w.pending - before)

let flush w =
  if Buffer.length w.pending > 0 then begin
    write_all w.fd (Buffer.contents w.pending);
    Buffer.clear w.pending
  end;
  Unix.fsync w.fd

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    flush w;
    Unix.close w.fd
  end

let bytes_appended w = w.w_bytes

let records_appended w = w.w_records

(* {1 Loading} *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let load path =
  match read_file path with
  | Error e -> Error (Printf.sprintf "wal %s: %s" path e)
  | Ok bytes -> (
    match decode bytes with
    | Meta m :: records, torn -> Ok (m, records, torn)
    | _, Some t when t.torn_off = 0 ->
      Error (Printf.sprintf "wal %s: no valid header record (%s)" path t.torn_reason)
    | _ -> Error (Printf.sprintf "wal %s: first record is not a Meta header" path))

let file_path ~dir ~me = Filename.concat dir (Printf.sprintf "wal-%d.log" me)

(** Durable per-node write-ahead log for crash-recovery clusters.

    A WAL is an append-only file of self-delimiting, CRC'd records, one
    file per cluster node ([wal-<pid>.log] under [--wal-dir]).  A node
    writes enough to its WAL that a SIGKILL at any byte boundary - torn
    tail included - loses nothing the rest of the cluster may already have
    observed: the node's input and derivation seed (the {!Meta} header
    record), every protocol frame it delivered ({!Recv}, made durable
    {e before} the frame is applied), the frames it intended to transmit
    ({!Sent}, write-ordered before the actual send), and protocol
    milestones / decisions as observability events ({!Note}, stored in the
    [Bca_obs.Event] JSONL encoding).

    Because every stack is a deterministic state machine, the {!Meta} +
    {!Recv} prefix alone reconstructs the node's exact pre-crash state: the
    recovery driver ([Bca_transport.Cluster.run_node]) rebuilds the same
    protocol assembly from the logged seed and re-applies the logged
    deliveries in order, regenerating - and cross-checking against the
    {!Sent} records - every frame the node ever put on the wire.  {!Sent}
    and {!Note} records are therefore redundant for safety; they exist for
    divergence detection, re-announcement, and post-mortem inspection.

    {2 Record framing}

    Following the [Bca_wire] framing discipline, each record is

    {v
    offset  size  field
    0       1     tag (1 = Meta, 2 = Recv, 3 = Sent, 4 = Note)
    1       4     body length, big-endian
    5       4     CRC-32 (IEEE) of the body, big-endian
    9       len   body
    v}

    and decoding is strict and total: {!decode} never raises, whatever the
    input bytes, and returns the longest valid record prefix.  Anything
    after the first truncated, oversized, CRC-failing or malformed record
    is treated as a torn tail; {!reopen} truncates it away before the
    recovered node resumes appending. *)

type meta = {
  w_stack : string;  (** stack name, e.g. ["byz-strong"] *)
  w_eps : float;  (** local-coin epsilon (0.0 unless crash-local) *)
  w_n : int;
  w_t : int;
  w_me : int;  (** this node's pid *)
  w_seed : int64;  (** cluster seed the assembly derives from *)
  w_input : Bca_util.Value.t;  (** this node's input bit *)
}
(** The header record: everything needed to rebuild the node's protocol
    assembly deterministically.  Always the first record of a valid WAL;
    recovery refuses a WAL whose [meta] disagrees with the command line it
    was restarted with. *)

type record =
  | Meta of meta
  | Recv of string
      (** a protocol frame this node delivered, in canonical
          [Bca_wire.Wire] frame bytes; appended and fsync'd {e before} the
          frame is applied to the protocol state machine *)
  | Sent of { dst : int; frame : string }
      (** a frame this node handed to the transport for [dst];
          write-ordered before the transmit, flushed with the next
          delivery *)
  | Note of Bca_obs.Event.timed
      (** a protocol milestone (round entry, quorum, coin reveal, commit)
          in the obs JSONL encoding *)

type torn = {
  torn_off : int;  (** byte offset where the torn/invalid record starts *)
  torn_reason : string;
}

val encode_record : Buffer.t -> record -> unit
(** Append one framed record to [buf]. *)

val decode : string -> record list * torn option
(** Longest valid record prefix of a byte string.  Total: never raises.
    [torn = None] iff every byte was consumed by valid records; otherwise
    [torn_off] is the number of valid-prefix bytes. *)

val valid_bytes : string -> torn option -> int
(** The length of the valid prefix [decode] consumed: the whole string
    when [torn = None], [torn_off] otherwise. *)

(** {1 Appending} *)

type writer

val create : path:string -> meta -> writer
(** Start a fresh WAL at [path] (truncating any previous file), write the
    {!Meta} record and fsync it. *)

val reopen : path:string -> valid_bytes:int -> writer
(** Reopen an existing WAL for appending after recovery: the file is
    truncated to [valid_bytes] (discarding a torn tail) and subsequent
    {!append}s extend it. *)

val append : writer -> record -> unit
(** Buffer one record.  Nothing is durable until {!flush}. *)

val flush : writer -> unit
(** Write all buffered records and [fsync].  On return every record
    appended so far survives a crash of this process and of the OS page
    cache. *)

val close : writer -> unit
(** {!flush} then close the fd.  Idempotent. *)

val bytes_appended : writer -> int
(** Total record bytes appended through this writer (buffered or not);
    excludes bytes already in the file when {!reopen}ed. *)

val records_appended : writer -> int

(** {1 Loading} *)

val load : string -> (meta * record list * torn option, string) result
(** Read a WAL file and decode it.  [Ok (meta, records, torn)] gives the
    header, every following valid record in order, and the torn-tail
    diagnostic if the file ends mid-record.  [Error] when the file cannot
    be read or does not begin with a valid {!Meta} record. *)

val file_path : dir:string -> me:int -> string
(** [wal-<me>.log] under [dir] - the per-node naming convention shared by
    [bca_node --wal-dir] and the cluster supervisor. *)

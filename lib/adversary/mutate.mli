(** Chaos-plan mutation: the fuzzer's genetic operators.

    AFL mutates byte buffers; here the genome is a {!Chaos.plan} - a
    structured description of what the adversary does to a schedule - and
    the operators respect its invariants instead of flipping bits:
    partitions stay non-trivial cuts with heal points, probabilities stay
    inside [[0, 0.95]], trigger points stay non-negative, and the faulty
    set never exceeds the plan's [fault_budget] (so a mutated plan is
    always inside the Section 2 fault model; adaptive strategies are
    additionally budget-gated at runtime).

    All operators are pure functions of the given RNG's stream: the same
    RNG state and input plans yield the same output plan, which is what
    makes a fuzzing campaign replayable from its root seed. *)

val default_phases : string list
(** [["echo"; "echo2"; "echo3"; "decide"]] - the (G)BCA probe phase
    labels [Crash_at_phase] strategies draw from when no target-specific
    vocabulary is given. *)

val mutate :
  ?phases:string list ->
  ?allow_corrupt:bool ->
  Bca_util.Rng.t ->
  Chaos.plan ->
  Chaos.plan
(** One mutation burst: between one and four randomly chosen operators -
    reseed the plan's event stream, scale a link probability by 0.5-2x,
    add / remove / perturb a link override or partition, shift a crash or
    kill trigger by exactly one delivery or jitter it, toggle a corrupt
    party or perturb the corruption rate, bump the fairness budget, or add
    / remove an adaptive strategy ([Chaos.Corrupt_at_coin_reveal],
    [Chaos.Crash_at_phase] over [phases], default
    [["echo"; "echo2"; "echo3"; "decide"]]).  With [allow_corrupt = false]
    (default [true]) corruption-introducing operators (static corrupt
    parties and adaptive corruption) are disabled - pass the stack's fault
    model, exactly like [Chaos.gen]. *)

val splice : Bca_util.Rng.t -> Chaos.plan -> Chaos.plan -> Chaos.plan
(** Crossover: build a child taking each section (links, partitions,
    crashes, kills, corruption, adaptive, budgets) from one of the two
    parents, chosen by coin flip, plus a fresh [chaos_seed].  The parents
    must agree on [n]; otherwise the first parent is returned unchanged.
    The child's [fault_budget] is the {e smaller} of the parents' budgets,
    and its static faulty set is re-clamped to that budget, so splicing
    never escapes the fault model. *)

module Async = Bca_netsim.Async_exec
module Rng = Bca_util.Rng

type pid = int

type link = { p_drop : float; p_dup : float; p_delay : float }

let reliable = { p_drop = 0.; p_dup = 0.; p_delay = 0. }

type partition = { from_delivery : int; heal_delivery : int; side : bool array }

type crash = { victim : pid; at_delivery : int; last_recipients : pid list }

type plan = {
  chaos_seed : int64;
  n : int;
  default_link : link;
  link_overrides : ((pid * pid) * link) list;
  partitions : partition list;
  crashes : crash list;
  corrupt : pid list;
  p_corrupt : float;
  fairness : int;
}

let silent ~n =
  { chaos_seed = 0L;
    n;
    default_link = reliable;
    link_overrides = [];
    partitions = [];
    crashes = [];
    corrupt = [];
    p_corrupt = 0.;
    fairness = 0 }

let faulty_parties plan =
  List.sort_uniq Int.compare (List.map (fun c -> c.victim) plan.crashes @ plan.corrupt)

(* ------------------------------------------------------------------ *)
(* Random plan generation                                              *)
(* ------------------------------------------------------------------ *)

(* Scales chosen so a typical agreement run (hundreds to a few thousand
   deliveries at n <= 13) meets every scheduled event, yet drops stay rare
   enough that most runs still terminate. *)
let gen rng ~n ~max_faults ~allow_corrupt =
  let chaos_seed = Rng.int64 rng in
  let pfloat hi = float_of_int (Rng.int rng 1000) /. 1000.0 *. hi in
  let default_link =
    { p_drop = pfloat 0.01; p_dup = pfloat 0.05; p_delay = pfloat 0.3 }
  in
  let distinct_pids k =
    let rec draw acc k =
      if k = 0 then acc
      else
        let p = Rng.int rng n in
        if List.mem p acc then draw acc k else draw (p :: acc) (k - 1)
    in
    draw [] (min k n)
  in
  let link_overrides =
    List.init (Rng.int rng 4) (fun _ ->
        let src = Rng.int rng n and dst = Rng.int rng n in
        ((src, dst), { p_drop = pfloat 0.15; p_dup = pfloat 0.3; p_delay = pfloat 0.8 }))
  in
  let partitions =
    List.init (Rng.int rng 3) (fun _ ->
        let from_delivery = Rng.int rng 400 in
        let side = Array.init n (fun _ -> Rng.bool rng) in
        (* never a trivial cut: force at least one party on each side *)
        side.(0) <- true;
        side.(n - 1) <- false;
        { from_delivery;
          heal_delivery = from_delivery + 30 + Rng.int rng 370;
          side })
  in
  let faulty = distinct_pids (if max_faults <= 0 then 0 else Rng.int rng (max_faults + 1)) in
  let corrupt, crash_victims =
    if allow_corrupt then List.partition (fun _ -> Rng.bool rng) faulty else ([], faulty)
  in
  let crashes =
    List.map
      (fun victim ->
        { victim;
          at_delivery = Rng.int rng 500;
          last_recipients = List.filter (fun _ -> Rng.bool rng) (List.init n Fun.id) })
      crash_victims
  in
  { chaos_seed;
    n;
    default_link;
    link_overrides;
    partitions;
    crashes;
    corrupt;
    p_corrupt = (if corrupt = [] then 0. else 0.05 +. pfloat 0.25);
    fairness = Rng.int rng 3 }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let pp_link ppf l =
  Format.fprintf ppf "drop=%.3f dup=%.3f delay=%.3f" l.p_drop l.p_dup l.p_delay

let pp ppf plan =
  Format.fprintf ppf "@[<v>chaos plan (n=%d, seed=%Ld):" plan.n plan.chaos_seed;
  Format.fprintf ppf "@,  default link: %a; fairness budget %d/link" pp_link
    plan.default_link plan.fairness;
  List.iter
    (fun ((s, d), l) -> Format.fprintf ppf "@,  link %d->%d: %a" s d pp_link l)
    plan.link_overrides;
  List.iter
    (fun p ->
      let side b =
        Array.to_list p.side
        |> List.mapi (fun i x -> if x = b then Some i else None)
        |> List.filter_map Fun.id
        |> List.map string_of_int |> String.concat ","
      in
      Format.fprintf ppf "@,  partition [%d, %d): {%s} | {%s}" p.from_delivery
        p.heal_delivery (side true) (side false))
    plan.partitions;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  crash p%d at delivery %d (last recipients: %s)" c.victim
        c.at_delivery
        (String.concat "," (List.map string_of_int c.last_recipients)))
    plan.crashes;
  if plan.corrupt <> [] then
    Format.fprintf ppf "@,  corrupt parties {%s} at rate %.3f"
      (String.concat "," (List.map string_of_int plan.corrupt))
      plan.p_corrupt;
  Format.fprintf ppf "@]"

let to_string plan = Format.asprintf "%a" pp plan

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type 'm t = {
  plan : plan;
  exec : 'm Async.t;
  rng : Rng.t;
  links : link array;  (* n*n, row-major [src * n + dst] *)
  crash_done : bool array;
  healed : bool array;  (* per partition: healed early *)
  budget : int array;  (* n*n remaining honest-traffic drop+dup events *)
  corrupt_mask : bool array;
  mutable drops : int;
  mutable dups : int;
  mutable corruptions : int;
  mutable forced_heals : int;
}

let start plan exec =
  if Async.n exec <> plan.n then invalid_arg "Chaos.start: plan.n <> execution n";
  let n = plan.n in
  let links = Array.make (n * n) plan.default_link in
  List.iter
    (fun ((src, dst), l) ->
      if src >= 0 && src < n && dst >= 0 && dst < n then links.((src * n) + dst) <- l)
    plan.link_overrides;
  let corrupt_mask = Array.make n false in
  List.iter (fun p -> if p >= 0 && p < n then corrupt_mask.(p) <- true) plan.corrupt;
  { plan;
    exec;
    rng = Rng.create plan.chaos_seed;
    links;
    crash_done = Array.make (List.length plan.crashes) false;
    healed = Array.make (List.length plan.partitions) false;
    budget = Array.make (n * n) plan.fairness;
    corrupt_mask;
    drops = 0;
    dups = 0;
    corruptions = 0;
    forced_heals = 0 }

let link_of t ~src ~dst =
  if src >= 0 && src < t.plan.n then t.links.((src * t.plan.n) + dst)
  else t.plan.default_link

(* Unbounded drop/dup is only legal against traffic of faulty parties:
   already-crashed senders and corrupt (Byzantine) senders.  Out-of-band
   sources (injected adversary traffic) are faulty by construction. *)
let faulty_src t src =
  src < 0 || src >= t.plan.n || t.corrupt_mask.(src) || Async.crashed t.exec src

(* Spend one unit of the link's fairness budget, or fail. *)
let spend_budget t ~src ~dst =
  let i = (src * t.plan.n) + dst in
  if t.budget.(i) > 0 then begin
    t.budget.(i) <- t.budget.(i) - 1;
    true
  end
  else false

let may_unfair t ~src ~dst =
  faulty_src t src || spend_budget t ~src ~dst

let fire_due_crashes t =
  let delivered = Async.deliveries t.exec in
  List.iteri
    (fun i c ->
      if (not t.crash_done.(i)) && delivered >= c.at_delivery then begin
        t.crash_done.(i) <- true;
        Async.crash t.exec c.victim;
        Async.drop_outgoing t.exec ~src:c.victim ~keep:(fun env ->
            List.mem env.Async.dst c.last_recipients)
      end)
    t.plan.crashes

let crosses_cut t (env : _ Async.envelope) =
  let delivered = Async.deliveries t.exec in
  let src_in_range = env.src >= 0 && env.src < t.plan.n in
  src_in_range
  && List.exists Fun.id
       (List.mapi
          (fun i p ->
            (not t.healed.(i))
            && delivered >= p.from_delivery
            && delivered < p.heal_delivery
            && p.side.(env.src) <> p.side.(env.dst))
          t.plan.partitions)

(* Uniform reservoir pick over the partition-eligible slots: one pass, no
   allocation.  Draws one [Rng.int] per eligible slot, so the plan's event
   stream (and thus the whole run) is a pure function of the seed. *)
let pick_eligible t =
  let len = Async.pool_size t.exec in
  let chosen = ref (-1) in
  let count = ref 0 in
  for i = 0 to len - 1 do
    if not (crosses_cut t (Async.pool_get t.exec i)) then begin
      incr count;
      if Rng.int t.rng !count = 0 then chosen := i
    end
  done;
  if !count = 0 then None else Some !chosen

(* Everything in flight crosses an active cut: heal the earliest active
   partition so the execution keeps its asynchronous-model guarantee that
   every message is eventually delivered. *)
let force_heal t =
  let delivered = Async.deliveries t.exec in
  let rec earliest i best =
    match List.nth_opt t.plan.partitions i with
    | None -> best
    | Some p ->
      let active =
        (not t.healed.(i)) && delivered >= p.from_delivery && delivered < p.heal_delivery
      in
      let best =
        match best with
        | Some (_, bp) when active && p.from_delivery >= bp.from_delivery -> best
        | _ when active -> Some (i, p)
        | _ -> best
      in
      earliest (i + 1) best
  in
  match earliest 0 None with
  | Some (i, _) ->
    t.healed.(i) <- true;
    t.forced_heals <- t.forced_heals + 1;
    true
  | None -> false

let scheduler t =
  Async.indexed_scheduler (fun ~delivered:_ _ ->
      match pick_eligible t with
      | Some i -> Some i
      | None -> if force_heal t then pick_eligible t else None)

(* Corrupt one envelope of a faulty sender: either redirect it to a random
   party or swap its payload with another in-flight message of the same
   sender (a type-agnostic equivocation).  Returns true if anything
   changed. *)
let corrupt_env t (env : _ Async.envelope) =
  if Rng.bool t.rng then Async.redirect_eid t.exec env.eid ~dst:(Rng.int t.rng t.plan.n)
  else begin
    let len = Async.pool_size t.exec in
    let other = ref None in
    let count = ref 0 in
    for i = 0 to len - 1 do
      let e = Async.pool_get t.exec i in
      if e.Async.src = env.src && e.Async.eid <> env.eid then begin
        incr count;
        if Rng.int t.rng !count = 0 then other := Some e.Async.eid
      end
    done;
    match !other with
    | Some eid -> Async.swap_payloads t.exec env.eid eid
    | None -> false
  end

type event = [ `Delivered | `Dropped | `Empty ]

let rec step t : event =
  fire_due_crashes t;
  if Async.pool_size t.exec = 0 then `Empty
  else
    match pick_eligible t with
    | None -> if force_heal t then step t else `Empty
    | Some slot ->
      let env = Async.pool_get t.exec slot in
      (* extra delay: prefer a different eligible message this step *)
      let env =
        let l = link_of t ~src:env.Async.src ~dst:env.Async.dst in
        if l.p_delay > 0. && Rng.float t.rng < l.p_delay then
          match pick_eligible t with
          | Some slot' -> Async.pool_get t.exec slot'
          | None -> env
        else env
      in
      let src = env.Async.src and dst = env.Async.dst in
      let l = link_of t ~src ~dst in
      if l.p_drop > 0. && Rng.float t.rng < l.p_drop && may_unfair t ~src ~dst then begin
        ignore (Async.drop_eid t.exec env.Async.eid : _ option);
        t.drops <- t.drops + 1;
        `Dropped
      end
      else begin
        if l.p_dup > 0. && Rng.float t.rng < l.p_dup && may_unfair t ~src ~dst then
          if Async.duplicate_eid t.exec env.Async.eid then t.dups <- t.dups + 1;
        if
          src >= 0 && src < t.plan.n
          && t.corrupt_mask.(src)
          && t.plan.p_corrupt > 0.
          && Rng.float t.rng < t.plan.p_corrupt
        then if corrupt_env t env then t.corruptions <- t.corruptions + 1;
        ignore (Async.deliver_eid t.exec env.Async.eid : bool);
        `Delivered
      end

let run ?(max_deliveries = 1_000_000) ?(stop_when = fun _ -> false) t =
  let rec loop () =
    if Async.all_terminated t.exec then `All_terminated
    else if stop_when t.exec then `Stopped
    else if Async.deliveries t.exec >= max_deliveries then `Limit
    else
      match step t with
      | `Empty -> `Quiescent
      | `Delivered | `Dropped -> loop ()
  in
  loop ()

type stats = { drops : int; dups : int; corruptions : int; forced_heals : int }

let stats (t : _ t) =
  { drops = t.drops; dups = t.dups; corruptions = t.corruptions; forced_heals = t.forced_heals }

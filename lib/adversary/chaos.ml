module Async = Bca_netsim.Async_exec
module Rng = Bca_util.Rng
module Event = Bca_obs.Event

type pid = int

type link = { p_drop : float; p_dup : float; p_delay : float }

let reliable = { p_drop = 0.; p_dup = 0.; p_delay = 0. }

type partition = { from_delivery : int; heal_delivery : int; side : bool array }

type crash = { victim : pid; at_delivery : int; last_recipients : pid list }

type kill = { k_victim : pid; k_at_delivery : int; k_restart_delta : int }

type adaptive =
  | Corrupt_at_coin_reveal of { a_round : int; a_rate : float }
  | Crash_at_phase of { a_round : int; a_phase : string }

type plan = {
  chaos_seed : int64;
  reseeds : (int * int64) list;
      (* (delivery, seed): swap the schedule stream at these delivery
         counts.  The fuzzer's tail-mutation operator: a child plan with
         the parent's [chaos_seed] and one extra reseed point replays the
         parent's schedule byte-for-byte up to that delivery, then
         diverges - preserving a reached near-miss state while searching
         its completions. *)
  n : int;
  default_link : link;
  link_overrides : ((pid * pid) * link) list;
  partitions : partition list;
  crashes : crash list;
  kills : kill list;
  corrupt : pid list;
  p_corrupt : float;
  fairness : int;
  adaptive : adaptive list;
  fault_budget : int;
}

let silent ~n =
  { chaos_seed = 0L;
    reseeds = [];
    n;
    default_link = reliable;
    link_overrides = [];
    partitions = [];
    crashes = [];
    kills = [];
    corrupt = [];
    p_corrupt = 0.;
    fairness = 0;
    adaptive = [];
    fault_budget = 0 }

let faulty_parties plan =
  List.sort_uniq Int.compare (List.map (fun c -> c.victim) plan.crashes @ plan.corrupt)

let kill_victims plan = List.sort_uniq Int.compare (List.map (fun k -> k.k_victim) plan.kills)

(* ------------------------------------------------------------------ *)
(* Random plan generation                                              *)
(* ------------------------------------------------------------------ *)

(* Scales chosen so a typical agreement run (hundreds to a few thousand
   deliveries at n <= 13) meets every scheduled event, yet drops stay rare
   enough that most runs still terminate. *)
let gen ?(kills = 0) rng ~n ~max_faults ~allow_corrupt =
  let chaos_seed = Rng.int64 rng in
  let pfloat hi = float_of_int (Rng.int rng 1000) /. 1000.0 *. hi in
  let default_link =
    { p_drop = pfloat 0.01; p_dup = pfloat 0.05; p_delay = pfloat 0.3 }
  in
  let distinct_pids k =
    let rec draw acc k =
      if k = 0 then acc
      else
        let p = Rng.int rng n in
        if List.mem p acc then draw acc k else draw (p :: acc) (k - 1)
    in
    draw [] (min k n)
  in
  let link_overrides =
    List.init (Rng.int rng 4) (fun _ ->
        let src = Rng.int rng n and dst = Rng.int rng n in
        ((src, dst), { p_drop = pfloat 0.15; p_dup = pfloat 0.3; p_delay = pfloat 0.8 }))
  in
  let partitions =
    List.init (Rng.int rng 3) (fun _ ->
        let from_delivery = Rng.int rng 400 in
        let side = Array.init n (fun _ -> Rng.bool rng) in
        (* never a trivial cut: force at least one party on each side *)
        side.(0) <- true;
        side.(n - 1) <- false;
        { from_delivery;
          heal_delivery = from_delivery + 30 + Rng.int rng 370;
          side })
  in
  let faulty = distinct_pids (if max_faults <= 0 then 0 else Rng.int rng (max_faults + 1)) in
  let corrupt, crash_victims =
    if allow_corrupt then List.partition (fun _ -> Rng.bool rng) faulty else ([], faulty)
  in
  let crashes =
    List.map
      (fun victim ->
        { victim;
          at_delivery = Rng.int rng 500;
          last_recipients = List.filter (fun _ -> Rng.bool rng) (List.init n Fun.id) })
      crash_victims
  in
  let p_corrupt = if corrupt = [] then 0. else 0.05 +. pfloat 0.25 in
  let fairness = Rng.int rng 3 in
  (* kill/restart faults last, and only when asked for: with [kills = 0]
     no RNG draw happens here, so pre-existing seeded plans are
     bit-identical.  Victims are honest - they must be disjoint from the
     faulty set - and every kill carries a bounded restart point. *)
  let kill_faults =
    if kills <= 0 then []
    else begin
      let candidates = List.filter (fun p -> not (List.mem p faulty)) (List.init n Fun.id) in
      let rec draw acc pool k =
        if k = 0 || pool = [] then acc
        else
          let i = Rng.int rng (List.length pool) in
          let v = List.nth pool i in
          draw (v :: acc) (List.filter (fun p -> p <> v) pool) (k - 1)
      in
      let victims = draw [] candidates (min kills (List.length candidates)) in
      List.map
        (fun k_victim ->
          { k_victim;
            k_at_delivery = Rng.int rng 600;
            k_restart_delta = 1 + Rng.int rng 400 })
        victims
    end
  in
  { chaos_seed;
    reseeds = [];
    n;
    default_link;
    link_overrides;
    partitions;
    crashes;
    kills = kill_faults;
    corrupt;
    p_corrupt;
    fairness;
    adaptive = [];
    fault_budget = max max_faults 0 }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let pp_link ppf l =
  Format.fprintf ppf "drop=%.3f dup=%.3f delay=%.3f" l.p_drop l.p_dup l.p_delay

let pp_adaptive ppf = function
  | Corrupt_at_coin_reveal { a_round; a_rate } ->
    Format.fprintf ppf "corrupt-at-coin-reveal %s at rate %.3f"
      (if a_round = 0 then "(any round)" else "round " ^ string_of_int a_round)
      a_rate
  | Crash_at_phase { a_round; a_phase } ->
    Format.fprintf ppf "crash-at-phase %s %s" a_phase
      (if a_round = 0 then "(any round)" else "round " ^ string_of_int a_round)

let pp ppf plan =
  Format.fprintf ppf "@[<v>chaos plan (n=%d, seed=%Ld, fault budget %d):" plan.n
    plan.chaos_seed plan.fault_budget;
  Format.fprintf ppf "@,  default link: %a; fairness budget %d/link" pp_link
    plan.default_link plan.fairness;
  List.iter
    (fun ((s, d), l) -> Format.fprintf ppf "@,  link %d->%d: %a" s d pp_link l)
    plan.link_overrides;
  List.iter
    (fun p ->
      let side b =
        Array.to_list p.side
        |> List.mapi (fun i x -> if x = b then Some i else None)
        |> List.filter_map Fun.id
        |> List.map string_of_int |> String.concat ","
      in
      Format.fprintf ppf "@,  partition [%d, %d): {%s} | {%s}" p.from_delivery
        p.heal_delivery (side true) (side false))
    plan.partitions;
  List.iter
    (fun (c : crash) ->
      Format.fprintf ppf "@,  crash p%d at delivery %d (last recipients: %s)" c.victim
        c.at_delivery
        (String.concat "," (List.map string_of_int c.last_recipients)))
    plan.crashes;
  List.iter
    (fun k ->
      Format.fprintf ppf "@,  kill/restart p%d at delivery %d, restart +%d" k.k_victim
        k.k_at_delivery k.k_restart_delta)
    plan.kills;
  if plan.corrupt <> [] then
    Format.fprintf ppf "@,  corrupt parties {%s} at rate %.3f"
      (String.concat "," (List.map string_of_int plan.corrupt))
      plan.p_corrupt;
  List.iter (fun a -> Format.fprintf ppf "@,  adaptive: %a" pp_adaptive a) plan.adaptive;
  List.iter
    (fun (d, s) -> Format.fprintf ppf "@,  reseed schedule stream at delivery %d (seed %Ld)" d s)
    plan.reseeds;
  Format.fprintf ppf "@]"

let to_string plan = Format.asprintf "%a" pp plan

(* ---- compact corpus codec ----------------------------------------- *)

(* One line, '|'-separated sections, ';'-separated list items.  Floats are
   hexadecimal ([%h]) so parsing reproduces the exact bits; the seed is
   hexadecimal int64.  The format is versioned by its leading tag. *)

let fstr f = Printf.sprintf "%h" f

let link_str l = Printf.sprintf "%s:%s:%s" (fstr l.p_drop) (fstr l.p_dup) (fstr l.p_delay)

let pids_str ps = String.concat "," (List.map string_of_int ps)

let adaptive_str = function
  | Corrupt_at_coin_reveal { a_round; a_rate } ->
    Printf.sprintf "coin:%d:%s" a_round (fstr a_rate)
  | Crash_at_phase { a_round; a_phase } -> Printf.sprintf "crash:%d:%s" a_round a_phase

let plan_to_string plan =
  let items f l = String.concat ";" (List.map f l) in
  String.concat "|"
    [ "cp2";
      Printf.sprintf "seed=%Lx" plan.chaos_seed;
      Printf.sprintf "n=%d" plan.n;
      Printf.sprintf "fb=%d" plan.fault_budget;
      Printf.sprintf "fair=%d" plan.fairness;
      "pc=" ^ fstr plan.p_corrupt;
      "dl=" ^ link_str plan.default_link;
      "ov="
      ^ items
          (fun ((s, d), l) -> Printf.sprintf "%d>%d=%s" s d (link_str l))
          plan.link_overrides;
      "part="
      ^ items
          (fun p ->
            let members =
              Array.to_list p.side
              |> List.mapi (fun i x -> if x then Some i else None)
              |> List.filter_map Fun.id
            in
            Printf.sprintf "%d-%d=%s" p.from_delivery p.heal_delivery (pids_str members))
          plan.partitions;
      "cr="
      ^ items
          (fun (c : crash) ->
            Printf.sprintf "%d@%d=%s" c.victim c.at_delivery (pids_str c.last_recipients))
          plan.crashes;
      "k="
      ^ items
          (fun k -> Printf.sprintf "%d@%d+%d" k.k_victim k.k_at_delivery k.k_restart_delta)
          plan.kills;
      "co=" ^ pids_str plan.corrupt;
      "ad=" ^ items adaptive_str plan.adaptive;
      "rs="
      ^ items (fun (d, s) -> Printf.sprintf "%d@%Lx" d s) plan.reseeds ]

exception Bad of string

let plan_of_string line =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let int_of s what = match int_of_string_opt s with Some i -> i | None -> fail "bad %s %S" what s in
  let float_of s what =
    match float_of_string_opt s with Some f -> f | None -> fail "bad %s %S" what s
  in
  let split2 ch s what =
    match String.index_opt s ch with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> fail "bad %s %S: missing %C" what s ch
  in
  let items s = if String.equal s "" then [] else String.split_on_char ';' s in
  let pids_of s what =
    if String.equal s "" then []
    else List.map (fun p -> int_of p what) (String.split_on_char ',' s)
  in
  let link_of s what =
    match String.split_on_char ':' s with
    | [ d; u; y ] ->
      { p_drop = float_of d what; p_dup = float_of u what; p_delay = float_of y what }
    | _ -> fail "bad %s %S" what s
  in
  try
    match String.split_on_char '|' line with
    | tag :: fields when String.equal tag "cp2" ->
      let get key =
        let prefix = key ^ "=" in
        let plen = String.length prefix in
        match
          List.find_opt
            (fun f -> String.length f >= plen && String.equal (String.sub f 0 plen) prefix)
            fields
        with
        | Some f -> String.sub f plen (String.length f - plen)
        | None -> fail "missing field %s" key
      in
      let n = int_of (get "n") "n" in
      if n <= 0 then fail "bad n %d" n;
      let seed =
        let s = get "seed" in
        match Int64.of_string_opt ("0x" ^ s) with
        | Some v -> v
        | None -> fail "bad seed %S" s
      in
      let partitions =
        List.map
          (fun item ->
            let range, members = split2 '=' item "partition" in
            let from_s, heal_s = split2 '-' range "partition range" in
            let side = Array.make n false in
            List.iter
              (fun p -> if p >= 0 && p < n then side.(p) <- true)
              (pids_of members "partition member");
            { from_delivery = int_of from_s "partition from";
              heal_delivery = int_of heal_s "partition heal";
              side })
          (items (get "part"))
      in
      let crashes =
        List.map
          (fun item ->
            let head, recips = split2 '=' item "crash" in
            let victim_s, at_s = split2 '@' head "crash head" in
            { victim = int_of victim_s "crash victim";
              at_delivery = int_of at_s "crash delivery";
              last_recipients = pids_of recips "crash recipient" })
          (items (get "cr"))
      in
      let kills =
        List.map
          (fun item ->
            let victim_s, rest = split2 '@' item "kill" in
            let at_s, delta_s = split2 '+' rest "kill timing" in
            { k_victim = int_of victim_s "kill victim";
              k_at_delivery = int_of at_s "kill delivery";
              k_restart_delta = int_of delta_s "kill restart" })
          (items (get "k"))
      in
      let link_overrides =
        List.map
          (fun item ->
            let head, l = split2 '=' item "override" in
            let src_s, dst_s = split2 '>' head "override link" in
            ((int_of src_s "override src", int_of dst_s "override dst"), link_of l "override"))
          (items (get "ov"))
      in
      let adaptive =
        List.map
          (fun item ->
            match String.split_on_char ':' item with
            | [ kind; round_s; arg ] when String.equal kind "coin" ->
              Corrupt_at_coin_reveal
                { a_round = int_of round_s "adaptive round"; a_rate = float_of arg "adaptive rate" }
            | [ kind; round_s; arg ] when String.equal kind "crash" ->
              Crash_at_phase { a_round = int_of round_s "adaptive round"; a_phase = arg }
            | _ -> fail "bad adaptive %S" item)
          (items (get "ad"))
      in
      let reseeds =
        List.map
          (fun item ->
            let d_s, seed_s = split2 '@' item "reseed" in
            let s =
              match Int64.of_string_opt ("0x" ^ seed_s) with
              | Some v -> v
              | None -> fail "bad reseed seed %S" seed_s
            in
            (int_of d_s "reseed delivery", s))
          (items (get "rs"))
      in
      Ok
        { chaos_seed = seed;
          reseeds;
          n;
          default_link = link_of (get "dl") "default link";
          link_overrides;
          partitions;
          crashes;
          kills;
          corrupt = pids_of (get "co") "corrupt pid";
          p_corrupt = float_of (get "pc") "p_corrupt";
          fairness = int_of (get "fair") "fairness";
          adaptive;
          fault_budget = int_of (get "fb") "fault budget" }
    | tag :: _ -> Error (Printf.sprintf "unknown plan format %S" tag)
    | [] -> Error "empty plan line"
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Per-kill runtime state.  While the victim is down the engine buffers
   every message the network would have lost - its in-flight inbound
   traffic at the kill, anything addressed to it while dead, and the
   out-ring sends the SIGKILL tore away - and re-injects all of it at the
   restart, modelling the rejoin handshake (peers resend their history,
   the victim re-announces).  [kl_*] lists are kept reversed. *)
type 'm kill_state = {
  mutable kl_phase : [ `Pending | `Down | `Done ];
  mutable kl_restart_at : int;
  mutable kl_lost_in : (pid * 'm) list;  (* (src, payload) addressed to victim *)
  mutable kl_lost_out : (pid * 'm) list;  (* (dst, payload) from victim *)
}

type corruption = {
  at_delivery : int;
  c_src : pid;
  c_eid : int;
  c_act : [ `Redirect of pid | `Swap of int ];
}

let corruption_log_cap = 64

let pp_corruption ppf c =
  match c.c_act with
  | `Redirect dst ->
    Format.fprintf ppf "at delivery %d: p%d's envelope %d redirected to p%d" c.at_delivery
      c.c_src c.c_eid dst
  | `Swap other ->
    Format.fprintf ppf "at delivery %d: p%d's envelope %d payload-swapped with envelope %d"
      c.at_delivery c.c_src c.c_eid other

type 'm t = {
  plan : plan;
  exec : 'm Async.t;
  mutable rng : Rng.t;
  mutable reseeds_left : (int * int64) list;  (* sorted by delivery *)
  links : link array;  (* n*n, row-major [src * n + dst] *)
  crash_done : bool array;
  kill_states : 'm kill_state array;  (* parallel to plan.kills *)
  healed : bool array;  (* per partition: healed early *)
  budget : int array;  (* n*n remaining honest-traffic drop+dup events *)
  corrupt_mask : bool array;
  corrupt_rate : float array;  (* per-party corruption probability *)
  adaptive_fired : pid option array;  (* parallel to plan.adaptive *)
  mutable pending : (int * [ `Corrupt of pid * float | `Crash of pid ]) list;
  mutable adaptive_count : int;  (* victims created by adaptive strategies *)
  mutable on_adaptive : [ `Corrupted of pid | `Crashed of pid ] -> unit;
  mutable clog : corruption list;  (* reversed; capped *)
  mutable clog_len : int;
  mutable drops : int;
  mutable dups : int;
  mutable corruptions : int;
  mutable forced_heals : int;
  mutable kills_fired : int;
  mutable restarts : int;
  mutable kill_buffered : int;
  mutable adaptive_corruptions : int;
  mutable adaptive_crashes : int;
}

let start plan exec =
  if Async.n exec <> plan.n then invalid_arg "Chaos.start: plan.n <> execution n";
  let n = plan.n in
  let links = Array.make (n * n) plan.default_link in
  List.iter
    (fun ((src, dst), l) ->
      if src >= 0 && src < n && dst >= 0 && dst < n then links.((src * n) + dst) <- l)
    plan.link_overrides;
  let corrupt_mask = Array.make n false in
  let corrupt_rate = Array.make n 0. in
  List.iter
    (fun p ->
      if p >= 0 && p < n then begin
        corrupt_mask.(p) <- true;
        corrupt_rate.(p) <- plan.p_corrupt
      end)
    plan.corrupt;
  { plan;
    exec;
    rng = Rng.create plan.chaos_seed;
    reseeds_left =
      List.sort (fun (d1, _) (d2, _) -> Int.compare d1 d2) plan.reseeds;
    links;
    crash_done = Array.make (List.length plan.crashes) false;
    kill_states =
      Array.init (List.length plan.kills) (fun _ ->
          { kl_phase = `Pending; kl_restart_at = 0; kl_lost_in = []; kl_lost_out = [] });
    healed = Array.make (List.length plan.partitions) false;
    budget = Array.make (n * n) plan.fairness;
    corrupt_mask;
    corrupt_rate;
    adaptive_fired = Array.make (List.length plan.adaptive) None;
    pending = [];
    adaptive_count = 0;
    on_adaptive = (fun _ -> ());
    clog = [];
    clog_len = 0;
    drops = 0;
    dups = 0;
    corruptions = 0;
    forced_heals = 0;
    kills_fired = 0;
    restarts = 0;
    kill_buffered = 0;
    adaptive_corruptions = 0;
    adaptive_crashes = 0 }

let on_adaptive t f = t.on_adaptive <- f

let is_corrupt t p = p >= 0 && p < t.plan.n && t.corrupt_mask.(p)

(* ---- adaptive strategies ------------------------------------------ *)

(* The budget gate: static faulty parties are reserved up front (a crash
   scheduled for later will still fire), adaptive victims accumulate as
   they trigger.  Whatever the schedule, total faults never exceed the
   plan's budget - the fault-model honesty contract. *)
let budget_admits t =
  List.length (faulty_parties t.plan) + t.adaptive_count < t.plan.fault_budget

let notify t (ev : Event.t) =
  if t.plan.adaptive <> [] then
    match ev with
    | Event.Coin_reveal { pid; round; _ } ->
      List.iteri
        (fun i a ->
          match a with
          | Corrupt_at_coin_reveal { a_round; a_rate }
            when Option.is_none t.adaptive_fired.(i)
                 && (a_round = 0 || a_round = round)
                 && pid >= 0 && pid < t.plan.n
                 && (not t.corrupt_mask.(pid))
                 && (not (Async.crashed t.exec pid))
                 && budget_admits t ->
            t.adaptive_fired.(i) <- Some pid;
            t.adaptive_count <- t.adaptive_count + 1;
            t.pending <- t.pending @ [ (i, `Corrupt (pid, a_rate)) ]
          | _ -> ())
        t.plan.adaptive
    | Event.Quorum { pid; round; phase } ->
      List.iteri
        (fun i a ->
          match a with
          | Crash_at_phase { a_round; a_phase }
            when Option.is_none t.adaptive_fired.(i)
                 && (a_round = 0 || a_round = round)
                 && String.equal a_phase phase
                 && pid >= 0 && pid < t.plan.n
                 && (not t.corrupt_mask.(pid))
                 && (not (Async.crashed t.exec pid))
                 && budget_admits t ->
            t.adaptive_fired.(i) <- Some pid;
            t.adaptive_count <- t.adaptive_count + 1;
            t.pending <- t.pending @ [ (i, `Crash pid) ]
          | _ -> ())
        t.plan.adaptive
    | _ -> ()

let apply_pending t =
  match t.pending with
  | [] -> ()
  | queued ->
    t.pending <- [];
    List.iter
      (fun (_, action) ->
        match action with
        | `Corrupt (pid, rate) ->
          t.corrupt_mask.(pid) <- true;
          t.corrupt_rate.(pid) <- rate;
          t.adaptive_corruptions <- t.adaptive_corruptions + 1;
          t.on_adaptive (`Corrupted pid)
        | `Crash pid ->
          if not (Async.crashed t.exec pid) then begin
            Async.crash t.exec pid;
            t.adaptive_crashes <- t.adaptive_crashes + 1;
            t.on_adaptive (`Crashed pid)
          end)
      queued

let link_of t ~src ~dst =
  if src >= 0 && src < t.plan.n then t.links.((src * t.plan.n) + dst)
  else t.plan.default_link

(* Unbounded drop/dup is only legal against traffic of faulty parties:
   already-crashed senders and corrupt (Byzantine) senders.  Out-of-band
   sources (injected adversary traffic) are faulty by construction. *)
let faulty_src t src =
  src < 0 || src >= t.plan.n || t.corrupt_mask.(src) || Async.crashed t.exec src

(* Spend one unit of the link's fairness budget, or fail. *)
let spend_budget t ~src ~dst =
  let i = (src * t.plan.n) + dst in
  if t.budget.(i) > 0 then begin
    t.budget.(i) <- t.budget.(i) - 1;
    true
  end
  else false

let may_unfair t ~src ~dst =
  faulty_src t src || spend_budget t ~src ~dst

let fire_due_crashes t =
  let delivered = Async.deliveries t.exec in
  List.iteri
    (fun i (c : crash) ->
      if (not t.crash_done.(i)) && delivered >= c.at_delivery then begin
        t.crash_done.(i) <- true;
        Async.crash t.exec c.victim;
        Async.drop_outgoing t.exec ~src:c.victim ~keep:(fun env ->
            List.mem env.Async.dst c.last_recipients)
      end)
    t.plan.crashes

(* ---- kill/restart (crash-recovery) faults ------------------------- *)

let fire_due_kills t =
  let delivered = Async.deliveries t.exec in
  List.iteri
    (fun i k ->
      let ks = t.kill_states.(i) in
      match ks.kl_phase with
      | `Down | `Done -> ()
      | `Pending ->
        if delivered >= k.k_at_delivery && not (Async.crashed t.exec k.k_victim) then begin
          ks.kl_phase <- `Down;
          ks.kl_restart_at <- delivered + max 1 k.k_restart_delta;
          t.kills_fired <- t.kills_fired + 1;
          Async.crash t.exec k.k_victim;
          (* the SIGKILL empties the victim's kernel receive buffer and
             tears its half-flushed output ring: buffer all inbound
             in-flight traffic for the rejoin resend, and tear away (but
             buffer for re-announcement) each outbound in-flight frame
             with probability 1/2 *)
          let inbound = ref [] and outbound = ref [] in
          let len = Async.pool_size t.exec in
          for s = 0 to len - 1 do
            let env = Async.pool_get t.exec s in
            if env.Async.dst = k.k_victim then inbound := env.Async.eid :: !inbound
            else if env.Async.src = k.k_victim && Rng.bool t.rng then
              outbound := env.Async.eid :: !outbound
          done;
          let buffer_into store keep_end env =
            store := keep_end env :: !store;
            t.kill_buffered <- t.kill_buffered + 1
          in
          let lost_in = ref [] and lost_out = ref [] in
          List.iter
            (fun eid ->
              match Async.drop_eid t.exec eid with
              | Some env -> buffer_into lost_in (fun e -> (e.Async.src, e.Async.payload)) env
              | None -> ())
            (List.rev !inbound);
          List.iter
            (fun eid ->
              match Async.drop_eid t.exec eid with
              | Some env -> buffer_into lost_out (fun e -> (e.Async.dst, e.Async.payload)) env
              | None -> ())
            (List.rev !outbound);
          ks.kl_lost_in <- !lost_in @ ks.kl_lost_in;
          ks.kl_lost_out <- !lost_out @ ks.kl_lost_out
        end)
    t.plan.kills

(* Restart = the supervisor respawned the victim with --recover: the WAL
   replay restores exactly the pre-kill state (Async.revive), then the
   rejoin handshake re-delivers what the network lost - peers resend their
   history toward the victim, the victim re-announces its torn sends. *)
let restart_kill t i =
  let k = List.nth t.plan.kills i in
  let ks = t.kill_states.(i) in
  ks.kl_phase <- `Done;
  t.restarts <- t.restarts + 1;
  Async.revive t.exec k.k_victim;
  List.iter
    (fun (src, m) -> Async.inject t.exec ~src [ Bca_netsim.Node.Unicast (k.k_victim, m) ])
    (List.rev ks.kl_lost_in);
  List.iter
    (fun (dst, m) -> Async.inject t.exec ~src:k.k_victim [ Bca_netsim.Node.Unicast (dst, m) ])
    (List.rev ks.kl_lost_out);
  ks.kl_lost_in <- [];
  ks.kl_lost_out <- []

let fire_due_restarts t =
  let delivered = Async.deliveries t.exec in
  Array.iteri
    (fun i ks ->
      match ks.kl_phase with
      | `Down when delivered >= ks.kl_restart_at -> restart_kill t i
      | _ -> ())
    t.kill_states

(* The pool can only progress through a pending restart (everything else
   is quiescent): the supervisor's backoff always eventually elapses, so
   fire the earliest-due restart now instead of reporting a false
   quiescence. *)
let force_restart t =
  let idx = ref (-1) in
  Array.iteri
    (fun i ks ->
      match ks.kl_phase with
      | `Down ->
        if !idx < 0 || ks.kl_restart_at < t.kill_states.(!idx).kl_restart_at then idx := i
      | _ -> ())
    t.kill_states;
  if !idx >= 0 then begin
    restart_kill t !idx;
    true
  end
  else false

(* Index of the kill keeping [pid] down right now, if any. *)
let down_kill t pid =
  let idx = ref (-1) in
  List.iteri
    (fun i k ->
      if k.k_victim = pid then
        match t.kill_states.(i).kl_phase with `Down -> idx := i | `Pending | `Done -> ())
    t.plan.kills;
  if !idx >= 0 then Some !idx else None

let crosses_cut t (env : _ Async.envelope) =
  let delivered = Async.deliveries t.exec in
  let src_in_range = env.src >= 0 && env.src < t.plan.n in
  src_in_range
  && List.exists Fun.id
       (List.mapi
          (fun i p ->
            (not t.healed.(i))
            && delivered >= p.from_delivery
            && delivered < p.heal_delivery
            && p.side.(env.src) <> p.side.(env.dst))
          t.plan.partitions)

(* Uniform reservoir pick over the partition-eligible slots: one pass, no
   allocation.  Draws one [Rng.int] per eligible slot, so the plan's event
   stream (and thus the whole run) is a pure function of the seed. *)
let pick_eligible t =
  let len = Async.pool_size t.exec in
  let chosen = ref (-1) in
  let count = ref 0 in
  for i = 0 to len - 1 do
    if not (crosses_cut t (Async.pool_get t.exec i)) then begin
      incr count;
      if Rng.int t.rng !count = 0 then chosen := i
    end
  done;
  if !count = 0 then None else Some !chosen

(* Everything in flight crosses an active cut: heal the earliest active
   partition so the execution keeps its asynchronous-model guarantee that
   every message is eventually delivered. *)
let force_heal t =
  let delivered = Async.deliveries t.exec in
  let rec earliest i best =
    match List.nth_opt t.plan.partitions i with
    | None -> best
    | Some p ->
      let active =
        (not t.healed.(i)) && delivered >= p.from_delivery && delivered < p.heal_delivery
      in
      let best =
        match best with
        | Some (_, bp) when active && p.from_delivery >= bp.from_delivery -> best
        | _ when active -> Some (i, p)
        | _ -> best
      in
      earliest (i + 1) best
  in
  match earliest 0 None with
  | Some (i, _) ->
    t.healed.(i) <- true;
    t.forced_heals <- t.forced_heals + 1;
    true
  | None -> false

let scheduler t =
  Async.indexed_scheduler (fun ~delivered:_ _ ->
      match pick_eligible t with
      | Some i -> Some i
      | None -> if force_heal t then pick_eligible t else None)

let log_corruption t ~src ~eid act =
  if t.clog_len < corruption_log_cap then begin
    t.clog <-
      { at_delivery = Async.deliveries t.exec; c_src = src; c_eid = eid; c_act = act }
      :: t.clog;
    t.clog_len <- t.clog_len + 1
  end

(* Corrupt one envelope of a faulty sender: either redirect it to a random
   party or swap its payload with another in-flight message of the same
   sender (a type-agnostic equivocation).  Returns true if anything
   changed; the choice made (redirect target, swap partner) is recorded in
   the corruption log so violation reports carry it. *)
let corrupt_env t (env : _ Async.envelope) =
  if Rng.bool t.rng then begin
    let dst = Rng.int t.rng t.plan.n in
    let changed = Async.redirect_eid t.exec env.eid ~dst in
    if changed then log_corruption t ~src:env.src ~eid:env.eid (`Redirect dst);
    changed
  end
  else begin
    let len = Async.pool_size t.exec in
    let other = ref None in
    let count = ref 0 in
    for i = 0 to len - 1 do
      let e = Async.pool_get t.exec i in
      if e.Async.src = env.src && e.Async.eid <> env.eid then begin
        incr count;
        if Rng.int t.rng !count = 0 then other := Some e.Async.eid
      end
    done;
    match !other with
    | Some eid ->
      let changed = Async.swap_payloads t.exec env.eid eid in
      if changed then log_corruption t ~src:env.src ~eid:env.eid (`Swap eid);
      changed
    | None -> false
  end

type event = [ `Delivered | `Dropped | `Empty ]

let fire_due_reseeds t =
  let delivered = Async.deliveries t.exec in
  let rec go () =
    match t.reseeds_left with
    | (d, s) :: rest when delivered >= d ->
      t.rng <- Rng.create s;
      t.reseeds_left <- rest;
      go ()
    | _ -> ()
  in
  go ()

let rec step t : event =
  fire_due_reseeds t;
  apply_pending t;
  fire_due_crashes t;
  fire_due_kills t;
  fire_due_restarts t;
  if Async.pool_size t.exec = 0 then if force_restart t then step t else `Empty
  else
    match pick_eligible t with
    | None -> if force_heal t || force_restart t then step t else `Empty
    | Some slot ->
      let env = Async.pool_get t.exec slot in
      (* extra delay: prefer a different eligible message this step *)
      let env =
        let l = link_of t ~src:env.Async.src ~dst:env.Async.dst in
        if l.p_delay > 0. && Rng.float t.rng < l.p_delay then
          match pick_eligible t with
          | Some slot' -> Async.pool_get t.exec slot'
          | None -> env
        else env
      in
      let src = env.Async.src and dst = env.Async.dst in
      match down_kill t dst with
      | Some i ->
        (* addressed to a killed-but-not-restarted victim: what a live
           network would buffer in retry queues and resend at rejoin *)
        (match Async.drop_eid t.exec env.Async.eid with
        | Some e ->
          let ks = t.kill_states.(i) in
          ks.kl_lost_in <- (e.Async.src, e.Async.payload) :: ks.kl_lost_in;
          t.kill_buffered <- t.kill_buffered + 1
        | None -> ());
        `Dropped
      | None ->
      let l = link_of t ~src ~dst in
      if l.p_drop > 0. && Rng.float t.rng < l.p_drop && may_unfair t ~src ~dst then begin
        (match Async.drop_eid t.exec env.Async.eid with
        | Some e -> (
          (* a down victim's own traffic stays recoverable: it will be
             re-announced at the restart *)
          match down_kill t src with
          | Some i ->
            let ks = t.kill_states.(i) in
            ks.kl_lost_out <- (e.Async.dst, e.Async.payload) :: ks.kl_lost_out;
            t.kill_buffered <- t.kill_buffered + 1
          | None -> ())
        | None -> ());
        t.drops <- t.drops + 1;
        `Dropped
      end
      else begin
        if l.p_dup > 0. && Rng.float t.rng < l.p_dup && may_unfair t ~src ~dst then
          if Async.duplicate_eid t.exec env.Async.eid then t.dups <- t.dups + 1;
        if
          src >= 0 && src < t.plan.n
          && t.corrupt_mask.(src)
          && t.corrupt_rate.(src) > 0.
          && Rng.float t.rng < t.corrupt_rate.(src)
        then if corrupt_env t env then t.corruptions <- t.corruptions + 1;
        ignore (Async.deliver_eid t.exec env.Async.eid : bool);
        `Delivered
      end

let run ?(max_deliveries = 1_000_000) ?(stop_when = fun _ -> false) t =
  let rec loop () =
    if Async.all_terminated t.exec then `All_terminated
    else if stop_when t.exec then `Stopped
    else if Async.deliveries t.exec >= max_deliveries then `Limit
    else
      match step t with
      | `Empty -> `Quiescent
      | `Delivered | `Dropped -> loop ()
  in
  loop ()

type stats = {
  drops : int;
  dups : int;
  corruptions : int;
  forced_heals : int;
  kills_fired : int;
  restarts : int;
  kill_buffered : int;
  adaptive_corruptions : int;
  adaptive_crashes : int;
  corruption_log : corruption list;
}

let zero_stats =
  { drops = 0;
    dups = 0;
    corruptions = 0;
    forced_heals = 0;
    kills_fired = 0;
    restarts = 0;
    kill_buffered = 0;
    adaptive_corruptions = 0;
    adaptive_crashes = 0;
    corruption_log = [] }

let stats (t : _ t) =
  { drops = t.drops;
    dups = t.dups;
    corruptions = t.corruptions;
    forced_heals = t.forced_heals;
    kills_fired = t.kills_fired;
    restarts = t.restarts;
    kill_buffered = t.kill_buffered;
    adaptive_corruptions = t.adaptive_corruptions;
    adaptive_crashes = t.adaptive_crashes;
    corruption_log = List.rev t.clog }

(** Fault-injection node wrappers.

    Faulty parties are ordinary simulator nodes with modified behaviour, so
    the executors stay fault-model agnostic.  These wrappers build crash
    behaviours out of an honest node; Byzantine behaviours are hand-written
    per attack (they need the protocol's message constructors). *)

val crash_after :
  deliveries:int ->
  ?last_recipients:Bca_netsim.Node.pid list ->
  'm Bca_netsim.Node.t ->
  'm Bca_netsim.Node.t
(** A party that behaves honestly for its first [deliveries] received
    messages and then crashes.  The emissions triggered by the final
    delivery model a crash in mid-broadcast: they are sent only to
    [last_recipients] (default: nobody), so some parties may observe the
    party's last step and others may not - the scenario the weak-validity
    and uniform-agreement definitions of ACA exist for.

    [deliveries = 0] crashes the party before it processes anything (it
    still performs its initial sends unless the caller withholds them).

    The wrapped node's [tick] behaviour is preserved until the crash: a
    lockstep-driven party keeps emitting on its own clock while alive and
    falls silent afterwards. *)

val mute : 'm Bca_netsim.Node.t -> 'm Bca_netsim.Node.t
(** A party that receives and updates state but never sends: models a crash
    of the outgoing link only; used in liveness stress tests.  [tick]s are
    still delivered to the inner node (its state advances) but their
    emissions are swallowed like every other send. *)

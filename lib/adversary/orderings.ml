module Lockstep = Bca_netsim.Lockstep

type 'm verdict = Deliver of int | Defer

type 'm rule = step:int -> dst:Bca_netsim.Node.pid -> 'm Lockstep.envelope -> 'm verdict

let to_ordering rule ~step ~dst envs =
  let scored =
    List.filter_map
      (fun (env : _ Lockstep.envelope) ->
        match rule ~step ~dst env with
        | Deliver prio -> Some (prio, env)
        | Defer -> None)
      envs
  in
  let sorted =
    List.stable_sort
      (fun (p1, (e1 : _ Lockstep.envelope)) (p2, e2) ->
        if p1 <> p2 then Int.compare p1 p2 else Int.compare e1.Lockstep.eid e2.Lockstep.eid)
      scored
  in
  List.map snd sorted

let self_priority (env : _ Lockstep.envelope) =
  if env.Lockstep.src = env.Lockstep.dst then Some min_int else None

let interleave_priorities flags =
  let counters = [| 0; 0 |] in
  List.map
    (fun flag ->
      let i = if flag then 1 else 0 in
      let k = counters.(i) in
      counters.(i) <- k + 1;
      (* The k-th member of each class gets priority 2k (class false) or
         2k + 1 (class true): 0,1,2,3,... alternates the classes. *)
      (2 * k) + i)
    flags

(** Declarative, seeded fault plans: the chaos layer.

    A {!plan} is a single value describing everything an execution-level
    adversary may do to a run, beyond reordering (which schedulers already
    model): per-link message drop / duplication / extra-delay
    probabilities, scheduled network partitions with heal points, a crash
    schedule, and corruption of faulty parties' traffic.  Plans are plain
    data - they can be generated from a seed ({!gen}), printed
    ({!to_string}) into a violation report, and replayed exactly.

    In paper terms this randomizes over the adversary powers of the
    Section 2 model (message scheduling, crashes, Byzantine corruption up
    to [t]) that the scripted Appendix A attacks
    ([Bca_adversary.Cz_attack], [Bca_adversary.Mmr_attack]) exercise
    deliberately.

    {b Fault model honesty.}  The paper assumes reliable authenticated
    links between honest parties; a fault layer that silently voids that
    assumption would "find" violations that are artifacts of a different
    model.  The chaos layer therefore gates itself:

    - {e Partitions} only delay messages and always heal (at
      [heal_delivery], or early if every in-flight message crosses the
      cut), so they stay inside the adversary's legal delay power.
    - {e Drops and duplicates} are unrestricted only against faulty
      parties' traffic (crashed parties and [corrupt] parties).  Against
      honest links they consume a per-link budget of [fairness] events;
      once exhausted, the link is reliable again.  Bounded drops model
      omission glitches, but because the protocols here never retransmit,
      a dropped honest message can legally void {e liveness} (not safety):
      campaigns account stalls separately.
    - {e Corruption} (payload swaps between one sender's messages, and
      redirects) applies only to [corrupt] parties - it makes those
      parties Byzantine, so campaigns must count them against [t] and
      exclude them from honest-party checks. *)

type pid = int

type link = {
  p_drop : float;  (** per-pick probability of dropping the message *)
  p_dup : float;  (** per-delivery probability of re-enqueuing a copy *)
  p_delay : float;  (** per-pick probability of preferring another message *)
}

val reliable : link
(** [{ p_drop = 0.; p_dup = 0.; p_delay = 0. }]. *)

type partition = {
  from_delivery : int;  (** activates when this many deliveries happened *)
  heal_delivery : int;  (** heals at this delivery count (exclusive) *)
  side : bool array;  (** [side.(pid)]: which side of the cut [pid] is on *)
}

type crash = {
  victim : pid;
  at_delivery : int;  (** crash once this many deliveries happened *)
  last_recipients : pid list;
      (** in-flight messages of the victim survive only towards these
          parties: a crash in mid-broadcast *)
}

type kill = {
  k_victim : pid;
  k_at_delivery : int;  (** SIGKILL once this many deliveries happened *)
  k_restart_delta : int;
      (** restart (revive + rejoin) after this many further deliveries *)
}
(** A process-level kill/restart fault: the simulated counterpart of the
    cluster supervisor SIGKILLing a node and restarting it with
    [bca_node --recover].  Unlike a {!crash}, the victim stays {e honest}:
    it comes back with exactly its pre-kill state (the write-ahead log
    makes recovered state equal pre-crash state, see [Bca_recovery.Wal])
    and must still satisfy agreement and validity.  While it is down, the
    chaos engine buffers what the network would have lost - messages that
    were in its kernel receive buffer at the kill, messages addressed to
    it while dead, and the out-ring sends the SIGKILL tore away - and
    re-injects them at the restart, modelling the rejoin handshake: peers
    resend their per-destination history, the victim re-announces its own
    last messages.  Kill victims must be disjoint from {!crash} victims
    and [corrupt] parties ({!gen} guarantees this). *)

type plan = {
  chaos_seed : int64;  (** seed of the plan's own event stream *)
  n : int;
  default_link : link;
  link_overrides : ((pid * pid) * link) list;  (** (src, dst) exceptions *)
  partitions : partition list;
  crashes : crash list;
  kills : kill list;  (** kill/restart (crash-recovery) faults *)
  corrupt : pid list;  (** parties whose traffic may be corrupted *)
  p_corrupt : float;  (** per-delivery corruption probability for them *)
  fairness : int;  (** per-link drop+dup budget against honest traffic *)
}

val silent : n:int -> plan
(** The no-fault plan: chaos reduces to a uniformly random fair schedule
    driven by the plan's seed. *)

val faulty_parties : plan -> pid list
(** Sorted union of crash victims and corrupt parties - the set a campaign
    must keep within the protocol's resilience bound [t].  Kill/restart
    victims are {e not} faulty: crash-recovery nodes stay honest. *)

val kill_victims : plan -> pid list
(** Sorted kill/restart victims - honest parties the campaign must still
    hold to agreement and validity. *)

val gen :
  ?kills:int ->
  Bca_util.Rng.t -> n:int -> max_faults:int -> allow_corrupt:bool -> plan
(** Draw a random plan.  At most [max_faults] parties are faulty (crashes
    plus corrupt parties combined); [allow_corrupt] enables Byzantine-style
    corruption (pass [false] for crash-model stacks).  Partitions always
    carry a heal point; probabilities and budgets are drawn small enough
    that runs terminate in reasonable delivery counts.  [kills] (default 0)
    additionally draws up to that many kill/restart faults against parties
    {e outside} the faulty set; passing [0] performs no extra RNG draws, so
    plans generated before this parameter existed are bit-identical. *)

val pp : Format.formatter -> plan -> unit
val to_string : plan -> string
(** One-line-per-clause serialization, embedded in violation reports so a
    failure is reproducible from (root seed, plan) alone. *)

(** {2 Executing a plan} *)

type 'm t
(** A plan instantiated against one execution: tracks which crashes fired,
    which partitions healed, and the remaining per-link fairness budgets. *)

val start : plan -> 'm Bca_netsim.Async_exec.t -> 'm t
(** [start plan exec] arms the plan.  [plan.n] must equal the execution's
    party count. *)

val scheduler : 'm t -> 'm Bca_netsim.Async_exec.scheduler
(** The partition-aware delivery policy alone, as an indexed scheduler:
    picks uniformly (from the plan's stream) among in-flight messages that
    do not cross an active cut.  Usable with [Bca_netsim.Async_exec.run]
    directly when only partition/delay behaviour is wanted; {!step} adds
    the drop/dup/crash/corruption events. *)

type event = [ `Delivered | `Dropped | `Empty ]

val step : 'm t -> event
(** One chaos decision: fire due crashes, kills and restarts, pick a
    partition-eligible message (force-healing a partition if everything in
    flight crosses it), then drop, duplicate, corrupt, or deliver it
    according to the plan.  [`Dropped] consumed a message without
    delivering it - including messages addressed to a killed-but-not-yet-
    restarted victim, which are buffered and re-injected at its restart.
    If the pool can only progress via a pending restart, the restart is
    forced early rather than reporting [`Empty], mirroring how a real
    supervisor's backoff always eventually elapses. *)

val run :
  ?max_deliveries:int ->
  ?stop_when:('m Bca_netsim.Async_exec.t -> bool) ->
  'm t ->
  Bca_netsim.Async_exec.outcome
(** Drive {!step} with the usual termination conditions (default
    [max_deliveries] 1_000_000). *)

type stats = {
  drops : int;
  dups : int;
  corruptions : int;
  forced_heals : int;  (** partitions healed early to preserve progress *)
  kills_fired : int;  (** kill/restart faults that fired *)
  restarts : int;  (** victims revived (includes forced early restarts) *)
  kill_buffered : int;
      (** messages buffered while a victim was down and re-injected at its
          restart *)
}

val stats : 'm t -> stats

(** Declarative, seeded fault plans: the chaos layer.

    A {!plan} is a single value describing everything an execution-level
    adversary may do to a run, beyond reordering (which schedulers already
    model): per-link message drop / duplication / extra-delay
    probabilities, scheduled network partitions with heal points, a crash
    schedule, corruption of faulty parties' traffic, and {e adaptive}
    strategies that trigger on observed protocol events rather than
    delivery counts.  Plans are plain data - they can be generated from a
    seed ({!gen}), printed ({!to_string}) into a violation report,
    round-tripped through a compact corpus codec ({!plan_to_string} /
    {!plan_of_string}), mutated ([Bca_adversary.Mutate]), and replayed
    exactly.

    In paper terms this randomizes over the adversary powers of the
    Section 2 model (message scheduling, crashes, Byzantine corruption up
    to [t]) that the scripted Appendix A attacks
    ([Bca_adversary.Cz_attack], [Bca_adversary.Mmr_attack]) exercise
    deliberately.  The {!adaptive} strategies put the paper's headline
    adversary - one that corrupts a party {e at the moment the common coin
    is revealed} - into plan form.

    {b Fault model honesty.}  The paper assumes reliable authenticated
    links between honest parties; a fault layer that silently voids that
    assumption would "find" violations that are artifacts of a different
    model.  The chaos layer therefore gates itself:

    - {e Partitions} only delay messages and always heal (at
      [heal_delivery], or early if every in-flight message crosses the
      cut), so they stay inside the adversary's legal delay power.
    - {e Drops and duplicates} are unrestricted only against faulty
      parties' traffic (crashed parties and [corrupt] parties).  Against
      honest links they consume a per-link budget of [fairness] events;
      once exhausted, the link is reliable again.  Bounded drops model
      omission glitches, but because the protocols here never retransmit,
      a dropped honest message can legally void {e liveness} (not safety):
      campaigns account stalls separately.
    - {e Corruption} (payload swaps between one sender's messages, and
      redirects) applies only to [corrupt] parties - it makes those
      parties Byzantine, so campaigns must count them against [t] and
      exclude them from honest-party checks.
    - {e Adaptive faults} draw from the same power: an adaptive corruption
      or crash fires only while the total faulty count - static crash
      victims, static corrupt parties, and previously fired adaptive
      victims - stays below the plan's [fault_budget], which campaigns set
      to the stack's resilience bound [t].  Whatever the schedule does,
      the adversary never exceeds the model. *)

type pid = int

type link = {
  p_drop : float;  (** per-pick probability of dropping the message *)
  p_dup : float;  (** per-delivery probability of re-enqueuing a copy *)
  p_delay : float;  (** per-pick probability of preferring another message *)
}

val reliable : link
(** [{ p_drop = 0.; p_dup = 0.; p_delay = 0. }]. *)

type partition = {
  from_delivery : int;  (** activates when this many deliveries happened *)
  heal_delivery : int;  (** heals at this delivery count (exclusive) *)
  side : bool array;  (** [side.(pid)]: which side of the cut [pid] is on *)
}

type crash = {
  victim : pid;
  at_delivery : int;  (** crash once this many deliveries happened *)
  last_recipients : pid list;
      (** in-flight messages of the victim survive only towards these
          parties: a crash in mid-broadcast *)
}

type kill = {
  k_victim : pid;
  k_at_delivery : int;  (** SIGKILL once this many deliveries happened *)
  k_restart_delta : int;
      (** restart (revive + rejoin) after this many further deliveries *)
}
(** A process-level kill/restart fault: the simulated counterpart of the
    cluster supervisor SIGKILLing a node and restarting it with
    [bca_node --recover].  Unlike a {!crash}, the victim stays {e honest}:
    it comes back with exactly its pre-kill state (the write-ahead log
    makes recovered state equal pre-crash state, see [Bca_recovery.Wal])
    and must still satisfy agreement and validity.  While it is down, the
    chaos engine buffers what the network would have lost - messages that
    were in its kernel receive buffer at the kill, messages addressed to
    it while dead, and the out-ring sends the SIGKILL tore away - and
    re-injects them at the restart, modelling the rejoin handshake: peers
    resend their per-destination history, the victim re-announces its own
    last messages.  Kill victims must be disjoint from {!crash} victims
    and [corrupt] parties ({!gen} guarantees this). *)

type adaptive =
  | Corrupt_at_coin_reveal of { a_round : int; a_rate : float }
      (** when a [Coin_reveal] event for round [a_round] ([0] = any round)
          is observed, corrupt the revealing party: its traffic becomes
          corruptible at rate [a_rate] from that moment on - the paper's
          adaptive adversary, who decides {e whom} to corrupt only after
          seeing the coin *)
  | Crash_at_phase of { a_round : int; a_phase : string }
      (** when a [Quorum] event for phase [a_phase] in round [a_round]
          ([0] = any round) is observed, crash the party that reached it -
          kill the leader of the phase race at its moment of progress *)
(** Event-triggered (adaptive) strategies.  Each strategy fires at most
    once, via {!notify}, and only while the plan's [fault_budget] admits
    another faulty party; a fired corruption makes its victim Byzantine,
    so campaigns are told through {!on_adaptive} and must exclude the
    victim from honest-party checks from then on. *)

type plan = {
  chaos_seed : int64;  (** seed of the plan's own event stream *)
  reseeds : (int * int64) list;
      (** [(delivery, seed)] points at which the schedule stream is
          re-seeded mid-run (applied in delivery order).  The fuzzer's
          tail-mutation operator: a child carrying its parent's
          [chaos_seed] plus one extra reseed point replays the parent's
          schedule byte-for-byte up to that delivery and then diverges -
          the reached state (a near miss) is preserved, only its
          completions are searched.  Empty for generated plans. *)
  n : int;
  default_link : link;
  link_overrides : ((pid * pid) * link) list;  (** (src, dst) exceptions *)
  partitions : partition list;
  crashes : crash list;
  kills : kill list;  (** kill/restart (crash-recovery) faults *)
  corrupt : pid list;  (** parties whose traffic may be corrupted *)
  p_corrupt : float;  (** per-delivery corruption probability for them *)
  fairness : int;  (** per-link drop+dup budget against honest traffic *)
  adaptive : adaptive list;  (** event-triggered strategies *)
  fault_budget : int;
      (** total faulty parties (static + adaptive) the plan may create;
          campaigns set this to the stack's resilience bound [t] *)
}

val silent : n:int -> plan
(** The no-fault plan: chaos reduces to a uniformly random fair schedule
    driven by the plan's seed.  [adaptive] is empty and [fault_budget] 0,
    so nothing can fire. *)

val faulty_parties : plan -> pid list
(** Sorted union of crash victims and corrupt parties - the {e static}
    faulty set a campaign must keep within the protocol's resilience bound
    [t].  Adaptive victims are not known until they fire ({!on_adaptive});
    kill/restart victims are {e not} faulty: crash-recovery nodes stay
    honest. *)

val kill_victims : plan -> pid list
(** Sorted kill/restart victims - honest parties the campaign must still
    hold to agreement and validity. *)

val gen :
  ?kills:int ->
  Bca_util.Rng.t -> n:int -> max_faults:int -> allow_corrupt:bool -> plan
(** Draw a random plan.  At most [max_faults] parties are faulty (crashes
    plus corrupt parties combined) and [fault_budget] is set to
    [max_faults]; [allow_corrupt] enables Byzantine-style corruption (pass
    [false] for crash-model stacks).  Partitions always carry a heal point;
    probabilities and budgets are drawn small enough that runs terminate in
    reasonable delivery counts.  [kills] (default 0) additionally draws up
    to that many kill/restart faults against parties {e outside} the faulty
    set; passing [0] performs no extra RNG draws, so plans generated before
    this parameter existed are bit-identical.  Generated plans carry no
    adaptive strategies - those enter through the mutator or as named
    seed-corpus entries. *)

val pp : Format.formatter -> plan -> unit
val to_string : plan -> string
(** One-line-per-clause serialization of the {e full} plan - every clause
    including the fault budget and adaptive strategies - embedded in
    violation reports so a failure is reproducible from (root seed, plan)
    alone.  The corruption decisions the plan's stream made at runtime
    (redirect targets, swap partners) are reported separately through
    {!stats} ([corruption_log]) and printed by campaign reports. *)

val plan_to_string : plan -> string
(** Compact single-line machine codec (corpus files).  Floats are printed
    in hexadecimal ([%h]) so the round-trip is exact:
    [plan_of_string (plan_to_string p)] reconstructs [p] field for field. *)

val plan_of_string : string -> (plan, string) result
(** Parse {!plan_to_string} output.  [Error] names the offending field. *)

(** {2 Executing a plan} *)

type 'm t
(** A plan instantiated against one execution: tracks which crashes fired,
    which partitions healed, which adaptive strategies triggered, and the
    remaining per-link fairness budgets. *)

val start : plan -> 'm Bca_netsim.Async_exec.t -> 'm t
(** [start plan exec] arms the plan.  [plan.n] must equal the execution's
    party count. *)

val notify : 'm t -> Bca_obs.Event.t -> unit
(** Feed one observed execution event to the adaptive strategies.  Drivers
    route their trace stream here (e.g. a [Bca_obs.Trace.stream] sink
    calling [notify] on every event); a matching armed strategy is queued
    and applied at the next {!step}, so the corruption takes effect on the
    very next chaos decision after the triggering event.  Cheap no-op for
    plans without adaptive strategies. *)

val on_adaptive : 'm t -> ([ `Corrupted of pid | `Crashed of pid ] -> unit) -> unit
(** Register a callback invoked when an adaptive strategy fires.  Campaigns
    use it to flip the victim out of their monitor's honest set - an
    adaptively corrupted party is Byzantine from that moment on and must
    be counted against [t]. *)

val is_corrupt : 'm t -> pid -> bool
(** Whether a party's traffic is currently corruptible (statically
    [corrupt], or adaptively corrupted since). *)

val scheduler : 'm t -> 'm Bca_netsim.Async_exec.scheduler
(** The partition-aware delivery policy alone, as an indexed scheduler:
    picks uniformly (from the plan's stream) among in-flight messages that
    do not cross an active cut.  Usable with [Bca_netsim.Async_exec.run]
    directly when only partition/delay behaviour is wanted; {!step} adds
    the drop/dup/crash/corruption events. *)

type event = [ `Delivered | `Dropped | `Empty ]

val step : 'm t -> event
(** One chaos decision: apply queued adaptive strategies, fire due crashes,
    kills and restarts, pick a partition-eligible message (force-healing a
    partition if everything in flight crosses it), then drop, duplicate,
    corrupt, or deliver it according to the plan.  [`Dropped] consumed a
    message without delivering it - including messages addressed to a
    killed-but-not-yet-restarted victim, which are buffered and re-injected
    at its restart.  If the pool can only progress via a pending restart,
    the restart is forced early rather than reporting [`Empty], mirroring
    how a real supervisor's backoff always eventually elapses. *)

val run :
  ?max_deliveries:int ->
  ?stop_when:('m Bca_netsim.Async_exec.t -> bool) ->
  'm t ->
  Bca_netsim.Async_exec.outcome
(** Drive {!step} with the usual termination conditions (default
    [max_deliveries] 1_000_000). *)

type corruption = {
  at_delivery : int;  (** deliveries completed when the corruption fired *)
  c_src : pid;  (** the corrupted sender *)
  c_eid : int;  (** the envelope acted on *)
  c_act : [ `Redirect of pid | `Swap of int ];
      (** what happened: destination rewritten to the pid, or payload
          swapped with that envelope *)
}
(** One corruption event, with the runtime choices (redirect target, swap
    partner) the plan text alone cannot show - violation reports print
    these so a corruption-involving run is reproducible by hand. *)

val pp_corruption : Format.formatter -> corruption -> unit

type stats = {
  drops : int;
  dups : int;
  corruptions : int;
  forced_heals : int;  (** partitions healed early to preserve progress *)
  kills_fired : int;  (** kill/restart faults that fired *)
  restarts : int;  (** victims revived (includes forced early restarts) *)
  kill_buffered : int;
      (** messages buffered while a victim was down and re-injected at its
          restart *)
  adaptive_corruptions : int;  (** [Corrupt_at_coin_reveal] firings *)
  adaptive_crashes : int;  (** [Crash_at_phase] firings *)
  corruption_log : corruption list;
      (** the first {!corruption_log_cap} corruptions, in firing order *)
}

val corruption_log_cap : int
(** Upper bound on [corruption_log] length (further corruptions are
    counted but not logged). *)

val zero_stats : stats
(** All counters zero, empty log - what a replay reports, since the chaos
    engine's decisions are baked into the action log. *)

val stats : 'm t -> stats

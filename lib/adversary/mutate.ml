module Rng = Bca_util.Rng

let default_phases = [ "echo"; "echo2"; "echo3"; "decide" ]

let clamp_prob p = if p < 0. then 0. else if p > 0.95 then 0.95 else p

(* Scale a probability by a factor in [0.5, 2.0]; resurrect a zero
   probability to a small value occasionally so mutation can turn faults
   on, not only tune them. *)
let perturb_prob rng p =
  if p <= 0. then if Rng.bool rng then 0. else 0.01 +. (Rng.float rng *. 0.05)
  else clamp_prob (p *. (0.5 +. (1.5 *. Rng.float rng)))

let perturb_link rng (l : Chaos.link) =
  match Rng.int rng 3 with
  | 0 -> { l with Chaos.p_drop = perturb_prob rng l.Chaos.p_drop }
  | 1 -> { l with Chaos.p_dup = perturb_prob rng l.Chaos.p_dup }
  | _ -> { l with Chaos.p_delay = perturb_prob rng l.Chaos.p_delay }

(* Shift a trigger point: half the time by exactly one delivery (the
   smallest schedule change that can matter - a fault firing one delivery
   earlier or later lands on a different envelope), otherwise a jitter up
   to 50. *)
let shift_trigger rng at =
  let delta = if Rng.bool rng then 1 else 1 + Rng.int rng 50 in
  max 0 (if Rng.bool rng then at + delta else at - delta)

let random_link rng =
  let p hi = Rng.float rng *. hi in
  { Chaos.p_drop = p 0.15; p_dup = p 0.3; p_delay = p 0.8 }

let random_partition rng ~n =
  let from_delivery = Rng.int rng 400 in
  let side = Array.init n (fun _ -> Rng.bool rng) in
  side.(0) <- true;
  side.(n - 1) <- false;
  { Chaos.from_delivery; heal_delivery = from_delivery + 30 + Rng.int rng 370; side }

let nontrivial (p : Chaos.partition) =
  let n = Array.length p.Chaos.side in
  let side = Array.copy p.Chaos.side in
  side.(0) <- true;
  side.(n - 1) <- false;
  { p with Chaos.side }

let pick_index rng l = Rng.int rng (List.length l)

let remove_at i l = List.filteri (fun j _ -> j <> i) l

let update_at i f l = List.mapi (fun j x -> if j = i then f x else x) l

(* How many more faulty parties the plan may still name statically. *)
let headroom (plan : Chaos.plan) =
  plan.Chaos.fault_budget - List.length (Chaos.faulty_parties plan)

let non_faulty rng (plan : Chaos.plan) =
  let faulty = Chaos.faulty_parties plan in
  let kills = Chaos.kill_victims plan in
  let pool =
    List.filter
      (fun p -> (not (List.mem p faulty)) && not (List.mem p kills))
      (List.init plan.Chaos.n Fun.id)
  in
  if pool = [] then None else Some (List.nth pool (pick_index rng pool))

let mutate_links rng (plan : Chaos.plan) =
  match Rng.int rng 4 with
  | 0 -> { plan with Chaos.default_link = perturb_link rng plan.Chaos.default_link }
  | 1 ->
    let src = Rng.int rng plan.Chaos.n and dst = Rng.int rng plan.Chaos.n in
    { plan with
      Chaos.link_overrides = ((src, dst), random_link rng) :: plan.Chaos.link_overrides }
  | 2 ->
    if plan.Chaos.link_overrides = [] then plan
    else
      { plan with
        Chaos.link_overrides =
          remove_at (pick_index rng plan.Chaos.link_overrides) plan.Chaos.link_overrides }
  | _ ->
    if plan.Chaos.link_overrides = [] then plan
    else
      { plan with
        Chaos.link_overrides =
          update_at
            (pick_index rng plan.Chaos.link_overrides)
            (fun (ends, l) -> (ends, perturb_link rng l))
            plan.Chaos.link_overrides }

let mutate_partitions rng (plan : Chaos.plan) =
  match Rng.int rng 4 with
  | 0 ->
    { plan with Chaos.partitions = random_partition rng ~n:plan.Chaos.n :: plan.Chaos.partitions }
  | 1 ->
    if plan.Chaos.partitions = [] then plan
    else
      { plan with
        Chaos.partitions = remove_at (pick_index rng plan.Chaos.partitions) plan.Chaos.partitions }
  | 2 ->
    if plan.Chaos.partitions = [] then plan
    else
      { plan with
        Chaos.partitions =
          update_at
            (pick_index rng plan.Chaos.partitions)
            (fun (p : Chaos.partition) ->
              let from_delivery = shift_trigger rng p.Chaos.from_delivery in
              let width = max 30 (p.Chaos.heal_delivery - p.Chaos.from_delivery) in
              { p with Chaos.from_delivery; heal_delivery = from_delivery + width })
            plan.Chaos.partitions }
  | _ ->
    if plan.Chaos.partitions = [] then plan
    else
      { plan with
        Chaos.partitions =
          update_at
            (pick_index rng plan.Chaos.partitions)
            (fun (p : Chaos.partition) ->
              let side = Array.copy p.Chaos.side in
              let pid = Rng.int rng plan.Chaos.n in
              side.(pid) <- not side.(pid);
              nontrivial { p with Chaos.side })
            plan.Chaos.partitions }

let mutate_crashes rng (plan : Chaos.plan) =
  match Rng.int rng 3 with
  | 0 ->
    if headroom plan <= 0 then plan
    else begin
      match non_faulty rng plan with
      | None -> plan
      | Some victim ->
        let last_recipients =
          List.filter (fun _ -> Rng.bool rng) (List.init plan.Chaos.n Fun.id)
        in
        { plan with
          Chaos.crashes =
            { Chaos.victim; at_delivery = Rng.int rng 500; last_recipients }
            :: plan.Chaos.crashes }
    end
  | 1 ->
    if plan.Chaos.crashes = [] then plan
    else
      { plan with
        Chaos.crashes = remove_at (pick_index rng plan.Chaos.crashes) plan.Chaos.crashes }
  | _ ->
    if plan.Chaos.crashes = [] then plan
    else
      { plan with
        Chaos.crashes =
          update_at
            (pick_index rng plan.Chaos.crashes)
            (fun (c : Chaos.crash) ->
              { c with Chaos.at_delivery = shift_trigger rng c.Chaos.at_delivery })
            plan.Chaos.crashes }

let mutate_kills rng (plan : Chaos.plan) =
  if plan.Chaos.kills = [] then plan
  else
    { plan with
      Chaos.kills =
        update_at
          (pick_index rng plan.Chaos.kills)
          (fun (k : Chaos.kill) ->
            if Rng.bool rng then
              { k with Chaos.k_at_delivery = shift_trigger rng k.Chaos.k_at_delivery }
            else
              { k with
                Chaos.k_restart_delta = max 1 (shift_trigger rng k.Chaos.k_restart_delta) })
          plan.Chaos.kills }

let mutate_corrupt rng (plan : Chaos.plan) =
  match Rng.int rng 3 with
  | 0 ->
    if headroom plan <= 0 then plan
    else begin
      match non_faulty rng plan with
      | None -> plan
      | Some p ->
        let p_corrupt =
          if plan.Chaos.p_corrupt > 0. then plan.Chaos.p_corrupt
          else 0.05 +. (Rng.float rng *. 0.25)
        in
        { plan with Chaos.corrupt = p :: plan.Chaos.corrupt; p_corrupt }
    end
  | 1 ->
    if plan.Chaos.corrupt = [] then plan
    else
      { plan with
        Chaos.corrupt = remove_at (pick_index rng plan.Chaos.corrupt) plan.Chaos.corrupt }
  | _ ->
    if plan.Chaos.corrupt = [] then plan
    else { plan with Chaos.p_corrupt = clamp_prob (perturb_prob rng plan.Chaos.p_corrupt) }

let random_adaptive rng ~allow_corrupt ~phases =
  if allow_corrupt && Rng.bool rng then
    Chaos.Corrupt_at_coin_reveal
      { a_round = Rng.int rng 4; a_rate = 0.2 +. (Rng.float rng *. 0.6) }
  else
    Chaos.Crash_at_phase
      { a_round = Rng.int rng 4; a_phase = List.nth phases (pick_index rng phases) }

let mutate_adaptive rng ~allow_corrupt ~phases (plan : Chaos.plan) =
  if Rng.int rng 3 > 0 || plan.Chaos.adaptive = [] then
    { plan with
      Chaos.adaptive = random_adaptive rng ~allow_corrupt ~phases :: plan.Chaos.adaptive }
  else
    { plan with
      Chaos.adaptive = remove_at (pick_index rng plan.Chaos.adaptive) plan.Chaos.adaptive }

let apply_op rng ~allow_corrupt ~phases (plan : Chaos.plan) =
  match Rng.int rng 8 with
  (* a fresh stream invalidates any prefix the reseed points anchored to *)
  | 0 -> { plan with Chaos.chaos_seed = Rng.int64 rng; reseeds = [] }
  | 1 -> mutate_links rng plan
  | 2 -> mutate_partitions rng plan
  | 3 -> mutate_crashes rng plan
  | 4 -> mutate_kills rng plan
  | 5 -> if allow_corrupt then mutate_corrupt rng plan else mutate_crashes rng plan
  | 6 ->
    { plan with
      Chaos.fairness = max 0 (plan.Chaos.fairness + if Rng.bool rng then 1 else -1) }
  | _ -> mutate_adaptive rng ~allow_corrupt ~phases plan

let mutate ?(phases = default_phases) ?(allow_corrupt = true) rng plan =
  let ops = 1 + Rng.int rng 4 in
  let rec go plan k = if k = 0 then plan else go (apply_op rng ~allow_corrupt ~phases plan) (k - 1) in
  go plan ops

(* Re-clamp a spliced plan's static faulty set to its budget: drop excess
   crashes, then excess corrupt parties, deterministically (keep the
   earliest-listed ones). *)
let clamp_faults (plan : Chaos.plan) =
  let budget = plan.Chaos.fault_budget in
  let rec take_faulty seen acc_crashes acc_corrupt crashes corrupt =
    match (crashes, corrupt) with
    | [], [] -> (List.rev acc_crashes, List.rev acc_corrupt)
    | (c : Chaos.crash) :: rest, _ ->
      let seen' = List.sort_uniq Int.compare (c.Chaos.victim :: seen) in
      if List.length seen' <= budget then take_faulty seen' (c :: acc_crashes) acc_corrupt rest corrupt
      else take_faulty seen acc_crashes acc_corrupt rest corrupt
    | [], p :: rest ->
      let seen' = List.sort_uniq Int.compare (p :: seen) in
      if List.length seen' <= budget then take_faulty seen' acc_crashes (p :: acc_corrupt) [] rest
      else take_faulty seen acc_crashes acc_corrupt [] rest
  in
  let crashes, corrupt = take_faulty [] [] [] plan.Chaos.crashes plan.Chaos.corrupt in
  { plan with Chaos.crashes; corrupt }

let splice rng (a : Chaos.plan) (b : Chaos.plan) =
  if a.Chaos.n <> b.Chaos.n then a
  else begin
    let pick fa fb = if Rng.bool rng then fa else fb in
    let child =
      { Chaos.chaos_seed = Rng.int64 rng;
        (* a spliced child has a fresh schedule stream, so inherited
           reseed points would not reproduce either parent's prefix *)
        reseeds = [];
        n = a.Chaos.n;
        default_link = pick a.Chaos.default_link b.Chaos.default_link;
        link_overrides = pick a.Chaos.link_overrides b.Chaos.link_overrides;
        partitions = pick a.Chaos.partitions b.Chaos.partitions;
        crashes = pick a.Chaos.crashes b.Chaos.crashes;
        kills = pick a.Chaos.kills b.Chaos.kills;
        corrupt = pick a.Chaos.corrupt b.Chaos.corrupt;
        p_corrupt = pick a.Chaos.p_corrupt b.Chaos.p_corrupt;
        fairness = pick a.Chaos.fairness b.Chaos.fairness;
        adaptive = pick a.Chaos.adaptive b.Chaos.adaptive;
        fault_budget = min a.Chaos.fault_budget b.Chaos.fault_budget }
    in
    clamp_faults child
  end

module Node = Bca_netsim.Node

let crash_after ~deliveries ?(last_recipients = []) (inner : 'm Node.t) =
  let received = ref 0 in
  let crashed = ref false in
  let restrict emits =
    List.concat_map
      (fun emit ->
        match emit with
        | Node.Unicast (dst, m) ->
          if List.mem dst last_recipients then [ Node.Unicast (dst, m) ] else []
        | Node.Broadcast m -> List.map (fun dst -> Node.Unicast (dst, m)) last_recipients)
      emits
  in
  Node.make
    ~receive:(fun ~src m ->
      if !crashed then []
      else if deliveries = 0 then begin
        crashed := true;
        []
      end
      else begin
        incr received;
        let emits = inner.Node.receive ~src m in
        if !received >= deliveries then begin
          crashed := true;
          restrict emits
        end
        else emits
      end)
    ~terminated:(fun () -> !crashed || inner.Node.terminated ())
    ~tick:(fun ~step ->
      (* the party is alive until its crash: lockstep tick emissions pass
         through untouched; afterwards it is silent *)
      if !crashed || deliveries = 0 then [] else inner.Node.tick ~step)
    ()

let mute (inner : 'm Node.t) =
  Node.make
    ~receive:(fun ~src m ->
      ignore (inner.Node.receive ~src m : 'm Node.emit list);
      [])
    ~terminated:inner.Node.terminated
    ~tick:(fun ~step ->
      (* state still advances on ticks; the outgoing link stays dead *)
      ignore (inner.Node.tick ~step : 'm Node.emit list);
      [])
    ()

(** Run the six (G)BCA stacks to decision over a real transport.

    Three entry points, all built on [Bca_core.Aba.run_custom] (the cluster
    assembly - coin seeding, threshold-key setup, per-party construction -
    is byte-for-byte the one the simulator uses; only message movement
    differs):

    - {!run_loopback}: the whole cluster in one process over
      {!Transport.Loopback}, every message encoded and decoded on each hop.
      {b Determinism contract}: for a given [seed] the run is bit-identical
      to [Bca_core.Aba.run ~seed] - same decision values, commit rounds,
      delivery count - because the loopback hub replays the netsim random
      scheduler's exact RNG stream over an identically-ordered frame pool
      (checked in [test/test_transport.ml]; DESIGN.md section 11).
    - {!run_node}: ONE party, driven over a socket {!Transport.t} - what
      [bca_node] executes, one process per party.
    - {!spawn_cluster}: the launcher - forks [n] [bca_node] processes over
      Unix-domain sockets or TCP, collects their decisions, checks
      agreement. *)

val parse_stack : ?eps:float -> string -> (Bca_core.Aba.spec, string) result
(** [crash-strong], [crash-weak], [crash-local], [byz-strong], [byz-weak],
    [byz-tsig] (the weak stacks take their coin goodness from [eps],
    default 0.25) - same names [bca run] accepts. *)

val stack_name : Bca_core.Aba.spec -> string
(** Canonical name, [parse_stack]-compatible. *)

val all_stacks : ?eps:float -> unit -> (string * Bca_core.Aba.spec) list
(** The six stacks by canonical name. *)

type net_stats = {
  frames : int;  (** frames sent cluster-wide *)
  bytes : int;  (** on-wire bytes sent, headers included *)
  words : int;  (** [bytes] in 64-bit words - the paper's complexity unit *)
}

val run_loopback :
  ?seed:int64 ->
  Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  inputs:Bca_util.Value.t array ->
  (Bca_core.Aba.result * net_stats, string) result
(** Single-process cluster over the in-memory hub; see the determinism
    contract above.  This is also how the bench report measures
    per-decision bytes/words per stack. *)

type decision = {
  d_pid : int;
  d_value : Bca_util.Value.t;
  d_round : int;  (** commit round *)
  d_frames : int;  (** frames this node sent *)
  d_bytes : int;  (** bytes this node sent *)
}

val print_decision : decision -> unit
(** The one-line [DECIDED pid=... value=... round=... frames=... bytes=...]
    record [bca_node] emits on stdout and {!spawn_cluster} parses back. *)

val parse_decision : string -> decision option

val run_node :
  ?seed:int64 ->
  ?timeout_s:float ->
  ?linger_s:float ->
  ?tracer:Bca_obs.Trace.t ->
  Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  inputs:Bca_util.Value.t array ->
  net:Transport.t ->
  (decision, string) result
(** Drive party [net.me] to termination over [net]: broadcast its initial
    sends, then deliver inbound frames (and its own self-addressed
    messages, FIFO) to the protocol node, shipping every emitted message
    back out encoded.  [inputs] must be the full cluster's input vector -
    determinism of the assembly requires every process to build the same
    cluster.  After terminating, flushes the outbound queues and keeps
    answering peers for [linger_s] (default 1.0) seconds so laggards can
    finish; gives up after [timeout_s] (default 30.0) seconds without
    termination.  Does not close [net]. *)

type cluster_result = {
  c_value : Bca_util.Value.t;
  c_rounds : int array;  (** per-pid commit round *)
  c_stats : net_stats;  (** cluster-wide traffic totals *)
}

val spawn_cluster :
  ?timeout_s:float ->
  node_exe:string ->
  stack:string ->
  eps:float ->
  cfg:Bca_core.Types.cfg ->
  seed:int64 ->
  inputs:Bca_util.Value.t array ->
  transport:[ `Unix | `Tcp ] ->
  unit ->
  (cluster_result, string) result
(** Fork one [node_exe] process per party ([`Unix]: sockets in a fresh
    temporary directory, removed afterwards; [`Tcp]: loopback TCP on
    {!Transport.Socket.pick_tcp_ports} ports), parse each node's [DECIDED]
    line, and check they all decided the same value.  [Error] on
    disagreement (a protocol bug), on any node exiting without deciding,
    and on [timeout_s] (default 60.0) elapsing - surviving processes are
    killed. *)

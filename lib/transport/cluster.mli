(** Run the six (G)BCA stacks to decision over a real transport.

    All entry points are built on [Bca_core.Aba.run_custom] /
    [Aba.run_custom_many] (the cluster assembly - coin seeding,
    threshold-key setup, per-party construction - is byte-for-byte the one
    the simulator uses; only message movement differs):

    - {!run_loopback}: the whole cluster in one process over
      {!Transport.Loopback}, every message encoded and decoded on each hop.
      {b Determinism contract}: for a given [seed] the run is bit-identical
      to [Bca_core.Aba.run ~seed] - same decision values, commit rounds,
      delivery count - because the loopback hub replays the netsim random
      scheduler's exact RNG stream over an identically-ordered frame pool
      (checked in [test/test_transport.ml]; DESIGN.md section 11).
    - {!run_loopback_multi}: B independent instances of the same stack
      interleaved round-robin in one process.  Each instance owns its hub
      (and RNG), so instance [k] is bit-identical to [run_loopback
      ~seed:(instance_seed ~seed k)] run alone.
    - {!run_node}: ONE party, driven over a socket {!Transport.t} - what
      [bca_node] executes, one process per party.
    - {!run_node_multi}: one party of B concurrent instances, multiplexed
      over ONE endpoint with per-destination frame batching ({!Batcher}) -
      the pipelined executor [bca_node --instances] runs.
    - {!run_inproc_cluster}: all [n] multi-instance parties in one process
      over real sockets - the cluster-throughput bench harness.
    - {!spawn_cluster} / {!spawn_cluster_multi}: the launchers - fork [n]
      [bca_node] processes over Unix-domain sockets or TCP, collect their
      decisions, check agreement.
    - {!spawn_cluster_supervised}: the crash-recovery launcher - every node
      keeps a durable WAL ([Bca_recovery.Wal]), and a node that dies
      (SIGKILL included) is restarted with [--recover], replays its WAL and
      rejoins the live cluster mid-flight.  See DESIGN.md section 13.

    {b Rejoin control plane.}  Nodes exchange two out-of-band control
    frames under a dedicated codec id (0xC7): [HELLO], broadcast by a
    recovered node, is answered by re-sending the full per-destination
    frame history to the sender (safe because every stack is idempotent
    per sender); [BYE] announces a decision, and a lingering node that has
    collected n-1 BYEs exits early instead of sitting out its linger. *)

val parse_stack : ?eps:float -> string -> (Bca_core.Aba.spec, string) result
(** [crash-strong], [crash-weak], [crash-local], [byz-strong], [byz-weak],
    [byz-tsig] (the weak stacks take their coin goodness from [eps],
    default 0.25) - same names [bca run] accepts. *)

val stack_name : Bca_core.Aba.spec -> string
(** Canonical name, [parse_stack]-compatible. *)

val all_stacks : ?eps:float -> unit -> (string * Bca_core.Aba.spec) list
(** The six stacks by canonical name. *)

type net_stats = {
  frames : int;  (** frames sent cluster-wide *)
  bytes : int;  (** on-wire bytes sent, headers included *)
  words : int;  (** [bytes] in 64-bit words - the paper's complexity unit *)
}

(** {1 Instance derivation}

    Multi-instance runs derive every instance's seed and input vector from
    one cluster seed, so every process (and the tests and the bench)
    reconstructs identical instances without shipping B input vectors
    around. *)

val instance_seed : seed:int64 -> int -> int64
(** Seed of instance [k]: a Weyl step of the golden-ratio constant per
    instance, never equal to [seed] itself. *)

val instance_inputs : seed:int64 -> n:int -> int -> Bca_util.Value.t array
(** Input vector of instance [k]: [n] coin flips from an RNG seeded off
    {!instance_seed}. *)

val run_loopback :
  ?seed:int64 ->
  Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  inputs:Bca_util.Value.t array ->
  (Bca_core.Aba.result * net_stats, string) result
(** Single-process cluster over the in-memory hub; see the determinism
    contract above.  This is also how the bench report measures
    per-decision bytes/words per stack. *)

val run_loopback_multi :
  ?seed:int64 ->
  Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  instances:int ->
  ((Bca_core.Aba.result * net_stats) array, string) result
(** [instances] loopback clusters of the same stack (instance [k] seeded
    with [instance_seed ~seed k], inputs from [instance_inputs]),
    interleaved one delivery at a time round-robin.  Per-instance results
    are bit-identical to solo {!run_loopback} runs of the same derived
    seed - the executor-correctness oracle for the batched socket path. *)

type decision = {
  d_pid : int;
  d_value : Bca_util.Value.t;
  d_round : int;  (** commit round *)
  d_frames : int;  (** frames this node sent *)
  d_bytes : int;  (** bytes this node sent *)
}

val print_decision : decision -> unit
(** The one-line [DECIDED pid=... value=... round=... frames=... bytes=...]
    record [bca_node] emits on stdout and {!spawn_cluster} parses back. *)

val parse_decision : string -> decision option

type recovery_info = {
  ri_pid : int;
  ri_records : int;  (** WAL records replayed (the Meta header excluded) *)
  ri_wal_bytes : int;  (** valid WAL prefix bytes (torn tail excluded) *)
  ri_replay_s : float;  (** wall time spent loading and replaying the WAL *)
}

val print_recovered : recovery_info -> unit
(** The one-line [RECOVERED pid=... records=... wal_bytes=... replay_s=...]
    record a recovering [bca_node] emits before its [DECIDED] line; the
    supervisor parses it back. *)

val parse_recovered : string -> recovery_info option

val run_node :
  ?seed:int64 ->
  ?timeout_s:float ->
  ?linger_s:float ->
  ?tracer:Bca_obs.Trace.t ->
  ?wal_dir:string ->
  ?recover:bool ->
  ?on_recover:(recovery_info -> unit) ->
  Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  inputs:Bca_util.Value.t array ->
  net:Transport.t ->
  (decision, string) result
(** Drive party [net.me] to termination over [net]: broadcast its initial
    sends, then deliver inbound frames (and its own self-addressed
    messages, FIFO) to the protocol node, shipping every emitted message
    back out encoded.  [inputs] must be the full cluster's input vector -
    determinism of the assembly requires every process to build the same
    cluster.  After terminating, broadcasts a BYE, flushes the outbound
    queues and keeps answering peers for [linger_s] (default 1.0) seconds
    - or until all n-1 peers BYE'd - so laggards can finish; gives up
    after [timeout_s] (default 30.0) seconds without termination.  Does
    not close [net].

    With [wal_dir] the node keeps a durable write-ahead log
    ([Bca_recovery.Wal.file_path ~dir ~me]): its meta header, every
    delivered frame (fsync'd {e before} it is applied - otherwise a
    post-crash replay could recompute this node's sends under a delivery
    order the cluster never saw, an honest equivocation), every sent
    frame's intent, and milestone notes.  With [recover] the WAL is loaded
    first: the node replays the logged deliveries against the freshly
    built assembly (cross-checking regenerated sends against the logged
    intents), reopens the WAL at its valid prefix, calls [on_recover] with
    the replay cost, then rejoins the live cluster - broadcasting HELLO
    (peers answer with their history) and re-sending its own regenerated
    history. *)

(** {1 Pipelined multi-instance execution} *)

type multi_decision = {
  md_pid : int;
  md_values : Bca_util.Value.t array;  (** per instance *)
  md_rounds : int array;  (** per-instance commit round of this party *)
  md_frames : int;  (** frames this node sent (batch frames, not records) *)
  md_bytes : int;  (** bytes this node sent *)
  md_batches : int;  (** batch frames assembled *)
  md_records : int;  (** protocol messages carried in them *)
}

val print_multi_decision : multi_decision -> unit
(** The one-line [MDECIDED pid=... values=<bitstring> rounds=<csv> ...]
    record [bca_node --instances] emits and {!spawn_cluster_multi} parses
    back. *)

val parse_multi_decision : string -> multi_decision option

val run_node_multi :
  ?seed:int64 ->
  ?timeout_s:float ->
  ?linger_s:float ->
  ?tracer:Bca_obs.Trace.t ->
  ?policy:Batcher.policy ->
  Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  instances:int ->
  net:Transport.t ->
  (multi_decision, string) result
(** Drive party [net.me] of [instances] concurrent instances (seeds and
    inputs derived per {!instance_seed} / {!instance_inputs}) over one
    endpoint.  Outbound messages from all instances are batched per
    destination under [policy] (default [Batcher.policy ()]) and flushed
    at the end of every scheduling slice; inbound batch frames are
    validated whole, then demultiplexed by instance id.  Decides when every
    instance has terminated; then lingers as {!run_node} does. *)

(** {1 In-process socket cluster (bench harness)} *)

type inproc_result = {
  ir_values : Bca_util.Value.t array;  (** per-instance agreed value *)
  ir_rounds : int array;  (** per-instance max commit round *)
  ir_frames : int;  (** frames sent cluster-wide (batches, not records) *)
  ir_bytes : int;  (** on-wire bytes sent cluster-wide *)
  ir_writes : int;  (** [write] syscalls cluster-wide - the coalescing win *)
  ir_batches : int;
  ir_records : int;
  ir_max_occupancy : int;  (** largest record count seen in one batch *)
}

val run_inproc_cluster :
  ?seed:int64 ->
  ?policy:Batcher.policy ->
  ?coalesce:bool ->
  ?sndbuf_bytes:int ->
  ?rcvbuf_bytes:int ->
  ?timeout_s:float ->
  Bca_core.Aba.spec ->
  cfg:Bca_core.Types.cfg ->
  instances:int ->
  transport:[ `Unix | `Tcp ] ->
  (inproc_result, string) result
(** All [n] multi-instance parties in ONE process over real sockets
    ([`Unix]: a fresh temporary directory; [`Tcp]: loopback on picked
    ports, retried on a lost bind race), stepped round-robin to decision.
    One shared assembly keeps setup cheap and lets the harness check
    agreement directly on the party states.  This is the cluster-throughput
    bench harness: [policy]/[coalesce]/[sndbuf_bytes]/[rcvbuf_bytes] select
    the batched hot path (defaults) or the per-message baseline
    ([policy = Batcher.immediate], [coalesce:false]). *)

(** {1 Multi-process launchers} *)

type cluster_result = {
  c_value : Bca_util.Value.t;
  c_rounds : int array;  (** per-pid commit round *)
  c_stats : net_stats;  (** cluster-wide traffic totals *)
}

val addr_in_use_exit : int
(** Exit code (3) [bca_node] reserves for a bind failure (EADDRINUSE):
    the launchers see it and retry the whole spawn with fresh ports, so
    parallel CI runs cannot race each other's rendezvous. *)

val spawn_cluster :
  ?timeout_s:float ->
  ?pick_ports:(attempt:int -> int array) ->
  node_exe:string ->
  stack:string ->
  eps:float ->
  cfg:Bca_core.Types.cfg ->
  seed:int64 ->
  inputs:Bca_util.Value.t array ->
  transport:[ `Unix | `Tcp ] ->
  unit ->
  (cluster_result, string) result
(** Fork one [node_exe] process per party ([`Unix]: sockets in a fresh
    temporary directory, removed afterwards; [`Tcp]: loopback TCP on
    {!Transport.Socket.pick_tcp_ports} ports), parse each node's [DECIDED]
    line, and check they all decided the same value.  [Error] on
    disagreement (a protocol bug), on any node exiting without deciding,
    and on [timeout_s] (default 60.0) elapsing - surviving processes are
    killed.  A TCP spawn where a node exits {!addr_in_use_exit} (lost the
    port race) is retried with fresh ports, up to 3 attempts.
    [pick_ports] overrides the port rendezvous per attempt (1-based) - a
    test hook for forcing and then resolving bind collisions. *)

(** {1 Supervised crash-recovery launcher} *)

type supervised_result = {
  s_result : cluster_result;
  s_restarts : int;  (** node restarts the supervisor performed *)
  s_recoveries : recovery_info list;  (** one per successful WAL replay *)
  s_wal_bytes : int;  (** bytes across all WAL files when the run ended *)
}

val wal_dir_bytes : wal_dir:string -> n:int -> int
(** Total size of the [wal-<pid>.log] files currently in [wal_dir]. *)

val spawn_cluster_supervised :
  ?timeout_s:float ->
  ?max_restarts:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  ?kill_at:int * string ->
  node_exe:string ->
  stack:string ->
  eps:float ->
  cfg:Bca_core.Types.cfg ->
  seed:int64 ->
  inputs:Bca_util.Value.t array ->
  wal_dir:string ->
  transport:[ `Unix | `Tcp ] ->
  unit ->
  (supervised_result, string) result
(** {!spawn_cluster} with crash recovery: every node runs with
    [--wal-dir wal_dir] and a linger as long as [timeout_s] (the BYE
    exchange ends it early), and the launcher supervises the children - a
    node that dies (killed by a signal, exiting non-zero, or exiting
    without a [DECIDED] line) is restarted with capped-exponential backoff
    ([backoff_base_s], default 0.25 s, doubling per restart of that node
    up to [backoff_cap_s], default 2 s), at most [max_restarts] (default
    4) times per node, recovering from its WAL when one exists.

    [kill_at = (victim, trigger)] arms node [victim] with
    [--kill-at trigger] (e.g. ["coin:1"]: SIGKILL itself at its first
    access of round 1's coin - the worst possible moment, mid-round with
    the binding property in flight); the restart argv strips the flag so
    the recovered process does not re-fire while replaying the same coin
    access.  [wal_dir] must exist and persist across restarts; the caller
    owns it. *)

type multi_cluster_result = {
  mc_values : Bca_util.Value.t array;  (** per-instance agreed value *)
  mc_rounds : int array;  (** per-instance max commit round over nodes *)
  mc_stats : net_stats;  (** cluster-wide traffic totals (batch frames) *)
  mc_batches : int;
  mc_records : int;
}

val spawn_cluster_multi :
  ?timeout_s:float ->
  ?policy:Batcher.policy ->
  node_exe:string ->
  stack:string ->
  eps:float ->
  cfg:Bca_core.Types.cfg ->
  seed:int64 ->
  instances:int ->
  transport:[ `Unix | `Tcp ] ->
  unit ->
  (multi_cluster_result, string) result
(** {!spawn_cluster} for the pipelined executor: each node runs
    [node_exe --instances B] (inputs derived in-process, so none are passed),
    emits an [MDECIDED] line, and the launcher checks per-instance
    agreement across nodes.  Same timeout, cleanup and port-race retry
    behavior as {!spawn_cluster}. *)

(** {1 Replicated log (RSM) over real transports}

    The pipelined atomic-broadcast log ({!Bca_rsm.Rsm}) under the same
    three message-movement regimes as the binary stacks: the seeded
    loopback hub ({!run_rsm_loopback}, bit-identical to the netsim run at
    the same seed - the windowed executor's correctness oracle), an
    in-process socket cluster driven by an open-loop load generator
    ({!run_rsm_loadgen} - the bench harness), and forked
    [bca_node --rsm] processes ({!spawn_rsm_cluster}).  Replicas compare
    committed logs by FNV-1a digest ({!rsm_log_hash}). *)

val rsm_log_hash : Bca_rsm.Rsm.tx list -> int64
(** Digest of a committed log ({!Bca_rsm.Mvba.digest} over the netstring
    encoding) - what nodes print and launchers compare. *)

val rsm_workload : pid:int -> count:int -> tx_bytes:int -> Bca_rsm.Rsm.tx list
(** The deterministic per-node workload every [bca_node --rsm] process
    regenerates from its spawn parameters: [count] transactions, globally
    unique by pid and index, padded to [tx_bytes]. *)

type rsm_loop_result = {
  rl_logs : Bca_rsm.Rsm.tx list array;  (** per-replica committed log *)
  rl_deliveries : int;
  rl_stats : net_stats;
}

val run_rsm_loopback :
  ?seed:int64 ->
  Bca_rsm.Rsm.params ->
  txs:(int -> Bca_rsm.Rsm.tx list) ->
  (rsm_loop_result, string) result
(** Single-process replicated log over the in-memory hub: replica [pid]
    submits [txs pid] right after construction, then every epoch's ACS
    runs with each hop round-tripping through the codec-7 wire format.
    Same determinism contract as {!run_loopback}: for a given [seed] the
    per-replica logs are bit-identical to the netsim run
    ([Async_exec.run] under [random_scheduler (Rng.create seed)]) of the
    same parameters and submissions. *)

type rsm_decision = {
  r_pid : int;
  r_epochs : int;  (** epochs committed *)
  r_txs : int;  (** transactions in the committed log *)
  r_hash : int64;  (** FNV-1a digest of the whole log *)
  r_frames : int;  (** frames this node sent *)
  r_bytes : int;  (** bytes this node sent *)
}

val print_rsm_decision : rsm_decision -> unit
(** The one-line [RSMLOG pid=... epochs=... txs=... hash=... frames=...
    bytes=...] record [bca_node --rsm] emits on stdout and
    {!spawn_rsm_cluster} parses back. *)

val parse_rsm_decision : string -> rsm_decision option

val run_rsm_node :
  ?timeout_s:float ->
  ?linger_s:float ->
  Bca_rsm.Rsm.params ->
  txs:Bca_rsm.Rsm.tx list ->
  net:Transport.t ->
  (rsm_decision, string) result
(** Drive replica [net.me] of the replicated log to termination over
    [net]: submit [txs], broadcast the initial epoch messages, then
    deliver inbound frames (self-copies FIFO through a local queue) until
    all [epochs] commit.  After terminating, broadcasts a BYE and lingers
    as {!run_node} does - a terminated replica's past frames are all a
    laggard needs, the sockets just have to stay open long enough to
    drain.  Does not close [net]. *)

type rsm_load = {
  lg_rate : float;  (** target submissions/s cluster-wide; [<= 0]: preload all *)
  lg_total : int;  (** transactions to inject, round-robin across replicas *)
  lg_tx_bytes : int;  (** padded size of each transaction *)
}

type rsm_load_result = {
  lr_committed : int;  (** transactions in the committed log *)
  lr_epochs : int;
  lr_duration_s : float;  (** start to the last commit at the observer *)
  lr_tx_per_s : float;  (** [committed / duration] *)
  lr_p50_ms : float;  (** median submit-to-commit latency *)
  lr_p99_ms : float;
  lr_frames : int;  (** frames sent cluster-wide *)
  lr_bytes : int;
  lr_writes : int;  (** write syscalls cluster-wide (0 for loopback) *)
}

val run_rsm_loadgen_loopback :
  ?seed:int64 ->
  ?timeout_s:float ->
  Bca_rsm.Rsm.params ->
  load:rsm_load ->
  (rsm_load_result, string) result
(** Open-loop load generation over the in-memory hub: transaction [i] is
    due at [t0 + i/rate] (all at [t0] when [lg_rate <= 0]) and submitted
    to replica [i mod n]; replica 0 observes commits, so a latency spans
    submission at any replica to commit in replica 0's log.  Throughput
    is measured to the last commit, not to the end of the (possibly
    empty) trailing epochs. *)

val run_rsm_loadgen :
  ?coalesce:bool ->
  ?sndbuf_bytes:int ->
  ?rcvbuf_bytes:int ->
  ?timeout_s:float ->
  ?hop_s:float ->
  Bca_rsm.Rsm.params ->
  load:rsm_load ->
  transport:[ `Unix | `Tcp ] ->
  (rsm_load_result, string) result
(** {!run_rsm_loadgen_loopback} over real sockets: all [n] replicas in
    one process ([`Unix]: a fresh temporary directory; [`Tcp]: loopback
    on picked ports, retried on a lost bind race), stepped round-robin
    with open-loop injection interleaved.  Checks log agreement across
    replicas (by digest) before reporting.  This is the [bca loadgen] and
    bench-[rsm] harness.

    [hop_s] (default 0) emulates one-way network latency netem-style:
    each replica's outbound frames are held [hop_s] seconds before they
    reach the sockets (self-copies stay immediate - the delay models the
    wire, not local compute).  Local sockets are microseconds away, so
    without it the run is CPU-bound and a deep window only adds
    window-fill epochs; with a realistic hop the run is latency-bound
    and pipelining (window > 1) overlaps the per-epoch round trips that
    a sequential log pays serially.  Reported commit latencies include
    the emulated hops. *)

type rsm_cluster_result = {
  rc_epochs : int;
  rc_txs : int;  (** committed transactions (identical at every node) *)
  rc_hash : int64;  (** the common log's digest *)
  rc_stats : net_stats;
}

val spawn_rsm_cluster :
  ?timeout_s:float ->
  ?pick_ports:(attempt:int -> int array) ->
  node_exe:string ->
  cfg:Bca_core.Types.cfg ->
  seed:int64 ->
  epochs:int ->
  window:int ->
  batch_txs:int ->
  batch_bytes:int ->
  txs_per_node:int ->
  tx_bytes:int ->
  transport:[ `Unix | `Tcp ] ->
  unit ->
  (rsm_cluster_result, string) result
(** Fork one [node_exe --rsm] process per replica, parse each node's
    [RSMLOG] line, and check every replica committed the identical log
    (same epoch count, transaction count and digest).  Every node submits
    the whole derived workload ([n * txs_per_node] transactions, the
    union of {!rsm_workload} over all pids): commit-time deduplication
    makes each transaction commit exactly once, and no transaction is
    censored when its origin replica keeps losing the ACS inclusion race
    (a late-starting process in a short fixed-length log).  Same timeout,
    cleanup and port-race retry behavior as {!spawn_cluster}. *)

(* lint: allow-file determinism -- real-process cluster driver; wall-clock deadlines bound socket waits and child reaping and never feed protocol state *)
module Aba = Bca_core.Aba
module Types = Bca_core.Types
module Async = Bca_netsim.Async_exec
module Node = Bca_netsim.Node
module Wire = Bca_wire.Wire
module Batch = Bca_wire.Batch
module Value = Bca_util.Value
module Rng = Bca_util.Rng
module Wal = Bca_recovery.Wal

let parse_stack ?(eps = 0.25) = function
  | "crash-strong" -> Ok Aba.Crash_strong
  | "crash-weak" -> Ok (Aba.Crash_weak eps)
  | "crash-local" -> Ok Aba.Crash_local
  | "byz-strong" -> Ok Aba.Byz_strong
  | "byz-weak" -> Ok (Aba.Byz_weak eps)
  | "byz-tsig" -> Ok Aba.Byz_tsig
  | s ->
    Error
      (Printf.sprintf
         "unknown stack %S (expected crash-strong | crash-weak | crash-local | byz-strong \
          | byz-weak | byz-tsig)"
         s)

let stack_name = function
  | Aba.Crash_strong -> "crash-strong"
  | Aba.Crash_weak _ -> "crash-weak"
  | Aba.Crash_local -> "crash-local"
  | Aba.Byz_strong -> "byz-strong"
  | Aba.Byz_weak _ -> "byz-weak"
  | Aba.Byz_tsig -> "byz-tsig"

let all_stacks ?(eps = 0.25) () =
  [ ("crash-strong", Aba.Crash_strong);
    ("crash-weak", Aba.Crash_weak eps);
    ("crash-local", Aba.Crash_local);
    ("byz-strong", Aba.Byz_strong);
    ("byz-weak", Aba.Byz_weak eps);
    ("byz-tsig", Aba.Byz_tsig) ]

type net_stats = { frames : int; bytes : int; words : int }

(* ---- instance derivation -------------------------------------------- *)

(* Weyl sequence over the golden-ratio constant: B well-separated seeds
   from one, [k = 0] already distinct from [seed] itself so a multi run
   never aliases the single run it is compared against. *)
let instance_seed ~seed k =
  Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (k + 1)))

let instance_inputs ~seed ~n k =
  let rng = Rng.create (Int64.add (instance_seed ~seed k) 0x1B17L) in
  Array.init n (fun _ -> Value.of_bool (Rng.bool rng))

(* ---- single-process loopback cluster -------------------------------- *)

let max_deliveries = 1_000_000

(* Bit-identity with [Aba.run ~seed]: the netsim random scheduler draws one
   [Rng.int rng (pool length)] per delivery over a swap-remove pool that
   grows in send order (broadcasts append dst 0, 1, ..., n-1).  The engine
   below is seeded with the same [seed], its pool is populated in the same
   order (initial envelopes replayed by eid, then each delivery's emits in
   emission order), and [Loopback.step] draws the same way - so the frame
   chosen at step [k] is the envelope the simulator would have delivered at
   step [k], and the protocol states evolve identically even though every
   hop here round-trips through the binary codec.

   The engine is resumable one delivery at a time so that
   [run_loopback_multi] can interleave B of them round-robin: each engine
   owns its hub (and hence its RNG), executor and scratch buffer, so the
   per-instance delivery sequence is independent of the interleaving. *)
type 'm loop_engine = {
  le_hub : Transport.Loopback.hub;
  le_ends : Transport.t array;
  le_wire : 'm Wire.codec;
  le_exec : 'm Async.t;
  le_parties : Aba.party array;
  le_scratch : Buffer.t;
  mutable le_delivered : int;
  mutable le_words : int;
}

let loop_ship eng ~src ~dst s =
  eng.le_ends.(src).Transport.send ~dst s;
  eng.le_words <- eng.le_words + Wire.words_of_bytes (String.length s)

let loop_emits eng src emits =
  let n = Array.length eng.le_ends in
  List.iter
    (fun emit ->
      match emit with
      | Node.Broadcast m ->
        let s = Wire.encode_buf eng.le_wire ~sender:src ~scratch:eng.le_scratch m in
        for d = 0 to n - 1 do
          loop_ship eng ~src ~dst:d s
        done
      | Node.Unicast (d, m) ->
        loop_ship eng ~src ~dst:d
          (Wire.encode_buf eng.le_wire ~sender:src ~scratch:eng.le_scratch m))
    emits

let loop_make ~seed ~wire ~exec ~parties =
  let n = Async.n exec in
  let hub = Transport.Loopback.create_hub ~seed ~n () in
  let eng =
    { le_hub = hub;
      le_ends = Array.init n (fun me -> Transport.Loopback.endpoint hub ~me);
      le_wire = wire;
      le_exec = exec;
      le_parties = parties;
      le_scratch = Buffer.create 256;
      le_delivered = 0;
      le_words = 0 }
  in
  List.iter
    (fun e ->
      loop_ship eng ~src:e.Async.src ~dst:e.Async.dst
        (Wire.encode_buf wire ~sender:e.Async.src ~scratch:eng.le_scratch e.Async.payload))
    (List.sort (fun a b -> Int.compare a.Async.eid b.Async.eid) (Async.inflight exec));
  eng

(* One delivery.  [Ok true]: still running; [Ok false]: all terminated. *)
let loop_step eng =
  if Async.all_terminated eng.le_exec then Ok false
  else
    match Transport.Loopback.step eng.le_hub with
    | None -> Error "network quiesced before termination (liveness bug)"
    | Some (dst, f) -> (
      eng.le_delivered <- eng.le_delivered + 1;
      match Wire.decode_body eng.le_wire f with
      | Error e ->
        Error (Printf.sprintf "codec failure in flight: %s" (Wire.error_to_string e))
      | Ok m ->
        loop_emits eng dst ((Async.node_of eng.le_exec dst).Node.receive ~src:f.Wire.sender m);
        Ok true)

let loop_finish eng =
  let parties = eng.le_parties in
  let missing = ref false in
  let commits =
    Array.map
      (fun (p : Aba.party) ->
        match p.committed () with
        | Some v -> v
        | None ->
          missing := true;
          Value.of_bool false)
      parties
  in
  if !missing then Error "terminated without commit (bug)"
  else begin
    let value = commits.(0) in
    if not (Array.for_all (Value.equal value) commits) then Error "agreement violated (bug)"
    else begin
      let frames = Array.fold_left (fun a e -> a + e.Transport.stats.frames_out) 0 eng.le_ends in
      let bytes = Array.fold_left (fun a e -> a + e.Transport.stats.bytes_out) 0 eng.le_ends in
      Ok
        ( { Aba.value;
            commits;
            deliveries = eng.le_delivered;
            rounds =
              Array.fold_left (fun acc (p : Aba.party) -> max acc (p.round ())) 0 parties },
          { frames; bytes; words = eng.le_words } )
    end
  end

let run_loopback ?(seed = 0xB0CA1L) spec ~cfg ~inputs =
  let driver =
    { Aba.drive =
        (fun ~coin:_ ~wire exec parties ->
          let eng = loop_make ~seed ~wire ~exec ~parties in
          let rec go () =
            if eng.le_delivered >= max_deliveries then
              Error "delivery limit reached before termination"
            else
              match loop_step eng with
              | Error _ as e -> e
              | Ok true -> go ()
              | Ok false -> loop_finish eng
          in
          go ())
    }
  in
  match Aba.run_custom ~seed spec ~cfg ~inputs ~driver with
  | Error _ as e -> e
  | Ok r -> r

let run_loopback_multi ?(seed = 0xB0CA1L) spec ~cfg ~instances =
  if instances < 1 then Error "instances must be >= 1"
  else begin
    let n = cfg.Types.n in
    let seeds = Array.init instances (instance_seed ~seed) in
    let inputs = Array.init instances (instance_inputs ~seed ~n) in
    let driver =
      { Aba.drive_many =
          (fun ~wire insts ->
            let engines =
              Array.map
                (fun (inst : _ Aba.instance) ->
                  loop_make ~seed:inst.Aba.i_seed ~wire ~exec:inst.Aba.i_exec
                    ~parties:inst.Aba.i_parties)
                insts
            in
            let b = Array.length engines in
            let running = Array.make b true in
            let live = ref b in
            let err = ref None in
            (* round-robin, one delivery per live engine per sweep *)
            while !live > 0 && !err = None do
              Array.iteri
                (fun k eng ->
                  if running.(k) && !err = None then
                    if eng.le_delivered >= max_deliveries then
                      err :=
                        Some
                          (Printf.sprintf "instance %d: delivery limit reached before termination" k)
                    else
                      match loop_step eng with
                      | Error e -> err := Some (Printf.sprintf "instance %d: %s" k e)
                      | Ok true -> ()
                      | Ok false ->
                        running.(k) <- false;
                        decr live)
                engines
            done;
            match !err with
            | Some e -> Error e
            | None ->
              let rec collect k acc =
                if k < 0 then Ok (Array.of_list acc)
                else
                  match loop_finish engines.(k) with
                  | Error e -> Error (Printf.sprintf "instance %d: %s" k e)
                  | Ok r -> collect (k - 1) (r :: acc)
              in
              collect (b - 1) [])
      }
    in
    match Aba.run_custom_many spec ~cfg ~seeds ~inputs ~driver with
    | Error _ as e -> e
    | Ok r -> r
  end

(* ---- rejoin control plane ------------------------------------------- *)

(* Out-of-band node-to-node control frames, framed like any wire frame but
   under their own codec id so the stack decoder never sees them.  HELLO is
   what a recovered node broadcasts after replaying its WAL: every receiver
   answers by re-sending its full per-destination frame history to the
   sender (safe: all six stacks are idempotent per sender).  BYE announces
   a decision; a lingering node that has collected n-1 BYEs knows every
   peer decided and may exit early, which is what lets supervised clusters
   run with a linger as long as the whole timeout without paying it. *)
let ctrl_codec_id = 0xC7
let ctrl_hello = 0
let ctrl_bye = 1

let encode_ctrl ~sender op =
  Wire.encode_raw ~codec_id:ctrl_codec_id ~sender (String.make 1 (Char.chr op))

let decode_ctrl (f : Wire.frame) =
  if String.length f.Wire.body <> 1 then None
  else begin
    let op = Char.code f.Wire.body.[0] in
    if op = ctrl_hello then Some `Hello else if op = ctrl_bye then Some `Bye else None
  end

let spec_eps = function
  | Aba.Crash_weak e | Aba.Byz_weak e -> e
  | Aba.Crash_strong | Aba.Crash_local | Aba.Byz_strong | Aba.Byz_tsig -> 0.

type recovery_info = {
  ri_pid : int;
  ri_records : int;  (** WAL records replayed (Meta excluded) *)
  ri_wal_bytes : int;  (** valid WAL prefix bytes (torn tail excluded) *)
  ri_replay_s : float;  (** wall time spent loading and replaying *)
}

let print_recovered ri =
  Printf.printf "RECOVERED pid=%d records=%d wal_bytes=%d replay_s=%.6f\n%!" ri.ri_pid
    ri.ri_records ri.ri_wal_bytes ri.ri_replay_s

let parse_recovered line =
  match
    Scanf.sscanf line "RECOVERED pid=%d records=%d wal_bytes=%d replay_s=%f"
      (fun pid records wal_bytes replay_s -> (pid, records, wal_bytes, replay_s))
  with
  | pid, records, wal_bytes, replay_s ->
    Some { ri_pid = pid; ri_records = records; ri_wal_bytes = wal_bytes; ri_replay_s = replay_s }
  | (exception Scanf.Scan_failure _) | (exception End_of_file) | (exception Failure _) -> None

(* ---- one party over a socket transport ------------------------------ *)

type decision = {
  d_pid : int;
  d_value : Value.t;
  d_round : int;
  d_frames : int;
  d_bytes : int;
}

let print_decision d =
  Printf.printf "DECIDED pid=%d value=%d round=%d frames=%d bytes=%d\n%!" d.d_pid
    (Value.to_int d.d_value) d.d_round d.d_frames d.d_bytes

let parse_decision line =
  match
    Scanf.sscanf line "DECIDED pid=%d value=%d round=%d frames=%d bytes=%d"
      (fun pid v round frames bytes -> (pid, v, round, frames, bytes))
  with
  | pid, v, round, frames, bytes when v = 0 || v = 1 ->
    Some
      { d_pid = pid;
        d_value = Value.of_bool (v = 1);
        d_round = round;
        d_frames = frames;
        d_bytes = bytes }
  | _ | (exception Scanf.Scan_failure _) | (exception End_of_file) | (exception Failure _) ->
    None

let run_node ?(seed = 0xB0CA1L) ?(timeout_s = 30.) ?(linger_s = 1.0)
    ?(tracer = Bca_obs.Trace.null) ?wal_dir ?(recover = false)
    ?(on_recover = fun (_ : recovery_info) -> ()) spec ~cfg ~inputs ~(net : Transport.t) =
  let driver =
    { Aba.drive =
        (fun ~coin:_ ~wire exec parties ->
          let n = Async.n exec in
          let me = net.Transport.me in
          if n <> net.Transport.n then invalid_arg "Cluster.run_node: transport size mismatch";
          let node = Async.node_of exec me in
          let party = parties.(me) in
          let scratch = Buffer.create 256 in
          let trace_on = Bca_obs.Trace.enabled tracer in
          (* self-addressed messages never touch the network: FIFO local
             delivery, a valid asynchronous schedule *)
          let local : (int * _) Queue.t = Queue.create () in
          (* every protocol frame ever handed to the transport, newest
             first, per destination: the rejoin currency.  A HELLO from a
             restarted peer is answered with the full history, and a
             recovered node pushes its own history back out - duplicates
             are absorbed by per-sender idempotence. *)
          let history = Array.make n [] in
          let byes = Array.make n false in
          let bye_count = ref 0 in
          (* WAL plumbing.  [wal = None] while replaying (the records being
             re-applied are already on disk) and when running without
             --wal-dir; otherwise every delivered frame is appended and
             fsync'd BEFORE it touches the protocol state - if a send
             derived from an unlogged delivery reached a peer, a post-crash
             replay could recompute this node's messages under a delivery
             order the cluster never saw, an honest equivocation that
             breaks agreement. *)
          let wal = ref None in
          let wal_append r = match !wal with Some w -> Wal.append w r | None -> () in
          let wal_flush () = match !wal with Some w -> Wal.flush w | None -> () in
          let replaying = ref false in
          let expected_sent = ref [] in
          let sent_mismatch = ref None in
          let ship ~dst s =
            history.(dst) <- s :: history.(dst);
            if !replaying then begin
              (* cross-check regenerated sends against the logged intents;
                 the WAL legitimately ends early (crash between the fsync
                 of a delivery and the flush of its sends) *)
              match !expected_sent with
              | (edst, eframe) :: rest ->
                expected_sent := rest;
                if edst <> dst || not (String.equal eframe s) then
                  if !sent_mismatch = None then sent_mismatch := Some dst
              | [] -> ()
            end
            else begin
              wal_append (Wal.Sent { dst; frame = s });
              net.Transport.send ~dst s
            end
          in
          let do_emits emits =
            List.iter
              (fun emit ->
                match emit with
                | Node.Broadcast m ->
                  let s = Wire.encode_buf wire ~sender:me ~scratch m in
                  for d = 0 to n - 1 do
                    if d = me then Queue.push (me, m) local else ship ~dst:d s
                  done
                | Node.Unicast (d, m) ->
                  if d = me then Queue.push (me, m) local
                  else ship ~dst:d (Wire.encode_buf wire ~sender:me ~scratch m))
              emits
          in
          (* milestones (round entries, the commit) mirrored to the tracer
             and - as Note records - to the WAL.  Redundant for recovery
             (Meta + Recv reconstructs everything); kept for kill triggers,
             metrics and post-mortems. *)
          let last_round = ref 0 in
          let committed_noted = ref false in
          let note ev =
            if trace_on then Bca_obs.Trace.emit tracer ev;
            if not !replaying then
              wal_append (Wal.Note { Bca_obs.Event.ts = net.Transport.stats.frames_in; ev })
          in
          let poll_milestones () =
            let r = party.Aba.round () in
            if r > !last_round then begin
              for round = !last_round + 1 to r do
                note (Bca_obs.Event.Round_enter { pid = me; round })
              done;
              last_round := r
            end;
            if not !committed_noted then
              match party.Aba.committed () with
              | Some value ->
                committed_noted := true;
                let round = match party.Aba.commit_round () with Some cr -> cr | None -> r in
                note (Bca_obs.Event.Commit { pid = me; round; value })
              | None -> ()
          in
          (* our initial sends are the src=me envelopes of the assembled
             cluster, in send (eid) order *)
          let initial_sends () =
            List.iter
              (fun e ->
                if e.Async.src = me then
                  if e.Async.dst = me then Queue.push (me, e.Async.payload) local
                  else ship ~dst:e.Async.dst (Wire.encode_buf wire ~sender:me ~scratch e.Async.payload))
              (List.sort (fun a b -> Int.compare a.Async.eid b.Async.eid) (Async.inflight exec))
          in
          let drain_local () =
            while not (Queue.is_empty local) do
              let src, m = Queue.pop local in
              do_emits (node.Node.receive ~src m)
            done;
            poll_milestones ()
          in
          let apply_frame (f : Wire.frame) =
            (match Wire.decode_body wire f with
            | Ok m -> do_emits (node.Node.receive ~src:f.Wire.sender m)
            | Error _ -> net.Transport.stats.drops <- net.Transport.stats.drops + 1);
            poll_milestones ();
            (* the live contract is "local queue empty whenever a network
               frame is applied" - replay mirrors it by draining after
               every logged delivery, so keep the drain here too *)
            drain_local ()
          in
          let resend_history dst =
            let frames = List.rev history.(dst) in
            List.iter (fun s -> net.Transport.send ~dst s) frames;
            if trace_on then
              Bca_obs.Trace.emit tracer
                (Bca_obs.Event.Transport
                   { pid = me; peer = dst; op = "resend";
                     bytes = List.fold_left (fun a s -> a + String.length s) 0 frames })
          in
          let handle_ctrl (f : Wire.frame) =
            let p = f.Wire.sender in
            if p < 0 || p >= n || p = me then
              net.Transport.stats.drops <- net.Transport.stats.drops + 1
            else
              match decode_ctrl f with
              | Some `Hello ->
                resend_history p;
                (* a restarted peer also lost our BYE if we already decided *)
                (match party.Aba.committed () with
                | Some _ -> net.Transport.send ~dst:p (encode_ctrl ~sender:me ctrl_bye)
                | None -> ())
              | Some `Bye ->
                if not byes.(p) then begin
                  byes.(p) <- true;
                  incr bye_count
                end
              | None -> net.Transport.stats.drops <- net.Transport.stats.drops + 1
          in
          let deliver_frame (f : Wire.frame) =
            if f.Wire.codec_id = ctrl_codec_id then handle_ctrl f
            else begin
              (if not (Queue.is_empty local) then drain_local ());
              (match !wal with
              | Some _ ->
                wal_append
                  (Wal.Recv (Wire.encode_raw ~codec_id:f.Wire.codec_id ~sender:f.Wire.sender f.Wire.body));
                wal_flush ()
              | None -> ());
              apply_frame f
            end
          in
          (* ---- WAL open / recovery replay ---------------------------- *)
          let meta =
            { Wal.w_stack = stack_name spec; w_eps = spec_eps spec; w_n = n;
              w_t = cfg.Types.t; w_me = me; w_seed = seed; w_input = inputs.(me) }
          in
          let boot =
            match wal_dir with
            | None ->
              initial_sends ();
              Ok ()
            | Some dir when not recover ->
              wal := Some (Wal.create ~path:(Wal.file_path ~dir ~me) meta);
              initial_sends ();
              Ok ()
            | Some dir -> (
              let path = Wal.file_path ~dir ~me in
              let t0 = Unix.gettimeofday () in
              match Wal.load path with
              | Error e -> Error (Printf.sprintf "node %d: cannot recover: %s" me e)
              | Ok (m, records, torn) ->
                if
                  (not (String.equal m.Wal.w_stack meta.Wal.w_stack))
                  || m.Wal.w_n <> n || m.Wal.w_t <> cfg.Types.t || m.Wal.w_me <> me
                  || (not (Int64.equal m.Wal.w_seed seed))
                  || not (Value.equal m.Wal.w_input inputs.(me))
                then
                  Error
                    (Printf.sprintf "node %d: WAL %s was written by a different configuration"
                       me path)
                else begin
                  replaying := true;
                  expected_sent :=
                    List.filter_map
                      (function Wal.Sent { dst; frame } -> Some (dst, frame) | _ -> None)
                      records;
                  initial_sends ();
                  drain_local ();
                  List.iter
                    (fun r ->
                      match r with
                      | Wal.Recv fr -> (
                        match Wire.decode_frame fr ~pos:0 with
                        | Ok (f, _) -> apply_frame f
                        | Error _ -> () (* unreachable: Recv holds canonical frames *))
                      | Wal.Meta _ | Wal.Sent _ | Wal.Note _ -> ())
                    records;
                  replaying := false;
                  match !sent_mismatch with
                  | Some dst ->
                    Error
                      (Printf.sprintf
                         "node %d: replay diverged from the WAL's logged sends toward node %d"
                         me dst)
                  | None ->
                    let valid_bytes =
                      match torn with
                      | Some t -> t.Wal.torn_off
                      | None -> (Unix.stat path).Unix.st_size
                    in
                    wal := Some (Wal.reopen ~path ~valid_bytes);
                    on_recover
                      { ri_pid = me;
                        ri_records = List.length records;
                        ri_wal_bytes = valid_bytes;
                        ri_replay_s = Unix.gettimeofday () -. t0 };
                    if trace_on then
                      Bca_obs.Trace.emit tracer
                        (Bca_obs.Event.Transport
                           { pid = me; peer = me; op = "recover"; bytes = valid_bytes });
                    (* rejoin: ask every peer for its history, and push our
                       regenerated history back out - the kernel buffers of
                       the dead process are gone on both sides *)
                    let hello = encode_ctrl ~sender:me ctrl_hello in
                    for d = 0 to n - 1 do
                      if d <> me then begin
                        net.Transport.send ~dst:d hello;
                        resend_history d
                      end
                    done;
                    Ok ()
                end)
          in
          match boot with
          | Error _ as e -> e
          | Ok () ->
            let deadline = Unix.gettimeofday () +. timeout_s in
            let rec loop () =
              if node.Node.terminated () then Ok ()
              else if not (Queue.is_empty local) then begin
                drain_local ();
                loop ()
              end
              else
                match net.Transport.recv ~timeout_s:0.05 with
                | Some f ->
                  deliver_frame f;
                  loop ()
                | None ->
                  if Unix.gettimeofday () >= deadline then
                    Error
                      (Printf.sprintf "node %d timed out after %.1fs without terminating" me
                         timeout_s)
                  else loop ()
            in
            (match loop () with
            | Error _ as e -> e
            | Ok () ->
              (* decision reached: make the tail durable, tell the peers,
                 then stay responsive while laggards finish - a BYE from
                 all n-1 peers ends the linger early *)
              poll_milestones ();
              wal_flush ();
              let bye = encode_ctrl ~sender:me ctrl_bye in
              for d = 0 to n - 1 do
                if d <> me then net.Transport.send ~dst:d bye
              done;
              let linger_until = Unix.gettimeofday () +. linger_s in
              ignore (net.Transport.flush ~timeout_s:(Float.min linger_s 1.0));
              let rec linger () =
                drain_local ();
                let now = Unix.gettimeofday () in
                if now < linger_until && !bye_count < n - 1 then begin
                  (match net.Transport.recv ~timeout_s:(Float.min 0.05 (linger_until -. now)) with
                  | Some f -> deliver_frame f
                  | None -> ());
                  linger ()
                end
              in
              linger ();
              ignore (net.Transport.flush ~timeout_s:0.5);
              (match !wal with Some w -> Wal.close w | None -> ());
              (match party.Aba.committed () with
              | Some v ->
                Ok
                  { d_pid = me;
                    d_value = v;
                    d_round = (match party.Aba.commit_round () with Some r -> r | None -> 0);
                    d_frames = net.Transport.stats.frames_out;
                    d_bytes = net.Transport.stats.bytes_out }
              | None -> Error (Printf.sprintf "node %d terminated without committing" me))))
    }
  in
  match Aba.run_custom ~seed ~tracer spec ~cfg ~inputs ~driver with
  | Error _ as e -> e
  | Ok r -> r

(* ---- pipelined multi-instance node ---------------------------------- *)

(* One process driving party [me] of B concurrent instances over one
   endpoint: every outbound message is a record in a per-destination batch
   ([Batcher]); every inbound frame is a batch demultiplexed by instance
   id.  A batch is validated in full - instance ids in range, every record
   decoding with the stack codec, inner id matching - before any message is
   delivered, so a corrupt batch is dropped atomically. *)
type 'm mnode = {
  mn_me : int;
  mn_wire : 'm Wire.codec;
  mn_insts : 'm Aba.instance array;
  mn_nodes : 'm Node.t array;  (** party [mn_me] of each instance *)
  mn_net : Transport.t;
  mn_bat : Batcher.t;
  mn_local : (int * int * 'm) Queue.t;  (** (instance, src, message) *)
  mn_done : bool array;
  mutable mn_undecided : int;
}

let mnode_emits mn k emits =
  let wire = mn.mn_wire in
  List.iter
    (fun emit ->
      match emit with
      | Node.Broadcast m ->
        Queue.push (k, mn.mn_me, m) mn.mn_local;
        Batcher.broadcast ~except:mn.mn_me mn.mn_bat ~instance:k ~enc:(fun b -> wire.Wire.enc b m)
      | Node.Unicast (d, m) ->
        if d = mn.mn_me then Queue.push (k, mn.mn_me, m) mn.mn_local
        else Batcher.send mn.mn_bat ~dst:d ~instance:k ~enc:(fun b -> wire.Wire.enc b m))
    emits

let mnode_check_done mn k =
  if (not mn.mn_done.(k)) && mn.mn_nodes.(k).Node.terminated () then begin
    mn.mn_done.(k) <- true;
    mn.mn_undecided <- mn.mn_undecided - 1
  end

let mnode_deliver mn ~instance:k ~src m =
  mnode_emits mn k (mn.mn_nodes.(k).Node.receive ~src m);
  mnode_check_done mn k

let mnode_dispatch mn (v : Wire.view) =
  let drop () = mn.mn_net.Transport.stats.drops <- mn.mn_net.Transport.stats.drops + 1 in
  if v.Wire.v_codec_id <> Batch.codec_id then drop ()
  else begin
    let src = v.Wire.v_sender in
    let batch = ref [] in
    match
      Batch.iter_view v ~record:(fun ~instance g ->
          if instance >= Array.length mn.mn_nodes then
            raise (Wire.Get.Malformed "batch record: instance id out of range");
          let m = mn.mn_wire.Wire.dec g in
          Wire.Get.expect_end g;
          batch := (instance, m) :: !batch)
    with
    | Ok (inner, _count) when inner = mn.mn_wire.Wire.id ->
      List.iter (fun (k, m) -> mnode_deliver mn ~instance:k ~src m) (List.rev !batch)
    | Ok _ | Error _ -> drop ()
  end

let mnode_make ?tracer ?policy ~wire ~(insts : _ Aba.instance array) ~(net : Transport.t) () =
  let me = net.Transport.me in
  let b = Array.length insts in
  let mn =
    { mn_me = me;
      mn_wire = wire;
      mn_insts = insts;
      mn_nodes = Array.map (fun (inst : _ Aba.instance) -> Async.node_of inst.Aba.i_exec me) insts;
      mn_net = net;
      mn_bat = Batcher.create ?tracer ?policy ~inner_codec_id:wire.Wire.id net;
      mn_local = Queue.create ();
      mn_done = Array.make b false;
      mn_undecided = b }
  in
  (* ship every instance's initial src=me envelopes, in send (eid) order *)
  Array.iteri
    (fun k (inst : _ Aba.instance) ->
      List.iter
        (fun e ->
          if e.Async.src = me then
            if e.Async.dst = me then Queue.push (k, me, e.Async.payload) mn.mn_local
            else
              Batcher.send mn.mn_bat ~dst:e.Async.dst ~instance:k
                ~enc:(fun buf -> wire.Wire.enc buf e.Async.payload))
        (List.sort (fun a b -> Int.compare a.Async.eid b.Async.eid) (Async.inflight inst.Aba.i_exec));
      mnode_check_done mn k)
    insts;
  mn

(* One scheduling slice: drain local self-delivery, take at most one
   inbound batch, drain again, then flush the open batches so nothing
   waits on future traffic.  Returns whether any message moved. *)
let mnode_step mn ~timeout_s =
  let progressed = ref false in
  let drain () =
    while not (Queue.is_empty mn.mn_local) do
      let k, src, m = Queue.pop mn.mn_local in
      mnode_deliver mn ~instance:k ~src m;
      progressed := true
    done
  in
  drain ();
  (match mn.mn_net.Transport.recv_view ~timeout_s with
  | Some v ->
    mnode_dispatch mn v;
    progressed := true;
    drain ()
  | None -> ());
  Batcher.flush mn.mn_bat;
  !progressed

type multi_decision = {
  md_pid : int;
  md_values : Value.t array;
  md_rounds : int array;
  md_frames : int;
  md_bytes : int;
  md_batches : int;
  md_records : int;
}

let print_multi_decision d =
  Printf.printf "MDECIDED pid=%d values=%s rounds=%s frames=%d bytes=%d batches=%d records=%d\n%!"
    d.md_pid
    (String.init (Array.length d.md_values) (fun i ->
         if Value.to_int d.md_values.(i) = 1 then '1' else '0'))
    (String.concat "," (Array.to_list (Array.map string_of_int d.md_rounds)))
    d.md_frames d.md_bytes d.md_batches d.md_records

let parse_multi_decision line =
  match
    Scanf.sscanf line "MDECIDED pid=%d values=%s rounds=%s frames=%d bytes=%d batches=%d records=%d"
      (fun pid values rounds frames bytes batches records ->
        (pid, values, rounds, frames, bytes, batches, records))
  with
  | exception Scanf.Scan_failure _ -> None
  | exception End_of_file -> None
  | exception Failure _ -> None
  | pid, values, rounds, frames, bytes, batches, records ->
    if values = "" || not (String.for_all (fun c -> c = '0' || c = '1') values) then None
    else begin
      let round_list = String.split_on_char ',' rounds |> List.map int_of_string_opt in
      if List.exists (fun r -> r = None) round_list then None
      else begin
        let md_rounds = Array.of_list (List.filter_map Fun.id round_list) in
        if Array.length md_rounds <> String.length values then None
        else
          Some
            { md_pid = pid;
              md_values =
                Array.init (String.length values) (fun i -> Value.of_bool (values.[i] = '1'));
              md_rounds;
              md_frames = frames;
              md_bytes = bytes;
              md_batches = batches;
              md_records = records }
      end
    end

let mnode_collect mn =
  let me = mn.mn_me in
  let b = Array.length mn.mn_insts in
  let values = Array.make b (Value.of_bool false) in
  let rounds = Array.make b 0 in
  let missing = ref [] in
  Array.iteri
    (fun k (inst : _ Aba.instance) ->
      let p = inst.Aba.i_parties.(me) in
      match p.Aba.committed () with
      | Some v ->
        values.(k) <- v;
        rounds.(k) <- (match p.Aba.commit_round () with Some r -> r | None -> 0)
      | None -> missing := k :: !missing)
    mn.mn_insts;
  if !missing <> [] then
    Error
      (Printf.sprintf "node %d: instance(s) %s terminated without committing" me
         (String.concat ", " (List.rev_map string_of_int !missing)))
  else begin
    let bst = Batcher.stats mn.mn_bat in
    Ok
      { md_pid = me;
        md_values = values;
        md_rounds = rounds;
        md_frames = mn.mn_net.Transport.stats.frames_out;
        md_bytes = mn.mn_net.Transport.stats.bytes_out;
        md_batches = bst.Batcher.batches;
        md_records = bst.Batcher.records }
  end

let run_node_multi ?(seed = 0xB0CA1L) ?(timeout_s = 30.) ?(linger_s = 1.0)
    ?(tracer = Bca_obs.Trace.null) ?policy spec ~cfg ~instances ~(net : Transport.t) =
  if instances < 1 then Error "instances must be >= 1"
  else begin
    let n = cfg.Types.n in
    let seeds = Array.init instances (instance_seed ~seed) in
    let inputs = Array.init instances (instance_inputs ~seed ~n) in
    let driver =
      { Aba.drive_many =
          (fun ~wire insts ->
            if n <> net.Transport.n then
              invalid_arg "Cluster.run_node_multi: transport size mismatch";
            let mn = mnode_make ~tracer ?policy ~wire ~insts ~net () in
            let deadline = Unix.gettimeofday () +. timeout_s in
            let rec loop () =
              if mn.mn_undecided = 0 then Ok ()
              else if Unix.gettimeofday () >= deadline then
                Error
                  (Printf.sprintf "node %d timed out after %.1fs with %d/%d instances undecided"
                     mn.mn_me timeout_s mn.mn_undecided instances)
              else begin
                ignore (mnode_step mn ~timeout_s:0.02);
                loop ()
              end
            in
            match loop () with
            | Error _ as e -> e
            | Ok () ->
              let linger_until = Unix.gettimeofday () +. linger_s in
              ignore (net.Transport.flush ~timeout_s:linger_s);
              let rec linger () =
                let now = Unix.gettimeofday () in
                if now < linger_until then begin
                  ignore (mnode_step mn ~timeout_s:(Float.min 0.05 (linger_until -. now)));
                  linger ()
                end
              in
              linger ();
              ignore (net.Transport.flush ~timeout_s:0.5);
              mnode_collect mn)
      }
    in
    match Aba.run_custom_many ~tracer spec ~cfg ~seeds ~inputs ~driver with
    | Error _ as e -> e
    | Ok r -> r
  end

(* ---- in-process socket cluster (the bench harness) ------------------ *)

type inproc_result = {
  ir_values : Value.t array;
  ir_rounds : int array;
  ir_frames : int;
  ir_bytes : int;
  ir_writes : int;
  ir_batches : int;
  ir_records : int;
  ir_max_occupancy : int;
}

let cluster_counter = ref 0

let rm_rf_dir dir =
  match Sys.readdir dir with
  | entries ->
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) entries;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let fresh_unix_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bca-cluster-%d-%d" (Unix.getpid ()) !cluster_counter)
  in
  Unix.mkdir dir 0o700;
  dir

(* Build all [n] endpoints or none: a failure mid-way (a bound port stolen
   between pick and bind) closes the ones already open before re-raising,
   so a retry starts clean. *)
let make_endpoints ~coalesce ?sndbuf_bytes ?rcvbuf_bytes ~addrs ~n () =
  let ends = ref [] in
  (try
     for me = 0 to n - 1 do
       ends :=
         Transport.Socket.endpoint ~coalesce ?sndbuf_bytes ?rcvbuf_bytes
           ~max_queue_bytes:(8 * 1024 * 1024) ~addrs ~me ()
         :: !ends
     done
   with e ->
     List.iter (fun (ep : Transport.t) -> ep.Transport.close ()) !ends;
     raise e);
  Array.of_list (List.rev !ends)

let run_inproc_cluster ?(seed = 0xB0CA1L) ?policy ?(coalesce = true) ?sndbuf_bytes ?rcvbuf_bytes
    ?(timeout_s = 60.) spec ~cfg ~instances ~transport =
  if instances < 1 then Error "instances must be >= 1"
  else begin
    let n = cfg.Types.n in
    let seeds = Array.init instances (instance_seed ~seed) in
    let inputs = Array.init instances (instance_inputs ~seed ~n) in
    let attempt () =
      incr cluster_counter;
      let cleanup = ref (fun () -> ()) in
      let addrs =
        match transport with
        | `Unix ->
          let dir = fresh_unix_dir () in
          cleanup := (fun () -> rm_rf_dir dir);
          Transport.Socket.unix_addrs ~dir ~n
        | `Tcp -> Transport.Socket.tcp_addrs ~ports:(Transport.Socket.pick_tcp_ports ~n)
      in
      let driver =
        { Aba.drive_many =
            (fun ~wire insts ->
              let ends =
                try Ok (make_endpoints ~coalesce ?sndbuf_bytes ?rcvbuf_bytes ~addrs ~n ())
                with Unix.Unix_error (e, fn, _) ->
                  Error (`Bind (e, Printf.sprintf "%s: %s" fn (Unix.error_message e)))
              in
              match ends with
              | Error _ as e -> e
              | Ok ends ->
                let mns = Array.map (fun net -> mnode_make ?policy ~wire ~insts ~net ()) ends in
                let finish () =
                  Array.iter (fun (ep : Transport.t) -> ignore (ep.Transport.flush ~timeout_s:0.5)) ends;
                  Array.iter (fun (ep : Transport.t) -> ep.Transport.close ()) ends
                in
                let deadline = Unix.gettimeofday () +. timeout_s in
                let rec loop () =
                  if Array.for_all (fun mn -> mn.mn_undecided = 0) mns then Ok ()
                  else if Unix.gettimeofday () >= deadline then
                    Error
                      (`Run
                        (Printf.sprintf "in-process cluster timed out after %.1fs (%d/%d undecided at node 0)"
                           timeout_s mns.(0).mn_undecided instances))
                  else begin
                    let progressed = ref false in
                    Array.iter
                      (fun mn -> if mnode_step mn ~timeout_s:0. then progressed := true)
                      mns;
                    if not !progressed then ignore (Unix.select [] [] [] 0.001);
                    loop ()
                  end
                in
                let outcome = loop () in
                finish ();
                (match outcome with
                | Error _ as e -> e
                | Ok () ->
                  (* every mnode decided every instance: check cluster-wide
                     agreement per instance across the shared parties *)
                  let values = Array.make instances (Value.of_bool false) in
                  let rounds = Array.make instances 0 in
                  let bad = ref None in
                  Array.iteri
                    (fun k (inst : _ Aba.instance) ->
                      let commits =
                        Array.map
                          (fun (p : Aba.party) ->
                            match p.Aba.committed () with Some v -> Some v | None -> None)
                          inst.Aba.i_parties
                      in
                      if Array.exists (fun c -> c = None) commits then begin
                        if !bad = None then
                          bad := Some (Printf.sprintf "instance %d: party terminated without commit" k)
                      end
                      else begin
                        let cs = Array.to_list commits |> List.filter_map Fun.id in
                        match cs with
                        | [] -> if !bad = None then bad := Some "empty cluster"
                        | v0 :: rest ->
                          if not (List.for_all (Value.equal v0) rest) then begin
                            if !bad = None then
                              bad := Some (Printf.sprintf "instance %d: DISAGREEMENT - protocol bug" k)
                          end
                          else begin
                            values.(k) <- v0;
                            rounds.(k) <-
                              Array.fold_left
                                (fun acc (p : Aba.party) ->
                                  max acc (match p.Aba.commit_round () with Some r -> r | None -> 0))
                                0 inst.Aba.i_parties
                          end
                      end)
                    insts;
                  (match !bad with
                  | Some e -> Error (`Run e)
                  | None ->
                    let frames =
                      Array.fold_left (fun a (ep : Transport.t) -> a + ep.Transport.stats.frames_out) 0 ends
                    in
                    let bytes =
                      Array.fold_left (fun a (ep : Transport.t) -> a + ep.Transport.stats.bytes_out) 0 ends
                    in
                    let writes =
                      Array.fold_left (fun a (ep : Transport.t) -> a + ep.Transport.stats.writes) 0 ends
                    in
                    let batches = ref 0 and records = ref 0 and occ = ref 0 in
                    Array.iter
                      (fun mn ->
                        let st = Batcher.stats mn.mn_bat in
                        batches := !batches + st.Batcher.batches;
                        records := !records + st.Batcher.records;
                        occ := max !occ st.Batcher.max_occupancy)
                      mns;
                    Ok
                      { ir_values = values;
                        ir_rounds = rounds;
                        ir_frames = frames;
                        ir_bytes = bytes;
                        ir_writes = writes;
                        ir_batches = !batches;
                        ir_records = !records;
                        ir_max_occupancy = !occ })))
        }
      in
      Fun.protect
        ~finally:(fun () -> !cleanup ())
        (fun () -> Aba.run_custom_many spec ~cfg ~seeds ~inputs ~driver)
    in
    (* a picked TCP port can be stolen between pick and bind: retry the
       whole attempt (fresh ports, fresh assembly) a couple of times *)
    let rec go tries =
      match attempt () with
      | Ok (Ok r) -> Ok r
      | Ok (Error (`Run e)) -> Error e
      | Ok (Error (`Bind (Unix.EADDRINUSE, _))) when transport = `Tcp && tries < 3 ->
        go (tries + 1)
      | Ok (Error (`Bind (_, msg))) -> Error (Printf.sprintf "endpoint setup failed: %s" msg)
      | Error e -> Error e
    in
    go 1
  end

(* ---- multi-process launcher ----------------------------------------- *)

type cluster_result = {
  c_value : Value.t;
  c_rounds : int array;
  c_stats : net_stats;
}

let inputs_to_string inputs =
  String.init (Array.length inputs) (fun i -> if Value.to_int inputs.(i) = 1 then '1' else '0')

(* Exit code [bca_node] uses for a bind failure (EADDRINUSE): the launcher
   retries the whole spawn with fresh ports when it sees it. *)
let addr_in_use_exit = 3

let make_cluster_addr_arg ?pick_ports ~attempt ~n ~transport ~cleanup () =
  match transport with
  | `Unix ->
    let dir = fresh_unix_dir () in
    cleanup := (fun () -> rm_rf_dir dir);
    ( "unix",
      String.concat ","
        (List.init n (fun i -> Filename.concat dir (Printf.sprintf "node-%d.sock" i))) )
  | `Tcp ->
    let ports =
      match pick_ports with
      | Some f -> f ~attempt
      | None -> Transport.Socket.pick_tcp_ports ~n
    in
    ( "tcp",
      String.concat ","
        (Array.to_list (Array.map (fun p -> Printf.sprintf "127.0.0.1:%d" p) ports)) )

(* Fork one child per party, gather each stdout to EOF or the deadline,
   then reap (SIGKILL after a grace period).  Returns per-child output and
   exit status, and whether the deadline cut the gather short. *)
let spawn_and_gather ~timeout_s ~spawn ~n =
  let children = Array.init n spawn in
  let bufs = Array.init n (fun _ -> Buffer.create 256) in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let open_fds = ref (Array.to_list (Array.mapi (fun i (_, r) -> (i, r)) children)) in
  let chunk = Bytes.create 4096 in
  while !open_fds <> [] && Unix.gettimeofday () < deadline do
    let fds = List.map snd !open_fds in
    match Unix.select fds [] [] 0.2 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun (i, fd) ->
          if List.memq fd readable then
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              Unix.close fd;
              open_fds := List.filter (fun (j, _) -> j <> i) !open_fds
            | k -> Buffer.add_subbytes bufs.(i) chunk 0 k
            | exception Unix.Unix_error (EINTR, _, _) -> ())
        !open_fds
  done;
  List.iter (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ()) !open_fds;
  let timed_out = !open_fds <> [] in
  (* reap: give exited children a moment, then kill survivors *)
  let reap_deadline = Unix.gettimeofday () +. if timed_out then 0. else 5. in
  let statuses =
    Array.map
      (fun (pid, _) ->
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
            if Unix.gettimeofday () >= reap_deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              let _, st = Unix.waitpid [] pid in
              st
            end
            else begin
              ignore (Unix.select [] [] [] 0.05);
              wait ()
            end
          | _, st -> st
        in
        wait ())
      children
  in
  (bufs, statuses, timed_out)

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let node_argv ~node_exe ~stack ~eps ~cfg ~seed ~kind ~addrs_arg ~timeout_s ~extra me =
  Array.of_list
    ([ node_exe;
       "--stack"; stack;
       "--eps"; Printf.sprintf "%g" eps;
       "--n"; string_of_int cfg.Types.n;
       "--t"; string_of_int cfg.Types.t;
       "--me"; string_of_int me;
       "--seed"; Int64.to_string seed;
       "--transport"; kind;
       "--addrs"; addrs_arg;
       "--timeout"; Printf.sprintf "%g" (Float.max 1. (timeout_s -. 5.)) ]
    @ extra)

let spawn_child ~node_exe argv =
  let r, w = Unix.pipe () in
  Unix.set_close_on_exec r;
  let pid = Unix.create_process node_exe argv Unix.stdin w Unix.stderr in
  Unix.close w;
  (pid, r)

let port_clash ~transport ~timed_out statuses =
  (not timed_out) && transport = `Tcp
  && Array.exists (function Unix.WEXITED c -> c = addr_in_use_exit | _ -> false) statuses

(* One spawn attempt: fresh rendezvous, fork, gather, cleanup.  The
   continuation turns raw child output into the caller's result; a TCP
   port clash (a child lost the bind race and exited [addr_in_use_exit])
   retries the whole attempt with fresh ports. *)
let with_spawn_attempts ?pick_ports ~timeout_s ~transport ~n ~argv_for k =
  let rec go tries =
    incr cluster_counter;
    let cleanup = ref (fun () -> ()) in
    let kind, addrs_arg = make_cluster_addr_arg ?pick_ports ~attempt:tries ~n ~transport ~cleanup () in
    (* [Fun.protect]: a spawn failure (node_exe missing, fork error) must
       not leak the rendezvous directory *)
    let bufs, statuses, timed_out =
      Fun.protect
        ~finally:(fun () -> !cleanup ())
        (fun () ->
          spawn_and_gather ~timeout_s ~spawn:(fun me -> argv_for ~kind ~addrs_arg me) ~n)
    in
    if port_clash ~transport ~timed_out statuses && tries < 3 then go (tries + 1)
    else k ~bufs ~statuses ~timed_out
  in
  go 1

let spawn_cluster ?(timeout_s = 60.) ?pick_ports ~node_exe ~stack ~eps ~cfg ~seed ~inputs
    ~transport () =
  let n = cfg.Types.n in
  if Array.length inputs <> n then Error "inputs must have length n"
  else
    with_spawn_attempts ?pick_ports ~timeout_s ~transport ~n
      ~argv_for:(fun ~kind ~addrs_arg me ->
        spawn_child ~node_exe
          (node_argv ~node_exe ~stack ~eps ~cfg ~seed ~kind ~addrs_arg ~timeout_s
             ~extra:[ "--inputs"; inputs_to_string inputs ]
             me))
      (fun ~bufs ~statuses ~timed_out ->
        let decisions =
          Array.map
            (fun buf ->
              String.split_on_char '\n' (Buffer.contents buf) |> List.find_map parse_decision)
            bufs
        in
        let missing =
          Array.to_list decisions
          |> List.mapi (fun i d -> (i, d))
          |> List.filter_map (fun (i, d) -> if d = None then Some i else None)
        in
        if timed_out then
          Error
            (Printf.sprintf "cluster timed out after %.1fs (nodes still running killed)" timeout_s)
        else if missing <> [] then
          Error
            (Printf.sprintf "node(s) %s exited without deciding (statuses: %s)"
               (String.concat ", " (List.map string_of_int missing))
               (String.concat ", " (Array.to_list (Array.map status_string statuses))))
        else begin
          let ds = Array.of_list (List.filter_map Fun.id (Array.to_list decisions)) in
          if Array.length ds <> n then Error "internal: decision extraction mismatch"
          else begin
            let value = ds.(0).d_value in
            if not (Array.for_all (fun d -> Value.equal d.d_value value) ds) then
              Error
                (Printf.sprintf "DISAGREEMENT: decisions [%s] - protocol bug"
                   (String.concat "; "
                      (Array.to_list
                         (Array.map
                            (fun d ->
                              Printf.sprintf "pid %d -> %d" d.d_pid (Value.to_int d.d_value))
                            ds))))
            else begin
              let frames = Array.fold_left (fun a d -> a + d.d_frames) 0 ds in
              let bytes = Array.fold_left (fun a d -> a + d.d_bytes) 0 ds in
              Ok
                { c_value = value;
                  c_rounds = Array.map (fun d -> d.d_round) ds;
                  c_stats = { frames; bytes; words = Wire.words_of_bytes bytes } }
            end
          end
        end)

type multi_cluster_result = {
  mc_values : Value.t array;
  mc_rounds : int array;
  mc_stats : net_stats;
  mc_batches : int;
  mc_records : int;
}

let spawn_cluster_multi ?(timeout_s = 60.) ?policy ~node_exe ~stack ~eps ~cfg ~seed ~instances
    ~transport () =
  let n = cfg.Types.n in
  if instances < 1 then Error "instances must be >= 1"
  else begin
    let pol = match policy with Some p -> p | None -> Batcher.policy () in
    with_spawn_attempts ~timeout_s ~transport ~n
      ~argv_for:(fun ~kind ~addrs_arg me ->
        spawn_child ~node_exe
          (node_argv ~node_exe ~stack ~eps ~cfg ~seed ~kind ~addrs_arg ~timeout_s
             ~extra:
               [ "--instances"; string_of_int instances;
                 "--batch-records"; string_of_int pol.Batcher.max_records;
                 "--batch-bytes"; string_of_int pol.Batcher.max_bytes ]
             me))
      (fun ~bufs ~statuses ~timed_out ->
        let decisions =
          Array.map
            (fun buf ->
              String.split_on_char '\n' (Buffer.contents buf)
              |> List.find_map parse_multi_decision)
            bufs
        in
        let missing =
          Array.to_list decisions
          |> List.mapi (fun i d -> (i, d))
          |> List.filter_map (fun (i, d) -> if d = None then Some i else None)
        in
        if timed_out then
          Error
            (Printf.sprintf "cluster timed out after %.1fs (nodes still running killed)" timeout_s)
        else if missing <> [] then
          Error
            (Printf.sprintf "node(s) %s exited without deciding (statuses: %s)"
               (String.concat ", " (List.map string_of_int missing))
               (String.concat ", " (Array.to_list (Array.map status_string statuses))))
        else begin
          let ds = Array.of_list (List.filter_map Fun.id (Array.to_list decisions)) in
          if Array.length ds <> n then Error "internal: decision extraction mismatch"
          else if Array.exists (fun d -> Array.length d.md_values <> instances) ds then
            Error "node reported a wrong instance count"
          else begin
            let disagreements = ref [] in
            for k = instances - 1 downto 0 do
              let v = ds.(0).md_values.(k) in
              if not (Array.for_all (fun d -> Value.equal d.md_values.(k) v) ds) then
                disagreements := k :: !disagreements
            done;
            if !disagreements <> [] then
              Error
                (Printf.sprintf "DISAGREEMENT on instance(s) %s - protocol bug"
                   (String.concat ", " (List.map string_of_int !disagreements)))
            else begin
              let frames = Array.fold_left (fun a d -> a + d.md_frames) 0 ds in
              let bytes = Array.fold_left (fun a d -> a + d.md_bytes) 0 ds in
              Ok
                { mc_values = Array.map (fun v -> v) ds.(0).md_values;
                  mc_rounds =
                    Array.init instances (fun k ->
                        Array.fold_left (fun acc d -> max acc d.md_rounds.(k)) 0 ds);
                  mc_stats = { frames; bytes; words = Wire.words_of_bytes bytes };
                  mc_batches = Array.fold_left (fun a d -> a + d.md_batches) 0 ds;
                  mc_records = Array.fold_left (fun a d -> a + d.md_records) 0 ds }
            end
          end
        end)
  end

(* ---- supervised launcher (crash-recovery) --------------------------- *)

type supervised_result = {
  s_result : cluster_result;
  s_restarts : int;  (** total node restarts the supervisor performed *)
  s_recoveries : recovery_info list;  (** one per successful WAL replay *)
  s_wal_bytes : int;  (** bytes across all WAL files when the run ended *)
}

let wal_dir_bytes ~wal_dir ~n =
  let total = ref 0 in
  for me = 0 to n - 1 do
    match Unix.stat (Wal.file_path ~dir:wal_dir ~me) with
    | st -> total := !total + st.Unix.st_size
    | exception Unix.Unix_error _ -> ()
  done;
  !total

(* Fork the n nodes with durable WALs and a linger as long as the whole
   run (BYEs end it early), then babysit them: a node that dies - killed
   by a signal, or exiting non-zero, or exiting zero without a DECIDED
   line - is restarted with capped-exponential backoff, recovering from
   its WAL when one exists.  [kill_at = (victim, trigger)] arms one node
   with [--kill-at] (it SIGKILLs itself at the trigger); the restart argv
   strips the flag so the recovered process does not re-fire during
   replay. *)
let spawn_cluster_supervised ?(timeout_s = 60.) ?(max_restarts = 4) ?(backoff_base_s = 0.25)
    ?(backoff_cap_s = 2.0) ?kill_at ~node_exe ~stack ~eps ~cfg ~seed ~inputs ~wal_dir
    ~transport () =
  let n = cfg.Types.n in
  if Array.length inputs <> n then Error "inputs must have length n"
  else begin
    incr cluster_counter;
    let cleanup = ref (fun () -> ()) in
    let kind, addrs_arg = make_cluster_addr_arg ~attempt:1 ~n ~transport ~cleanup () in
    let argv me ~recover =
      let extra =
        [ "--inputs"; inputs_to_string inputs;
          "--wal-dir"; wal_dir;
          "--linger"; Printf.sprintf "%g" timeout_s ]
        @ (if recover then [ "--recover" ] else [])
        @ (match kill_at with
          | Some (victim, trigger) when victim = me && not recover ->
            [ "--kill-at"; trigger ]
          | _ -> [])
      in
      node_argv ~node_exe ~stack ~eps ~cfg ~seed ~kind ~addrs_arg ~timeout_s ~extra me
    in
    Fun.protect ~finally:(fun () -> !cleanup ()) @@ fun () ->
    let bufs = Array.init n (fun _ -> Buffer.create 256) in
    let restarts = Array.make n 0 in
    let total_restarts = ref 0 in
    let state = Array.make n `Init in
    let chunk = Bytes.create 4096 in
    let deadline = Unix.gettimeofday () +. timeout_s in
    for me = 0 to n - 1 do
      state.(me) <- `Running (spawn_child ~node_exe (argv me ~recover:false))
    done;
    let node_decided me =
      String.split_on_char '\n' (Buffer.contents bufs.(me))
      |> List.exists (fun l -> parse_decision l <> None)
    in
    let settled = function `Done | `Failed _ -> true | `Init | `Running _ | `Restart_at _ -> false in
    let reap me pid fd =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let _, status = Unix.waitpid [] pid in
      match status with
      | Unix.WEXITED 0 when node_decided me -> state.(me) <- `Done
      | status ->
        if restarts.(me) >= max_restarts then
          state.(me) <-
            `Failed
              (Printf.sprintf "node %d %s after %d restart(s)" me (status_string status)
                 restarts.(me))
        else begin
          let delay =
            Float.min backoff_cap_s (backoff_base_s *. (2. ** float_of_int restarts.(me)))
          in
          restarts.(me) <- restarts.(me) + 1;
          state.(me) <- `Restart_at (Unix.gettimeofday () +. delay)
        end
    in
    while (not (Array.for_all settled state)) && Unix.gettimeofday () < deadline do
      Array.iteri
        (fun me st ->
          match st with
          | `Restart_at t when Unix.gettimeofday () >= t ->
            let recover = Sys.file_exists (Wal.file_path ~dir:wal_dir ~me) in
            incr total_restarts;
            state.(me) <- `Running (spawn_child ~node_exe (argv me ~recover))
          | _ -> ())
        state;
      let fds =
        Array.to_list state
        |> List.filter_map (function `Running (_, fd) -> Some fd | _ -> None)
      in
      match Unix.select fds [] [] 0.1 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, _, _ ->
        Array.iteri
          (fun me st ->
            match st with
            | `Running (pid, fd) when List.memq fd readable -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> reap me pid fd
              | k -> Buffer.add_subbytes bufs.(me) chunk 0 k
              | exception Unix.Unix_error (EINTR, _, _) -> ())
            | _ -> ())
          state
    done;
    (* deadline or settled: kill and reap any survivor *)
    Array.iteri
      (fun me st ->
        match st with
        | `Running (pid, fd) ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let _, _ = Unix.waitpid [] pid in
          state.(me) <-
            `Failed (Printf.sprintf "node %d still running at the deadline (killed)" me)
        | `Init | `Restart_at _ ->
          state.(me) <- `Failed (Printf.sprintf "node %d never finished" me)
        | `Done | `Failed _ -> ())
      state;
    let failures =
      Array.to_list state |> List.filter_map (function `Failed m -> Some m | _ -> None)
    in
    if failures <> [] then Error (String.concat "; " failures)
    else begin
      let lines me = String.split_on_char '\n' (Buffer.contents bufs.(me)) in
      let decisions = Array.init n (fun me -> List.find_map parse_decision (lines me)) in
      let recoveries =
        List.concat (List.init n (fun me -> List.filter_map parse_recovered (lines me)))
      in
      let ds = Array.of_list (List.filter_map Fun.id (Array.to_list decisions)) in
      if Array.length ds <> n then Error "internal: decision extraction mismatch"
      else begin
        let value = ds.(0).d_value in
        if not (Array.for_all (fun d -> Value.equal d.d_value value) ds) then
          Error
            (Printf.sprintf "DISAGREEMENT: decisions [%s] - protocol bug"
               (String.concat "; "
                  (Array.to_list
                     (Array.map
                        (fun d -> Printf.sprintf "pid %d -> %d" d.d_pid (Value.to_int d.d_value))
                        ds))))
        else begin
          let frames = Array.fold_left (fun a d -> a + d.d_frames) 0 ds in
          let bytes = Array.fold_left (fun a d -> a + d.d_bytes) 0 ds in
          Ok
            { s_result =
                { c_value = value;
                  c_rounds = Array.map (fun d -> d.d_round) ds;
                  c_stats = { frames; bytes; words = Wire.words_of_bytes bytes } };
              s_restarts = !total_restarts;
              s_recoveries = recoveries;
              s_wal_bytes = wal_dir_bytes ~wal_dir ~n }
        end
      end
    end
  end

(* ---- replicated log (RSM) over real transports ----------------------- *)

(* The pipelined atomic-broadcast log ([Bca_rsm.Rsm]) over the same three
   message-movement regimes the binary stacks get: the seeded loopback hub
   (bit-identical to the netsim run - the executor-correctness oracle), an
   in-process socket cluster (the loadgen/bench harness), and forked
   [bca_node --rsm] processes.  Every hop round-trips through the codec-7
   wire format; replicas compare whole logs by FNV-1a digest. *)

module Rsm = Bca_rsm.Rsm

let rsm_wire = Bca_rsm.Wirefmt.rsm

let rsm_log_hash log = Bca_rsm.Mvba.digest (Rsm.encode_batch log)

(* The deterministic per-node workload every process regenerates from the
   spawn parameters: [count] transactions, globally unique by pid and
   index, padded to [tx_bytes]. *)
let rsm_workload ~pid ~count ~tx_bytes =
  List.init count (fun i ->
      let head = Printf.sprintf "p%d.%06d" pid i in
      let pad = tx_bytes - String.length head in
      if pad <= 0 then head else head ^ String.make pad '.')

type rsm_loop_result = {
  rl_logs : Rsm.tx list array;
  rl_deliveries : int;
  rl_stats : net_stats;
}

let run_rsm_loopback ?(seed = 0xB0CA1L) params ~txs =
  let n = params.Rsm.cfg.Types.n in
  let states = Array.make n None in
  let exec =
    Async.create ~n ~make:(fun pid ->
        let st, init = Rsm.create params ~me:pid in
        states.(pid) <- Some st;
        List.iter (fun tx -> ignore (Rsm.submit st tx : bool)) (txs pid);
        (Rsm.node st, List.map (fun m -> Node.Broadcast m) init))
  in
  (* the log engine has no binary parties to collect - reuse the seeded
     loop engine with an empty party array and read the RSM states *)
  let eng = loop_make ~seed ~wire:rsm_wire ~exec ~parties:[||] in
  let rec go () =
    if eng.le_delivered >= max_deliveries then
      Error "delivery limit reached before termination"
    else
      match loop_step eng with
      | Error _ as e -> e
      | Ok true -> go ()
      | Ok false -> Ok ()
  in
  match go () with
  | Error _ as e -> e
  | Ok () ->
    let logs = Array.map (function Some st -> Rsm.log st | None -> []) states in
    let frames = Array.fold_left (fun a e -> a + e.Transport.stats.frames_out) 0 eng.le_ends in
    let bytes = Array.fold_left (fun a e -> a + e.Transport.stats.bytes_out) 0 eng.le_ends in
    Ok
      { rl_logs = logs;
        rl_deliveries = eng.le_delivered;
        rl_stats = { frames; bytes; words = eng.le_words } }

(* One replica over a socket endpoint: every RSM output is a broadcast;
   self-copies go through a FIFO local queue (never the network).  A
   positive [r_hop_s] emulates one-way network latency netem-style:
   outbound frames are held in a FIFO and released to the sockets once
   their due time passes.  Self-copies stay immediate - the delay models
   the wire, not local compute. *)
type rnode = {
  r_me : int;
  r_rsm : Rsm.t;
  r_net : Transport.t;
  r_local : Rsm.msg Queue.t;
  r_scratch : Buffer.t;
  r_hop_s : float;
  r_outq : (float * string) Queue.t;  (* due time, encoded frame *)
}

let rnode_send_all rn s =
  for d = 0 to rn.r_net.Transport.n - 1 do
    if d <> rn.r_me then rn.r_net.Transport.send ~dst:d s
  done

(* Release every queued broadcast whose due time has passed; due times
   are non-decreasing, so the FIFO head decides. *)
let rnode_send_due rn =
  if rn.r_hop_s > 0. then begin
    let rec go now =
      match Queue.peek_opt rn.r_outq with
      | Some (due, s) when due <= now ->
        ignore (Queue.pop rn.r_outq);
        rnode_send_all rn s;
        go now
      | _ -> ()
    in
    go (Unix.gettimeofday ())
  end

let rnode_emits rn msgs =
  List.iter
    (fun m ->
      let s = Wire.encode_buf rsm_wire ~sender:rn.r_me ~scratch:rn.r_scratch m in
      Queue.push m rn.r_local;
      if rn.r_hop_s > 0. then
        Queue.push (Unix.gettimeofday () +. rn.r_hop_s, s) rn.r_outq
      else rnode_send_all rn s)
    msgs

let rnode_drain rn =
  while not (Queue.is_empty rn.r_local) do
    let m = Queue.pop rn.r_local in
    rnode_emits rn (Rsm.handle rn.r_rsm ~from:rn.r_me m)
  done

let rnode_make ?on_commit ?(hop_s = 0.) params ~me ~(net : Transport.t) () =
  let rsm, init = Rsm.create ?on_commit params ~me in
  let rn =
    { r_me = me;
      r_rsm = rsm;
      r_net = net;
      r_local = Queue.create ();
      r_scratch = Buffer.create 256;
      r_hop_s = hop_s;
      r_outq = Queue.create () }
  in
  rnode_emits rn init;
  rn

let rnode_apply rn (f : Wire.frame) =
  (match Wire.decode_body rsm_wire f with
  | Ok m -> rnode_emits rn (Rsm.handle rn.r_rsm ~from:f.Wire.sender m)
  | Error _ -> rn.r_net.Transport.stats.drops <- rn.r_net.Transport.stats.drops + 1);
  rnode_drain rn

(* One scheduling slice: flush due delayed sends, drain local, then apply
   at most one network frame.  [true] if anything was applied. *)
let rnode_step rn ~timeout_s =
  rnode_send_due rn;
  rnode_drain rn;
  match rn.r_net.Transport.recv ~timeout_s with
  | Some f ->
    rnode_apply rn f;
    true
  | None -> false

type rsm_decision = {
  r_pid : int;
  r_epochs : int;  (** epochs committed *)
  r_txs : int;  (** transactions in the committed log *)
  r_hash : int64;  (** FNV-1a digest of the whole log *)
  r_frames : int;
  r_bytes : int;
}

let print_rsm_decision d =
  Printf.printf "RSMLOG pid=%d epochs=%d txs=%d hash=%016Lx frames=%d bytes=%d\n%!" d.r_pid
    d.r_epochs d.r_txs d.r_hash d.r_frames d.r_bytes

let parse_rsm_decision line =
  match
    Scanf.sscanf line "RSMLOG pid=%d epochs=%d txs=%d hash=%Lx frames=%d bytes=%d"
      (fun pid epochs txs hash frames bytes -> (pid, epochs, txs, hash, frames, bytes))
  with
  | pid, epochs, txs, hash, frames, bytes ->
    Some
      { r_pid = pid; r_epochs = epochs; r_txs = txs; r_hash = hash; r_frames = frames;
        r_bytes = bytes }
  | exception Scanf.Scan_failure _ -> None
  | exception End_of_file -> None
  | exception Failure _ -> None

let run_rsm_node ?(timeout_s = 30.) ?(linger_s = 1.0) params ~txs ~(net : Transport.t) =
  let me = net.Transport.me in
  let n = net.Transport.n in
  if params.Rsm.cfg.Types.n <> n then invalid_arg "Cluster.run_rsm_node: transport size mismatch";
  let rn = rnode_make params ~me ~net () in
  List.iter (fun tx -> ignore (Rsm.submit rn.r_rsm tx : bool)) txs;
  let byes = Array.make n false in
  let bye_count = ref 0 in
  let deliver (f : Wire.frame) =
    if f.Wire.codec_id = ctrl_codec_id then begin
      let p = f.Wire.sender in
      if p < 0 || p >= n || p = me then net.Transport.stats.drops <- net.Transport.stats.drops + 1
      else
        match decode_ctrl f with
        | Some `Bye ->
          if not byes.(p) then begin
            byes.(p) <- true;
            incr bye_count
          end
        (* no WAL / rejoin for log replicas (yet): HELLO is ignored *)
        | Some `Hello -> ()
        | None -> net.Transport.stats.drops <- net.Transport.stats.drops + 1
    end
    else rnode_apply rn f
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    if Rsm.terminated rn.r_rsm then Ok ()
    else if not (Queue.is_empty rn.r_local) then begin
      rnode_drain rn;
      loop ()
    end
    else
      match net.Transport.recv ~timeout_s:0.05 with
      | Some f ->
        deliver f;
        loop ()
      | None ->
        if Unix.gettimeofday () >= deadline then
          Error
            (Printf.sprintf "rsm node %d timed out after %.1fs (%d/%d epochs committed)" me
               timeout_s (Rsm.committed_epochs rn.r_rsm) params.Rsm.epochs)
        else loop ()
  in
  match loop () with
  | Error _ as e -> e
  | Ok () ->
    (* everything this replica will ever send is already on the wire: a
       laggard only needs our past frames, which TCP/Unix sockets deliver
       reliably - so linger to keep the connections alive, not to answer *)
    let bye = encode_ctrl ~sender:me ctrl_bye in
    for d = 0 to n - 1 do
      if d <> me then net.Transport.send ~dst:d bye
    done;
    let linger_until = Unix.gettimeofday () +. linger_s in
    ignore (net.Transport.flush ~timeout_s:(Float.min linger_s 1.0));
    let rec linger () =
      let now = Unix.gettimeofday () in
      if now < linger_until && !bye_count < n - 1 then begin
        (match net.Transport.recv ~timeout_s:(Float.min 0.05 (linger_until -. now)) with
        | Some f -> deliver f
        | None -> ());
        linger ()
      end
    in
    linger ();
    ignore (net.Transport.flush ~timeout_s:0.5);
    let log = Rsm.log rn.r_rsm in
    Ok
      { r_pid = me;
        r_epochs = Rsm.committed_epochs rn.r_rsm;
        r_txs = List.length log;
        r_hash = rsm_log_hash log;
        r_frames = net.Transport.stats.frames_out;
        r_bytes = net.Transport.stats.bytes_out }

(* ---- open-loop load generator (in-process socket cluster) ------------ *)

type rsm_load = {
  lg_rate : float;  (** target submissions/s cluster-wide; <= 0: preload all *)
  lg_total : int;
  lg_tx_bytes : int;
}

type rsm_load_result = {
  lr_committed : int;
  lr_epochs : int;
  lr_duration_s : float;  (** start to the last commit at the observer *)
  lr_tx_per_s : float;
  lr_p50_ms : float;
  lr_p99_ms : float;
  lr_frames : int;
  lr_bytes : int;
  lr_writes : int;
}

let percentile sorted q =
  let k = Array.length sorted in
  if k = 0 then 0.
  else sorted.(min (k - 1) (int_of_float (Float.of_int (k - 1) *. q +. 0.5)))

let rsm_load_tx ~tx_bytes i =
  let head = Printf.sprintf "t%08d" i in
  let pad = tx_bytes - String.length head in
  if pad <= 0 then head else head ^ String.make pad '.'

(* Measurement shared by the loopback and socket harnesses: transactions
   are injected open-loop (transaction [i] is due at [t0 + i/rate],
   round-robin across replicas); replica 0 is the commit observer, so a
   transaction's latency spans submission at ANY replica to its commit in
   replica 0's log. *)
type rsm_probe = {
  pr_submit : (string, float) Hashtbl.t;
  pr_lats : float list ref;
  pr_committed : int ref;
  pr_last_commit : float ref;
}

let rsm_probe () =
  { pr_submit = Hashtbl.create 256;
    pr_lats = ref [];
    pr_committed = ref 0;
    pr_last_commit = ref 0. }

let rsm_probe_commit pr ~epoch:_ txs =
  let now = Unix.gettimeofday () in
  List.iter
    (fun tx ->
      pr.pr_committed := !(pr.pr_committed) + 1;
      pr.pr_last_commit := now;
      match Hashtbl.find_opt pr.pr_submit tx with
      | Some ts -> pr.pr_lats := (now -. ts) :: !(pr.pr_lats)
      | None -> ())
    txs

let rsm_probe_result pr ~t0 ~epochs ~frames ~bytes ~writes =
  let lats = Array.of_list !(pr.pr_lats) in
  Array.sort Float.compare lats;
  let duration = Float.max 1e-9 (!(pr.pr_last_commit) -. t0) in
  let committed = !(pr.pr_committed) in
  { lr_committed = committed;
    lr_epochs = epochs;
    lr_duration_s = duration;
    lr_tx_per_s = Float.of_int committed /. duration;
    lr_p50_ms = percentile lats 0.5 *. 1000.;
    lr_p99_ms = percentile lats 0.99 *. 1000.;
    lr_frames = frames;
    lr_bytes = bytes;
    lr_writes = writes }

let run_rsm_loadgen_loopback ?(seed = 0xB0CA1L) ?(timeout_s = 60.) params ~load =
  let n = params.Rsm.cfg.Types.n in
  let pr = rsm_probe () in
  let states = Array.make n None in
  let exec =
    Async.create ~n ~make:(fun pid ->
        let on_commit = if pid = 0 then Some (rsm_probe_commit pr) else None in
        let st, init = Rsm.create ?on_commit params ~me:pid in
        states.(pid) <- Some st;
        (Rsm.node st, List.map (fun m -> Node.Broadcast m) init))
  in
  let eng = loop_make ~seed ~wire:rsm_wire ~exec ~parties:[||] in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. timeout_s in
  let injected = ref 0 in
  let inject_due now =
    while
      !injected < load.lg_total
      && (load.lg_rate <= 0.
         || now -. t0 >= Float.of_int !injected /. load.lg_rate)
    do
      let i = !injected in
      let tx = rsm_load_tx ~tx_bytes:load.lg_tx_bytes i in
      (match states.(i mod n) with
      | Some st -> if Rsm.submit st tx then Hashtbl.replace pr.pr_submit tx now
      | None -> ());
      incr injected
    done
  in
  let rec go () =
    let now = Unix.gettimeofday () in
    if now >= deadline then Error "loopback loadgen timed out"
    else begin
      inject_due now;
      if eng.le_delivered >= max_deliveries * 4 then
        Error "delivery limit reached before termination"
      else
        match loop_step eng with
        | Error _ as e -> e
        | Ok true -> go ()
        | Ok false -> Ok ()
    end
  in
  match go () with
  | Error _ as e -> e
  | Ok () ->
    let epochs = match states.(0) with Some st -> Rsm.committed_epochs st | None -> 0 in
    let frames = Array.fold_left (fun a e -> a + e.Transport.stats.frames_out) 0 eng.le_ends in
    let bytes = Array.fold_left (fun a e -> a + e.Transport.stats.bytes_out) 0 eng.le_ends in
    Ok (rsm_probe_result pr ~t0 ~epochs ~frames ~bytes ~writes:0)

let run_rsm_loadgen ?(coalesce = true) ?sndbuf_bytes ?rcvbuf_bytes ?(timeout_s = 60.)
    ?(hop_s = 0.) params ~load ~transport =
  let n = params.Rsm.cfg.Types.n in
  let attempt () =
    incr cluster_counter;
    let cleanup = ref (fun () -> ()) in
    let addrs =
      match transport with
      | `Unix ->
        let dir = fresh_unix_dir () in
        cleanup := (fun () -> rm_rf_dir dir);
        Transport.Socket.unix_addrs ~dir ~n
      | `Tcp -> Transport.Socket.tcp_addrs ~ports:(Transport.Socket.pick_tcp_ports ~n)
    in
    Fun.protect
      ~finally:(fun () -> !cleanup ())
      (fun () ->
        let ends =
          try Ok (make_endpoints ~coalesce ?sndbuf_bytes ?rcvbuf_bytes ~addrs ~n ())
          with Unix.Unix_error (e, fn, _) ->
            Error (`Bind (e, Printf.sprintf "%s: %s" fn (Unix.error_message e)))
        in
        match ends with
        | Error _ as e -> e
        | Ok ends ->
          let pr = rsm_probe () in
          let rns =
            Array.map
              (fun (net : Transport.t) ->
                let on_commit =
                  if net.Transport.me = 0 then Some (rsm_probe_commit pr) else None
                in
                rnode_make ?on_commit ~hop_s params ~me:net.Transport.me ~net ())
              ends
          in
          let finish () =
            Array.iter (fun (ep : Transport.t) -> ignore (ep.Transport.flush ~timeout_s:0.5)) ends;
            Array.iter (fun (ep : Transport.t) -> ep.Transport.close ()) ends
          in
          let t0 = Unix.gettimeofday () in
          let deadline = t0 +. timeout_s in
          let injected = ref 0 in
          let inject_due now =
            let any = ref false in
            while
              !injected < load.lg_total
              && (load.lg_rate <= 0.
                 || now -. t0 >= Float.of_int !injected /. load.lg_rate)
            do
              let i = !injected in
              let tx = rsm_load_tx ~tx_bytes:load.lg_tx_bytes i in
              if Rsm.submit rns.(i mod n).r_rsm tx then Hashtbl.replace pr.pr_submit tx now;
              incr injected;
              any := true
            done;
            !any
          in
          let rec loop () =
            if Array.for_all (fun rn -> Rsm.terminated rn.r_rsm) rns then Ok ()
            else begin
              let now = Unix.gettimeofday () in
              if now >= deadline then
                Error
                  (`Run
                    (Printf.sprintf "rsm loadgen timed out after %.1fs (%d/%d epochs at node 0)"
                       timeout_s
                       (Rsm.committed_epochs rns.(0).r_rsm)
                       params.Rsm.epochs))
              else begin
                let progressed = ref (inject_due now) in
                Array.iter (fun rn -> if rnode_step rn ~timeout_s:0. then progressed := true) rns;
                if not !progressed then ignore (Unix.select [] [] [] 0.0005);
                loop ()
              end
            end
          in
          let outcome = loop () in
          finish ();
          match outcome with
          | Error _ as e -> e
          | Ok () ->
            (* all replicas ran the full log: cross-check agreement on the
               committed order before reporting numbers *)
            let logs = Array.map (fun rn -> Rsm.log rn.r_rsm) rns in
            let h0 = rsm_log_hash logs.(0) in
            if not (Array.for_all (fun l -> Int64.equal (rsm_log_hash l) h0) logs) then
              Error (`Run "rsm loadgen: log DISAGREEMENT - protocol bug")
            else begin
              let frames =
                Array.fold_left (fun a (ep : Transport.t) -> a + ep.Transport.stats.frames_out) 0 ends
              in
              let bytes =
                Array.fold_left (fun a (ep : Transport.t) -> a + ep.Transport.stats.bytes_out) 0 ends
              in
              let writes =
                Array.fold_left (fun a (ep : Transport.t) -> a + ep.Transport.stats.writes) 0 ends
              in
              Ok
                (rsm_probe_result pr ~t0
                   ~epochs:(Rsm.committed_epochs rns.(0).r_rsm)
                   ~frames ~bytes ~writes)
            end)
  in
  let rec go tries =
    match attempt () with
    | Ok r -> Ok r
    | Error (`Run e) -> Error e
    | Error (`Bind (Unix.EADDRINUSE, _)) when transport = `Tcp && tries < 3 -> go (tries + 1)
    | Error (`Bind (_, msg)) -> Error (Printf.sprintf "endpoint setup failed: %s" msg)
  in
  go 1

(* ---- multi-process RSM launcher -------------------------------------- *)

type rsm_cluster_result = {
  rc_epochs : int;
  rc_txs : int;
  rc_hash : int64;
  rc_stats : net_stats;
}

let spawn_rsm_cluster ?(timeout_s = 60.) ?pick_ports ~node_exe ~cfg ~seed ~epochs ~window
    ~batch_txs ~batch_bytes ~txs_per_node ~tx_bytes ~transport () =
  let n = cfg.Types.n in
  with_spawn_attempts ?pick_ports ~timeout_s ~transport ~n
    ~argv_for:(fun ~kind ~addrs_arg me ->
      spawn_child ~node_exe
        (node_argv ~node_exe ~stack:"byz-strong" ~eps:0.25 ~cfg ~seed ~kind ~addrs_arg
           ~timeout_s
           ~extra:
             [ "--rsm";
               "--rsm-epochs"; string_of_int epochs;
               "--rsm-window"; string_of_int window;
               "--rsm-batch-txs"; string_of_int batch_txs;
               "--rsm-batch-bytes"; string_of_int batch_bytes;
               "--rsm-txs"; string_of_int txs_per_node;
               "--rsm-tx-bytes"; string_of_int tx_bytes ]
           me))
    (fun ~bufs ~statuses ~timed_out ->
      let decisions =
        Array.map
          (fun buf ->
            String.split_on_char '\n' (Buffer.contents buf) |> List.find_map parse_rsm_decision)
          bufs
      in
      let missing =
        Array.to_list decisions
        |> List.mapi (fun i d -> (i, d))
        |> List.filter_map (fun (i, d) -> if d = None then Some i else None)
      in
      if timed_out then
        Error
          (Printf.sprintf "rsm cluster timed out after %.1fs (nodes still running killed)"
             timeout_s)
      else if missing <> [] then
        Error
          (Printf.sprintf "rsm node(s) %s exited without a log (statuses: %s)"
             (String.concat ", " (List.map string_of_int missing))
             (String.concat ", " (Array.to_list (Array.map status_string statuses))))
      else begin
        let ds = Array.of_list (List.filter_map Fun.id (Array.to_list decisions)) in
        if Array.length ds <> n then Error "internal: rsm decision extraction mismatch"
        else begin
          let d0 = ds.(0) in
          let agree d =
            Int64.equal d.r_hash d0.r_hash && d.r_txs = d0.r_txs && d.r_epochs = d0.r_epochs
          in
          if not (Array.for_all agree ds) then
            Error
              (Printf.sprintf "rsm log DISAGREEMENT: [%s] - protocol bug"
                 (String.concat "; "
                    (Array.to_list
                       (Array.map
                          (fun d ->
                            Printf.sprintf "pid %d -> %d txs %016Lx" d.r_pid d.r_txs d.r_hash)
                          ds))))
          else begin
            let frames = Array.fold_left (fun a d -> a + d.r_frames) 0 ds in
            let bytes = Array.fold_left (fun a d -> a + d.r_bytes) 0 ds in
            Ok
              { rc_epochs = d0.r_epochs;
                rc_txs = d0.r_txs;
                rc_hash = d0.r_hash;
                rc_stats = { frames; bytes; words = Wire.words_of_bytes bytes } }
          end
        end
      end)

(* lint: allow-file determinism -- real-process cluster driver; wall-clock deadlines bound socket waits and child reaping and never feed protocol state *)
module Aba = Bca_core.Aba
module Types = Bca_core.Types
module Async = Bca_netsim.Async_exec
module Node = Bca_netsim.Node
module Wire = Bca_wire.Wire
module Value = Bca_util.Value

let parse_stack ?(eps = 0.25) = function
  | "crash-strong" -> Ok Aba.Crash_strong
  | "crash-weak" -> Ok (Aba.Crash_weak eps)
  | "crash-local" -> Ok Aba.Crash_local
  | "byz-strong" -> Ok Aba.Byz_strong
  | "byz-weak" -> Ok (Aba.Byz_weak eps)
  | "byz-tsig" -> Ok Aba.Byz_tsig
  | s ->
    Error
      (Printf.sprintf
         "unknown stack %S (expected crash-strong | crash-weak | crash-local | byz-strong \
          | byz-weak | byz-tsig)"
         s)

let stack_name = function
  | Aba.Crash_strong -> "crash-strong"
  | Aba.Crash_weak _ -> "crash-weak"
  | Aba.Crash_local -> "crash-local"
  | Aba.Byz_strong -> "byz-strong"
  | Aba.Byz_weak _ -> "byz-weak"
  | Aba.Byz_tsig -> "byz-tsig"

let all_stacks ?(eps = 0.25) () =
  [ ("crash-strong", Aba.Crash_strong);
    ("crash-weak", Aba.Crash_weak eps);
    ("crash-local", Aba.Crash_local);
    ("byz-strong", Aba.Byz_strong);
    ("byz-weak", Aba.Byz_weak eps);
    ("byz-tsig", Aba.Byz_tsig) ]

type net_stats = { frames : int; bytes : int; words : int }

(* ---- single-process loopback cluster -------------------------------- *)

(* Bit-identity with [Aba.run ~seed]: the netsim random scheduler draws one
   [Rng.int rng (pool length)] per delivery over a swap-remove pool that
   grows in send order (broadcasts append dst 0, 1, ..., n-1).  The hub
   below is seeded with the same [seed], its pool is populated in the same
   order (initial envelopes replayed by eid, then each delivery's emits in
   emission order), and [Loopback.step] draws the same way - so the frame
   chosen at step [k] is the envelope the simulator would have delivered at
   step [k], and the protocol states evolve identically even though every
   hop here round-trips through the binary codec. *)
let run_loopback ?(seed = 0xB0CA1L) spec ~cfg ~inputs =
  let max_deliveries = 1_000_000 in
  let driver =
    { Aba.drive =
        (fun ~coin:_ ~wire exec parties ->
          let n = Async.n exec in
          let hub = Transport.Loopback.create_hub ~seed ~n () in
          let ends = Array.init n (fun me -> Transport.Loopback.endpoint hub ~me) in
          let words = ref 0 in
          let ship ~src ~dst s =
            ends.(src).Transport.send ~dst s;
            words := !words + Wire.words_of_bytes (String.length s)
          in
          let init =
            List.sort
              (fun a b -> Int.compare a.Async.eid b.Async.eid)
              (Async.inflight exec)
          in
          List.iter
            (fun e ->
              ship ~src:e.Async.src ~dst:e.Async.dst
                (Wire.encode wire ~sender:e.Async.src e.Async.payload))
            init;
          let delivered = ref 0 in
          let do_emits src emits =
            List.iter
              (fun emit ->
                match emit with
                | Node.Broadcast m ->
                  let s = Wire.encode wire ~sender:src m in
                  for d = 0 to n - 1 do
                    ship ~src ~dst:d s
                  done
                | Node.Unicast (d, m) -> ship ~src ~dst:d (Wire.encode wire ~sender:src m))
              emits
          in
          let rec loop () =
            if Async.all_terminated exec then Ok ()
            else if !delivered >= max_deliveries then
              Error "delivery limit reached before termination"
            else
              match Transport.Loopback.step hub with
              | None -> Error "network quiesced before termination (liveness bug)"
              | Some (dst, f) -> (
                incr delivered;
                match Wire.decode_body wire f with
                | Error e ->
                  Error (Printf.sprintf "codec failure in flight: %s" (Wire.error_to_string e))
                | Ok m ->
                  do_emits dst ((Async.node_of exec dst).Node.receive ~src:f.Wire.sender m);
                  loop ())
          in
          match loop () with
          | Error _ as e -> e
          | Ok () ->
            let commits =
              Array.map
                (fun (p : Aba.party) ->
                  match p.committed () with
                  | Some v -> v
                  | None -> invalid_arg "terminated without commit")
                parties
            in
            let value = commits.(0) in
            if not (Array.for_all (Value.equal value) commits) then
              Error "agreement violated (bug)"
            else begin
              let frames = Array.fold_left (fun a e -> a + e.Transport.stats.frames_out) 0 ends in
              let bytes = Array.fold_left (fun a e -> a + e.Transport.stats.bytes_out) 0 ends in
              Ok
                ( { Aba.value;
                    commits;
                    deliveries = !delivered;
                    rounds =
                      Array.fold_left (fun acc (p : Aba.party) -> max acc (p.round ())) 0 parties },
                  { frames; bytes; words = !words } )
            end)
    }
  in
  match Aba.run_custom ~seed spec ~cfg ~inputs ~driver with
  | Error _ as e -> e
  | Ok r -> r

(* ---- one party over a socket transport ------------------------------ *)

type decision = {
  d_pid : int;
  d_value : Value.t;
  d_round : int;
  d_frames : int;
  d_bytes : int;
}

let print_decision d =
  Printf.printf "DECIDED pid=%d value=%d round=%d frames=%d bytes=%d\n%!" d.d_pid
    (Value.to_int d.d_value) d.d_round d.d_frames d.d_bytes

let parse_decision line =
  match
    Scanf.sscanf line "DECIDED pid=%d value=%d round=%d frames=%d bytes=%d"
      (fun pid v round frames bytes -> (pid, v, round, frames, bytes))
  with
  | pid, v, round, frames, bytes when v = 0 || v = 1 ->
    Some
      { d_pid = pid;
        d_value = Value.of_bool (v = 1);
        d_round = round;
        d_frames = frames;
        d_bytes = bytes }
  | _ | (exception Scanf.Scan_failure _) | (exception End_of_file) | (exception Failure _) ->
    None

let run_node ?(seed = 0xB0CA1L) ?(timeout_s = 30.) ?(linger_s = 1.0)
    ?(tracer = Bca_obs.Trace.null) spec ~cfg ~inputs ~(net : Transport.t) =
  let driver =
    { Aba.drive =
        (fun ~coin:_ ~wire exec parties ->
          let n = Async.n exec in
          let me = net.Transport.me in
          if n <> net.Transport.n then invalid_arg "Cluster.run_node: transport size mismatch";
          let node = Async.node_of exec me in
          let party = parties.(me) in
          (* self-addressed messages never touch the network: FIFO local
             delivery, a valid asynchronous schedule *)
          let local : (int * _) Queue.t = Queue.create () in
          let do_emits emits =
            List.iter
              (fun emit ->
                match emit with
                | Node.Broadcast m ->
                  let s = Wire.encode wire ~sender:me m in
                  for d = 0 to n - 1 do
                    if d = me then Queue.push (me, m) local else net.Transport.send ~dst:d s
                  done
                | Node.Unicast (d, m) ->
                  if d = me then Queue.push (me, m) local
                  else net.Transport.send ~dst:d (Wire.encode wire ~sender:me m))
              emits
          in
          (* our initial sends are the src=me envelopes of the assembled
             cluster, in send (eid) order *)
          List.iter
            (fun e ->
              if e.Async.src = me then
                if e.Async.dst = me then Queue.push (me, e.Async.payload) local
                else
                  net.Transport.send ~dst:e.Async.dst
                    (Wire.encode wire ~sender:me e.Async.payload))
            (List.sort (fun a b -> Int.compare a.Async.eid b.Async.eid) (Async.inflight exec));
          let deliver_frame f =
            match Wire.decode_body wire f with
            | Ok m -> do_emits (node.Node.receive ~src:f.Wire.sender m)
            | Error _ -> net.Transport.stats.drops <- net.Transport.stats.drops + 1
          in
          let drain_local () =
            while not (Queue.is_empty local) do
              let src, m = Queue.pop local in
              do_emits (node.Node.receive ~src m)
            done
          in
          let deadline = Unix.gettimeofday () +. timeout_s in
          let rec loop () =
            if node.Node.terminated () then Ok ()
            else if not (Queue.is_empty local) then begin
              let src, m = Queue.pop local in
              do_emits (node.Node.receive ~src m);
              loop ()
            end
            else
              match net.Transport.recv ~timeout_s:0.05 with
              | Some f ->
                deliver_frame f;
                loop ()
              | None ->
                if Unix.gettimeofday () >= deadline then
                  Error
                    (Printf.sprintf "node %d timed out after %.1fs without terminating" me
                       timeout_s)
                else loop ()
          in
          match loop () with
          | Error _ as e -> e
          | Ok () ->
            (* stay responsive while peers finish: our termination message
               is out, but laggards may still need replies relayed *)
            let linger_until = Unix.gettimeofday () +. linger_s in
            ignore (net.Transport.flush ~timeout_s:linger_s);
            let rec linger () =
              let now = Unix.gettimeofday () in
              if now < linger_until then begin
                (match net.Transport.recv ~timeout_s:(Float.min 0.05 (linger_until -. now)) with
                | Some f -> deliver_frame f
                | None -> ());
                drain_local ();
                linger ()
              end
            in
            linger ();
            ignore (net.Transport.flush ~timeout_s:0.5);
            (match party.Aba.committed () with
            | Some v ->
              Ok
                { d_pid = me;
                  d_value = v;
                  d_round = (match party.Aba.commit_round () with Some r -> r | None -> 0);
                  d_frames = net.Transport.stats.frames_out;
                  d_bytes = net.Transport.stats.bytes_out }
            | None -> Error (Printf.sprintf "node %d terminated without committing" me)))
    }
  in
  match Aba.run_custom ~seed ~tracer spec ~cfg ~inputs ~driver with
  | Error _ as e -> e
  | Ok r -> r

(* ---- multi-process launcher ----------------------------------------- *)

type cluster_result = {
  c_value : Value.t;
  c_rounds : int array;
  c_stats : net_stats;
}

let cluster_counter = ref 0

let rm_rf_dir dir =
  match Sys.readdir dir with
  | entries ->
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) entries;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let inputs_to_string inputs =
  String.init (Array.length inputs) (fun i -> if Value.to_int inputs.(i) = 1 then '1' else '0')

let spawn_cluster ?(timeout_s = 60.) ~node_exe ~stack ~eps ~cfg ~seed ~inputs ~transport () =
  let n = cfg.Types.n in
  if Array.length inputs <> n then Error "inputs must have length n"
  else begin
    incr cluster_counter;
    let cleanup = ref (fun () -> ()) in
    let kind, addrs_arg =
      match transport with
      | `Unix ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "bca-cluster-%d-%d" (Unix.getpid ()) !cluster_counter)
        in
        Unix.mkdir dir 0o700;
        cleanup := (fun () -> rm_rf_dir dir);
        ( "unix",
          String.concat ","
            (List.init n (fun i -> Filename.concat dir (Printf.sprintf "node-%d.sock" i))) )
      | `Tcp ->
        let ports = Transport.Socket.pick_tcp_ports ~n in
        ( "tcp",
          String.concat ","
            (Array.to_list (Array.map (fun p -> Printf.sprintf "127.0.0.1:%d" p) ports)) )
    in
    let spawn me =
      let r, w = Unix.pipe () in
      Unix.set_close_on_exec r;
      let argv =
        [| node_exe;
           "--stack"; stack;
           "--eps"; Printf.sprintf "%g" eps;
           "--n"; string_of_int n;
           "--t"; string_of_int cfg.Types.t;
           "--me"; string_of_int me;
           "--seed"; Int64.to_string seed;
           "--inputs"; inputs_to_string inputs;
           "--transport"; kind;
           "--addrs"; addrs_arg;
           "--timeout"; Printf.sprintf "%g" (Float.max 1. (timeout_s -. 5.)) |]
      in
      let pid = Unix.create_process node_exe argv Unix.stdin w Unix.stderr in
      Unix.close w;
      (pid, r)
    in
    let children = Array.init n spawn in
    let bufs = Array.init n (fun _ -> Buffer.create 256) in
    let deadline = Unix.gettimeofday () +. timeout_s in
    let open_fds = ref (Array.to_list (Array.mapi (fun i (_, r) -> (i, r)) children)) in
    let chunk = Bytes.create 4096 in
    (* gather stdout from every node until EOF everywhere or the deadline *)
    while !open_fds <> [] && Unix.gettimeofday () < deadline do
      let fds = List.map snd !open_fds in
      match Unix.select fds [] [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, _, _ ->
        List.iter
          (fun (i, fd) ->
            if List.memq fd readable then
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                Unix.close fd;
                open_fds := List.filter (fun (j, _) -> j <> i) !open_fds
              | k -> Buffer.add_subbytes bufs.(i) chunk 0 k
              | exception Unix.Unix_error (EINTR, _, _) -> ())
          !open_fds
    done;
    List.iter (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ()) !open_fds;
    let timed_out = !open_fds <> [] in
    (* reap: give exited children a moment, then kill survivors *)
    let reap_deadline = Unix.gettimeofday () +. if timed_out then 0. else 5. in
    let statuses =
      Array.map
        (fun (pid, _) ->
          let rec wait () =
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ ->
              if Unix.gettimeofday () >= reap_deadline then begin
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                let _, st = Unix.waitpid [] pid in
                st
              end
              else begin
                ignore (Unix.select [] [] [] 0.05);
                wait ()
              end
            | _, st -> st
          in
          wait ())
        children
    in
    !cleanup ();
    let decisions =
      Array.map
        (fun buf ->
          String.split_on_char '\n' (Buffer.contents buf)
          |> List.find_map parse_decision)
        bufs
    in
    let missing =
      Array.to_list decisions
      |> List.mapi (fun i d -> (i, d))
      |> List.filter_map (fun (i, d) -> if d = None then Some i else None)
    in
    if timed_out then
      Error (Printf.sprintf "cluster timed out after %.1fs (nodes still running killed)" timeout_s)
    else if missing <> [] then
      Error
        (Printf.sprintf "node(s) %s exited without deciding (statuses: %s)"
           (String.concat ", " (List.map string_of_int missing))
           (String.concat ", "
              (Array.to_list
                 (Array.map
                    (function
                      | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                      | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)
                    statuses))))
    else begin
      let ds = Array.map (fun d -> Option.get d) decisions in
      let value = ds.(0).d_value in
      if not (Array.for_all (fun d -> Value.equal d.d_value value) ds) then
        Error
          (Printf.sprintf "DISAGREEMENT: decisions [%s] - protocol bug"
             (String.concat "; "
                (Array.to_list
                   (Array.map
                      (fun d -> Printf.sprintf "pid %d -> %d" d.d_pid (Value.to_int d.d_value))
                      ds))))
      else begin
        let frames = Array.fold_left (fun a d -> a + d.d_frames) 0 ds in
        let bytes = Array.fold_left (fun a d -> a + d.d_bytes) 0 ds in
        Ok
          { c_value = value;
            c_rounds = Array.map (fun d -> d.d_round) ds;
            c_stats = { frames; bytes; words = Wire.words_of_bytes bytes } }
      end
    end
  end

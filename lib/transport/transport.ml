(* lint: allow-file determinism -- real-socket transport; wall-clock deadlines bound connect retries, flushes and receive timeouts and never feed protocol state *)
module Wire = Bca_wire.Wire
module Rng = Bca_util.Rng
module Pool = Bca_netsim.Pool
module Trace = Bca_obs.Trace
module Event = Bca_obs.Event

type stats = {
  mutable frames_out : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable bytes_in : int;
  mutable writes : int;
  mutable retries : int;
  mutable drops : int;
}

let stats_zero () =
  { frames_out = 0; bytes_out = 0; frames_in = 0; bytes_in = 0; writes = 0; retries = 0; drops = 0 }

type t = {
  me : int;
  n : int;
  kind : string;
  send : dst:int -> string -> unit;
  recv : timeout_s:float -> Wire.frame option;
  recv_view : timeout_s:float -> Wire.view option;
  flush : timeout_s:float -> bool;
  close : unit -> unit;
  stats : stats;
}

(* ---- in-memory loopback -------------------------------------------- *)

module Loopback = struct
  type hub = {
    h_n : int;
    h_rng : Rng.t;
    h_pool : (int * Wire.frame) Pool.t;
    h_stats : stats array;
  }

  let create_hub ?(seed = 0xB0CA1L) ~n () =
    { h_n = n;
      h_rng = Rng.create seed;
      h_pool = Pool.create ();
      h_stats = Array.init n (fun _ -> stats_zero ()) }

  let pending h = Pool.length h.h_pool

  let record_in h ~dst f =
    let st = h.h_stats.(dst) in
    st.frames_in <- st.frames_in + 1;
    st.bytes_in <- st.bytes_in + Wire.frame_bytes f

  let step h =
    if Pool.is_empty h.h_pool then None
    else begin
      let i = Rng.int h.h_rng (Pool.length h.h_pool) in
      let ((dst, f) as slot) = Pool.swap_remove h.h_pool i in
      record_in h ~dst f;
      Some slot
    end

  let endpoint h ~me =
    if not (Bca_util.Bounds.index_ok ~len:h.h_n me) then
      invalid_arg "Transport.Loopback.endpoint: pid out of range";
    let st = h.h_stats.(me) in
    let send ~dst s =
      if not (Bca_util.Bounds.index_ok ~len:h.h_n dst) then
        invalid_arg "Transport.Loopback.send: dst out of range";
      st.frames_out <- st.frames_out + 1;
      st.bytes_out <- st.bytes_out + String.length s;
      match Wire.decode_frame s ~pos:0 with
      | Ok (f, _) -> Pool.add h.h_pool (dst, f)
      | Error _ -> st.drops <- st.drops + 1
    in
    let recv ~timeout_s:_ =
      (* uniformly random among the frames destined to [me], same RNG as
         [step] - a deterministic single-party delivery schedule *)
      let len = Pool.length h.h_pool in
      let mine = ref 0 in
      for i = 0 to len - 1 do
        if fst (Pool.get h.h_pool i) = me then incr mine
      done;
      if !mine = 0 then None
      else begin
        let k = ref (Rng.int h.h_rng !mine) in
        let slot = ref (-1) in
        (try
           for i = 0 to len - 1 do
             if fst (Pool.get h.h_pool i) = me then
               if !k = 0 then begin
                 slot := i;
                 raise Exit
               end
               else decr k
           done
         with Exit -> ());
        let _, f = Pool.swap_remove h.h_pool !slot in
        record_in h ~dst:me f;
        Some f
      end
    in
    { me;
      n = h.h_n;
      kind = "loopback";
      send;
      recv;
      recv_view = (fun ~timeout_s -> Option.map Wire.view_of_frame (recv ~timeout_s));
      flush = (fun ~timeout_s:_ -> true);
      close = (fun () -> ());
      stats = st }
end

(* ---- socket engine (Unix-domain and TCP) ---------------------------- *)

module Socket = struct
  type out_state =
    | Idle  (** no connection; will (re)connect when there is data *)
    | Connecting of Unix.file_descr
    | Up of Unix.file_descr
    | Dead  (** given up after [max_retries]; sends to it are dropped *)

  (* Outbound frames for one peer live contiguously in [p_out]:

       [p_start - p_head_sent, p_start)   sent prefix of the head frame,
                                          kept for rewind on reconnect
       [p_start, p_end)                   unsent bytes

     [p_lens] holds the length of every frame with at least one unsent
     byte, head first.  A coalescing flush hands the kernel the whole
     [p_start, p_end) span in one [write]; the per-frame accounting only
     pops [p_lens] as frame boundaries are crossed. *)
  type peer = {
    p_pid : int;
    p_addr : Unix.sockaddr;
    mutable p_state : out_state;
    mutable p_out : Bytes.t;
    mutable p_start : int;
    mutable p_end : int;
    p_lens : int Queue.t;
    mutable p_head_sent : int;  (** bytes of the head frame already written *)
    mutable p_retries : int;
    mutable p_next_attempt : float;
  }

  let unsent p = p.p_end - p.p_start

  let enqueue p s =
    let len = String.length s in
    let keep_from = p.p_start - p.p_head_sent in
    if p.p_end + len > Bytes.length p.p_out then begin
      let live = p.p_end - keep_from in
      if live + len <= Bytes.length p.p_out then
        (* compact: slide the live region to the front *)
        Bytes.blit p.p_out keep_from p.p_out 0 live
      else begin
        let cap = ref (max 4096 (2 * Bytes.length p.p_out)) in
        while live + len > !cap do
          cap := 2 * !cap
        done;
        let nb = Bytes.create !cap in
        Bytes.blit p.p_out keep_from nb 0 live;
        p.p_out <- nb
      end;
      p.p_start <- p.p_head_sent;
      p.p_end <- live
    end;
    Bytes.blit_string s 0 p.p_out p.p_end len;
    p.p_end <- p.p_end + len;
    Queue.push len p.p_lens

  type conn = { c_fd : Unix.file_descr; c_reader : Wire.Reader.t }

  type sock = {
    s_me : int;
    s_n : int;
    s_listen : Unix.file_descr;
    s_peers : peer array;
    mutable s_conns : conn list;
    s_inbox : Wire.view Queue.t;
    s_stats : stats;
    s_tracer : Trace.t;
    s_tracing : bool;
    s_read_buf : Bytes.t;
    s_coalesce : bool;
    s_sndbuf : int option;
    s_rcvbuf : int option;
    s_max_body : int;
    s_max_queue : int;
    s_backoff_base : float;
    s_backoff_cap : float;
    s_max_retries : int;
    s_unix_path : string option;
    mutable s_closed : bool;
  }

  let trace s ~peer ~op ~bytes =
    if s.s_tracing then
      Trace.emit s.s_tracer (Event.Transport { pid = s.s_me; peer; op; bytes })

  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let set_nodelay fd =
    (* best effort: meaningless (and an error) on Unix-domain sockets *)
    try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

  let give_up s p =
    p.p_state <- Dead;
    s.s_stats.drops <- s.s_stats.drops + Queue.length p.p_lens;
    Queue.clear p.p_lens;
    p.p_start <- 0;
    p.p_end <- 0;
    p.p_head_sent <- 0;
    trace s ~peer:p.p_pid ~op:"give_up" ~bytes:0

  let backoff s ~retries =
    let d = s.s_backoff_base *. (2. ** float_of_int (retries - 1)) in
    Float.min d s.s_backoff_cap

  (* A completed handshake resets the whole backoff state - the retry
     counter AND the pending-attempt timestamp.  Centralized so no success
     path can forget one of the two: a peer that flaps repeatedly but
     reconnects successfully in between must restart from the base
     backoff every time, never accumulate toward [give_up]. *)
  let mark_up s p fd =
    p.p_state <- Up fd;
    p.p_retries <- 0;
    p.p_next_attempt <- 0.;
    trace s ~peer:p.p_pid ~op:"connect" ~bytes:0

  (* A frame arrived from a peer we had given up on: it is demonstrably
     alive again (restarted with the same node id on a fresh socket), so
     resurrect the outgoing side.  Without this, [Dead] is permanent and a
     recovered node could hear the cluster but never be answered. *)
  let revive_peer s sender =
    if sender >= 0 && sender < s.s_n && sender <> s.s_me then begin
      let p = s.s_peers.(sender) in
      match p.p_state with
      | Dead ->
        p.p_state <- Idle;
        p.p_retries <- 0;
        p.p_next_attempt <- 0.;
        trace s ~peer:sender ~op:"revive" ~bytes:0
      | Idle | Connecting _ | Up _ -> ()
    end

  (* The connection failed (connect error, write error, refused): close it,
     rewind the partially written head frame so the next connection resends
     it whole, and either schedule a delayed reattempt or give the peer up. *)
  let schedule_retry s p ~now =
    (match p.p_state with
    | Connecting fd | Up fd -> close_fd fd
    | Idle | Dead -> ());
    p.p_start <- p.p_start - p.p_head_sent;
    p.p_head_sent <- 0;
    p.p_retries <- p.p_retries + 1;
    if p.p_retries > s.s_max_retries then give_up s p
    else begin
      p.p_state <- Idle;
      s.s_stats.retries <- s.s_stats.retries + 1;
      p.p_next_attempt <- now +. backoff s ~retries:p.p_retries;
      trace s ~peer:p.p_pid ~op:"retry" ~bytes:0
    end

  let rec try_write s p ~now =
    match p.p_state with
    | Up fd when unsent p > 0 -> begin
      (* coalesced: the whole pending span in one syscall; per-message
         mode (the bench baseline) stops at the head frame's boundary *)
      let chunk =
        if s.s_coalesce then unsent p
        else
          match Queue.peek_opt p.p_lens with
          | Some head_len -> min (unsent p) (head_len - p.p_head_sent)
          | None -> unsent p
      in
      match Unix.write fd p.p_out p.p_start chunk with
      | k ->
        p.p_start <- p.p_start + k;
        s.s_stats.writes <- s.s_stats.writes + 1;
        (* cross off every frame the span completed *)
        let sent = ref (p.p_head_sent + k) in
        let crossing = ref true in
        while !crossing do
          match Queue.peek_opt p.p_lens with
          | Some head_len when !sent >= head_len ->
            ignore (Queue.pop p.p_lens);
            sent := !sent - head_len
          | Some _ | None -> crossing := false
        done;
        p.p_head_sent <- !sent;
        if Queue.is_empty p.p_lens then begin
          p.p_start <- 0;
          p.p_end <- 0;
          p.p_head_sent <- 0
        end;
        if k = chunk && unsent p > 0 then try_write s p ~now
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> schedule_retry s p ~now
    end
    | Idle | Connecting _ | Up _ | Dead -> ()

  let set_bufsizes ?sndbuf_bytes ?rcvbuf_bytes fd =
    (* best effort, like nodelay: a refused size is a tuning miss, not an
       error the protocol can do anything about *)
    (match sndbuf_bytes with
    | Some b -> ( try Unix.setsockopt_int fd Unix.SO_SNDBUF b with Unix.Unix_error _ -> ())
    | None -> ());
    match rcvbuf_bytes with
    | Some b -> ( try Unix.setsockopt_int fd Unix.SO_RCVBUF b with Unix.Unix_error _ -> ())
    | None -> ()

  let start_connect s p ~now =
    let fd = Unix.socket (Unix.domain_of_sockaddr p.p_addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    set_nodelay fd;
    set_bufsizes ?sndbuf_bytes:s.s_sndbuf ?rcvbuf_bytes:s.s_rcvbuf fd;
    match Unix.connect fd p.p_addr with
    | () -> mark_up s p fd
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
      p.p_state <- Connecting fd
    | exception Unix.Unix_error (_, _, _) ->
      p.p_state <- Connecting fd;
      (* reuse the retry path: it closes the fd and applies backoff *)
      schedule_retry s p ~now

  let drop_conn s c ~op =
    close_fd c.c_fd;
    s.s_conns <- List.filter (fun c' -> c'.c_fd != c.c_fd) s.s_conns;
    trace s ~peer:(-1) ~op ~bytes:0

  let rec drain_reader s c =
    match Wire.Reader.next_view c.c_reader with
    | Ok None -> ()
    | Ok (Some v) ->
      if (not (Bca_util.Bounds.index_ok ~len:s.s_n v.Wire.v_sender)) || v.Wire.v_sender = s.s_me
      then begin
        s.s_stats.drops <- s.s_stats.drops + 1;
        trace s ~peer:v.Wire.v_sender ~op:"drop" ~bytes:(Wire.view_bytes v)
      end
      else begin
        s.s_stats.frames_in <- s.s_stats.frames_in + 1;
        s.s_stats.bytes_in <- s.s_stats.bytes_in + Wire.view_bytes v;
        trace s ~peer:v.Wire.v_sender ~op:"rx" ~bytes:(Wire.view_bytes v);
        revive_peer s v.Wire.v_sender;
        Queue.push v s.s_inbox
      end;
      drain_reader s c
    | Error _ ->
      (* framing on a corrupt stream cannot be trusted: drop the
         connection, the sender's reconnect logic re-establishes it *)
      s.s_stats.drops <- s.s_stats.drops + 1;
      drop_conn s c ~op:"drop"

  let read_conn s c =
    let cap = Bytes.length s.s_read_buf in
    match Unix.read c.c_fd s.s_read_buf 0 cap with
    | 0 -> drop_conn s c ~op:"close"
    | k ->
      Wire.Reader.feed c.c_reader (Bytes.sub_string s.s_read_buf 0 k) ~pos:0 ~len:k;
      drain_reader s c
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> drop_conn s c ~op:"close"

  let rec accept_loop s =
    match Unix.accept s.s_listen with
    | fd, _ ->
      Unix.set_nonblock fd;
      set_nodelay fd;
      set_bufsizes ?sndbuf_bytes:s.s_sndbuf ?rcvbuf_bytes:s.s_rcvbuf fd;
      s.s_conns <- { c_fd = fd; c_reader = Wire.Reader.create ~max_body:s.s_max_body () } :: s.s_conns;
      trace s ~peer:(-1) ~op:"accept" ~bytes:0;
      accept_loop s
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()

  (* One [select] round: complete / start connections, accept, read, write.
     All network progress happens here - [send]/[recv]/[flush] are loops
     around this. *)
  let pump s ~timeout_s =
    if not s.s_closed then begin
      let now = Unix.gettimeofday () in
      Array.iter
        (fun p ->
          if
            p.p_pid <> s.s_me && (match p.p_state with Idle -> true | _ -> false)
            && unsent p > 0
            && now >= p.p_next_attempt
          then start_connect s p ~now)
        s.s_peers;
      (* never sleep past the earliest pending reconnect *)
      let tmo =
        Array.fold_left
          (fun acc p ->
            match p.p_state with
            | Idle when unsent p > 0 ->
              Float.min acc (Float.max 0. (p.p_next_attempt -. now))
            | _ -> acc)
          (Float.max 0. timeout_s) s.s_peers
      in
      let reads = s.s_listen :: List.map (fun c -> c.c_fd) s.s_conns in
      let writes =
        Array.fold_left
          (fun acc p ->
            match p.p_state with
            | Connecting fd -> fd :: acc
            | Up fd when unsent p > 0 -> fd :: acc
            | _ -> acc)
          [] s.s_peers
      in
      match Unix.select reads writes [] tmo with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | r, w, _ ->
        if List.memq s.s_listen r then accept_loop s;
        List.iter (fun c -> if List.memq c.c_fd r then read_conn s c) s.s_conns;
        let now = Unix.gettimeofday () in
        Array.iter
          (fun p ->
            match p.p_state with
            | Connecting fd when List.memq fd w -> begin
              match Unix.getsockopt_error fd with
              | None ->
                mark_up s p fd;
                try_write s p ~now
              | Some _ -> schedule_retry s p ~now
            end
            | Up fd when List.memq fd w -> try_write s p ~now
            | _ -> ())
          s.s_peers
    end

  let all_flushed s =
    Array.for_all
      (fun p -> p.p_pid = s.s_me || (match p.p_state with Dead -> true | _ -> false) || unsent p = 0)
      s.s_peers

  let kind_of_addr = function
    | Unix.ADDR_UNIX _ -> "unix"
    | Unix.ADDR_INET _ -> "tcp"

  let endpoint ?(tracer = Trace.null) ?(max_body = Wire.default_max_body)
      ?(max_queue_bytes = 1 lsl 20) ?(backoff_base_s = 0.01) ?(backoff_cap_s = 2.0)
      ?(max_retries = 20) ?(coalesce = true) ?sndbuf_bytes ?rcvbuf_bytes ~addrs ~me () =
    (* a peer closing its end must surface as EPIPE on write (handled by the
       reconnect logic), not kill the process *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let n = Array.length addrs in
    if not (Bca_util.Bounds.index_ok ~len:n me) then
      invalid_arg "Transport.Socket.endpoint: pid out of range";
    let addr = addrs.(me) in
    let unix_path =
      match addr with
      | Unix.ADDR_UNIX path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Some path
      | Unix.ADDR_INET _ -> None
    in
    let listen_fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock listen_fd;
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    set_bufsizes ?sndbuf_bytes ?rcvbuf_bytes listen_fd;
    Unix.bind listen_fd addr;
    Unix.listen listen_fd (max 8 (2 * n));
    let s =
      { s_me = me;
        s_n = n;
        s_listen = listen_fd;
        s_peers =
          Array.init n (fun pid ->
              { p_pid = pid;
                p_addr = addrs.(pid);
                p_state = Idle;
                p_out = Bytes.create 4096;
                p_start = 0;
                p_end = 0;
                p_lens = Queue.create ();
                p_head_sent = 0;
                p_retries = 0;
                p_next_attempt = 0. });
        s_conns = [];
        s_inbox = Queue.create ();
        s_stats = stats_zero ();
        s_tracer = tracer;
        s_tracing = Trace.enabled tracer;
        s_read_buf = Bytes.create 65536;
        s_coalesce = coalesce;
        s_sndbuf = sndbuf_bytes;
        s_rcvbuf = rcvbuf_bytes;
        s_max_body = max_body;
        s_max_queue = max_queue_bytes;
        s_backoff_base = backoff_base_s;
        s_backoff_cap = backoff_cap_s;
        s_max_retries = max_retries;
        s_unix_path = unix_path;
        s_closed = false }
    in
    let send ~dst frame_str =
      if not (Bca_util.Bounds.index_ok ~len:n dst) then
        invalid_arg "Transport.Socket.send: dst out of range";
      let len = String.length frame_str in
      s.s_stats.frames_out <- s.s_stats.frames_out + 1;
      s.s_stats.bytes_out <- s.s_stats.bytes_out + len;
      trace s ~peer:dst ~op:"tx" ~bytes:len;
      if dst = me then begin
        match Wire.decode_frame_view ~max_body:s.s_max_body frame_str ~pos:0 with
        | Ok (v, _) ->
          s.s_stats.frames_in <- s.s_stats.frames_in + 1;
          s.s_stats.bytes_in <- s.s_stats.bytes_in + len;
          Queue.push v s.s_inbox
        | Error _ -> s.s_stats.drops <- s.s_stats.drops + 1
      end
      else begin
        let p = s.s_peers.(dst) in
        match p.p_state with
        | Dead ->
          s.s_stats.drops <- s.s_stats.drops + 1;
          trace s ~peer:dst ~op:"drop" ~bytes:len
        | _ ->
          enqueue p frame_str;
          (* backpressure: a slow or absent peer stalls the sender (with a
             bounded memory footprint) until it drains or is given up.  The
             stall deadline covers the case the retry counter cannot: a peer
             whose connection is Up but that never reads, so writes only ever
             hit EAGAIN and no error fires [schedule_retry].  Deadline is
             2x backoff_cap so an Idle peer sitting out its longest backoff
             window is not given up while retries remain. *)
          let stall_s = 2. *. s.s_backoff_cap in
          let deadline = ref (Unix.gettimeofday () +. stall_s) in
          let low_water = ref (unsent p) in
          while unsent p > s.s_max_queue && (match p.p_state with Dead -> false | _ -> true) do
            pump s ~timeout_s:0.02;
            if unsent p < !low_water then begin
              low_water := unsent p;
              deadline := Unix.gettimeofday () +. stall_s
            end
            else if Unix.gettimeofday () >= !deadline then give_up s p
          done
      end
    in
    let recv_view ~timeout_s =
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec loop () =
        if not (Queue.is_empty s.s_inbox) then Some (Queue.pop s.s_inbox)
        else begin
          let now = Unix.gettimeofday () in
          if now >= deadline then None
          else begin
            pump s ~timeout_s:(Float.min 0.05 (deadline -. now));
            loop ()
          end
        end
      in
      match loop () with
      | Some _ as r -> r
      | None ->
        (* one zero-timeout pump so [recv ~timeout_s:0.] still polls *)
        pump s ~timeout_s:0.;
        if Queue.is_empty s.s_inbox then None else Some (Queue.pop s.s_inbox)
    in
    let recv ~timeout_s = Option.map Wire.frame_of_view (recv_view ~timeout_s) in
    let flush ~timeout_s =
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec loop () =
        if all_flushed s then true
        else if Unix.gettimeofday () >= deadline then false
        else begin
          pump s ~timeout_s:0.05;
          loop ()
        end
      in
      loop ()
    in
    let close () =
      if not s.s_closed then begin
        s.s_closed <- true;
        trace s ~peer:(-1) ~op:"close" ~bytes:0;
        close_fd s.s_listen;
        List.iter (fun c -> close_fd c.c_fd) s.s_conns;
        s.s_conns <- [];
        Array.iter
          (fun p ->
            match p.p_state with
            | Connecting fd | Up fd -> close_fd fd
            | Idle | Dead -> ())
          s.s_peers;
        match s.s_unix_path with
        | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | None -> ()
      end
    in
    { me; n; kind = kind_of_addr addr; send; recv; recv_view; flush; close; stats = s.s_stats }

  let unix_addrs ~dir ~n =
    Array.init n (fun pid -> Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" pid)))

  let tcp_addrs ~ports =
    Array.map (fun port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)) ports

  let pick_tcp_ports ~n =
    (* bind them all before closing any, so the kernel can't hand the same
       ephemeral port out twice *)
    let fds =
      Array.init n (fun _ ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          fd)
    in
    let ports =
      Array.map
        (fun fd ->
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, port) -> port
          | Unix.ADDR_UNIX _ -> invalid_arg "pick_tcp_ports: INET socket with unix name")
        fds
    in
    Array.iter close_fd fds;
    ports
end

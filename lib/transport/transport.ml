(* lint: allow-file determinism -- real-socket transport; wall-clock deadlines bound connect retries, flushes and receive timeouts and never feed protocol state *)
module Wire = Bca_wire.Wire
module Rng = Bca_util.Rng
module Pool = Bca_netsim.Pool
module Trace = Bca_obs.Trace
module Event = Bca_obs.Event

type stats = {
  mutable frames_out : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable bytes_in : int;
  mutable retries : int;
  mutable drops : int;
}

let stats_zero () =
  { frames_out = 0; bytes_out = 0; frames_in = 0; bytes_in = 0; retries = 0; drops = 0 }

type t = {
  me : int;
  n : int;
  kind : string;
  send : dst:int -> string -> unit;
  recv : timeout_s:float -> Wire.frame option;
  flush : timeout_s:float -> bool;
  close : unit -> unit;
  stats : stats;
}

(* ---- in-memory loopback -------------------------------------------- *)

module Loopback = struct
  type hub = {
    h_n : int;
    h_rng : Rng.t;
    h_pool : (int * Wire.frame) Pool.t;
    h_stats : stats array;
  }

  let create_hub ?(seed = 0xB0CA1L) ~n () =
    { h_n = n;
      h_rng = Rng.create seed;
      h_pool = Pool.create ();
      h_stats = Array.init n (fun _ -> stats_zero ()) }

  let pending h = Pool.length h.h_pool

  let record_in h ~dst f =
    let st = h.h_stats.(dst) in
    st.frames_in <- st.frames_in + 1;
    st.bytes_in <- st.bytes_in + Wire.frame_bytes f

  let step h =
    if Pool.is_empty h.h_pool then None
    else begin
      let i = Rng.int h.h_rng (Pool.length h.h_pool) in
      let ((dst, f) as slot) = Pool.swap_remove h.h_pool i in
      record_in h ~dst f;
      Some slot
    end

  let endpoint h ~me =
    if me < 0 || me >= h.h_n then invalid_arg "Transport.Loopback.endpoint: pid out of range";
    let st = h.h_stats.(me) in
    let send ~dst s =
      if dst < 0 || dst >= h.h_n then invalid_arg "Transport.Loopback.send: dst out of range";
      st.frames_out <- st.frames_out + 1;
      st.bytes_out <- st.bytes_out + String.length s;
      match Wire.decode_frame s ~pos:0 with
      | Ok (f, _) -> Pool.add h.h_pool (dst, f)
      | Error _ -> st.drops <- st.drops + 1
    in
    let recv ~timeout_s:_ =
      (* uniformly random among the frames destined to [me], same RNG as
         [step] - a deterministic single-party delivery schedule *)
      let len = Pool.length h.h_pool in
      let mine = ref 0 in
      for i = 0 to len - 1 do
        if fst (Pool.get h.h_pool i) = me then incr mine
      done;
      if !mine = 0 then None
      else begin
        let k = ref (Rng.int h.h_rng !mine) in
        let slot = ref (-1) in
        (try
           for i = 0 to len - 1 do
             if fst (Pool.get h.h_pool i) = me then
               if !k = 0 then begin
                 slot := i;
                 raise Exit
               end
               else decr k
           done
         with Exit -> ());
        let _, f = Pool.swap_remove h.h_pool !slot in
        record_in h ~dst:me f;
        Some f
      end
    in
    { me;
      n = h.h_n;
      kind = "loopback";
      send;
      recv;
      flush = (fun ~timeout_s:_ -> true);
      close = (fun () -> ());
      stats = st }
end

(* ---- socket engine (Unix-domain and TCP) ---------------------------- *)

module Socket = struct
  type out_state =
    | Idle  (** no connection; will (re)connect when there is data *)
    | Connecting of Unix.file_descr
    | Up of Unix.file_descr
    | Dead  (** given up after [max_retries]; sends to it are dropped *)

  type peer = {
    p_pid : int;
    p_addr : Unix.sockaddr;
    mutable p_state : out_state;
    p_q : string Queue.t;
    mutable p_q_bytes : int;  (** unsent bytes across the queue *)
    mutable p_head_off : int;  (** bytes of the head frame already written *)
    mutable p_retries : int;
    mutable p_next_attempt : float;
  }

  type conn = { c_fd : Unix.file_descr; c_reader : Wire.Reader.t }

  type sock = {
    s_me : int;
    s_n : int;
    s_listen : Unix.file_descr;
    s_peers : peer array;
    mutable s_conns : conn list;
    s_inbox : Wire.frame Queue.t;
    s_stats : stats;
    s_tracer : Trace.t;
    s_tracing : bool;
    s_read_buf : Bytes.t;
    s_max_body : int;
    s_max_queue : int;
    s_backoff_base : float;
    s_backoff_cap : float;
    s_max_retries : int;
    s_unix_path : string option;
    mutable s_closed : bool;
  }

  let trace s ~peer ~op ~bytes =
    if s.s_tracing then
      Trace.emit s.s_tracer (Event.Transport { pid = s.s_me; peer; op; bytes })

  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let set_nodelay fd =
    (* best effort: meaningless (and an error) on Unix-domain sockets *)
    try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

  let give_up s p =
    p.p_state <- Dead;
    s.s_stats.drops <- s.s_stats.drops + Queue.length p.p_q;
    Queue.clear p.p_q;
    p.p_q_bytes <- 0;
    p.p_head_off <- 0;
    trace s ~peer:p.p_pid ~op:"give_up" ~bytes:0

  let backoff s ~retries =
    let d = s.s_backoff_base *. (2. ** float_of_int (retries - 1)) in
    Float.min d s.s_backoff_cap

  (* The connection failed (connect error, write error, refused): close it,
     rewind the partially written head frame so the next connection resends
     it whole, and either schedule a delayed reattempt or give the peer up. *)
  let schedule_retry s p ~now =
    (match p.p_state with
    | Connecting fd | Up fd -> close_fd fd
    | Idle | Dead -> ());
    p.p_q_bytes <- p.p_q_bytes + p.p_head_off;
    p.p_head_off <- 0;
    p.p_retries <- p.p_retries + 1;
    if p.p_retries > s.s_max_retries then give_up s p
    else begin
      p.p_state <- Idle;
      s.s_stats.retries <- s.s_stats.retries + 1;
      p.p_next_attempt <- now +. backoff s ~retries:p.p_retries;
      trace s ~peer:p.p_pid ~op:"retry" ~bytes:0
    end

  let rec try_write s p ~now =
    match p.p_state with
    | Up fd when not (Queue.is_empty p.p_q) -> begin
      let head = Queue.peek p.p_q in
      let len = String.length head - p.p_head_off in
      match Unix.write_substring fd head p.p_head_off len with
      | k ->
        p.p_head_off <- p.p_head_off + k;
        p.p_q_bytes <- p.p_q_bytes - k;
        if p.p_head_off = String.length head then begin
          ignore (Queue.pop p.p_q);
          p.p_head_off <- 0
        end;
        if k = len then try_write s p ~now
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> schedule_retry s p ~now
    end
    | Idle | Connecting _ | Up _ | Dead -> ()

  let start_connect s p ~now =
    let fd = Unix.socket (Unix.domain_of_sockaddr p.p_addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    set_nodelay fd;
    match Unix.connect fd p.p_addr with
    | () ->
      p.p_state <- Up fd;
      p.p_retries <- 0;
      trace s ~peer:p.p_pid ~op:"connect" ~bytes:0
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
      p.p_state <- Connecting fd
    | exception Unix.Unix_error (_, _, _) ->
      p.p_state <- Connecting fd;
      (* reuse the retry path: it closes the fd and applies backoff *)
      schedule_retry s p ~now

  let drop_conn s c ~op =
    close_fd c.c_fd;
    s.s_conns <- List.filter (fun c' -> c'.c_fd != c.c_fd) s.s_conns;
    trace s ~peer:(-1) ~op ~bytes:0

  let rec drain_reader s c =
    match Wire.Reader.next c.c_reader with
    | Ok None -> ()
    | Ok (Some f) ->
      if f.Wire.sender < 0 || f.Wire.sender >= s.s_n || f.Wire.sender = s.s_me then begin
        s.s_stats.drops <- s.s_stats.drops + 1;
        trace s ~peer:f.Wire.sender ~op:"drop" ~bytes:(Wire.frame_bytes f)
      end
      else begin
        s.s_stats.frames_in <- s.s_stats.frames_in + 1;
        s.s_stats.bytes_in <- s.s_stats.bytes_in + Wire.frame_bytes f;
        trace s ~peer:f.Wire.sender ~op:"rx" ~bytes:(Wire.frame_bytes f);
        Queue.push f s.s_inbox
      end;
      drain_reader s c
    | Error _ ->
      (* framing on a corrupt stream cannot be trusted: drop the
         connection, the sender's reconnect logic re-establishes it *)
      s.s_stats.drops <- s.s_stats.drops + 1;
      drop_conn s c ~op:"drop"

  let read_conn s c =
    let cap = Bytes.length s.s_read_buf in
    match Unix.read c.c_fd s.s_read_buf 0 cap with
    | 0 -> drop_conn s c ~op:"close"
    | k ->
      Wire.Reader.feed c.c_reader (Bytes.sub_string s.s_read_buf 0 k) ~pos:0 ~len:k;
      drain_reader s c
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> drop_conn s c ~op:"close"

  let rec accept_loop s =
    match Unix.accept s.s_listen with
    | fd, _ ->
      Unix.set_nonblock fd;
      set_nodelay fd;
      s.s_conns <- { c_fd = fd; c_reader = Wire.Reader.create ~max_body:s.s_max_body () } :: s.s_conns;
      trace s ~peer:(-1) ~op:"accept" ~bytes:0;
      accept_loop s
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()

  (* One [select] round: complete / start connections, accept, read, write.
     All network progress happens here - [send]/[recv]/[flush] are loops
     around this. *)
  let pump s ~timeout_s =
    if not s.s_closed then begin
      let now = Unix.gettimeofday () in
      Array.iter
        (fun p ->
          if
            p.p_pid <> s.s_me && (match p.p_state with Idle -> true | _ -> false)
            && (not (Queue.is_empty p.p_q))
            && now >= p.p_next_attempt
          then start_connect s p ~now)
        s.s_peers;
      (* never sleep past the earliest pending reconnect *)
      let tmo =
        Array.fold_left
          (fun acc p ->
            match p.p_state with
            | Idle when not (Queue.is_empty p.p_q) ->
              Float.min acc (Float.max 0. (p.p_next_attempt -. now))
            | _ -> acc)
          (Float.max 0. timeout_s) s.s_peers
      in
      let reads = s.s_listen :: List.map (fun c -> c.c_fd) s.s_conns in
      let writes =
        Array.fold_left
          (fun acc p ->
            match p.p_state with
            | Connecting fd -> fd :: acc
            | Up fd when not (Queue.is_empty p.p_q) -> fd :: acc
            | _ -> acc)
          [] s.s_peers
      in
      match Unix.select reads writes [] tmo with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | r, w, _ ->
        if List.memq s.s_listen r then accept_loop s;
        List.iter (fun c -> if List.memq c.c_fd r then read_conn s c) s.s_conns;
        let now = Unix.gettimeofday () in
        Array.iter
          (fun p ->
            match p.p_state with
            | Connecting fd when List.memq fd w -> begin
              match Unix.getsockopt_error fd with
              | None ->
                p.p_state <- Up fd;
                p.p_retries <- 0;
                trace s ~peer:p.p_pid ~op:"connect" ~bytes:0;
                try_write s p ~now
              | Some _ -> schedule_retry s p ~now
            end
            | Up fd when List.memq fd w -> try_write s p ~now
            | _ -> ())
          s.s_peers
    end

  let all_flushed s =
    Array.for_all
      (fun p -> p.p_pid = s.s_me || (match p.p_state with Dead -> true | _ -> false) || Queue.is_empty p.p_q)
      s.s_peers

  let kind_of_addr = function
    | Unix.ADDR_UNIX _ -> "unix"
    | Unix.ADDR_INET _ -> "tcp"

  let endpoint ?(tracer = Trace.null) ?(max_body = Wire.default_max_body)
      ?(max_queue_bytes = 1 lsl 20) ?(backoff_base_s = 0.01) ?(backoff_cap_s = 2.0)
      ?(max_retries = 20) ~addrs ~me () =
    (* a peer closing its end must surface as EPIPE on write (handled by the
       reconnect logic), not kill the process *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let n = Array.length addrs in
    if me < 0 || me >= n then invalid_arg "Transport.Socket.endpoint: pid out of range";
    let addr = addrs.(me) in
    let unix_path =
      match addr with
      | Unix.ADDR_UNIX path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Some path
      | Unix.ADDR_INET _ -> None
    in
    let listen_fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock listen_fd;
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    Unix.bind listen_fd addr;
    Unix.listen listen_fd (max 8 (2 * n));
    let s =
      { s_me = me;
        s_n = n;
        s_listen = listen_fd;
        s_peers =
          Array.init n (fun pid ->
              { p_pid = pid;
                p_addr = addrs.(pid);
                p_state = Idle;
                p_q = Queue.create ();
                p_q_bytes = 0;
                p_head_off = 0;
                p_retries = 0;
                p_next_attempt = 0. });
        s_conns = [];
        s_inbox = Queue.create ();
        s_stats = stats_zero ();
        s_tracer = tracer;
        s_tracing = Trace.enabled tracer;
        s_read_buf = Bytes.create 65536;
        s_max_body = max_body;
        s_max_queue = max_queue_bytes;
        s_backoff_base = backoff_base_s;
        s_backoff_cap = backoff_cap_s;
        s_max_retries = max_retries;
        s_unix_path = unix_path;
        s_closed = false }
    in
    let send ~dst frame_str =
      if dst < 0 || dst >= n then invalid_arg "Transport.Socket.send: dst out of range";
      let len = String.length frame_str in
      s.s_stats.frames_out <- s.s_stats.frames_out + 1;
      s.s_stats.bytes_out <- s.s_stats.bytes_out + len;
      trace s ~peer:dst ~op:"tx" ~bytes:len;
      if dst = me then begin
        match Wire.decode_frame ~max_body:s.s_max_body frame_str ~pos:0 with
        | Ok (f, _) ->
          s.s_stats.frames_in <- s.s_stats.frames_in + 1;
          s.s_stats.bytes_in <- s.s_stats.bytes_in + len;
          Queue.push f s.s_inbox
        | Error _ -> s.s_stats.drops <- s.s_stats.drops + 1
      end
      else begin
        let p = s.s_peers.(dst) in
        match p.p_state with
        | Dead ->
          s.s_stats.drops <- s.s_stats.drops + 1;
          trace s ~peer:dst ~op:"drop" ~bytes:len
        | _ ->
          Queue.push frame_str p.p_q;
          p.p_q_bytes <- p.p_q_bytes + len;
          (* backpressure: a slow or absent peer stalls the sender (with a
             bounded memory footprint) until it drains or is given up.  The
             stall deadline covers the case the retry counter cannot: a peer
             whose connection is Up but that never reads, so writes only ever
             hit EAGAIN and no error fires [schedule_retry].  Deadline is
             2x backoff_cap so an Idle peer sitting out its longest backoff
             window is not given up while retries remain. *)
          let stall_s = 2. *. s.s_backoff_cap in
          let deadline = ref (Unix.gettimeofday () +. stall_s) in
          let low_water = ref p.p_q_bytes in
          while p.p_q_bytes > s.s_max_queue && (match p.p_state with Dead -> false | _ -> true) do
            pump s ~timeout_s:0.02;
            if p.p_q_bytes < !low_water then begin
              low_water := p.p_q_bytes;
              deadline := Unix.gettimeofday () +. stall_s
            end
            else if Unix.gettimeofday () >= !deadline then give_up s p
          done
      end
    in
    let recv ~timeout_s =
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec loop () =
        if not (Queue.is_empty s.s_inbox) then Some (Queue.pop s.s_inbox)
        else begin
          let now = Unix.gettimeofday () in
          if now >= deadline then None
          else begin
            pump s ~timeout_s:(Float.min 0.05 (deadline -. now));
            loop ()
          end
        end
      in
      match loop () with
      | Some _ as r -> r
      | None ->
        (* one zero-timeout pump so [recv ~timeout_s:0.] still polls *)
        pump s ~timeout_s:0.;
        if Queue.is_empty s.s_inbox then None else Some (Queue.pop s.s_inbox)
    in
    let flush ~timeout_s =
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec loop () =
        if all_flushed s then true
        else if Unix.gettimeofday () >= deadline then false
        else begin
          pump s ~timeout_s:0.05;
          loop ()
        end
      in
      loop ()
    in
    let close () =
      if not s.s_closed then begin
        s.s_closed <- true;
        trace s ~peer:(-1) ~op:"close" ~bytes:0;
        close_fd s.s_listen;
        List.iter (fun c -> close_fd c.c_fd) s.s_conns;
        s.s_conns <- [];
        Array.iter
          (fun p ->
            match p.p_state with
            | Connecting fd | Up fd -> close_fd fd
            | Idle | Dead -> ())
          s.s_peers;
        match s.s_unix_path with
        | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | None -> ()
      end
    in
    { me; n; kind = kind_of_addr addr; send; recv; flush; close; stats = s.s_stats }

  let unix_addrs ~dir ~n =
    Array.init n (fun pid -> Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" pid)))

  let tcp_addrs ~ports =
    Array.map (fun port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)) ports

  let pick_tcp_ports ~n =
    (* bind them all before closing any, so the kernel can't hand the same
       ephemeral port out twice *)
    let fds =
      Array.init n (fun _ ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          fd)
    in
    let ports =
      Array.map
        (fun fd ->
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, port) -> port
          | Unix.ADDR_UNIX _ -> assert false)
        fds
    in
    Array.iter close_fd fds;
    ports
end

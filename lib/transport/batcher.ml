module Wire = Bca_wire.Wire
module Batch = Bca_wire.Batch
module Bufpool = Bca_wire.Bufpool
module Trace = Bca_obs.Trace
module Event = Bca_obs.Event

type policy = { max_records : int; max_bytes : int }

let policy ?(max_records = 64) ?(max_bytes = 32 * 1024) () =
  if max_records < 1 then invalid_arg "Batcher.policy: max_records < 1";
  if max_bytes < 1 then invalid_arg "Batcher.policy: max_bytes < 1";
  { max_records; max_bytes }

let immediate = { max_records = 1; max_bytes = max_int }

type stats = {
  mutable batches : int;
  mutable records : int;
  mutable count_flushes : int;
  mutable size_flushes : int;
  mutable explicit_flushes : int;
  mutable max_occupancy : int;
}

let stats_zero () =
  { batches = 0;
    records = 0;
    count_flushes = 0;
    size_flushes = 0;
    explicit_flushes = 0;
    max_occupancy = 0 }

(* One destination's open batch: the record region under construction. *)
type slot = { mutable sl_count : int; sl_buf : Buffer.t }

type t = {
  bt_net : Transport.t;
  bt_inner : int;
  bt_policy : policy;
  bt_slots : slot array;
  bt_scratch : Buffer.t;  (** one message body being encoded *)
  bt_pool : Bufpool.t;  (** staging for assembled batch bodies *)
  bt_stats : stats;
  bt_tracer : Trace.t;
  bt_tracing : bool;
}

let create ?(tracer = Trace.null) ?policy:(pol = policy ()) ~inner_codec_id net =
  if inner_codec_id < 0 || inner_codec_id > 0xFF || inner_codec_id = Batch.codec_id then
    invalid_arg "Batcher.create: bad inner codec id";
  { bt_net = net;
    bt_inner = inner_codec_id;
    bt_policy = pol;
    bt_slots = Array.init net.Transport.n (fun _ -> { sl_count = 0; sl_buf = Buffer.create 512 });
    bt_scratch = Buffer.create 128;
    bt_pool = Bufpool.create ~initial_capacity:1024 ();
    bt_stats = stats_zero ();
    bt_tracer = tracer;
    bt_tracing = Trace.enabled tracer }

let stats t = t.bt_stats

let pending t = Array.fold_left (fun acc sl -> acc + sl.sl_count) 0 t.bt_slots

let trace t ~peer ~op ~bytes =
  if t.bt_tracing then
    Trace.emit t.bt_tracer (Event.Transport { pid = t.bt_net.Transport.me; peer; op; bytes })

let flush_slot t dst ~trigger =
  let sl = t.bt_slots.(dst) in
  if sl.sl_count > 0 then begin
    let frame =
      Bufpool.with_buf t.bt_pool (fun body ->
          Batch.make_body_into body ~inner_codec_id:t.bt_inner ~count:sl.sl_count sl.sl_buf;
          Wire.encode_raw ~codec_id:Batch.codec_id ~sender:t.bt_net.Transport.me
            (Buffer.contents body))
    in
    let st = t.bt_stats in
    st.batches <- st.batches + 1;
    if sl.sl_count > st.max_occupancy then st.max_occupancy <- sl.sl_count;
    (match trigger with
    | `Count -> st.count_flushes <- st.count_flushes + 1
    | `Size -> st.size_flushes <- st.size_flushes + 1
    | `Explicit -> st.explicit_flushes <- st.explicit_flushes + 1);
    trace t ~peer:dst ~op:"flush" ~bytes:(String.length frame);
    trace t ~peer:dst ~op:"batch" ~bytes:sl.sl_count;
    Buffer.clear sl.sl_buf;
    sl.sl_count <- 0;
    t.bt_net.Transport.send ~dst frame
  end

let send_scratch t ~dst ~instance =
  let sl = t.bt_slots.(dst) in
  Batch.add_record_buf sl.sl_buf ~instance t.bt_scratch;
  sl.sl_count <- sl.sl_count + 1;
  t.bt_stats.records <- t.bt_stats.records + 1;
  if sl.sl_count >= t.bt_policy.max_records then flush_slot t dst ~trigger:`Count
  else if Buffer.length sl.sl_buf >= t.bt_policy.max_bytes then flush_slot t dst ~trigger:`Size

let send t ~dst ~instance ~enc =
  if dst < 0 || dst >= t.bt_net.Transport.n then invalid_arg "Batcher.send: dst out of range";
  if instance < 0 then invalid_arg "Batcher.send: negative instance";
  Buffer.clear t.bt_scratch;
  enc t.bt_scratch;
  send_scratch t ~dst ~instance

let broadcast ?except t ~instance ~enc =
  if instance < 0 then invalid_arg "Batcher.broadcast: negative instance";
  Buffer.clear t.bt_scratch;
  enc t.bt_scratch;
  let skip dst = match except with Some e -> e = dst | None -> false in
  for dst = 0 to t.bt_net.Transport.n - 1 do
    if not (skip dst) then send_scratch t ~dst ~instance
  done

let flush_dst t dst = flush_slot t dst ~trigger:`Explicit

let flush t =
  for dst = 0 to Array.length t.bt_slots - 1 do
    flush_slot t dst ~trigger:`Explicit
  done

(** Real message transports for multi-process (G)BCA clusters.

    A transport endpoint moves {e encoded frames} ([Bca_wire.Wire]) between
    the [n] parties of one protocol instance.  Three implementations share
    one record interface ({!t}):

    - {!Loopback}: an in-memory hub for single-process runs.  Deterministic
      by construction - frame delivery order is drawn from a seeded
      [Bca_util.Rng], mirroring [Bca_netsim.Async_exec]'s random scheduler,
      which is what makes a loopback cluster run bit-identical to a netsim
      run of the same seed (see [Cluster.run_loopback] and DESIGN.md
      section 11).
    - {!Socket} over Unix-domain sockets: multi-process on one machine.
    - {!Socket} over TCP: the same engine over [127.0.0.1] (or any
      [sockaddr]); what the CI cluster-smoke job runs.

    The socket engine is single-threaded: all progress (connect
    completion, accepting, reading, writing, retries) happens inside
    {!t.recv} / {!t.flush} pumps built on [Unix.select].  Outbound
    connections are lazy - opened on the first send to a peer - and retried
    with capped exponential backoff until {!Socket} gives the peer up; a
    completed handshake resets the backoff state entirely (retry counter
    and pending-attempt time), so a flapping peer that keeps reconnecting
    successfully never accumulates toward give-up.  Inbound connections
    are anonymous byte streams (the frame header carries the sender pid,
    so no handshake is needed) - which also makes a {e restarted} peer
    with the same node id but a fresh socket indistinguishable from a slow
    one: its frames are accepted as before, and receiving a frame from a
    peer this endpoint had given up on resurrects the outgoing side
    (Dead -> Idle), the transport-level half of cluster crash-recovery
    ([Bca_transport.Cluster], [Bca_recovery.Wal]).  A corrupt inbound
    stream (bad magic / CRC / oversized frame) poisons its
    [Bca_wire.Wire.Reader] and the connection is dropped; the sender's
    reconnect logic re-establishes it.  See DESIGN.md section 11 for the
    connection state machine.

    Every endpoint keeps {!stats} counters, and when built with a tracer
    emits [Bca_obs.Event.Transport] events (connect / accept / retry /
    give_up / revive / close / tx / rx / drop) through the ordinary trace
    sinks. *)

type stats = {
  mutable frames_out : int;
  mutable bytes_out : int;  (** on-wire bytes enqueued, headers included *)
  mutable frames_in : int;
  mutable bytes_in : int;
  mutable writes : int;
      (** [write] syscalls that moved bytes - with coalescing, one write
          covers every frame pending for a peer, so [frames_out / writes]
          measures how well the output ring amortizes syscalls *)
  mutable retries : int;  (** reconnect attempts after a failure *)
  mutable drops : int;
      (** frames abandoned: peer given up, corrupt stream, or undecodable *)
}

val stats_zero : unit -> stats

type t = {
  me : int;
  n : int;
  kind : string;  (** ["loopback"], ["unix"] or ["tcp"] *)
  send : dst:int -> string -> unit;
      (** Enqueue one encoded frame to [dst].  [dst = me] short-circuits to
          the local inbox.  May pump the network (backpressure: bounded
          per-peer queues); never blocks indefinitely - frames to an
          unreachable peer are dropped once the peer is given up. *)
  recv : timeout_s:float -> Bca_wire.Wire.frame option;
      (** Next well-formed inbound frame, from any peer; [None] after
          [timeout_s] seconds without one.  Pumps the network while
          waiting. *)
  recv_view : timeout_s:float -> Bca_wire.Wire.view option;
      (** [recv] without the body copy: the view aliases the connection
          reader's immutable snapshot (or, for self-delivery, the sent
          frame string), so the body is decoded in place.  [recv] and
          [recv_view] drain the same inbox; use either. *)
  flush : timeout_s:float -> bool;
      (** Pump until every outbound queue is empty or dead, or the timeout
          elapses; [true] if everything was flushed. *)
  close : unit -> unit;
  stats : stats;
}

module Loopback : sig
  type hub
  (** The shared in-flight frame pool of one single-process cluster. *)

  val create_hub : ?seed:int64 -> n:int -> unit -> hub
  (** [seed] (default [0xB0CA1L]) seeds the delivery-order RNG with
      [Bca_util.Rng.create seed] - the same stream
      [Bca_core.Aba.random_run_driver] uses, which is what the
      bit-identity contract rests on. *)

  val endpoint : hub -> me:int -> t
  (** Party [me]'s view of the hub.  [send] appends to the shared pool
      ([stats] counts per-endpoint); [recv] delivers a uniformly random
      in-flight frame {e destined to [me]} (drawing from the hub RNG);
      [flush] is immediate. *)

  val step : hub -> (int * Bca_wire.Wire.frame) option
  (** Deliver the next frame cluster-wide: draw a uniformly random
      in-flight slot (one [Rng.int] per step, exactly like the netsim
      random scheduler), remove it, return [(dst, frame)].  [None] when
      nothing is in flight.  This is the deterministic driver's interface;
      per-endpoint [recv] and [step] draw from the same RNG, so a driver
      should use one or the other, not both. *)

  val pending : hub -> int
end

module Socket : sig
  val endpoint :
    ?tracer:Bca_obs.Trace.t ->
    ?max_body:int ->
    ?max_queue_bytes:int ->
    ?backoff_base_s:float ->
    ?backoff_cap_s:float ->
    ?max_retries:int ->
    ?coalesce:bool ->
    ?sndbuf_bytes:int ->
    ?rcvbuf_bytes:int ->
    addrs:Unix.sockaddr array ->
    me:int ->
    unit ->
    t
  (** Bind [addrs.(me)], listen, and return the endpoint.  [addrs] is the
      whole cluster's address table (index = pid); Unix-domain and TCP
      addresses both work - [kind] reflects [addrs.(me)].

      Tuning: [max_queue_bytes] (default 1 MiB) bounds each peer's
      outbound queue - [send] pumps until below the bound (backpressure);
      reconnects start at [backoff_base_s] (10 ms) doubling to
      [backoff_cap_s] (2 s); after [max_retries] (20) failed attempts the
      peer is given up and its queued frames are dropped.  A peer whose
      queue makes no write progress for [2 * backoff_cap_s] while over the
      bound (connected but never reading) is likewise given up, so [send]
      cannot block indefinitely.

      Hot-path knobs: with [coalesce] (the default) a writable peer gets
      its whole pending span - every queued frame - in one [write]
      syscall; [coalesce:false] restores the seed's frame-at-a-time writes
      (the bench's per-message baseline).  [sndbuf_bytes]/[rcvbuf_bytes]
      set SO_SNDBUF/SO_RCVBUF on every socket (best effort; the kernel
      rounds and caps), for workloads whose bursts outgrow the defaults.
      TCP_NODELAY is always set on TCP sockets - the small-frame protocol
      traffic must not sit out Nagle windows. *)

  val unix_addrs : dir:string -> n:int -> Unix.sockaddr array
  (** [dir/node-<pid>.sock] for each pid. *)

  val tcp_addrs : ports:int array -> Unix.sockaddr array
  (** [127.0.0.1:ports.(pid)] for each pid. *)

  val pick_tcp_ports : n:int -> int array
  (** Reserve [n] distinct free TCP ports by binding port 0 and reading
      back the assignment (then closing - a rendezvous helper for cluster
      launchers, inherently best-effort). *)
end

(** Per-destination batch assembly over a {!Transport.t}.

    The write half of the batched hot path: messages from many concurrent
    protocol instances are encoded straight into per-destination record
    regions ([Bca_wire.Batch]); a region is framed and handed to the
    transport when the {!policy} fires.  Three flush triggers:

    - {e count}: the open batch reaches [max_records];
    - {e size}: its record region reaches [max_bytes];
    - {e explicit}: the executor finished a scheduling slice and calls
      {!flush} so no message waits on future traffic.

    Purely deterministic - no clocks, no timers: flush timing is a
    function of the call sequence, which keeps batched runs reproducible
    and this module suppression-free under [bca lint]'s strict profile.

    The encode path is allocation-light by construction: message bodies
    stage in one reusable scratch buffer, record regions live in per-peer
    buffers that are cleared (not freed) on flush, and batch bodies
    assemble in a [Bca_wire.Bufpool] buffer.  Only the final framed string
    per {e batch} is allocated fresh, amortized over every record in it.

    When built with a tracer, emits [Bca_obs.Event.Transport] events per
    flush: op ["flush"] carrying the framed batch size in bytes and op
    ["batch"] carrying the record count (occupancy) - the feed for the
    metrics histograms ([Bca_obs.Metrics]). *)

type policy = {
  max_records : int;  (** flush an open batch at this many records *)
  max_bytes : int;  (** ... or when its record region reaches this size *)
}

val policy : ?max_records:int -> ?max_bytes:int -> unit -> policy
(** Defaults: 64 records, 32 KiB.  Raises [Invalid_argument] if either
    bound is below 1. *)

val immediate : policy
(** One record per frame - batching disabled.  With the transport's
    [coalesce:false] this is the per-message baseline the cluster bench
    compares against. *)

type stats = {
  mutable batches : int;  (** batch frames handed to the transport *)
  mutable records : int;  (** messages across all batches *)
  mutable count_flushes : int;
  mutable size_flushes : int;
  mutable explicit_flushes : int;
  mutable max_occupancy : int;  (** largest record count in one batch *)
}

val stats_zero : unit -> stats

type t

val create :
  ?tracer:Bca_obs.Trace.t -> ?policy:policy -> inner_codec_id:int -> Transport.t -> t
(** A batcher over [net] whose records all decode with the stack codec
    [inner_codec_id].  Raises [Invalid_argument] if the id is out of range
    or the batch id itself. *)

val send : t -> dst:int -> instance:int -> enc:(Buffer.t -> unit) -> unit
(** Append one record ([enc] writes the message body into the scratch
    buffer) to [dst]'s open batch, flushing it if the policy fires.  May
    therefore call the transport (and its backpressure). *)

val broadcast : ?except:int -> t -> instance:int -> enc:(Buffer.t -> unit) -> unit
(** {!send} to every destination, encoding the body {e once}; [except]
    skips one pid (the caller's own, which takes local delivery). *)

val flush_dst : t -> int -> unit
(** Explicitly flush one destination's open batch (no-op when empty). *)

val flush : t -> unit
(** Explicitly flush every destination. *)

val pending : t -> int
(** Records buffered but not yet flushed, across all destinations. *)

val stats : t -> stats

(** Binary min-heap of ints (array-backed, unboxed).

    Used by the FIFO scheduler of the asynchronous executor to track the
    minimum in-flight envelope id in O(log m) per operation instead of an
    O(m) scan.  Supports lazy deletion: callers may leave stale entries in
    the heap and skip them on pop. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> int -> unit

val peek_min : t -> int option
(** Smallest element without removing it. *)

val pop_min : t -> int option
(** Remove and return the smallest element. *)

type t = { mutable a : int array; mutable len : int }

let create ?(capacity = 16) () = { a = Array.make (max 1 capacity) 0; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let grow h =
  let ndata = Array.make (2 * Array.length h.a) 0 in
  Array.blit h.a 0 ndata 0 h.len;
  h.a <- ndata

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.a.(i) < h.a.(parent) then begin
      let tmp = h.a.(i) in
      h.a.(i) <- h.a.(parent);
      h.a.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  if h.len = Array.length h.a then grow h;
  h.a.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.a.(l) < h.a.(!smallest) then smallest := l;
  if r < h.len && h.a.(r) < h.a.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(!smallest);
    h.a.(!smallest) <- tmp;
    sift_down h !smallest
  end

let peek_min h = if h.len = 0 then None else Some h.a.(0)

let pop_min h =
  if h.len = 0 then None
  else begin
    let min = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    if h.len > 0 then sift_down h 0;
    Some min
  end

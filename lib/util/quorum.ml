type 'v t = {
  tbl : (int, 'v list) Hashtbl.t;
  (* per-value sender tallies, maintained incrementally on every credited
     message so the threshold tests protocols run after each delivery are
     O(#distinct values) instead of a fold over all senders.  Protocol values
     are tiny variants (two or three distinct possibilities), so an
     association list beats any hashed structure here. *)
  mutable tallies : ('v * int ref) list;
}

let create () = { tbl = Hashtbl.create 16; tallies = [] }

let copy t =
  { tbl = Hashtbl.copy t.tbl;
    tallies = List.map (fun (v, r) -> (v, ref !r)) t.tallies }

let bump t v =
  match List.assoc_opt v t.tallies with
  | Some r -> incr r
  | None -> t.tallies <- (v, ref 1) :: t.tallies

let add_first t ~pid v =
  if Hashtbl.mem t.tbl pid then false
  else begin
    Hashtbl.replace t.tbl pid [ v ];
    bump t v;
    true
  end

let add_value t ~pid v =
  match Hashtbl.find_opt t.tbl pid with
  | None ->
    Hashtbl.replace t.tbl pid [ v ];
    bump t v;
    true
  | Some vs ->
    if List.mem v vs then false
    else begin
      Hashtbl.replace t.tbl pid (v :: vs);
      bump t v;
      true
    end

let count t v =
  match List.assoc_opt v t.tallies with Some r -> !r | None -> 0

let count_if t p =
  Det.fold_commutative (fun _ vs acc -> if List.exists p vs then acc + 1 else acc) t.tbl 0

let senders t = Hashtbl.length t.tbl

let values t = List.map fst t.tallies

let all_equal t =
  match t.tallies with [ (v, _) ] -> Some v | _ -> None

let senders_of t v =
  Det.bindings ~compare:Int.compare t.tbl
  |> List.filter_map (fun (pid, vs) -> if List.mem v vs then Some pid else None)

let mem_sender t ~pid = Hashtbl.mem t.tbl pid

let entries t =
  Det.bindings ~compare:Int.compare t.tbl
  |> List.concat_map (fun (pid, vs) -> List.map (fun v -> (pid, v)) vs)

(* Threshold arithmetic.  These three formulas are the paper's whole quorum
   vocabulary; spelling them once here (the only file the lint quorum rule
   exempts) keeps a mistyped [2 * t - 1] from hiding in a protocol body. *)

let plurality ~t = t + 1
let supermajority ~t = (2 * t) + 1
let available ~n ~t = n - t

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the incremented state through two
   xor-shift-multiply rounds (Stafford's mix13 constants). *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = int64 t in
  create seed

let int t bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let r = Int64.to_int (Int64.logand (int64 t) mask) in
  r mod bound

(* Rejection sampling: accept draws below the largest multiple of [bound]
   representable in 63 bits, so every residue is equally likely.  [int] keeps
   its (negligibly) biased modulo reduction because seeded expectations all
   over the test suite depend on its exact output stream. *)
let int_unbiased t bound =
  assert (bound > 0);
  let b = Int64.of_int bound in
  let lim = Int64.mul (Int64.div (Int64.of_int max_int) b) b in
  let mask = Int64.of_int max_int in
  let rec draw () =
    let r = Int64.logand (int64 t) mask in
    if r < lim then Int64.to_int (Int64.rem r b) else draw ()
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let float t =
  let bits53 = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_arr t a =
  let len = Array.length a in
  if len = 0 then invalid_arg "Rng.pick_arr: empty array";
  a.(int t len)

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

type t = V0 | V1

let negate = function V0 -> V1 | V1 -> V0
let of_bool b = if b then V1 else V0
let to_bool = function V0 -> false | V1 -> true
let to_int = function V0 -> 0 | V1 -> 1
let equal a b = match (a, b) with V0, V0 | V1, V1 -> true | _ -> false
let compare a b = Int.compare (to_int a) (to_int b)
let to_string = function V0 -> "0" | V1 -> "1"
let pp ppf v = Format.pp_print_string ppf (to_string v)
let both = [ V0; V1 ]

let fits ?(min = 0) ~max v = v >= min && v <= max

let index_ok ~len i = i >= 0 && i < len

(* [pos + len] could wrap only if both are near max_int; rejecting the
   negatives first makes the sum monotone, and [total - pos] cannot
   underflow once [pos >= 0] and [pos <= total] are known. *)
let slice_ok ~pos ~len total =
  pos >= 0 && len >= 0 && pos <= total && len <= total - pos

type t = { buckets : (int * int) list; total : int }

let of_floats samples =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun x ->
      let k = int_of_float x in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    samples;
  let buckets = Det.bindings ~compare:Int.compare tbl in
  { buckets; total = List.length samples }

let pp ppf t =
  let widest = List.fold_left (fun acc (_, c) -> max acc c) 1 t.buckets in
  List.iter
    (fun (k, c) ->
      let frac = float_of_int c /. float_of_int t.total in
      let bar = String.make (max 1 (c * 40 / widest)) '#' in
      Format.fprintf ppf "%6d  %6d  %5.1f%%  %s@." k c (100.0 *. frac) bar)
    t.buckets

let mode t =
  fst (List.fold_left (fun (bk, bc) (k, c) -> if c > bc then (k, c) else (bk, bc))
         (0, 0) t.buckets)

let percentile t p =
  let target = int_of_float (ceil (p *. float_of_int t.total)) in
  let rec go acc = function
    | [] -> (match List.rev t.buckets with (k, _) :: _ -> k | [] -> 0)
    | (k, c) :: rest -> if acc + c >= target then k else go (acc + c) rest
  in
  go 0 t.buckets

(** Quorum bookkeeping for "upon receiving <msg> from k parties" clauses.

    Every protocol in the paper is phrased as reactions to receiving some
    message type carrying a value from a threshold number of {e distinct}
    parties.  A [Quorum.t] tracks, per message type, which sender said what,
    with the deduplication discipline the pseudocode prescribes:

    - {!add_first}: only the first message of this type from each sender
      counts (the rule for echo2/echo3/... messages - "a non-faulty party
      sends a single echo2 message", and Algorithm 7's "from p_j for the
      first time").  A Byzantine sender therefore cannot vote twice.
    - {!add_value}: the first message from each (sender, value) pair counts
      (the rule for Algorithm 4/6 echo messages, where an honest party may
      legitimately send two echoes: its input and one amplification).

    Values are compared with structural equality; they are small protocol
    variants throughout this codebase. *)

type 'v t

val create : unit -> 'v t

val copy : 'v t -> 'v t
(** Independent snapshot (used by the model checker's configuration
    cloning). *)

val add_first : 'v t -> pid:int -> 'v -> bool
(** Record a message under first-per-sender discipline.  Returns [true] iff
    the message was counted (i.e. this sender had not been seen before). *)

val add_value : 'v t -> pid:int -> 'v -> bool
(** Record a message under first-per-(sender,value) discipline.  Returns
    [true] iff this (sender, value) pair is new. *)

val count : 'v t -> 'v -> int
(** [count t v] is the number of distinct senders credited with value [v]. *)

val count_if : 'v t -> ('v -> bool) -> int
(** [count_if t p] is the number of distinct senders credited with at least
    one value satisfying [p]. *)

val senders : 'v t -> int
(** Number of distinct senders recorded, regardless of value. *)

val values : 'v t -> 'v list
(** The distinct values recorded, in unspecified order. *)

val all_equal : 'v t -> 'v option
(** [all_equal t] is [Some v] iff at least one message was recorded and every
    recorded message carries [v]. *)

val senders_of : 'v t -> 'v -> int list
(** The distinct senders credited with value [v], in ascending pid order. *)

val mem_sender : 'v t -> pid:int -> bool
(** Whether any message from [pid] has been credited. *)

val entries : 'v t -> (int * 'v) list
(** All credited (sender, value) pairs, in ascending pid order. *)

(** {1 Thresholds}

    The paper's quorum vocabulary, spelled once.  The lint [quorum] rule
    bans raw [t + 1] / [2*t + 1] / [n - t] arithmetic everywhere else, so
    that a mistyped threshold cannot hide inside a protocol body. *)

val plurality : t:int -> int
(** [t + 1]: any set this large contains at least one honest party. *)

val supermajority : t:int -> int
(** [2t + 1]: any two sets this large intersect in an honest party
    (for [n = 3t + 1]). *)

val available : n:int -> t:int -> int
(** [n - t]: the most messages a party can wait for without risking a
    deadlock on the [t] potentially silent parties. *)

(** Deterministic views of hash tables.

    Hashtbl iteration order is unspecified; in a codebase whose whole
    test story is bit-identical seeded replay, letting it leak into any
    output is a bug.  The lint [determinism] rule bans [Hashtbl.iter]
    and [Hashtbl.fold] everywhere in [lib/]; traversals go through this
    module instead, which fixes the order by sorting on keys. *)

val bindings : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key.  With [Hashtbl.replace]-style tables
    (one binding per key) this is a deterministic snapshot. *)

val keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys, sorted. *)

val iter_sorted : compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** Iterate in ascending key order. *)

val fold_commutative : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** Unordered fold for combining functions that are commutative and
    associative (counts, sums, maxima), where traversal order is
    unobservable.  Using it with an order-sensitive function is exactly
    the bug the determinism rule exists to catch - don't. *)

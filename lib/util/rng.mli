(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the repository flows through this module so
    that simulations, property tests, and benchmarks are exactly reproducible
    from a 64-bit seed.  SplitMix64 is the standard seeding generator of
    Java/JAX; it has a full 2^64 period and passes BigCrush when used as done
    here (one output per state increment). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds give independent
    streams for all practical purposes. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy and the original then
    evolve independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and advances
    [t].  Used to hand each simulated party or subsystem its own stream so
    that adding a consumer does not perturb the others. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Reduces modulo [bound], so bounds that are not a power of two carry a
    bias of at most [bound/2^63] - negligible, but kept for stream
    compatibility with existing seeded expectations.  New code that needs
    exact uniformity should use {!int_unbiased}. *)

val int_unbiased : t -> int -> int
(** [int_unbiased t bound] is exactly uniform in [\[0, bound)] via rejection
    sampling.  May consume more than one raw output (with probability
    [< bound/2^63] per draw); its stream therefore differs from {!int}. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)], with 53 bits of precision. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] selects a uniformly random element. [xs] must be non-empty.
    O(n) in the list length ([List.nth]); hot paths over arrays should use
    {!pick_arr}. *)

val pick_arr : t -> 'a array -> 'a
(** [pick_arr t a] selects a uniformly random element in O(1).  [a] must be
    non-empty.  Consumes the stream exactly like [pick] on a list of the
    same length. *)

val shuffle : t -> 'a list -> 'a list
(** [shuffle t xs] is a uniformly random permutation of [xs]
    (Fisher-Yates). *)

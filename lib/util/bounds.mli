(** Centralized bounds guards for wire-derived integers.

    Every length, count, index or offset decoded from attacker-controlled
    bytes must pass through one of these predicates before it sizes an
    allocation, bounds a loop or indexes a structure.  Spelling the guard
    once keeps the check shapes uniform (a lower {e and} an upper bound -
    PR 4's varint-overflow crash slipped through an upper-bound-only
    guard), and gives the [wire-taint] / [unbounded-alloc] flow rules a
    recognized sanitizer vocabulary: an integer passed to a [Bounds]
    predicate is considered fully bounds-checked by the lint engine, the
    same way [Quorum.*] names threshold checks for the [quorum] rule. *)

val fits : ?min:int -> max:int -> int -> bool
(** [fits ?min ~max v] is [min <= v && v <= max]; [min] defaults to [0].
    The guard shape for decoded lengths and counts: non-negative and no
    larger than what the enclosing body / budget can hold. *)

val index_ok : len:int -> int -> bool
(** [index_ok ~len i] is [0 <= i && i < len]: a valid index into an
    array, string or slot table of length [len]. *)

val slice_ok : pos:int -> len:int -> int -> bool
(** [slice_ok ~pos ~len total] is true when the [pos, pos+len) slice lies
    inside [0, total): both are non-negative and [pos + len <= total],
    evaluated without overflow (a huge [pos] plus a huge [len] cannot
    wrap past the check). *)

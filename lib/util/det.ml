(* Deterministic views of hash tables.

   Hashtbl iteration order is unspecified and must never influence
   protocol output, trace content or anything else that is replayed
   bit-for-bit from a seed; the lint determinism rule therefore bans
   Hashtbl.iter/fold outside this module.  Code that genuinely needs to
   walk a table goes through these helpers, which fix the order by
   sorting on the key. *)

(* lint: allow-file determinism -- this module is the single authorized
   Hashtbl iteration site; every traversal below is made deterministic
   by sorting on the key before it is exposed. *)

let bindings ~compare:cmp tbl =
  List.sort
    (fun (k1, _) (k2, _) -> cmp k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let keys ~compare:cmp tbl =
  List.sort cmp (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let iter_sorted ~compare:cmp f tbl =
  List.iter (fun (k, v) -> f k v) (bindings ~compare:cmp tbl)

(* Order-insensitive reduction: the combining function must be
   commutative and associative (counts, sums, maxima), which makes the
   traversal order unobservable. *)
let fold_commutative f tbl acc = Hashtbl.fold f tbl acc

(* Capture a violating execution as a structured trace, export it to JSONL,
   parse it back, and replay it bit-identically.

   The subject is the chaos campaign's monitor self-test ([broken_run]): a
   crash/strong cluster in which party 0 equivocates the termination layer,
   forcing an agreement violation.  The trace records every network action,
   protocol milestone, and the monitor's violation events; the replay
   rebuilds the cluster from the seed and re-applies the logged actions. *)

module Campaign = Bca_experiments.Chaos_campaign
module Trace = Bca_obs.Trace

let seed = 7L

let () =
  (* 1. capture *)
  let tracer = Trace.create () in
  let report = Campaign.broken_run ~tracer ~seed () in
  let events = Trace.events tracer in
  Format.printf "captured %d events, %d safety violation(s):@."
    (Array.length events)
    (List.length (Campaign.safety_violations report));
  List.iter
    (fun v -> Format.printf "  %a@." Bca_netsim.Monitor.pp_violation v)
    (Campaign.safety_violations report);

  (* 2. export / import *)
  let jsonl = Trace.events_to_jsonl events in
  let reloaded =
    match Trace.of_jsonl jsonl with
    | Ok evs -> evs
    | Error msg -> failwith ("JSONL parse failed: " ^ msg)
  in
  assert (reloaded = events);
  Format.printf "JSONL round-trip: %d bytes, identical@." (String.length jsonl);

  (* 3. replay *)
  match Campaign.replay_broken ~seed reloaded with
  | Error msg -> failwith ("replay diverged: " ^ msg)
  | Ok (report', events') ->
    assert (events' = events);
    assert (
      List.length (Campaign.safety_violations report')
      = List.length (Campaign.safety_violations report));
    Format.printf "replay: bit-identical trace, violation reproduced@.";

    (* 4. a sample of what the trace holds *)
    Format.printf "@.last 6 events:@.";
    let n = Array.length events in
    for i = max 0 (n - 6) to n - 1 do
      Format.printf "  %a@." Bca_obs.Event.pp_timed events.(i)
    done

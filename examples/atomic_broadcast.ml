(* Atomic broadcast: the end-to-end HoneyBadger-style loop.

   Run with:  dune exec examples/atomic_broadcast.exe

   Four replicas of a toy ledger accept client transfers concurrently; a
   sliding window of epochs runs in parallel, each agreeing a common
   subset of the replicas' batches (n reliable broadcasts + n instances
   of the paper's ABA) that is applied in a deterministic order.  The
   replicas end with identical ledgers, even though each saw a different
   client stream and the network reordered everything. *)

module Rsm = Bca_rsm.Rsm
module Types = Bca_core.Types
module Async = Bca_netsim.Async_exec
module Node = Bca_netsim.Node

let client_streams =
  [| [ "alice->bob:10"; "carol->dan:3" ];
     [ "bob->carol:5" ];
     [ "dan->alice:7"; "alice->carol:1"; "bob->dan:2" ];
     [ "carol->bob:4" ] |]

let () =
  let n = 4 in
  let cfg = Types.cfg ~n ~t:1 in
  let params = Rsm.mk_params ~cfg ~coin_seed:2077L ~epochs:4 ~window:2 () in
  let states = Array.make n None in
  let exec =
    Async.create ~n ~make:(fun pid ->
        let st, init = Rsm.create params ~me:pid in
        List.iter (fun tx -> ignore (Rsm.submit st tx : bool)) client_streams.(pid);
        states.(pid) <- Some st;
        (Rsm.node st, List.map (fun m -> Node.Broadcast m) init))
  in
  let rng = Bca_util.Rng.create 8L in
  (match Async.run exec (Async.random_scheduler rng) with
  | `All_terminated -> Format.printf "all replicas completed %d epochs@." params.Rsm.epochs
  | _ -> Format.printf "replication stalled?!@.");
  let logs =
    Array.to_list states |> List.filter_map (fun st -> Option.map Rsm.log st)
  in
  (match logs with
  | l :: rest ->
    Format.printf "committed order (%d transactions):@." (List.length l);
    List.iteri (fun i tx -> Format.printf "  %2d. %s@." (i + 1) tx) l;
    Format.printf "all replicas agree on the order: %b@." (List.for_all (( = ) l) rest)
  | [] -> ())

(* Command-line interface for the library.

     bca run     - run one binary agreement over a simulated cluster
     bca cluster - run one binary agreement as n real processes over sockets
     bca tables  - print the Table 1 / Table 2 reproductions
     bca attack  - replay the Appendix A adaptive liveness attacks
     bca acs     - run the HoneyBadger-style common-subset demo
     bca lint    - static determinism / protocol-invariant checks over the sources

   All runs are deterministic in the --seed argument. *)

open Cmdliner
module Value = Bca_util.Value
module Types = Bca_core.Types
module Aba = Bca_core.Aba
module Summary = Bca_util.Summary
module Monitor = Bca_netsim.Monitor
module Async = Bca_netsim.Async_exec
module Cluster = Bca_transport.Cluster

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

(* ------------------------------------------------------------------ *)
(* bca run                                                              *)
(* ------------------------------------------------------------------ *)

let spec_of_string s eps = Cluster.parse_stack ~eps s

(* The same execution [Aba.run ~seed] performs (same RNG stream, so same
   delivery schedule and results), but with the runtime invariant monitor
   attached: [bca run] must exit non-zero - with a clear message - if the
   monitor detects disagreement, not just print a wrong answer. *)
let run_monitored ~seed spec ~cfg ~inputs =
  let driver =
    { Aba.drive =
        (fun ~coin ~wire:_ exec parties ->
          let n = Async.n exec in
          let monitor =
            Monitor.create ~n ~inputs
              ~decision:(fun p -> parties.(p).Aba.committed ())
              ~commit_round:(fun p -> parties.(p).Aba.commit_round ())
              ?coin_value:
                (if Aba.spec_commits_on_coin spec then
                   Some (fun ~round ~pid -> Bca_coin.Coin.value_for coin ~round ~pid)
                 else None)
              ()
          in
          Monitor.attach monitor exec;
          let rng = Bca_util.Rng.create seed in
          let res =
            match Async.run exec (Async.random_scheduler rng) with
            | `All_terminated ->
              let commits =
                Array.map
                  (fun (p : Aba.party) ->
                    match p.committed () with
                    | Some v -> v
                    | None -> invalid_arg "terminated without commit")
                  parties
              in
              let value = commits.(0) in
              if Array.for_all (Value.equal value) commits then
                Ok
                  { Aba.value;
                    commits;
                    deliveries = Async.deliveries exec;
                    rounds =
                      Array.fold_left (fun acc (p : Aba.party) -> max acc (p.round ())) 0 parties }
              else Error "agreement violated (bug)"
            | `Quiescent -> Error "network quiesced before termination (liveness bug)"
            | `Limit -> Error "delivery limit reached before termination"
            | `Stopped -> Error "scheduler stopped"
          in
          Monitor.final_check monitor;
          (res, Monitor.violations monitor))
    }
  in
  Aba.run_custom ~seed spec ~cfg ~inputs ~driver

let run_cmd =
  let stack =
    Arg.(
      value
      & opt string "byz-strong"
      & info [ "stack" ]
          ~doc:
            "Protocol stack: crash-strong | crash-weak | crash-local | byz-strong | \
             byz-weak | byz-tsig.")
  in
  let eps =
    Arg.(value & opt float 0.25 & info [ "eps" ] ~doc:"Coin goodness for the weak stacks.")
  in
  let inputs =
    Arg.(
      value
      & opt string "0110"
      & info [ "inputs" ] ~docv:"BITS" ~doc:"One input bit per party; length fixes n.")
  in
  let t_arg =
    Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Fault bound (default: maximal).")
  in
  let action stack eps inputs t_opt seed =
    match spec_of_string stack eps with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok spec ->
      let n = String.length inputs in
      let byz = match spec with Aba.Crash_strong | Aba.Crash_weak _ | Aba.Crash_local -> false | _ -> true in
      let t =
        match t_opt with Some t -> t | None -> if byz then (n - 1) / 3 else (n - 1) / 2
      in
      let cfg = Types.cfg ~n ~t in
      let input_arr =
        Array.init n (fun i -> Value.of_bool (inputs.[i] = '1'))
      in
      (match run_monitored ~seed spec ~cfg ~inputs:input_arr with
      | Error e ->
        prerr_endline e;
        exit 1
      | Ok (res, violations) ->
        List.iter
          (fun v -> Format.eprintf "MONITOR: %a@." Monitor.pp_violation v)
          violations;
        (match res with
        | Ok r ->
          Format.printf "stack:      %a (n=%d, t=%d)@." Aba.pp_spec spec n t;
          Format.printf "inputs:     %s@." inputs;
          Format.printf "agreed:     %a@." Value.pp r.Aba.value;
          Format.printf "messages:   %d@." r.Aba.deliveries;
          Format.printf "coin rounds:%d@." r.Aba.rounds;
          if violations <> [] then begin
            Format.eprintf "bca run: the invariant monitor flagged %d violation(s) above@."
              (List.length violations);
            exit 2
          end
        | Error e ->
          prerr_endline e;
          exit (if violations <> [] then 2 else 1)))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one binary agreement over a simulated honest cluster.")
    Term.(const action $ stack $ eps $ inputs $ t_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bca cluster                                                          *)
(* ------------------------------------------------------------------ *)

let cluster_cmd =
  let stack =
    Arg.(
      value
      & opt string "byz-strong"
      & info [ "stack" ]
          ~doc:
            "Protocol stack: crash-strong | crash-weak | crash-local | byz-strong | \
             byz-weak | byz-tsig.")
  in
  let eps =
    Arg.(value & opt float 0.25 & info [ "eps" ] ~doc:"Coin goodness for the weak stacks.")
  in
  let inputs =
    Arg.(
      value
      & opt string "0110"
      & info [ "inputs" ] ~docv:"BITS" ~doc:"One input bit per party; length fixes n.")
  in
  let t_arg =
    Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Fault bound (default: maximal).")
  in
  let transport =
    Arg.(
      value & opt string "unix"
      & info [ "transport" ] ~doc:"unix (Unix-domain sockets) or tcp (loopback TCP).")
  in
  let timeout =
    Arg.(
      value & opt float 60.
      & info [ "timeout" ] ~doc:"Seconds before surviving node processes are killed.")
  in
  let node_exe_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "node-exe" ]
          ~doc:
            "Path to the bca_node executable (default: next to this binary; the BCA_NODE \
             environment variable overrides).")
  in
  let instances_arg =
    Arg.(
      value & opt int 1
      & info [ "instances" ] ~docv:"B"
          ~doc:
            "Concurrent agreement instances per node (pipelined executor with frame \
             batching; inputs are derived from the seed, --inputs only fixes n).")
  in
  let batch_records_arg =
    Arg.(
      value & opt int 64
      & info [ "batch-records" ] ~doc:"Flush an open batch at this many records.")
  in
  let batch_bytes_arg =
    Arg.(
      value & opt int (32 * 1024)
      & info [ "batch-bytes" ] ~doc:"... or when its record region reaches this size.")
  in
  let supervise_arg =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the crash-recovery supervisor: nodes keep durable WALs and a dead node is \
             restarted with --recover (single-instance mode only).")
  in
  let wal_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the per-node write-ahead logs (default with --supervise: a fresh \
             temporary directory, removed afterwards).")
  in
  let kill_at_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "kill-at" ] ~docv:"PID:TRIGGER"
          ~doc:
            "With --supervise: SIGKILL node PID at TRIGGER (coin:R or round:R), e.g. \
             2:coin:1 kills node 2 at its first access of round 1's coin.")
  in
  let max_restarts_arg =
    Arg.(
      value & opt int 4
      & info [ "max-restarts" ] ~doc:"With --supervise: restart budget per node.")
  in
  let rsm_arg =
    Arg.(
      value & flag
      & info [ "rsm" ]
          ~doc:
            "Run the pipelined replicated log instead of a binary agreement: each node \
             commits the same fixed-length transaction log (--inputs only fixes n; the \
             workload is derived from the seed).")
  in
  let rsm_epochs_arg =
    Arg.(value & opt int 6 & info [ "rsm-epochs" ] ~doc:"With --rsm: log length in epochs.")
  in
  let rsm_window_arg =
    Arg.(
      value & opt int 2
      & info [ "rsm-window" ] ~doc:"With --rsm: concurrent in-flight epochs.")
  in
  let rsm_txs_arg =
    Arg.(
      value & opt int 4
      & info [ "rsm-txs" ] ~doc:"With --rsm: derived transactions per replica.")
  in
  let action stack eps inputs t_opt transport timeout node_exe seed instances batch_records
      batch_bytes supervise wal_dir kill_at max_restarts rsm rsm_epochs rsm_window rsm_txs =
    match spec_of_string stack eps with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok spec ->
      let n = String.length inputs in
      let byz =
        match spec with Aba.Crash_strong | Aba.Crash_weak _ | Aba.Crash_local -> false | _ -> true
      in
      let t =
        match t_opt with Some t -> t | None -> if byz then (n - 1) / 3 else (n - 1) / 2
      in
      let cfg = Types.cfg ~n ~t in
      let input_arr = Array.init n (fun i -> Value.of_bool (inputs.[i] = '1')) in
      let transport =
        match transport with
        | "unix" -> `Unix
        | "tcp" -> `Tcp
        | other ->
          Printf.eprintf "unknown transport %S (expected unix or tcp)\n" other;
          exit 1
      in
      let node_exe =
        match node_exe with
        | Some p -> p
        | None -> (
          match Sys.getenv_opt "BCA_NODE" with
          | Some p -> p
          | None -> Filename.concat (Filename.dirname Sys.executable_name) "bca_node.exe")
      in
      if not (Sys.file_exists node_exe) then begin
        Printf.eprintf "node executable %s not found (build it, or pass --node-exe / BCA_NODE)\n"
          node_exe;
        exit 1
      end;
      let header () =
        Format.printf "cluster:    %a over %s (n=%d processes, t=%d)@." Aba.pp_spec spec
          (match transport with `Unix -> "unix sockets" | `Tcp -> "tcp")
          n t
      in
      if rsm then begin
        if supervise || instances > 1 then begin
          prerr_endline "--rsm excludes --supervise and --instances";
          exit 1
        end;
        match
          Cluster.spawn_rsm_cluster ~timeout_s:timeout ~node_exe ~cfg ~seed ~epochs:rsm_epochs
            ~window:rsm_window ~batch_txs:64 ~batch_bytes:(64 * 1024) ~txs_per_node:rsm_txs
            ~tx_bytes:32 ~transport ()
        with
        | Ok r ->
          Format.printf "rsm log:    %d replicas over %s (window %d)@." n
            (match transport with `Unix -> "unix sockets" | `Tcp -> "tcp")
            rsm_window;
          Format.printf "committed:  %d transactions in %d epochs@." r.Cluster.rc_txs
            r.Cluster.rc_epochs;
          Format.printf "log digest: %016Lx (identical at every replica)@." r.Cluster.rc_hash;
          Format.printf "traffic:    %d frames, %d bytes (%d words)@."
            r.Cluster.rc_stats.frames r.Cluster.rc_stats.bytes r.Cluster.rc_stats.words
        | Error e ->
          prerr_endline e;
          exit 1
      end
      else if supervise then begin
        if instances > 1 then begin
          prerr_endline "--supervise requires the single-instance executor";
          exit 1
        end;
        let kill_at =
          Option.map
            (fun s ->
              match String.index_opt s ':' with
              | Some i when int_of_string_opt (String.sub s 0 i) <> None ->
                ( int_of_string (String.sub s 0 i),
                  String.sub s (i + 1) (String.length s - i - 1) )
              | _ ->
                prerr_endline "bad --kill-at (expected PID:coin:R or PID:round:R)";
                exit 1)
            kill_at
        in
        let wal_dir, cleanup =
          match wal_dir with
          | Some dir -> (dir, fun () -> ())
          | None ->
            let dir =
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "bca-wal-%d" (Unix.getpid ()))
            in
            Unix.mkdir dir 0o700;
            ( dir,
              fun () ->
                (match Sys.readdir dir with
                | entries ->
                  Array.iter
                    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
                    entries
                | exception Sys_error _ -> ());
                try Unix.rmdir dir with Unix.Unix_error _ -> () )
        in
        let outcome =
          Fun.protect
            ~finally:(fun () -> cleanup ())
            (fun () ->
              Cluster.spawn_cluster_supervised ~timeout_s:timeout ~max_restarts ?kill_at
                ~node_exe ~stack ~eps ~cfg ~seed ~inputs:input_arr ~wal_dir ~transport ())
        in
        match outcome with
        | Ok r ->
          header ();
          Format.printf "inputs:     %s@." inputs;
          Format.printf "agreed:     %a@." Value.pp r.Cluster.s_result.Cluster.c_value;
          Format.printf "rounds:     %s@."
            (String.concat " "
               (Array.to_list (Array.map string_of_int r.Cluster.s_result.Cluster.c_rounds)));
          Format.printf "traffic:    %d frames, %d bytes (%d words)@."
            r.Cluster.s_result.Cluster.c_stats.frames r.Cluster.s_result.Cluster.c_stats.bytes
            r.Cluster.s_result.Cluster.c_stats.words;
          Format.printf "restarts:   %d (wal bytes: %d)@." r.Cluster.s_restarts
            r.Cluster.s_wal_bytes;
          List.iter
            (fun ri ->
              Format.printf
                "recovered:  node %d replayed %d records (%d bytes) in %.3f s@."
                ri.Cluster.ri_pid ri.Cluster.ri_records ri.Cluster.ri_wal_bytes
                ri.Cluster.ri_replay_s)
            r.Cluster.s_recoveries
        | Error e ->
          prerr_endline e;
          exit 1
      end
      else if instances > 1 then begin
        let policy =
          try Bca_transport.Batcher.policy ~max_records:batch_records ~max_bytes:batch_bytes ()
          with Invalid_argument e ->
            prerr_endline e;
            exit 1
        in
        match
          Cluster.spawn_cluster_multi ~timeout_s:timeout ~policy ~node_exe ~stack ~eps ~cfg
            ~seed ~instances ~transport ()
        with
        | Ok r ->
          header ();
          Format.printf "instances:  %d (inputs derived from seed %Ld)@." instances seed;
          Format.printf "agreed:     %s@."
            (String.init instances (fun k ->
                 if Value.to_int r.Cluster.mc_values.(k) = 1 then '1' else '0'));
          Format.printf "rounds:     %s@."
            (String.concat " " (Array.to_list (Array.map string_of_int r.Cluster.mc_rounds)));
          Format.printf "traffic:    %d batch frames carrying %d records, %d bytes (%d words)@."
            r.Cluster.mc_batches r.Cluster.mc_records r.Cluster.mc_stats.bytes
            r.Cluster.mc_stats.words
        | Error e ->
          prerr_endline e;
          exit 1
      end
      else begin
        match
          Cluster.spawn_cluster ~timeout_s:timeout ~node_exe ~stack ~eps ~cfg ~seed
            ~inputs:input_arr ~transport ()
        with
        | Ok r ->
          header ();
          Format.printf "inputs:     %s@." inputs;
          Format.printf "agreed:     %a@." Value.pp r.Cluster.c_value;
          Format.printf "rounds:     %s@."
            (String.concat " "
               (Array.to_list (Array.map string_of_int r.Cluster.c_rounds)));
          Format.printf "traffic:    %d frames, %d bytes (%d words)@." r.Cluster.c_stats.frames
            r.Cluster.c_stats.bytes r.Cluster.c_stats.words
        | Error e ->
          prerr_endline e;
          exit 1
      end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run one binary agreement as n real node processes exchanging wire frames over \
          Unix-domain or TCP sockets (with --instances B, a batched pipelined executor \
          runs B agreements per node over one endpoint pair; with --rsm, the pipelined \
          replicated log).")
    Term.(
      const action $ stack $ eps $ inputs $ t_arg $ transport $ timeout $ node_exe_arg
      $ seed_arg $ instances_arg $ batch_records_arg $ batch_bytes_arg $ supervise_arg
      $ wal_dir_arg $ kill_at_arg $ max_restarts_arg $ rsm_arg $ rsm_epochs_arg
      $ rsm_window_arg $ rsm_txs_arg)

(* ------------------------------------------------------------------ *)
(* bca loadgen                                                          *)
(* ------------------------------------------------------------------ *)

let loadgen_cmd =
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Replicas.") in
  let t_arg =
    Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Fault bound (default: (n-1)/3).")
  in
  let transport_arg =
    Arg.(
      value & opt string "unix"
      & info [ "transport" ]
          ~doc:"loopback (in-memory hub), unix (Unix-domain sockets) or tcp (loopback TCP).")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.
      & info [ "rate" ] ~docv:"TX/S"
          ~doc:"Open-loop submission rate, cluster-wide (0: preload everything).")
  in
  let total_arg =
    Arg.(value & opt int 256 & info [ "total" ] ~doc:"Transactions to inject.")
  in
  let tx_bytes_arg =
    Arg.(value & opt int 64 & info [ "tx-bytes" ] ~doc:"Padded size of each transaction.")
  in
  let window_arg =
    Arg.(value & opt int 4 & info [ "window" ] ~doc:"Concurrent in-flight epochs.")
  in
  let batch_txs_arg =
    Arg.(value & opt int 64 & info [ "batch-txs" ] ~doc:"Proposal cut: max txs per batch.")
  in
  let batch_bytes_arg =
    Arg.(
      value & opt int (64 * 1024)
      & info [ "batch-bytes" ] ~doc:"... or at most this many payload bytes.")
  in
  let epochs_arg =
    Arg.(
      value & opt int 0
      & info [ "epochs" ]
          ~doc:"Log length (0: sized from the load - window + capacity + slack).")
  in
  let timeout_arg =
    Arg.(value & opt float 60. & info [ "timeout" ] ~doc:"Seconds before giving up.")
  in
  let hop_ms_arg =
    Arg.(
      value & opt float 0.
      & info [ "hop-ms" ]
          ~doc:
            "Emulated one-way network latency in milliseconds (netem-style; sockets \
             only).  Local sockets are microseconds away, so this is how pipelining \
             (window > 1) is made visible on one machine.")
  in
  let action n t_opt transport rate total tx_bytes window batch_txs batch_bytes epochs
      timeout hop_ms seed =
    let t = match t_opt with Some t -> t | None -> (n - 1) / 3 in
    let cfg = Types.cfg ~n ~t in
    let epochs =
      if epochs > 0 then epochs
      else window + (((total + (((n - t) * batch_txs) - 1)) / ((n - t) * batch_txs)) * 2) + 2
    in
    let batch = { Bca_rsm.Rsm.max_txs = batch_txs; max_bytes = batch_bytes } in
    let params = Bca_rsm.Rsm.mk_params ~cfg ~coin_seed:seed ~epochs ~window ~batch () in
    let load = { Cluster.lg_rate = rate; lg_total = total; lg_tx_bytes = tx_bytes } in
    let hop_s = hop_ms /. 1000. in
    let result =
      match transport with
      | "loopback" ->
        if hop_s > 0. then begin
          Printf.eprintf "--hop-ms applies to socket transports (unix, tcp) only\n";
          exit 1
        end;
        Cluster.run_rsm_loadgen_loopback ~seed ~timeout_s:timeout params ~load
      | "unix" ->
        Cluster.run_rsm_loadgen ~timeout_s:timeout ~hop_s params ~load ~transport:`Unix
      | "tcp" ->
        Cluster.run_rsm_loadgen ~timeout_s:timeout ~hop_s params ~load ~transport:`Tcp
      | other ->
        Printf.eprintf "unknown transport %S (expected loopback, unix or tcp)\n" other;
        exit 1
    in
    match result with
    | Ok r ->
      Format.printf "loadgen:    n=%d t=%d over %s%s, window %d, batch <= %d txs / %d B@."
        n t transport
        (if hop_ms > 0. then Printf.sprintf " (%.1f ms emulated hop)" hop_ms else "")
        window batch_txs batch_bytes;
      Format.printf "injected:   %d txs of %d B, %s@." total tx_bytes
        (if rate <= 0. then "preloaded" else Printf.sprintf "open-loop at %.0f tx/s" rate);
      Format.printf "committed:  %d txs in %d epochs, %.3f s to last commit@."
        r.Cluster.lr_committed r.Cluster.lr_epochs r.Cluster.lr_duration_s;
      Format.printf "throughput: %.1f tx/s@." r.Cluster.lr_tx_per_s;
      Format.printf "latency:    p50 %.2f ms, p99 %.2f ms (submit to commit at replica 0)@."
        r.Cluster.lr_p50_ms r.Cluster.lr_p99_ms;
      Format.printf "traffic:    %d frames, %d bytes, %d writes@." r.Cluster.lr_frames
        r.Cluster.lr_bytes r.Cluster.lr_writes;
      if r.Cluster.lr_committed < total then begin
        Format.printf "WARNING:    %d transactions missed the log (size it with --epochs)@."
          (total - r.Cluster.lr_committed);
        exit 1
      end
    | Error e ->
      prerr_endline e;
      exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive the pipelined replicated log with an open-loop transaction load (in one \
          process: in-memory hub or real unix/tcp sockets) and report committed-tx \
          throughput and submit-to-commit latency percentiles.")
    Term.(
      const action $ n_arg $ t_arg $ transport_arg $ rate_arg $ total_arg $ tx_bytes_arg
      $ window_arg $ batch_txs_arg $ batch_bytes_arg $ epochs_arg $ timeout_arg
      $ hop_ms_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bca tables                                                           *)
(* ------------------------------------------------------------------ *)

let tables_cmd =
  let runs =
    Arg.(value & opt int 1000 & info [ "runs" ] ~doc:"Monte-Carlo runs per cell.")
  in
  let action runs seed =
    let fmt s = Printf.sprintf "%.2f ± %.2f" s.Summary.mean s.Summary.ci95 in
    let module T1 = Bca_experiments.Table1 in
    let module T2 = Bca_experiments.Table2 in
    Bca_util.Tablefmt.print
      ~header:[ "table"; "cell"; "paper"; "measured" ]
      [ [ "1"; "crash, strong coin"; "7"; fmt (T1.strong ~runs ~seed) ];
        [ "1"; "crash, weak e=1/4"; "16"; fmt (T1.weak ~eps:0.25 ~runs ~seed) ];
        [ "2"; "byz, strong t+1"; "17 (cp 15)"; fmt (T2.strong_t1 ~runs ~seed) ];
        [ "2"; "byz, strong 2t+1"; "13"; fmt (T2.strong_2t1 ~runs ~seed) ];
        [ "2"; "byz, weak e=1/4"; "30"; fmt (T2.weak_t1 ~eps:0.25 ~runs ~seed) ];
        [ "2"; "byz, tsig"; "9"; fmt (T2.tsig ~runs ~seed) ] ]
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's Table 1 and Table 2 cells.")
    Term.(const action $ runs $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bca attack                                                           *)
(* ------------------------------------------------------------------ *)

let attack_cmd =
  let target =
    Arg.(value & opt string "cz" & info [ "target" ] ~doc:"cz (Cachin-Zanolini) or mmr.")
  in
  let degree =
    Arg.(
      value & opt string "t"
      & info [ "coin" ] ~doc:"Coin unpredictability: t (attack succeeds) or 2t (fails).")
  in
  let rounds = Arg.(value & opt int 30 & info [ "rounds" ] ~doc:"Attack rounds.") in
  let action target degree rounds seed =
    let deg = if degree = "2t" then `TwoT else `T in
    let first_commit, agreement, peeks =
      match target with
      | "mmr" ->
        let r = Bca_adversary.Mmr_attack.run ~degree:deg ~rounds ~seed in
        Bca_adversary.Mmr_attack.
          (r.first_commit_round, r.agreement_ok, r.peeks_denied)
      | _ ->
        let r = Bca_adversary.Cz_attack.run ~degree:deg ~rounds ~seed in
        Bca_adversary.Cz_attack.(r.first_commit_round, r.agreement_ok, r.peeks_denied)
    in
    Format.printf "target: %s, coin degree: %s@." target degree;
    (match first_commit with
    | None -> Format.printf "NO COMMIT in %d rounds: liveness violated@." rounds
    | Some r -> Format.printf "first commitment in round %d: attack failed@." r);
    Format.printf "safety kept: %b; coin peeks denied: %d@." agreement peeks
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Replay the Appendix A adaptive liveness attack.")
    Term.(const action $ target $ degree $ rounds $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bca acs                                                              *)
(* ------------------------------------------------------------------ *)

let acs_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of replicas (>= 3t+1).") in
  let silent =
    Arg.(value & opt (some int) None & info [ "silent" ] ~doc:"Replica that never speaks.")
  in
  let action n silent seed =
    let t = (n - 1) / 3 in
    let cfg = Types.cfg ~n ~t in
    let params = { Bca_acs.Acs.cfg; coin_seed = Int64.add seed 7L } in
    let states = Array.make n None in
    let exec =
      Bca_netsim.Async_exec.create ~n ~make:(fun pid ->
          if Some pid = silent then (Bca_netsim.Node.silent, [])
          else begin
            let st, init =
              Bca_acs.Acs.create params ~me:pid ~proposal:(Printf.sprintf "batch-%d" pid)
            in
            states.(pid) <- Some st;
            (Bca_acs.Acs.node st, List.map (fun m -> Bca_netsim.Node.Broadcast m) init)
          end)
    in
    let rng = Bca_util.Rng.create seed in
    (match Bca_netsim.Async_exec.run exec (Bca_netsim.Async_exec.random_scheduler rng) with
    | `All_terminated -> Format.printf "ACS terminated (n=%d, t=%d)@." n t
    | _ -> Format.printf "ACS failed to terminate@.");
    Array.iteri
      (fun pid st ->
        match Option.bind st Bca_acs.Acs.output with
        | Some slots ->
          Format.printf "replica %d: {%s}@." pid
            (String.concat ", " (List.map (fun (j, _) -> string_of_int j) slots))
        | None -> if Some pid <> silent then Format.printf "replica %d: no output@." pid)
      states
  in
  Cmd.v
    (Cmd.info "acs" ~doc:"Run the HoneyBadger-style common subset on the paper's ABA.")
    Term.(const action $ n $ silent $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bca trace                                                            *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let limit =
    Arg.(value & opt int 60 & info [ "limit" ] ~doc:"Deliveries to print before going quiet.")
  in
  let inputs =
    Arg.(value & opt string "0110" & info [ "inputs" ] ~docv:"BITS" ~doc:"Input bits (n=4).")
  in
  let action limit inputs seed =
    let module Stack = Bca_core.Aba.Byz_strong_stack in
    let n = 4 in
    let cfg = Types.cfg ~n ~t:1 in
    let coin =
      Bca_coin.Coin.create Bca_coin.Coin.Strong ~n ~degree:1 ~seed:(Int64.add seed 1L)
    in
    let params = { Stack.cfg; mode = `Byz; coin; bca_params = (fun ~round:_ -> cfg) } in
    let states = Array.make n None in
    let exec =
      Bca_netsim.Async_exec.create ~n ~make:(fun pid ->
          let st, init =
            Stack.create params ~me:pid ~input:(Value.of_bool (inputs.[pid] = '1'))
          in
          states.(pid) <- Some st;
          (Stack.node st, List.map (fun m -> Bca_netsim.Node.Broadcast m) init))
    in
    let count = ref 0 in
    Bca_netsim.Async_exec.set_observer exec (fun env ->
        incr count;
        if !count <= limit then
          Format.printf "%4d  d%-2d  %d -> %d  %a@." !count
            env.Bca_netsim.Async_exec.depth env.Bca_netsim.Async_exec.src
            env.Bca_netsim.Async_exec.dst Stack.pp_msg env.Bca_netsim.Async_exec.payload
        else if !count = limit + 1 then Format.printf "      ... (further deliveries elided)@.");
    let rng = Bca_util.Rng.create seed in
    (match Bca_netsim.Async_exec.run exec (Bca_netsim.Async_exec.random_scheduler rng) with
    | `All_terminated ->
      Format.printf "terminated after %d deliveries, critical path %d broadcasts@." !count
        (Bca_netsim.Async_exec.max_depth exec)
    | _ -> Format.printf "did not terminate@.");
    Array.iteri
      (fun pid st ->
        match Option.bind st Stack.committed with
        | Some v -> Format.printf "party %d committed %a@." pid Value.pp v
        | None -> ())
      states
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run ABA (n=4, byz/strong) and print the delivery-by-delivery transcript.")
    Term.(const action $ limit $ inputs $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bca lint                                                             *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let paths =
    Arg.(
      value
      & pos_all string [ "lib" ]
      & info [] ~docv:"PATHS" ~doc:"Files or directories to lint (default: lib).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let flow =
    Arg.(
      value & flag
      & info [ "flow" ]
          ~doc:
            "Also run the interprocedural wire-taint analysis (rules wire-taint and \
             unbounded-alloc); findings carry a source -> call chain -> sink taint trace.")
  in
  let rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"RULES"
          ~doc:
            "Comma-separated subset of rules to run (determinism, poly-compare, quorum, \
             total-decoding, wire-coverage; with --flow also wire-taint, unbounded-alloc).")
  in
  let action paths json flow rules =
    let module Lint = Bca_lint.Lint in
    let only = Option.map (String.split_on_char ',') rules in
    let flow = if flow then Some Bca_lint.Flow.pass else None in
    match Lint.run ~rules:Bca_lint.Rules.all ?flow ?only ~paths () with
    | report ->
      if json then print_string (Lint.to_json report)
      else Format.printf "%a" Lint.pp_text report;
      if Lint.has_errors report then exit 1
    | exception Invalid_argument e ->
      prerr_endline e;
      exit 2
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check the sources for determinism, protocol-invariant and wire-coverage \
          violations; exits non-zero on any unsuppressed finding.")
    Term.(const action $ paths $ json $ flow $ rules)

(* ------------------------------------------------------------------ *)
(* bca verify                                                           *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let protocol =
    Arg.(
      value & opt string "bca-crash"
      & info [ "protocol" ]
          ~doc:
            "bca-crash (Algorithm 3), gbca-crash (Algorithm 5) or bca-byz (Algorithm 4, \
             bounded, n=4 with an injection-modelled Byzantine party).")
  in
  let inputs =
    Arg.(value & opt string "010" & info [ "inputs" ] ~docv:"BITS" ~doc:"Input bits; length = n.")
  in
  let crashes = Arg.(value & opt int 0 & info [ "crashes" ] ~doc:"Crash events to place.") in
  let cap =
    Arg.(
      value & opt int 300_000
      & info [ "max-configurations" ] ~doc:"Exploration bound (exhaustive below it).")
  in
  let action protocol inputs crashes cap =
    let n = String.length inputs in
    let t = (n - 1) / 2 in
    let input_arr = Array.init n (fun i -> Value.of_bool (inputs.[i] = '1')) in
    let verdict =
      match protocol with
      | "gbca-crash" ->
        Bca_modelcheck.Models.check_gbca_crash ~n ~t ~inputs:input_arr ~crashes
          ~max_configurations:cap ()
      | "bca-byz" ->
        let input_arr =
          if n = 4 then input_arr
          else Array.init 4 (fun i -> if i < n then input_arr.(i) else Value.V0)
        in
        Bca_modelcheck.Models.check_bca_byz ~inputs:input_arr ~max_configurations:cap ()
      | _ ->
        Bca_modelcheck.Models.check_bca_crash ~n ~t ~inputs:input_arr ~crashes
          ~max_configurations:cap ()
    in
    match verdict with
    | Bca_modelcheck.Modelcheck.Verified s ->
      Format.printf
        "VERIFIED: agreement, validity, termination and binding hold over %d reachable          configurations (%d terminal%s)@."
        s.Bca_modelcheck.Modelcheck.configurations s.Bca_modelcheck.Modelcheck.terminals
        (if s.Bca_modelcheck.Modelcheck.truncated then
           "; exploration TRUNCATED at the configuration cap"
         else "; exploration complete");
      Format.printf "%d edges explored, deepest choice sequence %d@.%a@."
        s.Bca_modelcheck.Modelcheck.edges s.Bca_modelcheck.Modelcheck.max_depth
        Bca_obs.Coverage.pp s.Bca_modelcheck.Modelcheck.coverage
    | Bca_modelcheck.Modelcheck.Violated reason ->
      Format.printf "VIOLATED: %s@." reason;
      exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Exhaustively model-check a crash protocol: every delivery order and crash           placement for the given inputs.")
    Term.(const action $ protocol $ inputs $ crashes $ cap)

(* ------------------------------------------------------------------ *)
(* bca fuzz                                                             *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let module F = Bca_experiments.Fuzz_campaign in
  let stack =
    let names =
      String.concat ", " (List.map (fun tg -> tg.F.tg_name) F.all_targets)
    in
    Arg.(
      value & opt string "byz/strong"
      & info [ "stack" ] ~docv:"NAME" ~doc:(Printf.sprintf "Target stack: %s." names))
  in
  let trials =
    Arg.(value & opt int 256 & info [ "trials" ] ~docv:"N" ~doc:"Trial budget.")
  in
  let batch =
    Arg.(value & opt int 16 & info [ "batch" ] ~docv:"N" ~doc:"Trials per scheduler batch.")
  in
  let blind =
    Arg.(
      value & flag
      & info [ "blind" ] ~doc:"Undirected baseline: every plan drawn fresh, no corpus.")
  in
  let corpus_in =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE" ~doc:"Start from a saved corpus instead of the built-in seeds.")
  in
  let corpus_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-corpus" ] ~docv:"FILE" ~doc:"Write the final corpus (guided mode).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "violation-trace" ] ~docv:"FILE"
          ~doc:"On a find, replay the violating trial and write its event stream as JSONL.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N" ~doc:"Domains for batch evaluation (default: auto).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the campaign report as JSON.") in
  let action stack trials batch blind corpus_in corpus_out trace_out domains json seed =
    let target =
      match F.find_target stack with
      | Ok tg -> tg
      | Error e ->
        prerr_endline e;
        exit 1
    in
    let corpus =
      match corpus_in with
      | None -> None
      | Some path -> (
        match F.load_corpus path with
        | Ok c -> Some c
        | Error e ->
          prerr_endline e;
          exit 1)
    in
    let mode = if blind then F.Blind else F.Guided in
    let c = F.run ?domains ~batch ?corpus ~mode ~target ~trials ~seed () in
    if json then begin
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        (Printf.sprintf
           "{ \"target\": %S, \"mode\": %S, \"trials\": %d, \"committed\": %d, \"stalled\": \
            %d,\n  \"deliveries\": %d, \"corpus\": %d, \"coverage\": %s,\n  \"found\": "
           c.F.c_target (F.mode_name c.F.c_mode) c.F.c_trials c.F.c_committed c.F.c_stalled
           c.F.c_deliveries (List.length c.F.c_corpus)
           (Bca_obs.Coverage.to_json c.F.c_coverage));
      (match c.F.c_found with
      | None -> Buffer.add_string buf "null"
      | Some f ->
        Buffer.add_string buf
          (Printf.sprintf
             "{ \"trial\": %d, \"name\": %S, \"seed\": \"0x%Lx\", \"plan\": %S, \
              \"violations\": [%s] }"
             f.F.f_trial f.F.f_name f.F.f_seed
             (Bca_adversary.Chaos.plan_to_string f.F.f_plan)
             (String.concat ", "
                (List.map
                   (fun v -> Printf.sprintf "%S" (Format.asprintf "%a" Monitor.pp_violation v))
                   f.F.f_violations))));
      Buffer.add_string buf " }\n";
      print_string (Buffer.contents buf)
    end
    else Format.printf "%a@." F.pp_campaign c;
    (match corpus_out with
    | Some path when c.F.c_corpus <> [] -> F.save_corpus path c.F.c_corpus
    | Some path -> Format.eprintf "%s: empty corpus (blind mode?), not written@." path
    | None -> ());
    match c.F.c_found with
    | None -> ()
    | Some f ->
      (match trace_out with
      | None -> ()
      | Some path ->
        let cap = Bca_obs.Trace.create () in
        let (_ : F.trial) =
          F.replay ~capture:cap ~target ~plan:f.F.f_plan ~seed:f.F.f_seed ()
        in
        let oc = open_out path in
        Bca_obs.Trace.output oc cap;
        close_out oc;
        Format.printf "violating run replayed to %s (%d events)@." path
          (Bca_obs.Trace.length cap));
      exit 2
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided adversary search: mutate chaos plans against a protocol stack,      keeping plans that reach new coverage; exits 2 if a safety violation is found.")
    Term.(
      const action $ stack $ trials $ batch $ blind $ corpus_in $ corpus_out $ trace_out
      $ domains $ json $ seed_arg)

let () =
  let info =
    Cmd.info "bca" ~version:Version.v
      ~doc:"Binding Crusader Agreement: adaptively secure asynchronous binary agreement."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; cluster_cmd; loadgen_cmd; tables_cmd; attack_cmd; acs_cmd; verify_cmd; trace_cmd;
            lint_cmd; fuzz_cmd ]))

(* One party of a multi-process (G)BCA cluster.

   Spawned n times (once per pid) by `bca cluster` or by
   Bca_transport.Cluster.spawn_cluster; every process is handed the same
   stack, seed and input vector, rebuilds the identical deterministic
   cluster assembly, and drives only its own party over the socket
   transport.  On success prints exactly one

     DECIDED pid=<me> value=<0|1> round=<r> frames=<sent> bytes=<sent>

   line on stdout and exits 0.  With --instances B > 1 it runs the
   pipelined multi-instance executor instead (inputs derived from the
   seed, messages batched per destination) and prints one

     MDECIDED pid=<me> values=<bits> rounds=<csv> frames=.. bytes=.. batches=.. records=..

   line.  Any failure (timeout, no decision, bad arguments) goes to
   stderr with a non-zero exit; losing a TCP bind race (EADDRINUSE) exits
   with the dedicated code the launcher retries on.

   Crash recovery (single-instance only): --wal-dir makes the node keep a
   durable write-ahead log; --recover replays it and rejoins the cluster
   mid-flight, printing a

     RECOVERED pid=<me> records=<k> wal_bytes=<b> replay_s=<s>

   line before the DECIDED line; --kill-at coin:R|round:R makes the node
   SIGKILL itself at that milestone (the supervisor's chaos trigger).

   With --rsm it runs one replica of the pipelined atomic-broadcast log
   instead: the workload is derived from the pid (--rsm-txs transactions
   of --rsm-tx-bytes each), and on committing all --rsm-epochs epochs it
   prints one

     RSMLOG pid=<me> epochs=<e> txs=<k> hash=<fnv64> frames=.. bytes=..

   line; the launcher compares the log digests across replicas. *)

module Types = Bca_core.Types
module Value = Bca_util.Value
module Cluster = Bca_transport.Cluster
module Transport = Bca_transport.Transport
module Batcher = Bca_transport.Batcher

let usage = "bca_node --stack S --n N --t T --me I --seed SEED --inputs BITS \
             --transport unix|tcp --addrs a0,a1,... [--eps E] [--timeout S] [--linger S] \
             [--instances B] [--batch-records R] [--batch-bytes BY] \
             [--sndbuf BY] [--rcvbuf BY] [--no-coalesce] \
             [--wal-dir DIR] [--recover] [--kill-at coin:R|round:R] \
             [--rsm] [--rsm-epochs E] [--rsm-window W] [--rsm-batch-txs K] \
             [--rsm-batch-bytes BY] [--rsm-txs K] [--rsm-tx-bytes BY]"

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("bca_node: " ^ msg); exit 2) fmt

(* --kill-at: SIGKILL ourselves the moment the trigger event fires -
   "coin:R" at our first access of round R's coin (the instant the paper's
   binding property must already hold), "round:R" at our entry into round
   R.  Implemented as a streaming tracer so the kill happens mid-receive,
   after the triggering delivery was WAL'd but before its consequences hit
   the wire - the worst torn state recovery must handle. *)
let parse_kill_at s =
  match String.index_opt s ':' with
  | None -> die "bad --kill-at %S (expected coin:R or round:R)" s
  | Some i -> (
    let kind = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match (kind, int_of_string_opt arg) with
    | "coin", Some r -> `Coin r
    | "round", Some r -> `Round r
    | _ -> die "bad --kill-at %S (expected coin:R or round:R)" s)

let kill_tracer ~me trigger =
  Bca_obs.Trace.stream (fun { Bca_obs.Event.ev; _ } ->
      let fire =
        match (trigger, ev) with
        | `Coin r, Bca_obs.Event.Coin_reveal { pid; round; _ } -> pid = me && round = r
        | `Round r, Bca_obs.Event.Round_enter { pid; round } -> pid = me && round = r
        | _ -> false
      in
      if fire then Unix.kill (Unix.getpid ()) Sys.sigkill)

let parse_tcp_addr s =
  match String.rindex_opt s ':' with
  | None -> die "bad tcp address %S (expected host:port)" s
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | None -> die "bad port in %S" s
    | Some port -> (
      try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
      with Failure _ -> die "bad host in %S" s))

let () =
  let stack = ref "byz-strong" in
  let eps = ref 0.25 in
  let n = ref 0 in
  let t = ref (-1) in
  let me = ref (-1) in
  let seed = ref 1L in
  let inputs = ref "" in
  let transport = ref "unix" in
  let addrs = ref "" in
  let timeout = ref 30.0 in
  let linger = ref 1.0 in
  let instances = ref 1 in
  let batch_records = ref 64 in
  let batch_bytes = ref (32 * 1024) in
  let sndbuf = ref 0 in
  let rcvbuf = ref 0 in
  let no_coalesce = ref false in
  let wal_dir = ref "" in
  let recover = ref false in
  let kill_at = ref "" in
  let rsm = ref false in
  let rsm_epochs = ref 8 in
  let rsm_window = ref 4 in
  let rsm_batch_txs = ref 64 in
  let rsm_batch_bytes = ref (64 * 1024) in
  let rsm_txs = ref 4 in
  let rsm_tx_bytes = ref 32 in
  let spec_list =
    [ ("--stack", Arg.Set_string stack, "Protocol stack (crash-strong .. byz-tsig)");
      ("--eps", Arg.Set_float eps, "Coin goodness for the weak stacks");
      ("--n", Arg.Set_int n, "Cluster size");
      ("--t", Arg.Set_int t, "Fault bound");
      ("--me", Arg.Set_int me, "This party's pid");
      ("--seed", Arg.String (fun s -> seed := Int64.of_string s), "Deterministic seed");
      ("--inputs", Arg.Set_string inputs, "One input bit per party (single-instance mode)");
      ("--transport", Arg.Set_string transport, "unix | tcp");
      ("--addrs", Arg.Set_string addrs, "Comma-separated address table, index = pid");
      ("--timeout", Arg.Set_float timeout, "Seconds before giving up");
      ("--linger", Arg.Set_float linger, "Seconds to keep answering peers after deciding");
      ("--instances", Arg.Set_int instances, "Concurrent agreement instances (default 1)");
      ("--batch-records", Arg.Set_int batch_records, "Flush a batch at this many records");
      ("--batch-bytes", Arg.Set_int batch_bytes, "... or at this many record bytes");
      ("--sndbuf", Arg.Set_int sndbuf, "SO_SNDBUF for every socket (0 = kernel default)");
      ("--rcvbuf", Arg.Set_int rcvbuf, "SO_RCVBUF for every socket (0 = kernel default)");
      ("--no-coalesce", Arg.Set no_coalesce, "Write frame-at-a-time (per-message baseline)");
      ("--wal-dir", Arg.Set_string wal_dir, "Keep a durable write-ahead log in this directory");
      ("--recover", Arg.Set recover, "Replay the WAL and rejoin the cluster mid-flight");
      ("--kill-at", Arg.Set_string kill_at,
       "SIGKILL self at a milestone (coin:R or round:R; crash-recovery testing)");
      ("--rsm", Arg.Set rsm, "Run one replica of the pipelined log instead of a binary stack");
      ("--rsm-epochs", Arg.Set_int rsm_epochs, "Log length in epochs (with --rsm)");
      ("--rsm-window", Arg.Set_int rsm_window, "Concurrent in-flight epochs (with --rsm)");
      ("--rsm-batch-txs", Arg.Set_int rsm_batch_txs, "Proposal cut: max transactions per batch");
      ("--rsm-batch-bytes", Arg.Set_int rsm_batch_bytes, "... or at most this many payload bytes");
      ("--rsm-txs", Arg.Set_int rsm_txs, "Transactions this replica submits (derived workload)");
      ("--rsm-tx-bytes", Arg.Set_int rsm_tx_bytes, "Padded size of each derived transaction") ]
  in
  Arg.parse spec_list (fun a -> die "unexpected argument %S" a) usage;
  let multi = !instances > 1 in
  if !instances < 1 then die "--instances must be >= 1";
  if multi && (!wal_dir <> "" || !recover || !kill_at <> "") then
    die "--wal-dir / --recover / --kill-at require the single-instance executor";
  if !recover && !wal_dir = "" then die "--recover requires --wal-dir";
  if !rsm && (multi || !wal_dir <> "" || !recover || !kill_at <> "") then
    die "--rsm excludes --instances / --wal-dir / --recover / --kill-at";
  if !rsm then begin
    if !inputs <> "" then die "--inputs is meaningless with --rsm (the workload is derived)";
    if !n = 0 then die "--n is required with --rsm"
  end
  else if multi then begin
    if !inputs <> "" then die "--inputs is meaningless with --instances > 1 (inputs are derived)";
    if !n = 0 then die "--n is required with --instances > 1"
  end
  else begin
    if !n = 0 then n := String.length !inputs;
    if String.length !inputs <> !n then
      die "--inputs length %d <> n=%d" (String.length !inputs) !n;
    String.iter (fun c -> if c <> '0' && c <> '1' then die "bad input bit %C" c) !inputs
  end;
  if !me < 0 || !me >= !n then die "--me %d out of range for n=%d" !me !n;
  if !t < 0 then die "--t is required";
  let addr_list = if !addrs = "" then [] else String.split_on_char ',' !addrs in
  if List.length addr_list <> !n then
    die "--addrs has %d entries, expected n=%d" (List.length addr_list) !n;
  let addr_arr =
    match !transport with
    | "unix" -> Array.of_list (List.map (fun p -> Unix.ADDR_UNIX p) addr_list)
    | "tcp" -> Array.of_list (List.map parse_tcp_addr addr_list)
    | other -> die "unknown transport %S (expected unix or tcp)" other
  in
  match Cluster.parse_stack ~eps:!eps !stack with
  | Error e -> die "%s" e
  | Ok spec ->
    let cfg = Types.cfg ~n:!n ~t:!t in
    let opt r = if !r > 0 then Some !r else None in
    let net =
      try
        Transport.Socket.endpoint ~coalesce:(not !no_coalesce) ?sndbuf_bytes:(opt sndbuf)
          ?rcvbuf_bytes:(opt rcvbuf) ~addrs:addr_arr ~me:!me ()
      with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
        prerr_endline
          (Printf.sprintf "bca_node: address in use binding node %d (lost the port race)" !me);
        exit Cluster.addr_in_use_exit
    in
    let result =
      if !rsm then begin
        let batch =
          { Bca_rsm.Rsm.max_txs = !rsm_batch_txs; max_bytes = !rsm_batch_bytes }
        in
        let params =
          Bca_rsm.Rsm.mk_params ~cfg ~coin_seed:!seed ~epochs:!rsm_epochs
            ~window:!rsm_window ~batch ()
        in
        (* every replica submits the whole cluster workload: commit-time
           dedup makes each transaction commit exactly once, and no
           transaction is censored just because its origin replica's
           proposals kept losing the ACS inclusion race (a late-starting
           process in a short fixed-length log) *)
        let txs =
          List.concat
            (List.init !n (fun pid ->
                 Cluster.rsm_workload ~pid ~count:!rsm_txs ~tx_bytes:!rsm_tx_bytes))
        in
        Result.map
          (fun d -> `Rsm d)
          (Cluster.run_rsm_node ~timeout_s:!timeout ~linger_s:!linger params ~txs ~net)
      end
      else if multi then begin
        let policy =
          try Ok (Batcher.policy ~max_records:!batch_records ~max_bytes:!batch_bytes ())
          with Invalid_argument e -> Error e
        in
        match policy with
        | Error e -> Error e
        | Ok policy ->
          Result.map
            (fun d -> `Multi d)
            (Cluster.run_node_multi ~seed:!seed ~timeout_s:!timeout ~linger_s:!linger ~policy
               spec ~cfg ~instances:!instances ~net)
      end
      else begin
        let input_arr = Array.init !n (fun i -> Value.of_bool (!inputs.[i] = '1')) in
        let tracer =
          if !kill_at = "" then Bca_obs.Trace.null
          else kill_tracer ~me:!me (parse_kill_at !kill_at)
        in
        let wal_dir = if !wal_dir = "" then None else Some !wal_dir in
        Result.map
          (fun d -> `Single d)
          (Cluster.run_node ~seed:!seed ~timeout_s:!timeout ~linger_s:!linger ~tracer
             ?wal_dir ~recover:!recover ~on_recover:Cluster.print_recovered spec ~cfg
             ~inputs:input_arr ~net)
      end
    in
    net.Transport.close ();
    (match result with
    | Ok (`Single d) -> Cluster.print_decision d
    | Ok (`Multi d) -> Cluster.print_multi_decision d
    | Ok (`Rsm d) -> Cluster.print_rsm_decision d
    | Error e ->
      prerr_endline ("bca_node: " ^ e);
      exit 1)

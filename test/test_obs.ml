(* Observability layer tests: the event JSONL codec, the trace's logical
   clock, replay bit-identity of a captured violation, metrics aggregation
   laws (associativity / identity, hence domain-count independence), and
   the tracing-disabled noninterference guarantee. *)

module Value = Bca_util.Value
module Event = Bca_obs.Event
module Trace = Bca_obs.Trace
module Metrics = Bca_obs.Metrics
module Types = Bca_core.Types
module Aba = Bca_core.Aba
module Mc = Bca_experiments.Mc
module Campaign = Bca_experiments.Chaos_campaign

(* ------------------------------------------------------------------ *)
(* Event codec                                                          *)
(* ------------------------------------------------------------------ *)

(* one of each constructor, plus hostile strings in the free-text fields *)
let sample_events : Event.t list =
  [ Send { eid = 0; src = 0; dst = 3; depth = 1 };
    Deliver { eid = 7; src = 2; dst = 1; depth = 4 };
    Drop { eid = 12; src = 1; dst = 0 };
    Duplicate { eid = 3; copy = 44 };
    Redirect { eid = 9; dst = 2 };
    Swap { eid1 = 5; eid2 = 6 };
    Crash { pid = 4 };
    Round_enter { pid = 0; round = 17 };
    Quorum { pid = 1; round = 2; phase = "echo2" };
    Coin_reveal { pid = 3; round = 5; value = Value.V1 };
    Commit { pid = 2; round = 3; value = Value.V0 };
    Violation { kind = "agreement"; detail = "p1 decided 0, p2 decided 1" };
    Violation
      { kind = "binding";
        detail = "quote \" backslash \\ newline \n tab \t ctrl \x01 end" };
    Transport { pid = 2; peer = 0; op = "tx"; bytes = 23 };
    Transport { pid = 1; peer = 3; op = "give_up"; bytes = 0 };
    Quorum { pid = 0; round = 1; phase = "" } ]

let test_json_roundtrip () =
  List.iteri
    (fun i ev ->
      let timed = { Event.ts = i * 3; ev } in
      let line = Event.to_json timed in
      Alcotest.(check bool)
        (Printf.sprintf "event %d is one line" i)
        false
        (String.contains line '\n');
      match Event.of_json line with
      | Error msg -> Alcotest.failf "event %d did not parse: %s (%s)" i msg line
      | Ok timed' ->
        Alcotest.(check bool)
          (Printf.sprintf "event %d round-trips" i)
          true
          (Event.equal_timed timed timed'))
    sample_events

let test_json_rejects_garbage () =
  List.iter
    (fun line ->
      match Event.of_json line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage: %s" line)
    [ ""; "{}"; "not json"; {|{"ts":1}|}; {|{"type":"send"}|};
      {|{"ts":1,"type":"warp","eid":0}|}; {|{"ts":1,"type":"send","eid":0|} ]

let test_jsonl_roundtrip () =
  let evs =
    Array.of_list (List.mapi (fun i ev -> { Event.ts = i; ev }) sample_events)
  in
  match Trace.of_jsonl (Trace.events_to_jsonl evs) with
  | Error msg -> Alcotest.failf "JSONL did not parse: %s" msg
  | Ok evs' -> Alcotest.(check bool) "JSONL round-trip" true (evs = evs')

let test_jsonl_error_pinpoints_line () =
  let text = Event.to_json { ts = 0; ev = Crash { pid = 1 } } ^ "\nbroken\n" in
  match Trace.of_jsonl text with
  | Ok _ -> Alcotest.fail "accepted a broken line"
  | Error msg ->
    Alcotest.(check bool)
      "error names line 2" true
      (let re = "line 2" in
       let nh = String.length msg and nn = String.length re in
       let rec go i = i + nn <= nh && (String.sub msg i nn = re || go (i + 1)) in
       go 0)

(* qcheck: arbitrary events round-trip through the codec *)

let gen_string = QCheck2.Gen.(string_size ~gen:(char_range '\x00' '\xff') (int_bound 20))

let gen_value = QCheck2.Gen.(map (fun b -> if b then Value.V1 else Value.V0) bool)

let gen_event : Event.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let i = int_bound 10_000 in
  oneof
    [ map (fun ((eid, src), (dst, depth)) -> Event.Send { eid; src; dst; depth })
        (pair (pair i i) (pair i i));
      map (fun ((eid, src), (dst, depth)) -> Event.Deliver { eid; src; dst; depth })
        (pair (pair i i) (pair i i));
      map (fun (eid, (src, dst)) -> Event.Drop { eid; src; dst }) (pair i (pair i i));
      map (fun (eid, copy) -> Event.Duplicate { eid; copy }) (pair i i);
      map (fun (eid, dst) -> Event.Redirect { eid; dst }) (pair i i);
      map (fun (eid1, eid2) -> Event.Swap { eid1; eid2 }) (pair i i);
      map (fun pid -> Event.Crash { pid }) i;
      map (fun (pid, round) -> Event.Round_enter { pid; round }) (pair i i);
      map (fun ((pid, round), phase) -> Event.Quorum { pid; round; phase })
        (pair (pair i i) gen_string);
      map (fun ((pid, round), value) -> Event.Coin_reveal { pid; round; value })
        (pair (pair i i) gen_value);
      map (fun ((pid, round), value) -> Event.Commit { pid; round; value })
        (pair (pair i i) gen_value);
      map (fun (kind, detail) -> Event.Violation { kind; detail })
        (pair gen_string gen_string);
      map (fun ((pid, peer), (op, bytes)) -> Event.Transport { pid; peer; op; bytes })
        (pair (pair i i) (pair gen_string i)) ]

let gen_timed = QCheck2.Gen.(map2 (fun ts ev -> { Event.ts; ev }) (int_bound 100_000) gen_event)

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"event JSON codec round-trips" gen_timed
    (fun timed ->
      match Event.of_json (Event.to_json timed) with
      | Ok timed' -> Event.equal_timed timed timed'
      | Error msg -> QCheck2.Test.fail_reportf "parse failed: %s" msg)

(* ------------------------------------------------------------------ *)
(* Trace clock                                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_clock () =
  let tr = Trace.create () in
  let deliver eid = Trace.emit tr (Deliver { eid; src = 0; dst = 1; depth = 1 }) in
  Trace.emit tr (Send { eid = 0; src = 0; dst = 1; depth = 1 });
  deliver 0;
  Trace.emit tr (Crash { pid = 2 });
  deliver 1;
  deliver 2;
  let ts = Array.map (fun (e : Event.timed) -> e.ts) (Trace.events tr) in
  Alcotest.(check (array int)) "deliver stamps its own 1-based index"
    [| 0; 1; 1; 2; 3 |] ts;
  Alcotest.(check int) "now = deliveries" 3 (Trace.now tr)

let test_null_trace_inert () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Trace.emit Trace.null (Crash { pid = 0 });
  Alcotest.(check int) "null records nothing" 0 (Trace.length Trace.null);
  Alcotest.(check int) "null clock frozen" 0 (Trace.now Trace.null)

(* ------------------------------------------------------------------ *)
(* Capture and replay                                                   *)
(* ------------------------------------------------------------------ *)

let test_broken_replay_identical () =
  let seed = 0xD15EA5EL in
  let tracer = Trace.create () in
  let report = Campaign.broken_run ~tracer ~seed () in
  let events = Trace.events tracer in
  Alcotest.(check bool) "live run violates" true
    (Campaign.safety_violations report <> []);
  Alcotest.(check bool) "trace non-trivial" true (Array.length events > 10);
  (* the export format itself must survive the trip *)
  (match Trace.of_jsonl (Trace.to_jsonl tracer) with
  | Error msg -> Alcotest.failf "capture did not re-parse: %s" msg
  | Ok evs -> Alcotest.(check bool) "export/import is identity" true (evs = events));
  match Campaign.replay_broken ~seed events with
  | Error msg -> Alcotest.failf "replay refused: %s" msg
  | Ok (report', events') ->
    Alcotest.(check bool) "replayed trace bit-identical" true (events' = events);
    Alcotest.(check int) "same violation count"
      (List.length (Campaign.safety_violations report))
      (List.length (Campaign.safety_violations report'));
    Alcotest.(check int) "same deliveries" report.deliveries report'.deliveries

let test_replay_rejects_wrong_seed () =
  let tracer = Trace.create () in
  let (_ : Campaign.run_report) = Campaign.broken_run ~tracer ~seed:1L () in
  (* a different seed reshuffles the chaos plan, so the logged actions stop
     fitting the rebuilt scenario at some point; divergence must be an
     [Error], never a silent wrong answer *)
  match Campaign.replay_broken ~seed:99L (Trace.events tracer) with
  | Error _ -> ()
  | Ok (_, events') ->
    Alcotest.(check bool) "wrong seed cannot reproduce the trace" false
      (events' = Trace.events tracer)

(* ------------------------------------------------------------------ *)
(* Tracing must not perturb the execution                               *)
(* ------------------------------------------------------------------ *)

let test_tracing_noninterference () =
  let _, spec, cfg = List.hd Campaign.six_stacks in
  List.iter
    (fun seed ->
      let plain = Campaign.run_once ~spec ~cfg ~seed () in
      let tracer = Trace.create () in
      let traced = Campaign.run_once ~tracer ~spec ~cfg ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: identical report with and without tracer" seed)
        true
        (plain = traced))
    [ 5L; 6L; 7L ]

(* ------------------------------------------------------------------ *)
(* Metrics aggregation laws                                             *)
(* ------------------------------------------------------------------ *)

(* Metrics.t is abstract; its full JSON rendering is a faithful observer
   of everything the module reports, so law-checking compares those. *)
let metrics_equal a b = Metrics.to_json a = Metrics.to_json b

(* a plausible little run: rounds advance, messages flow, someone commits *)
let gen_run : Event.timed array QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* rounds = int_range 1 4 in
  let* per_round = int_range 1 6 in
  let* commit_round = int_range 1 rounds in
  let buf = ref [] in
  let ts = ref 0 in
  let push ev = buf := { Event.ts = !ts; ev } :: !buf in
  for r = 1 to rounds do
    push (Round_enter { pid = 0; round = r });
    for k = 0 to per_round - 1 do
      push (Send { eid = (r * 100) + k; src = 0; dst = 1; depth = r });
      incr ts;
      push (Deliver { eid = (r * 100) + k; src = 0; dst = 1; depth = r })
    done;
    push (Coin_reveal { pid = 0; round = r; value = Value.V0 });
    if r = commit_round then push (Commit { pid = 0; round = r; value = Value.V0 })
  done;
  return (Array.of_list (List.rev !buf))

let prop_merge_associative =
  QCheck2.Test.make ~count:200 ~name:"metrics merge is associative with identity"
    QCheck2.Gen.(triple gen_run gen_run gen_run)
    (fun (ra, rb, rc) ->
      let m r = Metrics.add_run Metrics.empty r in
      let a = m ra and b = m rb and c = m rc in
      metrics_equal (Metrics.merge a (Metrics.merge b c))
        (Metrics.merge (Metrics.merge a b) c)
      && metrics_equal (Metrics.merge Metrics.empty a) a
      && metrics_equal (Metrics.merge a Metrics.empty) a
      (* fold-shape independence: one aggregate accumulating runs equals
         merged per-run aggregates *)
      && metrics_equal
           (Metrics.add_run (Metrics.add_run a rb) rc)
           (Metrics.merge a (Metrics.merge b c)))

let test_map_fold_domain_independent () =
  let _, spec, cfg = List.hd Campaign.six_stacks in
  let aggregate domains =
    Mc.map_fold ~domains ~runs:6 ~seed:11L ~init:Metrics.empty ~merge:Metrics.merge
      (fun ~seed ->
        let tracer = Trace.create () in
        let (_ : Campaign.run_report) = Campaign.run_once ~tracer ~spec ~cfg ~seed () in
        Metrics.add_run Metrics.empty (Trace.events tracer))
  in
  Alcotest.(check bool) "1 domain == 3 domains" true
    (metrics_equal (aggregate 1) (aggregate 3))

let test_metrics_counts () =
  let tracer = Trace.create () in
  let (_ : Campaign.run_report) = Campaign.broken_run ~tracer ~seed:7L () in
  let m = Metrics.add_run Metrics.empty (Trace.events tracer) in
  Alcotest.(check int) "one run" 1 (Metrics.runs m);
  Alcotest.(check int) "deliveries match the trace clock"
    (Trace.now tracer) (Metrics.deliveries m);
  Alcotest.(check bool) "violations surfaced" true (Metrics.violations m > 0);
  Alcotest.(check int) "the broken run decides" 1 (Metrics.decided_runs m);
  Alcotest.(check bool) "per-round table non-empty" true (Metrics.per_round m <> [])

let () =
  Alcotest.run "obs"
    [ ( "codec",
        [ Alcotest.test_case "sample events round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_json_rejects_garbage;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl error pinpoints line" `Quick
            test_jsonl_error_pinpoints_line;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip ] );
      ( "trace",
        [ Alcotest.test_case "logical clock" `Quick test_trace_clock;
          Alcotest.test_case "null sink inert" `Quick test_null_trace_inert ] );
      ( "replay",
        [ Alcotest.test_case "broken_run replays bit-identically" `Quick
            test_broken_replay_identical;
          Alcotest.test_case "wrong seed rejected" `Quick
            test_replay_rejects_wrong_seed ] );
      ( "noninterference",
        [ Alcotest.test_case "tracer does not perturb runs" `Quick
            test_tracing_noninterference ] );
      ( "metrics",
        [ QCheck_alcotest.to_alcotest prop_merge_associative;
          Alcotest.test_case "map_fold domain independent" `Quick
            test_map_fold_domain_independent;
          Alcotest.test_case "broken-run counters" `Quick test_metrics_counts ] ) ]

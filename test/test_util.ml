(* Unit and property tests for the bca_util substrate. *)

module Rng = Bca_util.Rng
module Value = Bca_util.Value
module Quorum = Bca_util.Quorum
module Summary = Bca_util.Summary
module Tablefmt = Bca_util.Tablefmt

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.int64 a) (Rng.int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_bool_balance () =
  let rng = Rng.create 9L in
  let trues = ref 0 in
  let total = 10_000 in
  for _ = 1 to total do
    if Rng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int total in
  Alcotest.(check bool) "roughly balanced" true (frac > 0.45 && frac < 0.55)

let test_rng_float_range () =
  let rng = Rng.create 11L in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  let x = Rng.int64 child and y = Rng.int64 parent in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal x y))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13L in
  let xs = List.init 20 Fun.id in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_rng_pick_arr_matches_pick () =
  (* pick_arr must consume the stream exactly like pick on the same data *)
  let a = Rng.create 77L and b = Rng.create 77L in
  let xs = List.init 23 Fun.id in
  let arr = Array.of_list xs in
  for _ = 1 to 200 do
    Alcotest.(check int) "same element" (Rng.pick a xs) (Rng.pick_arr b arr)
  done

let test_rng_int_unbiased_bounds () =
  let rng = Rng.create 31L in
  List.iter
    (fun bound ->
      for _ = 1 to 500 do
        let x = Rng.int_unbiased rng bound in
        Alcotest.(check bool) "in range" true (x >= 0 && x < bound)
      done)
    [ 1; 2; 7; 17; 1 lsl 30; max_int ]

let test_rng_int_unbiased_uniform () =
  (* 3 buckets, 30k draws: each bucket within 5% of a third *)
  let rng = Rng.create 5L in
  let counts = Array.make 3 0 in
  let total = 30_000 in
  for _ = 1 to total do
    let k = Rng.int_unbiased rng 3 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int total in
      Alcotest.(check bool) "roughly a third" true (frac > 0.30 && frac < 0.37))
    counts

let test_min_heap () =
  let module H = Bca_util.Min_heap in
  let h = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  List.iter (H.push h) [ 5; 1; 9; 3; 7; 0; 8; 2; 6; 4 ];
  Alcotest.(check int) "length" 10 (H.length h);
  Alcotest.(check (option int)) "peek" (Some 0) (H.peek_min h);
  let drained = List.init 10 (fun _ -> Option.get (H.pop_min h)) in
  Alcotest.(check (list int)) "sorted drain" (List.init 10 Fun.id) drained;
  Alcotest.(check (option int)) "drained" None (H.pop_min h)

let heap_model =
  QCheck2.Test.make ~count:300 ~name:"min-heap drains sorted"
    QCheck2.Gen.(list (int_bound 1000))
    (fun xs ->
      let module H = Bca_util.Min_heap in
      let h = H.create ~capacity:1 () in
      List.iter (H.push h) xs;
      let rec drain acc = match H.pop_min h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

let test_value_negate () =
  Alcotest.(check bool) "negate 0" true (Value.equal (Value.negate Value.V0) Value.V1);
  Alcotest.(check bool) "negate 1" true (Value.equal (Value.negate Value.V1) Value.V0);
  List.iter
    (fun v ->
      Alcotest.(check bool) "involution" true (Value.equal (Value.negate (Value.negate v)) v))
    Value.both

let test_value_bool_roundtrip () =
  List.iter
    (fun b -> Alcotest.(check bool) "roundtrip" b Value.(to_bool (of_bool b)))
    [ true; false ]

let test_quorum_add_first () =
  let q = Quorum.create () in
  Alcotest.(check bool) "first counts" true (Quorum.add_first q ~pid:1 "a");
  Alcotest.(check bool) "second from same sender ignored" false (Quorum.add_first q ~pid:1 "b");
  Alcotest.(check int) "count a" 1 (Quorum.count q "a");
  Alcotest.(check int) "count b" 0 (Quorum.count q "b");
  Alcotest.(check int) "senders" 1 (Quorum.senders q)

let test_quorum_add_value () =
  let q = Quorum.create () in
  Alcotest.(check bool) "first" true (Quorum.add_value q ~pid:1 "a");
  Alcotest.(check bool) "same pair ignored" false (Quorum.add_value q ~pid:1 "a");
  Alcotest.(check bool) "new value same sender counts" true (Quorum.add_value q ~pid:1 "b");
  Alcotest.(check int) "count a" 1 (Quorum.count q "a");
  Alcotest.(check int) "count b" 1 (Quorum.count q "b");
  Alcotest.(check int) "one sender" 1 (Quorum.senders q)

let test_quorum_all_equal () =
  let q = Quorum.create () in
  Alcotest.(check bool) "empty" true (Quorum.all_equal q = None);
  ignore (Quorum.add_first q ~pid:1 "x" : bool);
  ignore (Quorum.add_first q ~pid:2 "x" : bool);
  Alcotest.(check bool) "all x" true (Quorum.all_equal q = Some "x");
  ignore (Quorum.add_first q ~pid:3 "y" : bool);
  Alcotest.(check bool) "mixed" true (Quorum.all_equal q = None)

let test_quorum_count_if () =
  let q = Quorum.create () in
  ignore (Quorum.add_first q ~pid:1 3 : bool);
  ignore (Quorum.add_first q ~pid:2 5 : bool);
  ignore (Quorum.add_first q ~pid:3 4 : bool);
  Alcotest.(check int) "odd senders" 2 (Quorum.count_if q (fun v -> v mod 2 = 1))

let test_quorum_senders_of () =
  let q = Quorum.create () in
  ignore (Quorum.add_first q ~pid:4 "v" : bool);
  ignore (Quorum.add_first q ~pid:2 "v" : bool);
  ignore (Quorum.add_first q ~pid:9 "w" : bool);
  Alcotest.(check (list int)) "senders of v" [ 2; 4 ]
    (List.sort compare (Quorum.senders_of q "v"))

let quorum_model =
  (* add_first against a reference association-list model *)
  QCheck2.Test.make ~count:500 ~name:"quorum add_first matches model"
    QCheck2.Gen.(list (pair (int_bound 8) (int_bound 3)))
    (fun ops ->
      let q = Quorum.create () in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (pid, v) ->
          let counted = Quorum.add_first q ~pid v in
          let expect = not (Hashtbl.mem model pid) in
          if expect then Hashtbl.replace model pid v;
          if counted <> expect then QCheck2.Test.fail_report "add_first mismatch")
        ops;
      List.for_all
        (fun v ->
          Quorum.count q v
          = Hashtbl.fold (fun _ v' acc -> if v = v' then acc + 1 else acc) model 0)
        [ 0; 1; 2; 3 ])

let test_summary_mean () =
  let s = Summary.of_floats [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Summary.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Summary.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Summary.max;
  Alcotest.(check int) "runs" 4 s.Summary.runs

let test_summary_stddev () =
  let s = Summary.of_floats [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  (* Bessel-corrected sample stddev of this classic set is ~2.138 *)
  Alcotest.(check bool) "stddev" true (abs_float (s.Summary.stddev -. 2.138) < 0.01)

let test_summary_within () =
  let s = Summary.of_ints [ 7; 7; 7 ] in
  Alcotest.(check bool) "within" true (Summary.within s ~expected:7.0 ~tol:0.1);
  Alcotest.(check bool) "not within" false (Summary.within s ~expected:8.0 ~tol:0.5)

let test_histogram () =
  let h = Bca_util.Histogram.of_floats [ 5.0; 5.0; 7.0; 9.0; 5.0 ] in
  Alcotest.(check int) "mode" 5 (Bca_util.Histogram.mode h);
  Alcotest.(check int) "median" 5 (Bca_util.Histogram.percentile h 0.5);
  Alcotest.(check int) "p99" 9 (Bca_util.Histogram.percentile h 0.99);
  let rendered = Format.asprintf "%a" Bca_util.Histogram.pp h in
  Alcotest.(check bool) "renders three buckets" true
    (List.length (String.split_on_char '\n' rendered) >= 3)

let test_tablefmt_shape () =
  let out = Tablefmt.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "raises on ragged rows" true
    (try
       ignore (Tablefmt.render ~header:[ "a" ] [ [ "1"; "2" ] ] : string);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "distinct seeds" `Quick test_rng_distinct_seeds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick_arr matches pick" `Quick test_rng_pick_arr_matches_pick;
          Alcotest.test_case "int_unbiased bounds" `Quick test_rng_int_unbiased_bounds;
          Alcotest.test_case "int_unbiased uniform" `Quick test_rng_int_unbiased_uniform ] );
      ( "min_heap",
        [ Alcotest.test_case "basic" `Quick test_min_heap;
          QCheck_alcotest.to_alcotest heap_model ] );
      ( "value",
        [ Alcotest.test_case "negate" `Quick test_value_negate;
          Alcotest.test_case "bool roundtrip" `Quick test_value_bool_roundtrip ] );
      ( "quorum",
        [ Alcotest.test_case "add_first" `Quick test_quorum_add_first;
          Alcotest.test_case "add_value" `Quick test_quorum_add_value;
          Alcotest.test_case "all_equal" `Quick test_quorum_all_equal;
          Alcotest.test_case "count_if" `Quick test_quorum_count_if;
          Alcotest.test_case "senders_of" `Quick test_quorum_senders_of;
          QCheck_alcotest.to_alcotest quorum_model ] );
      ( "summary",
        [ Alcotest.test_case "mean/min/max" `Quick test_summary_mean;
          Alcotest.test_case "stddev" `Quick test_summary_stddev;
          Alcotest.test_case "within" `Quick test_summary_within ] );
      ("histogram", [ Alcotest.test_case "mode/percentile" `Quick test_histogram ]);
      ("tablefmt", [ Alcotest.test_case "shape" `Quick test_tablefmt_shape ]) ]

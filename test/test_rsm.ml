(* The windowed replicated log: identical duplicate-free logs under the
   pipelined executor, cross-replica dedup, bounded future buffering,
   prefix consistency under chaos plans (kills included), and the
   loopback-vs-netsim bit-identity oracle. *)

module Rsm = Bca_rsm.Rsm
module Types = Bca_core.Types
module Async = Bca_netsim.Async_exec
module Monitor = Bca_netsim.Monitor
module Node = Bca_netsim.Node
module Chaos = Bca_adversary.Chaos
module Rng = Bca_util.Rng

let mk_params ?(window = 3) ?(epochs = 6) ~seed () =
  Rsm.mk_params
    ~cfg:(Types.cfg ~n:4 ~t:1)
    ~coin_seed:(Int64.add seed 31L) ~epochs ~window ()

let run_rsm ?(params = fun seed -> mk_params ~seed ()) ?(submit = fun _ _ -> ())
    ?(silent = []) ~seed () =
  let n = 4 in
  let states = Array.make n None in
  let exec =
    Async.create ~n ~make:(fun pid ->
        if List.mem pid silent then (Node.silent, [])
        else begin
          let st, init = Rsm.create (params seed) ~me:pid in
          states.(pid) <- Some st;
          submit pid st;
          (Rsm.node st, List.map (fun m -> Node.Broadcast m) init)
        end)
  in
  let rng = Rng.create seed in
  let outcome = Async.run ~max_deliveries:2_000_000 exec (Async.random_scheduler rng) in
  (outcome, states)

let default_submit pid st =
  ignore (Rsm.submit st (Printf.sprintf "tx-%d-a" pid) : bool);
  ignore (Rsm.submit st (Printf.sprintf "tx-%d-b" pid) : bool)

let check_logs states =
  let logs =
    Array.to_list states |> List.filter_map (fun st -> Option.map Rsm.log st)
  in
  (match logs with
  | l :: rest ->
    List.iter (fun l' -> Alcotest.(check (list string)) "identical logs" l l') rest
  | [] -> Alcotest.fail "no logs");
  let l = match logs with l :: _ -> l | [] -> [] in
  Alcotest.(check (list string)) "no duplicates"
    (List.sort_uniq String.compare l)
    (List.sort String.compare l);
  l

let test_all_honest () =
  let outcome, states = run_rsm ~submit:default_submit ~seed:1L () in
  Alcotest.(check bool) "terminated" true (outcome = `All_terminated);
  let l = check_logs states in
  Alcotest.(check bool) "transactions committed" true (List.length l >= 6);
  Array.iter
    (fun st ->
      match st with
      | Some st -> Alcotest.(check int) "all epochs" 6 (Rsm.committed_epochs st)
      | None -> ())
    states

(* A transaction handed to every replica commits exactly once - the
   cross-replica dedup satellite. *)
let test_cross_replica_dedup () =
  let submit pid st =
    ignore (Rsm.submit st "shared-tx" : bool);
    ignore (Rsm.submit st (Printf.sprintf "tx-%d" pid) : bool)
  in
  let outcome, states = run_rsm ~submit ~seed:5L () in
  Alcotest.(check bool) "terminated" true (outcome = `All_terminated);
  let l = check_logs states in
  let shared = List.filter (String.equal "shared-tx") l in
  Alcotest.(check int) "shared tx exactly once" 1 (List.length shared)

(* Local duplicate suppression at submission time. *)
let test_submit_dedup () =
  let p = mk_params ~seed:9L () in
  let st, _ = Rsm.create p ~me:0 in
  Alcotest.(check bool) "fresh accepted" true (Rsm.submit st "a");
  Alcotest.(check bool) "duplicate rejected" false (Rsm.submit st "a");
  Alcotest.(check int) "queued once" 1 (Rsm.pending_txs st)

(* Batch cut policy: with [max_txs = 2], no committed epoch ever applies
   more than two of the lone submitter's transactions - proposals are cut
   off the queue two at a time. *)
let test_batch_cut () =
  let batch_sizes = ref [] in
  let n = 4 in
  let states = Array.make n None in
  let params =
    Rsm.mk_params ~cfg:(Types.cfg ~n ~t:1) ~coin_seed:3L ~epochs:8 ~window:1
      ~batch:{ Rsm.max_txs = 2; max_bytes = 1_000 } ()
  in
  let exec =
    Async.create ~n ~make:(fun pid ->
        let on_commit ~epoch:_ txs =
          if pid = 0 then batch_sizes := List.length txs :: !batch_sizes
        in
        let st, init = Rsm.create ~on_commit params ~me:pid in
        states.(pid) <- Some st;
        if pid = 0 then
          List.iter (fun tx -> ignore (Rsm.submit st tx : bool)) [ "w"; "x"; "y"; "z" ];
        (Rsm.node st, List.map (fun m -> Node.Broadcast m) init))
  in
  let outcome = Async.run ~max_deliveries:2_000_000 exec (Async.random_scheduler (Rng.create 3L)) in
  Alcotest.(check bool) "terminated" true (outcome = `All_terminated);
  List.iter
    (fun k -> Alcotest.(check bool) "epoch applies at most max_txs" true (k <= 2))
    !batch_sizes;
  let l = check_logs states in
  Alcotest.(check (list string)) "everything committed"
    [ "w"; "x"; "y"; "z" ] (List.sort String.compare l)

let test_netstring_roundtrip () =
  let txs = [ "plain"; ""; "with:colon"; "with;semicolon"; String.make 3 '\000' ] in
  Alcotest.(check (list string)) "roundtrip" txs (Rsm.decode_batch (Rsm.encode_batch txs));
  (* malformed tails decode to the well-formed prefix, never raise *)
  Alcotest.(check (list string)) "garbage" [] (Rsm.decode_batch "zzzz");
  Alcotest.(check (list string)) "truncated" [ "ab" ] (Rsm.decode_batch "2:ab99:cd")

let test_silent_replica () =
  (* one replica never participates; the rest keep committing *)
  let outcome, states =
    run_rsm ~submit:default_submit ~silent:[ 3 ] ~seed:2L ()
  in
  Alcotest.(check bool) "terminated" true (outcome = `All_terminated);
  let l = check_logs states in
  Alcotest.(check bool) "progress without the silent replica" true (List.length l >= 4);
  Alcotest.(check bool) "silent replica's txs absent" true
    (List.for_all (fun tx -> not (String.length tx > 3 && tx.[3] = '3')) l)

(* ------------------------------------------------------------------ *)
(* Prefix consistency under chaos                                       *)
(* ------------------------------------------------------------------ *)

let is_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> String.equal x y && go a' b'
  in
  go a b

(* 200+ generated chaos plans - crashes, partitions, link faults and
   kill/restart faults - against the windowed log.  Safety statement:
   whatever the adversary does within budget, the logs of honest
   still-standing replicas are prefixes of one another (termination is
   not claimed: a plan may drop honest traffic forever). *)
let prop_prefix_consistency =
  QCheck2.Test.make ~count:220 ~name:"rsm prefix consistency under chaos"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let seed64 = Int64.of_int seed in
      let n = 4 in
      let plan =
        Chaos.gen ~kills:1 (Rng.create seed64) ~n ~max_faults:1 ~allow_corrupt:false
      in
      let params =
        Rsm.mk_params ~cfg:(Types.cfg ~n ~t:1)
          ~coin_seed:(Int64.add seed64 7L) ~epochs:3 ~window:2 ()
      in
      let states = Array.make n None in
      let exec =
        Async.create ~n ~make:(fun pid ->
            let st, init = Rsm.create params ~me:pid in
            states.(pid) <- Some st;
            ignore (Rsm.submit st (Printf.sprintf "tx-%d-%d" seed pid) : bool);
            (Rsm.node st, List.map (fun m -> Node.Broadcast m) init))
      in
      let ch = Chaos.start plan exec in
      ignore (Chaos.run ~max_deliveries:300_000 ch : Async.outcome);
      let faulty = Chaos.faulty_parties plan in
      let logs = ref [] in
      Array.iteri
        (fun pid st ->
          if not (List.mem pid faulty) then
            match st with Some st -> logs := Rsm.log st :: !logs | None -> ())
        states;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if not (is_prefix a b || is_prefix b a) then
                QCheck2.Test.fail_reportf
                  "logs diverge under plan:@.%a@.%s@.vs@.%s" Chaos.pp plan
                  (String.concat ";" a) (String.concat ";" b))
            !logs)
        !logs;
      true)

(* ------------------------------------------------------------------ *)
(* Bounded buffering                                                    *)
(* ------------------------------------------------------------------ *)

(* A flood of far-future traffic is shed, observed, and bounded: held
   messages never exceed the configured cap. *)
let test_buffer_bounded () =
  let cfg = Types.cfg ~n:4 ~t:1 in
  let p =
    Rsm.mk_params ~cfg ~coin_seed:13L ~epochs:64 ~window:2 ~buffer_slack:2
      ~buffer_cap:3 ()
  in
  let drops = ref 0 in
  let tracer =
    Bca_obs.Trace.stream (fun { Bca_obs.Event.ev; _ } ->
        match ev with Bca_obs.Event.Buffer_drop _ -> incr drops | _ -> ())
  in
  let st, _ = Rsm.create ~tracer p ~me:0 in
  (* epochs 0..1 open; 2..3 bufferable; cap 3 messages per epoch *)
  for i = 0 to 9 do
    let m =
      Rsm.Epoch (2, Bca_acs.Acs.Rbc (1, Bca_baselines.Bracha.Echo (string_of_int i)))
    in
    ignore (Rsm.handle st ~from:1 m : Rsm.msg list)
  done;
  Alcotest.(check int) "per-epoch cap holds" 3 (Rsm.buffered_msgs st);
  Alcotest.(check int) "overflow shed with events" 7 !drops;
  (* far beyond the slack horizon: shed outright *)
  let far = Rsm.Epoch (40, Bca_acs.Acs.Rbc (1, Bca_baselines.Bracha.Echo "far")) in
  ignore (Rsm.handle st ~from:1 far : Rsm.msg list);
  Alcotest.(check int) "far-future shed" 8 !drops;
  Alcotest.(check int) "held unchanged" 3 (Rsm.buffered_msgs st)

(* ------------------------------------------------------------------ *)
(* Observability                                                        *)
(* ------------------------------------------------------------------ *)

let test_slot_commit_events () =
  let order = ref [] in
  let commits = ref [] in
  let params seed =
    ignore seed;
    mk_params ~window:3 ~epochs:4 ~seed:21L ()
  in
  let n = 4 in
  let states = Array.make n None in
  let tracer_events = ref 0 in
  let exec =
    Async.create ~n ~make:(fun pid ->
        let tracer =
          if pid = 0 then
            Bca_obs.Trace.stream (fun { Bca_obs.Event.ev; _ } ->
                match ev with
                | Bca_obs.Event.Slot_commit { slot; _ } ->
                  incr tracer_events;
                  order := slot :: !order
                | _ -> ())
          else Bca_obs.Trace.null
        in
        let on_commit ~epoch txs = if pid = 0 then commits := (epoch, txs) :: !commits in
        let st, init = Rsm.create ~on_commit ~tracer (params 21L) ~me:pid in
        states.(pid) <- Some st;
        ignore (Rsm.submit st (Printf.sprintf "tx-%d" pid) : bool);
        (Rsm.node st, List.map (fun m -> Node.Broadcast m) init))
  in
  let outcome = Async.run ~max_deliveries:2_000_000 exec (Async.random_scheduler (Rng.create 21L)) in
  Alcotest.(check bool) "terminated" true (outcome = `All_terminated);
  Alcotest.(check (list int)) "slots committed in order" [ 0; 1; 2; 3 ]
    (List.rev !order);
  Alcotest.(check int) "one event per epoch" 4 !tracer_events;
  let committed = List.concat_map snd (List.rev !commits) in
  (match states.(0) with
  | Some st ->
    Alcotest.(check (list string)) "callback stream equals log" (Rsm.log st) committed
  | None -> Alcotest.fail "replica 0 missing")

let () =
  Alcotest.run "rsm"
    [ ( "windowed log",
        [ Alcotest.test_case "all honest" `Quick test_all_honest;
          Alcotest.test_case "cross-replica dedup" `Quick test_cross_replica_dedup;
          Alcotest.test_case "submit dedup" `Quick test_submit_dedup;
          Alcotest.test_case "batch cut" `Quick test_batch_cut;
          Alcotest.test_case "netstring roundtrip" `Quick test_netstring_roundtrip;
          Alcotest.test_case "silent replica" `Quick test_silent_replica ] );
      ( "chaos",
        [ QCheck_alcotest.to_alcotest prop_prefix_consistency;
          Alcotest.test_case "bounded buffering" `Quick test_buffer_bounded ] );
      ( "observability",
        [ Alcotest.test_case "slot-commit events" `Quick test_slot_commit_events ] ) ]

(* Tests for Algorithm 3 (BCA-Crash): unit-level clause checks, and
   property tests for agreement, weak validity, termination, round bound,
   and - the paper's new property - binding, checked at the moment the
   first party decides. *)

module Value = Bca_util.Value
module Rng = Bca_util.Rng
module Types = Bca_core.Types
module B = Bca_core.Bca_crash
module Async = Bca_netsim.Async_exec
module Node = Bca_netsim.Node
module Cluster = Bca_test_helpers.Cluster
module H = Cluster.Bca (B)

let cfg = Types.cfg ~n:5 ~t:2

let params ~me:_ = cfg

(* ------------------------------------------------------------------ *)
(* Unit: drive one party's clauses by hand.                             *)
(* ------------------------------------------------------------------ *)

let test_unit_echo_on_unanimous_vals () =
  let p = B.create cfg ~me:0 in
  let init = B.start p ~input:Value.V0 in
  Alcotest.(check int) "one initial broadcast" 1 (List.length init);
  ignore (B.handle p ~from:0 (B.MVal Value.V0) : B.msg list);
  ignore (B.handle p ~from:1 (B.MVal Value.V0) : B.msg list);
  Alcotest.(check bool) "no echo before quorum" true (B.echoed p = None);
  let out = B.handle p ~from:2 (B.MVal Value.V0) in
  Alcotest.(check bool) "echoes the value" true
    (match out with [ B.MEcho (Types.Val Value.V0) ] -> true | _ -> false)

let test_unit_echo_bot_on_mixed_vals () =
  let p = B.create cfg ~me:0 in
  ignore (B.start p ~input:Value.V0 : B.msg list);
  ignore (B.handle p ~from:0 (B.MVal Value.V0) : B.msg list);
  ignore (B.handle p ~from:1 (B.MVal Value.V1) : B.msg list);
  let out = B.handle p ~from:2 (B.MVal Value.V0) in
  Alcotest.(check bool) "echoes bottom" true
    (match out with [ B.MEcho Types.Bot ] -> true | _ -> false)

let test_unit_echo_fires_once () =
  let p = B.create cfg ~me:0 in
  ignore (B.start p ~input:Value.V0 : B.msg list);
  List.iter
    (fun from -> ignore (B.handle p ~from (B.MVal Value.V0) : B.msg list))
    [ 0; 1; 2 ];
  let out = B.handle p ~from:3 (B.MVal Value.V0) in
  Alcotest.(check int) "no second echo" 0 (List.length out)

let test_unit_decide_value () =
  let p = B.create cfg ~me:0 in
  ignore (B.start p ~input:Value.V1 : B.msg list);
  List.iter
    (fun from -> ignore (B.handle p ~from (B.MEcho (Types.Val Value.V1)) : B.msg list))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "decided v" true
    (match B.decision p with Some (Types.Val Value.V1) -> true | _ -> false)

let test_unit_decide_bot_on_mixed_echoes () =
  let p = B.create cfg ~me:0 in
  ignore (B.start p ~input:Value.V1 : B.msg list);
  ignore (B.handle p ~from:1 (B.MEcho (Types.Val Value.V1)) : B.msg list);
  ignore (B.handle p ~from:2 (B.MEcho Types.Bot) : B.msg list);
  ignore (B.handle p ~from:3 (B.MEcho (Types.Val Value.V1)) : B.msg list);
  Alcotest.(check bool) "decided bottom" true
    (match B.decision p with Some Types.Bot -> true | _ -> false)

let test_unit_decision_before_start () =
  (* all clauses except the initial send are input-independent, so an
     instance can decide purely from received traffic *)
  let p = B.create cfg ~me:0 in
  List.iter
    (fun from -> ignore (B.handle p ~from (B.MEcho (Types.Val Value.V0)) : B.msg list))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "decided pre-start" true (B.decision p <> None)

let test_resilience_check () =
  Alcotest.(check bool) "n=4 t=2 rejected" true
    (try
       ignore (B.create (Types.cfg ~n:4 ~t:2) ~me:0 : B.t);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties under random schedules and crashes.                      *)
(* ------------------------------------------------------------------ *)

let gen_run =
  QCheck2.Gen.(
    triple (Cluster.inputs_gen 5) (int_bound 10_000)
      (list_size (int_bound 2) (pair (int_bound 4) (int_bound 6))))

let dedup_crashes crashes =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) crashes

let prop_agreement_validity_termination =
  QCheck2.Test.make ~count:300 ~name:"agreement + weak validity + termination"
    gen_run
    (fun (inputs, seed, crashes) ->
      let crashes = dedup_crashes crashes in
      let o = H.run ~params ~n:5 ~inputs ~crashes ~seed:(Int64.of_int seed) () in
      let decided =
        Array.to_list o.H.decisions |> List.filter_map Fun.id
      in
      let honest_count = 5 - List.length crashes in
      if o.H.exec_outcome <> `All_terminated then QCheck2.Test.fail_report "no termination";
      if List.length decided < honest_count then QCheck2.Test.fail_report "missing decision";
      if not (Cluster.check_crusader_agreement o.H.decisions) then
        QCheck2.Test.fail_report "agreement violated";
      (* weak validity: if ALL parties (even crashed ones) share an input,
         that input is the only decision *)
      if Cluster.all_same_inputs inputs then
        List.for_all (fun d -> Types.cvalue_equal d (Types.Val inputs.(0))) decided
      else true)

module HL = Cluster.Bca_lockstep (B)

let prop_round_bound =
  (* phase counting needs the lockstep executor: under arbitrary async
     schedules the knowledge-depth metric legitimately exceeds the phase
     count (a late echo is emitted after other echoes were heard) *)
  QCheck2.Test.make ~count:200 ~name:"decides within 2 communication rounds"
    (Cluster.inputs_gen 5)
    (fun inputs ->
      let res, decisions = HL.run ~params ~n:5 ~inputs () in
      res.Bca_netsim.Lockstep.outcome = `All_terminated
      && res.Bca_netsim.Lockstep.steps <= B.max_broadcast_steps
      && Array.for_all (fun d -> d <> None) decisions)

(* Binding (Definition B.1): freeze the execution when the first party
   decides, compute which values could still gather an n-t echo quorum, and
   check (a) at most one such value exists, (b) the rest of the run decides
   only inside the allowed set.

   The witness must model what a party can still do exactly.  A party can
   still contribute an echo of [v] iff it has not echoed, has not crashed
   {e yet} (a party scheduled to crash later than tau is still live at
   tau), has received no [val] for the other value (echoes fire on its
   first [n - t] vals, so one contrary val pins it to bottom or the other
   value), and at least [n - t] parties hold input [v] at all (every val
   is broadcast at start, before any crash, so input counts bound what any
   party can ever collect). *)
let prop_binding =
  QCheck2.Test.make ~count:300 ~name:"binding at first decision" gen_run
    (fun (inputs, seed, crashes) ->
      let crashes = dedup_crashes crashes in
      let n = 5 in
      let q = Types.quorum cfg in
      let states : B.t option array = Array.make n None in
      let recv_count = Array.make n 0 in
      let make pid =
        let inst = B.create cfg ~me:pid in
        states.(pid) <- Some inst;
        let init = B.start inst ~input:inputs.(pid) in
        let node =
          Node.make
            ~receive:(fun ~src m ->
              List.map (fun m -> Node.Broadcast m) (B.handle inst ~from:src m))
            ~terminated:(fun () -> B.decision inst <> None)
            ()
        in
        let node =
          match List.assoc_opt pid crashes with
          | Some after -> Bca_adversary.Faults.crash_after ~deliveries:after node
          | None -> node
        in
        (* count every delivery, crashed or not, so the witness knows which
           scheduled crashes have actually happened by tau *)
        let node =
          { node with
            Node.receive =
              (fun ~src m ->
                recv_count.(pid) <- recv_count.(pid) + 1;
                node.Node.receive ~src m) }
        in
        (node, List.map (fun m -> Node.Broadcast m) init)
      in
      let exec = Async.create ~n ~make in
      let rng = Rng.create (Int64.of_int seed) in
      let someone_decided _ =
        Array.exists
          (fun st -> match st with Some st -> B.decision st <> None | None -> false)
          states
      in
      let _ = Async.run ~stop_when:someone_decided exec (Async.random_scheduler rng) in
      if not (someone_decided exec) then true (* everyone crashed first *)
      else begin
        (* witness computation at time tau *)
        let crashed_by_tau pid =
          match List.assoc_opt pid crashes with
          | Some after -> recv_count.(pid) >= after
          | None -> false
        in
        let echoed v =
          Array.to_list states
          |> List.filter (fun st ->
                 match st with
                 | Some st -> (match B.echoed st with Some cv -> Types.cvalue_equal cv v | None -> false)
                 | None -> false)
          |> List.length
        in
        let input_count v =
          Array.fold_left (fun acc i -> if Value.equal i v then acc + 1 else acc) 0 inputs
        in
        let can_still_echo pid v =
          (not (crashed_by_tau pid))
          && (match states.(pid) with
             | Some st -> B.echoed st = None && B.val_count st (Value.negate v) = 0
             | None -> false)
          && input_count v >= q
        in
        let possible v =
          let open_for_v =
            List.length (List.filter (fun pid -> can_still_echo pid v) (List.init n Fun.id))
          in
          echoed (Types.Val v) + open_for_v >= q
        in
        let allowed = List.filter possible Value.both in
        if List.length allowed > 1 then QCheck2.Test.fail_report "binding violated at tau";
        let _ = Async.run exec (Async.random_scheduler rng) in
        Array.for_all
          (fun st ->
            match st with
            | Some st ->
              (match B.decision st with
              | Some (Types.Val v) -> List.exists (Value.equal v) allowed
              | Some Types.Bot | None -> true)
            | None -> true)
          states
      end)

let () =
  Alcotest.run "bca_crash"
    [ ( "unit",
        [ Alcotest.test_case "echo on unanimous vals" `Quick test_unit_echo_on_unanimous_vals;
          Alcotest.test_case "echo bottom on mixed vals" `Quick test_unit_echo_bot_on_mixed_vals;
          Alcotest.test_case "echo fires once" `Quick test_unit_echo_fires_once;
          Alcotest.test_case "decide value" `Quick test_unit_decide_value;
          Alcotest.test_case "decide bottom" `Quick test_unit_decide_bot_on_mixed_echoes;
          Alcotest.test_case "decision before start" `Quick test_unit_decision_before_start;
          Alcotest.test_case "resilience check" `Quick test_resilience_check ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_agreement_validity_termination;
          QCheck_alcotest.to_alcotest prop_round_bound;
          QCheck_alcotest.to_alcotest prop_binding ] ) ]

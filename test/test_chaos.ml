(* Chaos layer tests: the invariant monitor, fault-plan generation and
   gating (fairness budgets, healing partitions, crash schedules), and the
   chaos Monte-Carlo campaign over the six stacks - including the
   deliberately broken stack the monitor must catch. *)

module Value = Bca_util.Value
module Rng = Bca_util.Rng
module Types = Bca_core.Types
module Aba = Bca_core.Aba
module Async = Bca_netsim.Async_exec
module Monitor = Bca_netsim.Monitor
module Chaos = Bca_adversary.Chaos
module Campaign = Bca_experiments.Chaos_campaign

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Monitor unit tests (driven by hand, no network)                      *)
(* ------------------------------------------------------------------ *)

let test_monitor_agreement () =
  let decisions = Array.make 3 None in
  let m =
    Monitor.create ~n:3 ~inputs:[| Value.V0; Value.V1; Value.V0 |]
      ~decision:(fun p -> decisions.(p))
      ()
  in
  decisions.(0) <- Some Value.V0;
  Monitor.on_delivery m;
  Alcotest.(check bool) "single decision ok" true (Monitor.ok m);
  Alcotest.(check bool) "first recorded" true
    (match Monitor.first_decision m with Some (0, Value.V0, _) -> true | _ -> false);
  decisions.(1) <- Some Value.V1;
  Monitor.on_delivery m;
  Alcotest.(check bool) "disagreement flagged" false (Monitor.safety_ok m);
  Alcotest.(check bool) "it is an agreement violation" true
    (List.exists
       (function Monitor.Agreement _ -> true | _ -> false)
       (Monitor.violations m))

let test_monitor_validity () =
  let decisions = Array.make 3 None in
  let m =
    Monitor.create ~n:3 ~inputs:(Array.make 3 Value.V1)
      ~decision:(fun p -> decisions.(p))
      ()
  in
  decisions.(2) <- Some Value.V0;
  Monitor.on_delivery m;
  Alcotest.(check bool) "non-unanimous decision flagged" true
    (List.exists
       (function
         | Monitor.Validity { p = 2; decided = Value.V0; _ } -> true
         | _ -> false)
       (Monitor.violations m))

let test_monitor_ignores_dishonest () =
  let decisions = Array.make 3 None in
  let m =
    Monitor.create ~n:3
      ~honest:(fun p -> p <> 1)
      ~inputs:[| Value.V1; Value.V0; Value.V1 |]
      ~decision:(fun p -> decisions.(p))
      ()
  in
  (* the corrupt party "deciding" the other value must not count, neither
     for agreement nor against the (honest-)unanimous input *)
  decisions.(0) <- Some Value.V1;
  decisions.(1) <- Some Value.V0;
  Monitor.on_delivery m;
  Alcotest.(check bool) "corrupt decision ignored" true (Monitor.ok m)

let test_monitor_binding_first_only () =
  (* the coin check applies to the first decision only: laggards commit via
     relayed committed(v) at their own (earlier) round whose coin may
     differ *)
  let decisions = Array.make 2 None and rounds = Array.make 2 None in
  let coin ~round ~pid:_ = if round = 1 then Value.V1 else Value.V0 in
  let m =
    Monitor.create ~n:2 ~inputs:[| Value.V0; Value.V1 |]
      ~decision:(fun p -> decisions.(p))
      ~commit_round:(fun p -> rounds.(p))
      ~coin_value:coin ()
  in
  decisions.(0) <- Some Value.V1;
  rounds.(0) <- Some 1;
  Monitor.on_delivery m;
  Alcotest.(check bool) "first commit matches its coin" true (Monitor.ok m);
  decisions.(1) <- Some Value.V1;
  rounds.(1) <- Some 2;
  (* round-2 coin is V0 *)
  Monitor.on_delivery m;
  Alcotest.(check bool) "laggard not coin-checked" true (Monitor.ok m)

let test_monitor_binding_violation () =
  let decisions = Array.make 2 None and rounds = Array.make 2 None in
  let m =
    Monitor.create ~n:2 ~inputs:[| Value.V0; Value.V1 |]
      ~decision:(fun p -> decisions.(p))
      ~commit_round:(fun p -> rounds.(p))
      ~coin_value:(fun ~round:_ ~pid:_ -> Value.V1)
      ()
  in
  decisions.(0) <- Some Value.V0;
  rounds.(0) <- Some 3;
  Monitor.on_delivery m;
  Alcotest.(check bool) "first commit against the coin flagged" true
    (List.exists
       (function
         | Monitor.Binding { p = 0; round = 3; decided = Value.V0; coin = Value.V1 } ->
           true
         | _ -> false)
       (Monitor.violations m))

let test_monitor_watchdog () =
  let progress = ref 0 in
  let m =
    Monitor.create ~n:2 ~inputs:[| Value.V0; Value.V0 |]
      ~decision:(fun _ -> None)
      ~progress:(fun () -> !progress)
      ~stall_window:5 ()
  in
  for _ = 1 to 4 do
    Monitor.on_delivery m
  done;
  Alcotest.(check bool) "below the window: fine" true (Monitor.ok m);
  incr progress;
  (* the first delivery below observes the new progress and resets the
     counter; the next 5 exhaust the window *)
  for _ = 1 to 6 do
    Monitor.on_delivery m
  done;
  Alcotest.(check bool) "stall flagged" true
    (List.exists
       (function Monitor.Stalled _ -> true | _ -> false)
       (Monitor.violations m));
  Alcotest.(check bool) "a stall is not a safety violation" true (Monitor.safety_ok m);
  let before = List.length (Monitor.violations m) in
  for _ = 1 to 20 do
    Monitor.on_delivery m
  done;
  Alcotest.(check int) "reported once" before (List.length (Monitor.violations m))

(* ------------------------------------------------------------------ *)
(* Plan generation                                                      *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let p1 = Chaos.gen (Rng.create 42L) ~n:5 ~max_faults:2 ~allow_corrupt:true in
  let p2 = Chaos.gen (Rng.create 42L) ~n:5 ~max_faults:2 ~allow_corrupt:true in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check string) "same serialization" (Chaos.to_string p1) (Chaos.to_string p2);
  let p3 = Chaos.gen (Rng.create 43L) ~n:5 ~max_faults:2 ~allow_corrupt:true in
  Alcotest.(check bool) "different seed, different plan" true (p1 <> p3)

let test_gen_bounds () =
  for seed = 0 to 39 do
    let allow_corrupt = seed mod 2 = 0 in
    let plan =
      Chaos.gen (Rng.create (Int64.of_int seed)) ~n:5 ~max_faults:2 ~allow_corrupt
    in
    Alcotest.(check bool) "faults within bound" true
      (List.length (Chaos.faulty_parties plan) <= 2);
    if not allow_corrupt then
      Alcotest.(check (list int)) "no corruption for crash stacks" [] plan.Chaos.corrupt;
    List.iter
      (fun (p : Chaos.partition) ->
        Alcotest.(check bool) "partition carries a heal point" true
          (p.Chaos.heal_delivery > p.Chaos.from_delivery))
      plan.Chaos.partitions;
    List.iter
      (fun (c : Chaos.crash) ->
        Alcotest.(check bool) "victim in range" true (c.Chaos.victim >= 0 && c.Chaos.victim < 5))
      plan.Chaos.crashes
  done

(* ------------------------------------------------------------------ *)
(* Executing plans against real stacks                                  *)
(* ------------------------------------------------------------------ *)

(* Run [spec] under a fixed [plan] with a monitor attached; returns the
   violations, chaos stats, and per-party commits. *)
let run_with_plan spec cfg plan ~seed =
  let n = cfg.Types.n in
  let inputs = Array.init n (fun i -> Value.of_bool (i mod 2 = 0)) in
  let driver =
    { Aba.drive =
        (fun ~coin:_ ~wire:_ exec parties ->
          let monitor =
            Monitor.create ~n ~inputs ~decision:(fun p -> parties.(p).Aba.committed ()) ()
          in
          Monitor.attach monitor exec;
          let ch = Chaos.start plan exec in
          let outcome = Chaos.run ~max_deliveries:200_000 ch in
          ( outcome,
            Monitor.violations monitor,
            Chaos.stats ch,
            Array.map (fun (p : Aba.party) -> p.Aba.committed ()) parties ))
    }
  in
  match Aba.run_custom ~seed spec ~cfg ~inputs ~driver with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let cfg5 = Types.cfg ~n:5 ~t:2

let test_silent_plan_is_benign () =
  let outcome, violations, (stats : Chaos.stats), commits =
    run_with_plan Aba.Crash_strong cfg5 (Chaos.silent ~n:5) ~seed:11L
  in
  Alcotest.(check bool) "terminates" true (outcome = `All_terminated);
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check int) "no drops" 0 stats.Chaos.drops;
  Alcotest.(check int) "no dups" 0 stats.Chaos.dups;
  Alcotest.(check int) "no corruptions" 0 stats.Chaos.corruptions;
  Array.iter
    (fun c -> Alcotest.(check bool) "everyone committed alike" true (c = commits.(0)))
    commits

let test_partition_heals () =
  let plan =
    { (Chaos.silent ~n:5) with
      Chaos.partitions =
        [ { Chaos.from_delivery = 0;
            heal_delivery = 150;
            side = [| true; true; false; false; false |] } ]
    }
  in
  let outcome, violations, _, commits = run_with_plan Aba.Crash_strong cfg5 plan ~seed:3L in
  Alcotest.(check bool) "terminates despite the cut" true (outcome = `All_terminated);
  Alcotest.(check int) "no violations" 0 (List.length violations);
  Alcotest.(check bool) "all committed" true (Array.for_all (( <> ) None) commits)

let test_crash_schedule () =
  let plan =
    { (Chaos.silent ~n:5) with
      Chaos.crashes = [ { Chaos.victim = 0; at_delivery = 10; last_recipients = [ 1 ] } ]
    }
  in
  let driver_result = run_with_plan Aba.Crash_strong cfg5 plan ~seed:5L in
  let _, violations, _, commits = driver_result in
  Alcotest.(check int) "no safety violations" 0 (List.length violations);
  (* the survivors must agree among themselves (uniform agreement with the
     crashed party's commit, if any, is the monitor's job) *)
  let decided = Array.to_list commits |> List.filter_map Fun.id in
  (match decided with
  | [] -> Alcotest.fail "nobody committed"
  | v :: rest ->
    Alcotest.(check bool) "survivors agree" true (List.for_all (Value.equal v) rest));
  Alcotest.(check bool) "at least the 4 survivors decided" true
    (List.length decided >= 4)

let test_fairness_budget_caps_honest_drops () =
  (* an all-honest plan whose links want to drop everything: the per-link
     budget must cap the damage, and safety must survive the drops *)
  let plan =
    { (Chaos.silent ~n:5) with
      Chaos.default_link = { Chaos.reliable with Chaos.p_drop = 1.0 };
      Chaos.fairness = 1
    }
  in
  let _, violations, (stats : Chaos.stats), _ =
    run_with_plan Aba.Crash_strong cfg5 plan ~seed:9L
  in
  Alcotest.(check bool) "drops happened" true (stats.Chaos.drops > 0);
  Alcotest.(check bool) "budget caps drops at fairness * links" true
    (stats.Chaos.drops <= 1 * 5 * 5);
  Alcotest.(check int) "dropping within budget never breaks safety" 0
    (List.length
       (List.filter
          (function Monitor.Stalled _ -> false | _ -> true)
          violations))

(* ------------------------------------------------------------------ *)
(* The campaign                                                         *)
(* ------------------------------------------------------------------ *)

let test_campaign_all_stacks_safe () =
  let reports = Campaign.run_all ~runs:8 ~seed:2026L () in
  Alcotest.(check int) "six stacks" 6 (List.length reports);
  List.iter
    (fun (s : Campaign.stack_report) ->
      Alcotest.(check int) (s.Campaign.stack ^ ": zero safety failures") 0
        (List.length s.Campaign.failures);
      Alcotest.(check bool) (s.Campaign.stack ^ ": some runs commit") true
        (s.Campaign.committed > 0);
      Alcotest.(check int) (s.Campaign.stack ^ ": accounting adds up")
        s.Campaign.runs
        (s.Campaign.committed + s.Campaign.stalled))
    reports

let test_campaign_deterministic () =
  let a = Campaign.run_once ~spec:Aba.Byz_strong ~cfg:(Types.cfg ~n:4 ~t:1) ~seed:123L () in
  let b = Campaign.run_once ~spec:Aba.Byz_strong ~cfg:(Types.cfg ~n:4 ~t:1) ~seed:123L () in
  Alcotest.(check bool) "same seed, same report" true (a = b)

let test_campaign_parallel_matches_sequential () =
  let run domains =
    Campaign.run_stack ~domains ~name:"crash/strong" ~spec:Aba.Crash_strong ~cfg:cfg5
      ~runs:6 ~seed:77L ()
  in
  Alcotest.(check bool) "domain count does not change results" true (run 1 = run 3)

let test_broken_stack_caught () =
  let r = Campaign.broken_run ~seed:7L () in
  let safety = Campaign.safety_violations r in
  Alcotest.(check bool) "violations found" true (safety <> []);
  Alcotest.(check bool) "an agreement violation among them" true
    (List.exists (function Monitor.Agreement _ -> true | _ -> false) safety);
  let report = Format.asprintf "%a" Campaign.pp_run_report r in
  Alcotest.(check bool) "report names the seed" true (contains report "seed=0x7");
  Alcotest.(check bool) "report embeds the plan" true (contains report "plan:");
  Alcotest.(check bool) "report shows the violation" true (contains report "VIOLATION");
  Alcotest.(check bool) "replayable: same seed, same violations" true
    (Campaign.broken_run ~seed:7L () = r)

let () =
  Alcotest.run "chaos"
    [ ( "monitor",
        [ Alcotest.test_case "agreement" `Quick test_monitor_agreement;
          Alcotest.test_case "validity" `Quick test_monitor_validity;
          Alcotest.test_case "dishonest ignored" `Quick test_monitor_ignores_dishonest;
          Alcotest.test_case "binding first-only" `Quick test_monitor_binding_first_only;
          Alcotest.test_case "binding violation" `Quick test_monitor_binding_violation;
          Alcotest.test_case "watchdog" `Quick test_monitor_watchdog ] );
      ( "plans",
        [ Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "gen bounds" `Quick test_gen_bounds ] );
      ( "execution",
        [ Alcotest.test_case "silent plan benign" `Quick test_silent_plan_is_benign;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "crash schedule" `Quick test_crash_schedule;
          Alcotest.test_case "fairness budget" `Quick test_fairness_budget_caps_honest_drops ] );
      ( "campaign",
        [ Alcotest.test_case "all stacks safe" `Slow test_campaign_all_stacks_safe;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "parallel == sequential" `Quick
            test_campaign_parallel_matches_sequential;
          Alcotest.test_case "broken stack caught" `Quick test_broken_stack_caught ] ) ]
